package repro

import (
	"io"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// benchPolicies are the three protocol variants the paper compares.
func benchPolicies(b *testing.B) map[string]node.EOFPolicy {
	b.Helper()
	return map[string]node.EOFPolicy{
		"can":        core.NewStandard(),
		"minorcan":   core.NewMinorCAN(),
		"majorcan_5": core.MustMajorCAN(5),
	}
}

// BenchmarkSingleFrameBroadcast measures one undisturbed broadcast on a
// 5-node bus: cluster construction, bit-level simulation to quiescence.
func BenchmarkSingleFrameBroadcast(b *testing.B) {
	for name, policy := range benchPolicies(b) {
		b.Run(name, func(b *testing.B) {
			cfg := sim.MCConfig{Policy: policy, Nodes: 5, Frames: 1, ResetCounters: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.MonteCarlo(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.FramesSent != 1 {
					b.Fatal("frame not sent")
				}
			}
		})
	}
}

// BenchmarkMonteCarlo1k measures a 1000-frame Monte Carlo run per policy
// under the spatial error model, the workhorse of the paper's Table 1
// reproduction.
func BenchmarkMonteCarlo1k(b *testing.B) {
	for name, policy := range benchPolicies(b) {
		b.Run(name, func(b *testing.B) {
			cfg := sim.MCConfig{
				Policy: policy, Nodes: 5, Frames: 1000,
				BerStar: 0.02, EOFOnly: true, Seed: 7, ResetCounters: true,
			}
			var slots uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.MonteCarlo(cfg)
				if err != nil {
					b.Fatal(err)
				}
				slots = res.Slots
			}
			b.ReportMetric(float64(slots)*float64(b.N)/b.Elapsed().Seconds(), "bitslots/s")
		})
	}
}

// BenchmarkEngineBitslots compares the fast bit-slot engine against the
// reference per-slot loop on the two workloads that matter (DESIGN.md
// §15): an undisturbed sweep, where quiescent fast-forward batches
// whole frame bodies, and the disturbed EOF-only Monte Carlo, where the
// gated error model lets windows persist between draws. The bitslots/s
// metric is the repo's throughput currency; the engines produce
// bit-identical traces (see internal/sim CompareEngines), so this is a
// pure like-for-like comparison.
func BenchmarkEngineBitslots(b *testing.B) {
	workloads := map[string]sim.MCConfig{
		"undisturbed-sweep": {
			Policy: core.MustMajorCAN(5), Nodes: 5, Frames: 500,
			Seed: 7, ResetCounters: true,
		},
		"disturbed-mc": {
			Policy: core.MustMajorCAN(5), Nodes: 5, Frames: 500,
			BerStar: 0.02, EOFOnly: true, Seed: 7, ResetCounters: true,
		},
	}
	for wname, cfg := range workloads {
		for _, engine := range []sim.EngineChoice{sim.EngineFast, sim.EngineReference} {
			cfg := cfg
			cfg.Engine = engine
			b.Run(wname+"/"+string(engine), func(b *testing.B) {
				var slots uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := sim.MonteCarlo(cfg)
					if err != nil {
						b.Fatal(err)
					}
					slots = res.Slots
				}
				b.ReportMetric(float64(slots)*float64(b.N)/b.Elapsed().Seconds(), "bitslots/s")
			})
		}
	}
}

// discardSink counts events without retaining them, isolating emission
// cost from sink cost.
type discardSink struct{ n int }

func (d *discardSink) Emit(obs.Event) { d.n++ }

// BenchmarkEventOverhead measures the full simulation with event
// emission disabled (nil sink — the acceptance criterion requires this
// within 5% of no telemetry at all), against a counting sink and an
// in-memory sink, on the same 200-frame disturbed workload.
func BenchmarkEventOverhead(b *testing.B) {
	base := sim.MCConfig{
		Policy: core.MustMajorCAN(5), Nodes: 5, Frames: 200,
		BerStar: 0.02, EOFOnly: true, Seed: 7, ResetCounters: true,
	}
	run := func(b *testing.B, cfg sim.MCConfig) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.MonteCarlo(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	// nil-sink: no telemetry attached, so every emission site hits the
	// controller's nil-sink early return — the hot-path cost every
	// un-instrumented simulation pays after this PR.
	b.Run("nil-sink", func(b *testing.B) { run(b, base) })
	b.Run("discard", func(b *testing.B) {
		cfg := base
		cfg.Events = &discardSink{}
		run(b, cfg)
	})
	b.Run("memory", func(b *testing.B) {
		cfg := base
		cfg.Events = obs.NewMemory()
		run(b, cfg)
	})
	b.Run("metrics", func(b *testing.B) {
		cfg := base
		cfg.Metrics = obs.NewMetrics()
		run(b, cfg)
	})
}

// BenchmarkEmit measures the raw cost of one event through the ring
// buffer, the per-bit upper bound of the telemetry layer.
func BenchmarkEmit(b *testing.B) {
	ring := obs.NewRing(1 << 12)
	mem := obs.NewMemory()
	e := obs.Event{Slot: 1, Kind: obs.KindRetransmit, Station: 3}
	b.Run("ring", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ring.Emit(e)
			if i%1024 == 1023 {
				ring.Drain(obs.SinkFunc(func(obs.Event) {}))
			}
		}
	})
	b.Run("memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mem.Emit(e)
			if i%4096 == 4095 {
				mem.Reset()
			}
		}
	})
	metrics := obs.NewMetrics()
	b.Run("metrics", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.Emit(e)
		}
	})
}

// TestTelemetryZeroAllocWhenDisabled asserts the allocation contract
// the hotpath analyzer enforces statically: with tracing disabled (nil
// sink) the per-bit path allocates nothing, and every telemetry
// primitive on the enabled path — ring emit, ring drain, metrics
// accumulation, a saturated capture — is allocation-free too. These are
// hard failures, not benchmark numbers, so a regression cannot hide in
// benchmark noise.
func TestTelemetryZeroAllocWhenDisabled(t *testing.T) {
	e := obs.Event{Slot: 1, Kind: obs.KindRetransmit, Station: 3}
	discard := obs.SinkFunc(func(obs.Event) {})

	ring := obs.NewRing(1 << 10)
	if a := testing.AllocsPerRun(1000, func() {
		ring.Emit(e)
		ring.Drain(discard)
	}); a != 0 {
		t.Errorf("ring emit+drain allocates %.1f/op, want 0", a)
	}

	metrics := obs.NewMetrics()
	if a := testing.AllocsPerRun(1000, func() { metrics.Emit(e) }); a != 0 {
		t.Errorf("metrics emit allocates %.1f/op, want 0", a)
	}

	// A capture past its bound only counts; the steady state of a long
	// job must not grow the archived prefix.
	capture := obs.NewCapture(1)
	capture.Emit(e)
	capture.Emit(e)
	if a := testing.AllocsPerRun(1000, func() { capture.Emit(e) }); a != 0 {
		t.Errorf("saturated capture emit allocates %.1f/op, want 0", a)
	}

	// Idle bus stepping, uninstrumented and instrumented with the
	// service's composite sink: the per-bit hot path itself.
	plain := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: core.NewStandard()})
	plain.Net.Run(64) // settle
	if a := testing.AllocsPerRun(1000, func() { plain.Net.Run(1) }); a != 0 {
		t.Errorf("idle uninstrumented bit step allocates %.1f/op, want 0", a)
	}
	wired := sim.MustCluster(sim.ClusterOptions{
		Nodes:  3,
		Policy: core.NewStandard(),
		Events: obs.Locked(obs.Multi(obs.NewRing(1<<10), obs.NewCapture(16))),
	})
	wired.Net.Run(64)
	if a := testing.AllocsPerRun(1000, func() { wired.Net.Run(1) }); a != 0 {
		t.Errorf("idle instrumented bit step allocates %.1f/op, want 0", a)
	}
}

// BenchmarkTraceSynthesis measures exporting a disturbed broadcast's
// event stream as a Perfetto trace — the cost of one `mcctl trace`
// download, paid at export time, never on the simulation path.
func BenchmarkTraceSynthesis(b *testing.B) {
	mem := obs.NewMemory()
	if _, err := chaos.RunObserved(chaos.Script{
		Version:  chaos.ScriptVersion,
		Protocol: "can",
		Nodes:    5,
		Frames:   20,
		Faults: []chaos.Fault{
			{Kind: chaos.ViewFlip, Station: 1, EOFRel: 1, Attempt: 1},
		},
	}, chaos.Telemetry{Events: mem}); err != nil {
		b.Fatal(err)
	}
	events := mem.Events()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr span.Trace
		span.AddProtocol(&tr, events, span.ProtocolOptions{Pid: 1})
		if err := tr.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
