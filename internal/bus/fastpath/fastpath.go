// Package fastpath is the fast bit-slot engine (DESIGN.md §15): a
// drop-in bus.Engine that executes the same simulation the reference
// Network.Step loop does, bit-identically, but faster. It has three
// layers:
//
//   - a packed per-slot core: drive levels collapse into one uint64 word
//     (bit i set = station i drives dominant) so the wired-AND is a
//     single comparison, disturbances apply as an XOR parity mask, the
//     per-slot View materialisation disappears, and the loop runs over
//     concrete *node.Controller values instead of interfaces — zero
//     allocations per slot;
//
//   - quiescent fast-forward: while a single transmitter is past
//     arbitration and every other station provably stays recessive and
//     outside the disturbable EOF region, the transmitter's pre-stuffed
//     encoding is replayed in a batch up to (excluding) the ACK slot.
//     Receivers whose receive pipeline mirrors the transmitter's skip
//     their per-bit latches entirely and adopt the transmitter's
//     pipeline at the window end;
//
//   - eligibility fallback: anything the fast core does not model
//     exactly — probes, output faults, sample skews, scripted or unknown
//     disturbers, non-Controller stations, more than 64 stations — drops
//     the whole plan to the reference Step loop, so exotic configurations
//     are never approximated, merely not accelerated.
//
// The engine re-derives its plan whenever the network's configuration
// version changes, so disturbers registered after installation (the
// Monte Carlo harness adds its error model to a built cluster) are
// picked up before the next slot executes.
//
// Equivalence is not asserted, it is engineered per observable:
// stations latch in station order with the exact levels the reference
// would sample, RNG streams advance through the same errmodel draw
// primitives in the same (slot, station, disturber) order, frame-start
// events replicate the reference edge scan, and fast-forward windows
// end before any slot whose outcome could depend on a draw or a
// non-transmitter drive. The differential oracle in this package's
// tests checks byte-identical event streams, verdicts and sweep digests
// against the reference engine.
package fastpath

import (
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/node"
	"repro/internal/obs"
)

// planMode says how the engine executes slots under the current plan.
type planMode uint8

const (
	// planReference delegates every slot to Network.Step.
	planReference planMode = iota
	// planFast runs the packed core, with fast-forward when available.
	planFast
)

// entryKind classifies one registered disturber for specialised
// replication of its draw stream.
type entryKind uint8

const (
	// entryNever is a rate-zero model: it can never fire, and skipping
	// its draws is unobservable (nothing reads the stream position).
	entryNever entryKind = iota
	// entryRandom is an ungated spatial model: one draw per (slot,
	// station). A disturbance is possible every slot, so fast-forward is
	// off while one is registered.
	entryRandom
	// entryRandomEOF is a spatial model gated on the EOF region: draws
	// happen only for stations inside an EOF episode.
	entryRandomEOF
	// entryGlobal is an ungated whole-bus model: one draw per slot.
	entryGlobal
	// entryGlobalEOF is a whole-bus model gated on the EOF region: the
	// slot's draw happens at the first in-episode station.
	entryGlobalEOF
)

// entry is one planned disturber.
type entry struct {
	kind entryKind
	rnd  *errmodel.Random
	glb  *errmodel.GlobalRandom
}

// Engine is the fast bit-slot executor. Create one per bus.Network with
// Install (or New followed by Network.SetEngine); it must be driven
// from the network's goroutine, like the network itself.
type Engine struct {
	net     *bus.Network
	version uint64
	mode    planMode
	emitter obs.Sink

	// planFast state: concrete stations and specialised disturbers.
	ctrls      []*node.Controller
	entries    []entry
	hasUngated bool // a disturbance is possible in any slot
	hasGated   bool // draws depend on per-station EOF position
}

var _ bus.Engine = (*Engine)(nil)

// New creates an engine for the network without installing it.
func New(n *bus.Network) *Engine { return &Engine{net: n} }

// Install creates an engine and installs it as the network's batch
// executor.
func Install(n *bus.Network) *Engine {
	e := New(n)
	n.SetEngine(e)
	return e
}

// Advance implements bus.Engine: it simulates between 1 and budget bit
// slots and returns how many it consumed.
func (e *Engine) Advance(budget int) int {
	if budget < 1 {
		budget = 1
	}
	if e.version != e.net.Version() {
		e.replan()
	}
	if e.mode == planReference {
		e.net.Step()
		return 1
	}
	if k := e.fastForward(budget); k > 0 {
		return k
	}
	e.stepSlot()
	return 1
}

// replan rebuilds the execution plan from the network's current
// configuration. Runs once per configuration change, not per slot.
//
//lint:allow hotpath -- plan (re)construction is cold: once per network
// configuration change, never per bit slot.
func (e *Engine) replan() {
	e.version = e.net.Version()
	e.emitter = e.net.Emitter()
	e.ctrls = e.ctrls[:0]
	e.entries = e.entries[:0]
	e.hasUngated, e.hasGated = false, false
	e.mode = planReference

	n := e.net.Stations()
	if n > 64 || e.net.NumProbes() > 0 || e.net.NumOutputFaults() > 0 || e.net.NumSkews() > 0 {
		return
	}
	for i := 0; i < n; i++ {
		c, ok := e.net.StationAt(i).(*node.Controller)
		if !ok {
			return
		}
		e.ctrls = append(e.ctrls, c)
	}
	for _, d := range e.net.DisturberList() {
		en, ok := classify(d)
		if !ok {
			return
		}
		switch en.kind {
		case entryNever:
			continue // never fires, never draws: drop it from the plan
		case entryRandom, entryGlobal:
			e.hasUngated = true
		case entryRandomEOF, entryGlobalEOF:
			e.hasGated = true
		}
		e.entries = append(e.entries, en)
	}
	e.mode = planFast
}

// classify maps a registered disturber to a specialised entry, or
// reports ok=false for models the packed core cannot replicate draw-
// for-draw (scripts, user-defined disturbers), which force the
// reference plan.
func classify(d bus.Disturber) (entry, bool) {
	switch v := d.(type) {
	case *errmodel.Random:
		if v.AlwaysClean() {
			return entry{kind: entryNever}, true
		}
		return entry{kind: entryRandom, rnd: v}, true
	case *errmodel.GlobalRandom:
		if v.AlwaysClean() {
			return entry{kind: entryNever}, true
		}
		return entry{kind: entryGlobal, glb: v}, true
	case errmodel.EOFOnly:
		inner, ok := classify(v.Inner)
		if !ok {
			return entry{}, false
		}
		switch inner.kind {
		case entryNever:
			return inner, true
		case entryRandom:
			inner.kind = entryRandomEOF
			return inner, true
		case entryGlobal:
			inner.kind = entryGlobalEOF
			return inner, true
		default:
			return entry{}, false
		}
	default:
		return entry{}, false
	}
}

// stepSlot executes one bit slot through the packed core: drive word,
// wired-AND, frame-start edge, disturbance parity mask, latches. It is
// exact for every protocol situation (arbitration, flags, overloads,
// recovery) because it performs the same per-station calls as the
// reference loop, only devirtualised and without materialising views.
func (e *Engine) stepSlot() {
	var word uint64
	for i, c := range e.ctrls {
		if c.Drive() == bitstream.Dominant {
			word |= 1 << uint(i)
		}
	}
	level := bitstream.Recessive
	if word != 0 {
		level = bitstream.Dominant
	}
	slot := e.net.Slot()
	if e.emitter != nil && level == bitstream.Dominant && e.net.PrevLevel() == bitstream.Recessive {
		e.emitFrameStart(slot)
	}
	if flips := e.flipMask(slot); flips == 0 {
		for _, c := range e.ctrls {
			c.Latch(level)
		}
	} else {
		inv := level.Invert()
		for i, c := range e.ctrls {
			if flips&(1<<uint(i)) != 0 {
				c.Latch(inv)
			} else {
				c.Latch(level)
			}
		}
	}
	e.net.CommitSlot(level)
}

// flipMask draws this slot's disturbances and returns the parity mask
// of stations whose sample inverts (an odd number of firing models).
// Draw order replicates the reference loop exactly: stations outer,
// disturbers inner, with the EOF gate consulted on the station's
// pre-latch state — so the RNG streams and flip counters stay
// bit-identical to a reference run.
func (e *Engine) flipMask(slot uint64) uint64 {
	if len(e.entries) == 0 {
		return 0
	}
	var mask uint64
	for i, c := range e.ctrls {
		bit := uint64(1) << uint(i)
		inEOF := false
		eofKnown := false
		for k := range e.entries {
			en := &e.entries[k]
			switch en.kind {
			case entryRandom:
				if en.rnd.Sample() {
					mask ^= bit
				}
			case entryRandomEOF:
				if !eofKnown {
					inEOF, eofKnown = c.EOFRel() != 0, true
				}
				if inEOF && en.rnd.Sample() {
					mask ^= bit
				}
			case entryGlobal:
				if en.glb.SampleSlot(slot) {
					mask ^= bit
				}
			case entryGlobalEOF:
				if !eofKnown {
					inEOF, eofKnown = c.EOFRel() != 0, true
				}
				if inEOF && en.glb.SampleSlot(slot) {
					mask ^= bit
				}
			}
		}
	}
	return mask
}

// emitFrameStart replicates the reference edge scan: on a recessive-to-
// dominant edge, the lowest-indexed station about to drive its SOF is
// reported with the number of simultaneous contenders. Pre-latch state
// is scanned, exactly like the views the reference captures before
// latching.
func (e *Engine) emitFrameStart(slot uint64) {
	if e.emitter == nil {
		return
	}
	first, contenders, attempts := -1, 0, 0
	for i, c := range e.ctrls {
		if c.StartingFrame() {
			if first < 0 {
				first, attempts = i, c.Attempts()
			}
			contenders++
		}
	}
	if first < 0 {
		return
	}
	e.emitter.Emit(obs.Event{
		Slot:    slot,
		Kind:    obs.KindFrameStart,
		Station: int16(first),
		Flags:   obs.FlagTransmitter,
		Attempt: uint16(attempts),
		Aux:     uint32(contenders),
	})
}

// fastForward batch-advances through a quiescent window and returns how
// many slots it consumed (0 when no window applies). The window is the
// transmitter's remaining pre-stuffed bits before the ACK slot, bounded
// by budget, and it ends — before the bit in question — as soon as any
// non-mirroring station would drive dominant (a starting transmitter,
// an error or overload flag, a receiver's ACK) or would sit in the EOF
// region where a gated error model draws. Within the window the bus
// level is therefore exactly the transmitter's encoding, no RNG draw
// occurs in either engine, and every skipped per-bit effect is either
// replayed (transmitter and non-mirroring stations latch normally) or
// provably absent (mirroring receivers, whose pipeline is adopted from
// the transmitter at the end).
func (e *Engine) fastForward(budget int) int {
	if e.hasUngated {
		// A disturbance is possible in any slot: no quiescent horizon.
		return 0
	}
	tx := -1
	for i, c := range e.ctrls {
		if c.Transmitting() {
			if tx >= 0 {
				return 0 // two in-frame transmitters: still in arbitration
			}
			tx = i
		} else if c.StartingFrame() {
			return 0 // SOF contention this slot
		}
	}
	if tx < 0 {
		return 0
	}
	t := e.ctrls[tx]
	win := t.TxWindow()
	if len(win) == 0 {
		return 0
	}
	if len(win) > budget {
		win = win[:budget]
	}
	// Partition the other stations once: mirrors are adopted wholesale at
	// the end, everything else must be checked and latched per bit. The
	// transmitter is handled by the batched seam below, so it appears in
	// neither mask.
	var mirror, others uint64
	for i, c := range e.ctrls {
		if i == tx {
			continue
		}
		if c.MirrorsPipeline(t) {
			mirror |= 1 << uint(i)
		} else {
			others |= 1 << uint(i)
		}
	}
	n := len(win)
	if others != 0 {
		// Stations outside the mirror set evolve independently (an idle
		// late joiner, a bus-off node recovering, a non-mirroring
		// receiver); step them bit by bit and stop the window — before
		// the bit in question — at the first one that would speak up.
		// The transmitter's own latches commute with theirs within a
		// slot: a latch only touches the latching station's state, and
		// nothing here reads the transmitter mid-window.
		n = 0
		for _, lvl := range win {
			quiet := true
			for m := others; m != 0; m &= m - 1 {
				c := e.ctrls[bits.TrailingZeros64(m)]
				if c.Drive() != bitstream.Recessive || (e.hasGated && c.EOFRel() != 0) {
					quiet = false
					break
				}
			}
			if !quiet {
				break
			}
			for m := others; m != 0; m &= m - 1 {
				e.ctrls[bits.TrailingZeros64(m)].Latch(lvl)
			}
			n++
		}
		if n == 0 {
			return 0
		}
	}
	t.LatchTxWindow(win[:n])
	for m := mirror; m != 0; m &= m - 1 {
		e.ctrls[bits.TrailingZeros64(m)].AdoptPipeline(t, uint64(n))
	}
	e.net.SkipSlots(n, win[n-1])
	return n
}
