// Differential tests for the fast bit-slot engine: every test drives
// the same simulation under the reference per-slot loop and the fast
// engine and demands identical observables — events, deliveries,
// verdicts, digests, final state. The sweep-spec oracle lives next to
// CompareEngines in internal/sim; here live the engine-level checks:
// the lockstep fuzz property (fast-forward never skips across an armed
// hazard), the scripted figure scenarios, chaos campaign digests, and
// the zero-allocation pin on the hot loop.
package fastpath_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/bus/fastpath"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// world is one half of a lockstep comparison: a cluster under one
// engine with its full event stream captured.
type world struct {
	cluster *sim.Cluster
	mem     *obs.Memory
}

func newWorld(t *testing.T, engine sim.EngineChoice, nodes int, policyName string) *world {
	t.Helper()
	policy, err := core.ParsePolicy(policyName)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemory()
	c, err := sim.NewCluster(sim.ClusterOptions{
		Nodes:  nodes,
		Policy: policy,
		Events: mem,
		Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &world{cluster: c, mem: mem}
}

// forceLevel is a test output fault: station drives level in [from, to).
type forceLevel struct {
	station  int
	from, to uint64
	level    bitstream.Level
}

func (f forceLevel) Apply(slot uint64, station int, lvl bitstream.Level) bitstream.Level {
	if station == f.station && slot >= f.from && slot < f.to {
		return f.level
	}
	return lvl
}

// skewAt is a test sampling skew: station samples one slot late at slot.
type skewAt struct {
	station int
	slot    uint64
}

func (s skewAt) Skew(slot uint64, station int) bool {
	return station == s.station && slot == s.slot
}

// TestFastForwardNeverSkipsArmedHazard is the fuzzed safety property of
// quiescent fast-forward: whatever gets armed — a scripted disturber, an
// output fault, a sampling skew, a gated random error model, a crash, a
// competing enqueue — and whenever it gets armed relative to the engine's
// skip horizon (pre-run or at a random chunk boundary mid-run), the fast
// engine must not batch across a slot the hazard would have touched. The
// test runs randomized hazard schedules under both engines in lockstep
// and requires byte-identical event streams and final states.
func TestFastForwardNeverSkipsArmedHazard(t *testing.T) {
	policies := []string{"can", "minorcan", "majorcan_3", "majorcan_5"}
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%02d", iter), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + iter)))
			nodes := 3 + rng.Intn(4)
			policyName := policies[rng.Intn(len(policies))]

			ref := newWorld(t, sim.EngineReference, nodes, policyName)
			fast := newWorld(t, sim.EngineFast, nodes, policyName)
			worlds := []*world{ref, fast}

			// A schedule is a list of steps applied identically to both
			// worlds; stateful hazard objects are built fresh per world.
			type step func(w *world)
			var plan []step

			run := func(slots int) step {
				return func(w *world) { w.cluster.Net.Run(slots) }
			}
			enqueue := func(station int, f frame.Frame) step {
				return func(w *world) {
					fc := f
					fc.Data = append([]byte(nil), f.Data...)
					if err := w.cluster.Nodes[station].Enqueue(&fc); err != nil {
						t.Errorf("enqueue at n%d: %v", station, err)
					}
				}
			}

			// Always at least one frame up front so the bus is busy and
			// fast-forward windows actually open.
			plan = append(plan, enqueue(0, frame.Frame{ID: 0x100, Data: []byte{0xA5, 0x5A, 1, 2}}))

			// 1-3 hazards, each armed either up front or mid-run.
			hazards := 1 + rng.Intn(3)
			for h := 0; h < hazards; h++ {
				station := rng.Intn(nodes)
				armSlot := uint64(rng.Intn(1200))
				var arm step
				switch rng.Intn(6) {
				case 0: // scripted view flip at an absolute slot
					arm = func(w *world) {
						w.cluster.Net.AddDisturber(errmodel.NewScript(
							errmodel.AtSlot([]int{station}, armSlot)))
					}
				case 1: // scripted view flip in the EOF region
					rel := 1 + rng.Intn(7)
					attempt := 1 + rng.Intn(2)
					arm = func(w *world) {
						w.cluster.Net.AddDisturber(errmodel.NewScript(
							errmodel.AtEOFBit([]int{station}, rel, attempt)))
					}
				case 2: // output fault window (stuck dominant or mute)
					lvl := bitstream.Dominant
					if rng.Intn(2) == 0 {
						lvl = bitstream.Recessive
					}
					until := armSlot + uint64(1+rng.Intn(20))
					arm = func(w *world) {
						w.cluster.Net.AddOutputFault(forceLevel{
							station: station, from: armSlot, to: until, level: lvl})
					}
				case 3: // one-slot sampling skew
					arm = func(w *world) {
						w.cluster.Net.AddSkew(skewAt{station: station, slot: armSlot})
					}
				case 4: // gated random error model
					ber := []float64{0.005, 0.02, 0.05}[rng.Intn(3)]
					seed := rng.Int63()
					arm = func(w *world) {
						w.cluster.Net.AddDisturber(errmodel.EOFOnly{
							Inner: errmodel.NewRandom(ber, seed)})
					}
				default: // crash a non-origin station
					victim := 1 + rng.Intn(nodes-1)
					arm = func(w *world) { w.cluster.Nodes[victim].Crash() }
				}
				if rng.Intn(2) == 0 {
					plan = append(plan, arm) // pre-armed
				} else {
					defer func() {}() // mid-run: spliced below with the chunks
					plan = append(plan, run(1+rng.Intn(400)), arm)
				}
			}

			// Competing traffic: extra frames from random stations at
			// random points (pending transmit-queue arrivals).
			extra := rng.Intn(3)
			for x := 0; x < extra; x++ {
				st := rng.Intn(nodes)
				plan = append(plan,
					run(1+rng.Intn(300)),
					enqueue(st, frame.Frame{ID: uint32(0x110 + x*8 + st), Data: []byte{byte(x), byte(st), 3}}))
			}

			// Run out the clock in random chunk sizes, so fast-forward
			// budgets land everywhere relative to frame boundaries.
			for budget := 2500; budget > 0; {
				k := 1 + rng.Intn(400)
				if k > budget {
					k = budget
				}
				plan = append(plan, run(k))
				budget -= k
			}

			for _, s := range plan {
				for _, w := range worlds {
					s(w)
				}
			}

			if rs, fs := ref.cluster.Net.Slot(), fast.cluster.Net.Slot(); rs != fs {
				t.Fatalf("slot counters diverged: reference %d, fast %d", rs, fs)
			}
			re, fe := ref.mem.Events(), fast.mem.Events()
			if len(re) != len(fe) {
				t.Fatalf("event counts diverged: reference %d, fast %d", len(re), len(fe))
			}
			for i := range re {
				if re[i] != fe[i] {
					t.Fatalf("event %d diverged:\n  reference: %s\n  fast:      %s", i, re[i], fe[i])
				}
			}
			for n := 0; n < nodes; n++ {
				rd, fd := ref.cluster.Deliveries[n], fast.cluster.Deliveries[n]
				if len(rd) != len(fd) {
					t.Fatalf("n%d delivery counts diverged: reference %d, fast %d", n, len(rd), len(fd))
				}
				for i := range rd {
					if rd[i].Slot != fd[i].Slot || !rd[i].Frame.Equal(fd[i].Frame) {
						t.Fatalf("n%d delivery %d diverged: reference %v@%d, fast %v@%d",
							n, i, rd[i].Frame, rd[i].Slot, fd[i].Frame, fd[i].Slot)
					}
				}
				rv, fv := ref.cluster.Verdicts[n], fast.cluster.Verdicts[n]
				if len(rv) != len(fv) {
					t.Fatalf("n%d verdict counts diverged: reference %d, fast %d", n, len(rv), len(fv))
				}
				for i := range rv {
					if rv[i] != fv[i] {
						t.Fatalf("n%d verdict %d diverged: reference %v, fast %v", n, i, rv[i], fv[i])
					}
				}
				if rm, fm := ref.cluster.Nodes[n].Mode(), fast.cluster.Nodes[n].Mode(); rm != fm {
					t.Fatalf("n%d mode diverged: reference %v, fast %v", n, rm, fm)
				}
			}
		})
	}
}

// withDefaultEngine runs f with the process default engine set to
// choice, restoring the built-in default afterwards. Tests using it
// must not run in parallel (the default is process-wide).
func withDefaultEngine(t *testing.T, choice sim.EngineChoice, f func()) {
	t.Helper()
	if err := sim.SetDefaultEngine(choice); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sim.SetDefaultEngine(sim.EngineAuto); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

// TestScenarioFiguresEngineTransparent replays the paper's Fig. 3
// scenarios — the scripted inconsistency patterns — under both engines
// and compares the complete outcomes. Scripted disturbances force the
// engine's reference plan, so this pins the delegation path: an
// installed engine must be invisible for configurations it does not
// accelerate.
func TestScenarioFiguresEngineTransparent(t *testing.T) {
	figures := map[string]func() (*scenario.Outcome, error){
		"Fig3a": scenario.Fig3a,
		"Fig3b": scenario.Fig3b,
	}
	for name, fig := range figures {
		t.Run(name, func(t *testing.T) {
			var fastOut, refOut *scenario.Outcome
			withDefaultEngine(t, sim.EngineFast, func() {
				o, err := fig()
				if err != nil {
					t.Fatal(err)
				}
				fastOut = o
			})
			withDefaultEngine(t, sim.EngineReference, func() {
				o, err := fig()
				if err != nil {
					t.Fatal(err)
				}
				refOut = o
			})
			if got, want := fastOut.Summary(), refOut.Summary(); got != want {
				t.Fatalf("outcomes diverged:\n  fast:      %s\n  reference: %s", got, want)
			}
			if fastOut.IMO != refOut.IMO || fastOut.DoubleReception != refOut.DoubleReception {
				t.Fatalf("verdicts diverged: fast IMO=%v dup=%v, reference IMO=%v dup=%v",
					fastOut.IMO, fastOut.DoubleReception, refOut.IMO, refOut.DoubleReception)
			}
		})
	}
}

// TestChaosCampaignEngineTransparent runs a small randomized chaos
// campaign under both engines and requires identical outcomes — trial
// counts, findings, and every finding's bit-level trace digest.
func TestChaosCampaignEngineTransparent(t *testing.T) {
	spec := chaos.CampaignSpec{Protocol: "CAN", Nodes: 4, Trials: 15, Seed: 7}
	outcomes := make(map[sim.EngineChoice][]byte)
	for _, choice := range []sim.EngineChoice{sim.EngineFast, sim.EngineReference} {
		withDefaultEngine(t, choice, func() {
			out, err := chaos.RunCampaignSpec(context.Background(), spec, chaos.Telemetry{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			outcomes[choice] = b
		})
	}
	if string(outcomes[sim.EngineFast]) != string(outcomes[sim.EngineReference]) {
		t.Fatalf("campaign outcomes diverged:\n  fast:      %s\n  reference: %s",
			outcomes[sim.EngineFast], outcomes[sim.EngineReference])
	}
}

// TestZeroAllocsPerSlot pins the packed core's allocation behaviour: in
// a sustained run — frame bodies, fast-forward windows, error
// signalling, retransmissions — the engine allocates nothing per slot.
// The scenario is an infinitely retransmitting frame: the only other
// station is crashed, so every attempt ends in a missing ACK and the
// transmitter retries forever, exercising encode (cached after the
// first attempt), error flags and the interframe machinery in a loop
// with no per-frame delivery (delivery hands the application a fresh
// frame, which necessarily allocates and is out of scope here).
func TestZeroAllocsPerSlot(t *testing.T) {
	net := bus.NewNetwork()
	tx := node.New("tx", core.NewStandard(), node.Options{})
	rx := node.New("rx", core.NewStandard(), node.Options{})
	net.Attach(tx)
	net.Attach(rx)
	rx.Crash()
	fastpath.Install(net)
	if err := tx.Enqueue(&frame.Frame{ID: 0x123, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}); err != nil {
		t.Fatal(err)
	}
	// Reach steady state: encode cache warm, transmitter error-passive
	// (the ACK-error exception then holds TEC constant, so the retry
	// loop runs forever without a mode change).
	net.Run(5000)
	if tx.TxSuccesses() != 0 {
		t.Fatal("frame must never succeed with the only receiver crashed")
	}
	if tx.Mode() == node.BusOff {
		t.Fatal("transmitter must not reach bus-off in the no-ACK loop")
	}
	allocs := testing.AllocsPerRun(20, func() { net.Run(512) })
	if allocs != 0 {
		t.Fatalf("allocations per 512-slot batch = %g, want 0", allocs)
	}
}

// TestEngineReplansOnReconfiguration pins the version seam: a network
// reconfigured after the engine is installed (here: a probe added,
// which the fast plan cannot model) must fall back to the reference
// plan at the next Advance, not act on the stale plan.
func TestEngineReplansOnReconfiguration(t *testing.T) {
	ref := newWorld(t, sim.EngineReference, 3, "can")
	fast := newWorld(t, sim.EngineFast, 3, "can")
	for _, w := range []*world{ref, fast} {
		if err := w.cluster.Nodes[0].Enqueue(&frame.Frame{ID: 0x77, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
		w.cluster.Net.Run(40) // mid-frame: the fast world is inside windows
		w.cluster.Net.AddProbe(countProbe{n: new(int)})
		w.cluster.Net.Run(400)
	}
	re, fe := ref.mem.Events(), fast.mem.Events()
	if len(re) != len(fe) {
		t.Fatalf("event counts diverged after reconfiguration: reference %d, fast %d", len(re), len(fe))
	}
	for i := range re {
		if re[i] != fe[i] {
			t.Fatalf("event %d diverged after reconfiguration:\n  reference: %s\n  fast:      %s", i, re[i], fe[i])
		}
	}
}

type countProbe struct{ n *int }

func (p countProbe) OnBit(uint64, bitstream.Level, []bitstream.Level, []bitstream.Level, []bus.ViewContext) {
	*p.n++
}
