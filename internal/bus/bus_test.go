package bus

import (
	"testing"

	"repro/internal/bitstream"
)

// fakeStation drives a scripted sequence and records its samples.
type fakeStation struct {
	out     bitstream.Sequence
	pos     int
	samples bitstream.Sequence
	view    ViewContext
}

func (f *fakeStation) Drive() bitstream.Level {
	if f.pos < len(f.out) {
		return f.out[f.pos]
	}
	return bitstream.Recessive
}

func (f *fakeStation) Latch(l bitstream.Level) {
	f.samples = append(f.samples, l)
	f.pos++
}

func (f *fakeStation) View() ViewContext { return f.view }

type flipAll struct{}

func (flipAll) Disturb(uint64, int, ViewContext) bool { return true }

type flipStation struct{ station int }

func (f flipStation) Disturb(_ uint64, s int, _ ViewContext) bool { return s == f.station }

type recordingProbe struct {
	slots []uint64
	bus   bitstream.Sequence
}

func (p *recordingProbe) OnBit(slot uint64, level bitstream.Level, _, _ []bitstream.Level, _ []ViewContext) {
	p.slots = append(p.slots, slot)
	p.bus = append(p.bus, level)
}

func seq(t *testing.T, s string) bitstream.Sequence {
	t.Helper()
	out, err := bitstream.ParseSequence(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWiredAndCoupling(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "rdrr")}
	b := &fakeStation{out: seq(t, "rrdr")}
	n.Attach(a)
	n.Attach(b)
	n.Run(4)
	// Bus = AND of both stations: r, d, d, r.
	want := "rddr"
	if a.samples.Compact() != want || b.samples.Compact() != want {
		t.Errorf("samples a=%s b=%s, want %s", a.samples.Compact(), b.samples.Compact(), want)
	}
}

func TestEmptyBusFloatsRecessive(t *testing.T) {
	n := NewNetwork()
	if got := n.Step(); got != bitstream.Recessive {
		t.Errorf("empty bus = %v, want recessive", got)
	}
}

func TestDisturberFlipsOnlyTargetView(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "rrrr")}
	b := &fakeStation{out: seq(t, "rrrr")}
	n.Attach(a)
	n.Attach(b)
	n.AddDisturber(flipStation{station: 1})
	n.Run(4)
	if a.samples.Compact() != "rrrr" {
		t.Errorf("station 0 view = %s, want undisturbed rrrr", a.samples.Compact())
	}
	if b.samples.Compact() != "dddd" {
		t.Errorf("station 1 view = %s, want flipped dddd", b.samples.Compact())
	}
}

func TestTwoDisturbersCancel(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "rr")}
	n.Attach(a)
	n.AddDisturber(flipAll{})
	n.AddDisturber(flipAll{})
	n.Run(2)
	if a.samples.Compact() != "rr" {
		t.Errorf("double flip must cancel, got %s", a.samples.Compact())
	}
}

func TestProbeSeesEverySlot(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "drd")}
	n.Attach(a)
	p := &recordingProbe{}
	n.AddProbe(p)
	n.Run(3)
	if len(p.slots) != 3 || p.slots[0] != 0 || p.slots[2] != 2 {
		t.Errorf("probe slots = %v", p.slots)
	}
	if p.bus.Compact() != "drd" {
		t.Errorf("probe bus = %s, want drd", p.bus.Compact())
	}
	if n.Slot() != 3 {
		t.Errorf("Slot() = %d, want 3", n.Slot())
	}
}

func TestRunUntil(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: bitstream.Repeat(bitstream.Dominant, 10)}
	n.Attach(a)
	ok := n.RunUntil(func() bool { return len(a.samples) >= 5 }, 100)
	if !ok {
		t.Fatal("condition must be reached")
	}
	if len(a.samples) != 5 {
		t.Errorf("ran %d slots, want 5", len(a.samples))
	}
	if n.RunUntil(func() bool { return false }, 10) {
		t.Error("unreachable condition must report false")
	}
}

// jamFault forces one station's output dominant inside a slot window.
type jamFault struct {
	station  int
	from, to uint64
	level    bitstream.Level
}

func (j jamFault) Apply(slot uint64, station int, level bitstream.Level) bitstream.Level {
	if station == j.station && slot >= j.from && slot < j.to {
		return j.level
	}
	return level
}

type skewAt struct {
	station int
	slot    uint64
}

func (s skewAt) Skew(slot uint64, station int) bool {
	return station == s.station && slot == s.slot
}

func TestOutputFaultJamsBus(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "rrrr")}
	b := &fakeStation{out: seq(t, "rrrr")}
	n.Attach(a)
	n.Attach(b)
	n.AddOutputFault(jamFault{station: 0, from: 1, to: 3, level: bitstream.Dominant})
	n.Run(4)
	// Station 0's transceiver jams slots 1 and 2 dominant; every station
	// (the jammer included) samples the jammed bus.
	want := "rddr"
	if a.samples.Compact() != want || b.samples.Compact() != want {
		t.Errorf("samples a=%s b=%s, want %s", a.samples.Compact(), b.samples.Compact(), want)
	}
}

func TestOutputFaultMutesStation(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "dddd")}
	b := &fakeStation{out: seq(t, "rrrr")}
	n.Attach(a)
	n.Attach(b)
	n.AddOutputFault(jamFault{station: 0, from: 1, to: 3, level: bitstream.Recessive})
	n.Run(4)
	// Station 0 drives dominant throughout, but its output is cut for slots
	// 1 and 2: the bus floats recessive there.
	want := "drrd"
	if b.samples.Compact() != want {
		t.Errorf("samples b=%s, want %s", b.samples.Compact(), want)
	}
}

func TestSkewSamplesPreviousSlot(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "drdr")}
	b := &fakeStation{out: seq(t, "rrrr")}
	n.Attach(a)
	n.Attach(b)
	n.AddSkew(skewAt{station: 1, slot: 2})
	n.Run(4)
	// Bus is d r d r; at slot 2 station 1 latches the slot-1 level (r)
	// instead of the slot-2 level (d).
	if a.samples.Compact() != "drdr" {
		t.Errorf("unskewed station samples %s, want drdr", a.samples.Compact())
	}
	if b.samples.Compact() != "drrr" {
		t.Errorf("skewed station samples %s, want drrr", b.samples.Compact())
	}
}

func TestSkewAtSlotZeroSeesIdleBus(t *testing.T) {
	n := NewNetwork()
	a := &fakeStation{out: seq(t, "d")}
	n.Attach(a)
	n.AddSkew(skewAt{station: 0, slot: 0})
	n.Run(1)
	// Before slot 0 the bus was idle: the skewed sample is recessive.
	if a.samples.Compact() != "r" {
		t.Errorf("slot-0 skewed sample = %s, want r", a.samples.Compact())
	}
}

func TestPhaseStrings(t *testing.T) {
	phases := []Phase{
		PhaseIdle, PhaseFrame, PhaseEOF, PhaseErrorFlag, PhasePassiveErrorFlag,
		PhaseErrorDelim, PhaseOverloadFlag, PhaseOverloadDelim, PhaseSampling,
		PhaseExtFlag, PhaseIntermission, PhaseSuspend, PhaseOff,
	}
	seen := map[string]bool{}
	for _, p := range phases {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("phase %d has empty or duplicate string %q", p, s)
		}
		seen[s] = true
	}
}
