// Package bus simulates the CAN physical medium: a wired-AND bus advancing
// in synchronous bit slots, where every attached station drives a level and
// then samples the resulting bus value through its own, individually
// disturbable view.
//
// The per-station view is the heart of the paper's error model: a bit error
// occurring "somewhere in the network" affects each node's reading of the
// bus independently (Charzinski's spatial distribution, ber* = ber/N).
package bus

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/frame"
	"repro/internal/obs"
)

// Phase describes what a station is doing during a bit slot, for
// disturbance scripting and trace rendering.
type Phase uint8

const (
	// PhaseIdle means the bus is idle from this station's point of view.
	PhaseIdle Phase = iota + 1
	// PhaseFrame covers SOF through the ACK delimiter.
	PhaseFrame
	// PhaseEOF covers the end-of-frame field.
	PhaseEOF
	// PhaseErrorFlag is the transmission of an (active) error flag.
	PhaseErrorFlag
	// PhasePassiveErrorFlag is the transmission of a passive error flag.
	PhasePassiveErrorFlag
	// PhaseErrorDelim is the error delimiter (recessive).
	PhaseErrorDelim
	// PhaseOverloadFlag is the transmission of an overload flag.
	PhaseOverloadFlag
	// PhaseOverloadDelim is the overload delimiter (recessive).
	PhaseOverloadDelim
	// PhaseSampling is MajorCAN's acceptance-sampling window.
	PhaseSampling
	// PhaseExtFlag is MajorCAN's extended (acceptance) error flag.
	PhaseExtFlag
	// PhaseIntermission is the 3-bit interframe space.
	PhaseIntermission
	// PhaseSuspend is the suspend-transmission period of an error-passive
	// transmitter.
	PhaseSuspend
	// PhaseOff means the station is disconnected (bus-off, switched off, or
	// crashed).
	PhaseOff
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseFrame:
		return "frame"
	case PhaseEOF:
		return "eof"
	case PhaseErrorFlag:
		return "error-flag"
	case PhasePassiveErrorFlag:
		return "passive-error-flag"
	case PhaseErrorDelim:
		return "error-delim"
	case PhaseOverloadFlag:
		return "overload-flag"
	case PhaseOverloadDelim:
		return "overload-delim"
	case PhaseSampling:
		return "sampling"
	case PhaseExtFlag:
		return "ext-flag"
	case PhaseIntermission:
		return "intermission"
	case PhaseSuspend:
		return "suspend"
	case PhaseOff:
		return "off"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// ViewContext describes a station's position within the protocol at the
// moment it samples a bit. Disturbance scripts match on it to express
// conditions such as "the last but one bit of the EOF of the nodes
// belonging to X" directly in the paper's terms.
type ViewContext struct {
	// Phase is the station's current protocol phase.
	Phase Phase
	// Field is the frame field of the bit being sampled (valid during
	// PhaseFrame and PhaseEOF).
	Field frame.Field
	// Index is the zero-based index within Field.
	Index int
	// EOFRel is the 1-based position of the sampled bit relative to the
	// first EOF bit of the current frame as this station counts it, or 0
	// when the station is not in the end-of-frame region. The paper numbers
	// all MajorCAN deadlines ((m+7)th bit, (3m+5)th bit, ...) in exactly
	// this coordinate.
	EOFRel int
	// Transmitter reports whether the station is (still) the transmitter
	// of the current frame.
	Transmitter bool
	// Attempts counts the frame transmission attempts (SOFs) this station
	// has observed, including the current one. Scripts use it to target
	// "the first transmission" vs. a retransmission.
	Attempts int
}

// Station is a device attached to the bus. The network calls Drive exactly
// once per bit slot on every station, computes the wired-AND bus value,
// and then calls Latch exactly once with the station's (possibly
// disturbed) sample of that value.
type Station interface {
	// Drive returns the level the station puts on the bus this bit slot.
	Drive() bitstream.Level
	// Latch delivers the station's sample of the bus for this bit slot and
	// advances the station's state machine.
	Latch(level bitstream.Level)
	// View describes the station's position for the bit it is about to
	// sample, used by disturbance models and trace probes.
	View() ViewContext
}

// Disturber decides whether a station's view of the bus is inverted during
// a given bit slot. Implementations live in package errmodel.
type Disturber interface {
	// Disturb reports whether station's sample in this slot is flipped.
	Disturb(slot uint64, station int, view ViewContext) bool
}

// OutputFault overrides the level a station actually puts on the wire,
// after the controller decided what to drive. It models transceiver-level
// faults the controller cannot see from the inside: a stuck-at-dominant
// output (babbling idiot jamming the bus) or an output forced recessive
// (intermittent node, broken driver stage). The controller still believes
// it drove its own level, so its bit-error detection reacts exactly like a
// real controller behind a faulty transceiver.
type OutputFault interface {
	// Apply returns the level station really drives in this slot, given the
	// level its controller requested.
	Apply(slot uint64, station int, level bitstream.Level) bitstream.Level
}

// SkewFault makes a station sample one bit slot late: when Skew fires, the
// station latches the previous slot's bus level instead of the current one
// (a transient clock glitch displacing the sample point by a full bit
// time). Disturbers still apply on top of the skewed sample.
type SkewFault interface {
	// Skew reports whether station's sample in this slot slips to the
	// previous slot's bus level.
	Skew(slot uint64, station int) bool
}

// Probe observes every bit slot, e.g. to record traces.
type Probe interface {
	// OnBit is called once per slot after all stations latched. views and
	// drives and samples are indexed by station and must not be retained.
	OnBit(slot uint64, busLevel bitstream.Level, drives, samples []bitstream.Level, views []ViewContext)
}

// Engine is a pluggable bit-slot executor for Run and RunUntil. An
// installed engine may batch-advance the simulation (skipping per-slot
// dispatch during provably quiescent stretches) but must produce exactly
// the state, event stream and RNG consumption the reference Step loop
// would: trace equivalence is the engine's contract, checked by the
// differential oracle in internal/bus/fastpath.
type Engine interface {
	// Advance simulates between 1 and budget bit slots (budget >= 1) and
	// returns how many it consumed.
	Advance(budget int) int
}

// Network couples stations through the wired-AND medium.
type Network struct {
	stations     []Station
	disturbers   []Disturber
	outputFaults []OutputFault
	skews        []SkewFault
	probes       []Probe
	emitter      obs.Sink
	engine       Engine
	version      uint64
	slot         uint64
	prevLevel    bitstream.Level

	// scratch buffers reused across steps
	drives  []bitstream.Level
	samples []bitstream.Level
	views   []ViewContext
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{prevLevel: bitstream.Recessive, version: 1}
}

// Attach adds a station to the bus and returns its station index.
func (n *Network) Attach(s Station) int {
	n.stations = append(n.stations, s)
	n.drives = append(n.drives, bitstream.Recessive)
	n.samples = append(n.samples, bitstream.Recessive)
	n.views = append(n.views, ViewContext{})
	n.version++
	return len(n.stations) - 1
}

// AddDisturber registers a disturbance model. Multiple disturbers compose:
// a bit is flipped when an odd number of them fire (each flip inverts).
func (n *Network) AddDisturber(d Disturber) {
	n.disturbers = append(n.disturbers, d)
	n.version++
}

// AddOutputFault registers a transceiver-level output override. Faults
// compose in registration order: each sees the level produced by the
// previous one.
func (n *Network) AddOutputFault(f OutputFault) {
	n.outputFaults = append(n.outputFaults, f)
	n.version++
}

// AddSkew registers a sample-point skew fault.
func (n *Network) AddSkew(f SkewFault) {
	n.skews = append(n.skews, f)
	n.version++
}

// AddProbe registers a per-bit observer.
func (n *Network) AddProbe(p Probe) {
	n.probes = append(n.probes, p)
	n.version++
}

// SetEmitter attaches a telemetry sink for bus-level events (frame
// starts). A nil sink turns emission off.
func (n *Network) SetEmitter(sink obs.Sink) {
	n.emitter = sink
	n.version++
}

// SetEngine installs (or, with nil, removes) a batch executor consulted
// by Run and RunUntil. Step always runs the reference loop, so per-slot
// callers keep exact single-slot semantics regardless of the engine.
//
// With an engine installed, RunUntil evaluates cond at batch boundaries
// only. This is sound for quiescence-style conditions because a
// conforming engine never batches across a slot in which the bus could
// become quiescent (see internal/bus/fastpath: fast-forward windows
// always contain an in-frame transmitter).
func (n *Network) SetEngine(e Engine) {
	n.engine = e
}

// Version counts configuration changes (attached stations, registered
// disturbers/faults/probes, emitter swaps). Engines compare it against
// the version they planned for and re-plan on mismatch, so disturbers
// added after construction are never missed.
func (n *Network) Version() uint64 { return n.version }

// Stations returns the number of attached stations.
func (n *Network) Stations() int { return len(n.stations) }

// StationAt returns the station attached at index i.
func (n *Network) StationAt(i int) Station { return n.stations[i] }

// DisturberList exposes the registered disturbers in registration order
// for engine planning. The returned slice is the network's own: callers
// must not mutate it.
func (n *Network) DisturberList() []Disturber { return n.disturbers }

// NumOutputFaults returns how many output faults are registered.
func (n *Network) NumOutputFaults() int { return len(n.outputFaults) }

// NumSkews returns how many skew faults are registered.
func (n *Network) NumSkews() int { return len(n.skews) }

// NumProbes returns how many probes are registered.
func (n *Network) NumProbes() int { return len(n.probes) }

// Emitter returns the bus-level telemetry sink (nil when off).
func (n *Network) Emitter() obs.Sink { return n.emitter }

// PrevLevel returns the bus level of the previous slot (Recessive before
// the first), the edge-detection state frame-start emission keys on.
func (n *Network) PrevLevel() bitstream.Level { return n.prevLevel }

// CommitSlot records the completion of one bit slot executed outside
// Step: it advances the slot counter and the previous-level latch. Part
// of the engine seam; callers other than an installed Engine must not
// use it.
func (n *Network) CommitSlot(level bitstream.Level) {
	n.prevLevel = level
	n.slot++
}

// SkipSlots records the completion of k batch-executed bit slots whose
// last bus level was last. Part of the engine seam, like CommitSlot.
func (n *Network) SkipSlots(k int, last bitstream.Level) {
	n.prevLevel = last
	n.slot += uint64(k)
}

// Slot returns the index of the next bit slot to be simulated.
func (n *Network) Slot() uint64 { return n.slot }

// Step simulates one bit slot and returns the (undisturbed) bus level.
func (n *Network) Step() bitstream.Level {
	for i, s := range n.stations {
		n.views[i] = s.View()
		n.drives[i] = s.Drive()
		for _, f := range n.outputFaults {
			n.drives[i] = f.Apply(n.slot, i, n.drives[i])
		}
	}
	level := bitstream.Wire(n.drives...)
	if n.emitter != nil && level == bitstream.Dominant && n.prevLevel == bitstream.Recessive {
		// A dominant edge after a recessive bit: if any station is driving
		// its SOF this slot, a frame is starting on the wire.
		n.emitFrameStart()
	}
	for i, s := range n.stations {
		sample := level
		for _, sk := range n.skews {
			if sk.Skew(n.slot, i) {
				sample = n.prevLevel
				break
			}
		}
		for _, d := range n.disturbers {
			if d.Disturb(n.slot, i, n.views[i]) {
				sample = sample.Invert()
			}
		}
		n.samples[i] = sample
		s.Latch(sample)
	}
	for _, p := range n.probes {
		p.OnBit(n.slot, level, n.drives, n.samples, n.views)
	}
	n.prevLevel = level
	n.slot++
	return level
}

// emitFrameStart reports a start-of-frame bit on the wire: Station is the
// lowest-indexed transmitting contender, Aux the number of simultaneous
// contenders (arbitration follows when it exceeds one).
func (n *Network) emitFrameStart() {
	if n.emitter == nil {
		return
	}
	first, contenders, attempts := -1, 0, 0
	for i, v := range n.views {
		if v.Transmitter && v.Phase == PhaseFrame && v.Field == frame.FieldSOF {
			if first < 0 {
				first, attempts = i, v.Attempts
			}
			contenders++
		}
	}
	if first < 0 {
		return
	}
	n.emitter.Emit(obs.Event{
		Slot:    n.slot,
		Kind:    obs.KindFrameStart,
		Station: int16(first),
		Flags:   obs.FlagTransmitter,
		Attempt: uint16(attempts),
		Aux:     uint32(contenders),
	})
}

// Run simulates the given number of bit slots, batching through the
// installed engine when one is set.
func (n *Network) Run(slots int) {
	if n.engine == nil {
		for i := 0; i < slots; i++ {
			n.Step()
		}
		return
	}
	for done := 0; done < slots; {
		done += n.engine.Advance(slots - done)
	}
}

// RunUntil steps the network until cond returns true or the slot budget is
// exhausted; it reports whether the condition was met. With an engine
// installed, cond is evaluated at batch boundaries (see SetEngine).
func (n *Network) RunUntil(cond func() bool, maxSlots int) bool {
	if n.engine == nil {
		for i := 0; i < maxSlots; i++ {
			if cond() {
				return true
			}
			n.Step()
		}
		return cond()
	}
	for done := 0; done < maxSlots; {
		if cond() {
			return true
		}
		done += n.engine.Advance(maxSlots - done)
	}
	return cond()
}
