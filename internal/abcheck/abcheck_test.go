package abcheck

import (
	"strings"
	"testing"
)

func key(origin int, seq uint32) MsgKey { return MsgKey{Origin: origin, Seq: seq} }

func TestCleanTraceSatisfiesAll(t *testing.T) {
	tr := Trace{
		Nodes: 3,
		Broadcasts: []Broadcast{
			{Key: key(0, 1), Slot: 0},
			{Key: key(1, 1), Slot: 200},
		},
		Deliveries: []Delivery{
			{Node: 0, Key: key(0, 1), Slot: 100},
			{Node: 1, Key: key(0, 1), Slot: 100},
			{Node: 2, Key: key(0, 1), Slot: 100},
			{Node: 0, Key: key(1, 1), Slot: 300},
			{Node: 1, Key: key(1, 1), Slot: 300},
			{Node: 2, Key: key(1, 1), Slot: 300},
		},
	}
	r := Check(tr)
	if !r.AtomicBroadcast() {
		t.Errorf("clean trace must satisfy Atomic Broadcast: %s", r.Summary())
	}
}

func TestAgreementViolation(t *testing.T) {
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key(0, 1)}},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1)},
			// node 2 never delivers
		},
	}
	r := Check(tr)
	if r.Satisfies(Agreement) {
		t.Error("missing delivery at node 2 must violate Agreement")
	}
	if r.InconsistentOmissions != 1 {
		t.Errorf("IMO count = %d, want 1", r.InconsistentOmissions)
	}
}

func TestAgreementToleratesFaultyNode(t *testing.T) {
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key(0, 1)}},
		Deliveries: []Delivery{{Node: 1, Key: key(0, 1)}},
		Faulty:     map[int]bool{2: true},
	}
	r := Check(tr)
	if !r.Satisfies(Agreement) {
		t.Error("a faulty node missing a delivery must not violate Agreement")
	}
}

func TestValidityViolation(t *testing.T) {
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key(0, 1)}},
	}
	r := Check(tr)
	if r.Satisfies(Validity) {
		t.Error("undelivered broadcast from a correct node must violate Validity")
	}
}

func TestValidityExemptsFaultyBroadcaster(t *testing.T) {
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key(0, 1)}},
		Faulty:     map[int]bool{0: true},
	}
	r := Check(tr)
	if !r.Satisfies(Validity) {
		t.Error("an undelivered broadcast from a crashed node must not violate Validity")
	}
	// But if it reaches one correct node and not another, Agreement fires.
	tr.Deliveries = []Delivery{{Node: 1, Key: key(0, 1)}}
	r = Check(tr)
	if r.Satisfies(Agreement) {
		t.Error("partial delivery must violate Agreement even with a crashed origin")
	}
}

func TestAtMostOnceViolation(t *testing.T) {
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key(0, 1)}},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1), Slot: 10},
			{Node: 1, Key: key(0, 1), Slot: 20}, // double reception
			{Node: 2, Key: key(0, 1), Slot: 10},
		},
	}
	r := Check(tr)
	if r.Satisfies(AtMostOnce) {
		t.Error("double reception must violate At-most-once")
	}
	if r.DuplicateDeliveries != 1 {
		t.Errorf("duplicate count = %d, want 1", r.DuplicateDeliveries)
	}
	if !r.Satisfies(Agreement) {
		t.Error("double reception alone must not violate Agreement")
	}
}

func TestNonTrivialityViolation(t *testing.T) {
	tr := Trace{
		Nodes:      2,
		Deliveries: []Delivery{{Node: 1, Key: key(0, 9)}},
	}
	r := Check(tr)
	if r.Satisfies(NonTriviality) {
		t.Error("delivery of a never-broadcast message must violate Non-triviality")
	}
}

func TestTotalOrderViolation(t *testing.T) {
	// The paper's CAN5 example: nodes having received A before its
	// retransmission see A, B, A while others see B, A.
	tr := Trace{
		Nodes: 3,
		Broadcasts: []Broadcast{
			{Key: key(0, 1)}, // A
			{Key: key(1, 1)}, // B
		},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1), Slot: 10}, // A first at node 1
			{Node: 1, Key: key(1, 1), Slot: 20},
			{Node: 2, Key: key(1, 1), Slot: 20}, // B first at node 2
			{Node: 2, Key: key(0, 1), Slot: 30},
		},
	}
	r := Check(tr)
	if r.Satisfies(TotalOrder) {
		t.Error("opposite delivery orders must violate Total Order")
	}
	if r.OrderInversions == 0 {
		t.Error("order inversion count must be positive")
	}
}

func TestTotalOrderIgnoresUncommonMessages(t *testing.T) {
	tr := Trace{
		Nodes: 3,
		Broadcasts: []Broadcast{
			{Key: key(0, 1)}, {Key: key(1, 1)},
		},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1)},
			{Node: 2, Key: key(1, 1)},
		},
		Faulty: map[int]bool{}, // both partial deliveries: Agreement fires, order cannot
	}
	r := Check(tr)
	if !r.Satisfies(TotalOrder) {
		t.Error("nodes with no common messages cannot violate Total Order")
	}
}

func TestTotalOrderUsesFirstDeliveries(t *testing.T) {
	// A duplicate later must not create a phantom inversion.
	tr := Trace{
		Nodes: 3,
		Broadcasts: []Broadcast{
			{Key: key(0, 1)}, {Key: key(1, 1)},
		},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1), Slot: 10},
			{Node: 1, Key: key(1, 1), Slot: 20},
			{Node: 2, Key: key(0, 1), Slot: 10},
			{Node: 2, Key: key(1, 1), Slot: 20},
			{Node: 2, Key: key(0, 1), Slot: 30}, // duplicate of A after B
		},
	}
	r := Check(tr)
	if !r.Satisfies(TotalOrder) {
		t.Errorf("duplicates must not break total order checking: %s", r.Summary())
	}
	if r.Satisfies(AtMostOnce) {
		t.Error("the duplicate must still violate At-most-once")
	}
}

func TestSummaryMentionsViolations(t *testing.T) {
	tr := Trace{
		Nodes:      2,
		Deliveries: []Delivery{{Node: 1, Key: key(0, 9)}},
	}
	s := Check(tr).Summary()
	if !strings.Contains(s, "AB4") {
		t.Errorf("summary %q must mention AB4", s)
	}
	clean := (&Report{}).Summary()
	if !strings.Contains(clean, "satisfied") {
		t.Errorf("clean summary %q must say satisfied", clean)
	}
}

// The empirical CAN6 j-degree: maximum IMOs within a sliding window.
func TestOmissionDegree(t *testing.T) {
	tr := Trace{
		Nodes: 3,
		Broadcasts: []Broadcast{
			{Key: key(0, 1), Slot: 0},    // IMO
			{Key: key(0, 2), Slot: 100},  // IMO
			{Key: key(0, 3), Slot: 5000}, // IMO, far away
			{Key: key(0, 4), Slot: 5100}, // consistent
		},
		Deliveries: []Delivery{
			{Node: 1, Key: key(0, 1)}, // node 2 misses 1
			{Node: 1, Key: key(0, 2)}, // node 2 misses 2
			{Node: 2, Key: key(0, 3)}, // node 1 misses 3
			{Node: 1, Key: key(0, 4)},
			{Node: 2, Key: key(0, 4)},
		},
	}
	if got := OmissionDegree(tr, 1000); got != 2 {
		t.Errorf("j over 1000 slots = %d, want 2", got)
	}
	if got := OmissionDegree(tr, 10000); got != 3 {
		t.Errorf("j over 10000 slots = %d, want 3", got)
	}
	if got := OmissionDegree(tr, 50); got != 1 {
		t.Errorf("j over 50 slots = %d, want 1", got)
	}
	clean := Trace{Nodes: 3, Broadcasts: []Broadcast{{Key: key(0, 1)}}}
	if got := OmissionDegree(clean, 1000); got != 0 {
		t.Errorf("j of a clean trace = %d, want 0", got)
	}
}

func TestUnknownNodeDelivery(t *testing.T) {
	tr := Trace{
		Nodes:      2,
		Deliveries: []Delivery{{Node: 5, Key: key(0, 1)}},
	}
	r := Check(tr)
	if r.AtomicBroadcast() {
		t.Error("delivery at an out-of-range node must be flagged")
	}
}
