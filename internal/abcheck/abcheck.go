// Package abcheck verifies the Atomic Broadcast properties AB1-AB5 (and
// the CAN-level properties of the paper's Section 2) over recorded
// broadcast/delivery traces.
//
// The property definitions follow the paper's adaptation of Hadzilacos &
// Toueg: nodes only fail benignly, a "message" is identified by its origin
// and sequence number, and correctness is judged at the end of the trace.
package abcheck

import (
	"fmt"
	"sort"
	"strings"
)

// MsgKey identifies a broadcast message: the broadcasting node and its
// per-origin sequence number.
type MsgKey struct {
	Origin int
	Seq    uint32
}

func (k MsgKey) String() string { return fmt.Sprintf("m(%d,%d)", k.Origin, k.Seq) }

// Broadcast records that a node invoked broadcast for a message.
type Broadcast struct {
	Key  MsgKey
	Slot uint64
}

// Delivery records that a node delivered a message to its upper layer.
type Delivery struct {
	Node int
	Key  MsgKey
	Slot uint64
}

// Trace is the observable history of one experiment.
type Trace struct {
	// Nodes is the number of stations.
	Nodes int
	// Broadcasts are the messages handed to the broadcast service, in
	// invocation order.
	Broadcasts []Broadcast
	// Deliveries are all delivery events. Order within one node must match
	// that node's delivery order.
	Deliveries []Delivery
	// Faulty marks nodes that failed during the run (crashed, switched
	// off, bus-off). Properties quantify over the remaining correct nodes.
	Faulty map[int]bool
}

// Correct reports whether node i stayed correct for the whole trace.
func (t *Trace) Correct(i int) bool { return !t.Faulty[i] }

// Property names the Atomic Broadcast properties of the paper.
type Property uint8

const (
	// Validity (AB1): if a correct node broadcasts a message, the message
	// is eventually delivered to a correct node.
	Validity Property = iota + 1
	// Agreement (AB2): if a message is delivered to a correct node, it is
	// eventually delivered to all correct nodes.
	Agreement
	// AtMostOnce (AB3): any message delivered to a correct node is
	// delivered at most once there.
	AtMostOnce
	// NonTriviality (AB4): any message delivered to a correct node was
	// broadcast by a node.
	NonTriviality
	// TotalOrder (AB5): any two messages delivered to any two correct
	// nodes are delivered in the same order to both.
	TotalOrder
)

func (p Property) String() string {
	switch p {
	case Validity:
		return "AB1-Validity"
	case Agreement:
		return "AB2-Agreement"
	case AtMostOnce:
		return "AB3-At-most-once"
	case NonTriviality:
		return "AB4-Non-triviality"
	case TotalOrder:
		return "AB5-Total-order"
	default:
		return fmt.Sprintf("Property(%d)", uint8(p))
	}
}

// Violation is one detected property violation.
type Violation struct {
	Property Property
	Detail   string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Property, v.Detail) }

// Report is the outcome of checking a trace.
type Report struct {
	Violations []Violation
	// InconsistentOmissions counts the messages for which some correct
	// node delivered and another correct node never did (the paper's IMO
	// count behind property CAN6/CAN6').
	InconsistentOmissions int
	// DuplicateDeliveries counts (node, message) pairs delivered more than
	// once (the double receptions).
	DuplicateDeliveries int
	// OrderInversions counts pairs of messages delivered in opposite
	// orders at two nodes.
	OrderInversions int
}

// Satisfies reports whether no violation of p was found.
func (r *Report) Satisfies(p Property) bool {
	for _, v := range r.Violations {
		if v.Property == p {
			return false
		}
	}
	return true
}

// AtomicBroadcast reports whether all five properties hold.
func (r *Report) AtomicBroadcast() bool { return len(r.Violations) == 0 }

// Summary renders the report.
func (r *Report) Summary() string {
	if r.AtomicBroadcast() {
		return "Atomic Broadcast: all properties satisfied"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Atomic Broadcast violated (%d violations, %d IMOs, %d duplicates, %d order inversions):\n",
		len(r.Violations), r.InconsistentOmissions, r.DuplicateDeliveries, r.OrderInversions)
	max := len(r.Violations)
	if max > 20 {
		max = 20
	}
	for _, v := range r.Violations[:max] {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if len(r.Violations) > max {
		fmt.Fprintf(&b, "  ... and %d more\n", len(r.Violations)-max)
	}
	return b.String()
}

// OmissionDegree computes the paper's CAN6/CAN6' measure over a trace:
// the maximum number of inconsistent message omissions whose broadcasts
// fall within any sliding interval of trd slots. CAN6 states that within a
// known interval of reference such failures occur in at most j
// transmissions; this returns the trace's empirical j.
func OmissionDegree(tr Trace, trd uint64) int {
	// Collect the broadcast slots of messages that ended as IMOs.
	deliveredBy := make(map[MsgKey]map[int]bool)
	for _, d := range tr.Deliveries {
		if deliveredBy[d.Key] == nil {
			deliveredBy[d.Key] = make(map[int]bool)
		}
		deliveredBy[d.Key][d.Node] = true
	}
	var imoSlots []uint64
	for _, b := range tr.Broadcasts {
		nodes := deliveredBy[b.Key]
		got, missing := 0, 0
		for n := 0; n < tr.Nodes; n++ {
			if !tr.Correct(n) || n == b.Key.Origin {
				continue
			}
			if nodes[n] {
				got++
			} else {
				missing++
			}
		}
		if got > 0 && missing > 0 {
			imoSlots = append(imoSlots, b.Slot)
		}
	}
	sort.Slice(imoSlots, func(i, j int) bool { return imoSlots[i] < imoSlots[j] })
	// Maximum count within any window of trd slots (two-pointer sweep).
	best, lo := 0, 0
	for hi := range imoSlots {
		for imoSlots[hi]-imoSlots[lo] >= trd {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return best
}

// Check verifies all properties over the trace.
func Check(tr Trace) *Report {
	r := &Report{}
	broadcastSet := make(map[MsgKey]bool, len(tr.Broadcasts))
	for _, b := range tr.Broadcasts {
		broadcastSet[b.Key] = true
	}

	// Per-node delivery sequences (correct nodes only are judged, but we
	// build all for diagnostics), sized exactly with a counting pass.
	perNode := make([][]Delivery, tr.Nodes)
	nodeCount := make([]int, tr.Nodes)
	for _, d := range tr.Deliveries {
		if d.Node >= 0 && d.Node < tr.Nodes {
			nodeCount[d.Node]++
		}
	}
	for node := range perNode {
		perNode[node] = make([]Delivery, 0, nodeCount[node])
	}
	for _, d := range tr.Deliveries {
		if d.Node < 0 || d.Node >= tr.Nodes {
			r.Violations = append(r.Violations, Violation{
				Property: NonTriviality,
				Detail:   fmt.Sprintf("delivery at unknown node %d", d.Node),
			})
			continue
		}
		perNode[d.Node] = append(perNode[d.Node], d)
	}

	// key -> per-node delivery counts. A count slice (indexed by node)
	// instead of a nested map: the trace of a long sweep holds one key per
	// frame, and incrementing a slice cell is a plain store where a nested
	// map would pay an allocation plus a hash per delivery. The count
	// slices are carved out of chunked arenas so a long trace costs a
	// handful of allocations, not one per key.
	deliveredBy := make(map[MsgKey][]int, len(tr.Broadcasts))
	var arena []int
	for node, ds := range perNode {
		for _, d := range ds {
			counts := deliveredBy[d.Key]
			if counts == nil {
				if len(arena) < tr.Nodes {
					arena = make([]int, tr.Nodes*max(16, len(tr.Broadcasts)))
				}
				counts, arena = arena[:tr.Nodes:tr.Nodes], arena[tr.Nodes:]
				deliveredBy[d.Key] = counts
			}
			counts[node]++
		}
	}

	// AB4 Non-triviality.
	for key := range deliveredBy {
		if !broadcastSet[key] {
			r.Violations = append(r.Violations, Violation{
				Property: NonTriviality,
				Detail:   fmt.Sprintf("%s delivered but never broadcast", key),
			})
		}
	}

	// AB3 At-most-once.
	for key, counts := range deliveredBy {
		for node, count := range counts {
			if count > 1 && tr.Correct(node) {
				r.DuplicateDeliveries++
				r.Violations = append(r.Violations, Violation{
					Property: AtMostOnce,
					Detail:   fmt.Sprintf("%s delivered %d times at node %d", key, count, node),
				})
			}
		}
	}

	// AB1 Validity and AB2 Agreement.
	for _, b := range tr.Broadcasts {
		if !tr.Correct(b.Key.Origin) {
			continue // AB1 only quantifies over correct broadcasters
		}
		anyCorrect := false
		for node, count := range deliveredBy[b.Key] {
			if count > 0 && tr.Correct(node) {
				anyCorrect = true
				break
			}
		}
		if !anyCorrect {
			r.Violations = append(r.Violations, Violation{
				Property: Validity,
				Detail:   fmt.Sprintf("%s broadcast by correct node %d but never delivered to a correct node", b.Key, b.Key.Origin),
			})
		}
	}
	for key, counts := range deliveredBy {
		deliveredToCorrect := false
		for node, count := range counts {
			if count > 0 && tr.Correct(node) {
				deliveredToCorrect = true
				break
			}
		}
		if !deliveredToCorrect {
			continue
		}
		var missing []int
		for node := 0; node < tr.Nodes; node++ {
			if !tr.Correct(node) {
				continue
			}
			if node == key.Origin {
				// Delivery at the origin is implicit in the broadcast
				// itself; traces may or may not record a local delivery.
				continue
			}
			if counts[node] == 0 {
				missing = append(missing, node)
			}
		}
		if len(missing) > 0 {
			r.InconsistentOmissions++
			r.Violations = append(r.Violations, Violation{
				Property: Agreement,
				Detail:   fmt.Sprintf("%s delivered to some correct nodes but not to %v", key, missing),
			})
		}
	}

	// AB5 Total order: for every pair of correct nodes, the common
	// messages must appear in the same relative order (first deliveries
	// are compared; duplicates are an AB3 matter). perNode is already in
	// delivery order, so one scan per node yields both the first-delivery
	// index map and the keys sorted by first delivery.
	firstIndex := make([]map[MsgKey]int, tr.Nodes)
	firstKeys := make([][]MsgKey, tr.Nodes)
	for node, ds := range perNode {
		fi := make(map[MsgKey]int, len(ds))
		keys := make([]MsgKey, 0, len(ds))
		for idx, d := range ds {
			if _, seen := fi[d.Key]; !seen {
				fi[d.Key] = idx
				keys = append(keys, d.Key)
			}
		}
		firstIndex[node], firstKeys[node] = fi, keys
	}
	for a := 0; a < tr.Nodes; a++ {
		if !tr.Correct(a) {
			continue
		}
		ordered := firstKeys[a]
		for b := a + 1; b < tr.Nodes; b++ {
			if !tr.Correct(b) {
				continue
			}
			// Walk a's keys in a's order, restricted to those b also
			// delivered; b's first-delivery indices must be monotone.
			prev := -1
			var prevKey MsgKey
			for _, key := range ordered {
				ib, ok := firstIndex[b][key]
				if !ok {
					continue
				}
				if prev >= 0 && prev > ib {
					r.OrderInversions++
					r.Violations = append(r.Violations, Violation{
						Property: TotalOrder,
						Detail: fmt.Sprintf("nodes %d and %d deliver %s and %s in opposite orders",
							a, b, prevKey, key),
					})
				}
				prev, prevKey = ib, key
			}
		}
	}
	return r
}
