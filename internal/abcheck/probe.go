package abcheck

import "strings"

// TraceProbe checks one invariant class over a finished trace. It is the
// unit of composition for the chaos campaign engine: a campaign attaches a
// set of probes and a run fails when any probe reports violations.
type TraceProbe interface {
	// Name identifies the probe in findings and artifacts.
	Name() string
	// Verify returns the violations found in the trace (nil when clean).
	Verify(tr Trace) []Violation
}

// Properties returns a TraceProbe verifying the given Atomic Broadcast
// properties (all five when none are listed) via Check, filtering the
// report down to the requested subset.
func Properties(props ...Property) TraceProbe {
	if len(props) == 0 {
		props = []Property{Validity, Agreement, AtMostOnce, NonTriviality, TotalOrder}
	}
	return propertiesProbe{props: props}
}

type propertiesProbe struct {
	props []Property
}

func (p propertiesProbe) Name() string {
	parts := make([]string, len(p.props))
	for i, prop := range p.props {
		parts[i] = prop.String()
	}
	return "ab(" + strings.Join(parts, ",") + ")"
}

func (p propertiesProbe) Verify(tr Trace) []Violation {
	report := Check(tr)
	var out []Violation
	for _, v := range report.Violations {
		for _, prop := range p.props {
			if v.Property == prop {
				out = append(out, v)
				break
			}
		}
	}
	return out
}
