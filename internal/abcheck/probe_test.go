package abcheck

import "testing"

// imoTrace is a 3-node trace where node 1 delivers m(0,1) but node 2 never
// does: an Agreement violation (and nothing else).
func imoTrace() Trace {
	key := MsgKey{Origin: 0, Seq: 1}
	return Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key, Slot: 0}},
		Deliveries: []Delivery{{Node: 1, Key: key, Slot: 100}},
		Faulty:     map[int]bool{},
	}
}

func TestPropertiesProbeDefaultsToAllFive(t *testing.T) {
	p := Properties()
	vs := p.Verify(imoTrace())
	if len(vs) != 1 || vs[0].Property != Agreement {
		t.Fatalf("violations = %v, want exactly one Agreement violation", vs)
	}
	if p.Name() == "" {
		t.Error("probe name must not be empty")
	}
}

func TestPropertiesProbeFiltersToSubset(t *testing.T) {
	tr := imoTrace()
	if vs := Properties(Agreement).Verify(tr); len(vs) != 1 {
		t.Errorf("Agreement probe: %v, want 1 violation", vs)
	}
	if vs := Properties(AtMostOnce, TotalOrder).Verify(tr); len(vs) != 0 {
		t.Errorf("AB3/AB5 probe must not report the Agreement violation, got %v", vs)
	}
}

func TestPropertiesProbeCleanTrace(t *testing.T) {
	key := MsgKey{Origin: 0, Seq: 1}
	tr := Trace{
		Nodes:      3,
		Broadcasts: []Broadcast{{Key: key, Slot: 0}},
		Deliveries: []Delivery{
			{Node: 1, Key: key, Slot: 100},
			{Node: 2, Key: key, Slot: 100},
		},
		Faulty: map[int]bool{},
	}
	if vs := Properties().Verify(tr); len(vs) != 0 {
		t.Errorf("clean trace must have no violations, got %v", vs)
	}
}
