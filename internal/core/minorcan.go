package core

import (
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/frame"
	"repro/internal/node"
)

// MinorCAN is the paper's first, minimal modification of CAN (Section 3).
// Errors detected before the last EOF bit reject the frame and errors
// detected after it leave the frame accepted, exactly as in standard CAN.
// For an error detected in the last EOF bit, both receivers and the
// transmitter apply the same criterion, implemented with the CAN MAC's
// Primary_error signal: after sending its six-bit flag, the node samples
// the following bit. A dominant level there is the tail of a flag some
// other node started later, i.e. this node was the first to detect the
// error — nobody has rejected the frame, so it accepts (and the
// transmitter does not retransmit). A recessive level means this node was
// reacting to somebody else's flag, so it rejects (and the transmitter
// retransmits).
type MinorCAN struct{}

var _ node.EOFPolicy = MinorCAN{}

// NewMinorCAN returns the MinorCAN policy.
func NewMinorCAN() MinorCAN { return MinorCAN{} }

// Name implements node.EOFPolicy.
func (MinorCAN) Name() string { return "MinorCAN" }

// EOFBits implements node.EOFPolicy.
func (MinorCAN) EOFBits() int { return frame.StandardEOFBits }

// DelimiterBits implements node.EOFPolicy.
func (MinorCAN) DelimiterBits() int { return 8 }

// NewEpisode implements node.EOFPolicy.
func (MinorCAN) NewEpisode(env node.EpisodeEnv) node.EOFEpisode {
	ep := &minorEpisode{eofBits: frame.StandardEOFBits, env: env, pos: 1}
	if env.RejectAtStart {
		ep.mode = minorFlag
		ep.flagLeft = flagBits
		ep.status = node.EpisodeStatus{
			Verdict:   node.VerdictReject,
			After:     node.AfterErrorDelim,
			Signalled: true,
			Kind:      env.RejectKind,
		}
	}
	return ep
}

type minorMode uint8

const (
	minorQuiet   minorMode = iota // monitoring the EOF field
	minorFlag                     // sending a flag; status already decided
	minorLastbit                  // sending a flag for a last-bit error; probe follows
	minorProbe                    // sampling the bit after the own flag (Primary_error)
)

type minorEpisode struct {
	eofBits  int
	env      node.EpisodeEnv
	pos      int
	mode     minorMode
	flagLeft int
	status   node.EpisodeStatus
}

func (e *minorEpisode) Drive() bitstream.Level {
	if (e.mode == minorFlag || e.mode == minorLastbit) && !e.env.ErrorPassive {
		return bitstream.Dominant
	}
	return bitstream.Recessive
}

func (e *minorEpisode) Phase() (bus.Phase, int) {
	switch e.mode {
	case minorFlag, minorLastbit:
		return bus.PhaseErrorFlag, e.pos
	case minorProbe:
		return bus.PhaseSampling, e.pos
	default:
		return bus.PhaseEOF, e.pos
	}
}

func (e *minorEpisode) Latch(level bitstream.Level) node.EpisodeStatus {
	defer func() { e.pos++ }()
	switch e.mode {
	case minorQuiet:
		if level == bitstream.Dominant {
			e.flagLeft = flagBits
			if e.pos < e.eofBits {
				// Before the last EOF bit: reject as in standard CAN.
				e.mode = minorFlag
				kind := node.ErrForm
				if e.env.Transmitter {
					kind = node.ErrBit
				}
				e.status = node.EpisodeStatus{
					Verdict:   node.VerdictReject,
					After:     node.AfterErrorDelim,
					Signalled: true,
					Kind:      kind,
				}
			} else {
				// Last EOF bit: flag now, decide by the Primary_error probe.
				e.mode = minorLastbit
			}
			return node.EpisodeStatus{}
		}
		if e.pos >= e.eofBits {
			return node.EpisodeStatus{Done: true, Verdict: node.VerdictAccept, After: node.AfterNone}
		}
		return node.EpisodeStatus{}
	case minorFlag:
		e.flagLeft--
		if e.flagLeft <= 0 {
			st := e.status
			st.Done = true
			return st
		}
		return node.EpisodeStatus{}
	case minorLastbit:
		e.flagLeft--
		if e.flagLeft <= 0 {
			e.mode = minorProbe
		}
		return node.EpisodeStatus{}
	default: // minorProbe: the bit right after the own flag
		if level == bitstream.Dominant {
			// Primary_error: some other node's flag is still on the bus, so
			// this node detected the error first — accept the frame.
			return node.EpisodeStatus{
				Done:      true,
				Verdict:   node.VerdictAccept,
				After:     node.AfterOverloadDelim,
				Signalled: true,
				Kind:      node.ErrOverload,
			}
		}
		// The error was caused by an earlier flag of another node, which
		// has already rejected the frame: reject too. The recessive probe
		// bit already counts as the first delimiter bit.
		return node.EpisodeStatus{
			Done:        true,
			Verdict:     node.VerdictReject,
			After:       node.AfterErrorDelim,
			DelimCredit: 1,
			Signalled:   true,
			Kind:        node.ErrForm,
		}
	}
}
