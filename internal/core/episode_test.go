package core_test

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/node"
)

// drive feeds a level sequence into an episode and returns the drives it
// produced (one per latched bit, queried before each Latch) and the final
// status.
func drive(t *testing.T, ep node.EOFEpisode, levels string) (bitstream.Sequence, node.EpisodeStatus) {
	t.Helper()
	seq, err := bitstream.ParseSequence(levels)
	if err != nil {
		t.Fatal(err)
	}
	var out bitstream.Sequence
	var st node.EpisodeStatus
	for i, l := range seq {
		out = append(out, ep.Drive())
		st = ep.Latch(l)
		if st.Done && i != len(seq)-1 {
			t.Fatalf("episode finished early at bit %d of %d", i+1, len(seq))
		}
	}
	return out, st
}

func TestStandardEpisodeCleanAccept(t *testing.T) {
	ep := core.NewStandard().NewEpisode(node.EpisodeEnv{})
	out, st := drive(t, ep, "rrrrrrr") // 7 clean EOF bits
	if !st.Done || st.Verdict != node.VerdictAccept || st.After != node.AfterNone {
		t.Errorf("status = %+v, want done/accept/none", st)
	}
	if out.Compact() != "rrrrrrr" {
		t.Errorf("drives = %s, want all recessive", out.Compact())
	}
}

func TestStandardEpisodeReceiverEarlyErrorRejects(t *testing.T) {
	ep := core.NewStandard().NewEpisode(node.EpisodeEnv{})
	// Dominant at EOF bit 3: 6-bit error flag at bits 4..9, then done.
	out, st := drive(t, ep, "rrd"+"rrrrrr")
	if !st.Done || st.Verdict != node.VerdictReject || st.After != node.AfterErrorDelim {
		t.Errorf("status = %+v, want done/reject/error-delim", st)
	}
	if out.Compact() != "rrr"+"dddddd" {
		t.Errorf("drives = %s, want flag after the error", out.Compact())
	}
	if !st.Signalled || st.Kind != node.ErrForm {
		t.Errorf("signalled=%v kind=%v, want form error", st.Signalled, st.Kind)
	}
}

func TestStandardEpisodeLastBitRule(t *testing.T) {
	t.Run("receiver accepts with overload flag", func(t *testing.T) {
		ep := core.NewStandard().NewEpisode(node.EpisodeEnv{})
		out, st := drive(t, ep, "rrrrrr"+"d"+"rrrrrr")
		if st.Verdict != node.VerdictAccept || st.After != node.AfterOverloadDelim {
			t.Errorf("status = %+v, want accept/overload-delim", st)
		}
		if out.Compact() != "rrrrrrr"+"dddddd" {
			t.Errorf("drives = %s", out.Compact())
		}
	})
	t.Run("transmitter rejects and retransmits", func(t *testing.T) {
		ep := core.NewStandard().NewEpisode(node.EpisodeEnv{Transmitter: true})
		_, st := drive(t, ep, "rrrrrr"+"d"+"rrrrrr")
		if st.Verdict != node.VerdictReject || st.After != node.AfterErrorDelim {
			t.Errorf("status = %+v, want reject/error-delim", st)
		}
		if st.Kind != node.ErrBit {
			t.Errorf("kind = %v, want bit error", st.Kind)
		}
	})
}

func TestStandardEpisodeRejectAtStart(t *testing.T) {
	ep := core.NewStandard().NewEpisode(node.EpisodeEnv{RejectAtStart: true, RejectKind: node.ErrCRC})
	// Flag occupies EOF bits 1..6 regardless of the bus.
	out, st := drive(t, ep, "dddddd")
	if st.Verdict != node.VerdictReject || st.Kind != node.ErrCRC {
		t.Errorf("status = %+v, want reject with CRC kind", st)
	}
	if out.Compact() != "dddddd" {
		t.Errorf("drives = %s, want immediate flag", out.Compact())
	}
}

func TestMinorEpisodePrimaryProbeAccept(t *testing.T) {
	// Error at the last bit, then dominant at the probe bit (another
	// node's flag still running): primary error, accept.
	ep := core.NewMinorCAN().NewEpisode(node.EpisodeEnv{})
	out, st := drive(t, ep, "rrrrrr"+"d"+"rrrrrr"+"d")
	if st.Verdict != node.VerdictAccept || st.After != node.AfterOverloadDelim {
		t.Errorf("status = %+v, want accept/overload-delim", st)
	}
	if st.DelimCredit != 0 {
		t.Errorf("delim credit = %d, want 0 on the dominant probe", st.DelimCredit)
	}
	if out.Compact() != "rrrrrrr"+"dddddd"+"r" {
		t.Errorf("drives = %s", out.Compact())
	}
}

func TestMinorEpisodePrimaryProbeReject(t *testing.T) {
	// Error at the last bit, recessive probe: someone flagged before us,
	// reject; the probe bit counts as the first delimiter bit.
	ep := core.NewMinorCAN().NewEpisode(node.EpisodeEnv{})
	_, st := drive(t, ep, "rrrrrr"+"d"+"rrrrrr"+"r")
	if st.Verdict != node.VerdictReject || st.After != node.AfterErrorDelim {
		t.Errorf("status = %+v, want reject/error-delim", st)
	}
	if st.DelimCredit != 1 {
		t.Errorf("delim credit = %d, want 1", st.DelimCredit)
	}
}

func TestMinorEpisodeEarlyErrorStandardBehaviour(t *testing.T) {
	ep := core.NewMinorCAN().NewEpisode(node.EpisodeEnv{})
	_, st := drive(t, ep, "d"+"rrrrrr")
	if st.Verdict != node.VerdictReject {
		t.Errorf("verdict = %v, want reject", st.Verdict)
	}
}

func TestMajorEpisodeCleanAccept(t *testing.T) {
	m := 5
	ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
	levels := ""
	for i := 0; i < 2*m; i++ {
		levels += "r"
	}
	out, st := drive(t, ep, levels)
	if !st.Done || st.Verdict != node.VerdictAccept || st.After != node.AfterNone {
		t.Errorf("status = %+v, want done/accept/none", st)
	}
	if out.CountDominant() != 0 {
		t.Errorf("clean episode must drive only recessive, got %s", out.Compact())
	}
}

// First sub-field detection: 6-bit flag, then sampling through 3m+5 with a
// majority vote.
func TestMajorEpisodeFirstSubfieldSampling(t *testing.T) {
	m := 5
	t.Run("majority dominant accepts", func(t *testing.T) {
		ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
		// Error at pos 3; flag at 4..9; quiet 10..11; window 12..20 all
		// dominant (an extender notifying).
		levels := "rrd" + "rrrrrr" + "rr" + "ddddddddd"
		out, st := drive(t, ep, levels)
		if st.Verdict != node.VerdictAccept || st.After != node.AfterErrorDelim {
			t.Errorf("status = %+v, want accept/error-delim", st)
		}
		if out.Compact() != "rrr"+"dddddd"+"rr"+"rrrrrrrrr" {
			t.Errorf("drives = %s", out.Compact())
		}
	})
	t.Run("exact majority m of 2m-1 accepts", func(t *testing.T) {
		ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
		levels := "rrd" + "rrrrrr" + "rr" + "dddddrrrr" // 5 of 9 dominant
		_, st := drive(t, ep, levels)
		if st.Verdict != node.VerdictAccept {
			t.Errorf("verdict = %v, want accept at exactly m votes", st.Verdict)
		}
	})
	t.Run("minority dominant rejects", func(t *testing.T) {
		ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
		levels := "rrd" + "rrrrrr" + "rr" + "ddddrrrrr" // 4 of 9 dominant
		_, st := drive(t, ep, levels)
		if st.Verdict != node.VerdictReject {
			t.Errorf("verdict = %v, want reject below majority", st.Verdict)
		}
	})
	t.Run("dominants outside the window are not votes", func(t *testing.T) {
		ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
		// Error at pos 1; flag 2..7; positions 8..11 dominant (other
		// flags, before the window); window 12..20 all recessive.
		levels := "d" + "rrrrrr" + "dddd" + "rrrrrrrrr"
		_, st := drive(t, ep, levels)
		if st.Verdict != node.VerdictReject {
			t.Errorf("verdict = %v, want reject (no in-window votes)", st.Verdict)
		}
	})
}

// Second sub-field detection: accept and extend the flag through 3m+5.
func TestMajorEpisodeSecondSubfieldExtends(t *testing.T) {
	m := 5
	ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
	// Error at pos 6 (first bit of the second sub-field): extended flag
	// from 7 through 20.
	levels := "rrrrr" + "d" + "dddddddddddddd" // pos 1..20
	out, st := drive(t, ep, levels)
	if st.Verdict != node.VerdictAccept || st.After != node.AfterErrorDelim {
		t.Errorf("status = %+v, want accept/error-delim", st)
	}
	want := "rrrrrr" + "dddddddddddddd"
	if out.Compact() != want {
		t.Errorf("drives = %s, want %s", out.Compact(), want)
	}
}

// RejectAtStart: 6-bit flag at 1..6, then silent waiting through 3m+5;
// even an all-dominant bus (others accepting) must not change the verdict.
func TestMajorEpisodeRejectAtStartNeverAccepts(t *testing.T) {
	m := 5
	ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{RejectAtStart: true, RejectKind: node.ErrCRC})
	levels := "dddddd" + "dddddddddddddd" // bus dominant throughout
	out, st := drive(t, ep, levels)
	if st.Verdict != node.VerdictReject {
		t.Errorf("verdict = %v, a CRC-error node must never accept", st.Verdict)
	}
	want := "dddddd" + "rrrrrrrrrrrrrr"
	if out.Compact() != want {
		t.Errorf("drives = %s, want flag then silence", out.Compact())
	}
}

// Second errors during the episode are suppressed: a sampling node seeing
// stray dominants outside the window sends no additional flag.
func TestMajorEpisodeSuppressesSecondErrors(t *testing.T) {
	m := 5
	ep := core.MustMajorCAN(m).NewEpisode(node.EpisodeEnv{})
	// Error at 2, flag 3..8, stray dominant at 10, window 12..20 recessive.
	levels := "rd" + "rrrrrr" + "rd" + "r" + "rrrrrrrrr" // pos 1..20
	out, st := drive(t, ep, levels)
	if st.Verdict != node.VerdictReject {
		t.Errorf("verdict = %v, want reject", st.Verdict)
	}
	// Drives after the 6-bit flag must stay recessive (no second flag).
	if out[8:].CountDominant() != 0 {
		t.Errorf("second error must not be signalled, drives = %s", out.Compact())
	}
}

// Phase reporting positions are 1-based EOF-relative, and the paper's
// boundaries are exposed through the policy accessors.
func TestMajorEpisodePhaseReporting(t *testing.T) {
	m := 5
	p := core.MustMajorCAN(m)
	ep := p.NewEpisode(node.EpisodeEnv{})
	phase, pos := ep.Phase()
	if phase != bus.PhaseEOF || pos != 1 {
		t.Errorf("initial phase = %v@%d, want eof@1", phase, pos)
	}
	ep.Latch(bitstream.Dominant) // error at pos 1
	phase, pos = ep.Phase()
	if phase != bus.PhaseErrorFlag || pos != 2 {
		t.Errorf("after error: %v@%d, want error-flag@2", phase, pos)
	}
	for i := 0; i < 6; i++ {
		ep.Latch(bitstream.Recessive)
	}
	phase, pos = ep.Phase()
	if phase != bus.PhaseSampling || pos != 8 {
		t.Errorf("after flag: %v@%d, want sampling@8", phase, pos)
	}
}
