package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPolicyParameters(t *testing.T) {
	std := core.NewStandard()
	if std.Name() != "CAN" || std.EOFBits() != 7 || std.DelimiterBits() != 8 {
		t.Errorf("standard CAN parameters wrong: %s %d %d", std.Name(), std.EOFBits(), std.DelimiterBits())
	}
	minor := core.NewMinorCAN()
	if minor.Name() != "MinorCAN" || minor.EOFBits() != 7 || minor.DelimiterBits() != 8 {
		t.Errorf("MinorCAN parameters wrong: %s %d %d", minor.Name(), minor.EOFBits(), minor.DelimiterBits())
	}
	major := core.MustMajorCAN(5)
	if major.Name() != "MajorCAN_5" {
		t.Errorf("name = %q", major.Name())
	}
	if major.EOFBits() != 10 {
		t.Errorf("EOFBits = %d, want 2m = 10", major.EOFBits())
	}
	if major.DelimiterBits() != 11 {
		t.Errorf("DelimiterBits = %d, want 2m+1 = 11", major.DelimiterBits())
	}
	if major.EndPos() != 20 {
		t.Errorf("EndPos = %d, want 3m+5 = 20", major.EndPos())
	}
	if major.WindowStart() != 12 {
		t.Errorf("WindowStart = %d, want m+7 = 12", major.WindowStart())
	}
}

// The paper's overhead claims (Sections 5 and 6): best case 2m-7 bits
// (3 bits for m=5), worst case 4m-9 bits (11 bits for m=5).
func TestOverheadFormulas(t *testing.T) {
	tests := []struct {
		m          int
		best, wrst int
	}{
		{3, -1, 3}, // MajorCAN_3 is SHORTER than CAN in the error-free case
		{4, 1, 7},
		{5, 3, 11}, // the paper's proposal
		{6, 5, 15},
		{8, 9, 23},
	}
	for _, tt := range tests {
		p := core.MustMajorCAN(tt.m)
		if got := p.BestCaseOverhead(); got != tt.best {
			t.Errorf("m=%d best-case overhead = %d, want %d", tt.m, got, tt.best)
		}
		if got := p.WorstCaseOverhead(); got != tt.wrst {
			t.Errorf("m=%d worst-case overhead = %d, want %d", tt.m, got, tt.wrst)
		}
		// The worst case adds 2m-2 bits on top of the best case.
		if got := p.WorstCaseOverhead() - p.BestCaseOverhead(); got != 2*tt.m-2 {
			t.Errorf("m=%d extension = %d, want 2m-2 = %d", tt.m, got, 2*tt.m-2)
		}
	}
}

func TestMajorCANValidation(t *testing.T) {
	for _, m := range []int{-1, 0, 1, 2} {
		if _, err := core.NewMajorCAN(m); err == nil {
			t.Errorf("m=%d must be rejected (the paper requires m > 2)", m)
		}
	}
	if _, err := core.NewMajorCAN(3); err != nil {
		t.Errorf("m=3 must be accepted: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMajorCAN(2) must panic")
		}
	}()
	core.MustMajorCAN(2)
}

func TestMajorCANNameEncodesM(t *testing.T) {
	for _, m := range []int{3, 5, 12} {
		name := core.MustMajorCAN(m).Name()
		if !strings.HasPrefix(name, "MajorCAN_") {
			t.Errorf("name %q", name)
		}
	}
}
