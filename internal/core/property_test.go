package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// flipSpec is one randomly placed disturbance: a station's view flipped at
// a 1-based EOF-relative position during the first transmission attempt.
type flipSpec struct {
	station int
	rel     int
}

func clusterWithFlips(t *testing.T, m int, flips []flipSpec) (*sim.Cluster, *frame.Frame) {
	t.Helper()
	policy := core.MustMajorCAN(m)
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
	rules := make([]*errmodel.Rule, 0, len(flips))
	for _, fl := range flips {
		rules = append(rules, errmodel.AtEOFBit([]int{fl.station}, fl.rel, 1))
	}
	c.Net.AddDisturber(errmodel.NewScript(rules...))
	f := &frame.Frame{ID: 0x123, Data: []byte{0xCA, 0xFE}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	return c, f
}

// TestMajorCANAgreementInvariant is the paper's central theorem as a
// randomized property: MajorCAN_m provides Atomic Broadcast in the
// presence of up to m randomly distributed errors per frame. We place up
// to m view flips at random stations and random positions across the
// entire end-of-frame decision region (EOF, flags, sampling window,
// extended flags: positions 1..3m+5) of the first transmission attempt and
// require that every receiver ends up with exactly one copy and the
// transmitter agrees.
func TestMajorCANAgreementInvariant(t *testing.T) {
	const m = 5
	endPos := 3*m + 5
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 1500; trial++ {
		k := 1 + r.Intn(m) // 1..m flips
		flips := make([]flipSpec, k)
		for i := range flips {
			flips[i] = flipSpec{station: r.Intn(5), rel: 1 + r.Intn(endPos)}
		}
		c, f := clusterWithFlips(t, m, flips)
		if !c.RunUntilQuiet(8000) {
			t.Fatalf("trial %d flips %v: no quiescence", trial, flips)
		}
		if got := c.Nodes[0].TxSuccesses(); got != 1 {
			t.Fatalf("trial %d flips %v: transmitter successes = %d, want 1", trial, flips, got)
		}
		for i := 1; i < 5; i++ {
			if n := c.DeliveryCount(i, f); n != 1 {
				t.Fatalf("trial %d flips %v: station %d delivered %d copies, want 1\nverdicts: %v",
					trial, flips, i, n, c.Verdicts)
			}
		}
	}
}

// The invariant with additional flips in the data field. The payload
// alternates 0x55/0xAA so no stuff conditions exist in the data region and
// a single flip cannot create one: content errors corrupt the CRC check
// but never a node's frame-length perception. Such errors must resolve
// into consistent rejects and a clean retransmission.
func TestMajorCANContentErrorConsistency(t *testing.T) {
	const m = 5
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		k := 1 + r.Intn(m)
		rules := make([]*errmodel.Rule, 0, k)
		for i := 0; i < k; i++ {
			station := r.Intn(5)
			if r.Intn(2) == 0 {
				// Somewhere in the EOF decision region.
				rules = append(rules, errmodel.AtEOFBit([]int{station}, 1+r.Intn(3*m+5), 1))
			} else {
				// Somewhere in the data field (alternating payload: a flip
				// never changes the stuffing).
				idx := r.Intn(64)
				rules = append(rules, &errmodel.Rule{
					Stations: []int{station},
					Count:    1,
					When: func(_ uint64, _ int, v bus.ViewContext) bool {
						return v.Phase == bus.PhaseFrame && v.Attempts == 1 &&
							v.Field == frame.FieldData && v.Index == idx
					},
				})
			}
		}
		policy := core.MustMajorCAN(m)
		c := sim.MustCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
		c.Net.AddDisturber(errmodel.NewScript(rules...))
		f := &frame.Frame{ID: 0x2A, Data: []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA}}
		if err := c.Nodes[0].Enqueue(f); err != nil {
			t.Fatal(err)
		}
		if !c.RunUntilQuiet(12000) {
			t.Fatalf("trial %d: no quiescence", trial)
		}
		for i := 1; i < 5; i++ {
			if n := c.DeliveryCount(i, f); n != 1 {
				t.Fatalf("trial %d: station %d delivered %d copies, want 1", trial, i, n)
			}
		}
	}
}

// TestMajorCANFramingDesyncGap characterises a limitation of MajorCAN as
// specified in the paper, discovered by this reproduction's randomized
// testing: a single bit error that corrupts one receiver's DLC field
// desynchronises that node's frame-length perception. Its resulting stuff
// error fires while the aligned nodes are already in the EOF's second
// sub-field, so they read its 6-bit error flag as an acceptance
// notification and accept, while the desynchronised node itself — which by
// the paper's rules must reject, since from its own point of view the
// error is a mid-frame error — never delivers. One error, an inconsistent
// message omission.
//
// The paper's analysis (and its m-error tolerance claim) quantifies only
// over errors in the end-of-frame decision region; framing desynchronising
// errors are outside its fault model. See DESIGN.md, "Findings beyond the
// paper".
func TestMajorCANFramingDesyncGap(t *testing.T) {
	policy := core.MustMajorCAN(5)
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
	victim := 4
	c.Net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{victim},
		Count:    1,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			// Flip DLC bit 2 of the victim's view: DLC 4 (0100) becomes
			// 6 (0110), extending the victim's expected frame by 16 bits.
			return v.Phase == bus.PhaseFrame && v.Attempts == 1 &&
				v.Field == frame.FieldDLC && v.Index == 2
		},
	}))
	f := &frame.Frame{ID: 0x2A, Data: []byte{1, 2, 3, 4}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(12000) {
		t.Fatal("no quiescence")
	}
	if got := c.Nodes[0].TxSuccesses(); got != 1 {
		t.Fatalf("transmitter successes = %d, want 1 (it accepts, so no retransmission)", got)
	}
	for i := 1; i < 4; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("aligned station %d delivered %d copies, want 1", i, n)
		}
	}
	if n := c.DeliveryCount(victim, f); n != 0 {
		t.Errorf("desynchronised station delivered %d copies, want 0 (the documented gap)", n)
	}
	if c.Nodes[victim].ErrorCount(node.ErrStuff) == 0 {
		t.Error("the victim's desync must surface as a stuff error")
	}
}

// Contrast: standard CAN violates the same invariant for some 2-flip
// patterns (the paper's Fig. 3a pattern among them). The randomized search
// must find at least one violating pattern.
func TestStandardCANInvariantViolationExists(t *testing.T) {
	policy := core.NewStandard()
	r := rand.New(rand.NewSource(7))
	violations := 0
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.Intn(2)
		rules := make([]*errmodel.Rule, 0, k)
		for i := 0; i < k; i++ {
			rules = append(rules, errmodel.AtEOFBit([]int{r.Intn(5)}, 1+r.Intn(policy.EOFBits()+2), 1))
		}
		c := sim.MustCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
		c.Net.AddDisturber(errmodel.NewScript(rules...))
		f := &frame.Frame{ID: 0x123, Data: []byte{0xCA, 0xFE}}
		if err := c.Nodes[0].Enqueue(f); err != nil {
			t.Fatal(err)
		}
		if !c.RunUntilQuiet(8000) {
			continue
		}
		for i := 1; i < 5; i++ {
			if n := c.DeliveryCount(i, f); n != 1 {
				violations++
				break
			}
		}
	}
	if violations == 0 {
		t.Error("randomized search found no standard-CAN inconsistency; expected some (double receptions at least)")
	}
	t.Logf("standard CAN: %d/300 random <=2-flip patterns violated exactly-once delivery", violations)
}
