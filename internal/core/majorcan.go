package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/node"
)

// MajorCAN is the paper's main contribution (Section 5): a CAN
// modification that achieves Atomic Broadcast in the presence of up to m
// randomly distributed bit errors per frame.
//
// The EOF field is split into two m-bit sub-fields (2m bits total):
//
//   - A node detecting an error in the first sub-field (bit 1..m) sends a
//     regular 6-bit error flag and then samples the 2m-1 bits from position
//     m+7 through 3m+5 (positions relative to the first EOF bit), deciding
//     accept/reject by majority vote on those samples.
//   - A node detecting an error in the second sub-field (bit m+1..2m) must
//     accept the frame and notifies the acceptance with an extended error
//     flag: dominant from the bit after detection through position 3m+5.
//   - A node that must reject from the start (CRC error; its flag begins at
//     the first EOF bit) never samples and never accepts.
//   - Second errors detected during the EOF and the extended flags are not
//     signalled with additional error flags, so they cannot spoil the
//     agreement process.
//
// The error delimiter is 2m+1 recessive bits so that every frame ends with
// the same bit pattern (ACK delimiter + EOF = 2m+1 recessive bits).
type MajorCAN struct {
	m int
}

var _ node.EOFPolicy = MajorCAN{}

// DefaultM is the paper's proposed tolerance: standard CAN's CRC detects up
// to 5 randomly distributed bit errors, so MajorCAN guarantees Atomic
// Broadcast at the same level.
const DefaultM = 5

// NewMajorCAN returns the MajorCAN_m policy. m must be at least 3: the
// paper shows that with only 2 errors the new inconsistency scenario can
// happen, so tolerating m <= 2 would be pointless.
func NewMajorCAN(m int) (MajorCAN, error) {
	if m < 3 {
		return MajorCAN{}, fmt.Errorf("core: MajorCAN requires m >= 3, got %d", m)
	}
	return MajorCAN{m: m}, nil
}

// MustMajorCAN is NewMajorCAN panicking on an invalid m; intended for
// tests, examples and variable initialisation with constant m.
func MustMajorCAN(m int) MajorCAN {
	p, err := NewMajorCAN(m)
	if err != nil {
		panic(err)
	}
	return p
}

// M returns the error tolerance parameter.
func (p MajorCAN) M() int { return p.m }

// Name implements node.EOFPolicy.
func (p MajorCAN) Name() string { return fmt.Sprintf("MajorCAN_%d", p.m) }

// EOFBits implements node.EOFPolicy: the two m-bit sub-fields.
func (p MajorCAN) EOFBits() int { return 2 * p.m }

// DelimiterBits implements node.EOFPolicy: 2m+1 recessive bits.
func (p MajorCAN) DelimiterBits() int { return 2*p.m + 1 }

// EndPos returns the last bit position (relative to the first EOF bit,
// 1-based) of the extended error flags and of the sampling window: 3m+5.
func (p MajorCAN) EndPos() int { return 3*p.m + 5 }

// WindowStart returns the first sampled bit position: m+7.
func (p MajorCAN) WindowStart() int { return p.m + 7 }

// BestCaseOverhead returns the per-frame overhead in bits compared with
// standard CAN when no errors hit the EOF region: 2m-7.
func (p MajorCAN) BestCaseOverhead() int { return 2*p.m - 7 }

// WorstCaseOverhead returns the per-frame overhead in bits compared with
// standard CAN when errors hit the last m EOF bits: 4m-9 (the paper's
// Section 6 figure; 11 bits for m = 5).
func (p MajorCAN) WorstCaseOverhead() int { return 4*p.m - 9 }

// NewEpisode implements node.EOFPolicy.
func (p MajorCAN) NewEpisode(env node.EpisodeEnv) node.EOFEpisode {
	ep := &majorEpisode{m: p.m, env: env, pos: 1}
	if env.RejectAtStart {
		ep.mode = majFlag
		ep.flagLeft = flagBits
		ep.afterFlag = majRejectWait
		ep.status = node.EpisodeStatus{
			Verdict:   node.VerdictReject,
			After:     node.AfterErrorDelim,
			Signalled: true,
			Kind:      env.RejectKind,
		}
	}
	return ep
}

type majMode uint8

const (
	majQuiet      majMode = iota // monitoring the EOF field
	majFlag                      // sending the 6-bit error flag
	majSampling                  // monitoring through 3m+5, voting in the window
	majExtFlag                   // sending the extended (acceptance) flag
	majRejectWait                // rejected from the start; waiting out the episode
)

type majorEpisode struct {
	m         int
	env       node.EpisodeEnv
	pos       int // 1-based, relative to the first EOF bit
	mode      majMode
	afterFlag majMode
	flagLeft  int
	votes     int // dominant samples inside the window
	status    node.EpisodeStatus
}

func (e *majorEpisode) endPos() int      { return 3*e.m + 5 }
func (e *majorEpisode) windowStart() int { return e.m + 7 }

func (e *majorEpisode) Drive() bitstream.Level {
	switch e.mode {
	case majFlag, majExtFlag:
		if e.env.ErrorPassive {
			return bitstream.Recessive
		}
		return bitstream.Dominant
	default:
		return bitstream.Recessive
	}
}

func (e *majorEpisode) Phase() (bus.Phase, int) {
	switch e.mode {
	case majFlag:
		return bus.PhaseErrorFlag, e.pos
	case majExtFlag:
		return bus.PhaseExtFlag, e.pos
	case majSampling:
		return bus.PhaseSampling, e.pos
	case majRejectWait:
		// Waiting out the episode without sampling (second errors are
		// suppressed); reported as the delimiter phase.
		return bus.PhaseErrorDelim, e.pos
	default:
		return bus.PhaseEOF, e.pos
	}
}

func (e *majorEpisode) Latch(level bitstream.Level) node.EpisodeStatus {
	defer func() { e.pos++ }()
	switch e.mode {
	case majQuiet:
		if level == bitstream.Dominant {
			kind := node.ErrForm
			if e.env.Transmitter {
				kind = node.ErrBit
			}
			if e.pos <= e.m {
				// First sub-field: 6-bit flag, then decide by sampling.
				e.mode = majFlag
				e.flagLeft = flagBits
				e.afterFlag = majSampling
				e.status = node.EpisodeStatus{Signalled: true, Kind: kind}
			} else {
				// Second sub-field: accept and notify with the extended
				// flag through position 3m+5.
				e.mode = majExtFlag
				e.status = node.EpisodeStatus{
					Verdict:   node.VerdictAccept,
					After:     node.AfterErrorDelim,
					Signalled: true,
					Kind:      kind,
				}
			}
			return node.EpisodeStatus{}
		}
		if e.pos >= 2*e.m {
			return node.EpisodeStatus{Done: true, Verdict: node.VerdictAccept, After: node.AfterNone}
		}
		return node.EpisodeStatus{}
	case majFlag:
		e.flagLeft--
		if e.flagLeft <= 0 {
			e.mode = e.afterFlag
		}
		return node.EpisodeStatus{}
	case majSampling:
		if e.pos >= e.windowStart() && level == bitstream.Dominant {
			e.votes++
		}
		if e.pos >= e.endPos() {
			st := e.status
			st.Done = true
			st.After = node.AfterErrorDelim
			if e.votes >= e.m {
				// Majority of the 2m-1 samples dominant: some node is
				// notifying acceptance.
				st.Verdict = node.VerdictAccept
				st.VoteCorrected = true
				st.Votes = e.votes
			} else {
				st.Verdict = node.VerdictReject
			}
			return st
		}
		return node.EpisodeStatus{}
	case majExtFlag:
		if e.pos >= e.endPos() {
			st := e.status
			st.Done = true
			return st
		}
		return node.EpisodeStatus{}
	default: // majRejectWait: second errors are not signalled
		if e.pos >= e.endPos() {
			st := e.status
			st.Done = true
			return st
		}
		return node.EpisodeStatus{}
	}
}
