// Package core implements the end-of-frame protocol variants the MajorCAN
// paper studies: standard CAN (ISO 11898), the MinorCAN modification and
// the MajorCAN_m protocol, as node.EOFPolicy implementations for the
// simulated controller.
package core

import (
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/frame"
	"repro/internal/node"
)

// flagBits is the length of active error and overload flags.
const flagBits = 6

// Standard is the standard CAN end-of-frame behaviour: a 7-bit EOF, an
// 8-bit error delimiter and the "last bit of EOF" rule — a receiver
// detecting an error in the last EOF bit accepts the frame and sends an
// overload flag, while the transmitter rejects and retransmits in the same
// situation.
type Standard struct{}

var _ node.EOFPolicy = Standard{}

// NewStandard returns the standard CAN policy.
func NewStandard() Standard { return Standard{} }

// Name implements node.EOFPolicy.
func (Standard) Name() string { return "CAN" }

// EOFBits implements node.EOFPolicy.
func (Standard) EOFBits() int { return frame.StandardEOFBits }

// DelimiterBits implements node.EOFPolicy.
func (Standard) DelimiterBits() int { return 8 }

// NewEpisode implements node.EOFPolicy.
func (Standard) NewEpisode(env node.EpisodeEnv) node.EOFEpisode {
	ep := &stdEpisode{eofBits: frame.StandardEOFBits, env: env, pos: 1}
	if env.RejectAtStart {
		ep.mode = stdFlag
		ep.flagLeft = flagBits
		ep.status = node.EpisodeStatus{
			Verdict:   node.VerdictReject,
			After:     node.AfterErrorDelim,
			Signalled: true,
			Kind:      env.RejectKind,
		}
	}
	return ep
}

type stdMode uint8

const (
	stdQuiet stdMode = iota // monitoring the EOF field
	stdFlag                 // sending a 6-bit flag (error or overload)
)

type stdEpisode struct {
	eofBits  int
	env      node.EpisodeEnv
	pos      int // 1-based position of the bit about to be latched, relative to EOF start
	mode     stdMode
	flagLeft int
	overload bool
	status   node.EpisodeStatus
}

func (e *stdEpisode) Drive() bitstream.Level {
	if e.mode == stdFlag && !e.env.ErrorPassive {
		return bitstream.Dominant
	}
	return bitstream.Recessive
}

func (e *stdEpisode) Phase() (bus.Phase, int) {
	switch {
	case e.mode == stdFlag && e.overload:
		return bus.PhaseOverloadFlag, e.pos
	case e.mode == stdFlag:
		return bus.PhaseErrorFlag, e.pos
	default:
		return bus.PhaseEOF, e.pos
	}
}

func (e *stdEpisode) Latch(level bitstream.Level) node.EpisodeStatus {
	defer func() { e.pos++ }()
	switch e.mode {
	case stdQuiet:
		if level == bitstream.Dominant {
			e.mode = stdFlag
			e.flagLeft = flagBits
			if e.pos < e.eofBits || e.env.Transmitter {
				// An error before the last EOF bit — or anywhere in the EOF
				// for the transmitter — invalidates the frame.
				kind := node.ErrForm
				if e.env.Transmitter {
					kind = node.ErrBit
				}
				e.status = node.EpisodeStatus{
					Verdict:   node.VerdictReject,
					After:     node.AfterErrorDelim,
					Signalled: true,
					Kind:      kind,
				}
			} else {
				// The last-bit rule: the receiver accepts the frame and
				// signals an overload condition instead of an error.
				e.overload = true
				e.status = node.EpisodeStatus{
					Verdict:   node.VerdictAccept,
					After:     node.AfterOverloadDelim,
					Signalled: true,
					Kind:      node.ErrOverload,
				}
			}
			return node.EpisodeStatus{}
		}
		if e.pos >= e.eofBits {
			return node.EpisodeStatus{Done: true, Verdict: node.VerdictAccept, After: node.AfterNone}
		}
		return node.EpisodeStatus{}
	default: // stdFlag
		e.flagLeft--
		if e.flagLeft <= 0 {
			st := e.status
			st.Done = true
			return st
		}
		return node.EpisodeStatus{}
	}
}
