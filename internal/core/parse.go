package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/node"
)

// ParsePolicy resolves a protocol name ("can", "minorcan",
// "majorcan_<m>", case-insensitive; "majorcan" alone uses the default m)
// to its EOF policy. It accepts exactly the names the policies' Name()
// methods produce, so serialised specs round-trip. It is the single
// protocol-name codec shared by the chaos engine, the job-spec layer and
// every CLI.
func ParsePolicy(name string) (node.EOFPolicy, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch {
	case s == "can" || s == "standard":
		return NewStandard(), nil
	case s == "minorcan":
		return NewMinorCAN(), nil
	case strings.HasPrefix(s, "majorcan"):
		m := DefaultM
		if i := strings.IndexByte(s, '_'); i >= 0 {
			v, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return nil, fmt.Errorf("core: invalid m in protocol %q", name)
			}
			m = v
		}
		return NewMajorCAN(m)
	default:
		return nil, fmt.Errorf("core: unknown protocol %q (use can, minorcan, majorcan_<m>)", name)
	}
}
