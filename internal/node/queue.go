package node

import "repro/internal/frame"

// txQueue is the controller's transmit buffer: frames ordered by CAN
// arbitration priority (lower identifier first), FIFO among equal
// identifiers, mirroring the behaviour of multi-buffer CAN controllers.
type txQueue struct {
	frames []*frame.Frame
}

// push inserts a frame by priority (stable among equal identifiers).
func (q *txQueue) push(f *frame.Frame) {
	pos := len(q.frames)
	for i, g := range q.frames {
		if priorityLess(f, g) {
			pos = i
			break
		}
	}
	q.frames = append(q.frames, nil)
	copy(q.frames[pos+1:], q.frames[pos:])
	q.frames[pos] = f
}

// peek returns the highest-priority pending frame without removing it.
func (q *txQueue) peek() *frame.Frame {
	if len(q.frames) == 0 {
		return nil
	}
	return q.frames[0]
}

// pop removes and returns the highest-priority pending frame.
func (q *txQueue) pop() *frame.Frame {
	f := q.peek()
	if f != nil {
		copy(q.frames, q.frames[1:])
		q.frames[len(q.frames)-1] = nil
		q.frames = q.frames[:len(q.frames)-1]
	}
	return f
}

func (q *txQueue) len() int { return len(q.frames) }

// priorityLess reports whether a wins arbitration against b. On the bus,
// arbitration compares the identifier bits most-significant first with
// dominant (0) winning; a standard frame wins over an extended frame with
// the same base identifier (its RTR/IDE bits are dominant earlier), and a
// data frame wins over a remote frame with the same identifier.
func priorityLess(a, b *frame.Frame) bool {
	ab, bb := arbKey(a), arbKey(b)
	return ab < bb
}

// arbKey linearises a frame's arbitration field into an integer such that
// numerically smaller keys win arbitration. The bit order mirrors the wire:
// base identifier, then the bit transmitted in the RTR/SRR slot, then the
// IDE slot, then the 18 extension bits and the extended RTR.
func arbKey(f *frame.Frame) uint64 {
	rtr := uint64(0)
	if f.Remote {
		rtr = 1
	}
	if f.EffectiveFormat() == frame.Extended {
		base := uint64(f.ID >> 18 & frame.MaxStandardID)
		ext := uint64(f.ID & (1<<18 - 1))
		// SRR and IDE are recessive (1): an extended frame loses to any
		// standard frame with the same base identifier.
		return base<<21 | 1<<20 | 1<<19 | ext<<1 | rtr
	}
	// Standard: base id, RTR in the slot shared with SRR, dominant IDE,
	// and dominant filler for the bits an extended competitor would send.
	return uint64(f.ID)<<21 | rtr<<20
}
