package node

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/frame"
	"repro/internal/obs"
)

// flagBits is the length of active error and overload flags.
const flagBits = 6

// maxOverloads is the maximum number of successive overload frames a node
// generates (CAN specification: at most two).
const maxOverloads = 2

func arbitrationField(f frame.Field) bool {
	switch f {
	case frame.FieldID, frame.FieldSRR, frame.FieldIDE, frame.FieldExtID, frame.FieldRTR:
		return true
	default:
		return false
	}
}

// beginFrame initialises the receive pipeline (and the transmit overlay
// when tx is true) for a frame whose SOF is being latched this slot.
func (c *Controller) beginFrame(tx bool) {
	c.state = stFrame
	c.transmitter = tx
	c.lastTxSelf = tx
	c.destuff.Reset()
	c.asm.Reset()
	c.rxTail = 0
	c.rejectAtStart = false
	c.overloads = 0
	c.attempts++
	if tx {
		head := c.queue.peek()
		if head == nil {
			// StartTx is only entered with a pending frame; this is a
			// programming error.
			panic(fmt.Sprintf("node %s: transmit with empty queue", c.name))
		}
		enc, err := c.cachedEncode(head, c.policy.EOFBits())
		if err != nil {
			// Frames are validated at Enqueue; this is a programming error.
			panic(fmt.Sprintf("node %s: encode queued frame: %v", c.name, err))
		}
		c.txEnc, c.txPos = enc, 0
	}
}

func (c *Controller) latchFrame(level bitstream.Level) {
	if c.transmitter {
		sent := c.txEnc.Bits[c.txPos]
		ref := c.txEnc.Refs[c.txPos]
		if sent != level {
			switch {
			case sent == bitstream.Recessive && arbitrationField(ref.Field):
				// Lost arbitration: continue as a receiver; the sampled bit
				// belongs to the winner's frame and flows into the receive
				// pipeline below.
				c.emit(obs.KindArbitrationLoss, true, 0, uint32(c.txPos))
				c.transmitter = false
			case sent == bitstream.Recessive && ref.Field == frame.FieldACKSlot:
				// Receivers asserting the acknowledgement.
			default:
				c.signalError(ErrBit)
				return
			}
		} else if ref.Field == frame.FieldACKSlot && level == bitstream.Recessive {
			// Nobody acknowledged the frame.
			c.signalError(ErrAck)
			return
		}
		if c.transmitter {
			c.txPos++
		}
	}

	// Receive pipeline: every node, the transmitter included, tracks the
	// frame through the destuffer and assembler so that an arbitration
	// loser can continue seamlessly as a receiver.
	if !c.asm.Done() {
		kind, err := c.destuff.Push(level)
		if err != nil {
			c.signalError(ErrStuff)
			return
		}
		if kind == bitstream.StuffBit {
			return
		}
		if _, aerr := c.asm.Push(level); aerr != nil {
			c.signalError(ErrForm)
		}
		return
	}

	// If the last five CRC bits were equal, one more stuff bit follows the
	// CRC sequence before the CRC delimiter (stuffing covers SOF through
	// the CRC sequence inclusive).
	if c.rxTail == 0 && c.destuff.NextIsStuff() {
		if _, err := c.destuff.Push(level); err != nil {
			c.signalError(ErrStuff)
		}
		return
	}

	// Fixed-form tail: CRC delimiter, ACK slot, ACK delimiter.
	switch c.rxTail {
	case 0: // CRC delimiter must be recessive.
		c.rxTail++
		if level == bitstream.Dominant {
			c.signalError(ErrForm)
		}
	case 1: // ACK slot. The transmitter's checks happened above; a receiver
		// sampling dominant here simply observes the acknowledgement.
		c.rxTail++
	case 2: // ACK delimiter; the end-of-frame region starts next bit.
		c.rxTail++
		if !c.transmitter {
			if level == bitstream.Dominant {
				// A form error this late is signalled from the first EOF
				// bit, exactly like a CRC error.
				c.recordError(ErrForm)
				c.enterEpisode(true, ErrForm)
				return
			}
			if !c.asm.CRCOK() {
				c.recordError(ErrCRC)
				c.enterEpisode(true, ErrCRC)
				return
			}
		}
		c.enterEpisode(false, 0)
	}
}

func (c *Controller) enterEpisode(reject bool, kind ErrorKind) {
	c.state = stEpisode
	c.rejectAtStart = reject
	c.rejectKind = kind
	// The ACK delimiter is being latched at c.now; the episode's first
	// bit is the next slot. Recorded for the KindEOFVote span emitted at
	// episode completion.
	c.episodeStart = c.now + 1
	c.episode = c.policy.NewEpisode(EpisodeEnv{
		Transmitter:   c.transmitter,
		RejectAtStart: reject,
		RejectKind:    kind,
		ErrorPassive:  c.mode == ErrorPassive,
	})
}

func (c *Controller) latchEpisode(level bitstream.Level) {
	st := c.episode.Latch(level)
	if !st.Done {
		return
	}
	c.episode = nil
	if st.Signalled && !c.rejectAtStart {
		// A RejectAtStart error was already recorded when it was detected.
		c.recordError(st.Kind)
	}
	if st.VoteCorrected {
		// MajorCAN's majority vote overturned the signalled error.
		c.emit(obs.KindEOFVoteCorrected, c.transmitter, uint8(st.Kind), uint32(st.Votes))
	}
	c.emitEOFVote(st)
	if h := c.opts.Hooks.OnVerdict; h != nil {
		h(c.now, st.Verdict, c.transmitter)
	}
	wasTx := c.transmitter
	c.transmitter = false
	switch st.Verdict {
	case VerdictAccept:
		if wasTx {
			f := c.queue.pop()
			c.txOK++
			c.creditSuccess(true)
			c.emit(obs.KindFrameAccepted, true, 0, 0)
			if h := c.opts.Hooks.OnTxSuccess; h != nil {
				h(c.now, f)
			}
		} else if !c.rejectAtStart {
			f := c.asm.Frame()
			c.delivered++
			c.creditSuccess(false)
			c.emit(obs.KindFrameAccepted, false, 0, 0)
			if h := c.opts.Hooks.OnDeliver; h != nil {
				h(c.now, f)
			}
		}
	case VerdictReject:
		c.flagOwnerTx = wasTx
		if wasTx {
			c.tec += 8
			if c.opts.DisableRetransmission {
				c.queue.pop()
			} else {
				c.emit(obs.KindRetransmit, true, uint8(st.Kind), 0)
			}
		} else {
			c.rec++
		}
		c.refreshMode()
	}
	if c.state == stOff {
		return
	}
	switch st.After {
	case AfterNone:
		c.enterIntermission()
	case AfterOverloadDelim:
		c.overloads = 1
		c.startDelim(AfterOverloadDelim, st.DelimCredit)
	default:
		c.startDelim(AfterErrorDelim, st.DelimCredit)
	}
}

// emitEOFVote reports a completed end-of-frame episode — the region
// where the protocol variant resolved its verdict — so trace exporters
// can render per-station vote-round spans. Slot is the episode's final
// bit, Aux its length in slots; Cause carries the error kind that drove
// the episode (0 for a clean frame) and FlagRejected a reject verdict.
func (c *Controller) emitEOFVote(st EpisodeStatus) {
	if c.ev == nil {
		return
	}
	cause := uint8(st.Kind)
	if cause == 0 && c.rejectAtStart {
		cause = uint8(c.rejectKind)
	}
	e := obs.Event{
		Slot:    c.now,
		Kind:    obs.KindEOFVote,
		Station: c.station,
		Cause:   cause,
		Attempt: uint16(c.attempts),
		Aux:     uint32(c.now - c.episodeStart + 1),
	}
	if c.transmitter {
		e.Flags |= obs.FlagTransmitter
	}
	if c.mode == ErrorPassive {
		e.Flags |= obs.FlagPassive
	}
	if st.Verdict == VerdictReject {
		e.Flags |= obs.FlagRejected
	}
	c.ev.Emit(e)
}

// signalError handles an error detected mid-frame (or during a delimiter):
// fault confinement accounting, then transmission of an error flag starting
// with the next bit.
func (c *Controller) signalError(kind ErrorKind) {
	c.recordError(kind)
	wasTx := c.transmitter
	c.transmitter = false
	c.flagOwnerTx = wasTx
	if wasTx {
		// Exception: an error-passive transmitter detecting an ACK error
		// does not increment its TEC (CAN fault confinement rule 3
		// exception), so a lone node does not drift to bus-off.
		if !(kind == ErrAck && c.mode == ErrorPassive) {
			c.tec += 8
		}
		if c.opts.DisableRetransmission {
			c.queue.pop()
		} else {
			c.emit(obs.KindRetransmit, true, uint8(kind), 0)
		}
	} else {
		c.rec++
	}
	c.refreshMode()
	if c.state == stOff {
		return
	}
	c.flagLeft = flagBits
	if c.mode == ErrorPassive {
		c.state = stPassiveFlag
	} else {
		c.state = stErrorFlag
	}
	c.delimAfter = AfterErrorDelim
}

func (c *Controller) recordError(kind ErrorKind) {
	c.errCount[kind]++
	if kind == ErrStuff {
		c.emit(obs.KindStuffError, c.transmitter, uint8(kind), 0)
	}
	// Every recorded error precedes a signalled flag (overload conditions
	// raise overload flags, which are bit-identical bursts): primary when
	// the station itself detected the error in the frame body or a
	// delimiter, secondary when the decision fell out of the end-of-frame
	// episode (a corrupted EOF bit, or another station's flag reaching
	// this station's EOF window — Fig. 3's reactive flags).
	flag := obs.KindErrorFlagPrimary
	if c.state == stEpisode {
		flag = obs.KindErrorFlagSecondary
	}
	c.emit(flag, c.transmitter, uint8(kind), 0)
	if h := c.opts.Hooks.OnError; h != nil {
		h(c.now, kind, c.transmitter)
	}
}

func (c *Controller) latchFlag(level bitstream.Level) {
	if c.state == stErrorFlag || c.state == stOverloadFlag {
		if level == bitstream.Recessive {
			// Bit error while sending an active flag (fault confinement
			// rule: +8).
			if c.flagOwnerTx {
				c.tec += 8
			} else {
				c.rec += 8
			}
			c.refreshMode()
			if c.state == stOff {
				return
			}
		}
	}
	c.flagLeft--
	if c.flagLeft <= 0 {
		after := AfterErrorDelim
		if c.state == stOverloadFlag {
			after = AfterOverloadDelim
		}
		c.startDelim(after, 0)
	}
}

func (c *Controller) startDelim(after After, credit int) {
	c.state = stDelim
	c.delimAfter = after
	c.delimSeen = credit > 0
	c.delimCount = credit
	c.waitDominant = 0
}

func (c *Controller) latchDelim(level bitstream.Level) {
	if !c.delimSeen {
		if level == bitstream.Dominant {
			// Still superposed flags from other nodes. Fault confinement:
			// +8 for every eight consecutive dominant bits after a flag.
			c.waitDominant++
			if c.waitDominant%8 == 0 {
				if c.flagOwnerTx {
					c.tec += 8
				} else {
					c.rec += 8
				}
				c.refreshMode()
			}
			return
		}
		c.delimSeen = true
		c.delimCount = 1
		c.finishDelimIfDone()
		return
	}
	c.delimCount++
	if level == bitstream.Dominant {
		if c.delimCount >= c.policy.DelimiterBits() {
			// Dominant at the last delimiter bit: overload condition.
			c.recordError(ErrOverload)
			c.startOverload()
			return
		}
		// Form error inside the delimiter.
		c.signalError(ErrForm)
		return
	}
	c.finishDelimIfDone()
}

func (c *Controller) finishDelimIfDone() {
	if c.delimCount >= c.policy.DelimiterBits() {
		c.enterIntermission()
	}
}

func (c *Controller) startOverload() {
	if c.overloads >= maxOverloads {
		// The specification allows at most two successive overload frames;
		// treat further dominant violations as form errors.
		c.signalError(ErrForm)
		return
	}
	c.overloads++
	c.state = stOverloadFlag
	c.flagLeft = flagBits
	c.flagOwnerTx = false
}

func (c *Controller) enterIntermission() {
	c.state = stIntermission
	c.intermCount = 0
}

func (c *Controller) latchIntermission(level bitstream.Level) {
	if level == bitstream.Dominant {
		if c.intermCount < frame.IntermissionBits-1 {
			// Dominant during the first two intermission bits: overload.
			c.recordError(ErrOverload)
			c.startOverload()
		} else {
			// Dominant at the third bit of intermission is interpreted as a
			// start of frame.
			c.beginFrame(false)
			c.latchFrame(level)
		}
		return
	}
	c.intermCount++
	if c.intermCount >= frame.IntermissionBits {
		c.overloads = 0
		switch {
		case c.queue.len() == 0:
			c.state = stIdle
		case c.mode == ErrorPassive && c.lastTxSelf:
			// Suspend transmission: an error-passive node that was the
			// transmitter waits eight bits before the next attempt.
			c.state = stSuspend
			c.suspendLeft = 8
		default:
			c.state = stStartTx
		}
	}
}
