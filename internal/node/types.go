// Package node implements a bit-synchronous CAN controller: arbitration,
// the receive pipeline (destuffing, CRC, frame assembly), error detection
// and signalling, fault confinement, and automatic retransmission.
//
// The behaviour at the end of frame — exactly the part the MajorCAN paper
// modifies — is delegated to an EOFPolicy. Package core provides the three
// policies: standard CAN, MinorCAN and MajorCAN_m.
package node

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/bus"
)

// ErrorKind classifies the CAN error detection mechanisms plus the
// overload condition.
type ErrorKind uint8

const (
	// ErrBit is a bit error: a transmitter monitored a level different from
	// the one it sent.
	ErrBit ErrorKind = iota + 1
	// ErrStuff is a stuff error: six consecutive equal bits in a stuffed
	// field.
	ErrStuff
	// ErrCRC is a CRC error: the received CRC sequence does not match the
	// computed one.
	ErrCRC
	// ErrForm is a form error: a fixed-form bit field contains an illegal
	// level.
	ErrForm
	// ErrAck is an acknowledgment error: the transmitter monitored
	// recessive during the ACK slot.
	ErrAck
	// ErrOverload is not an error proper but the overload condition
	// (dominant during intermission or at the last bit of a delimiter).
	ErrOverload
)

func (k ErrorKind) String() string {
	switch k {
	case ErrBit:
		return "bit"
	case ErrStuff:
		return "stuff"
	case ErrCRC:
		return "crc"
	case ErrForm:
		return "form"
	case ErrAck:
		return "ack"
	case ErrOverload:
		return "overload"
	default:
		return fmt.Sprintf("ErrorKind(%d)", uint8(k))
	}
}

// Verdict is the outcome of a frame at one node.
type Verdict uint8

const (
	// VerdictAccept means the frame is valid at this node: a receiver
	// delivers it, a transmitter considers it successfully sent.
	VerdictAccept Verdict = iota + 1
	// VerdictReject means the frame is invalid at this node: a receiver
	// discards it, a transmitter schedules a retransmission.
	VerdictReject
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictReject:
		return "reject"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// After tells the controller what follows the end-of-frame episode.
type After uint8

const (
	// AfterNone means the frame ended cleanly: intermission follows.
	AfterNone After = iota + 1
	// AfterErrorDelim means an error delimiter must be completed first.
	AfterErrorDelim
	// AfterOverloadDelim means an overload delimiter must be completed
	// first.
	AfterOverloadDelim
)

// EpisodeStatus is returned by EOFEpisode.Latch.
type EpisodeStatus struct {
	// Done reports that the episode is complete; the remaining fields are
	// only meaningful when Done is true.
	Done bool
	// Verdict is the node's decision about the frame.
	Verdict Verdict
	// After selects the delimiter the controller must run next.
	After After
	// DelimCredit is the number of recessive delimiter bits the episode
	// already consumed (used by MinorCAN's primary-error probe bit).
	DelimCredit int
	// Signalled reports whether the node transmitted an error or overload
	// flag during the episode (drives the fault confinement counters).
	Signalled bool
	// Kind is the error kind that triggered the signalling.
	Kind ErrorKind
	// VoteCorrected reports that the node signalled an error and the
	// protocol's acceptance sampling (MajorCAN's majority vote) still
	// accepted the frame; Votes is the number of dominant samples that
	// carried the vote.
	VoteCorrected bool
	Votes         int
}

// EpisodeEnv describes the node's situation at the start of the
// end-of-frame region.
type EpisodeEnv struct {
	// Transmitter reports whether this node transmitted the frame.
	Transmitter bool
	// RejectAtStart forces an error flag from the first EOF bit on: the
	// node detected a CRC error (or an ACK/form error at the very end of
	// the frame body) and must never accept the frame.
	RejectAtStart bool
	// RejectKind is the error kind behind RejectAtStart.
	RejectKind ErrorKind
	// ErrorPassive makes every flag the episode sends passive (recessive):
	// the node's error signalling cannot influence the rest of the bus,
	// reproducing the Section 1 impairment. The verdict logic is
	// unchanged.
	ErrorPassive bool
}

// EOFEpisode is the per-frame state machine covering the end-of-frame
// region: the EOF field plus any error/overload flags, acceptance sampling
// and flag extensions mandated by the protocol variant. It starts at the
// first EOF bit and ends when the controller should run a delimiter (or go
// straight to intermission).
type EOFEpisode interface {
	// Drive returns the level to put on the bus for the bit about to be
	// latched.
	Drive() bitstream.Level
	// Latch processes the node's sample of that bit.
	Latch(level bitstream.Level) EpisodeStatus
	// Phase describes the episode position: the protocol phase and the
	// 1-based bit position relative to the first EOF bit.
	Phase() (bus.Phase, int)
}

// EOFPolicy is a protocol variant: it fixes the frame's EOF length, the
// delimiter length and the end-of-frame decision logic. Implementations:
// core.Standard, core.MinorCAN, core.MajorCAN.
//
// Error-passive nodes send passive (recessive) flags in the end-of-frame
// region too (EpisodeEnv.ErrorPassive), reproducing the Section 1
// impairment; the paper's protocols assume that state is avoided, which
// Options.WarningSwitchOff enforces.
type EOFPolicy interface {
	// Name identifies the variant ("CAN", "MinorCAN", "MajorCAN_5", ...).
	Name() string
	// EOFBits is the length of the end-of-frame field (7 in standard CAN,
	// 2m in MajorCAN_m).
	EOFBits() int
	// DelimiterBits is the total length of the error and overload
	// delimiters including the first recessive bit (8 in standard CAN,
	// 2m+1 in MajorCAN_m).
	DelimiterBits() int
	// NewEpisode creates the end-of-frame state machine for one frame.
	NewEpisode(env EpisodeEnv) EOFEpisode
}
