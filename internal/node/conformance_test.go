package node_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/trace"
)

// A dominant bit inside the error delimiter (positions 2..7) is a form
// error: the node signals again and the bus still converges.
func TestDominantInErrorDelimiter(t *testing.T) {
	c := standardCluster(t, 3)
	// First break the frame mid-body at one receiver (globalised), then
	// corrupt that receiver's view during its error delimiter.
	first := false
	c.Net.AddDisturber(errmodel.NewScript(
		&errmodel.Rule{
			Stations: []int{1},
			When: func(_ uint64, _ int, v bus.ViewContext) bool {
				if first || v.Phase != bus.PhaseFrame || v.Field != frame.FieldData {
					return false
				}
				first = true
				return true
			},
		},
		func() *errmodel.Rule {
			// Fire at the third error-delimiter bit of station 1 — well
			// inside the counted delimiter, where a dominant level is a
			// form error (not during the wait-for-recessive phase).
			seen := 0
			return &errmodel.Rule{
				Stations: []int{1},
				Count:    1,
				When: func(_ uint64, _ int, v bus.ViewContext) bool {
					if v.Phase != bus.PhaseErrorDelim {
						return false
					}
					seen++
					return seen == 3
				},
			}
		}(),
	))
	f := &frame.Frame{ID: 3, Data: []byte{0x0F}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(6000) {
		t.Fatal("no quiescence")
	}
	// Despite the extra error frame the retransmission eventually
	// delivers exactly once everywhere.
	for i := 1; i < 3; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("station %d delivered %d, want 1", i, n)
		}
	}
	if got := c.Nodes[1].ErrorCount(node.ErrForm); got == 0 {
		t.Error("the delimiter corruption must register as a form error")
	}
}

// At most two successive overload frames: a node whose view keeps showing
// dominant intermissions escalates to a form error instead of looping.
func TestOverloadCascadeCapped(t *testing.T) {
	c := standardCluster(t, 3)
	// Flip station 1's view during its first two intermission bits,
	// repeatedly (Count generous).
	c.Net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{1},
		Count:    6,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			return v.Phase == bus.PhaseIntermission && v.Index == 0
		},
	}))
	f := &frame.Frame{ID: 3, Data: []byte{1}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(8000) {
		t.Fatal("no quiescence")
	}
	if got := c.Nodes[1].ErrorCount(node.ErrOverload); got == 0 {
		t.Error("expected overload conditions")
	}
	// The escalation after two overloads surfaces as form errors; the bus
	// still recovers and delivers.
	if n := c.DeliveryCount(1, f); n != 1 {
		t.Errorf("station 1 delivered %d, want 1", n)
	}
}

// Arbitration among extended identifiers is resolved inside the 18-bit
// extension field.
func TestExtendedIDArbitrationInExtension(t *testing.T) {
	c := standardCluster(t, 3)
	// Same base ID, different extension: the lower extension wins.
	base := uint32(0x155) << 18
	hi := &frame.Frame{ID: base | 0x2FF00, Format: frame.Extended, Data: []byte{1}}
	lo := &frame.Frame{ID: base | 0x2FE00, Format: frame.Extended, Data: []byte{2}}
	if err := c.Nodes[0].Enqueue(hi); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Enqueue(lo); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	ds := c.Deliveries[2]
	if len(ds) != 2 {
		t.Fatalf("observer got %d frames, want 2", len(ds))
	}
	if !ds[0].Frame.Equal(lo) {
		t.Errorf("first delivery = %v, want the lower extension", ds[0].Frame)
	}
}

// A node that loses arbitration mid-extension continues as receiver and
// still delivers the winner's frame.
func TestArbitrationLoserDelivers(t *testing.T) {
	c := standardCluster(t, 3)
	win := &frame.Frame{ID: 0x100, Data: []byte{1}}
	lose := &frame.Frame{ID: 0x101, Data: []byte{2}}
	if err := c.Nodes[0].Enqueue(lose); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Enqueue(win); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	if !c.DeliveredAt(0, win) {
		t.Error("the arbitration loser must deliver the winning frame")
	}
	if !c.DeliveredAt(1, lose) {
		t.Error("the retried loser frame must reach the earlier winner")
	}
}

// The recorded phase sequence of a clean transmission matches the CAN
// frame structure: frame -> eof -> intermission -> idle.
func TestCleanFramePhaseSequence(t *testing.T) {
	c := standardCluster(t, 2)
	rec := trace.NewRecorder("T", "R")
	c.Net.AddProbe(rec)
	if err := c.Nodes[0].Enqueue(&frame.Frame{ID: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(2000) {
		t.Fatal("no quiescence")
	}
	var kinds []bus.Phase
	for _, span := range rec.Phases(0) {
		kinds = append(kinds, span.Phase)
	}
	want := []bus.Phase{bus.PhaseIdle, bus.PhaseFrame, bus.PhaseEOF, bus.PhaseIntermission, bus.PhaseIdle}
	if len(kinds) != len(want) {
		t.Fatalf("phases = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("phase %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

// Back-to-back traffic from two stations alternates via arbitration
// without dead slots beyond the interframe space.
func TestSaturatedBusUtilisation(t *testing.T) {
	c := standardCluster(t, 3)
	for i := 0; i < 6; i++ {
		if err := c.Nodes[i%2].Enqueue(&frame.Frame{ID: uint32(0x100 + i), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	rec := trace.NewRecorder()
	c.Net.AddProbe(rec)
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	if len(c.Deliveries[2]) != 6 {
		t.Fatalf("observer got %d frames, want 6", len(c.Deliveries[2]))
	}
	// Between consecutive frames the idle time at the observer must be
	// exactly the 3-bit intermission (no drained slots).
	idleRuns := 0
	for _, span := range rec.Phases(2) {
		if span.Phase == bus.PhaseIntermission {
			if got := int(span.To - span.From + 1); got != 3 {
				t.Errorf("intermission of %d slots, want 3", got)
			}
			idleRuns++
		}
	}
	if idleRuns != 6 {
		t.Errorf("saw %d intermissions, want 6", idleRuns)
	}
}
