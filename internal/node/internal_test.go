package node

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/frame"
)

// stubPolicy satisfies EOFPolicy for tests that never reach the episode.
type stubPolicy struct{}

func (stubPolicy) Name() string                     { return "stub" }
func (stubPolicy) EOFBits() int                     { return 7 }
func (stubPolicy) DelimiterBits() int               { return 8 }
func (stubPolicy) NewEpisode(EpisodeEnv) EOFEpisode { return stubEpisode{} }

type stubEpisode struct{}

func (stubEpisode) Drive() bitstream.Level { return bitstream.Recessive }
func (stubEpisode) Latch(bitstream.Level) EpisodeStatus {
	return EpisodeStatus{Done: true, Verdict: VerdictAccept, After: AfterNone}
}
func (stubEpisode) Phase() (bus.Phase, int) { return bus.PhaseEOF, 1 }

func TestTxQueueOrdering(t *testing.T) {
	var q txQueue
	frames := []*frame.Frame{
		{ID: 0x50, Data: []byte{1}},
		{ID: 0x10, Data: []byte{2}},
		{ID: 0x30, Data: []byte{3}},
		{ID: 0x10, Data: []byte{4}}, // equal ID: FIFO after the earlier one
	}
	for _, f := range frames {
		q.push(f)
	}
	if q.len() != 4 {
		t.Fatalf("len = %d", q.len())
	}
	wantData := []byte{2, 4, 3, 1}
	for i, want := range wantData {
		f := q.pop()
		if f == nil || f.Data[0] != want {
			t.Fatalf("pop %d = %v, want data %d", i, f, want)
		}
	}
	if q.pop() != nil {
		t.Error("pop on empty queue must return nil")
	}
	if q.peek() != nil {
		t.Error("peek on empty queue must return nil")
	}
}

func TestArbKeyOrdering(t *testing.T) {
	// Pairwise wire-priority facts.
	pairs := []struct {
		name          string
		winner, loser *frame.Frame
	}{
		{"lower id", &frame.Frame{ID: 0x10}, &frame.Frame{ID: 0x11}},
		{"data over remote", &frame.Frame{ID: 0x10}, &frame.Frame{ID: 0x10, Remote: true, DLC: 1}},
		{
			"standard over extended with same base",
			&frame.Frame{ID: 0x123},
			&frame.Frame{ID: 0x123 << 18, Format: frame.Extended},
		},
		{
			"standard remote over extended data with same base",
			&frame.Frame{ID: 0x123, Remote: true, DLC: 0},
			&frame.Frame{ID: 0x123 << 18, Format: frame.Extended},
		},
		{
			"extended: base id dominates extension",
			&frame.Frame{ID: 0x100<<18 | 0x3FFFF, Format: frame.Extended},
			&frame.Frame{ID: 0x101 << 18, Format: frame.Extended},
		},
		{
			"extended: extension tie-break",
			&frame.Frame{ID: 0x100<<18 | 0x00001, Format: frame.Extended},
			&frame.Frame{ID: 0x100<<18 | 0x00002, Format: frame.Extended},
		},
	}
	for _, tt := range pairs {
		t.Run(tt.name, func(t *testing.T) {
			if !priorityLess(tt.winner, tt.loser) {
				t.Errorf("priorityLess(%v, %v) = false, want true", tt.winner, tt.loser)
			}
			if priorityLess(tt.loser, tt.winner) {
				t.Errorf("priorityLess(%v, %v) = true, want false", tt.loser, tt.winner)
			}
		})
	}
}

func TestRefreshModeTransitions(t *testing.T) {
	c := New("x", stubPolicy{}, Options{})
	if c.Mode() != ErrorActive {
		t.Fatalf("initial mode %v", c.Mode())
	}
	c.SetErrorCounters(PassiveLimit, 0)
	if c.Mode() != ErrorPassive {
		t.Errorf("TEC=128 => %v, want error-passive", c.Mode())
	}
	c.SetErrorCounters(PassiveLimit-1, 0)
	if c.Mode() != ErrorActive {
		t.Errorf("TEC=127 => %v, want error-active again", c.Mode())
	}
	c.SetErrorCounters(0, PassiveLimit)
	if c.Mode() != ErrorPassive {
		t.Errorf("REC=128 => %v, want error-passive", c.Mode())
	}
	c.SetErrorCounters(BusOffLimit, 0)
	if c.Mode() != BusOff {
		t.Errorf("TEC=256 => %v, want bus-off", c.Mode())
	}
	// Bus-off is sticky against counter resets without AutoRecover: the
	// state machine stays off even though the mode tracking updates.
	if c.state != stOff {
		t.Error("bus-off must park the state machine in Off")
	}
}

func TestWarningSwitchOffMode(t *testing.T) {
	c := New("x", stubPolicy{}, Options{WarningSwitchOff: true})
	c.SetErrorCounters(0, WarningLimit)
	if c.Mode() != SwitchedOff {
		t.Errorf("REC=96 with the policy => %v, want switched-off", c.Mode())
	}
	// Terminal: nothing brings it back.
	c.SetErrorCounters(0, 0)
	if c.Mode() != SwitchedOff {
		t.Errorf("switched-off must be terminal, got %v", c.Mode())
	}
}

func TestModeChangeHook(t *testing.T) {
	var transitions []Mode
	c := New("x", stubPolicy{}, Options{Hooks: Hooks{
		OnModeChange: func(_ uint64, _, to Mode) { transitions = append(transitions, to) },
	}})
	c.SetErrorCounters(PassiveLimit, 0)
	c.SetErrorCounters(BusOffLimit, 0)
	want := []Mode{ErrorPassive, BusOff}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestCreditSuccessReceiverReentry(t *testing.T) {
	c := New("x", stubPolicy{}, Options{})
	c.SetErrorCounters(0, PassiveLimit+20)
	c.creditSuccess(false)
	if _, rec := c.Counters(); rec != PassiveLimit-9 {
		t.Errorf("REC after success from >=128 = %d, want %d", rec, PassiveLimit-9)
	}
	if c.Mode() != ErrorActive {
		t.Errorf("mode = %v, want error-active after the re-entry credit", c.Mode())
	}
}

func TestNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with nil policy must panic")
		}
	}()
	New("x", nil, Options{})
}
