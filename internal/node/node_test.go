package node_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

func standardCluster(t *testing.T, n int) *sim.Cluster {
	t.Helper()
	return sim.MustCluster(sim.ClusterOptions{Nodes: n, Policy: core.NewStandard()})
}

// Regression: a frame whose CRC ends with five equal bits carries a stuff
// bit after the CRC sequence; receivers must not mistake it for the CRC
// delimiter. (Found via TOTCAN integration testing.)
func TestPostCRCStuffBit(t *testing.T) {
	// Search for a payload whose encoding has a stuff bit annotated at the
	// last CRC bit.
	var hit *frame.Frame
	for b := 0; b < 4096 && hit == nil; b++ {
		f := &frame.Frame{ID: 0x203, Data: []byte{1, byte(b >> 8), 0, 0, byte(b), 1, 1, 3}}
		enc, err := frame.Encode(f, frame.StandardEOFBits)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range enc.Refs {
			if ref.Stuff && ref.Field == frame.FieldCRC && ref.Index == 14 {
				hit = f
				break
			}
		}
	}
	if hit == nil {
		t.Skip("no payload with post-CRC stuff bit found in search range")
	}
	c := standardCluster(t, 3)
	if err := c.Nodes[0].Enqueue(hit); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(2000) {
		t.Fatal("no quiescence")
	}
	for i := 1; i < 3; i++ {
		if n := c.DeliveryCount(i, hit); n != 1 {
			t.Errorf("station %d delivered %d copies, want 1", i, n)
		}
	}
	if got := c.Nodes[0].ErrorCount(node.ErrForm); got != 0 {
		t.Errorf("transmitter saw %d form errors, want 0", got)
	}
}

// A lone transmitter gets no acknowledgement: ACK errors accumulate TEC
// (+8 per attempt) until the node becomes error-passive at 128. There it
// stays: the fault-confinement exception for ACK errors of error-passive
// transmitters keeps a lone node from driving itself to bus-off.
func TestAckErrorEscalatesToErrorPassive(t *testing.T) {
	c := standardCluster(t, 2)
	c.Nodes[1].Crash() // nobody left to acknowledge
	f := &frame.Frame{ID: 1, Data: []byte{1}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	c.Net.Run(40000)
	if got := c.Nodes[0].Mode(); got != node.ErrorPassive {
		tec, _ := c.Nodes[0].Counters()
		t.Errorf("mode = %v (tec=%d), want error-passive", got, tec)
	}
	if tec, _ := c.Nodes[0].Counters(); tec != node.PassiveLimit {
		t.Errorf("TEC = %d, want exactly %d (frozen by the ACK-error exception)", tec, node.PassiveLimit)
	}
	if got := c.Nodes[0].ErrorCount(node.ErrAck); got < 16 {
		t.Errorf("ack errors = %d, want >= 16", got)
	}
	if c.Nodes[0].TxSuccesses() != 0 {
		t.Error("no transmission may succeed without receivers")
	}
}

// The paper's recommended policy: switch the node off at the warning limit
// (96) so it never becomes error-passive.
func TestWarningSwitchOff(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{
		Nodes: 3, Policy: core.NewStandard(), WarningSwitchOff: true,
	})
	c.Nodes[2].SetErrorCounters(0, 95)
	// One receive error pushes REC to 96.
	c.Net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{2},
		Count:    1,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			return v.Phase == bus.PhaseFrame && v.Field == frame.FieldData
		},
	}))
	f := &frame.Frame{ID: 5, Data: []byte{0xFF, 0x00}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	if got := c.Nodes[2].Mode(); got != node.SwitchedOff {
		t.Errorf("node 2 mode = %v, want switched-off", got)
	}
	// The frame still completes for the healthy receiver.
	if n := c.DeliveryCount(1, f); n != 1 {
		t.Errorf("healthy receiver delivered %d, want 1", n)
	}
}

// The paper's Section 1 impairment: an error-passive receiver signals an
// error with a passive (recessive) flag nobody can see; the transmitter
// does not retransmit and the passive node omits the message (AB2
// violated). The paper's fix — switching off before error-passive — makes
// the scenario impossible, so we disable it here.
func TestErrorPassiveReceiverOmission(t *testing.T) {
	c := standardCluster(t, 4)
	victim := 3
	c.Nodes[victim].SetErrorCounters(0, node.PassiveLimit)
	if got := c.Nodes[victim].Mode(); got != node.ErrorPassive {
		t.Fatalf("victim mode = %v, want error-passive", got)
	}
	// Corrupt the victim's view of a stuff bit inside a dominant run so it
	// sees six equal bits: a stuff error detected only by the victim.
	fired := false
	c.Net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{victim},
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if fired || v.Phase != bus.PhaseFrame || v.Field != frame.FieldData {
				return false
			}
			fired = true
			return true
		},
	}))
	f := &frame.Frame{ID: 0x10, Data: []byte{0x00, 0x00}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	// The healthy receivers deliver; the passive victim does not; the
	// transmitter never retransmitted: an inconsistent message omission.
	if n := c.DeliveryCount(1, f); n != 1 {
		t.Errorf("healthy receiver delivered %d, want 1", n)
	}
	if n := c.DeliveryCount(victim, f); n != 0 {
		t.Errorf("error-passive victim delivered %d, want 0", n)
	}
	if got := c.Nodes[0].TxSuccesses(); got != 1 {
		t.Errorf("transmitter successes = %d, want 1 (no retransmission)", got)
	}
}

// An error-active receiver in the same situation forces the
// retransmission: the globalisation of local errors works.
func TestErrorActiveReceiverForcesRetransmission(t *testing.T) {
	c := standardCluster(t, 4)
	victim := 3
	fired := false
	c.Net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{victim},
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if fired || v.Phase != bus.PhaseFrame || v.Field != frame.FieldData || v.Attempts != 1 {
				return false
			}
			fired = true
			return true
		},
	}))
	f := &frame.Frame{ID: 0x10, Data: []byte{0x00, 0x00}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	for i := 1; i < 4; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("station %d delivered %d copies, want 1", i, n)
		}
	}
}

// Same-node transmit queue: frames go out in priority order regardless of
// enqueue order; equal identifiers stay FIFO.
func TestQueuePriorityOrder(t *testing.T) {
	c := standardCluster(t, 2)
	frames := []*frame.Frame{
		{ID: 0x300, Data: []byte{3}},
		{ID: 0x100, Data: []byte{1}},
		{ID: 0x200, Data: []byte{2}},
		{ID: 0x100, Data: []byte{9}}, // same ID as the second: FIFO after it
	}
	for _, f := range frames {
		if err := c.Nodes[0].Enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	got := c.Deliveries[1]
	if len(got) != 4 {
		t.Fatalf("delivered %d frames, want 4", len(got))
	}
	wantIDs := []uint32{0x100, 0x100, 0x200, 0x300}
	wantFirstData := []byte{1, 9, 2, 3}
	for i, d := range got {
		if d.Frame.ID != wantIDs[i] {
			t.Errorf("delivery %d id = %#x, want %#x", i, d.Frame.ID, wantIDs[i])
		}
		if d.Frame.Data[0] != wantFirstData[i] {
			t.Errorf("delivery %d data = %d, want %d", i, d.Frame.Data[0], wantFirstData[i])
		}
	}
}

// A data frame wins arbitration against a remote frame with the same
// identifier (dominant RTR), and a standard frame wins against an extended
// frame with the same base identifier.
func TestArbitrationTieBreaks(t *testing.T) {
	t.Run("data beats remote", func(t *testing.T) {
		c := standardCluster(t, 3)
		remote := &frame.Frame{ID: 0x123, Remote: true, DLC: 2}
		data := &frame.Frame{ID: 0x123, Data: []byte{7, 7}}
		if err := c.Nodes[0].Enqueue(remote); err != nil {
			t.Fatal(err)
		}
		if err := c.Nodes[1].Enqueue(data); err != nil {
			t.Fatal(err)
		}
		if !c.RunUntilQuiet(4000) {
			t.Fatal("no quiescence")
		}
		ds := c.Deliveries[2]
		if len(ds) != 2 {
			t.Fatalf("delivered %d, want 2", len(ds))
		}
		if ds[0].Frame.Remote || !ds[1].Frame.Remote {
			t.Errorf("data frame must be delivered before the remote frame")
		}
	})
	t.Run("standard beats extended", func(t *testing.T) {
		c := standardCluster(t, 3)
		ext := &frame.Frame{ID: 0x123 << 18, Format: frame.Extended, Data: []byte{1}}
		std := &frame.Frame{ID: 0x123, Data: []byte{2}}
		if err := c.Nodes[0].Enqueue(ext); err != nil {
			t.Fatal(err)
		}
		if err := c.Nodes[1].Enqueue(std); err != nil {
			t.Fatal(err)
		}
		if !c.RunUntilQuiet(4000) {
			t.Fatal("no quiescence")
		}
		ds := c.Deliveries[2]
		if len(ds) != 2 {
			t.Fatalf("delivered %d, want 2", len(ds))
		}
		if ds[0].Frame.Format != frame.Standard {
			t.Error("standard frame must win the arbitration")
		}
	})
}

// DisableRetransmission (single-shot mode): an error drops the frame
// instead of retrying.
func TestDisableRetransmission(t *testing.T) {
	hooks := func(int) node.Hooks { return node.Hooks{} }
	_ = hooks
	n0 := node.New("tx", core.NewStandard(), node.Options{DisableRetransmission: true})
	n1 := node.New("rx", core.NewStandard(), node.Options{})
	net := bus.NewNetwork()
	net.Attach(n0)
	net.Attach(n1)
	// Receiver sees an error mid-frame (its view flipped once): it rejects
	// and flags; the transmitter drops the frame in single-shot mode.
	fired := false
	net.AddDisturber(errmodel.NewScript(&errmodel.Rule{
		Stations: []int{1},
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if fired || v.Phase != bus.PhaseFrame || v.Field != frame.FieldData {
				return false
			}
			fired = true
			return true
		},
	}))
	if err := n0.Enqueue(&frame.Frame{ID: 2, Data: []byte{0x00}}); err != nil {
		t.Fatal(err)
	}
	net.Run(2000)
	if n0.QueueLen() != 0 {
		t.Error("single-shot transmitter must drop the frame after the error")
	}
	if n0.TxSuccesses() != 0 {
		t.Error("the errored frame must not count as a success")
	}
	if n1.Delivered() != 0 {
		t.Error("the receiver must not deliver the errored frame")
	}
}

// Overload flags: a node disturbed during intermission raises an overload
// condition; the bus recovers and traffic continues.
func TestOverloadRecovery(t *testing.T) {
	c := standardCluster(t, 3)
	c.Net.AddDisturber(errmodel.NewScript(errmodel.AtPhase([]int{1}, bus.PhaseIntermission, 0)))
	f1 := &frame.Frame{ID: 1, Data: []byte{1}}
	f2 := &frame.Frame{ID: 2, Data: []byte{2}}
	if err := c.Nodes[0].Enqueue(f1); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].Enqueue(f2); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	for _, f := range []*frame.Frame{f1, f2} {
		for i := 1; i < 3; i++ {
			if n := c.DeliveryCount(i, f); n != 1 {
				t.Errorf("station %d delivered %d copies of %v, want 1", i, n, f)
			}
		}
	}
	if got := c.Nodes[1].ErrorCount(node.ErrOverload); got == 0 {
		t.Error("node 1 must have raised an overload condition")
	}
}

// An error-passive transmitter still works on a healthy bus (suspend
// transmission merely delays it).
func TestErrorPassiveTransmitterStillDelivers(t *testing.T) {
	c := standardCluster(t, 3)
	c.Nodes[0].SetErrorCounters(node.PassiveLimit, 0)
	f1 := &frame.Frame{ID: 1, Data: []byte{1}}
	f2 := &frame.Frame{ID: 2, Data: []byte{2}}
	if err := c.Nodes[0].Enqueue(f1); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].Enqueue(f2); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(6000) {
		t.Fatal("no quiescence")
	}
	for _, f := range []*frame.Frame{f1, f2} {
		if n := c.DeliveryCount(1, f); n != 1 {
			t.Errorf("receiver delivered %d copies of %v, want 1", n, f)
		}
	}
}

// Successful traffic decrements the error counters back towards zero.
func TestCountersDecrementOnSuccess(t *testing.T) {
	c := standardCluster(t, 3)
	c.Nodes[0].SetErrorCounters(24, 0)
	c.Nodes[1].SetErrorCounters(0, 24)
	for i := 0; i < 10; i++ {
		if err := c.Nodes[0].Enqueue(&frame.Frame{ID: uint32(i), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntilQuiet(8000) {
		t.Fatal("no quiescence")
	}
	tec, _ := c.Nodes[0].Counters()
	if tec != 14 {
		t.Errorf("transmitter TEC = %d, want 14 (24 - 10 successes)", tec)
	}
	_, rec := c.Nodes[1].Counters()
	if rec != 14 {
		t.Errorf("receiver REC = %d, want 14", rec)
	}
}

// Crash makes a node fail silently: it stops participating and the rest of
// the bus keeps working.
func TestCrashedNodeFailsSilently(t *testing.T) {
	c := standardCluster(t, 4)
	c.Nodes[3].Crash()
	if !c.Nodes[3].Crashed() {
		t.Fatal("Crashed() must report true")
	}
	f := &frame.Frame{ID: 9, Data: []byte{9}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(2000) {
		t.Fatal("no quiescence")
	}
	if n := c.DeliveryCount(1, f); n != 1 {
		t.Errorf("station 1 delivered %d, want 1", n)
	}
	if n := c.DeliveryCount(3, f); n != 0 {
		t.Errorf("crashed station delivered %d, want 0", n)
	}
}

func TestEnqueueValidation(t *testing.T) {
	n := node.New("x", core.NewStandard(), node.Options{})
	if err := n.Enqueue(&frame.Frame{ID: 0x800}); err == nil {
		t.Error("invalid frame must be rejected at Enqueue")
	}
	if n.QueueLen() != 0 {
		t.Error("rejected frame must not be queued")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[node.Mode]string{
		node.ErrorActive:  "error-active",
		node.ErrorPassive: "error-passive",
		node.BusOff:       "bus-off",
		node.SwitchedOff:  "switched-off",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestErrorKindStrings(t *testing.T) {
	kinds := map[node.ErrorKind]string{
		node.ErrBit: "bit", node.ErrStuff: "stuff", node.ErrCRC: "crc",
		node.ErrForm: "form", node.ErrAck: "ack", node.ErrOverload: "overload",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("ErrorKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
