package node_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/sim"
)

// randomArbFrame generates a frame with a distinctive payload so delivery
// order can be attributed.
func randomArbFrame(r *rand.Rand, tag byte) *frame.Frame {
	f := &frame.Frame{Data: []byte{tag}}
	if r.Intn(3) == 0 {
		f.Format = frame.Extended
		f.ID = uint32(r.Intn(frame.MaxExtendedID + 1))
	} else {
		f.ID = uint32(r.Intn(frame.MaxStandardID + 1))
	}
	if r.Intn(5) == 0 {
		f.Remote, f.Data, f.DLC = true, nil, 1
	}
	return f
}

// arbRank orders frames the way CAN arbitration should: by the wire bits
// of the arbitration field. This independent reference is compared against
// the actual bit-level arbitration outcome of the simulator.
func arbRank(f *frame.Frame) []uint8 {
	var bits []uint8
	pushUint := func(v uint64, w int) {
		for i := w - 1; i >= 0; i-- {
			bits = append(bits, uint8(v>>uint(i)&1))
		}
	}
	rtr := uint64(0)
	if f.Remote {
		rtr = 1
	}
	if f.EffectiveFormat() == frame.Extended {
		pushUint(uint64(f.ID>>18), 11)
		bits = append(bits, 1, 1) // SRR, IDE recessive
		pushUint(uint64(f.ID&(1<<18-1)), 18)
		bits = append(bits, uint8(rtr))
	} else {
		pushUint(uint64(f.ID), 11)
		bits = append(bits, uint8(rtr), 0) // RTR, IDE dominant
	}
	return bits
}

func rankLess(a, b []uint8) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Property: when several stations start transmitting simultaneously, the
// bit-level arbitration of the simulator delivers the frames in exactly
// the order of their arbitration-field wire bits.
func TestArbitrationMatchesWireOrder(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(3) // 3..5 transmitters + 1 observer
		c := sim.MustCluster(sim.ClusterOptions{Nodes: n + 1, Policy: core.NewStandard()})
		frames := make([]*frame.Frame, n)
		used := map[uint64]bool{}
		for i := range frames {
			for {
				f := randomArbFrame(r, byte(i))
				// Distinct arbitration fields: two identical winners would
				// merge or clash depending on content, a separate case.
				key := uint64(f.ID)<<2 | uint64(f.EffectiveFormat())<<1
				if f.Remote {
					key |= 1 << 63
				}
				if !used[key] {
					used[key] = true
					frames[i] = f
					break
				}
			}
			if err := c.Nodes[i].Enqueue(frames[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !c.RunUntilQuiet(20000) {
			t.Fatalf("trial %d: no quiescence", trial)
		}
		observer := n
		got := c.Deliveries[observer]
		if len(got) != n {
			t.Fatalf("trial %d: observer got %d frames, want %d", trial, len(got), n)
		}
		want := append([]*frame.Frame(nil), frames...)
		sort.SliceStable(want, func(i, j int) bool {
			return rankLess(arbRank(want[i]), arbRank(want[j]))
		})
		for i := range want {
			if !got[i].Frame.Equal(want[i]) {
				t.Fatalf("trial %d: delivery %d = %v, want %v (wire-order mismatch)",
					trial, i, got[i].Frame, want[i])
			}
		}
	}
}

// Two stations transmitting IDENTICAL frames simultaneously merge on the
// bus: both succeed in the same slot and receivers see one frame. This is
// real CAN behaviour and what makes EDCAN's bit-identical replicas cheap.
func TestIdenticalFramesMerge(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: core.NewStandard()})
	f := &frame.Frame{ID: 0x77, Data: []byte{1, 2, 3}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(3000) {
		t.Fatal("no quiescence")
	}
	if c.Nodes[0].TxSuccesses() != 1 || c.Nodes[1].TxSuccesses() != 1 {
		t.Errorf("both transmitters must succeed, got %d/%d",
			c.Nodes[0].TxSuccesses(), c.Nodes[1].TxSuccesses())
	}
	// The receivers see exactly one frame (the merged transmission).
	for i := 2; i < 4; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("station %d delivered %d copies, want 1", i, n)
		}
	}
}
