package node

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/frame"
)

// This file is the controller side of the fast bit-slot engine seam
// (internal/bus/fastpath, DESIGN.md §15). Everything here exposes or
// batch-advances existing controller state without changing a single
// transition of the protocol state machine: the fast engine uses these
// accessors to prove a stretch of slots deterministic and to skip the
// per-bit receive pipeline for receivers whose state provably mirrors
// the transmitter's.

// Transmitting reports whether the controller is the transmitter of a
// frame in progress (past the SOF slot, up to the end of the frame
// body). At most one controller on a correct bus is ever in this state
// past arbitration.
func (c *Controller) Transmitting() bool {
	return c.state == stFrame && c.transmitter
}

// StartingFrame reports whether the controller will drive a start-of-
// frame bit this slot. The fast engine replicates the bus's frame-start
// edge emission with this predicate: the reference scan matches exactly
// the stations in this state (a transmitter already past SOF reports
// its current field, never FieldSOF, so it cannot match).
func (c *Controller) StartingFrame() bool {
	return c.state == stStartTx
}

// Attempts returns the transmission-attempt counter as a pre-latch view
// would report it (the value ViewContext.Attempts carries).
func (c *Controller) Attempts() int { return c.attempts }

// EOFRel returns the 1-based EOF-relative position of the bit the
// controller is about to sample, or 0 outside the end-of-frame region —
// the same value View().EOFRel carries, without building the full view.
// Disturbance gating (errmodel.EOFOnly) keys on it.
func (c *Controller) EOFRel() int {
	if c.state != stEpisode {
		return 0
	}
	_, pos := c.episode.Phase()
	return pos
}

// TxWindow returns the remaining pre-stuffed levels this transmitter
// will drive before the ACK slot, aliasing the cached encoding (callers
// must not mutate it). Within this window the transmitter's output is a
// pure function of the encoding: no other correct station drives a
// dominant bit, and the transmitter's own sample always matches what it
// sent. The window is empty when the controller is not transmitting or
// has reached the ACK slot, where receivers take over the bus.
func (c *Controller) TxWindow() bitstream.Sequence {
	if c.state != stFrame || !c.transmitter || c.txPos >= c.txEnc.AckIndex {
		return nil
	}
	return c.txEnc.Bits[c.txPos:c.txEnc.AckIndex]
}

// MirrorsPipeline reports whether c is a receiver whose receive-pipeline
// state is identical to transmitter t's: same destuffer registers, same
// assembler state (field position, accumulated bits, CRC), same tail
// counter. Both pipelines are driven by the same sampled levels inside a
// fast-forward window (the transmitter's encoding, undisturbed), and
// every latch is a deterministic function of (pipeline state, level), so
// equality now implies equality after any number of common bits — the
// induction the fast engine's receiver cloning rests on.
func (c *Controller) MirrorsPipeline(t *Controller) bool {
	return c.state == stFrame && !c.transmitter &&
		c.destuff == t.destuff && c.asm == t.asm && c.rxTail == t.rxTail
}

// LatchTxWindow batch-latches win — a prefix of TxWindow() — into the
// transmitter. Inside the window the generic Latch path degenerates: the
// sampled level always equals the driven bit (the window is only entered
// when every other station drives recessive), the field is never the ACK
// slot (TxWindow stops before it), and the receive pipeline tracking the
// controller's own well-formed encoding cannot raise stuff or form
// errors. What remains is exactly this loop: advance txPos, feed the
// destuffer/assembler, and absorb the recessive CRC delimiter. The
// impossible branches stay as panics so a seam regression fails loudly
// instead of diverging from the reference engine.
func (c *Controller) LatchTxWindow(win bitstream.Sequence) {
	for _, level := range win {
		c.txPos++
		switch {
		case !c.asm.Done():
			kind, err := c.destuff.Push(level)
			if err != nil {
				panic(fmt.Sprintf("node %s: stuff error in own encoding", c.name))
			}
			if kind != bitstream.StuffBit {
				if _, aerr := c.asm.Push(level); aerr != nil {
					panic(fmt.Sprintf("node %s: form error in own encoding", c.name))
				}
			}
		case c.rxTail == 0 && c.destuff.NextIsStuff():
			if _, err := c.destuff.Push(level); err != nil {
				panic(fmt.Sprintf("node %s: stuff error in own encoding", c.name))
			}
		default:
			// CRC delimiter, recessive by construction of the encoding.
			c.rxTail++
		}
	}
	c.now += uint64(len(win))
}

// AdoptPipeline copies transmitter t's receive-pipeline state into c and
// advances c's local clock by slots bits. Valid only for a controller
// that MirrorsPipeline(t) held for at the start of a fast-forward window
// in which t latched exactly slots undisturbed bits of its own encoding:
// the copied state is then bit-identical to what slots individual
// latches would have produced, and no observable side effect (event,
// hook, counter, mode change) is skipped because a mirroring receiver
// latching frame-body bits has none.
func (c *Controller) AdoptPipeline(t *Controller, slots uint64) {
	c.destuff = t.destuff
	c.asm = t.asm
	c.rxTail = t.rxTail
	c.now += slots
}

// encKey identifies a frame encoding: every input frame.Encode reads.
type encKey struct {
	id      uint32
	format  frame.Format
	remote  bool
	dlc     uint8
	nData   uint8
	data    [frame.MaxDataLen]byte
	eofBits int
}

// encCacheCap bounds the per-controller encode cache; workloads cycle
// through a small set of payloads, so the bound exists only to keep a
// pathological stream of distinct frames from growing the map without
// limit.
const encCacheCap = 256

// cachedEncode returns the frame's on-the-wire encoding, memoising by
// frame content: retransmissions re-enter beginFrame once per attempt,
// and workload frames repeat, so the stuffing pass runs once per
// distinct (id, dlc, data, eofBits) instead of once per attempt.
// The cached encoding is shared and read-only (the controller only
// indexes Bits and Refs).
func (c *Controller) cachedEncode(f *frame.Frame, eofBits int) (*frame.Encoding, error) {
	key := encKey{
		id:      f.ID,
		format:  f.EffectiveFormat(),
		remote:  f.Remote,
		dlc:     f.EffectiveDLC(),
		nData:   uint8(len(f.Data)),
		eofBits: eofBits,
	}
	copy(key.data[:], f.Data)
	if enc, ok := c.encCache[key]; ok {
		return enc, nil
	}
	enc, err := frame.Encode(f, eofBits)
	if err != nil {
		return nil, err
	}
	if len(c.encCache) >= encCacheCap {
		clear(c.encCache)
	}
	c.encCache[key] = enc
	return enc, nil
}
