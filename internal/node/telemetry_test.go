package node_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestCauseNamesMatchErrorKinds pins the cross-package contract: the
// obs layer renders event causes by numeric code, and those names must
// stay in lockstep with node.ErrorKind.String.
func TestCauseNamesMatchErrorKinds(t *testing.T) {
	kinds := []node.ErrorKind{
		node.ErrBit, node.ErrStuff, node.ErrCRC,
		node.ErrForm, node.ErrAck, node.ErrOverload,
	}
	for _, k := range kinds {
		if got, want := obs.CauseName(uint8(k)), k.String(); got != want {
			t.Errorf("obs.CauseName(%d) = %q, want %q (node.ErrorKind naming drifted)", uint8(k), got, want)
		}
	}
	if obs.CauseName(0) != "" {
		t.Errorf("CauseName(0) = %q, want empty (no cause)", obs.CauseName(0))
	}
}

// TestInstrumentedScenario runs a small disturbed broadcast with every
// controller instrumented and checks the emitted event sequence: the
// disturbed receiver's error flag, the transmitter's retransmission, and
// the eventual acceptances all appear with the right attribution.
func TestInstrumentedScenario(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: core.NewStandard()})
	mem := obs.NewMemory()
	for i, n := range c.Nodes {
		n.Instrument(mem, i)
	}
	// Flip station 1's view of the first EOF bit on the first attempt:
	// station 1 signals a form error, everyone rejects, the transmitter
	// retransmits, and the second attempt goes through.
	c.Net.AddDisturber(errmodel.NewScript(errmodel.AtEOFBit([]int{1}, 1, 1)))
	f := &frame.Frame{ID: 0x42, Data: []byte{7}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	for i := 1; i < 3; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Fatalf("station %d delivered %d copies, want 1", i, n)
		}
	}

	flags := mem.Count(obs.KindErrorFlagPrimary) + mem.Count(obs.KindErrorFlagSecondary)
	if flags == 0 {
		t.Error("no error-flag events emitted for a disturbed broadcast")
	}
	if n := mem.Count(obs.KindRetransmit); n != 1 {
		t.Errorf("retransmit events = %d, want 1", n)
	}
	// The transmitter accepts once, both receivers deliver once.
	if n := mem.Count(obs.KindFrameAccepted); n != 3 {
		t.Errorf("frame-accepted events = %d, want 3", n)
	}
	var sawDisturbedFlag, txRetransmit bool
	for _, e := range mem.Events() {
		if e.Kind.ErrorFlag() && e.Station == 1 {
			sawDisturbedFlag = true
		}
		if e.Kind == obs.KindRetransmit {
			if e.Station != 0 || !e.Transmitter() {
				t.Errorf("retransmit attributed to station %d (tx=%v), want transmitter 0", e.Station, e.Transmitter())
			}
			txRetransmit = true
		}
		if e.Kind == obs.KindFrameAccepted && e.Station == 0 && !e.Transmitter() {
			t.Error("transmitter's acceptance not marked with the transmitter flag")
		}
	}
	if !sawDisturbedFlag {
		t.Error("disturbed station 1 emitted no error-flag event")
	}
	if !txRetransmit {
		t.Error("no retransmit event from the transmitter")
	}
}

// TestEOFVoteEvents checks the per-episode KindEOFVote emission a trace
// exporter synthesises vote-round spans from: every station reports one
// episode per attempt, the first (disturbed) attempt's episodes end in a
// reject and the clean retransmission's in an accept, and each span's
// [Slot-Aux+1, Slot] window is well-formed.
func TestEOFVoteEvents(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: core.NewStandard()})
	mem := obs.NewMemory()
	for i, n := range c.Nodes {
		n.Instrument(mem, i)
	}
	c.Net.AddDisturber(errmodel.NewScript(errmodel.AtEOFBit([]int{1}, 1, 1)))
	f := &frame.Frame{ID: 0x42, Data: []byte{7}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		t.Fatal("no quiescence")
	}
	var rejects, accepts int
	for _, e := range mem.Events() {
		if e.Kind != obs.KindEOFVote {
			continue
		}
		if e.Aux == 0 || uint64(e.Aux) > e.Slot {
			t.Errorf("episode span malformed: slot=%d len=%d", e.Slot, e.Aux)
		}
		if e.Rejected() {
			rejects++
			if e.Cause == 0 {
				t.Error("rejected episode carries no cause")
			}
		} else {
			accepts++
			if e.Cause != 0 {
				t.Errorf("accepted episode carries cause %d", e.Cause)
			}
		}
	}
	// Attempt 1: all three stations reject (station 1's flag reaches the
	// others). Attempt 2: all three accept.
	if rejects != 3 || accepts != 3 {
		t.Errorf("eof-vote verdicts: %d rejects, %d accepts, want 3 and 3", rejects, accepts)
	}
}
