package node

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/frame"
	"repro/internal/obs"
)

// Mode is the fault confinement state of a controller.
type Mode uint8

const (
	// ErrorActive nodes signal errors with dominant (active) error flags.
	ErrorActive Mode = iota + 1
	// ErrorPassive nodes signal errors with recessive (passive) error
	// flags, which cannot force other nodes to see the error.
	ErrorPassive
	// BusOff nodes are disconnected from the bus.
	BusOff
	// SwitchedOff nodes disconnected themselves at the warning limit (the
	// policy the paper recommends to avoid the error-passive state) or were
	// crashed by fault injection.
	SwitchedOff
)

func (m Mode) String() string {
	switch m {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	case SwitchedOff:
		return "switched-off"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Fault confinement limits from the CAN specification.
const (
	// WarningLimit is the error counter value at which the error warning
	// notification is raised (a heavily disturbed bus).
	WarningLimit = 96
	// PassiveLimit is the error counter value at which a node becomes
	// error-passive.
	PassiveLimit = 128
	// BusOffLimit is the transmit error counter value at which a node goes
	// bus-off.
	BusOffLimit = 256
)

// Hooks receives controller events. Any field may be nil.
type Hooks struct {
	// OnDeliver fires when a received frame is accepted and delivered to
	// the upper layer.
	OnDeliver func(slot uint64, f *frame.Frame)
	// OnTxSuccess fires when the node's own transmission completes
	// successfully (frame removed from the transmit queue).
	OnTxSuccess func(slot uint64, f *frame.Frame)
	// OnError fires when the node detects an error (or overload condition).
	OnError func(slot uint64, kind ErrorKind, transmitter bool)
	// OnVerdict fires at the end of every end-of-frame episode with the
	// node's accept/reject decision for the frame.
	OnVerdict func(slot uint64, v Verdict, transmitter bool)
	// OnModeChange fires when the fault confinement mode changes.
	OnModeChange func(slot uint64, from, to Mode)
}

// Options configures a Controller.
type Options struct {
	// WarningSwitchOff disconnects the node as soon as an error counter
	// reaches the warning limit (96), the policy the paper assumes to keep
	// every node error-active ("every node is either helping to achieve
	// data consistency or disconnected").
	WarningSwitchOff bool
	// DisableRetransmission turns off automatic retransmission (single-shot
	// mode, present in real controllers; used by some tests).
	DisableRetransmission bool
	// AutoRecover re-enables a bus-off node after it monitors 128
	// occurrences of 11 consecutive recessive bits, per the CAN fault
	// confinement rules. Crashed nodes never recover.
	AutoRecover bool
	// Hooks receives controller events.
	Hooks Hooks
}

type ctrlState uint8

const (
	stOff ctrlState = iota + 1
	stIdle
	stStartTx
	stFrame
	stEpisode
	stErrorFlag
	stPassiveFlag
	stOverloadFlag
	stDelim
	stIntermission
	stSuspend
)

// Controller is a simulated CAN controller attached to a bus.Network. It
// implements bus.Station. The zero value is not usable; use New.
type Controller struct {
	name   string
	policy EOFPolicy
	opts   Options

	state ctrlState
	now   uint64 // bit slots latched so far (== network slot when attached at 0)

	// transmit side
	queue       txQueue
	transmitter bool
	txEnc       *frame.Encoding
	txPos       int
	encCache    map[encKey]*frame.Encoding

	// receive pipeline
	destuff bitstream.Destuffer
	asm     frame.Assembler
	rxTail  int // tail bits latched after the assembler finished (CRCdel, ACK, ACKdel)

	// end of frame
	episode       EOFEpisode
	episodeStart  uint64 // slot of the first EOF bit
	rejectAtStart bool
	rejectKind    ErrorKind

	// error/overload signalling
	flagLeft     int
	flagVerdict  Verdict
	delimAfter   After
	delimSeen    bool // first recessive of the delimiter seen
	delimCount   int
	waitDominant int // consecutive dominant bits while waiting for the delimiter
	overloads    int // consecutive overload frames

	intermCount int
	suspendLeft int
	lastTxSelf  bool
	flagOwnerTx bool

	// fault confinement
	tec, rec int
	mode     Mode

	attempts  int
	crashed   bool
	delivered uint64
	txOK      uint64
	errCount  map[ErrorKind]uint64

	// bus-off recovery (AutoRecover): 128 occurrences of 11 consecutive
	// recessive bits re-enable the node.
	recovRun int
	recovSeq int

	// telemetry (nil when uninstrumented)
	ev      obs.Sink
	station int16
}

var _ bus.Station = (*Controller)(nil)

// New creates a controller using the given end-of-frame policy.
func New(name string, policy EOFPolicy, opts Options) *Controller {
	if policy == nil {
		panic("node: nil EOFPolicy")
	}
	return &Controller{
		name:     name,
		policy:   policy,
		opts:     opts,
		state:    stIdle,
		mode:     ErrorActive,
		errCount: make(map[ErrorKind]uint64),
		encCache: make(map[encKey]*frame.Encoding),
	}
}

// Name returns the controller's name.
func (c *Controller) Name() string { return c.name }

// Instrument attaches a telemetry sink; protocol events carry the given
// station index. A nil sink turns emission off; an uninstrumented
// controller pays only a nil check per potential event.
func (c *Controller) Instrument(sink obs.Sink, station int) {
	c.ev = sink
	c.station = int16(station)
}

// emit sends one protocol event. The transmitter flag is explicit because
// several call sites clear c.transmitter before the emission point.
func (c *Controller) emit(kind obs.Kind, tx bool, cause uint8, aux uint32) {
	if c.ev == nil {
		return
	}
	e := obs.Event{
		Slot:    c.now,
		Kind:    kind,
		Station: c.station,
		Cause:   cause,
		Attempt: uint16(c.attempts),
		Aux:     aux,
	}
	if tx {
		e.Flags |= obs.FlagTransmitter
	}
	if c.mode == ErrorPassive {
		e.Flags |= obs.FlagPassive
	}
	c.ev.Emit(e)
}

// Policy returns the end-of-frame policy in use.
func (c *Controller) Policy() EOFPolicy { return c.policy }

// Enqueue queues a frame for transmission.
func (c *Controller) Enqueue(f *frame.Frame) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", c.name, err)
	}
	c.queue.push(f.Clone())
	return nil
}

// QueueLen returns the number of frames waiting for transmission
// (including one being retried).
func (c *Controller) QueueLen() int { return c.queue.len() }

// Crash makes the node fail silently: it stops driving the bus and never
// recovers (the transmitter failure of the paper's Fig. 1c).
func (c *Controller) Crash() {
	c.crashed = true
	c.setMode(SwitchedOff)
	c.state = stOff
}

// Crashed reports whether the node was crashed by fault injection.
func (c *Controller) Crashed() bool { return c.crashed }

// ForceBusOff drives the transmit error counter to the bus-off limit,
// disconnecting the node immediately (fault injection for
// crash-then-restart schedules). With AutoRecover the node rejoins after
// monitoring 128 occurrences of 11 consecutive recessive bits; without it
// the disconnection is permanent.
func (c *Controller) ForceBusOff() {
	c.tec = BusOffLimit
	c.refreshMode()
}

// Mode returns the fault confinement mode.
func (c *Controller) Mode() Mode { return c.mode }

// Counters returns the transmit and receive error counters.
func (c *Controller) Counters() (tec, rec int) { return c.tec, c.rec }

// SetErrorCounters overrides the error counters (test hook used to place a
// node in the error-passive state, as in the paper's Section 1 discussion).
func (c *Controller) SetErrorCounters(tec, rec int) {
	c.tec, c.rec = tec, rec
	c.refreshMode()
}

// Delivered returns the number of frames delivered to the upper layer.
func (c *Controller) Delivered() uint64 { return c.delivered }

// TxSuccesses returns the number of successfully transmitted frames.
func (c *Controller) TxSuccesses() uint64 { return c.txOK }

// ErrorCount returns how many errors of the given kind the node detected.
func (c *Controller) ErrorCount(kind ErrorKind) uint64 { return c.errCount[kind] }

// Idle reports whether the controller considers the bus idle and has
// nothing queued (useful as a quiescence condition for test drivers).
func (c *Controller) Idle() bool {
	return (c.state == stIdle || c.state == stOff) && c.queue.len() == 0
}

// Now returns the number of bit slots this controller has latched.
func (c *Controller) Now() uint64 { return c.now }

func (c *Controller) setMode(m Mode) {
	if c.mode == m {
		return
	}
	old := c.mode
	c.mode = m
	switch {
	case m == BusOff || m == SwitchedOff:
		c.emit(obs.KindBusOff, false, 0, uint32(m))
	case old == BusOff && m == ErrorActive:
		c.emit(obs.KindRecover, false, 0, 0)
	}
	if h := c.opts.Hooks.OnModeChange; h != nil {
		h(c.now, old, m)
	}
}

func (c *Controller) refreshMode() {
	switch {
	case c.mode == SwitchedOff:
		// terminal
	case c.tec >= BusOffLimit:
		c.setMode(BusOff)
		c.state = stOff
	case c.opts.WarningSwitchOff && (c.tec >= WarningLimit || c.rec >= WarningLimit):
		c.setMode(SwitchedOff)
		c.state = stOff
	case c.tec >= PassiveLimit || c.rec >= PassiveLimit:
		c.setMode(ErrorPassive)
	case c.mode == ErrorPassive:
		c.setMode(ErrorActive)
	}
}

func (c *Controller) bumpErrorCounter(transmitter bool) {
	if transmitter {
		c.tec += 8
	} else {
		c.rec++
	}
	c.refreshMode()
}

func (c *Controller) creditSuccess(transmitter bool) {
	if transmitter {
		if c.tec > 0 {
			c.tec--
		}
	} else {
		switch {
		case c.rec >= PassiveLimit:
			c.rec = PassiveLimit - 9 // re-enter error-active per spec
		case c.rec > 0:
			c.rec--
		}
	}
	c.refreshMode()
}

// Drive implements bus.Station.
func (c *Controller) Drive() bitstream.Level {
	switch c.state {
	case stStartTx:
		return bitstream.Dominant
	case stFrame:
		if c.transmitter {
			return c.txEnc.Bits[c.txPos]
		}
		// Receiver: assert ACK if the frame validated so far.
		if c.asm.Done() && c.rxTail == 1 && c.asm.CRCOK() {
			return bitstream.Dominant
		}
		return bitstream.Recessive
	case stEpisode:
		return c.episode.Drive()
	case stErrorFlag, stOverloadFlag:
		return bitstream.Dominant
	default:
		return bitstream.Recessive
	}
}

// View implements bus.Station.
func (c *Controller) View() bus.ViewContext {
	v := bus.ViewContext{Attempts: c.attempts, Transmitter: c.transmitter}
	switch c.state {
	case stOff:
		v.Phase = bus.PhaseOff
	case stIdle:
		v.Phase = bus.PhaseIdle
	case stStartTx, stFrame:
		v.Phase = bus.PhaseFrame
		if c.state == stStartTx {
			v.Field, v.Index, v.Transmitter = frame.FieldSOF, 0, true
		} else if c.transmitter {
			ref := c.txEnc.Refs[c.txPos]
			v.Field, v.Index = ref.Field, int(ref.Index)
		} else if !c.asm.Done() {
			v.Field, v.Index = c.asm.Field(), c.asm.FieldIndex()
		} else {
			switch c.rxTail {
			case 0:
				v.Field = frame.FieldCRCDelim
			case 1:
				v.Field = frame.FieldACKSlot
			default:
				v.Field = frame.FieldACKDelim
			}
		}
	case stEpisode:
		phase, pos := c.episode.Phase()
		v.Phase, v.EOFRel = phase, pos
		if phase == bus.PhaseEOF {
			v.Field, v.Index = frame.FieldEOF, pos-1
		}
	case stErrorFlag:
		v.Phase = bus.PhaseErrorFlag
	case stPassiveFlag:
		v.Phase = bus.PhasePassiveErrorFlag
	case stOverloadFlag:
		v.Phase = bus.PhaseOverloadFlag
	case stDelim:
		if c.delimAfter == AfterOverloadDelim {
			v.Phase = bus.PhaseOverloadDelim
		} else {
			v.Phase = bus.PhaseErrorDelim
		}
	case stIntermission:
		v.Phase = bus.PhaseIntermission
		v.Field, v.Index = frame.FieldIntermission, c.intermCount
	case stSuspend:
		v.Phase = bus.PhaseSuspend
	}
	return v
}

// Latch implements bus.Station.
func (c *Controller) Latch(level bitstream.Level) {
	switch c.state {
	case stOff:
		c.latchOff(level)
	case stIdle:
		c.latchIdle(level)
	case stStartTx:
		c.beginFrame(true)
		c.latchFrame(level)
	case stFrame:
		c.latchFrame(level)
	case stEpisode:
		c.latchEpisode(level)
	case stErrorFlag, stPassiveFlag, stOverloadFlag:
		c.latchFlag(level)
	case stDelim:
		c.latchDelim(level)
	case stIntermission:
		c.latchIntermission(level)
	case stSuspend:
		c.latchSuspend(level)
	}
	c.now++
}

// latchOff handles the disconnected state: a bus-off node with AutoRecover
// counts 128 occurrences of 11 consecutive recessive bits and then rejoins
// the bus error-active. Crashed and switched-off nodes stay silent.
func (c *Controller) latchOff(level bitstream.Level) {
	if !c.opts.AutoRecover || c.crashed || c.mode != BusOff {
		return
	}
	if level != bitstream.Recessive {
		c.recovRun = 0
		return
	}
	c.recovRun++
	if c.recovRun < 11 {
		return
	}
	c.recovRun = 0
	c.recovSeq++
	if c.recovSeq < 128 {
		return
	}
	c.recovSeq = 0
	c.tec, c.rec = 0, 0
	c.setMode(ErrorActive)
	c.state = stIdle
}

func (c *Controller) latchIdle(level bitstream.Level) {
	if level == bitstream.Dominant {
		c.beginFrame(false)
		c.latchFrame(level)
		return
	}
	if c.queue.len() > 0 {
		c.state = stStartTx
	}
}

func (c *Controller) latchSuspend(level bitstream.Level) {
	if level == bitstream.Dominant {
		// Another node started a frame during our suspend period.
		c.beginFrame(false)
		c.latchFrame(level)
		return
	}
	c.suspendLeft--
	if c.suspendLeft <= 0 {
		c.state = stIdle
	}
}
