package node_test

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/node"
)

// Bus-off recovery: after 128 occurrences of 11 consecutive recessive bits
// an AutoRecover node rejoins the bus error-active and can transmit again.
func TestBusOffRecovery(t *testing.T) {
	n0 := node.New("tx", core.NewStandard(), node.Options{AutoRecover: true})
	n1 := node.New("rx", core.NewStandard(), node.Options{})
	net := bus.NewNetwork()
	net.Attach(n0)
	net.Attach(n1)

	n0.SetErrorCounters(node.BusOffLimit, 0)
	if n0.Mode() != node.BusOff {
		t.Fatalf("mode = %v, want bus-off", n0.Mode())
	}
	if err := n0.Enqueue(&frame.Frame{ID: 7, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}

	// Not yet recovered after fewer than 128*11 recessive bits.
	net.Run(128*11 - 12)
	if n0.Mode() != node.BusOff {
		t.Fatalf("recovered too early at mode %v", n0.Mode())
	}
	// Complete the recovery sequence and let the pending frame go out.
	net.Run(12 + 200)
	if n0.Mode() != node.ErrorActive {
		t.Fatalf("mode = %v, want error-active after recovery", n0.Mode())
	}
	if tec, rec := n0.Counters(); tec != 0 || rec != 0 {
		t.Errorf("counters after recovery = %d/%d, want 0/0", tec, rec)
	}
	if n0.TxSuccesses() != 1 {
		t.Errorf("tx successes = %d, want 1 (queued frame sent after recovery)", n0.TxSuccesses())
	}
	if n1.Delivered() != 1 {
		t.Errorf("receiver delivered %d, want 1", n1.Delivered())
	}
}

// A dominant bit interrupts the recovery run counting.
func TestBusOffRecoveryInterruptedByTraffic(t *testing.T) {
	n0 := node.New("off", core.NewStandard(), node.Options{AutoRecover: true})
	n1 := node.New("tx", core.NewStandard(), node.Options{})
	n2 := node.New("rx", core.NewStandard(), node.Options{})
	net := bus.NewNetwork()
	net.Attach(n0)
	net.Attach(n1)
	net.Attach(n2)
	n0.SetErrorCounters(node.BusOffLimit, 0)

	// Keep the bus busy: recovery must take longer than the idle-bus bound
	// because frames contain dominant bits.
	for i := 0; i < 12; i++ {
		if err := n1.Enqueue(&frame.Frame{ID: uint32(i), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(128*11 + 24)
	if n0.Mode() != node.BusOff {
		t.Error("node must still be bus-off while traffic interrupts the recovery sequence")
	}
	// After the bus drains and goes idle long enough, recovery completes.
	net.Run(12 * 150)
	net.Run(128 * 11)
	if n0.Mode() != node.ErrorActive {
		t.Errorf("mode = %v, want error-active once the bus has been idle long enough", n0.Mode())
	}
}

// Bus-off recovery under sustained load: every frame boundary contributes
// exactly one occurrence of 11 consecutive recessive bits (ACK delimiter +
// 7 EOF bits + 3 intermission bits), so a recovering node rejoins after
// ~128 frames of ongoing traffic, frame-aligned at an intermission, and
// must neither corrupt the passing frames nor miss its own pending one.
func TestBusOffRecoveryUnderLoad(t *testing.T) {
	policy := core.NewStandard()
	n0 := node.New("recovering", policy, node.Options{AutoRecover: true})
	feeders := make([]*node.Controller, 3)
	net := bus.NewNetwork()
	net.Attach(n0)
	for i := range feeders {
		feeders[i] = node.New("feeder", policy, node.Options{})
		net.Attach(feeders[i])
	}

	n0.ForceBusOff()
	if n0.Mode() != node.BusOff {
		t.Fatalf("mode = %v, want bus-off after ForceBusOff", n0.Mode())
	}
	// n0 already has a frame pending; its high ID loses arbitration to the
	// feeders, so it transmits only once their queues drain.
	if err := n0.Enqueue(&frame.Frame{ID: 0x700, Data: []byte{0xFF}}); err != nil {
		t.Fatal(err)
	}
	const perFeeder = 48 // 144 frames total, > 128 recovery occurrences
	for seq := 0; seq < perFeeder; seq++ {
		for i, f := range feeders {
			if err := f.Enqueue(&frame.Frame{ID: uint32(0x100 + i), Data: []byte{byte(seq)}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Run until n0 rejoins; traffic must still be flowing at that point so
	// the recovery really happened under load.
	recovered := net.RunUntil(func() bool { return n0.Mode() == node.ErrorActive }, 30000)
	if !recovered {
		t.Fatal("node did not recover under sustained traffic")
	}
	stillQueued := 0
	for _, f := range feeders {
		stillQueued += f.QueueLen()
	}
	if stillQueued == 0 {
		t.Error("feeders already drained: recovery did not happen under load")
	}

	// Drain everything, including n0's pending frame.
	net.RunUntil(func() bool {
		if !n0.Idle() {
			return false
		}
		for _, f := range feeders {
			if !f.Idle() {
				return false
			}
		}
		return true
	}, 30000)
	net.Run(4)

	// The rejoin must not have corrupted any traffic: no station detected a
	// single error of any kind.
	for i, f := range feeders {
		for _, kind := range []node.ErrorKind{node.ErrBit, node.ErrStuff, node.ErrCRC, node.ErrForm, node.ErrAck} {
			if n := f.ErrorCount(kind); n != 0 {
				t.Errorf("feeder %d saw %d %v errors: recovery corrupted traffic", i, n, kind)
			}
		}
		if got := f.TxSuccesses(); got != perFeeder {
			t.Errorf("feeder %d transmitted %d frames, want %d", i, got, perFeeder)
		}
	}
	// Each feeder hears the other two feeders' frames plus n0's frame.
	for i, f := range feeders {
		want := uint64(2*perFeeder + 1)
		if got := f.Delivered(); got != want {
			t.Errorf("feeder %d delivered %d frames, want %d", i, got, want)
		}
	}
	if n0.TxSuccesses() != 1 {
		t.Errorf("recovered node transmitted %d frames, want its 1 pending frame", n0.TxSuccesses())
	}
	if tec, rec := n0.Counters(); tec != 0 || rec != 0 {
		t.Errorf("recovered node counters = %d/%d, want 0/0", tec, rec)
	}
}

// Crashed nodes never recover, AutoRecover or not.
func TestCrashIsTerminal(t *testing.T) {
	n0 := node.New("crash", core.NewStandard(), node.Options{AutoRecover: true})
	net := bus.NewNetwork()
	net.Attach(n0)
	n0.Crash()
	net.Run(130 * 11)
	if n0.Mode() != node.SwitchedOff {
		t.Errorf("mode = %v, want switched-off forever", n0.Mode())
	}
	if got := n0.Drive(); got != bitstream.Recessive {
		t.Errorf("crashed node drives %v, want recessive", got)
	}
}

// Without AutoRecover, bus-off is terminal.
func TestBusOffWithoutAutoRecoverIsTerminal(t *testing.T) {
	n0 := node.New("off", core.NewStandard(), node.Options{})
	net := bus.NewNetwork()
	net.Attach(n0)
	n0.SetErrorCounters(node.BusOffLimit, 0)
	net.Run(200 * 11)
	if n0.Mode() != node.BusOff {
		t.Errorf("mode = %v, want bus-off forever", n0.Mode())
	}
}
