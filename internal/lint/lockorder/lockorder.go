// Package lockorder builds a static mutex-acquisition graph per package
// and reports the two concurrency hazards the service layer cannot
// tolerate: lock-order inversions (lock B acquired while A is held in
// one function, A acquired while B is held in another — a deadlock the
// race detector cannot see because it needs the unlucky interleaving)
// and blocking work performed under a lock (fsync, journal appends,
// sleeps, unbounded channel operations), which turns one slow disk into
// a stall of every reader contending for the same mutex.
//
// Locks are keyed by struct field or package-level variable, like the
// atomicmix analyzer: every instance of Scheduler.mu is one node in the
// graph, which is the standard (conservative) lock-order model. Held
// regions are tracked linearly through each function body — branches
// fork a copy of the held set, goroutine bodies start empty — and calls
// into same-package functions propagate their transitive acquisitions
// and blocking operations. Calls through interfaces or function values
// are dead ends, as in the intra-package call graph.
//
// Intentional blocking under a lock (a mutex whose entire purpose is to
// serialize an fsync, for example) is annotated with
// `//lint:allow lockorder -- <reason>` on the offending call.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// Analyzer is the lock-order and blocking-under-lock check.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order cycles and blocking I/O or channel operations performed while a mutex is held",
	Run:  run,
}

// funcFacts is what one function does directly: which shared locks it
// acquires and whether it performs a blocking operation.
type funcFacts struct {
	acquires map[types.Object]string // lock object -> printable name
	blocks   string                  // description of the first blocking op, "" if none
}

type edge struct {
	from, to types.Object
	fromName string
	toName   string
	pos      token.Pos
	via      string // callee name for indirect acquisitions, "" for direct Lock calls
}

type analysis struct {
	pass   *lint.Pass
	graph  *lint.CallGraph
	direct map[*types.Func]*funcFacts
	// transitive closures over the intra-package call graph
	acquiresTrans map[*types.Func]map[types.Object]string
	blocksTrans   map[*types.Func]string
	edges         []edge
}

func run(pass *lint.Pass) error {
	if !lint.InConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analysis{
		pass:          pass,
		graph:         lint.NewCallGraph(pass),
		direct:        make(map[*types.Func]*funcFacts),
		acquiresTrans: make(map[*types.Func]map[types.Object]string),
		blocksTrans:   make(map[*types.Func]string),
	}
	for fn, decl := range a.graph.Decls {
		a.direct[fn] = a.collectFacts(decl)
	}
	for fn := range a.graph.Decls {
		a.closeOver(fn, make(map[*types.Func]bool))
	}
	for _, decl := range a.graph.Decls {
		a.walkStmts(decl.Body.List, nil)
	}
	a.reportCycles()
	return nil
}

// collectFacts scans one function body for direct lock acquisitions and
// blocking operations, ignoring goroutine bodies (they run on their own
// stack and do not hold the caller's locks).
func (a *analysis) collectFacts(decl *ast.FuncDecl) *funcFacts {
	f := &funcFacts{acquires: make(map[types.Object]string)}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			callee := lint.CalleeFunc(a.pass.Info, n)
			if name, ok := lint.MutexMethod(callee); ok {
				if name == "Lock" || name == "RLock" {
					if obj, lname, ok := lint.LockObject(a.pass, n); ok && sharedLock(obj) {
						f.acquires[obj] = lname
					}
				}
				return true
			}
			if desc, ok := lint.BlockingCall(callee); ok && f.blocks == "" {
				f.blocks = desc
			}
		}
		return true
	})
	return f
}

// sharedLock reports whether the lock object can be contended across
// functions: a struct field or a package-level variable. Locals cannot
// participate in cross-function cycles.
func sharedLock(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
}

// closeOver computes the transitive acquisition set and blocking
// description of fn over the intra-package call graph.
func (a *analysis) closeOver(fn *types.Func, visiting map[*types.Func]bool) (map[types.Object]string, string) {
	if acq, done := a.acquiresTrans[fn]; done {
		return acq, a.blocksTrans[fn]
	}
	if visiting[fn] {
		d := a.direct[fn]
		if d == nil {
			return nil, ""
		}
		return d.acquires, d.blocks
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	acq := make(map[types.Object]string)
	blocks := ""
	if d := a.direct[fn]; d != nil {
		for o, n := range d.acquires {
			acq[o] = n
		}
		blocks = d.blocks
	}
	for _, callee := range a.graph.Edges[fn] {
		cAcq, cBlocks := a.closeOver(callee, visiting)
		for o, n := range cAcq {
			if _, ok := acq[o]; !ok {
				acq[o] = n
			}
		}
		if blocks == "" && cBlocks != "" {
			blocks = cBlocks + " via " + callee.Name()
		}
	}
	a.acquiresTrans[fn] = acq
	a.blocksTrans[fn] = blocks
	return acq, blocks
}

// heldLock is one entry of the held-region stack.
type heldLock struct {
	obj  types.Object
	name string
}

// walkStmts simulates lock state linearly through a statement list.
// Branch bodies get a copy of the held stack so an unlock on one path
// does not leak into the other; the copy-on-branch model is
// conservative in both directions but matches how the tree's lock
// regions are actually written (lock … unlock in straight lines, or
// defer unlock to function end).
func (a *analysis) walkStmts(stmts []ast.Stmt, held []heldLock) {
	for _, s := range stmts {
		held = a.walkStmt(s, held)
	}
}

func (a *analysis) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if next, handled := a.lockEvent(call, held); handled {
				return next
			}
		}
		a.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, which
		// the linear walk models by simply not popping it. Other
		// deferred calls run after every unlock point we can see, so
		// checking them against the current held set would be wrong;
		// skip them.
		if _, ok := lint.MutexMethod(lint.CalleeFunc(a.pass.Info, s.Call)); !ok {
			for _, arg := range s.Call.Args {
				a.checkExpr(arg, nil)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			a.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			a.checkExpr(lhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.checkExpr(r, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			a.pass.Reportf(s.Pos(),
				"channel send while %s is held can block indefinitely; move it outside the critical section, use a select with default, or annotate with //lint:allow lockorder -- <reason>",
				held[len(held)-1].name)
		}
		a.checkExpr(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = a.walkStmt(s.Init, held)
		}
		a.checkExpr(s.Cond, held)
		a.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			a.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		a.walkStmts(s.List, copyHeld(held))
	case *ast.ForStmt:
		if s.Init != nil {
			held = a.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			a.checkExpr(s.Cond, held)
		}
		a.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		a.checkExpr(s.X, held)
		a.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = a.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			a.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			a.pass.Reportf(s.Pos(),
				"select without a default case blocks while %s is held; add a default, move it outside the critical section, or annotate with //lint:allow lockorder -- <reason>",
				held[len(held)-1].name)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// The goroutine starts with no locks held; its body is checked
		// independently.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			a.walkStmts(lit.Body.List, nil)
		}
		for _, arg := range s.Call.Args {
			a.checkExpr(arg, held)
		}
	case *ast.LabeledStmt:
		return a.walkStmt(s.Stmt, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// lockEvent handles a statement-level mutex call, returning the updated
// held stack and handled=true when the call was a lock or unlock.
func (a *analysis) lockEvent(call *ast.CallExpr, held []heldLock) ([]heldLock, bool) {
	name, ok := lint.MutexMethod(lint.CalleeFunc(a.pass.Info, call))
	if !ok {
		return held, false
	}
	obj, lname, ok := lint.LockObject(a.pass, call)
	if !ok {
		return held, true
	}
	switch name {
	case "Lock", "RLock":
		for _, h := range held {
			if h.obj == obj {
				a.pass.Reportf(call.Pos(),
					"%s is acquired while already held (self-deadlock on the same lock)", lname)
				continue
			}
			a.edges = append(a.edges, edge{
				from: h.obj, to: obj, fromName: h.name, toName: lname, pos: call.Pos(),
			})
		}
		return append(copyHeld(held), heldLock{obj: obj, name: lname}), true
	case "Unlock", "RUnlock":
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].obj == obj {
				return append(copyHeld(held[:i]), held[i+1:]...), true
			}
		}
		return held, true
	}
	return held, true
}

// checkExpr inspects an expression for calls and channel receives made
// while locks are held.
func (a *analysis) checkExpr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal passed as a callback may run later, without the
			// caller's locks; its body is checked with an empty held set.
			a.walkStmts(n.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				a.pass.Reportf(n.Pos(),
					"channel receive while %s is held can block indefinitely; move it outside the critical section or annotate with //lint:allow lockorder -- <reason>",
					held[len(held)-1].name)
			}
		case *ast.CallExpr:
			a.checkCall(n, held)
		}
		return true
	})
}

// checkCall reports blocking callees and records indirect acquisition
// edges for a call made while locks are held.
func (a *analysis) checkCall(call *ast.CallExpr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	callee := lint.CalleeFunc(a.pass.Info, call)
	if callee == nil {
		return
	}
	if _, ok := lint.MutexMethod(callee); ok {
		return // handled by the held-region walk
	}
	top := held[len(held)-1]
	if desc, ok := lint.BlockingCall(callee); ok {
		a.pass.Reportf(call.Pos(),
			"%s while %s is held stalls every contender on that lock; move the blocking work outside the critical section or annotate with //lint:allow lockorder -- <reason>",
			desc, top.name)
		return
	}
	if callee.Pkg() != a.pass.Pkg {
		return
	}
	if blocks := a.blocksTrans[callee]; blocks != "" {
		a.pass.Reportf(call.Pos(),
			"call to %s performs %s while %s is held; move the blocking work outside the critical section or annotate with //lint:allow lockorder -- <reason>",
			callee.Name(), blocks, top.name)
	}
	for obj, lname := range a.acquiresTrans[callee] {
		for _, h := range held {
			if h.obj == obj {
				a.pass.Reportf(call.Pos(),
					"call to %s re-acquires %s which is already held (self-deadlock)",
					callee.Name(), lname)
				continue
			}
			a.edges = append(a.edges, edge{
				from: h.obj, to: obj, fromName: h.name, toName: lname,
				pos: call.Pos(), via: callee.Name(),
			})
		}
	}
}

// reportCycles finds lock-order cycles in the acquisition graph and
// reports every edge that participates in one.
func (a *analysis) reportCycles() {
	adj := make(map[types.Object]map[types.Object]bool)
	for _, e := range a.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]bool)
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to types.Object) bool {
		seen := make(map[types.Object]bool)
		var dfs func(types.Object) bool
		dfs = func(o types.Object) bool {
			if o == to {
				return true
			}
			if seen[o] {
				return false
			}
			seen[o] = true
			for n := range adj[o] {
				if dfs(n) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}
	// Sort for deterministic reporting order.
	sort.Slice(a.edges, func(i, j int) bool { return a.edges[i].pos < a.edges[j].pos })
	reported := make(map[token.Pos]bool)
	for _, e := range a.edges {
		if reported[e.pos] || !reaches(e.to, e.from) {
			continue
		}
		reported[e.pos] = true
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		a.pass.Reportf(e.pos,
			"lock order cycle: %s is acquired while %s is held%s, but elsewhere the acquisition order is reversed; pick one order (deadlock risk), or annotate with //lint:allow lockorder -- <reason>",
			e.toName, e.fromName, via)
	}
}
