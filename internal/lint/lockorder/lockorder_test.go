package lockorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockorder"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/lockorder", "repro/internal/serve", lockorder.Analyzer)
}

// TestOutOfScope pins the scope gate: the same package under a
// simulator-core import path produces no findings.
func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "../testdata/scopecheck", "repro/internal/core", lockorder.Analyzer)
}
