package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir and decodes the
// package stream. -export makes the go command compile dependencies and
// report their export-data files, which the type checker imports — the
// same mechanism `go vet` uses, with no dependency beyond the toolchain.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter adapts a map of import path -> export-data file to the
// lookup function the gc importer accepts.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadPackages loads, parses and type-checks the packages matched by the
// patterns (relative to moduleRoot), excluding test files. Dependencies
// are imported from compiler export data, so only the analyzed packages
// themselves are type-checked from source.
func LoadPackages(moduleRoot string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleRoot, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Error != nil || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses the given files and type-checks them as one package.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir parses and type-checks a single directory of Go files as a
// package with the given import path, resolving its imports through
// `go list -export` run in moduleRoot. Test helpers use it to check
// testdata packages under an import path of their choosing (so scope-
// and root-matching behave exactly as on the real tree).
func LoadDir(moduleRoot, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(fileNames))
	imports := make(map[string]bool)
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[importPathOf(spec)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			if p != "unsafe" {
				patterns = append(patterns, p)
			}
		}
		if len(patterns) > 0 {
			listed, err := goList(moduleRoot, patterns)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func importPathOf(spec *ast.ImportSpec) string {
	path := spec.Path.Value
	return path[1 : len(path)-1] // strip quotes
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
