// Package linttest is the golden-test harness for the lint analyzers,
// modelled on golang.org/x/tools/go/analysis/analysistest. A testdata
// package is type-checked under an import path chosen by the test (so
// scope- and root-matching behave exactly as on the real tree) and the
// analyzer's findings are compared against `// want` comments:
//
//	rand.Intn(6) // want `global math/rand`
//
// Each `// want` comment holds one or more backquoted regular
// expressions; every diagnostic on that line must match one of them and
// every expectation must be matched by exactly one diagnostic.
// Suppression via //lint:allow runs before matching, so golden files
// also pin the allowlist behaviour.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRE = regexp.MustCompile("// want((?: `[^`]*`)+)")
var wantArgRE = regexp.MustCompile("`([^`]*)`")

// Run type-checks the package in dir under importPath, runs the
// analyzers, and compares diagnostics to // want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkg, err := lint.LoadDir(root, dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment %q (use // want `re`)",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[string]bool) // "file:line:index" of consumed wants
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			id := fmt.Sprintf("%s:%d:%d", k.file, k.line, i)
			if matched[id] || !re.MatchString(d.Message) {
				continue
			}
			matched[id] = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			id := fmt.Sprintf("%s:%d:%d", k.file, k.line, i)
			if !matched[id] {
				t.Errorf("%s:%d: no diagnostic matched `%s`", k.file, k.line, re)
			}
		}
	}
}
