package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Run executes the analyzers over the packages, drops diagnostics
// suppressed by well-formed //lint:allow directives, reports malformed
// directives, and returns the findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := make(map[string]map[int][]allowDirective) // filename -> line -> directives
		for _, f := range pkg.Files {
			if m := fileAllows(pkg.Fset, f); m != nil {
				allows[pkg.Fset.Position(f.Pos()).Filename] = m
			}
			// A directive without a reason never suppresses anything;
			// report it so the convention stays documented.
			for line, ds := range allows[pkg.Fset.Position(f.Pos()).Filename] {
				for _, d := range ds {
					// line == d.line skips the comment-group alias entry, so
					// a malformed directive is reported exactly once.
					if d.reason == "" && line == d.line {
						diags = append(diags, Diagnostic{
							Analyzer: "allow",
							Pos: token.Position{
								Filename: pkg.Fset.Position(f.Pos()).Filename,
								Line:     line,
							},
							Message: "//lint:allow directive is missing its ` -- <reason>`",
						})
					}
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if suppressed(allows, d) {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		switch {
		case a.Pos.Filename != b.Pos.Filename:
			return a.Pos.Filename < b.Pos.Filename
		case a.Pos.Line != b.Pos.Line:
			return a.Pos.Line < b.Pos.Line
		case a.Pos.Column != b.Pos.Column:
			return a.Pos.Column < b.Pos.Column
		case a.Analyzer != b.Analyzer:
			return a.Analyzer < b.Analyzer
		default:
			return a.Message < b.Message
		}
	})
	return diags, nil
}

// suppressed reports whether a well-formed allow directive on the
// diagnostic's line or the line directly above covers it.
func suppressed(allows map[string]map[int][]allowDirective, d Diagnostic) bool {
	lines := allows[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.reason != "" && dir.covers(d.Analyzer) {
				return true
			}
		}
	}
	return false
}

// jsonDiagnostic is the machine-readable rendering of a Diagnostic for
// CI annotation.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as a JSON array of findings.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
