// Package sim is golden data for the eventcontract analyzer: obs.Event
// literal completeness, cause-code validity, and nil-guarded Emit calls
// on obs.Sink-typed values. Loaded under the import path
// repro/internal/sim (any non-obs path exercises the guard rule).
package sim

import "repro/internal/obs"

type harness struct {
	events obs.Sink
	mem    *obs.Memory
}

func complete(slot uint64) obs.Event {
	return obs.Event{Kind: obs.KindIMO, Slot: slot, Station: -1}
}

func missingStation(slot uint64) obs.Event {
	return obs.Event{Kind: obs.KindIMO, Slot: slot} // want `missing required field\(s\) Station`
}

func missingKindSlot() obs.Event {
	return obs.Event{Station: -1} // want `missing required field\(s\) Kind, Slot`
}

func unkeyed() obs.Event {
	return obs.Event{1, obs.KindIMO, -1, 0, 0, 0, 0} // want `must use keyed fields`
}

// zeroValue is a placeholder, not an emission; the empty literal is
// exempt.
func zeroValue() obs.Event {
	return obs.Event{}
}

func goodCause(slot uint64) obs.Event {
	return obs.Event{Kind: obs.KindRetransmit, Slot: slot, Station: 0, Cause: 3}
}

func badCause(slot uint64) obs.Event {
	return obs.Event{Kind: obs.KindRetransmit, Slot: slot, Station: 0, Cause: 9} // want `Cause code 9 has no entry`
}

func runtimeCause(slot uint64, c uint8) obs.Event {
	return obs.Event{Kind: obs.KindRetransmit, Slot: slot, Station: 0, Cause: c} // non-constant: producer's data
}

func (h *harness) unguarded(e obs.Event) {
	h.events.Emit(e) // want `Emit on obs\.Sink "h\.events" is not guarded by a nil check`
}

func (h *harness) guarded(e obs.Event) {
	if h.events != nil {
		h.events.Emit(e)
	}
}

func (h *harness) earlyReturn(e obs.Event) {
	if h.events == nil {
		return
	}
	h.events.Emit(e)
}

// concrete sink types are non-nil by construction; only the Sink
// interface needs the guard.
func (h *harness) concrete(e obs.Event) {
	h.mem.Emit(e)
}

func (h *harness) allowed(e obs.Event) {
	//lint:allow eventcontract -- golden: sink is set unconditionally by the constructor
	h.events.Emit(e)
}

// kindExperimental is a kind the pinned table does not know about; the
// analyzer must reject emitting it until it is registered.
const kindExperimental obs.Kind = 99

func newKindsRegistered(slot uint64) []obs.Event {
	return []obs.Event{
		{Kind: obs.KindEOFVote, Slot: slot, Station: 0},
		{Kind: obs.KindRingOverflow, Slot: slot, Station: -1},
	}
}

func unknownKind(slot uint64) obs.Event {
	return obs.Event{Kind: kindExperimental, Slot: slot, Station: 0} // want `not in the eventcontract knownKinds table`
}

func runtimeKind(k obs.Kind, slot uint64) obs.Event {
	return obs.Event{Kind: k, Slot: slot, Station: 0} // non-constant: producer's data
}
