// Package obs is golden data for the goleak analyzer: goroutines with
// and without a visible join or exit path, and the allow escape hatch.
package obs

import "sync"

// --- leak: nothing joins it, nothing can stop it ---

func leakPoller(poll func()) {
	go func() { // want `goroutine \(func literal\) has no visible join or exit path`
		for {
			poll()
		}
	}()
}

// --- WaitGroup join ---

func joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// --- channel-result join ---

func channelJoin(work func() error) error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

// --- close-signal join ---

func closeJoin(work func()) chan struct{} {
	idle := make(chan struct{})
	go func() {
		work()
		close(idle)
	}()
	return idle
}

// --- stop-channel exit path ---

type ticker struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (t *ticker) loop() {
	for {
		select {
		case <-t.stop:
			return
		default:
		}
	}
}

func (t *ticker) start() {
	go t.loop() // resolves to loop, which receives from t.stop: fine
}

// --- work-channel range: exits when the channel closes ---

type pool struct {
	ch chan int
	wg sync.WaitGroup
}

func (p *pool) worker() {
	defer p.wg.Done()
	for v := range p.ch {
		_ = v
	}
}

func (p *pool) startWorkers(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// --- leak through a named function ---

func spin() {
	for {
	}
}

func leakNamed() {
	go spin() // want `goroutine spin has no visible join or exit path`
}

// --- intentional daemon, annotated ---

func daemon(poll func()) {
	//lint:allow goleak -- golden: process-lifetime poller, dies with the process
	go func() {
		for {
			poll()
		}
	}()
}
