// Package bus is golden data for the hotpath analyzer. The test loads
// it under the import path repro/internal/bus, making Network.Step a
// hot-path root; everything it statically reaches must stay
// allocation-free.
package bus

import "fmt"

type pair struct{ a, b int }

type boxer interface{ box() }

type val int

func (val) box() {}

type Network struct {
	buf     []int
	item    *int
	pairPtr *pair
	scratch []int
	sink    boxer
}

func (n *Network) Step(x int, v any) {
	n.grow(x)
	n.lits(x)
	n.dyn(v)
	n.convert(val(x))
	n.report()
	n.guard(x)
	n.cold(x)
}

func (n *Network) grow(x int) {
	n.buf = append(n.buf, x) // want `append allocates in hot-path function grow`
	n.buf = make([]int, 4)   // want `make allocates in hot-path function grow`
	n.item = new(int)        // want `new allocates in hot-path function grow`
}

func (n *Network) lits(x int) {
	n.pairPtr = &pair{a: x} // want `composite literal escapes to the heap in hot-path function lits`
	n.scratch = []int{x}    // want `slice/map literal allocates in hot-path function lits`
}

func (n *Network) dyn(v any) int {
	i := v.(int) // want `type assertion in hot-path function dyn`
	return i
}

func (n *Network) convert(v val) {
	n.sink = boxer(v) // want `interface conversion allocates in hot-path function convert`
}

func (n *Network) report() {
	fmt.Println(len(n.buf)) // want `fmt\.Println call in hot-path function report`
}

// guard only formats inside a panic argument; the goroutine is already
// dying, so the fmt call is exempt.
func (n *Network) guard(x int) {
	if x < 0 {
		panic(fmt.Sprintf("negative %d", x))
	}
}

//lint:allow hotpath -- golden: per-frame cold helper, pruned from traversal
func (n *Network) cold(x int) {
	n.buf = append(n.buf, x) // cold function: not checked
	n.colder(x)
}

// colder is only reachable through the cold function, so the prune
// removes it from the hot set too.
func (n *Network) colder(x int) {
	n.scratch = append(n.scratch, x)
}

// describe is not reachable from any root; allocations are fine here.
func describe(n *Network) string {
	return fmt.Sprint(len(n.buf))
}
