// Package serve is golden data for the errsink analyzer: discarded
// error returns from durability-critical callees, and the allow escape
// hatch for reviewed best-effort calls.
package serve

import (
	"encoding/json"
	"os"

	"repro/internal/serve/fsio"
	"repro/internal/serve/journal"
)

// --- discarded fsio errors ---

func spoolWrite(fs fsio.FS, path string, data []byte) {
	_ = fsio.WriteFileAtomic(fs, path, data) // want `error from fsio.WriteFileAtomic is discarded`
}

func spoolWriteChecked(fs fsio.FS, path string, data []byte) error {
	return fsio.WriteFileAtomic(fs, path, data)
}

func quarantine(fs fsio.FS, path string) {
	_ = fs.Rename(path, path+".corrupt") // want `error from fsio.FS.Rename is discarded`
}

func quarantineAllowed(fs fsio.FS, path string) {
	//lint:allow errsink -- golden: quarantine is best-effort on an already-failing path
	_ = fs.Rename(path, path+".corrupt")
}

func closeLoudly(f fsio.File) {
	f.Close() // want `error from fsio.File.Close is discarded`
}

func syncDeferred(f fsio.File) {
	defer f.Sync() // want `error from fsio.File.Sync is discarded`
}

// --- discarded journal errors ---

func appendRecord(j *journal.Journal, rec journal.Record) {
	j.Append(rec) // want `error from journal.Journal.Append is discarded`
}

func appendChecked(j *journal.Journal, rec journal.Record) error {
	return j.Append(rec)
}

// --- raw os forms ---

func rawRename(oldp, newp string) {
	_ = os.Rename(oldp, newp) // want `error from os.Rename is discarded`
}

func rawSync(f *os.File) {
	_ = f.Sync() // want `error from os.File.Sync is discarded`
}

// --- Save-shaped checkpoint function fields ---

type checkpointIO struct {
	Save func(json.RawMessage) error
	Load func() (json.RawMessage, bool)
}

func checkpoint(ck checkpointIO, b json.RawMessage) {
	_ = ck.Save(b) // want `error from checkpointIO.Save is discarded`
}

func checkpointHandled(ck checkpointIO, b json.RawMessage) error {
	return ck.Save(b)
}

// --- non-durability discards are not errsink's business ---

func ignoreParse(s string) {
	var v any
	_ = json.Unmarshal([]byte(s), &v)
}
