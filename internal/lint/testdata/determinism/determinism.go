// Package bus is golden data for the determinism analyzer. The test
// loads it under the import path repro/internal/bus so the scope gate
// and the hot-path root matching behave exactly as on the real tree.
package bus

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	t := time.Now()      // want `wall-clock call time\.Now`
	return time.Since(t) // want `wall-clock call time\.Since`
}

func allowedClock() time.Time {
	//lint:allow determinism -- golden: sanctioned wall-clock site
	return time.Now()
}

func malformedAllow() time.Time {
	//lint:allow determinism // want `missing its`
	return time.Now() // want `wall-clock call time\.Now`
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand call rand\.Intn`
}

func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6) // method on a seeded generator: fine
}

func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

// keyCollection is the sanctioned fix: gathering the keys for a sort
// cannot leak iteration order, so the analyzer exempts it.
func keyCollection(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func allowedMapIter(m map[string]int) int {
	n := 0
	//lint:allow determinism -- golden: order-independent count
	for range m {
		n++
	}
	return n
}

// Network.Step is a hot-path root under this import path, so bump is on
// the per-bit hot path while coldSpawn is not.
type Network struct {
	counter int
}

func (n *Network) Step() {
	n.bump()
}

func (n *Network) bump() {
	go func() { n.counter++ }() // want `goroutine spawned in bump`
}

func (n *Network) coldSpawn(done chan struct{}) {
	go func() { close(done) }() // unreachable from a root: fine
}
