// Package sim is golden data for the atomicmix analyzer: locations
// touched both through sync/atomic and through plain loads/stores.
package sim

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
	clean  atomic.Uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
}

func (c *counters) snapshot() uint64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere`
}

func (c *counters) atomicSnapshot() uint64 {
	return atomic.LoadUint64(&c.hits) // atomic read: fine
}

func (c *counters) allowedRead() uint64 {
	//lint:allow atomicmix -- golden: single-goroutine read after workers joined
	return c.misses
}

// typed atomics cannot be mixed: the value is unexported.
func (c *counters) typed() uint64 {
	c.clean.Add(1)
	return c.clean.Load()
}

var total uint64

func addTotal(n uint64) {
	atomic.AddUint64(&total, n)
}

func readTotal() uint64 {
	return total // want `variable total is accessed via sync/atomic elsewhere`
}

func readTotalAtomic() uint64 {
	return atomic.LoadUint64(&total)
}
