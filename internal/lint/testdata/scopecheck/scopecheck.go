// Package core is golden data for the concurrency analyzers' scope
// gate: it would trip every one of them — a lock-order cycle, blocking
// fsync under a mutex, a detached context, a bare receive ignoring ctx,
// an unjoined goroutine, and a discarded durability error — but it is
// loaded under a simulator-core import path, which the concurrency
// scope excludes, so the analyzers must stay silent. The file carries
// no expectations on purpose: any finding is a test failure.
package core

import (
	"context"
	"os"
	"sync"
)

type tangle struct {
	a, b sync.Mutex
	f    *os.File
}

func (t *tangle) ab() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock()
	t.b.Unlock()
}

func (t *tangle) ba() {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock()
	t.a.Unlock()
}

func (t *tangle) flush() {
	t.a.Lock()
	defer t.a.Unlock()
	_ = t.f.Sync()
}

func detached(ctx context.Context, idle chan struct{}) {
	_ = context.Background()
	<-idle
}

func unjoined(poll func()) {
	go func() {
		for {
			poll()
		}
	}()
}

func discard(f *os.File) {
	_ = f.Sync()
}
