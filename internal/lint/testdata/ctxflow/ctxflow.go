// Package serve is golden data for the ctxflow analyzer: detached
// contexts, blocking channel operations that ignore a ctx parameter,
// unstoppable loops, and the allow escape hatch.
package serve

import (
	"context"
	"time"
)

type job struct {
	done chan struct{}
}

func (j *job) Done() <-chan struct{} { return j.done }

func run(ctx context.Context, spec string) error { _ = spec; <-ctx.Done(); return nil }

// --- rule 1: minting a root context where a caller context is in scope ---

func replay(ctx context.Context, spec string) error {
	return run(context.Background(), spec) // want `context.Background\(\) inside replay, which already receives ctx`
}

func replayTODO(ctx context.Context, spec string) error {
	return run(context.TODO(), spec) // want `context.TODO\(\) inside replayTODO, which already receives ctx`
}

func replayThreaded(ctx context.Context, spec string) error {
	return run(ctx, spec) // threads the caller's context: fine
}

func replayAllowed(ctx context.Context, spec string) error {
	//lint:allow ctxflow -- golden: detached on purpose, the replay must outlive the request
	return run(context.Background(), spec)
}

// no ctx parameter: a root-construction site, not a detachment
func entryPoint(spec string) error {
	return run(context.Background(), spec)
}

// --- rule 2: blocking channel ops that ignore the ctx parameter ---

func waitBare(ctx context.Context, idle chan struct{}) {
	<-idle // want `blocking channel receive in waitBare ignores its ctx parameter`
}

func sendBare(ctx context.Context, out chan int) {
	out <- 1 // want `blocking channel send in sendBare ignores its ctx parameter`
}

func waitAllowed(ctx context.Context, idle chan struct{}) {
	//lint:allow ctxflow -- golden: bounded join, the workers observe cancellation themselves
	<-idle
}

func waitSelect(ctx context.Context, idle chan struct{}) error {
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func waitDeaf(ctx context.Context, idle, other chan struct{}) {
	select { // want `select in waitDeaf has neither a default case nor a Done\(\) case`
	case <-idle:
	case <-other:
	}
}

func pollSelect(ctx context.Context, in chan int) (int, bool) {
	select {
	case v := <-in:
		return v, true
	default:
		return 0, false
	}
}

func waitDone(ctx context.Context) {
	<-ctx.Done() // consuming the completion signal: fine
}

func waitJob(ctx context.Context, j *job) {
	select {
	case <-j.Done(): // Done()-shaped completion channel: fine
	case <-time.After(time.Second):
	}
}

// --- rule 3: unstoppable loops ---

func pump(work func()) {
	for { // want `unbounded for-loop in pump never consults a context or completion signal`
		work()
	}
}

func pumpStoppable(stop chan struct{}, work func()) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		work()
	}
}

func pumpCtx(ctx context.Context, work func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func pumpAllowed(work func()) {
	//lint:allow ctxflow -- golden: process-lifetime daemon, stopped by exit
	for {
		work()
	}
}

func bounded(n int, work func()) {
	for i := 0; i < n; i++ { // bounded loop: fine
		work()
	}
}

// data-bounded loop: exits via break when the input is consumed
func split(buf []byte, emit func([]byte)) {
	for {
		if len(buf) == 0 {
			break
		}
		emit(buf[:1])
		buf = buf[1:]
	}
}

// a break that binds to a nested switch does not make the loop stoppable
func dispatch(next func() int, handle func(int)) {
	for { // want `unbounded for-loop in dispatch never consults a context or completion signal`
		switch v := next(); v {
		case 0:
			break
		default:
			handle(v)
		}
	}
}
