// Package serve is golden data for the lockorder analyzer: lock-order
// cycles, blocking work under a mutex, and the allow escape hatch.
package serve

import (
	"os"
	"sync"
)

// --- lock-order cycle: ab locks A then B, ba locks B then A ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `lock order cycle: pair.b is acquired while pair.a is held`
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want `lock order cycle: pair.a is acquired while pair.b is held`
	defer p.a.Unlock()
}

// --- indirect cycle through a same-package callee ---

type store struct {
	mu    sync.Mutex
	index sync.RWMutex
}

func (s *store) lockIndex() {
	s.index.Lock()
	s.index.Unlock()
}

func (s *store) update() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockIndex() // want `lock order cycle: store.index is acquired while store.mu is held \(via lockIndex\)`
}

func (s *store) rebuild() {
	s.index.Lock()
	defer s.index.Unlock()
	s.mu.Lock() // want `lock order cycle: store.mu is acquired while store.index is held`
	s.mu.Unlock()
}

// --- consistent order is not a cycle ---

type layered struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (l *layered) first() {
	l.outer.Lock()
	defer l.outer.Unlock()
	l.inner.Lock()
	l.inner.Unlock()
}

func (l *layered) second() {
	l.outer.Lock()
	defer l.outer.Unlock()
	l.inner.Lock()
	l.inner.Unlock()
}

// --- blocking I/O under a lock ---

type journal struct {
	mu sync.Mutex
	f  *os.File
}

func (j *journal) append(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync() // want `os.File.Sync \(fsync\) while journal.mu is held`
}

func (j *journal) appendAllowed(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	//lint:allow lockorder -- golden: this mutex exists to serialize the fsync
	return j.f.Sync()
}

// blocking via a same-package callee, seen transitively
func (j *journal) fsync() {
	_ = j.f.Sync()
}

func (j *journal) flush() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fsync() // want `call to fsync performs os.File.Sync \(fsync\)( via \w+)? while journal.mu is held`
}

// --- channel operations under a lock ---

type queue struct {
	mu sync.Mutex
	ch chan int
}

func (q *queue) blockingSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while queue.mu is held`
}

func (q *queue) nonBlockingSend(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

func (q *queue) blockingRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `channel receive while queue.mu is held`
}

func (q *queue) recvOutside() int {
	q.mu.Lock()
	q.mu.Unlock()
	return <-q.ch // unlocked before the receive: fine
}

// --- self-deadlock ---

type recursive struct {
	mu sync.Mutex
}

func (r *recursive) helper() {
	r.mu.Lock()
	r.mu.Unlock()
}

func (r *recursive) outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helper() // want `call to helper re-acquires recursive.mu which is already held`
}

// --- goroutine bodies do not inherit the launcher's locks ---

type launcher struct {
	mu   sync.Mutex
	done chan struct{}
}

func (l *launcher) spawn() {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		<-l.done // runs on its own stack, no lock held
	}()
}

// --- sleeping under a lock ---

type sleeper struct {
	mu sync.Mutex
}

func (s *sleeper) nap(pause func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pause() // function value: statically invisible, not flagged
}
