package atomicmix_test

import (
	"testing"

	"repro/internal/lint/atomicmix"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/atomicmix", "repro/internal/sim", atomicmix.Analyzer)
}
