// Package atomicmix reports memory locations accessed both through
// sync/atomic functions and through plain loads or stores. Mixing the
// two silently downgrades the atomic sites: the plain access can tear,
// be reordered, or race undetected when the -race runs happen not to
// exercise the interleaving. The forked metrics registry and the SPSC
// event ring make this mistake easy — a counter bumped atomically on the
// hot path and then read bare in a snapshot path compiles fine and is
// wrong.
//
// The analyzer keys locations by struct field or package-level variable
// within the analyzed package. Intentional unsynchronised access (e.g.
// single-goroutine construction before publication) is annotated with
// `//lint:allow atomicmix -- <reason>`. Typed atomics (atomic.Uint64 and
// friends) are immune by construction — their value is unexported — and
// are the preferred fix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the mixed atomic/plain access check.
var Analyzer = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "report locations accessed both via sync/atomic and via plain loads/stores",
	Run:  run,
}

func run(pass *lint.Pass) error {
	atomicSites := collectAtomicSites(pass)
	if len(atomicSites.objs) == 0 {
		return nil
	}
	reportPlainAccesses(pass, atomicSites)
	return nil
}

// siteSet records which objects (struct fields, package-level vars) are
// operated on by sync/atomic calls, and the &obj expressions that form
// those calls' arguments (so they are not re-reported as plain reads).
type siteSet struct {
	objs     map[types.Object]bool
	atomicOp map[ast.Node]bool // the &x.f argument nodes inside atomic calls
}

func collectAtomicSites(pass *lint.Pass) siteSet {
	s := siteSet{objs: make(map[types.Object]bool), atomicOp: make(map[ast.Node]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObject(pass, un.X); obj != nil {
					s.objs[obj] = true
					s.atomicOp[un.X] = true
				}
			}
			return true
		})
	}
	return s
}

// addressedObject resolves &X's operand to a trackable object: a struct
// field (via selector) or a package-level variable.
func addressedObject(pass *lint.Pass, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if obj, ok := pass.Info.Uses[x.Sel]; ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok && obj.Pkg() == pass.Pkg && !obj.IsField() {
			if pass.Pkg.Scope().Lookup(obj.Name()) == obj {
				return obj
			}
		}
	case *ast.IndexExpr:
		// &arr[i] — track the backing field/var so plain indexing of the
		// same array is caught too.
		return addressedObject(pass, x.X)
	}
	return nil
}

func reportPlainAccesses(pass *lint.Pass, sites siteSet) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sites.atomicOp[n] {
					return false
				}
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal || !sites.objs[sel.Obj()] {
					return true
				}
				pass.Reportf(n.Pos(),
					"field %s is accessed via sync/atomic elsewhere in this package but read/written directly here; use the atomic API (or a typed atomic), or annotate with //lint:allow atomicmix -- <reason>",
					sel.Obj().Name())
				return false
			case *ast.Ident:
				obj, ok := pass.Info.Uses[n]
				if !ok || !sites.objs[obj] || sites.atomicOp[n] {
					return true
				}
				pass.Reportf(n.Pos(),
					"variable %s is accessed via sync/atomic elsewhere in this package but read/written directly here; use the atomic API (or a typed atomic), or annotate with //lint:allow atomicmix -- <reason>",
					obj.Name())
				return false
			case *ast.UnaryExpr:
				// &x.f handed to an atomic call was already indexed; any
				// other address-taking is suspicious but not a plain access
				// (the pointer may feed another atomic call); skip the
				// operand to avoid double-reporting selectors under &.
				if n.Op == token.AND && sites.atomicOp[n.X] {
					return false
				}
			}
			return true
		})
	}
}
