package lint

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static intra-package call graph: edges follow direct
// function calls and method calls that resolve to a function declared in
// the same package. Calls through interfaces or function values are dead
// ends (the callee is not statically known), as are cross-package calls;
// the hot-path roots are chosen so every per-bit function is rooted in
// its own package instead.
type CallGraph struct {
	// Decls maps every declared function or method to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Edges lists the statically resolved same-package callees. Calls
	// inside function literals count as calls of the enclosing function.
	Edges map[*types.Func][]*types.Func
}

// NewCallGraph builds the call graph of one package pass.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Edges: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = decl
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeFunc(pass.Info, call)
				if callee != nil && callee.Pkg() == pass.Pkg {
					g.Edges[fn] = append(g.Edges[fn], callee)
				}
				return true
			})
		}
	}
	return g
}

// Roots returns the declared functions whose qualified name appears in
// the names list.
func (g *CallGraph) Roots(names []string) []*types.Func {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var roots []*types.Func
	for fn := range g.Decls {
		if want[FuncQualifiedName(fn)] {
			roots = append(roots, fn)
		}
	}
	return roots
}

// Reachable returns the functions statically reachable from the roots.
// Functions for which prune returns true are excluded entirely: they are
// not visited and their callees are not followed through them.
func (g *CallGraph) Reachable(roots []*types.Func, prune func(*types.Func) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] || (prune != nil && prune(fn)) {
			return
		}
		if _, declared := g.Decls[fn]; !declared {
			return
		}
		seen[fn] = true
		for _, callee := range g.Edges[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
