// Package determinism forbids sources of run-to-run nondeterminism in
// the simulator's scoped packages (lint.ScopePaths): wall-clock reads,
// the global math/rand stream, map iteration, and goroutine spawns on
// the per-bit hot path. These are the conventions behind the chaos
// engine's digest-verified replays and the byte-identical JSONL event
// streams: one violation makes a replay digest or an event log depend on
// when or where a run happened instead of only on its seed.
//
// Legitimate wall-clock code (progress display, rate reporting) is
// annotated with `//lint:allow determinism -- <reason>`.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the determinism contract check.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, map iteration and hot-path goroutines in simulator code",
	Run:  run,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded generators — the approved pattern (cf. errmodel's fork lineage).
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	checkHotGoroutines(pass)
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
			pass.Reportf(call.Pos(),
				"wall-clock call time.%s in deterministic simulator code; take timestamps outside the simulation or annotate with //lint:allow determinism -- <reason>",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !isMethod && !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand call rand.%s draws from an unseeded shared stream; use a seeded *rand.Rand (errmodel fork pattern)",
				fn.Name())
		}
	}
}

func checkRange(pass *lint.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isKeyCollection(rng) {
		// The sanctioned fix itself: `for k := range m { keys =
		// append(keys, k) }` followed by a sort. Order cannot leak out
		// of a loop that only gathers the keys.
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; collect and sort the keys first, or annotate with //lint:allow determinism -- <reason>")
}

// isKeyCollection recognises a key-only range whose body is exactly
// `slice = append(slice, key)`.
func isKeyCollection(rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && arg.Name == keyID.Name
}

// checkHotGoroutines reports go statements inside functions statically
// reachable from the per-bit hot-path roots: a goroutine spawned per bit
// slot makes scheduling part of the simulation.
func checkHotGoroutines(pass *lint.Pass) {
	g := lint.NewCallGraph(pass)
	roots := g.Roots(lint.HotPathRoots)
	if len(roots) == 0 {
		return
	}
	for fn := range g.Reachable(roots, nil) {
		decl := g.Decls[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if stmt, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(stmt.Pos(),
					"goroutine spawned in %s, which is reachable from the per-bit hot path; the bit loop must stay single-threaded",
					fn.Name())
			}
			return true
		})
	}
}
