package determinism_test

import (
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/determinism", "repro/internal/bus", determinism.Analyzer)
}
