// Package errsink reports discarded error returns from
// durability-critical callees. The crash-safety contract (DESIGN.md
// §11) is only as strong as its weakest error path: a swallowed fsync,
// rename, journal append or checkpoint save means the service
// acknowledges state it may not hold after a crash. The analyzer flags
// bare-statement calls, `_ =` assignments and deferred calls whose
// static callee is one of
//
//   - the fsio seam (File.Write/Sync/Close, FS.Rename/Remove/MkdirAll/
//     SyncDir, WriteFileAtomic) — every byte of spool, journal and
//     checkpoint I/O flows through it,
//   - journal.Journal Append/Close,
//   - CheckpointStore.Save and Save-shaped checkpoint function fields,
//   - os.Rename and os.File.Sync, the raw forms of the same operations.
//
// Best-effort discards (quarantine renames on already-failing paths,
// cleanup removes after an error) are annotated with
// `//lint:allow errsink -- <reason>` so every swallowed durability
// error in the tree is a reviewed decision, not an accident.
package errsink

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the discarded-durability-error check.
var Analyzer = &lint.Analyzer{
	Name: "errsink",
	Doc:  "report discarded error returns from durability-critical callees (fsio, journal, checkpoints, fsync, rename)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, nil)
				}
				return false // the call's arguments cannot discard results
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, nil)
				return true // closures in args still need walking
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						checkDiscard(pass, call, n.Lhs)
					}
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkDiscard reports the call if it returns an error that the
// statement throws away and the callee is durability-critical. lhs is
// nil for bare/deferred calls and the assignment targets otherwise.
func checkDiscard(pass *lint.Pass, call *ast.CallExpr, lhs []ast.Expr) {
	name, ok := durabilityCallee(pass, call)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return
	}
	errIdxs := errorResults(tv.Type)
	if len(errIdxs) == 0 {
		return
	}
	if lhs != nil {
		// Discarded only when every error-typed result lands in a blank.
		for _, i := range errIdxs {
			if i >= len(lhs) || !isBlank(lhs[i]) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"error from %s is discarded; a swallowed durability error breaks the crash-safety contract — handle it, or annotate a best-effort call with //lint:allow errsink -- <reason>",
		name)
}

// errorResults returns the result indices of type error. A bare error
// return is index 0 of a 1-tuple.
func errorResults(t types.Type) []int {
	var idxs []int
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	if isErrorType(t) {
		return []int{0}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// durabilityCallee classifies the call's static callee, returning a
// printable name for diagnostics.
func durabilityCallee(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	if f := lint.CalleeFunc(pass.Info, call); f != nil && f.Pkg() != nil {
		switch f.Pkg().Path() {
		case "repro/internal/serve/fsio":
			switch f.Name() {
			case "Write", "Sync", "Close", "Rename", "Remove", "MkdirAll", "SyncDir", "WriteFileAtomic", "OpenFile", "CreateTemp":
				return "fsio." + qualify(f), true
			}
		case "repro/internal/serve/journal":
			switch f.Name() {
			case "Append", "Close":
				return "journal." + qualify(f), true
			}
		case "os":
			if f.Name() == "Rename" {
				return "os.Rename", true
			}
			if f.Name() == "Sync" && recvIs(f, "File") {
				return "os.File.Sync", true
			}
		case "repro/internal/serve":
			if f.Name() == "Save" && recvIs(f, "CheckpointStore") {
				return "CheckpointStore.Save", true
			}
		}
		return "", false
	}
	// Calls through Save/Load-shaped checkpoint function fields
	// (serve.CheckpointIO and friends): the callee is a func-typed
	// struct field, invisible to CalleeFunc.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || !lint.InConcurrencyScope(field.Pkg().Path()) {
		return "", false
	}
	switch field.Name() {
	case "Save", "Append", "Sync":
	default:
		return "", false
	}
	if _, isFunc := field.Type().Underlying().(*types.Signature); !isFunc {
		return "", false
	}
	owner := ""
	if n, ok := derefNamed(s.Recv()); ok {
		owner = n.Obj().Name() + "."
	}
	return owner + field.Name(), true
}

func qualify(f *types.Func) string {
	if r := recvTypeName(f); r != "" {
		return r + "." + f.Name()
	}
	return f.Name()
}

func recvIs(f *types.Func, typeName string) bool {
	return recvTypeName(f) == typeName
}

func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	}
	return ""
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
