package errsink_test

import (
	"testing"

	"repro/internal/lint/errsink"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/errsink", "repro/internal/serve", errsink.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "../testdata/scopecheck", "repro/internal/core", errsink.Analyzer)
}
