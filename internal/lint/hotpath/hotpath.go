// Package hotpath protects the allocation-free claims benchmarked in
// bench_obs_test.go: every function statically reachable from a per-bit
// root (lint.HotPathRoots — Network.Step, Controller.Drive/View/Latch,
// the stuffing/CRC/assembly state machines, the episode engines and the
// random disturber) must not allocate, call fmt, or convert through
// interfaces. The simulator's throughput is set by this loop; one stray
// allocation per bit slot turns into millions of allocations per second
// at production sweep rates.
//
// A function that is reachable but deliberately cold — a per-frame or
// error-path helper — is excluded by an allow directive in its doc
// comment: `//lint:allow hotpath -- <reason>`. fmt calls that only build
// panic messages are exempt (the goroutine is already dying).
package hotpath

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocations, fmt calls and interface conversions reachable from per-bit roots",
	Run:  run,
}

func run(pass *lint.Pass) error {
	g := lint.NewCallGraph(pass)
	roots := g.Roots(lint.HotPathRoots)
	if len(roots) == 0 {
		return nil
	}
	cold := func(fn *types.Func) bool {
		decl := g.Decls[fn]
		return decl != nil && lint.FuncAllowed(pass.Fset, decl, "hotpath")
	}
	for fn := range g.Reachable(roots, cold) {
		checkFunc(pass, fn, g.Decls[fn])
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *types.Func, decl *ast.FuncDecl) {
	name := fn.Name()
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n, isInPanic(decl.Body, n))
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "composite literal escapes to the heap in hot-path function %s", name)
			}
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map literal allocates in hot-path function %s", name)
			}
		case *ast.TypeAssertExpr:
			if n.Type != nil { // exclude the type-switch header form
				pass.Reportf(n.Pos(), "type assertion in hot-path function %s", name)
			}
		}
		return true
	})
}

func checkCall(pass *lint.Pass, fname string, call *ast.CallExpr, panicArg bool) {
	// Builtin allocators.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "new", "make", "append":
				pass.Reportf(call.Pos(), "%s allocates in hot-path function %s", obj.Name(), fname)
			}
			return
		}
	}
	// Conversions boxing a concrete value into an interface.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, toIface := tv.Type.Underlying().(*types.Interface); toIface && len(call.Args) == 1 {
			if atv, ok := pass.Info.Types[call.Args[0]]; ok {
				if _, fromIface := atv.Type.Underlying().(*types.Interface); !fromIface {
					pass.Reportf(call.Pos(), "interface conversion allocates in hot-path function %s", fname)
				}
			}
		}
		return
	}
	// fmt calls (outside panic arguments).
	fn := lint.CalleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !panicArg {
		pass.Reportf(call.Pos(), "fmt.%s call in hot-path function %s", fn.Name(), fname)
	}
}

// isInPanic reports whether the node sits inside the arguments of a
// panic() call within body.
func isInPanic(body *ast.BlockStmt, target ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				if containsNode(arg, target) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
