package hotpath_test

import (
	"testing"

	"repro/internal/lint/hotpath"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/hotpath", "repro/internal/bus", hotpath.Analyzer)
}
