package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/ctxflow", "repro/internal/serve", ctxflow.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "../testdata/scopecheck", "repro/internal/core", ctxflow.Analyzer)
}
