// Package ctxflow enforces context discipline in the concurrent service
// packages. Three rules:
//
//  1. A function that already receives a context.Context must not mint
//     context.Background() or context.TODO() — detaching from the caller
//     silently discards its deadline and cancellation, the exact bug
//     class the PR 4 review fixed by hand in the script-replay path.
//  2. A function that receives a context must not perform a bare
//     blocking channel operation (send, receive, or a select with no
//     default and no Done() case): the operation outlives the caller's
//     cancellation and turns drain deadlines into hangs.
//  3. An unbounded `for {}` loop must consult some completion signal —
//     ctx.Done()/ctx.Err(), a receive from a Done() channel, or a
//     select case that exits the loop — or it is a daemon nothing can
//     stop.
//
// Intentional detachment (root contexts in main-like entry points are
// fine — those functions have no ctx parameter and are not flagged) and
// deliberately unbounded joins are annotated with
// `//lint:allow ctxflow -- <reason>`.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the context-flow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "report detached contexts, blocking channel ops that ignore a ctx parameter, and unstoppable loops",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkFunc(pass, decl)
		}
	}
	return nil
}

// hasCtxParam reports whether the function declares a context.Context
// parameter, returning its name for diagnostics.
func hasCtxParam(pass *lint.Pass, decl *ast.FuncDecl) (string, bool) {
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name, true
		}
		return "_", true
	}
	return "", false
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkFunc(pass *lint.Pass, decl *ast.FuncDecl) {
	ctxName, hasCtx := hasCtxParam(pass, decl)
	name := decl.Name.Name

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !hasCtx {
				return true
			}
			callee := lint.CalleeFunc(pass.Info, n)
			if lint.IsPkgFunc(callee, "context", "Background", "TODO") {
				pass.Reportf(n.Pos(),
					"context.%s() inside %s, which already receives %s; thread the caller's context (or annotate an intentional detachment with //lint:allow ctxflow -- <reason>)",
					callee.Name(), name, ctxName)
			}
		case *ast.SendStmt:
			if hasCtx && !insideSelect(decl.Body, n.Pos()) {
				pass.Reportf(n.Pos(),
					"blocking channel send in %s ignores its %s parameter; select on %s.Done() alongside it, or annotate with //lint:allow ctxflow -- <reason>",
					name, ctxName, ctxName)
			}
		case *ast.UnaryExpr:
			// Receiving from a Done()-style channel IS consuming the
			// completion signal; only receives from other channels detach
			// from cancellation.
			if hasCtx && n.Op == token.ARROW && !isDoneChan(n.X) && !insideSelect(decl.Body, n.Pos()) {
				pass.Reportf(n.Pos(),
					"blocking channel receive in %s ignores its %s parameter; select on %s.Done() alongside it, or annotate with //lint:allow ctxflow -- <reason>",
					name, ctxName, ctxName)
			}
		case *ast.SelectStmt:
			if hasCtx && !selectHasEscape(pass, n) {
				pass.Reportf(n.Pos(),
					"select in %s has neither a default case nor a Done() case; it blocks past %s's cancellation, add a case <-%s.Done() or annotate with //lint:allow ctxflow -- <reason>",
					name, ctxName, ctxName)
			}
		case *ast.ForStmt:
			if n.Cond == nil && n.Init == nil && n.Post == nil && !loopConsultsSignal(pass, n) {
				pass.Reportf(n.Pos(),
					"unbounded for-loop in %s never consults a context or completion signal; nothing can stop it — thread a ctx/stop channel through, or annotate an intentional daemon with //lint:allow ctxflow -- <reason>",
					name)
			}
		}
		return true
	})
}

// insideSelect reports whether the position sits inside a select
// statement's communication clauses in the function body. Channel ops
// that are select comm cases are judged by the SelectStmt rule instead.
func insideSelect(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if cc.Comm.Pos() <= pos && pos <= cc.Comm.End() {
				inside = true
			}
		}
		return true
	})
	return inside
}

// selectHasEscape reports whether a select can always make progress or
// observe cancellation: it has a default case, or one of its cases
// receives from a Done()-style completion channel.
func selectHasEscape(pass *lint.Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		if commIsDoneReceive(cc.Comm) {
			return true
		}
	}
	return false
}

// commIsDoneReceive matches `<-x.Done()` (and `v := <-x.Done()`)
// communication clauses: receives from context-style completion
// channels, including job.Done() and timer channels built the same way.
func commIsDoneReceive(s ast.Stmt) bool {
	var expr ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	return isDoneChan(un.X)
}

// isDoneChan matches `x.Done()` operands of a receive.
func isDoneChan(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// loopConsultsSignal reports whether an unbounded loop can terminate or
// observe cancellation: it references ctx.Done()/ctx.Err(), receives
// from a Done() channel, returns, or breaks out of itself. Only loops
// with none of these are unstoppable daemons.
func loopConsultsSignal(pass *lint.Pass, loop *ast.ForStmt) bool {
	found := false
	// inNested tracks statements where an unlabeled break no longer
	// binds to this loop (nested for/range/switch/select).
	var scan func(n ast.Node, inNested bool)
	scan = func(n ast.Node, inNested bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's returns do not exit this loop; its body may be
			// a goroutine that never runs inline.
			return
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			if !inNested && (n.Tok == token.BREAK || n.Tok == token.GOTO) && n.Label == nil {
				found = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && commIsDoneReceive(cc.Comm) {
						found = true
						return
					}
				}
			}
			inNested = true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Err":
					if tv, ok := pass.Info.Types[sel.X]; ok && isContextType(tv.Type) {
						found = true
						return
					}
				}
			}
		}
		nested := inNested
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			scan(c, nested)
			return false
		})
	}
	for _, s := range loop.Body.List {
		scan(s, false)
	}
	return found
}
