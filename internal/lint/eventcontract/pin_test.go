package eventcontract

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestKnownKindsPinsObsConstants parses the obs package source and
// checks the knownKinds table holds exactly the obs.Kind constants it
// declares: a kind added to obs without a table entry (or a stale entry
// for a removed kind) fails here, and an unregistered kind used by a
// producer fails the analyzer itself.
func TestKnownKindsPinsObsConstants(t *testing.T) {
	fset := token.NewFileSet()
	pkgDir := filepath.Join("..", "..", "obs")
	pkgs, err := parser.ParseDir(fset, pkgDir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, pkg := range pkgs {
		if pkg.Name != "obs" {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				// A Kind block starts with an explicitly-typed `Kind`
				// const and continues through implicit iota specs.
				inKindBlock := false
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Type != nil {
						id, ok := vs.Type.(*ast.Ident)
						inKindBlock = ok && id.Name == "Kind"
					}
					if !inKindBlock {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Kind") {
							declared[name.Name] = true
						}
					}
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatalf("no Kind constants found in %s; pin test is parsing the wrong tree", pkgDir)
	}
	for name := range declared {
		if !knownKinds[name] {
			t.Errorf("obs declares %s but the eventcontract knownKinds table does not list it; register it (and teach the trace/export layers about it)", name)
		}
	}
	for name := range knownKinds {
		if !declared[name] {
			t.Errorf("knownKinds lists %s but obs no longer declares it; drop the stale entry", name)
		}
	}
}
