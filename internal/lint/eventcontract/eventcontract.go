// Package eventcontract checks the telemetry emission contract between
// event producers (bus, node, the harnesses) and the obs sinks:
//
//   - every obs.Event composite literal names its fields and sets Kind,
//     Slot and Station — the triple every sink (JSONL lines, metrics
//     counters, the trace correlator) keys on;
//   - a constant Cause code must have an entry in the obs cause-name
//     table, so JSONL lines never carry an unnamed cause;
//   - every Emit call on an obs.Sink-typed value is guarded by a nil
//     check of that value, preserving the "uninstrumented runs pay one
//     nil check" claim and keeping optional telemetry crash-free.
//
// The obs package itself (the sink plumbing: Multi, Ring.Drain, the
// JSONL writer) is exempt from the nil-guard rule; its combinators
// filter nils structurally.
package eventcontract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the telemetry emission contract check.
var Analyzer = &lint.Analyzer{
	Name: "eventcontract",
	Doc:  "require complete obs.Event literals, valid cause codes and nil-guarded Emit calls",
	Run:  run,
}

const obsPathSuffix = "internal/obs"

// maxCauseCode is the largest code in the obs cause-name table
// (bit=1 … overload=6; 0 means "no cause"). Pinned against the table by
// the analyzer's tests.
const maxCauseCode = 6

// knownKinds pins the full set of obs.Kind constants event producers may
// emit. Adding a kind to obs without listing it here fails the lint —
// the forcing function that keeps the trace synthesiser, the JSONL name
// table and the docs in step with new event kinds. The analyzer's tests
// pin this table against the constants the obs package actually
// declares, so the two cannot drift apart silently.
var knownKinds = map[string]bool{
	"KindFrameStart":         true,
	"KindArbitrationLoss":    true,
	"KindStuffError":         true,
	"KindErrorFlagPrimary":   true,
	"KindErrorFlagSecondary": true,
	"KindEOFVoteCorrected":   true,
	"KindRetransmit":         true,
	"KindFrameAccepted":      true,
	"KindIMO":                true,
	"KindBusOff":             true,
	"KindRecover":            true,
	"KindAttemptRetry":       true,
	"KindStorageDegraded":    true,
	"KindJournalRecovered":   true,
	"KindCheckpointSaved":    true,
	"KindCheckpointResumed":  true,
	"KindEOFVote":            true,
	"KindRingOverflow":       true,
}

func run(pass *lint.Pass) error {
	isObsItself := strings.HasSuffix(pass.Pkg.Path(), obsPathSuffix)
	for _, f := range pass.Files {
		var enclosing []*ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = append(enclosing, n)
			case *ast.CompositeLit:
				checkEventLit(pass, n)
			case *ast.CallExpr:
				if !isObsItself {
					checkEmitGuard(pass, currentFunc(enclosing, n), n)
				}
			}
			return true
		})
	}
	return nil
}

// currentFunc returns the innermost function declaration containing n.
func currentFunc(stack []*ast.FuncDecl, n ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].Pos() <= n.Pos() && n.End() <= stack[i].End() {
			return stack[i]
		}
	}
	return nil
}

// isObsType reports whether t (after pointer deref) is the named type
// obs.<name>.
func isObsType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && strings.HasSuffix(n.Obj().Pkg().Path(), obsPathSuffix)
}

func checkEventLit(pass *lint.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isObsType(tv.Type, "Event") {
		return
	}
	if len(lit.Elts) == 0 {
		// The zero Event is a legitimate buffer/placeholder value
		// (ring slots, var declarations), not an emission.
		return
	}
	set := make(map[string]ast.Expr, len(lit.Elts))
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(e.Pos(), "obs.Event literal must use keyed fields so sink-required fields are auditable")
			return
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			set[id.Name] = kv.Value
		}
	}
	var missing []string
	for _, req := range [...]string{"Kind", "Slot", "Station"} {
		if _, ok := set[req]; !ok {
			missing = append(missing, req)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(lit.Pos(),
			"obs.Event literal missing required field(s) %s; every sink keys on (Kind, Slot, Station)",
			strings.Join(missing, ", "))
	}
	if cause, ok := set["Cause"]; ok {
		checkCauseCode(pass, cause)
	}
	if kind, ok := set["Kind"]; ok {
		checkKindKnown(pass, kind)
	}
}

// checkKindKnown verifies that a Kind field referencing an obs.Kind
// constant names one in the pinned knownKinds table. Kinds passed
// through variables or parameters are the producer's runtime data and
// are not checked.
func checkKindKnown(pass *lint.Pass, expr ast.Expr) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return
	}
	obj := pass.Info.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok || !isObsType(c.Type(), "Kind") {
		return
	}
	if !knownKinds[c.Name()] {
		pass.Reportf(expr.Pos(),
			"obs.Kind constant %s is not in the eventcontract knownKinds table; new event kinds must be registered there (and handled by the trace/export layers) before use",
			c.Name())
	}
}

func checkCauseCode(pass *lint.Pass, expr ast.Expr) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return // non-constant causes are the producer's runtime data
	}
	if v, ok := constant.Uint64Val(tv.Value); ok && v > maxCauseCode {
		pass.Reportf(expr.Pos(),
			"Cause code %d has no entry in the obs cause-name table (codes 1..%d; 0 = none); JSONL lines would carry an unnamed cause",
			v, maxCauseCode)
	}
}

// checkEmitGuard verifies that a call X.Emit(...) on an obs.Sink-typed X
// happens under a nil check of X: either inside an `if X != nil` branch
// or after an `if X == nil { return }` early exit in the same function.
func checkEmitGuard(pass *lint.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return
	}
	recvTV, ok := pass.Info.Types[sel.X]
	if !ok || !isObsType(recvTV.Type, "Sink") {
		return // concrete sink types (Memory, JSONLWriter, ...) are non-nil by construction
	}
	if fn == nil || fn.Body == nil {
		return
	}
	recv := types.ExprString(sel.X)
	if guardedByIf(fn.Body, recv, call) || guardedByEarlyReturn(fn.Body, recv, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"Emit on obs.Sink %q is not guarded by a nil check; uninstrumented runs would panic (guard with `if %s != nil` or an early return)",
		recv, recv)
}

// guardedByIf reports whether the call sits in the body of an if whose
// condition contains `recv != nil`.
func guardedByIf(body *ast.BlockStmt, recv string, call *ast.CallExpr) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condChecksNotNil(ifStmt.Cond, recv) &&
			ifStmt.Body.Pos() <= call.Pos() && call.End() <= ifStmt.Body.End() {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// guardedByEarlyReturn reports whether a statement `if recv == nil {
// ... return }` precedes the call in the function body.
func guardedByEarlyReturn(body *ast.BlockStmt, recv string, call *ast.CallExpr) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if ifStmt.End() <= call.Pos() && condChecksIsNil(ifStmt.Cond, recv) && endsInReturn(ifStmt.Body) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

func endsInReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// condChecksNotNil reports whether the condition contains `recv != nil`
// as a conjunct (anywhere in the expression tree).
func condChecksNotNil(cond ast.Expr, recv string) bool {
	return condChecksNil(cond, recv, token.NEQ)
}

func condChecksIsNil(cond ast.Expr, recv string) bool {
	return condChecksNil(cond, recv, token.EQL)
}

func condChecksNil(cond ast.Expr, recv string, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != op {
			return true
		}
		if (exprIs(bin.X, recv) && exprIsNil(bin.Y)) || (exprIs(bin.Y, recv) && exprIsNil(bin.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func exprIs(e ast.Expr, printed string) bool {
	return types.ExprString(ast.Unparen(e)) == printed
}

func exprIsNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
