package eventcontract_test

import (
	"testing"

	"repro/internal/lint/eventcontract"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/eventcontract", "repro/internal/sim", eventcontract.Analyzer)
}
