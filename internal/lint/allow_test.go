package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubAnalyzer flags every call to a function literally named boom; the
// allow tests use it so the suppression semantics are exercised without
// depending on any real analyzer's matching rules.
var stubAnalyzer = &Analyzer{
	Name: "stub",
	Doc:  "flags every call to boom (allow-directive test double)",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						p.Reportf(call.Pos(), "boom call")
					}
				}
				return true
			})
		}
		return nil
	},
}

// allowSrc exercises every suppression edge case. Lines whose findings
// must survive carry a trailing `WANT <analyzer>` marker; the test
// derives its expectations from those markers, so the two cannot drift.
const allowSrc = `package allowdata

//lint:allow stub -- a directive at the top of the file reaches only its own neighborhood, not the whole file

func boom() {}

func sameLine() {
	boom() //lint:allow stub -- suppressed by a directive on the offending line
}

func lineAbove() {
	//lint:allow stub -- suppressed by a directive on the line directly above
	boom()
}

func multilineReason() {
	//lint:allow stub -- the reason starts here and is long enough that it
	// continues onto this comment line; the directive still anchors to the
	// code directly below the comment group
	boom()
}

func wrongName() {
	//lint:allow lockorder -- names a different analyzer, so stub is not covered
	boom() // WANT stub
}

func missingReason() {
	//lint:allow stub
	boom() // WANT stub
}

func multiName() {
	//lint:allow lockorder,stub -- one directive can cover several analyzers
	boom()
}

func blockComment() {
	/*lint:allow stub -- block comments are never directives*/
	boom() // WANT stub
}

//lint:allow stub -- a doc-comment directive is FuncAllowed metadata; it does not blanket the body
func docComment() {
	x := 1
	_ = x
	boom() // WANT stub
}

func twoLinesAway() {
	//lint:allow stub -- two lines above the finding is out of reach

	boom() // WANT stub
}
`

func loadAllowPkg(t *testing.T) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "allowdata.go"), []byte(allowSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, dir, "allowdata")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestAllowDirectiveEdgeCases runs the stub analyzer over allowSrc and
// checks that exactly the WANT-marked lines survive suppression, plus
// one "allow" diagnostic for the reason-less directive.
func TestAllowDirectiveEdgeCases(t *testing.T) {
	pkg := loadAllowPkg(t)
	diags, err := Run([]*Package{pkg}, []*Analyzer{stubAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	want := map[int]string{} // line -> analyzer
	var missingReasonLine int
	for i, line := range strings.Split(allowSrc, "\n") {
		if _, marker, ok := strings.Cut(line, "// WANT "); ok {
			want[i+1] = strings.TrimSpace(marker)
		}
		if strings.TrimSpace(line) == "//lint:allow stub" {
			missingReasonLine = i + 1
		}
	}
	if missingReasonLine == 0 {
		t.Fatal("allowSrc lost its reason-less directive")
	}
	// The reason-less directive is itself a finding: it documents nothing
	// and suppresses nothing.
	want[missingReasonLine] = "allow"

	got := map[int]string{}
	for _, d := range diags {
		if prev, dup := got[d.Pos.Line]; dup {
			t.Errorf("line %d: two findings (%s, %s), want one", d.Pos.Line, prev, d.Analyzer)
		}
		got[d.Pos.Line] = d.Analyzer
	}
	for line, analyzer := range want {
		if got[line] != analyzer {
			t.Errorf("line %d: analyzer = %q, want %q", line, got[line], analyzer)
		}
	}
	for line, analyzer := range got {
		if _, ok := want[line]; !ok {
			t.Errorf("line %d: unexpected %s finding (suppression failed?)", line, analyzer)
		}
	}
}

// TestFuncAllowed pins the doc-comment contract: a reasoned directive in
// the doc comment marks the function, a reason-less or wrong-named one
// does not.
func TestFuncAllowed(t *testing.T) {
	pkg := loadAllowPkg(t)
	found := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			found[decl.Name.Name] = FuncAllowed(pkg.Fset, decl, "stub")
		}
	}
	if !found["docComment"] {
		t.Error("docComment: FuncAllowed = false, want true (reasoned doc-comment directive)")
	}
	for _, name := range []string{"sameLine", "lineAbove", "wrongName", "missingReason", "boom"} {
		if found[name] {
			t.Errorf("%s: FuncAllowed = true, want false", name)
		}
	}
}
