// Package goleak reports goroutines launched without a visible join or
// exit path. A goroutine the function cannot wait for and nothing can
// stop outlives drains and tests, holds its captures alive, and — in a
// daemon that re-execs under the crash harness — accumulates across
// restarts. The check is syntactic and local by design: the goroutine
// body (a function literal, or the body of a same-package function the
// go statement calls) must contain at least one of
//
//   - a sync.WaitGroup Done call (the launcher joins via Wait),
//   - a channel send or close (a consumer observes completion),
//   - a channel receive or a range over a channel (a stop/work channel
//     bounds its life),
//
// which together cover every legitimate launch shape in this tree.
// Intentional process-lifetime daemons are annotated at the go
// statement with `//lint:allow goleak -- <reason>`.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the goroutine-leak check.
var Analyzer = &lint.Analyzer{
	Name: "goleak",
	Doc:  "report goroutines launched without a WaitGroup, channel-join, or stop-channel exit path",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
					decls[fn] = decl
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, desc := goroutineBody(pass, decls, g)
			if body == nil {
				pass.Reportf(g.Pos(),
					"goroutine body %s is not statically visible (function value or cross-package call); if it is joined elsewhere annotate with //lint:allow goleak -- <reason>",
					desc)
				return true
			}
			if !hasExitPath(pass, body) {
				pass.Reportf(g.Pos(),
					"goroutine %s has no visible join or exit path (no WaitGroup Done, channel send/close, or stop-channel receive); join it, or annotate an intentional daemon with //lint:allow goleak -- <reason>",
					desc)
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the launched body: a function literal inline,
// or the declaration of a same-package function/method.
func goroutineBody(pass *lint.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, "(func literal)"
	}
	callee := lint.CalleeFunc(pass.Info, g.Call)
	if callee == nil {
		return nil, "(dynamic call)"
	}
	if decl, ok := decls[callee]; ok {
		return decl.Body, callee.Name()
	}
	return nil, callee.Name()
}

// hasExitPath scans a goroutine body for any of the accepted join/exit
// signals. Nested function literals count: a goroutine that defers a
// cleanup closure containing wg.Done still joins.
func hasExitPath(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := lint.CalleeFunc(pass.Info, n)
			if callee != nil && callee.Pkg() != nil {
				if callee.Pkg().Path() == "sync" && callee.Name() == "Done" {
					found = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return true
	})
	return found
}
