package goleak_test

import (
	"testing"

	"repro/internal/lint/goleak"
	"repro/internal/lint/linttest"
)

func TestGolden(t *testing.T) {
	linttest.Run(t, "../testdata/goleak", "repro/internal/obs", goleak.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "../testdata/scopecheck", "repro/internal/core", goleak.Analyzer)
}
