package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

const allowPrefix = "//lint:allow "

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzers []string // analyzer names the directive suppresses
	reason    string   // text after " -- "; empty means malformed
	line      int      // 1-based line the comment starts on
}

func (d allowDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseAllow parses one comment, returning ok=false for non-directives.
// A directive with a missing or empty reason is returned with reason ""
// so the driver can report it.
func parseAllow(fset *token.FileSet, c *ast.Comment) (allowDirective, bool) {
	text, found := strings.CutPrefix(c.Text, allowPrefix)
	if !found {
		return allowDirective{}, false
	}
	d := allowDirective{line: fset.Position(c.Pos()).Line}
	names, reason, hasReason := strings.Cut(text, " -- ")
	if hasReason {
		d.reason = strings.TrimSpace(reason)
	}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.analyzers = append(d.analyzers, n)
		}
	}
	return d, true
}

// fileAllows collects every allow directive of a file, keyed by line. A
// directive inside a multi-line comment group is registered under its
// own line and under the group's last line, so a reason that continues
// onto following comment lines still anchors the directive to the code
// directly below the group.
func fileAllows(fset *token.FileSet, f *ast.File) map[int][]allowDirective {
	var out map[int][]allowDirective
	for _, cg := range f.Comments {
		endLine := fset.Position(cg.End()).Line
		for _, c := range cg.List {
			d, ok := parseAllow(fset, c)
			if !ok {
				continue
			}
			if out == nil {
				out = make(map[int][]allowDirective)
			}
			out[d.line] = append(out[d.line], d)
			if endLine != d.line {
				out[endLine] = append(out[endLine], d)
			}
		}
	}
	return out
}

// FuncAllowed reports whether a function declaration carries an allow
// directive for the given analyzer in its doc comment or on the line of
// the func keyword. The hotpath analyzer uses this to mark a function as
// cold: it is neither checked nor traversed.
func FuncAllowed(fset *token.FileSet, decl *ast.FuncDecl, analyzer string) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if d, ok := parseAllow(fset, c); ok && d.covers(analyzer) && d.reason != "" {
				return true
			}
		}
	}
	return false
}
