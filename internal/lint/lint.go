// Package lint is a self-contained static-analysis framework modelled on
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository carries no external dependency. It machine-checks the
// conventions the simulator's reproducibility guarantees rest on: the
// chaos engine's digest-verified replays and the byte-identical JSONL
// event streams only hold if simulator code never reads the wall clock,
// never draws from the global math/rand stream, never iterates maps in
// an order-sensitive way, and never allocates on the per-bit hot path.
//
// Four analyzers enforce those contracts (see the determinism, hotpath,
// eventcontract and atomicmix subpackages); cmd/majorcanlint is the
// multichecker driver wired into `make lint` and CI.
//
// Intentional exceptions are annotated in the source:
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: an allow directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// ScopePaths lists the import-path prefixes the determinism contract
// covers: every package whose path equals an entry or sits below it.
// The simulator core must be bit-reproducible; the CLIs and the public
// API are included so stray wall-clock or global-RNG calls there are
// annotated rather than silent.
var ScopePaths = []string{
	"repro/internal/bus",
	"repro/internal/node",
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/chaos",
	"repro/internal/frame",
	"repro/internal/bitstream",
	"repro/internal/errmodel",
	"repro/internal/trace",
	"repro/internal/obs",
	"repro/internal/serve",
	// The durability layer is listed explicitly even though the serve
	// prefix already covers it: journal replay and fault-injected I/O
	// must stay deterministic for crash recovery to reproduce results
	// bit-for-bit, so these packages must never fall out of scope if the
	// serve entry is ever narrowed.
	"repro/internal/serve/fsio",
	"repro/internal/serve/journal",
	// Span synthesis replays recorded event streams; like the durability
	// packages it is pinned explicitly (the obs prefix covers it today) so
	// trace reconstruction can never silently fall out of scope.
	"repro/internal/obs/span",
	// The fleet coordinator replans jobs deterministically on recovery
	// and merges shard results byte-identically; stray wall-clock or RNG
	// use there would silently break the single-node equivalence.
	"repro/internal/fleet",
	// The fast bit-slot engine must produce traces bit-identical to the
	// reference loop (DESIGN.md §15); it is pinned explicitly even though
	// the bus prefix covers it today, so the differential oracle's
	// preconditions cannot silently fall out of scope if the bus entry is
	// ever narrowed.
	"repro/internal/bus/fastpath",
	"repro/cmd",
	"repro/majorcan",
}

// InScope reports whether the import path falls under ScopePaths.
func InScope(path string) bool {
	for _, p := range ScopePaths {
		if path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/') {
			return true
		}
	}
	return false
}

// HotPathRoots names the per-bit-slot entry points, as
// "pkgpath.Func" or "pkgpath.Receiver.Method". Everything statically
// reachable from these inside their own package is the hot path: it runs
// once (or more) per simulated bit and must stay allocation-free.
var HotPathRoots = []string{
	"repro/internal/bus.Network.Step",
	"repro/internal/node.Controller.Drive",
	"repro/internal/node.Controller.View",
	"repro/internal/node.Controller.Latch",
	"repro/internal/bitstream.Wire",
	"repro/internal/bitstream.Stuffer.Push",
	"repro/internal/bitstream.Destuffer.Push",
	"repro/internal/bitstream.CRC15.Push",
	"repro/internal/frame.Assembler.Push",
	"repro/internal/errmodel.Random.Disturb",
	"repro/internal/errmodel.GlobalRandom.Disturb",
	"repro/internal/core.stdEpisode.Drive",
	"repro/internal/core.stdEpisode.Latch",
	"repro/internal/core.stdEpisode.Phase",
	"repro/internal/core.minorEpisode.Drive",
	"repro/internal/core.minorEpisode.Latch",
	"repro/internal/core.minorEpisode.Phase",
	"repro/internal/core.majorEpisode.Drive",
	"repro/internal/core.majorEpisode.Latch",
	"repro/internal/core.majorEpisode.Phase",
	// The fast bit-slot engine: Advance is the per-slot entry the bus
	// delegates to, and the node/bus seams below are what it calls per
	// slot or per fast-forward window. They are roots of their own
	// because the analyzer propagates reachability only within a package:
	// without them the engine's side of the per-bit contract would go
	// unchecked.
	"repro/internal/bus/fastpath.Engine.Advance",
	"repro/internal/bus.Network.CommitSlot",
	"repro/internal/bus.Network.SkipSlots",
	"repro/internal/node.Controller.Transmitting",
	"repro/internal/node.Controller.StartingFrame",
	"repro/internal/node.Controller.EOFRel",
	"repro/internal/node.Controller.TxWindow",
	"repro/internal/node.Controller.MirrorsPipeline",
	"repro/internal/node.Controller.AdoptPipeline",
	"repro/internal/node.Controller.LatchTxWindow",
	"repro/internal/errmodel.Random.Sample",
	"repro/internal/errmodel.GlobalRandom.SampleSlot",
}

// FuncQualifiedName renders a function as "pkgpath.Func" or
// "pkgpath.Receiver.Method" (pointer receivers are spelled without the
// star), the form HotPathRoots uses.
func FuncQualifiedName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return f.Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Pkg().Path() + "." + f.Name()
}

// CalleeFunc resolves the static callee of a call expression, or nil for
// calls through function values, builtins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// IsPkgFunc reports whether f is a package-level function (or method)
// of the package with the given import path and one of the given names.
func IsPkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}
