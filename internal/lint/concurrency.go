package lint

import (
	"go/ast"
	"go/types"
)

// ConcurrencyScopePaths lists the packages the concurrency-safety
// analyzers (lockorder, ctxflow, goleak, errsink) cover: the service
// layer that multiplexes jobs over shared state, the durability
// subpackages whose fsync discipline must never run under a hot lock,
// the telemetry layer whose sinks are shared across goroutines, and the
// chaos engine that drives long-running campaigns. The per-bit
// simulator core is excluded — it is single-goroutine by construction
// (the determinism analyzer enforces that) and has nothing to say about
// locks or contexts.
var ConcurrencyScopePaths = []string{
	"repro/internal/serve",
	"repro/internal/serve/fsio",
	"repro/internal/serve/journal",
	"repro/internal/obs",
	"repro/internal/obs/span",
	"repro/internal/chaos",
	// The fleet coordinator dispatches shards concurrently over shared
	// job and registry state and must obey the same lock and context
	// discipline as the worker scheduler it fronts.
	"repro/internal/fleet",
}

// InConcurrencyScope reports whether the import path falls under
// ConcurrencyScopePaths.
func InConcurrencyScope(path string) bool {
	for _, p := range ConcurrencyScopePaths {
		if path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/') {
			return true
		}
	}
	return false
}

// MutexMethod classifies a statically resolved callee as a sync lock
// operation. It returns the method name ("Lock", "RLock", "TryLock",
// "Unlock", "RUnlock") for methods of sync.Mutex and sync.RWMutex, and
// ok=false for everything else.
func MutexMethod(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "TryLock", "Unlock", "RUnlock", "TryRLock":
		return f.Name(), true
	}
	return "", false
}

// LockObject resolves the receiver of a mutex method call (s.mu.Lock())
// to a stable identity: the struct field or package-level variable
// holding the mutex. The second result is a printable name like
// "Scheduler.mu" or "pkgVarMu"; ok=false when the receiver is not a
// trackable location (e.g. a local variable or a function result).
func LockObject(pass *Pass, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[recv]; ok && s.Kind() == types.FieldVal {
			obj := s.Obj()
			name := obj.Name()
			// Prefix with the owning named type when the receiver chain
			// makes it resolvable, for readable diagnostics.
			if named := namedOf(s.Recv()); named != nil {
				name = named.Obj().Name() + "." + name
			}
			return obj, name, true
		}
		if obj, ok := pass.Info.Uses[recv.Sel].(*types.Var); ok {
			return obj, obj.Name(), true
		}
	case *ast.Ident:
		obj, ok := pass.Info.Uses[recv].(*types.Var)
		if !ok {
			return nil, "", false
		}
		if obj.IsField() {
			// Bare field access inside a method body (embedded struct).
			return obj, obj.Name(), true
		}
		if obj.Pkg() != nil && obj.Pkg().Scope().Lookup(obj.Name()) == obj {
			return obj, obj.Name(), true
		}
		// Local mutex variables are still meaningful for held-region
		// analysis even though they cannot participate in cross-function
		// cycles; track them by object identity.
		return obj, obj.Name(), true
	}
	return nil, "", false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// BlockingCall classifies a statically resolved callee as an operation
// that can block for an unbounded or I/O-bound time: fsync and
// fsync-adjacent durability calls, sleeps, and WaitGroup/Cond waits.
// The description names the operation for diagnostics.
func BlockingCall(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if f.Name() == "Wait" {
			return "sync." + recvName(f) + ".Wait", true
		}
	case "os":
		if f.Name() == "Sync" && recvName(f) == "File" {
			return "os.File.Sync (fsync)", true
		}
	case "repro/internal/serve/fsio":
		switch f.Name() {
		case "Sync":
			return "fsio.File.Sync (fsync)", true
		case "SyncDir":
			return "fsio.FS.SyncDir (directory fsync)", true
		case "WriteFileAtomic":
			return "fsio.WriteFileAtomic (write+fsync+rename)", true
		}
	case "repro/internal/serve/journal":
		if f.Name() == "Append" {
			return "journal.Append (write+fsync)", true
		}
	}
	return "", false
}

func recvName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}
