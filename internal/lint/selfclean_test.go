package lint_test

import (
	"os/exec"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/atomicmix"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/errsink"
	"repro/internal/lint/eventcontract"
	"repro/internal/lint/goleak"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/lockorder"
)

// TestRepoIsClean pins the whole tree at zero findings: every
// intentional exception carries a reasoned //lint:allow, so any new
// diagnostic is a regression in either the code or the annotations.
func TestRepoIsClean(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := lint.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		errsink.Analyzer,
		eventcontract.Analyzer,
		goleak.Analyzer,
		hotpath.Analyzer,
		lockorder.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestMultichecker runs the installed driver end to end, pinning its
// exit status and the flag plumbing on a clean tree.
func TestMultichecker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	cmd := exec.Command("go", "run", "./cmd/majorcanlint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("majorcanlint ./... should be clean, got: %v\n%s", err, out)
	}
}
