package trace

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// CorrelatedEvent links one protocol event to the recorded bus state of
// its slot. Found is false when the recorder has no record for the
// event's slot (e.g. a harness-level event stamped outside the recorded
// window); Record is then the zero value.
type CorrelatedEvent struct {
	Event  obs.Event
	Record Record
	Found  bool
}

// Correlate links a batch of protocol events to the recorder's per-bit
// history, in canonical (slot, station) order. Each lookup is a binary
// search over the history, so correlating a full run is O(E log S).
func (r *Recorder) Correlate(events []obs.Event) []CorrelatedEvent {
	sorted := append([]obs.Event(nil), events...)
	obs.SortEvents(sorted)
	out := make([]CorrelatedEvent, len(sorted))
	for i, e := range sorted {
		rec, ok := r.At(e.Slot)
		out[i] = CorrelatedEvent{Event: e, Record: rec, Found: ok}
	}
	return out
}

// String renders the event alongside the bus level and the emitting
// station's protocol phase at that slot, e.g.
//
//	[192] n2 error-flag-secondary cause=form  bus=d phase=sampling
func (c CorrelatedEvent) String() string {
	s := c.Event.String()
	if !c.Found {
		return s + "  (slot not recorded)"
	}
	s += fmt.Sprintf("  bus=%s", c.Record.Bus)
	if i := int(c.Event.Station); i >= 0 && i < len(c.Record.Views) {
		v := c.Record.Views[i]
		s += fmt.Sprintf(" phase=%s", v.Phase)
		if v.EOFRel > 0 {
			s += fmt.Sprintf(" eofRel=%d", v.EOFRel)
		}
	}
	return s
}

// FormatCorrelated renders one correlated event per line — the "readable
// event sequence" view of a replayed counterexample.
func FormatCorrelated(events []CorrelatedEvent) string {
	var b strings.Builder
	for _, c := range events {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
