package trace

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/obs"
)

// atLinear is the reference implementation At replaced: a full scan.
func atLinear(r *Recorder, slot uint64) (Record, bool) {
	for _, rec := range r.records {
		if rec.Slot == slot {
			return rec, true
		}
	}
	return Record{}, false
}

// TestAtGappyHistory is the regression test for the binary-search At: a
// recorder attached mid-run (or probing selectively) holds a history with
// slot gaps and an offset start, and At must agree with a linear scan on
// every slot in and around the recorded range.
func TestAtGappyHistory(t *testing.T) {
	r := NewRecorder("a", "b")
	rng := rand.New(rand.NewSource(11))
	slot := uint64(1000) // offset start: records don't begin at slot 0
	var recorded []uint64
	for i := 0; i < 300; i++ {
		r.OnBit(slot, bitstream.Recessive,
			[]bitstream.Level{bitstream.Recessive, bitstream.Recessive},
			[]bitstream.Level{bitstream.Recessive, bitstream.Recessive},
			[]bus.ViewContext{{}, {}})
		recorded = append(recorded, slot)
		slot += 1 + uint64(rng.Intn(5)) // gaps of 0..4 missing slots
	}
	for probe := uint64(990); probe < slot+10; probe++ {
		want, wantOK := atLinear(r, probe)
		got, gotOK := r.At(probe)
		if gotOK != wantOK {
			t.Fatalf("At(%d) ok=%v, linear scan ok=%v", probe, gotOK, wantOK)
		}
		if gotOK && got.Slot != want.Slot {
			t.Fatalf("At(%d) returned slot %d, want %d", probe, got.Slot, want.Slot)
		}
	}
	// Spot-check every recorded slot is found.
	for _, s := range recorded {
		if _, ok := r.At(s); !ok {
			t.Fatalf("At(%d) missed a recorded slot", s)
		}
	}
	if _, ok := r.At(0); ok {
		t.Error("At(0) found a record before the history start")
	}
}

func TestCorrelate(t *testing.T) {
	r := NewRecorder("a", "b")
	for s := uint64(10); s < 20; s++ {
		level := bitstream.Recessive
		if s == 12 {
			level = bitstream.Dominant
		}
		r.OnBit(s, level,
			[]bitstream.Level{level, bitstream.Recessive},
			[]bitstream.Level{level, level},
			[]bus.ViewContext{{Phase: bus.PhaseFrame}, {Phase: bus.PhaseEOF, EOFRel: 3}})
	}
	events := []obs.Event{
		{Slot: 15, Kind: obs.KindErrorFlagPrimary, Station: 1, Cause: 4},
		{Slot: 12, Kind: obs.KindFrameStart, Station: 0, Flags: obs.FlagTransmitter},
		{Slot: 99, Kind: obs.KindIMO, Station: -1},
	}
	out := r.Correlate(events)
	if len(out) != 3 {
		t.Fatalf("got %d correlated events", len(out))
	}
	// Canonical order: slot 12 first.
	if out[0].Event.Slot != 12 || !out[0].Found {
		t.Fatalf("first correlated event = %+v", out[0])
	}
	if out[0].Record.Bus != bitstream.Dominant {
		t.Errorf("slot 12 record bus = %v, want dominant", out[0].Record.Bus)
	}
	if out[1].Event.Slot != 15 || !out[1].Found {
		t.Fatalf("second correlated event = %+v", out[1])
	}
	if got := out[1].String(); got == "" || !strings.Contains(got, "phase=eof") || !strings.Contains(got, "eofRel=3") {
		t.Errorf("correlated string missing phase context: %q", got)
	}
	if out[2].Found {
		t.Error("event outside the history must report Found=false")
	}
	if got := out[2].String(); !strings.Contains(got, "not recorded") {
		t.Errorf("unrecorded event string = %q", got)
	}
	if f := FormatCorrelated(out); len(f) == 0 {
		t.Error("FormatCorrelated returned empty output")
	}
}
