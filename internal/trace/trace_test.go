package trace

import (
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
)

func record(r *Recorder, slot uint64, busLevel bitstream.Level, drives, samples string, phases ...bus.Phase) {
	d, _ := bitstream.ParseSequence(drives)
	s, _ := bitstream.ParseSequence(samples)
	views := make([]bus.ViewContext, len(d))
	for i := range views {
		if i < len(phases) {
			views[i].Phase = phases[i]
		} else {
			views[i].Phase = bus.PhaseFrame
		}
	}
	r.OnBit(slot, busLevel, d, s, views)
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("T", "X")
	record(r, 0, bitstream.Dominant, "dr", "dr")
	record(r, 1, bitstream.Recessive, "rr", "rr")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if rec, ok := r.At(1); !ok || rec.Bus != bitstream.Recessive {
		t.Error("At(1) must return the recessive slot")
	}
	if _, ok := r.At(5); ok {
		t.Error("At(5) must report missing")
	}
}

func TestRenderSymbols(t *testing.T) {
	r := NewRecorder("T", "X", "I")
	// T drives dominant, X passive sampling dominant, I idle.
	d, _ := bitstream.ParseSequence("drr")
	s, _ := bitstream.ParseSequence("ddr") // station 2's sample differs from bus (disturbed)
	views := []bus.ViewContext{
		{Phase: bus.PhaseErrorFlag},
		{Phase: bus.PhaseEOF},
		{Phase: bus.PhaseIdle},
	}
	r.OnBit(0, bitstream.Dominant, d, s, views)
	out := r.Render(0, 1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + bus + 3 stations
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "d") {
		t.Errorf("bus row %q must show the dominant level", lines[1])
	}
	if !strings.Contains(lines[2], "D") {
		t.Errorf("station T row %q must show an uppercase driving symbol", lines[2])
	}
	if !strings.HasSuffix(lines[3], "d") {
		t.Errorf("station X row %q must show a lowercase sampled dominant", lines[3])
	}
	if !strings.HasSuffix(lines[4], ".") {
		t.Errorf("idle station row %q must show '.'", lines[4])
	}
}

func TestRenderMarksDisturbedSamples(t *testing.T) {
	r := NewRecorder("a")
	d, _ := bitstream.ParseSequence("r")
	s, _ := bitstream.ParseSequence("d") // bus recessive, sample dominant
	r.OnBit(0, bitstream.Recessive, d, s, []bus.ViewContext{{Phase: bus.PhaseEOF}})
	out := r.Render(0, 1)
	if !strings.Contains(out, "!") {
		t.Errorf("disturbed sample must render as '!':\n%s", out)
	}
}

func TestRenderEmptyRange(t *testing.T) {
	r := NewRecorder()
	if out := r.Render(0, 10); !strings.Contains(out, "no records") {
		t.Errorf("empty range must say so, got %q", out)
	}
}

func TestPhaseSpans(t *testing.T) {
	r := NewRecorder("a")
	for slot := uint64(0); slot < 5; slot++ {
		p := bus.PhaseFrame
		if slot >= 3 {
			p = bus.PhaseEOF
		}
		d, _ := bitstream.ParseSequence("r")
		r.OnBit(slot, bitstream.Recessive, d, d, []bus.ViewContext{{Phase: p}})
	}
	spans := r.Phases(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Phase != bus.PhaseFrame || spans[0].From != 0 || spans[0].To != 2 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Phase != bus.PhaseEOF || spans[1].From != 3 || spans[1].To != 4 {
		t.Errorf("span 1 = %+v", spans[1])
	}
	sum := r.PhaseSummary(0)
	if !strings.Contains(sum, "frame[0..2]") || !strings.Contains(sum, "eof[3..4]") {
		t.Errorf("summary = %q", sum)
	}
}

func TestFirstSlotAndEOFWindow(t *testing.T) {
	r := NewRecorder("a")
	d, _ := bitstream.ParseSequence("r")
	r.OnBit(0, bitstream.Recessive, d, d, []bus.ViewContext{{Phase: bus.PhaseFrame, Attempts: 1}})
	r.OnBit(1, bitstream.Recessive, d, d, []bus.ViewContext{{Phase: bus.PhaseEOF, EOFRel: 1, Attempts: 1}})
	r.OnBit(2, bitstream.Recessive, d, d, []bus.ViewContext{{Phase: bus.PhaseEOF, EOFRel: 2, Attempts: 1}})
	if slot, ok := r.FirstSlot(0, bus.PhaseEOF); !ok || slot != 1 {
		t.Errorf("FirstSlot = %d,%v want 1,true", slot, ok)
	}
	if _, ok := r.FirstSlot(0, bus.PhaseSuspend); ok {
		t.Error("missing phase must report false")
	}
	first, last, ok := r.EOFWindow(0, 1)
	if !ok || first != 1 || last != 2 {
		t.Errorf("EOFWindow = %d..%d,%v want 1..2,true", first, last, ok)
	}
	if _, _, ok := r.EOFWindow(0, 2); ok {
		t.Error("attempt 2 window must be absent")
	}
}
