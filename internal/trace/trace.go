// Package trace records per-bit simulation history and renders ASCII
// timelines in the style of the MajorCAN paper's figures.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/bus"
)

// Record is the state of one bit slot.
type Record struct {
	Slot    uint64
	Bus     bitstream.Level
	Drives  []bitstream.Level
	Samples []bitstream.Level
	Views   []bus.ViewContext
}

// Recorder is a bus.Probe that keeps the full per-bit history.
type Recorder struct {
	names   []string
	records []Record
}

var _ bus.Probe = (*Recorder)(nil)

// NewRecorder creates a recorder; names label the stations in rendered
// output (missing names fall back to "n<i>").
func NewRecorder(names ...string) *Recorder {
	return &Recorder{names: names}
}

// OnBit implements bus.Probe.
func (r *Recorder) OnBit(slot uint64, level bitstream.Level, drives, samples []bitstream.Level, views []bus.ViewContext) {
	rec := Record{
		Slot:    slot,
		Bus:     level,
		Drives:  append([]bitstream.Level(nil), drives...),
		Samples: append([]bitstream.Level(nil), samples...),
		Views:   append([]bus.ViewContext(nil), views...),
	}
	r.records = append(r.records, rec)
}

// Len returns the number of recorded slots.
func (r *Recorder) Len() int { return len(r.records) }

// Records returns the recorded history (not a copy; do not modify).
func (r *Recorder) Records() []Record { return r.records }

// At returns the record of the given slot, or false if not recorded.
// Records arrive from the bus in strictly increasing slot order, so the
// lookup is a binary search.
func (r *Recorder) At(slot uint64) (Record, bool) {
	i := sort.Search(len(r.records), func(i int) bool {
		return r.records[i].Slot >= slot
	})
	if i < len(r.records) && r.records[i].Slot == slot {
		return r.records[i], true
	}
	return Record{}, false
}

func (r *Recorder) name(i int) string {
	if i < len(r.names) && r.names[i] != "" {
		return r.names[i]
	}
	return fmt.Sprintf("n%d", i)
}

// symbol renders one station-slot cell:
//
//	'.'  station idle / off
//	'r'  station passive, sampled recessive
//	'd'  station passive, sampled dominant
//	'D'  station driving dominant (SOF, frame bits, flags)
//	'R'  station driving recessive inside a frame
//	'!'  the station's sample was disturbed (differs from the bus value)
func symbol(rec Record, i int) byte {
	v := rec.Views[i]
	if v.Phase == bus.PhaseIdle || v.Phase == bus.PhaseOff {
		return '.'
	}
	if rec.Samples[i] != rec.Bus {
		return '!'
	}
	if rec.Drives[i] == bitstream.Dominant {
		return 'D'
	}
	if v.Phase == bus.PhaseFrame {
		if rec.Samples[i] == bitstream.Dominant {
			return 'd'
		}
		return 'R'
	}
	if rec.Samples[i] == bitstream.Dominant {
		return 'd'
	}
	return 'r'
}

// Render draws one row per station for the slot range [from, to), plus a
// bus row, one character per bit slot.
func (r *Recorder) Render(from, to uint64) string {
	var b strings.Builder
	width := 0
	for i := range r.names {
		if len(r.name(i)) > width {
			width = len(r.name(i))
		}
	}
	if width < 3 {
		width = 3
	}
	sel := make([]Record, 0)
	for _, rec := range r.records {
		if rec.Slot >= from && rec.Slot < to {
			sel = append(sel, rec)
		}
	}
	if len(sel) == 0 {
		return "(no records in range)\n"
	}
	fmt.Fprintf(&b, "%*s  slots %d..%d\n", width, "", sel[0].Slot, sel[len(sel)-1].Slot)
	fmt.Fprintf(&b, "%*s: ", width, "bus")
	for _, rec := range sel {
		b.WriteString(rec.Bus.String())
	}
	b.WriteByte('\n')
	stations := len(sel[0].Views)
	for i := 0; i < stations; i++ {
		fmt.Fprintf(&b, "%*s: ", width, r.name(i))
		for _, rec := range sel {
			b.WriteByte(symbol(rec, i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PhaseSpan is a run of consecutive slots during which a station stayed in
// one protocol phase.
type PhaseSpan struct {
	Phase bus.Phase
	From  uint64
	To    uint64 // inclusive
}

// Phases compresses a station's history into phase spans.
func (r *Recorder) Phases(station int) []PhaseSpan {
	var spans []PhaseSpan
	for _, rec := range r.records {
		p := rec.Views[station].Phase
		if n := len(spans); n > 0 && spans[n-1].Phase == p && spans[n-1].To+1 == rec.Slot {
			spans[n-1].To = rec.Slot
			continue
		}
		spans = append(spans, PhaseSpan{Phase: p, From: rec.Slot, To: rec.Slot})
	}
	return spans
}

// PhaseSummary renders a station's phase spans on one line, e.g.
// "frame[0..96] eof[97..106] error-flag[107..112] ...".
func (r *Recorder) PhaseSummary(station int) string {
	spans := r.Phases(station)
	parts := make([]string, 0, len(spans))
	for _, s := range spans {
		parts = append(parts, fmt.Sprintf("%s[%d..%d]", s.Phase, s.From, s.To))
	}
	return strings.Join(parts, " ")
}

// FirstSlot returns the slot of the first record with the given phase at
// the station, or false.
func (r *Recorder) FirstSlot(station int, phase bus.Phase) (uint64, bool) {
	for _, rec := range r.records {
		if rec.Views[station].Phase == phase {
			return rec.Slot, true
		}
	}
	return 0, false
}

// EOFWindow returns the slot range [first, last] during which the station
// reported EOF-relative positions for the frame with the given attempt
// number, or ok=false if never.
func (r *Recorder) EOFWindow(station int, attempt int) (first, last uint64, ok bool) {
	for _, rec := range r.records {
		v := rec.Views[station]
		if v.EOFRel > 0 && (attempt == 0 || v.Attempts == attempt) {
			if !ok {
				first, ok = rec.Slot, true
			}
			last = rec.Slot
		}
	}
	return first, last, ok
}
