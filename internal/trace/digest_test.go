package trace_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/trace"
)

// runDigest broadcasts one frame over a 3-node bus and returns the digest,
// optionally with a scripted disturbance attached.
func runDigest(t *testing.T, disturb bus.Disturber) *trace.Digest {
	t.Helper()
	net := bus.NewNetwork()
	var nodes []*node.Controller
	for i := 0; i < 3; i++ {
		c := node.New("", core.NewStandard(), node.Options{})
		nodes = append(nodes, c)
		net.Attach(c)
	}
	d := trace.NewDigest()
	net.AddProbe(d)
	if disturb != nil {
		net.AddDisturber(disturb)
	}
	if err := nodes[0].Enqueue(&frame.Frame{ID: 0x123, Data: []byte{0xAB}}); err != nil {
		t.Fatal(err)
	}
	net.RunUntil(func() bool { return nodes[0].Idle() }, 2000)
	net.Run(4)
	return d
}

func TestDigestDeterministic(t *testing.T) {
	a := runDigest(t, nil)
	b := runDigest(t, nil)
	if a.Sum64() != b.Sum64() || a.Slots() != b.Slots() {
		t.Errorf("identical runs digest %s/%d vs %s/%d", a, a.Slots(), b, b.Slots())
	}
	if a.Slots() == 0 {
		t.Error("digest must have folded some slots")
	}
	if len(a.String()) != 16 {
		t.Errorf("String() = %q, want 16 hex digits", a.String())
	}
}

func TestDigestSeesViewDisturbance(t *testing.T) {
	clean := runDigest(t, nil)
	// Flip one station's view of one EOF bit: the bus level is unchanged
	// but the disturbed sample must still change the digest.
	dirty := runDigest(t, errmodel.NewScript(errmodel.AtEOFBit([]int{1}, 3, 1)))
	if clean.Sum64() == dirty.Sum64() {
		t.Error("digest must distinguish a run with a disturbed sample")
	}
}

func TestDigestEmpty(t *testing.T) {
	d := trace.NewDigest()
	if d.Slots() != 0 {
		t.Errorf("fresh digest slots = %d", d.Slots())
	}
}
