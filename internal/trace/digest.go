package trace

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/bus"
)

// Digest is a bus.Probe that folds the complete per-slot bus history —
// resolved level, every station's drive and every station's (possibly
// disturbed) sample — into one FNV-1a hash. Two runs with equal digests
// over the same number of slots are bit-for-bit identical at the wire,
// which is how chaos replay artifacts prove they re-executed a
// counterexample exactly.
type Digest struct {
	sum   uint64
	slots uint64
}

var _ bus.Probe = (*Digest)(nil)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewDigest creates an empty digest (FNV-1a offset basis).
func NewDigest() *Digest {
	return &Digest{sum: fnvOffset}
}

func (d *Digest) fold(b byte) {
	d.sum ^= uint64(b)
	d.sum *= fnvPrime
}

// OnBit implements bus.Probe.
func (d *Digest) OnBit(_ uint64, level bitstream.Level, drives, samples []bitstream.Level, _ []bus.ViewContext) {
	d.fold(byte(level))
	for _, l := range drives {
		d.fold(byte(l))
	}
	for _, l := range samples {
		d.fold(byte(l))
	}
	d.slots++
}

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 { return d.sum }

// Slots returns how many slots have been folded in.
func (d *Digest) Slots() uint64 { return d.slots }

// String renders the digest as 16 hex digits.
func (d *Digest) String() string { return fmt.Sprintf("%016x", d.sum) }
