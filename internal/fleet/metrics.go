package fleet

import (
	"io"
	"strconv"
	"time"

	"repro/internal/obs"
)

// JobCounters are the coordinator's logical-job admission and
// completion totals.
type JobCounters struct {
	Submitted        uint64 `json:"submitted"`
	Coalesced        uint64 `json:"coalesced"`
	Cached           uint64 `json:"cached"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Recovered        uint64 `json:"recovered"`
	RejectedBusy     uint64 `json:"rejected_busy"`
	RejectedDraining uint64 `json:"rejected_draining"`
}

// ShardCounters are the coordinator's shard dispatch totals.
type ShardCounters struct {
	Dispatched uint64 `json:"dispatched"`
	Reassigned uint64 `json:"reassigned"`
}

// Stats is the fleet-wide GET /v1/stats reply: the coordinator's own
// totals plus the last-observed state of every worker — the federated
// view a dashboard needs without scraping each worker separately.
type Stats struct {
	Draining      bool           `json:"draining"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Jobs          JobCounters    `json:"jobs"`
	Shards        ShardCounters  `json:"shards"`
	ActiveJobs    int            `json:"active_jobs"`
	QueueHeadroom int            `json:"queue_headroom"`
	WorkersUsable int            `json:"workers_usable"`
	Workers       []WorkerStatus `json:"workers"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	//lint:allow determinism -- serving-layer uptime clock; not simulation state
	uptime := time.Since(c.start)
	c.mu.Lock()
	active := c.active
	c.mu.Unlock()
	return Stats{
		Draining:      c.Draining(),
		UptimeSeconds: uptime.Seconds(),
		Jobs: JobCounters{
			Submitted:        c.submitted.Load(),
			Coalesced:        c.coalescedTotal.Load(),
			Cached:           c.cachedTotal.Load(),
			Completed:        c.completed.Load(),
			Failed:           c.failed.Load(),
			Recovered:        c.recoveredJobs.Load(),
			RejectedBusy:     c.rejectedBusy.Load(),
			RejectedDraining: c.rejectedDraining.Load(),
		},
		Shards: ShardCounters{
			Dispatched: c.shardsDispatched.Load(),
			Reassigned: c.reassigned.Load(),
		},
		ActiveJobs:    active,
		QueueHeadroom: c.registry.QueueHeadroom(),
		WorkersUsable: c.registry.Usable(),
		Workers:       c.registry.Snapshot(),
	}
}

// WriteMetrics renders the fleet stats in Prometheus text exposition
// format — the coordinator's GET /metrics surface. Coordinator-level
// families carry the mc_fleet_ prefix; per-worker state is federated
// into labelled series (one series per worker URL), so one scrape of
// the coordinator covers the whole fleet's queue occupancy and
// liveness. The output passes obs.LintProm, which CI enforces.
func WriteMetrics(w io.Writer, st Stats) error {
	p := obs.NewPromWriter(w)
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	gauge := func(name, help string, v float64) {
		p.Family(name, "gauge", help)
		p.Sample(name, nil, v)
	}
	counter := func(name, help string, v uint64) {
		p.Family(name, "counter", help)
		p.Sample(name, nil, float64(v))
	}

	gauge("mc_fleet_uptime_seconds", "Seconds since the coordinator started.", st.UptimeSeconds)
	gauge("mc_fleet_draining", "1 while the coordinator refuses new work for shutdown.", b(st.Draining))

	counter("mc_fleet_jobs_submitted_total", "Logical jobs admitted and planned.", st.Jobs.Submitted)
	counter("mc_fleet_jobs_coalesced_total", "Submissions merged into an identical in-flight logical job.", st.Jobs.Coalesced)
	counter("mc_fleet_jobs_cached_total", "Submissions answered from the merged-result cache.", st.Jobs.Cached)
	counter("mc_fleet_jobs_completed_total", "Logical jobs merged to completion.", st.Jobs.Completed)
	counter("mc_fleet_jobs_failed_total", "Logical jobs that failed (shard failure or merge error).", st.Jobs.Failed)
	counter("mc_fleet_jobs_recovered_total", "Logical jobs replayed from the fleet journal after a restart.", st.Jobs.Recovered)
	counter("mc_fleet_jobs_rejected_busy_total", "Submissions 429'd for exhausted worker-queue headroom or job limit.", st.Jobs.RejectedBusy)
	counter("mc_fleet_jobs_rejected_draining_total", "Submissions rejected during drain.", st.Jobs.RejectedDraining)

	counter("mc_fleet_shards_dispatched_total", "Shard dispatch attempts sent to workers.", st.Shards.Dispatched)
	counter("mc_fleet_shards_reassigned_total", "Shards re-dispatched after losing their worker.", st.Shards.Reassigned)

	gauge("mc_fleet_active_jobs", "Logical jobs currently dispatching.", float64(st.ActiveJobs))
	gauge("mc_fleet_queue_headroom", "Aggregate free queue slots across usable workers.", float64(st.QueueHeadroom))
	gauge("mc_fleet_workers_usable", "Workers currently accepting shards.", float64(st.WorkersUsable))
	gauge("mc_fleet_workers", "Configured workers.", float64(len(st.Workers)))

	label := func(w WorkerStatus) []obs.Label {
		return []obs.Label{{Name: "worker", Value: w.URL}}
	}
	p.Family("mc_fleet_worker_up", "gauge", "1 while the worker answers heartbeats (healthy or degraded).")
	for _, ws := range st.Workers {
		up := ws.State == WorkerHealthy || ws.State == WorkerDegraded
		p.Sample("mc_fleet_worker_up", label(ws), b(up))
	}
	p.Family("mc_fleet_worker_queue_depth", "gauge", "Worker-reported jobs waiting across its shard queues.")
	for _, ws := range st.Workers {
		p.Sample("mc_fleet_worker_queue_depth", label(ws), float64(ws.Depth))
	}
	p.Family("mc_fleet_worker_queue_capacity", "gauge", "Worker-reported aggregate shard-queue capacity.")
	for _, ws := range st.Workers {
		p.Sample("mc_fleet_worker_queue_capacity", label(ws), float64(ws.Capacity))
	}
	p.Family("mc_fleet_worker_executed_total", "counter", "Worker-reported jobs executed since its start.")
	for _, ws := range st.Workers {
		p.Sample("mc_fleet_worker_executed_total", label(ws), float64(ws.Executed))
	}
	p.Family("mc_fleet_worker_inflight", "gauge", "Shards this coordinator currently has running on the worker.")
	for _, ws := range st.Workers {
		p.Sample("mc_fleet_worker_inflight", label(ws), float64(ws.Inflight))
	}
	p.Family("mc_fleet_worker_state", "gauge", "Worker state as an enum: 0 dead, 1 draining, 2 degraded, 3 healthy.")
	for _, ws := range st.Workers {
		p.Sample("mc_fleet_worker_state", label(ws), float64(stateEnum(ws.State)))
	}

	if err := p.Err(); err != nil {
		return err
	}
	return p.Flush()
}

func stateEnum(s WorkerState) int {
	switch s {
	case WorkerDraining:
		return 1
	case WorkerDegraded:
		return 2
	case WorkerHealthy:
		return 3
	}
	return 0
}

// workerShort abbreviates a worker URL for span labels: the host:port
// suffix carries all the identity a timeline needs.
func workerShort(url string) string {
	for i := 0; i+2 < len(url); i++ {
		if url[i] == ':' && url[i+1] == '/' && url[i+2] == '/' {
			return url[i+3:]
		}
	}
	return url
}

// shardLabel renders "shard N" without fmt.
func shardLabel(i int) string {
	return "shard " + strconv.Itoa(i)
}
