// Package fleet is the distributed layer over the simulation service: a
// coordinator that fronts the same /v1 jobs API as a single mcservd,
// splits one logical job into content-addressed shard jobs, dispatches
// them to a registry of worker mcservd instances, and deterministically
// merges the shard results.
//
// The merge invariant is the package's whole contract: for any worker
// count, any shard count, and any interleaving of worker failures and
// reassignments, the merged result is byte-identical to what a single
// node running the logical spec would produce. The invariant holds
// because every shardable kind was given an explicit shard handle whose
// work partitions exactly:
//
//   - sweeps shard by contiguous seed ranges (sim.SweepSpec.Seed/Seeds;
//     every point's RNG is derived from its own seed),
//   - campaigns shard by contiguous trial ranges
//     (chaos.CampaignSpec.TrialOffset; every trial's RNG is derived
//     from the global trial index),
//   - verify enumerations shard by contiguous pattern-index ranges
//     (verify.Spec.PatternStart/PatternCount over the deterministic
//     DFS pre-order of flip patterns).
//
// Shard jobs are ordinary serve.JobSpecs, so they are content-addressed
// by the same digest scheme the workers cache under — a reassigned
// shard re-executes at most once per worker and merges exactly once.
package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Shard is one unit of a fleet plan: a self-contained serve.JobSpec
// covering a contiguous slice of the logical job's work.
type Shard struct {
	// Index is the shard's position in the plan; the merge consumes
	// shard results in index order.
	Index int
	// Spec is the shard's job spec, runnable on any worker.
	Spec *serve.JobSpec
	// Digest is the shard spec's content address — the key shard results
	// are cached and recovered under.
	Digest serve.Digest
}

// Plan is the deterministic decomposition of one logical job. Planning
// is a pure function of (logical spec, shard target): re-planning after
// a coordinator crash reproduces the identical shard table, which is
// what lets recovery re-derive assignments from the journaled logical
// spec plus the spooled shard results alone.
type Plan struct {
	// Spec is the normalized logical job spec.
	Spec *serve.JobSpec
	// Digest is the logical job's content address (what the fleet API
	// serves the job under — the same digest a single node would use).
	Digest serve.Digest
	// Shards are the shard jobs in merge order.
	Shards []Shard
}

// NewPlan decomposes a normalized, valid logical spec into at most
// target shards. Kinds with nothing to split (scripts, stop-at-first
// campaigns, single-seed sweeps) yield a single shard whose spec — and
// therefore digest — equals the logical job's.
func NewPlan(spec *serve.JobSpec, target int) (*Plan, error) {
	if target < 1 {
		target = 1
	}
	_, digest, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	p := &Plan{Spec: spec, Digest: digest}

	var specs []*serve.JobSpec
	switch spec.Kind {
	case serve.KindSweep:
		specs = planSweep(spec, target)
	case serve.KindCampaign:
		specs = planCampaign(spec, target)
	case serve.KindVerify:
		specs, err = planVerify(spec, target)
		if err != nil {
			return nil, err
		}
	case serve.KindScript:
		specs = []*serve.JobSpec{spec}
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q", spec.Kind)
	}

	p.Shards = make([]Shard, len(specs))
	for i, s := range specs {
		_, d, err := s.Canonical()
		if err != nil {
			return nil, err
		}
		p.Shards[i] = Shard{Index: i, Spec: s, Digest: d}
	}
	return p, nil
}

// ranges splits n work units into at most target contiguous ranges of
// near-equal size, returned as (offset, count) pairs covering [0, n)
// exactly once. n == 0 yields a single empty range so every job has at
// least one shard to carry its (empty) result.
func ranges(n, target int) [][2]int {
	if n <= 0 {
		return [][2]int{{0, n}}
	}
	if target > n {
		target = n
	}
	out := make([][2]int, 0, target)
	base, rem := n/target, n%target
	off := 0
	for i := 0; i < target; i++ {
		count := base
		if i < rem {
			count++
		}
		out = append(out, [2]int{off, count})
		off += count
	}
	return out
}

// planSweep splits the seed range: shard i runs seeds
// [Seed+off, Seed+off+count).
func planSweep(spec *serve.JobSpec, target int) []*serve.JobSpec {
	var out []*serve.JobSpec
	for _, r := range ranges(spec.Sweep.Seeds, target) {
		sub := *spec
		sw := *spec.Sweep
		sw.Seed = spec.Sweep.Seed + int64(r[0])
		sw.Seeds = r[1]
		sub.Sweep = &sw
		out = append(out, &sub)
	}
	return out
}

// planCampaign splits the trial range: shard i runs global trials
// [TrialOffset+off, TrialOffset+off+count). A stop-at-first campaign is
// inherently sequential (trial t+1 runs only if trial t found nothing),
// so it stays one shard.
func planCampaign(spec *serve.JobSpec, target int) []*serve.JobSpec {
	if spec.Campaign.StopAtFirst {
		return []*serve.JobSpec{spec}
	}
	var out []*serve.JobSpec
	for _, r := range ranges(spec.Campaign.Trials, target) {
		sub := *spec
		cs := *spec.Campaign
		cs.TrialOffset = spec.Campaign.TrialOffset + r[0]
		cs.Trials = r[1]
		sub.Campaign = &cs
		out = append(out, &sub)
	}
	return out
}

// planVerify splits the DFS pattern-index range: shard i checks pattern
// indices [PatternStart+off, PatternStart+off+count).
func planVerify(spec *serve.JobSpec, target int) ([]*serve.JobSpec, error) {
	space, err := spec.Verify.PatternSpace()
	if err != nil {
		return nil, err
	}
	// The logical job's own window (usually the whole space) is what gets
	// partitioned; a logical spec that already carries a window splits
	// into sub-windows of it.
	window := space - spec.Verify.PatternStart
	if window < 0 {
		window = 0
	}
	if spec.Verify.PatternCount > 0 && spec.Verify.PatternCount < window {
		window = spec.Verify.PatternCount
	}
	if window == 0 {
		return []*serve.JobSpec{spec}, nil
	}
	var out []*serve.JobSpec
	for _, r := range ranges(window, target) {
		sub := *spec
		vs := *spec.Verify
		vs.PatternStart = spec.Verify.PatternStart + r[0]
		vs.PatternCount = r[1]
		sub.Verify = &vs
		out = append(out, &sub)
	}
	return out, nil
}

// Merge folds the shard results (raw JSON as returned by the workers,
// in shard index order, one per shard) back into the logical job's
// result. The output is byte-identical to serve.Execute running the
// logical spec on one node: results decode into the same typed outcome
// structs the single-node path marshals — integer/string/bool fields
// only, fixed field order — and the aggregate fields (sweep summaries,
// campaign execution counts, verify tallies) recompute from the merged
// parts exactly as a single run computes them from its own.
func (p *Plan) Merge(results []json.RawMessage) (json.RawMessage, error) {
	if len(results) != len(p.Shards) {
		return nil, fmt.Errorf("fleet: merge got %d shard results, want %d", len(results), len(p.Shards))
	}
	for i, r := range results {
		if len(r) == 0 {
			return nil, fmt.Errorf("fleet: merge missing result for shard %d", i)
		}
	}
	if len(results) == 1 {
		// Single shard: the shard spec equals the logical spec (or is its
		// whole work window); its result is the logical result.
		return results[0], nil
	}
	switch p.Spec.Kind {
	case serve.KindSweep:
		return mergeSweep(p.Spec, results)
	case serve.KindCampaign:
		return mergeCampaign(p.Spec, results)
	case serve.KindVerify:
		return mergeVerify(p.Spec, results)
	}
	return nil, fmt.Errorf("fleet: kind %q cannot have %d shards", p.Spec.Kind, len(results))
}

func mergeSweep(spec *serve.JobSpec, results []json.RawMessage) (json.RawMessage, error) {
	merged := sim.SweepOutcome{Spec: *spec.Sweep, Points: make([]sim.PointOutcome, 0, spec.Sweep.Seeds)}
	for i, raw := range results {
		var out sim.SweepOutcome
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("fleet: decode sweep shard %d: %w", i, err)
		}
		merged.Points = append(merged.Points, out.Points...)
	}
	merged.Summary = sim.SummarizeOutcomes(merged.Points)
	return marshalMerged(merged)
}

func mergeCampaign(spec *serve.JobSpec, results []json.RawMessage) (json.RawMessage, error) {
	merged := chaos.CampaignOutcome{
		Spec:     *spec.Campaign,
		Trials:   spec.Campaign.Trials,
		Findings: make([]chaos.Artifact, 0),
	}
	for i, raw := range results {
		var out chaos.CampaignOutcome
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("fleet: decode campaign shard %d: %w", i, err)
		}
		merged.Executions += out.Executions
		merged.Findings = append(merged.Findings, out.Findings...)
	}
	return marshalMerged(merged)
}

func mergeVerify(spec *serve.JobSpec, results []json.RawMessage) (json.RawMessage, error) {
	merged := verify.SpecOutcome{Spec: *spec.Verify, Violations: make([]string, 0)}
	for i, raw := range results {
		var out verify.SpecOutcome
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("fleet: decode verify shard %d: %w", i, err)
		}
		merged.Checked += out.Checked
		if merged.PatternsBy == nil {
			merged.PatternsBy = make([]int, len(out.PatternsBy))
		}
		if len(out.PatternsBy) != len(merged.PatternsBy) {
			return nil, fmt.Errorf("fleet: verify shard %d patternsBy length %d, want %d",
				i, len(out.PatternsBy), len(merged.PatternsBy))
		}
		for k, v := range out.PatternsBy {
			merged.PatternsBy[k] += v
		}
		// Shard violations are in enumeration order and shards cover
		// ascending index ranges, so concatenation preserves the global
		// enumeration order a single node reports.
		merged.Violations = append(merged.Violations, out.Violations...)
	}
	merged.Consistent = len(merged.Violations) == 0
	return marshalMerged(merged)
}

func marshalMerged(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode merged result: %w", err)
	}
	return b, nil
}
