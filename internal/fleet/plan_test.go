package fleet

import (
	"encoding/json"
	"testing"

	"repro/internal/serve"
)

func decodeSpec(t *testing.T, raw string) *serve.JobSpec {
	t.Helper()
	spec, err := serve.DecodeSpec([]byte(raw))
	if err != nil {
		t.Fatalf("decode spec: %v", err)
	}
	return spec
}

func TestRangesPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, target int }{
		{10, 3}, {10, 10}, {10, 17}, {1, 4}, {7, 1}, {100, 16},
	} {
		rs := ranges(tc.n, tc.target)
		if len(rs) > tc.target {
			t.Fatalf("ranges(%d,%d): %d ranges exceed target", tc.n, tc.target, len(rs))
		}
		next := 0
		for _, r := range rs {
			if r[0] != next {
				t.Fatalf("ranges(%d,%d): range starts at %d, want %d (gap or overlap)", tc.n, tc.target, r[0], next)
			}
			if r[1] <= 0 {
				t.Fatalf("ranges(%d,%d): empty range at offset %d", tc.n, tc.target, r[0])
			}
			next = r[0] + r[1]
		}
		if next != tc.n {
			t.Fatalf("ranges(%d,%d): covered [0,%d), want [0,%d)", tc.n, tc.target, next, tc.n)
		}
	}
	// Zero work still yields one (empty) range: every job gets a shard.
	if rs := ranges(0, 4); len(rs) != 1 || rs[0] != [2]int{0, 0} {
		t.Fatalf("ranges(0,4) = %v, want single empty range", rs)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	raw := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":7,"seeds":10,"eofOnly":true,"resetCounters":true}}`
	a, err := NewPlan(decodeSpec(t, raw), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(decodeSpec(t, raw), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Shards) != 3 || len(b.Shards) != len(a.Shards) {
		t.Fatalf("plan shard counts %d/%d, want 3", len(a.Shards), len(b.Shards))
	}
	if a.Digest != b.Digest {
		t.Fatalf("logical digests differ: %s vs %s", a.Digest, b.Digest)
	}
	for i := range a.Shards {
		if a.Shards[i].Digest != b.Shards[i].Digest {
			t.Fatalf("shard %d digest differs across replans", i)
		}
	}
	// Seed ranges partition [7, 17).
	seen := 0
	next := int64(7)
	for i, sh := range a.Shards {
		if sh.Spec.Sweep.Seed != next {
			t.Fatalf("shard %d starts at seed %d, want %d", i, sh.Spec.Sweep.Seed, next)
		}
		next += int64(sh.Spec.Sweep.Seeds)
		seen += sh.Spec.Sweep.Seeds
	}
	if seen != 10 {
		t.Fatalf("shards cover %d seeds, want 10", seen)
	}
}

func TestPlanSingleShardKinds(t *testing.T) {
	for name, raw := range map[string]string{
		"stop-at-first campaign": `{"campaign":{"protocol":"majorcan","nodes":4,"frames":1,"trials":10,"maxFaults":2,"seed":3,"stopAtFirst":true}}`,
		"single-seed sweep":      `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":7,"eofOnly":true,"resetCounters":true}}`,
	} {
		spec := decodeSpec(t, raw)
		p, err := NewPlan(spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Shards) != 1 {
			t.Fatalf("%s: %d shards, want 1", name, len(p.Shards))
		}
		if p.Shards[0].Digest != p.Digest {
			t.Fatalf("%s: single shard digest %s != logical %s", name, p.Shards[0].Digest, p.Digest)
		}
	}
}

func TestPlanCampaignTrialRanges(t *testing.T) {
	raw := `{"campaign":{"protocol":"majorcan","nodes":4,"frames":1,"trials":10,"maxFaults":2,"seed":3}}`
	p, err := NewPlan(decodeSpec(t, raw), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 4 {
		t.Fatalf("%d shards, want 4", len(p.Shards))
	}
	next, total := 0, 0
	for i, sh := range p.Shards {
		cs := sh.Spec.Campaign
		if cs.TrialOffset != next {
			t.Fatalf("shard %d trial offset %d, want %d", i, cs.TrialOffset, next)
		}
		if cs.Seed != 3 {
			t.Fatalf("shard %d seed %d changed; trial RNG must derive from the global index", i, cs.Seed)
		}
		next += cs.Trials
		total += cs.Trials
	}
	if total != 10 {
		t.Fatalf("shards cover %d trials, want 10", total)
	}
}

func TestPlanVerifyWindows(t *testing.T) {
	raw := `{"verify":{"protocol":"majorcan","stations":3,"maxFlips":2,"positions":3}}`
	spec := decodeSpec(t, raw)
	space, err := spec.Verify.PatternSpace()
	if err != nil {
		t.Fatal(err)
	}
	if space < 4 {
		t.Fatalf("pattern space %d too small to split", space)
	}
	p, err := NewPlan(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 3 {
		t.Fatalf("%d shards, want 3", len(p.Shards))
	}
	next, covered := 0, 0
	for i, sh := range p.Shards {
		vs := sh.Spec.Verify
		if vs.PatternStart != next {
			t.Fatalf("shard %d starts at pattern %d, want %d", i, vs.PatternStart, next)
		}
		next += vs.PatternCount
		covered += vs.PatternCount
	}
	if covered != space {
		t.Fatalf("shards cover %d patterns, want %d", covered, space)
	}

	// A logical spec that already carries a window splits into
	// sub-windows of it, never beyond its end.
	windowed := decodeSpec(t, `{"verify":{"protocol":"majorcan","stations":3,"maxFlips":2,"positions":3,"patternStart":2,"patternCount":5}}`)
	wp, err := NewPlan(windowed, 2)
	if err != nil {
		t.Fatal(err)
	}
	covered = 0
	next = 2
	for i, sh := range wp.Shards {
		vs := sh.Spec.Verify
		if vs.PatternStart != next {
			t.Fatalf("windowed shard %d starts at %d, want %d", i, vs.PatternStart, next)
		}
		next += vs.PatternCount
		covered += vs.PatternCount
	}
	if covered != 5 {
		t.Fatalf("windowed shards cover %d patterns, want 5", covered)
	}
}

func TestMergeArityChecks(t *testing.T) {
	raw := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":7,"seeds":4,"eofOnly":true,"resetCounters":true}}`
	p, err := NewPlan(decodeSpec(t, raw), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge([]json.RawMessage{[]byte("{}")}); err == nil {
		t.Fatal("merge accepted wrong shard-result count")
	}
	if _, err := p.Merge([]json.RawMessage{[]byte("{}"), nil}); err == nil {
		t.Fatal("merge accepted a missing shard result")
	}
}
