package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/fsio"
	"repro/internal/serve/journal"
)

// Coordinator errors surfaced to the API layer.
var (
	// ErrBusy reports that the fleet's aggregate admission budget is
	// exhausted — every usable worker queue is full or the coordinator is
	// at its concurrent-job limit (HTTP 429 + Retry-After).
	ErrBusy = errors.New("fleet: worker queues full, retry later")
	// ErrDraining reports that the coordinator is shutting down (503).
	ErrDraining = errors.New("fleet: draining, not accepting jobs")
)

// Config parameterises a coordinator.
type Config struct {
	// Workers are the worker mcservd base URLs.
	Workers []string
	// ShardsPerJob is the target shard count per logical job
	// (default 2×len(Workers): enough slack that a reassigned shard does
	// not serialise the whole job behind one worker).
	ShardsPerJob int
	// AssignRetries bounds how many distinct dispatch attempts one shard
	// gets before the logical job fails (default 3).
	AssignRetries int
	// ShardWait bounds one shard dispatch end to end, including the
	// blocking wait on the worker (default 10m).
	ShardWait time.Duration
	// Heartbeat is the registry probe cadence (default 1s).
	Heartbeat time.Duration
	// MaxJobs bounds concurrently running logical jobs (default 4).
	MaxJobs int
	// CacheEntries bounds the in-memory result cache (default 256).
	CacheEntries int
	// SpoolDir, if non-empty, persists shard and merged results — the
	// store that makes coordinator recovery cheap (finished shards are
	// found, not re-run).
	SpoolDir string
	// JournalPath, if non-empty, enables the write-ahead fleet journal:
	// logical jobs are journaled at admission and replayed on restart.
	JournalPath string
	// FS is the filesystem seam under spool and journal (default: the
	// real filesystem). Tests inject faults here.
	FS fsio.FS
	// Logger, if non-nil, receives structured coordinator logs.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ShardsPerJob < 1 {
		c.ShardsPerJob = 2 * len(c.Workers)
		if c.ShardsPerJob < 1 {
			c.ShardsPerJob = 1
		}
	}
	if c.AssignRetries < 1 {
		c.AssignRetries = 3
	}
	if c.ShardWait <= 0 {
		c.ShardWait = 10 * time.Minute
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 256
	}
	return c
}

// ShardState is one shard's dispatch lifecycle.
type ShardState string

const (
	ShardPending ShardState = "pending"
	ShardRunning ShardState = "running"
	ShardDone    ShardState = "done"
	ShardFailed  ShardState = "failed"
)

// shardRun is the mutable dispatch record of one planned shard.
// Guarded by its FleetJob's mu.
type shardRun struct {
	shard    Shard
	state    ShardState
	worker   string // URL of the worker it last ran on
	attempts int    // dispatch attempts (1 + reassignments)
	result   json.RawMessage
	errMsg   string
	queuedMs int64 // worker-reported queue wait of the successful attempt
	runMs    int64 // worker-reported execution time of the successful attempt
	start    time.Time
	end      time.Time
	cached   bool // result came from the coordinator spool (recovery)
}

// FleetJob is one tracked logical job: its plan and the dispatch state
// of every shard.
type FleetJob struct {
	plan *Plan
	done chan struct{}
	tail *serve.LineTail // this job's shard lifecycle events, NDJSON

	mu        sync.Mutex
	state     serve.State
	shards    []*shardRun
	result    json.RawMessage
	errMsg    string
	cachedHit bool
	recovered bool
	coalesced uint64
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Digest returns the logical job's content address.
func (f *FleetJob) Digest() serve.Digest { return f.plan.Digest }

// Done is closed when the job reaches a terminal state.
func (f *FleetJob) Done() <-chan struct{} { return f.done }

// ShardStatus is the serialisable dispatch state of one shard.
type ShardStatus struct {
	Index    int          `json:"index"`
	Digest   serve.Digest `json:"digest"`
	State    ShardState   `json:"state"`
	Worker   string       `json:"worker,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
	QueuedMs int64        `json:"queuedMs,omitempty"`
	RunMs    int64        `json:"runMs,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// JobView is the fleet GET /v1/jobs/{id} reply: the serve-compatible
// job record (so serve.Client works against a coordinator unchanged)
// plus the per-shard dispatch table.
type JobView struct {
	serve.JobStatus
	Shards []ShardStatus `json:"shards,omitempty"`
}

// Status snapshots the job in serve's wire shape. Attempts counts
// dispatch attempts across all shards.
func (f *FleetJob) Status() JobView {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := JobView{JobStatus: serve.JobStatus{
		ID:        f.plan.Digest,
		Kind:      f.plan.Spec.Kind,
		State:     f.state,
		Cached:    f.cachedHit,
		Recovered: f.recovered,
		Coalesced: f.coalesced,
		Error:     f.errMsg,
	}}
	if !f.submitted.IsZero() && !f.started.IsZero() {
		v.QueuedMs = f.started.Sub(f.submitted).Milliseconds()
	}
	if !f.started.IsZero() && !f.finished.IsZero() {
		v.RunMs = f.finished.Sub(f.started).Milliseconds()
	}
	if f.state == serve.StateDone {
		v.Result = f.result
	}
	for _, sr := range f.shards {
		v.Attempts += sr.attempts
		v.Shards = append(v.Shards, ShardStatus{
			Index:    sr.shard.Index,
			Digest:   sr.shard.Digest,
			State:    sr.state,
			Worker:   sr.worker,
			Attempts: sr.attempts,
			Cached:   sr.cached,
			QueuedMs: sr.queuedMs,
			RunMs:    sr.runMs,
			Error:    sr.errMsg,
		})
	}
	return v
}

// shardTable is the checkpointed shard assignment table: the per-shard
// completion watermark the coordinator persists under the logical
// digest so a restart can report (and skip) finished shards without
// re-deriving everything from the spool alone.
type shardTable struct {
	Shards []shardTableEntry `json:"shards"`
}

type shardTableEntry struct {
	Index    int          `json:"index"`
	Digest   serve.Digest `json:"digest"`
	State    ShardState   `json:"state"`
	Worker   string       `json:"worker,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
}

// Coordinator fronts the /v1 jobs API for a fleet of workers: it plans,
// dispatches, reassigns and merges. One Coordinator is one logical
// scheduler; its journal and spool make a SIGKILL survivable.
type Coordinator struct {
	cfg      Config
	registry *Registry
	jnl      *journal.Journal
	cache    *serve.Cache
	table    *serve.CheckpointStore
	logger   *slog.Logger

	tail *serve.LineTail // fleet event NDJSON lines (/v1/fleet/events)

	mu       sync.Mutex
	jobs     []*FleetJob                  // submit order, for stable iteration
	byID     map[serve.Digest]*FleetJob   // lookup only; never ranged over
	active   int
	draining bool

	runCtx       context.Context
	runCancel    context.CancelFunc
	wg           sync.WaitGroup
	shutdownOnce sync.Once
	start        time.Time

	submitted        atomic.Uint64
	coalescedTotal   atomic.Uint64
	cachedTotal      atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedDraining atomic.Uint64
	reassigned       atomic.Uint64
	recoveredJobs    atomic.Uint64
	shardsDispatched atomic.Uint64
}

// fleetTailCapacity bounds the fleet event tail; shard lifecycle events
// are far sparser than protocol events, so a small tail covers hours.
const fleetTailCapacity = 4096

// NewCoordinator builds a coordinator, opening its journal and spool
// and replaying any logical jobs that were accepted but unfinished when
// the previous process died. Recovered jobs re-enter dispatch when
// Start is called; shards whose results are already in the spool are
// merged without re-running.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	fs := cfg.FS
	if fs == nil {
		fs = fsio.OS{}
	}
	cfg.FS = fs
	cache, err := serve.NewCache(cfg.CacheEntries, cfg.SpoolDir, fs)
	if err != nil {
		return nil, fmt.Errorf("fleet: spool: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		registry: NewRegistry(cfg.Workers, cfg.Heartbeat),
		cache:    cache,
		logger:   cfg.Logger,
		tail:     serve.NewLineTail(fleetTailCapacity),
		byID:     make(map[serve.Digest]*FleetJob),
	}
	//lint:allow determinism -- service uptime anchor; not simulation state
	c.start = time.Now()
	c.runCtx, c.runCancel = context.WithCancel(context.Background())
	if cfg.SpoolDir != "" {
		table, err := serve.NewCheckpointStore(cfg.SpoolDir+"/shardtables", fs)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard tables: %w", err)
		}
		c.table = table
	}
	if cfg.JournalPath != "" {
		jnl, info, err := journal.Open(fs, cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
		c.jnl = jnl
		for _, rec := range info.Pending {
			c.recoverJob(rec)
		}
	}
	return c, nil
}

// Start launches the registry heartbeats and re-enters dispatch for
// recovered jobs.
func (c *Coordinator) Start() {
	c.registry.Start()
	c.mu.Lock()
	pending := make([]*FleetJob, 0, len(c.jobs))
	for _, j := range c.jobs {
		j.mu.Lock()
		if j.state == serve.StateQueued {
			pending = append(pending, j)
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	for _, j := range pending {
		c.launch(j)
	}
}

// logInfo logs when a logger is configured.
func (c *Coordinator) logInfo(msg string, args ...any) {
	if c.logger != nil {
		c.logger.Info(msg, args...)
	}
}

func (c *Coordinator) logWarn(msg string, args ...any) {
	if c.logger != nil {
		c.logger.Warn(msg, args...)
	}
}

// event renders one fleet lifecycle event into the coordinator-wide
// NDJSON tail, and — when it concerns a tracked job — into that job's
// own tail, the stream /v1/jobs/{id}/events serves.
func (c *Coordinator) event(j *FleetJob, kind string, fields map[string]any) {
	line := map[string]any{"kind": kind}
	//lint:allow determinism -- copying into a map; json.Marshal sorts keys, so the rendered line is order-independent
	for k, v := range fields {
		line[k] = v
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	c.tail.Append(b)
	if j != nil && j.tail != nil {
		j.tail.Append(b)
	}
}

// journalAppend logs one record, tolerating degradation (mirrors the
// serve scheduler's policy: durability degrades, serving never stops).
func (c *Coordinator) journalAppend(r journal.Record) {
	if c.jnl == nil {
		return
	}
	if err := c.jnl.Append(r); err != nil && !errors.Is(err, journal.ErrDegraded) {
		c.logWarn("fleet journal degraded", "err", err)
	}
}

// newJob builds the FleetJob for a plan, marking spool-recovered shards
// done immediately.
func (c *Coordinator) newJob(plan *Plan) *FleetJob {
	j := &FleetJob{
		plan:  plan,
		done:  make(chan struct{}),
		tail:  serve.NewLineTail(fleetTailCapacity),
		state: serve.StateQueued,
	}
	//lint:allow determinism -- job lifecycle timestamps; not simulation state
	j.submitted = time.Now()
	for _, sh := range plan.Shards {
		sr := &shardRun{shard: sh, state: ShardPending}
		if e, ok := c.cache.Get(sh.Digest); ok {
			sr.state = ShardDone
			sr.result = e.Result
			sr.cached = true
		}
		j.shards = append(j.shards, sr)
	}
	return j
}

// recoverJob replays one journaled logical job after a restart: the
// plan is re-derived from the journaled spec (planning is
// deterministic, so the shard table matches the pre-crash one), spooled
// shard results are adopted, and the remainder waits for Start.
func (c *Coordinator) recoverJob(rec journal.Record) {
	spec, err := serve.DecodeSpec(rec.Spec)
	if err != nil {
		c.journalAppend(journal.Record{Op: journal.OpFail, ID: rec.ID})
		c.logWarn("fleet recovery: undecodable spec", "id", rec.ID, "err", err)
		return
	}
	plan, err := NewPlan(spec, c.cfg.ShardsPerJob)
	if err != nil || string(plan.Digest) != rec.ID {
		c.journalAppend(journal.Record{Op: journal.OpFail, ID: rec.ID})
		c.logWarn("fleet recovery: plan mismatch", "id", rec.ID)
		return
	}
	j := c.newJob(plan)
	j.recovered = true
	c.recoveredJobs.Add(1)
	done := 0
	for _, sr := range j.shards {
		if sr.state == ShardDone {
			done++
		}
	}
	c.mu.Lock()
	c.jobs = append(c.jobs, j)
	c.byID[plan.Digest] = j
	c.active++
	c.mu.Unlock()
	c.event(j, "job-recovered", map[string]any{
		"job": plan.Digest.Short(), "shards": len(j.shards), "spooled": done,
	})
	c.logInfo("fleet recovery: job replayed",
		"id", plan.Digest.Short(), "shards", len(j.shards), "spooled", done)
}

// Submit admits one logical job: content-address it, serve it from the
// cache or coalesce onto an identical in-flight job when possible,
// otherwise plan it and launch dispatch. The admission semantics mirror
// serve.Scheduler.Submit so the fleet API is a drop-in front.
func (c *Coordinator) Submit(spec *serve.JobSpec) (*FleetJob, serve.Admission, error) {
	plan, err := NewPlan(spec, c.cfg.ShardsPerJob)
	if err != nil {
		return nil, serve.AdmissionNew, err
	}
	canonical, _, err := spec.Canonical()
	if err != nil {
		return nil, serve.AdmissionNew, err
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		c.rejectedDraining.Add(1)
		return nil, serve.AdmissionNew, ErrDraining
	}
	if existing, ok := c.byID[plan.Digest]; ok {
		existing.mu.Lock()
		terminal := existing.state == serve.StateDone || existing.state == serve.StateFailed
		if !terminal {
			existing.coalesced++
		}
		existing.mu.Unlock()
		c.mu.Unlock()
		if terminal {
			c.cachedTotal.Add(1)
			return existing, serve.AdmissionCached, nil
		}
		c.coalescedTotal.Add(1)
		return existing, serve.AdmissionCoalesced, nil
	}
	if e, ok := c.cache.Get(plan.Digest); ok {
		// Merged result already spooled: born-terminal job, no dispatch.
		j := &FleetJob{plan: plan, done: make(chan struct{}),
			tail: serve.NewLineTail(fleetTailCapacity), state: serve.StateDone,
			result: e.Result, cachedHit: true}
		close(j.done)
		c.jobs = append(c.jobs, j)
		c.byID[plan.Digest] = j
		c.mu.Unlock()
		c.cachedTotal.Add(1)
		return j, serve.AdmissionCached, nil
	}
	if c.active >= c.cfg.MaxJobs || (c.registry.Usable() > 0 && c.registry.QueueHeadroom() <= 0) {
		c.mu.Unlock()
		c.rejectedBusy.Add(1)
		return nil, serve.AdmissionNew, ErrBusy
	}
	j := c.newJob(plan)
	c.jobs = append(c.jobs, j)
	c.byID[plan.Digest] = j
	c.active++
	c.mu.Unlock()

	c.submitted.Add(1)
	c.journalAppend(journal.Record{Op: journal.OpAccept, ID: string(plan.Digest), Spec: canonical})
	c.event(j, "job-accepted", map[string]any{
		"job": plan.Digest.Short(), "kind": string(spec.Kind), "shards": len(plan.Shards),
	})
	c.launch(j)
	return j, serve.AdmissionNew, nil
}

// Job looks a logical job up by digest.
func (c *Coordinator) Job(d serve.Digest) (*FleetJob, bool) {
	c.mu.Lock()
	j, ok := c.byID[d]
	c.mu.Unlock()
	return j, ok
}

// launch runs a job's dispatch on its own goroutine, joined by Drain.
func (c *Coordinator) launch(j *FleetJob) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.runJob(c.runCtx, j)
	}()
}

// saveTable checkpoints the job's shard table under its logical digest.
func (c *Coordinator) saveTable(j *FleetJob) {
	if c.table == nil {
		return
	}
	j.mu.Lock()
	t := shardTable{Shards: make([]shardTableEntry, 0, len(j.shards))}
	for _, sr := range j.shards {
		t.Shards = append(t.Shards, shardTableEntry{
			Index: sr.shard.Index, Digest: sr.shard.Digest,
			State: sr.state, Worker: sr.worker, Attempts: sr.attempts,
		})
	}
	j.mu.Unlock()
	b, err := json.Marshal(t)
	if err != nil {
		return
	}
	if err := c.table.Save(j.plan.Digest, b); err != nil {
		c.logWarn("fleet shard table save failed", "id", j.plan.Digest.Short(), "err", err)
	}
}

// runJob drives one logical job to a terminal state: dispatch every
// pending shard concurrently, wait for all of them, merge.
func (c *Coordinator) runJob(ctx context.Context, j *FleetJob) {
	j.mu.Lock()
	j.state = serve.StateRunning
	//lint:allow determinism -- job lifecycle timestamps; not simulation state
	j.started = time.Now()
	pending := make([]*shardRun, 0, len(j.shards))
	for _, sr := range j.shards {
		if sr.state != ShardDone {
			pending = append(pending, sr)
		}
	}
	j.mu.Unlock()
	c.saveTable(j)

	var wg sync.WaitGroup
	for _, sr := range pending {
		wg.Add(1)
		go func(sr *shardRun) {
			defer wg.Done()
			c.runShard(ctx, j, sr)
		}(sr)
	}
	wg.Wait()

	// Merge exactly one result per shard index — a reassigned shard that
	// raced two workers still contributes a single entry, and equal
	// digests guarantee equal bytes whichever worker's reply landed.
	j.mu.Lock()
	results := make([]json.RawMessage, len(j.shards))
	failMsg := ""
	for i, sr := range j.shards {
		if sr.state != ShardDone {
			if failMsg == "" {
				failMsg = fmt.Sprintf("shard %d: %s", sr.shard.Index, sr.errMsg)
			}
			continue
		}
		results[i] = sr.result
	}
	j.mu.Unlock()

	if failMsg == "" {
		merged, err := j.plan.Merge(results)
		if err != nil {
			failMsg = err.Error()
		} else {
			c.finishJob(j, merged, "")
			return
		}
	}
	c.finishJob(j, nil, failMsg)
}

// finishJob moves a job to its terminal state, spools the merged
// result, journals the completion and wakes waiters.
func (c *Coordinator) finishJob(j *FleetJob, merged json.RawMessage, errMsg string) {
	// A failure caused by coordinator shutdown is an abort, not a verdict
	// on the job: the journal keeps its accept record pending so the next
	// start replays the job and adopts whatever shards already spooled —
	// the same resume-don't-refail contract the worker scheduler has.
	aborted := errMsg != "" && c.runCtx.Err() != nil
	canonical, _, cerr := j.plan.Spec.Canonical()
	j.mu.Lock()
	//lint:allow determinism -- job lifecycle timestamps; not simulation state
	j.finished = time.Now()
	if errMsg == "" {
		j.state = serve.StateDone
		j.result = merged
	} else {
		j.state = serve.StateFailed
		j.errMsg = errMsg
	}
	j.mu.Unlock()
	c.saveTable(j)
	if errMsg == "" {
		if cerr == nil {
			c.cache.Put(j.plan.Digest, serve.Entry{Spec: canonical, Result: merged})
		}
		c.journalAppend(journal.Record{Op: journal.OpDone, ID: string(j.plan.Digest)})
		c.completed.Add(1)
		c.event(j, "job-done", map[string]any{"job": j.plan.Digest.Short()})
		c.logInfo("fleet job done", "id", j.plan.Digest.Short())
	} else if aborted {
		c.event(j, "job-aborted", map[string]any{"job": j.plan.Digest.Short(), "error": errMsg})
		c.logWarn("fleet job aborted by shutdown; journal keeps it pending",
			"id", j.plan.Digest.Short(), "err", errMsg)
	} else {
		c.journalAppend(journal.Record{Op: journal.OpFail, ID: string(j.plan.Digest)})
		c.failed.Add(1)
		c.event(j, "job-failed", map[string]any{"job": j.plan.Digest.Short(), "error": errMsg})
		c.logWarn("fleet job failed", "id", j.plan.Digest.Short(), "err", errMsg)
	}
	c.mu.Lock()
	c.active--
	c.mu.Unlock()
	close(j.done)
}

// runShard dispatches one shard until it succeeds, permanently fails,
// or exhausts its reassignment budget. Worker loss (transport error,
// timeout, death mid-wait) reassigns to the next-best worker; a
// deterministic job failure on the worker fails the shard outright —
// the same spec would fail anywhere.
func (c *Coordinator) runShard(ctx context.Context, j *FleetJob, sr *shardRun) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardWait)
	defer cancel()
	j.mu.Lock()
	sr.state = ShardRunning
	//lint:allow determinism -- shard lifecycle timestamps; not simulation state
	sr.start = time.Now()
	j.mu.Unlock()

	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.AssignRetries; attempt++ {
		w := c.registry.Pick(tried)
		if w == nil && len(tried) > 0 {
			// Every untried worker is unusable; forgive earlier transport
			// failures and allow a second pass over recovered workers.
			tried = make(map[string]bool)
			w = c.registry.Pick(tried)
		}
		if w == nil {
			// No usable worker at all: wait out a heartbeat for one to
			// come back rather than burning the attempt budget.
			select {
			case <-ctx.Done():
				c.failShard(j, sr, fmt.Errorf("no usable worker: %w", ctx.Err()))
				return
			case <-time.After(c.cfg.Heartbeat):
			}
			attempt--
			continue
		}

		j.mu.Lock()
		sr.attempts++
		sr.worker = w.URL
		j.mu.Unlock()
		if attempt > 0 {
			c.reassigned.Add(1)
			c.event(j, "shard-reassigned", map[string]any{
				"job": j.plan.Digest.Short(), "shard": sr.shard.Index, "worker": w.URL,
			})
		} else {
			c.event(j, "shard-dispatched", map[string]any{
				"job": j.plan.Digest.Short(), "shard": sr.shard.Index, "worker": w.URL,
			})
		}
		c.shardsDispatched.Add(1)

		resp, err := w.Client.SubmitRetry(ctx, sr.shard.Spec, -1, 3)
		c.registry.Release(w)
		if err != nil {
			lastErr = err
			tried[w.URL] = true
			c.logWarn("fleet shard dispatch failed",
				"job", j.plan.Digest.Short(), "shard", sr.shard.Index, "worker", w.URL, "err", err)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		switch resp.Status.State {
		case serve.StateDone:
			c.completeShard(j, sr, resp)
			return
		case serve.StateFailed:
			// Deterministic failure: the spec itself fails; reassignment
			// cannot change a pure function's result.
			c.failShard(j, sr, fmt.Errorf("worker %s: %s", w.URL, resp.Status.Error))
			return
		default:
			// The wait returned non-terminal (worker drain or wait budget);
			// another worker can pick the shard up.
			lastErr = fmt.Errorf("worker %s returned non-terminal state %q", w.URL, resp.Status.State)
			tried[w.URL] = true
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no dispatch attempt succeeded")
	}
	c.failShard(j, sr, fmt.Errorf("after %d attempts: %w", c.cfg.AssignRetries, lastErr))
}

// completeShard records a shard result, spools it under the shard
// digest (the completion watermark recovery reads) and checkpoints the
// table.
func (c *Coordinator) completeShard(j *FleetJob, sr *shardRun, resp *serve.SubmitResponse) {
	canonical, _, cerr := sr.shard.Spec.Canonical()
	// Workers indent their HTTP responses; compact the shard result so
	// single-shard passthrough and cache entries are byte-identical to
	// what a single-node runner produces.
	result := resp.Status.Result
	if compacted, err := json.Marshal(result); err == nil {
		result = compacted
	}
	j.mu.Lock()
	sr.state = ShardDone
	sr.result = result
	sr.queuedMs = resp.Status.QueuedMs
	sr.runMs = resp.Status.RunMs
	//lint:allow determinism -- shard lifecycle timestamps; not simulation state
	sr.end = time.Now()
	j.mu.Unlock()
	if cerr == nil {
		c.cache.Put(sr.shard.Digest, serve.Entry{Spec: canonical, Result: result})
	}
	c.saveTable(j)
	c.event(j, "shard-done", map[string]any{
		"job": j.plan.Digest.Short(), "shard": sr.shard.Index, "worker": sr.worker,
		"runMs": resp.Status.RunMs,
	})
}

// failShard records a permanent shard failure.
func (c *Coordinator) failShard(j *FleetJob, sr *shardRun, err error) {
	j.mu.Lock()
	sr.state = ShardFailed
	sr.errMsg = err.Error()
	//lint:allow determinism -- shard lifecycle timestamps; not simulation state
	sr.end = time.Now()
	j.mu.Unlock()
	c.saveTable(j)
	c.event(j, "shard-failed", map[string]any{
		"job": j.plan.Digest.Short(), "shard": sr.shard.Index, "error": err.Error(),
	})
}

// Draining reports whether the coordinator is shutting down.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain stops admissions and waits for running fleet jobs to finish,
// bounded by ctx. Shard dispatches outlive ctx only until runCancel.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		c.shutdown()
		return nil
	case <-ctx.Done():
		c.shutdown()
		//lint:allow ctxflow -- shutdown just cancelled runCtx, so dispatch aborts and the join is bounded; returning before it would race the journal close
		<-done
		return fmt.Errorf("fleet: drain incomplete: %w", ctx.Err())
	}
}

// Stop aborts immediately: cancel in-flight dispatch, join, close
// stores. Used by tests simulating a coordinator crash (minus the
// fsync-durability already covered by the journal's contract).
func (c *Coordinator) Stop() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.shutdown()
	c.wg.Wait()
}

func (c *Coordinator) shutdown() {
	c.shutdownOnce.Do(func() {
		c.runCancel()
		c.registry.Stop()
		if c.jnl != nil {
			_ = c.jnl.Close()
		}
	})
}

// Health reports the coordinator's own health plus the worker pool
// summary in the same wire shape workers use, so one probe recipe
// covers both roles.
func (c *Coordinator) Health() serve.HealthResponse {
	h := serve.HealthResponse{
		Status:    "ok",
		Version:   serve.BuildVersion(),
		GoVersion: runtime.Version(),
	}
	if c.jnl != nil && c.jnl.Degraded() {
		h.Journal = "degraded"
	} else if c.jnl != nil {
		h.Journal = "ok"
	} else {
		h.Journal = "disabled"
	}
	if c.cfg.SpoolDir == "" {
		h.Spool = "disabled"
	} else if c.cache.Degraded() {
		h.Spool = "degraded"
	} else {
		h.Spool = "ok"
	}
	h.Checkpoints = h.Spool // shard tables ride the spool directory
	if h.Degraded() {
		h.Status = "degraded"
	}
	if c.Draining() {
		h.Status = "draining"
	}
	return h
}

// RetryAfter estimates the backoff a 429'd caller should honour: one
// heartbeat per fully-queued usable worker, clamped to [1s, 30s].
func (c *Coordinator) RetryAfter() time.Duration {
	d := 2 * c.cfg.Heartbeat
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Tail exposes the fleet event tail for the events endpoint.
func (c *Coordinator) Tail() *serve.LineTail { return c.tail }
