package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/serve"
)

// maxSpecBytes mirrors the worker-side submit bound.
const maxSpecBytes = 1 << 20

// Server is the HTTP face of a Coordinator. It speaks the same /v1
// jobs dialect as a worker — submit, status, wait, trace, healthz,
// stats, metrics — so serve.Client and mcctl work against a coordinator
// unchanged, plus the fleet-only endpoints /v1/fleet (worker pool and
// job table) and /v1/fleet/events (coordinator-wide event stream).
type Server struct {
	coord *Coordinator
	mux   *http.ServeMux
}

// NewServer wraps a coordinator in the fleet API.
func NewServer(c *Coordinator) *Server {
	srv := &Server{coord: c, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/events", srv.handleJobEvents)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/trace", srv.handleTrace)
	srv.mux.HandleFunc("GET /v1/fleet", srv.handleFleet)
	srv.mux.HandleFunc("GET /v1/fleet/events", srv.handleFleetEvents)
	srv.mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /v1/stats", srv.handleStats)
	srv.mux.HandleFunc("GET /metrics", srv.handleMetrics)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// SubmitResponse is the fleet POST /v1/jobs reply: the same envelope a
// worker sends, with the richer JobView in the status slot. A decoder
// expecting serve.SubmitResponse reads it unchanged (the extra shards
// array is ignored).
type SubmitResponse struct {
	ID        serve.Digest `json:"id"`
	Admission string       `json:"admission"`
	Status    JobView      `json:"status"`
}

// handleSubmit admits a logical job, mirroring the worker submit
// contract: 200 terminal, 202 admitted, 400 invalid, 429 fleet busy
// (Retry-After set), 503 draining. ?wait= blocks like the worker's.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := serve.DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, adm, err := s.coord.Submit(spec)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.coord.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if wait, ok := parseWait(r.URL.Query().Get("wait")); ok {
		ctx := r.Context()
		if wait > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, wait)
			defer cancel()
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
		}
	}

	st := job.Status()
	code := http.StatusAccepted
	if st.State == serve.StateDone || st.State == serve.StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: job.Digest(), Admission: adm.String(), Status: st})
}

// parseWait mirrors the worker-side semantics: absent/false disables
// waiting; "true"/"1" waits until the request context ends; a Go
// duration bounds the wait.
func parseWait(v string) (time.Duration, bool) {
	switch v {
	case "":
		return 0, false
	case "0", "false", "no":
		return 0, false
	case "1", "true", "yes":
		return 0, true
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 0, false
}

func pathDigest(w http.ResponseWriter, r *http.Request) (serve.Digest, bool) {
	d := serve.Digest(r.PathValue("id"))
	if !d.Valid() {
		writeError(w, http.StatusNotFound, "fleet: malformed job id (want 64 lowercase hex digits)")
		return "", false
	}
	return d, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.coord.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "fleet: unknown job %s", d.Short())
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleJobEvents streams one logical job's shard lifecycle events as
// NDJSON with the same ?from=N resume contract as a worker's event
// stream: lines are indexed in the job's bounded tail, and a client
// that counted received lines reconnects where it stopped. The stream
// ends when the job is terminal and the tail is drained.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.coord.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "fleet: unknown job %s", d.Short())
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		from = 0
	}
	streamTail(w, r, job.tail, from, job.Done())
}

// handleFleetEvents streams the coordinator-wide event tail — every
// job's lifecycle interleaved — until the client disconnects.
func (s *Server) handleFleetEvents(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		from = 0
	}
	streamTail(w, r, s.coord.Tail(), from, nil)
}

// streamTail ships tail lines from index `from`, flushing as they
// appear, until the client goes away — or, when done is non-nil, until
// done closes and the tail is drained.
func streamTail(w http.ResponseWriter, r *http.Request, tail *serve.LineTail, from uint64, done <-chan struct{}) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if tail == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	cursor := from
	ship := func() bool {
		lines, first := tail.Since(cursor)
		cursor = first
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return false
			}
			cursor++
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ctx := r.Context()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if !ship() {
			return
		}
		if done != nil {
			select {
			case <-done:
				ship()
				return
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// FleetView is the GET /v1/fleet reply: the worker pool and the job
// table, newest job last (submit order).
type FleetView struct {
	Workers []WorkerStatus `json:"workers"`
	Jobs    []JobView      `json:"jobs"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.coord.mu.Lock()
	jobs := append([]*FleetJob(nil), s.coord.jobs...)
	s.coord.mu.Unlock()
	view := FleetView{
		Workers: s.coord.registry.Snapshot(),
		Jobs:    make([]JobView, 0, len(jobs)),
	}
	for _, j := range jobs {
		view.Jobs = append(view.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.coord.Health()
	code := http.StatusOK
	if h.Status == "draining" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WriteMetrics(w, s.coord.Stats())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.coord.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "fleet: unknown job %s", d.Short())
		return
	}
	tr, err := BuildTrace(job)
	if errors.Is(err, serve.ErrJobRunning) {
		writeError(w, http.StatusConflict, "fleet: job %s not finished; retry after completion", d.Short())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "fleet: build trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = tr.Write(w)
}
