package fleet

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// newWorker starts a real worker service (scheduler + HTTP API) and
// returns its base URL. runner, if non-nil, replaces serve.Execute.
func newWorker(t *testing.T, runner serve.Runner) (string, *httptest.Server) {
	t.Helper()
	sched, err := serve.NewScheduler(serve.Config{Shards: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Stop)
	ts := httptest.NewServer(serve.NewServer(sched))
	t.Cleanup(ts.Close)
	return ts.URL, ts
}

// newFleet builds a coordinator over the given workers, starts its
// heartbeats and waits until every worker has been seen alive.
func newFleet(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 20 * time.Millisecond
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	coord.Start()
	waitUsable(t, coord, len(cfg.Workers))
	return coord
}

func waitUsable(t *testing.T, coord *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for coord.registry.Usable() < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers usable after 5s", coord.registry.Usable(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// singleNodeResult runs the logical spec on one standalone scheduler
// and returns the raw result bytes — the byte-identity reference.
func singleNodeResult(t *testing.T, raw string) json.RawMessage {
	t.Helper()
	sched, err := serve.NewScheduler(serve.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Stop()
	job, _, err := sched.Submit(decodeSpec(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != serve.StateDone {
		t.Fatalf("single-node run failed: %s", st.Error)
	}
	return st.Result
}

// fleetResult submits the logical spec to the coordinator and waits for
// the merged result.
func fleetResult(t *testing.T, coord *Coordinator, raw string) (json.RawMessage, JobView) {
	t.Helper()
	job, _, err := coord.Submit(decodeSpec(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("fleet job did not finish within 2m")
	}
	st := job.Status()
	if st.State != serve.StateDone {
		t.Fatalf("fleet job failed: %s", st.Error)
	}
	return st.Result, st
}

// TestFleetByteIdenticalToSingleNode is the core acceptance test: each
// shardable kind, split across a fleet of three workers, merges to the
// exact bytes a single node produces.
func TestFleetByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	var urls []string
	for i := 0; i < 3; i++ {
		u, _ := newWorker(t, nil)
		urls = append(urls, u)
	}
	coord := newFleet(t, Config{Workers: urls, ShardsPerJob: 5})

	for name, raw := range map[string]string{
		"sweep":    `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":60,"berStar":0.02,"seed":7,"seeds":10,"eofOnly":true,"resetCounters":true}}`,
		"campaign": `{"campaign":{"protocol":"majorcan","nodes":4,"frames":1,"trials":12,"maxFaults":3,"seed":11}}`,
		"verify":   `{"verify":{"protocol":"majorcan","stations":3,"maxFlips":2,"positions":3}}`,
	} {
		t.Run(name, func(t *testing.T) {
			want := singleNodeResult(t, raw)
			got, st := fleetResult(t, coord, raw)
			if len(st.Shards) < 2 {
				t.Fatalf("job ran as %d shard(s); the fleet path was not exercised", len(st.Shards))
			}
			if string(got) != string(want) {
				t.Fatalf("merged result differs from single-node run\nfleet:  %.200s\nsingle: %.200s", got, want)
			}
		})
	}
}

// blockUntil returns a Runner that delegates to serve.Execute, except
// for specs match() selects, which block until release closes (or the
// job context ends).
func blockUntil(release <-chan struct{}, match func(*serve.JobSpec) bool) serve.Runner {
	return func(ctx context.Context, spec *serve.JobSpec, opt serve.ExecOptions) (json.RawMessage, error) {
		if match(spec) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return serve.Execute(ctx, spec, opt)
	}
}

// TestFleetWorkerLossReassignsShards kills a worker mid-job and checks
// the coordinator reassigns its shards and still merges byte-identical
// to a single-node run.
func TestFleetWorkerLossReassignsShards(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	raw := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":60,"berStar":0.02,"seed":7,"seeds":8,"eofOnly":true,"resetCounters":true}}`
	want := singleNodeResult(t, raw)

	// The doomed worker never finishes any sweep shard: its runner blocks
	// until the job context dies. Killing its connections forces the
	// coordinator to reassign everything it held.
	stuck := make(chan struct{}) // never closed
	doomedURL, doomed := newWorker(t, blockUntil(stuck, func(s *serve.JobSpec) bool { return s.Sweep != nil }))
	healthy1, _ := newWorker(t, nil)
	healthy2, _ := newWorker(t, nil)

	coord := newFleet(t, Config{
		Workers:      []string{doomedURL, healthy1, healthy2},
		ShardsPerJob: 4,
		ShardWait:    time.Minute,
	})

	job, _, err := coord.Submit(decodeSpec(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	// Let dispatch land on the doomed worker, then sever it. In-flight
	// blocking submits error out and the shards move elsewhere.
	time.Sleep(100 * time.Millisecond)
	doomed.CloseClientConnections()

	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("fleet job did not finish after worker loss")
	}
	st := job.Status()
	if st.State != serve.StateDone {
		t.Fatalf("fleet job failed after worker loss: %s", st.Error)
	}
	if string(st.Result) != string(want) {
		t.Fatalf("merged result after reassignment differs from single-node run")
	}
	if got := coord.Stats().Shards.Reassigned; got == 0 {
		t.Fatal("no shard was reassigned; the worker-loss path was not exercised")
	}
	for _, sh := range st.Shards {
		if sh.State != ShardDone {
			t.Fatalf("shard %d ended %s, want done", sh.Index, sh.State)
		}
	}
}

// TestFleetCoordinatorKillAndRecover stops a coordinator mid-job and
// verifies a successor on the same journal and spool resumes the shard
// table: finished shards are adopted from the spool without re-running,
// the missing shard re-dispatches, and the merge is byte-identical —
// no shard lost, none double-counted.
func TestFleetCoordinatorKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	raw := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":60,"berStar":0.02,"seed":7,"seeds":10,"eofOnly":true,"resetCounters":true}}`
	want := singleNodeResult(t, raw)

	// Gate the shard that starts at seed 12 (the second of two 5-seed
	// shards): it blocks until released, so the first coordinator dies
	// with exactly one shard spooled.
	release := make(chan struct{})
	gate := blockUntil(release, func(s *serve.JobSpec) bool {
		return s.Sweep != nil && s.Sweep.Seed == 12
	})
	var runMu sync.Mutex
	runs := map[int64]int{} // sweep start seed -> executions
	counting := func(ctx context.Context, spec *serve.JobSpec, opt serve.ExecOptions) (json.RawMessage, error) {
		if spec.Sweep != nil {
			runMu.Lock()
			runs[spec.Sweep.Seed]++
			runMu.Unlock()
		}
		return gate(ctx, spec, opt)
	}
	w1, _ := newWorker(t, counting)
	w2, _ := newWorker(t, counting)

	dir := t.TempDir()
	cfg := Config{
		Workers:      []string{w1, w2},
		ShardsPerJob: 2,
		Heartbeat:    20 * time.Millisecond,
		SpoolDir:     filepath.Join(dir, "spool"),
		JournalPath:  filepath.Join(dir, "journal.wal"),
	}

	first, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Start()
	waitUsable(t, first, 2)
	job, _, err := first.Submit(decodeSpec(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the ungated shard has finished and spooled.
	deadline := time.Now().Add(time.Minute)
	for {
		st := job.Status()
		done := 0
		for _, sh := range st.Shards {
			if sh.State == ShardDone {
				done++
			}
		}
		if done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard finished before the kill; states %+v", st.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill the coordinator mid-job. The abort must leave the journal
	// record pending, not failed.
	first.Stop()
	close(release)

	second, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(second.Stop)
	recovered, ok := second.Job(decodeDigest(t, raw))
	if !ok {
		t.Fatal("restarted coordinator did not replay the pending job from the journal")
	}
	second.Start()
	waitUsable(t, second, 2)

	select {
	case <-recovered.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("recovered fleet job did not finish")
	}
	st := recovered.Status()
	if st.State != serve.StateDone {
		t.Fatalf("recovered job failed: %s", st.Error)
	}
	if !st.Recovered {
		t.Fatal("job status does not mark the journal recovery")
	}
	if string(st.Result) != string(want) {
		t.Fatalf("recovered merge differs from single-node run")
	}
	adopted := 0
	for _, sh := range st.Shards {
		if sh.State != ShardDone {
			t.Fatalf("shard %d ended %s after recovery, want done (shard lost)", sh.Index, sh.State)
		}
		if sh.Cached {
			adopted++
		}
	}
	if adopted != 1 {
		t.Fatalf("%d shards adopted from the spool, want exactly 1", adopted)
	}
	// At-most-once effect: the shard that finished before the kill must
	// not have re-executed after recovery.
	runMu.Lock()
	defer runMu.Unlock()
	if runs[7] != 1 {
		t.Fatalf("pre-kill shard (seed 7) executed %d times, want 1 (double-counted)", runs[7])
	}
	if runs[12] == 0 {
		t.Fatal("gated shard (seed 12) never executed after recovery")
	}
}

func decodeDigest(t *testing.T, raw string) serve.Digest {
	t.Helper()
	_, d, err := decodeSpec(t, raw).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFleetBackpressureAndCoalescing covers the admission mirror: a
// second identical submit coalesces onto the in-flight job, a resubmit
// after completion is served from the merged-result cache, and a
// draining coordinator rejects.
func TestFleetBackpressureAndCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet integration test")
	}
	release := make(chan struct{})
	gate := blockUntil(release, func(s *serve.JobSpec) bool { return s.Sweep != nil })
	u, _ := newWorker(t, gate)
	coord := newFleet(t, Config{Workers: []string{u}, ShardsPerJob: 2})

	raw := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":7,"seeds":4,"eofOnly":true,"resetCounters":true}}`
	j1, adm, err := coord.Submit(decodeSpec(t, raw))
	if err != nil || adm != serve.AdmissionNew {
		t.Fatalf("first submit: adm=%v err=%v", adm, err)
	}
	j2, adm, err := coord.Submit(decodeSpec(t, raw))
	if err != nil || adm != serve.AdmissionCoalesced || j2 != j1 {
		t.Fatalf("identical in-flight submit: adm=%v err=%v same=%v", adm, err, j2 == j1)
	}
	close(release)
	select {
	case <-j1.Done():
	case <-time.After(time.Minute):
		t.Fatal("gated job did not finish after release")
	}
	_, adm, err = coord.Submit(decodeSpec(t, raw))
	if err != nil || adm != serve.AdmissionCached {
		t.Fatalf("resubmit after completion: adm=%v err=%v, want cached", adm, err)
	}

	go func() { _ = coord.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !coord.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	other := `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":99,"seeds":4,"eofOnly":true,"resetCounters":true}}`
	if _, _, err := coord.Submit(decodeSpec(t, other)); err != ErrDraining {
		t.Fatalf("draining submit error = %v, want ErrDraining", err)
	}
}
