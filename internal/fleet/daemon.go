package fleet

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

// DaemonMain is the body of `mcservd -coordinator`: flag parsing,
// coordinator construction (fleet journal recovery included), HTTP
// serving and graceful drain. Like the worker daemon it lives in the
// library so the crash-recovery harness can SIGKILL and restart the
// exact shipping code path.
//
// The returned int is the process exit code: 0 after a clean drain,
// nonzero on startup failure or an incomplete drain.
func DaemonMain(args []string) int {
	fs := flag.NewFlagSet("mcservd -coordinator", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8330", "listen address")
		workers       = fs.String("workers", "", "comma-separated worker base URLs (required)")
		shardsPerJob  = fs.Int("shards-per-job", 0, "target shards per logical job (0 = 2x workers)")
		assignRetries = fs.Int("assign-retries", 3, "dispatch attempts per shard before the job fails")
		shardWait     = fs.Duration("shard-wait", 10*time.Minute, "end-to-end budget per shard dispatch")
		heartbeat     = fs.Duration("heartbeat", time.Second, "worker heartbeat cadence")
		maxJobs       = fs.Int("max-jobs", 4, "concurrent logical jobs")
		cacheEntries  = fs.Int("cache", 256, "in-memory merged-result cache entries")
		spool         = fs.String("spool", "", "result spool directory (empty = memory only)")
		journalPath   = fs.String("journal", "auto", "fleet journal path (auto = <spool>/fleet-journal.wal, none = disabled)")
		drainTimeout  = fs.Duration("drain-timeout", 5*time.Minute, "graceful drain budget on SIGTERM")
		portFile      = fs.String("portfile", "", "write the bound listen address to this file once serving")
		logFormat     = fs.String("log-format", "text", "log output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcservd:", err)
		return 2
	}
	logger = logger.With("component", "coordinator")

	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "mcservd: -coordinator requires -workers (comma-separated base URLs)")
		return 2
	}

	resolve := func(v, def string) string {
		switch v {
		case "auto":
			if *spool == "" {
				return ""
			}
			return filepath.Join(*spool, def)
		case "none", "off":
			return ""
		}
		return v
	}

	coord, err := NewCoordinator(Config{
		Workers:       urls,
		ShardsPerJob:  *shardsPerJob,
		AssignRetries: *assignRetries,
		ShardWait:     *shardWait,
		Heartbeat:     *heartbeat,
		MaxJobs:       *maxJobs,
		CacheEntries:  *cacheEntries,
		SpoolDir:      *spool,
		JournalPath:   resolve(*journalPath, "fleet-journal.wal"),
		Logger:        logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		return 1
	}
	coord.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("portfile write failed", "path", *portFile, "err", err)
			return 1
		}
	}
	srv := &http.Server{Handler: NewServer(coord)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("listening",
		"addr", ln.Addr().String(), "workers", len(urls),
		"shards_per_job", coord.cfg.ShardsPerJob, "spool", *spool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	logger.Info("draining", "budget", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := coord.Drain(dctx)
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	st := coord.Stats()
	logger.Info("drained",
		"completed", st.Jobs.Completed, "failed", st.Jobs.Failed,
		"shards_dispatched", st.Shards.Dispatched, "reassigned", st.Shards.Reassigned,
		"recovered", st.Jobs.Recovered)
	if drainErr != nil {
		logger.Error("drain incomplete", "err", drainErr)
		return 1
	}
	return 0
}
