package fleet

import (
	"context"
	"sync"
	"time"

	"repro/internal/serve"
)

// WorkerState classifies what the registry last learned about a worker.
type WorkerState string

const (
	// WorkerHealthy: answering heartbeats, all durability stores intact.
	WorkerHealthy WorkerState = "healthy"
	// WorkerDegraded: answering, but some durability store has failed
	// over to memory — still dispatchable (results are re-derivable),
	// deprioritised below healthy peers.
	WorkerDegraded WorkerState = "degraded"
	// WorkerDraining: answered 503/draining; no new shards go there.
	WorkerDraining WorkerState = "draining"
	// WorkerDead: missed deadFailures consecutive heartbeats; shards
	// assigned there get reassigned. Dead workers keep being probed (with
	// backoff) and rejoin on the first successful heartbeat.
	WorkerDead WorkerState = "dead"
)

// deadFailures is how many consecutive heartbeat failures turn a worker
// dead. One lost datagram's worth of tolerance, not more: shards blocked
// on a dead worker are stalled work.
const deadFailures = 2

// probeBackoffMax caps the dead-worker probe backoff in heartbeat
// intervals: a long-dead worker is probed every 8th tick rather than
// hammered every tick while it restarts.
const probeBackoffMax = 8

// Worker is one registry entry: a worker mcservd and the state the
// heartbeat loop last observed on it.
type Worker struct {
	// URL is the worker's service root; it doubles as its identity.
	URL string
	// Client is the /v1 API client used for heartbeats and dispatch.
	Client *serve.Client

	mu        sync.Mutex
	state     WorkerState
	health    serve.HealthResponse
	depth     int // summed shard-queue depth from /v1/stats
	capacity  int // summed shard-queue capacity
	executed  uint64
	failures  int // consecutive heartbeat failures
	skip      int // probe-backoff ticks left while dead
	inflight  int // shards this coordinator currently has running there
	lastBeat  time.Time
	lastError string
}

// WorkerStatus is the serialisable registry view of one worker.
type WorkerStatus struct {
	URL       string      `json:"url"`
	State     WorkerState `json:"state"`
	Version   string      `json:"version,omitempty"`
	GoVersion string      `json:"goVersion,omitempty"`
	Depth     int         `json:"depth"`
	Capacity  int         `json:"capacity"`
	Executed  uint64      `json:"executed"`
	Inflight  int         `json:"inflight"`
	Error     string      `json:"error,omitempty"`
}

// Registry tracks the worker pool: it heartbeats every worker on a
// fixed cadence via GET /v1/healthz (state, durability, build identity)
// and GET /v1/stats (queue depths, for backpressure aggregation and
// least-loaded placement).
type Registry struct {
	workers   []*Worker // fixed after construction; per-worker state has its own lock
	heartbeat time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRegistry builds a registry over the given worker base URLs.
// Workers start dead — the first heartbeat round promotes the live
// ones, so nothing dispatches to a worker that was never seen.
func NewRegistry(urls []string, heartbeat time.Duration) *Registry {
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	r := &Registry{heartbeat: heartbeat, stop: make(chan struct{})}
	for _, u := range urls {
		r.workers = append(r.workers, &Worker{
			URL:    u,
			Client: serve.NewClient(u),
			state:  WorkerDead,
		})
	}
	return r
}

// Start launches the heartbeat loop. Stop joins it.
func (r *Registry) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		// An immediate first round, so a coordinator that starts after its
		// workers can dispatch without waiting out a full interval.
		r.beatAll()
		tick := time.NewTicker(r.heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.beatAll()
			}
		}
	}()
}

// Stop ends the heartbeat loop and waits for it.
func (r *Registry) Stop() {
	close(r.stop)
	r.wg.Wait()
}

// beatAll probes every worker once, honouring dead-worker backoff.
func (r *Registry) beatAll() {
	for _, w := range r.workers {
		w.mu.Lock()
		skip := w.state == WorkerDead && w.skip > 0
		if skip {
			w.skip--
		}
		w.mu.Unlock()
		if !skip {
			r.beat(w)
		}
	}
}

// beat probes one worker: healthz classifies it, stats (best-effort)
// updates its queue occupancy. All network I/O happens before the
// worker lock is taken.
func (r *Registry) beat(w *Worker) {
	ctx, cancel := context.WithTimeout(context.Background(), r.heartbeat)
	defer cancel()
	h, err := w.Client.Health(ctx)
	var st *serve.Stats
	if err == nil {
		// A stats failure alone does not kill the worker — healthz just
		// answered; the beat simply keeps the previous occupancy numbers.
		st, _ = w.Client.Stats(ctx)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.failures++
		w.lastError = err.Error()
		if w.failures >= deadFailures && w.state != WorkerDead {
			w.state = WorkerDead
			w.skip = 0
		} else if w.state == WorkerDead {
			// Exponential probe backoff while it stays dead. Workers
			// start in the dead state, so failures can still be below
			// the threshold here — clamp the exponent at zero.
			shift := w.failures - deadFailures
			if shift < 0 {
				shift = 0
			}
			backoff := 1 << shift
			if backoff > probeBackoffMax {
				backoff = probeBackoffMax
			}
			w.skip = backoff - 1
		}
		return
	}
	w.failures = 0
	w.skip = 0
	w.lastError = ""
	w.health = *h
	//lint:allow determinism -- registry heartbeat timestamps; not simulation state
	w.lastBeat = time.Now()
	switch {
	case h.Status == "draining":
		w.state = WorkerDraining
	case h.Degraded():
		w.state = WorkerDegraded
	default:
		w.state = WorkerHealthy
	}
	if st != nil {
		depth, capacity := 0, 0
		for _, sh := range st.Shards {
			depth += sh.Depth
			capacity += sh.Capacity
		}
		w.depth, w.capacity = depth, capacity
		w.executed = st.Jobs.Executed
	}
}

// Pick selects the dispatch target for a shard: the healthy worker with
// the fewest coordinator-inflight shards, falling back to degraded
// workers when no healthy one is available, skipping URLs in exclude.
// It reserves a slot on the returned worker (undo with Release). Nil
// means no worker is currently usable.
func (r *Registry) Pick(exclude map[string]bool) *Worker {
	pick := func(wantDegraded bool) *Worker {
		var best *Worker
		bestLoad := 0
		for _, w := range r.workers {
			if exclude[w.URL] {
				continue
			}
			w.mu.Lock()
			ok := (w.state == WorkerHealthy && !wantDegraded) || (w.state == WorkerDegraded && wantDegraded)
			load := w.inflight
			w.mu.Unlock()
			if !ok {
				continue
			}
			if best == nil || load < bestLoad {
				best, bestLoad = w, load
			}
		}
		return best
	}
	best := pick(false)
	if best == nil {
		best = pick(true)
	}
	if best != nil {
		best.mu.Lock()
		best.inflight++
		best.mu.Unlock()
	}
	return best
}

// Release returns a slot reserved by Pick.
func (r *Registry) Release(w *Worker) {
	w.mu.Lock()
	if w.inflight > 0 {
		w.inflight--
	}
	w.mu.Unlock()
}

// QueueHeadroom sums (capacity - depth) over dispatchable workers: the
// fleet's aggregate admission budget. Zero or negative means every
// usable queue is full and the coordinator should 429 new logical jobs.
func (r *Registry) QueueHeadroom() int {
	head := 0
	for _, w := range r.workers {
		w.mu.Lock()
		if w.state == WorkerHealthy || w.state == WorkerDegraded {
			head += w.capacity - w.depth - w.inflight
		}
		w.mu.Unlock()
	}
	return head
}

// Usable reports how many workers are currently dispatchable.
func (r *Registry) Usable() int {
	n := 0
	for _, w := range r.workers {
		w.mu.Lock()
		if w.state == WorkerHealthy || w.state == WorkerDegraded {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// Snapshot returns the serialisable registry state in construction
// order (stable across calls, so /v1/fleet output is diffable).
func (r *Registry) Snapshot() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		w.mu.Lock()
		out = append(out, WorkerStatus{
			URL:       w.URL,
			State:     w.state,
			Version:   w.health.Version,
			GoVersion: w.health.GoVersion,
			Depth:     w.depth,
			Capacity:  w.capacity,
			Executed:  w.executed,
			Inflight:  w.inflight,
			Error:     w.lastError,
		})
		w.mu.Unlock()
	}
	return out
}
