package fleet

import (
	"time"

	"repro/internal/obs/span"
	"repro/internal/serve"
)

// BuildTrace renders a finished fleet job's timeline as a Perfetto
// trace: the coordinator track group carries the root job span and the
// aggregate queue wait, and each shard gets its own track with its
// dispatch span plus the worker-reported queue/run sub-spans scaled
// into the dispatch window — the coordinator→worker causality in one
// picture. Timestamps are microseconds relative to submission.
func BuildTrace(j *FleetJob) (*span.Trace, error) {
	j.mu.Lock()
	state := j.state
	submitted, started, finished := j.submitted, j.started, j.finished
	type shardSnap struct {
		shard    Shard
		state    ShardState
		worker   string
		attempts int
		queuedMs int64
		runMs    int64
		start    time.Time
		end      time.Time
		cached   bool
		errMsg   string
	}
	shards := make([]shardSnap, 0, len(j.shards))
	for _, sr := range j.shards {
		shards = append(shards, shardSnap{
			shard: sr.shard, state: sr.state, worker: sr.worker,
			attempts: sr.attempts, queuedMs: sr.queuedMs, runMs: sr.runMs,
			start: sr.start, end: sr.end, cached: sr.cached, errMsg: sr.errMsg,
		})
	}
	cached := j.cachedHit
	recovered := j.recovered
	errMsg := j.errMsg
	j.mu.Unlock()
	if state != serve.StateDone && state != serve.StateFailed {
		return nil, serve.ErrJobRunning
	}

	t0 := submitted
	if t0.IsZero() {
		t0 = started
	}
	us := func(t time.Time) float64 {
		if t.IsZero() || t.Before(t0) {
			return 0
		}
		return float64(t.Sub(t0).Microseconds())
	}

	tr := &span.Trace{}
	tr.Process(0, "coordinator", 0)
	tr.Thread(0, 0, "job")

	rootArgs := map[string]any{
		"id":     j.plan.Digest.Short(),
		"kind":   string(j.plan.Spec.Kind),
		"state":  string(state),
		"shards": len(shards),
	}
	if cached {
		rootArgs["cached"] = true
	}
	if recovered {
		rootArgs["recovered"] = true
	}
	if errMsg != "" {
		rootArgs["error"] = errMsg
	}
	tr.Add(span.Span{
		Name: "fleet job", Cat: "fleet", Pid: 0, Tid: 0,
		Start: 0, Dur: us(finished), Args: rootArgs,
	})
	if !started.IsZero() && !submitted.IsZero() {
		tr.Add(span.Span{
			Name: "plan + queue", Cat: "fleet", Pid: 0, Tid: 0,
			Start: 0, Dur: us(started),
		})
	}

	for i, sn := range shards {
		tid := int64(i + 1)
		tr.Thread(0, tid, shardLabel(sn.shard.Index))
		args := map[string]any{
			"shard":    sn.shard.Index,
			"digest":   sn.shard.Digest.Short(),
			"state":    string(sn.state),
			"attempts": sn.attempts,
		}
		if sn.worker != "" {
			args["worker"] = workerShort(sn.worker)
		}
		if sn.cached {
			args["cached"] = true
		}
		if sn.errMsg != "" {
			args["error"] = sn.errMsg
		}
		if sn.cached || sn.start.IsZero() {
			// Spool-recovered shard: no dispatch window; a zero-width marker
			// at the job start records it was adopted, not run.
			tr.Add(span.Span{
				Name: "dispatch (spooled)", Cat: "fleet", Pid: 0, Tid: tid,
				Start: us(started), Dur: 0, Args: args,
			})
			continue
		}
		dispatchStart, dispatchEnd := us(sn.start), us(sn.end)
		tr.Add(span.Span{
			Name: "dispatch", Cat: "fleet", Pid: 0, Tid: tid,
			Start: dispatchStart, Dur: dispatchEnd - dispatchStart, Args: args,
		})
		// Worker-side phases, anchored to the end of the dispatch window:
		// the worker finished running the shard right before the blocking
		// submit returned, so [end-run, end] approximates execution and the
		// queue wait sits immediately before it. Millisecond-grain numbers
		// from JobStatus, placed on the coordinator's clock.
		runUs := float64(sn.runMs) * 1000
		queuedUs := float64(sn.queuedMs) * 1000
		window := dispatchEnd - dispatchStart
		if runUs+queuedUs > window {
			// A reassigned shard's dispatch window can be shorter than the
			// successful attempt's worker-side numbers suggest; clip rather
			// than overhang the track.
			scale := window / (runUs + queuedUs)
			runUs *= scale
			queuedUs *= scale
		}
		if runUs > 0 {
			tr.Add(span.Span{
				Name: "worker run", Cat: "worker", Pid: 0, Tid: tid,
				Start: dispatchEnd - runUs, Dur: runUs,
				Args: map[string]any{"runMs": sn.runMs},
			})
		}
		if queuedUs > 0 {
			tr.Add(span.Span{
				Name: "worker queue", Cat: "worker", Pid: 0, Tid: tid,
				Start: dispatchEnd - runUs - queuedUs, Dur: queuedUs,
				Args: map[string]any{"queuedMs": sn.queuedMs},
			})
		}
	}

	if !finished.IsZero() {
		// The merge itself is microseconds of pure CPU; a zero-width marker
		// records where it happened.
		tr.Add(span.Span{
			Name: "merge", Cat: "fleet", Pid: 0, Tid: 0,
			Start: us(finished), Dur: 0,
			Args: map[string]any{"shards": len(shards)},
		})
	}
	return tr, nil
}
