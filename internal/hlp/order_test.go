package hlp

import (
	"testing"

	"repro/internal/abcheck"
	"repro/internal/core"
	"repro/internal/errmodel"
)

// EDCAN provides Reliable Broadcast but not Total Order (the paper,
// Sections 2.2 and 4). Construct the inversion deterministically:
//
//   - Node 3 broadcasts A; the Fig. 3a disturbance pattern makes the X set
//     (nodes 1, 2) miss A entirely while nodes 0 and 4 deliver it, with the
//     transmitter believing the transmission succeeded.
//   - Node 0 has a message C queued whose identifier beats the EDCAN
//     replicas of A in arbitration (origin 0 < origin 3).
//   - Nodes 0 and 4 deliver A then C; nodes 1 and 2 deliver C then the
//     replica of A: opposite orders.
func TestEDCANTotalOrderViolation(t *testing.T) {
	policy := core.NewStandard()
	s := MustStack(5, policy, Options{Protocol: EDCAN})
	xSet := []int{1, 2}
	tx := 3
	s.Cluster.Net.AddDisturber(errmodel.NewScript(
		errmodel.AtEOFBit(xSet, policy.EOFBits()-1, 1),
		errmodel.AtEOFBit([]int{tx}, policy.EOFBits(), 1),
	))

	keyA, err := s.Procs[tx].Broadcast([]byte{0xA})
	if err != nil {
		t.Fatal(err)
	}
	// Let A's frame start, then queue C at node 0 so it is pending when
	// A's EOF episode ends.
	for i := 0; i < 40; i++ {
		s.Step()
	}
	keyC, err := s.Procs[0].Broadcast([]byte{0xC})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilQuiet(60000) {
		t.Fatal("stack did not quiesce")
	}

	r := s.Check()
	if !r.Satisfies(abcheck.Agreement) {
		t.Fatalf("EDCAN must keep Agreement:\n%s", r.Summary())
	}
	if !r.Satisfies(abcheck.AtMostOnce) {
		t.Fatalf("EDCAN must deduplicate:\n%s", r.Summary())
	}
	if r.Satisfies(abcheck.TotalOrder) {
		for i, p := range s.Procs {
			t.Logf("proc %d delivered: %v", i, p.Delivered())
		}
		t.Error("this scenario must violate Total Order under EDCAN")
	}

	// The concrete orders: node 4 saw A before C, node 1 saw C before A.
	order := func(proc int) []abcheck.MsgKey {
		var keys []abcheck.MsgKey
		for _, d := range s.Procs[proc].Delivered() {
			keys = append(keys, d.Key)
		}
		return keys
	}
	if o := order(4); len(o) != 2 || o[0] != keyA || o[1] != keyC {
		t.Errorf("node 4 order = %v, want [A C]", o)
	}
	if o := order(1); len(o) != 2 || o[0] != keyC || o[1] != keyA {
		t.Errorf("node 1 order = %v, want [C A]", o)
	}
}

// TOTCAN provides Total Order in failure-free operation even under heavy
// interleaving of broadcasts from different origins.
func TestTOTCANTotalOrderUnderInterleaving(t *testing.T) {
	s := MustStack(4, core.NewStandard(), Options{Protocol: TOTCAN})
	for round := 0; round < 3; round++ {
		for p := 0; p < 4; p++ {
			if _, err := s.Procs[p].Broadcast([]byte{byte(round), byte(p)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !s.RunUntilQuiet(120000) {
		t.Fatal("stack did not quiesce")
	}
	r := s.Check()
	if !r.AtomicBroadcast() {
		t.Errorf("failure-free TOTCAN must satisfy all properties:\n%s", r.Summary())
	}
	for i, p := range s.Procs {
		if got := len(p.Delivered()); got != 12 {
			t.Errorf("process %d delivered %d messages, want 12", i, got)
		}
	}
}

// The headline result: the raw controller-level broadcast over MajorCAN
// satisfies all Atomic Broadcast properties in the very scenario that
// defeats standard CAN, MinorCAN, RELCAN and TOTCAN — with zero
// higher-level traffic.
func TestRawOverMajorCANSatisfiesAtomicBroadcast(t *testing.T) {
	policy := core.MustMajorCAN(5)
	s := MustStack(5, policy, Options{Protocol: RawCAN})
	xSet := []int{1, 2}
	s.Cluster.Net.AddDisturber(fig3aDisturbance(xSet, 0, policy.EOFBits()))
	if _, err := s.Procs[0].Broadcast([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	// A second broadcast to give total order something to check.
	for i := 0; i < 40; i++ {
		s.Step()
	}
	if _, err := s.Procs[4].Broadcast([]byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilQuiet(60000) {
		t.Fatal("stack did not quiesce")
	}
	r := s.Check()
	if !r.AtomicBroadcast() {
		t.Errorf("MajorCAN must provide Atomic Broadcast at the controller level:\n%s", r.Summary())
	}
}

// The same raw stack over standard CAN fails Agreement under the same
// disturbances — the contrast that motivates the whole paper.
func TestRawOverStandardCANFailsAgreement(t *testing.T) {
	policy := core.NewStandard()
	s := MustStack(5, policy, Options{Protocol: RawCAN})
	s.Cluster.Net.AddDisturber(fig3aDisturbance([]int{1, 2}, 0, policy.EOFBits()))
	if _, err := s.Procs[0].Broadcast([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilQuiet(30000) {
		t.Fatal("stack did not quiesce")
	}
	if r := s.Check(); r.Satisfies(abcheck.Agreement) {
		t.Error("standard CAN must violate Agreement in the new scenario")
	}
}
