package hlp

import (
	"fmt"

	"repro/internal/abcheck"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// Stack couples a cluster of CAN controllers with one protocol process per
// station.
type Stack struct {
	Cluster *sim.Cluster
	Procs   []*Process
	opts    Options
}

// NewStack builds n stations running the given protocol over controllers
// with the given end-of-frame policy.
func NewStack(n int, policy node.EOFPolicy, opts Options) (*Stack, error) {
	if opts.Protocol == 0 {
		return nil, fmt.Errorf("hlp: no protocol selected")
	}
	s := &Stack{opts: opts, Procs: make([]*Process, n)}
	for i := range s.Procs {
		s.Procs[i] = newProcess(i, opts)
	}
	cluster, err := sim.NewCluster(sim.ClusterOptions{
		Nodes:  n,
		Policy: policy,
		NodeHooks: func(station int) node.Hooks {
			return node.Hooks{
				OnDeliver: func(slot uint64, f *frame.Frame) {
					s.Procs[station].onDeliver(slot, f)
				},
				OnTxSuccess: func(slot uint64, f *frame.Frame) {
					s.Procs[station].onTxSuccess(slot, f)
				},
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.Cluster = cluster
	for i, p := range s.Procs {
		p.ctrl = cluster.Nodes[i]
	}
	return s, nil
}

// MustStack is NewStack panicking on error, for tests and examples.
func MustStack(n int, policy node.EOFPolicy, opts Options) *Stack {
	s, err := NewStack(n, policy, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Step advances the bus one bit slot and runs the process timers.
func (s *Stack) Step() {
	s.Cluster.Net.Step()
	slot := s.Cluster.Net.Slot()
	for _, p := range s.Procs {
		if !p.ctrl.Crashed() {
			p.Tick(slot)
		}
	}
}

// Quiet reports whether the controllers are idle and no process timer is
// pending.
func (s *Stack) Quiet() bool {
	if !s.Cluster.Quiet() {
		return false
	}
	for _, p := range s.Procs {
		if p.ctrl.Crashed() {
			continue
		}
		if p.Pending() {
			return false
		}
	}
	return true
}

// RunUntilQuiet steps until quiescence or the slot budget is exhausted and
// reports whether quiescence was reached.
func (s *Stack) RunUntilQuiet(maxSlots int) bool {
	for i := 0; i < maxSlots; i++ {
		if s.Quiet() {
			for j := 0; j < 4; j++ {
				s.Step()
			}
			return true
		}
		s.Step()
	}
	return s.Quiet()
}

// Trace assembles the abcheck trace of the run. Crashed or disconnected
// stations are marked faulty.
func (s *Stack) Trace() abcheck.Trace {
	tr := abcheck.Trace{
		Nodes:  len(s.Procs),
		Faulty: make(map[int]bool),
	}
	for i, p := range s.Procs {
		tr.Broadcasts = append(tr.Broadcasts, p.Broadcasts()...)
		for _, d := range p.Delivered() {
			tr.Deliveries = append(tr.Deliveries, abcheck.Delivery{Node: i, Key: d.Key, Slot: d.Slot})
		}
		mode := p.ctrl.Mode()
		if p.ctrl.Crashed() || mode == node.BusOff || mode == node.SwitchedOff {
			tr.Faulty[i] = true
		}
	}
	return tr
}

// Check runs the Atomic Broadcast checker on the stack's trace.
func (s *Stack) Check() *abcheck.Report {
	return abcheck.Check(s.Trace())
}
