package hlp

import (
	"fmt"
	"sort"

	"repro/internal/abcheck"
	"repro/internal/frame"
	"repro/internal/node"
)

// Protocol selects the broadcast protocol a process runs.
type Protocol uint8

const (
	// RawCAN delivers controller deliveries directly (the baseline with all
	// of CAN's inconsistencies visible at the application).
	RawCAN Protocol = iota + 1
	// EDCAN (error detection based): every receiver retransmits each
	// message once after reception, masking transmitter failures at the
	// cost of at least one extra transmission per frame. Reliable
	// broadcast, no total order.
	EDCAN
	// RELCAN: the transmitter sends a CONFIRM after the data frame; only if
	// the CONFIRM times out do the receivers retransmit the data.
	RELCAN
	// TOTCAN: receivers queue each message; the transmitter's ACCEPT fixes
	// its position (deliveries happen in ACCEPT order); a missing ACCEPT
	// drops the message.
	TOTCAN
)

func (p Protocol) String() string {
	switch p {
	case RawCAN:
		return "RawCAN"
	case EDCAN:
		return "EDCAN"
	case RELCAN:
		return "RELCAN"
	case TOTCAN:
		return "TOTCAN"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Options configures the processes of a stack.
type Options struct {
	// Protocol is the broadcast protocol.
	Protocol Protocol
	// ConfirmTimeout is RELCAN's timeout (bit slots after data delivery)
	// for the CONFIRM message. Default 600.
	ConfirmTimeout uint64
	// AcceptTimeout is TOTCAN's timeout (bit slots after data delivery) for
	// the ACCEPT message. Default 600.
	AcceptTimeout uint64
}

func (o *Options) confirmTimeout() uint64 {
	if o.ConfirmTimeout == 0 {
		return 600
	}
	return o.ConfirmTimeout
}

func (o *Options) acceptTimeout() uint64 {
	if o.AcceptTimeout == 0 {
		return 600
	}
	return o.AcceptTimeout
}

// DeliveredMsg is a message delivered by a process to the application.
type DeliveredMsg struct {
	Key     abcheck.MsgKey
	Payload []byte
	Slot    uint64
}

// timer is a pending RELCAN/TOTCAN timeout.
type timer struct {
	deadline uint64
	data     *frame.Frame // the original data frame (for RELCAN retransmission)
}

// Process is one station's protocol entity.
type Process struct {
	id   int
	ctrl *node.Controller
	opts Options
	now  uint64

	seq        uint32
	broadcasts []abcheck.Broadcast
	delivered  []DeliveredMsg

	seen    map[abcheck.MsgKey]bool // delivered (or queued, for TOTCAN)
	relayed map[abcheck.MsgKey]bool // EDCAN/RELCAN: already retransmitted
	timers  map[abcheck.MsgKey]*timer

	queue    []abcheck.MsgKey // TOTCAN pending queue
	payloads map[abcheck.MsgKey][]byte
}

func newProcess(id int, opts Options) *Process {
	return &Process{
		id:       id,
		opts:     opts,
		seen:     make(map[abcheck.MsgKey]bool),
		relayed:  make(map[abcheck.MsgKey]bool),
		timers:   make(map[abcheck.MsgKey]*timer),
		payloads: make(map[abcheck.MsgKey][]byte),
	}
}

// ID returns the process identifier (its station index).
func (p *Process) ID() int { return p.id }

// Delivered returns the messages delivered so far, in delivery order.
func (p *Process) Delivered() []DeliveredMsg {
	return append([]DeliveredMsg(nil), p.delivered...)
}

// Broadcasts returns the messages this process broadcast.
func (p *Process) Broadcasts() []abcheck.Broadcast {
	return append([]abcheck.Broadcast(nil), p.broadcasts...)
}

// Pending reports whether the process still waits on timers.
func (p *Process) Pending() bool { return len(p.timers) > 0 }

// Broadcast hands a message to the broadcast service.
func (p *Process) Broadcast(payload []byte) (abcheck.MsgKey, error) {
	p.seq++
	key := abcheck.MsgKey{Origin: p.id, Seq: p.seq}
	f, err := encode(Message{Kind: KindData, Key: key, Payload: payload})
	if err != nil {
		return abcheck.MsgKey{}, err
	}
	if err := p.ctrl.Enqueue(f); err != nil {
		return abcheck.MsgKey{}, err
	}
	p.broadcasts = append(p.broadcasts, abcheck.Broadcast{Key: key, Slot: p.now})
	p.seen[key] = true // never deliver nor relay an own message
	p.payloads[key] = append([]byte(nil), payload...)
	return key, nil
}

func (p *Process) deliver(key abcheck.MsgKey, payload []byte, slot uint64) {
	p.delivered = append(p.delivered, DeliveredMsg{Key: key, Payload: payload, Slot: slot})
}

// onDeliver handles a frame delivered by the controller.
func (p *Process) onDeliver(slot uint64, f *frame.Frame) {
	m, ok := decode(f)
	if !ok {
		return
	}
	switch p.opts.Protocol {
	case RawCAN:
		if m.Kind == KindData {
			// Raw CAN passes every copy through: duplicates and omissions
			// are visible to the application.
			p.deliver(m.Key, m.Payload, slot)
		}
	case EDCAN:
		p.onDeliverEDCAN(slot, m, f)
	case RELCAN:
		p.onDeliverRELCAN(slot, m, f)
	case TOTCAN:
		p.onDeliverTOTCAN(slot, m)
	}
}

func (p *Process) onDeliverEDCAN(slot uint64, m Message, f *frame.Frame) {
	if m.Kind != KindData {
		return
	}
	if m.Key.Origin == p.id {
		// A replica of an own message coming back: the origin already
		// transmitted the original and must not relay again.
		return
	}
	if !p.seen[m.Key] {
		p.seen[m.Key] = true
		p.deliver(m.Key, m.Payload, slot)
	}
	// Every receiver retransmits the message once after reception; the
	// replica is bit-identical so concurrent replicas merge on the bus.
	if !p.relayed[m.Key] {
		p.relayed[m.Key] = true
		_ = p.ctrl.Enqueue(f)
	}
}

func (p *Process) onDeliverRELCAN(slot uint64, m Message, f *frame.Frame) {
	switch m.Kind {
	case KindData:
		if !p.seen[m.Key] {
			p.seen[m.Key] = true
			p.deliver(m.Key, m.Payload, slot)
			// Wait for the transmitter's CONFIRM; retransmit on timeout.
			p.timers[m.Key] = &timer{deadline: slot + p.opts.confirmTimeout(), data: f.Clone()}
		}
	case KindConfirm:
		delete(p.timers, m.Key)
	}
}

func (p *Process) onDeliverTOTCAN(slot uint64, m Message) {
	switch m.Kind {
	case KindData:
		if !p.seen[m.Key] {
			p.seen[m.Key] = true
			p.queue = append(p.queue, m.Key)
			p.payloads[m.Key] = m.Payload
			p.timers[m.Key] = &timer{deadline: slot + p.opts.acceptTimeout()}
		}
	case KindAccept:
		for i, k := range p.queue {
			if k == m.Key {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				delete(p.timers, m.Key)
				p.deliver(m.Key, p.payloads[m.Key], slot)
				return
			}
		}
		// ACCEPT for a message we never received (e.g. the paper's new
		// scenario): nothing to fix — the message is lost here.
	}
}

// onTxSuccess handles the controller's confirmation of an own
// transmission.
func (p *Process) onTxSuccess(slot uint64, f *frame.Frame) {
	m, ok := decode(f)
	if !ok {
		return
	}
	switch p.opts.Protocol {
	case RawCAN, EDCAN:
		if m.Kind == KindData && m.Key.Origin == p.id && !p.deliveredLocally(m.Key) {
			p.deliver(m.Key, m.Payload, slot) // local delivery of the own message
		}
	case RELCAN:
		if m.Kind == KindData && m.Key.Origin == p.id {
			if !p.deliveredLocally(m.Key) {
				p.deliver(m.Key, m.Payload, slot)
			}
			confirm, err := encode(Message{Kind: KindConfirm, Key: m.Key})
			if err == nil {
				_ = p.ctrl.Enqueue(confirm)
			}
		}
	case TOTCAN:
		switch {
		case m.Kind == KindData && m.Key.Origin == p.id:
			accept, err := encode(Message{Kind: KindAccept, Key: m.Key})
			if err == nil {
				_ = p.ctrl.Enqueue(accept)
			}
		case m.Kind == KindAccept && m.Key.Origin == p.id:
			if !p.deliveredLocally(m.Key) {
				p.deliver(m.Key, p.payloads[m.Key], slot) // own message ordered
			}
		}
	}
}

func (p *Process) deliveredLocally(key abcheck.MsgKey) bool {
	for _, d := range p.delivered {
		if d.Key == key {
			return true
		}
	}
	return false
}

// Tick advances the process clock and fires expired timers.
func (p *Process) Tick(slot uint64) {
	p.now = slot
	if len(p.timers) == 0 {
		return
	}
	expired := make([]abcheck.MsgKey, 0, 1)
	for key, tm := range p.timers {
		if slot >= tm.deadline {
			expired = append(expired, key)
		}
	}
	// Deterministic firing order.
	sort.Slice(expired, func(i, j int) bool {
		a, b := expired[i], expired[j]
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	for _, key := range expired {
		tm := p.timers[key]
		delete(p.timers, key)
		switch p.opts.Protocol {
		case RELCAN:
			// CONFIRM missing: assume transmitter failure and take over the
			// retransmission of the main message.
			if !p.relayed[key] && tm.data != nil {
				p.relayed[key] = true
				_ = p.ctrl.Enqueue(tm.data)
			}
		case TOTCAN:
			// ACCEPT missing: remove the message from the queue.
			for i, k := range p.queue {
				if k == key {
					p.queue = append(p.queue[:i], p.queue[i+1:]...)
					break
				}
			}
		}
	}
}
