package hlp

import (
	"testing"

	"repro/internal/abcheck"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/sim"
)

func allProtocols() []Protocol {
	return []Protocol{RawCAN, EDCAN, RELCAN, TOTCAN}
}

// Error-free runs: every protocol must achieve reliable delivery; TOTCAN
// must provide total order.
func TestErrorFreeAllProtocols(t *testing.T) {
	for _, proto := range allProtocols() {
		t.Run(proto.String(), func(t *testing.T) {
			s := MustStack(4, core.NewStandard(), Options{Protocol: proto})
			if _, err := s.Procs[0].Broadcast([]byte{1}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Procs[1].Broadcast([]byte{2}); err != nil {
				t.Fatal(err)
			}
			if !s.RunUntilQuiet(20000) {
				t.Fatal("stack did not quiesce")
			}
			r := s.Check()
			if !r.AtomicBroadcast() {
				t.Errorf("error-free run must satisfy all properties:\n%s", r.Summary())
			}
			for i, p := range s.Procs {
				if got := len(p.Delivered()); got != 2 {
					t.Errorf("process %d delivered %d messages, want 2", i, got)
				}
			}
		})
	}
}

// fig3aDisturbance installs the paper's new-scenario disturbance pattern
// for the first frame on the bus: the X set misses sees an error at the
// last but one EOF bit, the transmitter is blinded at its last EOF bit.
func fig3aDisturbance(xSet []int, tx int, eofBits int) *errmodel.Script {
	return errmodel.NewScript(
		errmodel.AtEOFBit(xSet, eofBits-1, 1),
		errmodel.AtEOFBit([]int{tx}, eofBits, 1),
	)
}

// The paper, Section 4: in the new inconsistency scenarios RELCAN and
// TOTCAN do not work — "they only perform recovery actions in case the
// transmitter fails, and inconsistencies can appear even if the
// transmitter does not fail". Only EDCAN operates properly.
func TestNewScenarioPerProtocol(t *testing.T) {
	xSet := []int{1, 2}
	tests := []struct {
		proto         Protocol
		wantAgreement bool
	}{
		{RawCAN, false},
		{RELCAN, false},
		{TOTCAN, false},
		{EDCAN, true},
	}
	for _, tt := range tests {
		t.Run(tt.proto.String(), func(t *testing.T) {
			policy := core.NewStandard()
			s := MustStack(5, policy, Options{Protocol: tt.proto})
			s.Cluster.Net.AddDisturber(fig3aDisturbance(xSet, 0, policy.EOFBits()))
			if _, err := s.Procs[0].Broadcast([]byte{0xAA}); err != nil {
				t.Fatal(err)
			}
			if !s.RunUntilQuiet(40000) {
				t.Fatal("stack did not quiesce")
			}
			r := s.Check()
			if got := r.Satisfies(abcheck.Agreement); got != tt.wantAgreement {
				t.Errorf("%s agreement = %v, want %v\n%s", tt.proto, got, tt.wantAgreement, r.Summary())
			}
			if tt.proto == EDCAN {
				// All four receivers must end up with the message.
				for i := 1; i < 5; i++ {
					if len(s.Procs[i].Delivered()) != 1 {
						t.Errorf("EDCAN: process %d delivered %d, want 1", i, len(s.Procs[i].Delivered()))
					}
				}
			}
		})
	}
}

// The old scenario (Fig. 1c, transmitter crashes before retransmission):
// RELCAN and EDCAN recover (the receivers retransmit); TOTCAN stays
// consistent by dropping the unconfirmed message everywhere.
func TestOldScenarioPerProtocol(t *testing.T) {
	xSet := []int{1, 2}
	for _, tt := range []struct {
		proto        Protocol
		wantDeliverX bool // X must eventually get the message
	}{
		{RELCAN, true},
		{EDCAN, true},
		{TOTCAN, false}, // dropped everywhere: consistent omission
	} {
		t.Run(tt.proto.String(), func(t *testing.T) {
			policy := core.NewStandard()
			s := MustStack(5, policy, Options{Protocol: tt.proto})
			s.Cluster.Net.AddDisturber(errmodel.NewScript(
				errmodel.AtEOFBit(xSet, policy.EOFBits()-1, 1),
			))
			s.Cluster.Net.AddProbe(&sim.CrashOnPhase{
				Ctrl:    s.Cluster.Nodes[0],
				Station: 0,
				Phase:   bus.PhaseErrorFlag,
			})
			if _, err := s.Procs[0].Broadcast([]byte{0xBB}); err != nil {
				t.Fatal(err)
			}
			if !s.RunUntilQuiet(40000) {
				t.Fatal("stack did not quiesce")
			}
			r := s.Check()
			if !r.Satisfies(abcheck.Agreement) {
				t.Errorf("%s must keep Agreement in the old scenario:\n%s", tt.proto, r.Summary())
			}
			gotX := len(s.Procs[1].Delivered()) > 0
			if gotX != tt.wantDeliverX {
				t.Errorf("%s: X delivered=%v, want %v", tt.proto, gotX, tt.wantDeliverX)
			}
		})
	}
}
