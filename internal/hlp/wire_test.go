package hlp

import (
	"math/rand"
	"testing"

	"repro/internal/abcheck"
	"repro/internal/frame"
)

func TestWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	kinds := []Kind{KindData, KindConfirm, KindAccept}
	for trial := 0; trial < 500; trial++ {
		m := Message{
			Kind: kinds[r.Intn(len(kinds))],
			Key: abcheck.MsgKey{
				Origin: r.Intn(256),
				Seq:    r.Uint32(),
			},
			Payload: make([]byte, r.Intn(maxUserPayload+1)),
		}
		r.Read(m.Payload)
		f, err := encode(m)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: encoded frame invalid: %v", trial, err)
		}
		got, ok := decode(f)
		if !ok {
			t.Fatalf("trial %d: decode failed", trial)
		}
		if got.Kind != m.Kind || got.Key != m.Key {
			t.Fatalf("trial %d: got %+v, want %+v", trial, got, m)
		}
		if string(got.Payload) != string(m.Payload) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}

func TestWireControlMessagesOutrankData(t *testing.T) {
	data, err := encode(Message{Kind: KindData, Key: abcheck.MsgKey{Origin: 0, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindConfirm, KindAccept} {
		ctrl, err := encode(Message{Kind: kind, Key: abcheck.MsgKey{Origin: 255, Seq: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.ID >= data.ID {
			t.Errorf("%s id %#x must beat data id %#x in arbitration", kind, ctrl.ID, data.ID)
		}
	}
}

func TestWireRejectsOversizedPayload(t *testing.T) {
	_, err := encode(Message{
		Kind:    KindData,
		Key:     abcheck.MsgKey{Origin: 1, Seq: 1},
		Payload: make([]byte, maxUserPayload+1),
	})
	if err == nil {
		t.Error("oversized payload must be rejected")
	}
	if _, err := encode(Message{Kind: KindData, Key: abcheck.MsgKey{Origin: 300}}); err == nil {
		t.Error("out-of-range origin must be rejected")
	}
}

func TestDecodeRejectsForeignFrames(t *testing.T) {
	if _, ok := decode(&frame.Frame{ID: 1, Remote: true, DLC: 8}); ok {
		t.Error("remote frames are not protocol messages")
	}
	if _, ok := decode(&frame.Frame{ID: 1, Data: []byte{1, 2}}); ok {
		t.Error("short frames are not protocol messages")
	}
	if _, ok := decode(&frame.Frame{ID: 1, Data: []byte{99, 0, 0, 0, 0, 1}}); ok {
		t.Error("unknown kinds are not protocol messages")
	}
}

func TestProtocolAndKindStrings(t *testing.T) {
	for p, want := range map[Protocol]string{
		RawCAN: "RawCAN", EDCAN: "EDCAN", RELCAN: "RELCAN", TOTCAN: "TOTCAN",
	} {
		if p.String() != want {
			t.Errorf("Protocol(%d) = %q, want %q", p, p.String(), want)
		}
	}
	for k, want := range map[Kind]string{
		KindData: "DATA", KindConfirm: "CONFIRM", KindAccept: "ACCEPT",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
