package hlp

import (
	"testing"

	"repro/internal/core"
)

// busFrameCost measures how many frames actually cross the bus per
// application message under a protocol in the error-free case: the paper's
// bandwidth argument ("any of the higher level protocols implies the
// transmission of more than a CAN frame per message") made concrete.
func busFrameCost(t *testing.T, proto Protocol, messages int) float64 {
	t.Helper()
	s := MustStack(5, core.NewStandard(), Options{Protocol: proto})
	for i := 0; i < messages; i++ {
		if _, err := s.Procs[i%5].Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.RunUntilQuiet(400000) {
		t.Fatal("stack did not quiesce")
	}
	var tx uint64
	for _, n := range s.Cluster.Nodes {
		tx += n.TxSuccesses()
	}
	return float64(tx) / float64(messages)
}

// The measured per-message frame costs against the paper's claims. EDCAN's
// replicas are bit-identical, so replicas queued at several receivers can
// merge on the bus; the measured cost is therefore BETWEEN 2 (all merge)
// and N (none merge), still at least twice raw CAN.
func TestBusFrameCostPerProtocol(t *testing.T) {
	const messages = 10
	raw := busFrameCost(t, RawCAN, messages)
	if raw != 1 {
		t.Errorf("raw CAN cost = %.2f frames/message, want exactly 1", raw)
	}
	rel := busFrameCost(t, RELCAN, messages)
	if rel != 2 {
		t.Errorf("RELCAN cost = %.2f frames/message, want exactly 2 (data + CONFIRM)", rel)
	}
	tot := busFrameCost(t, TOTCAN, messages)
	if tot != 2 {
		t.Errorf("TOTCAN cost = %.2f frames/message, want exactly 2 (data + ACCEPT)", tot)
	}
	ed := busFrameCost(t, EDCAN, messages)
	if ed < 2 {
		t.Errorf("EDCAN cost = %.2f frames/message, want >= 2 (each frame transmitted at least twice)", ed)
	}
	if ed > 5 {
		t.Errorf("EDCAN cost = %.2f frames/message, want <= N (replica merging)", ed)
	}
	t.Logf("measured frames/message: raw=%.2f EDCAN=%.2f RELCAN=%.2f TOTCAN=%.2f", raw, ed, rel, tot)
}
