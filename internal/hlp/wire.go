// Package hlp implements the higher-level broadcast protocols of Rufino et
// al. (FTCS'98) that the MajorCAN paper compares against: EDCAN, RELCAN and
// TOTCAN, plus the raw CAN baseline. They run as processes on top of the
// simulated CAN controllers.
//
// The paper's Section 4 claim — that in the new inconsistency scenarios
// only EDCAN still operates properly (and even EDCAN provides no total
// order) — is demonstrated by this package's tests.
package hlp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/abcheck"
	"repro/internal/frame"
)

// Kind tags the protocol messages on the wire.
type Kind uint8

const (
	// KindData is an application message (or an EDCAN/RELCAN replica of
	// one: replicas are bit-identical to the original frame so that
	// concurrent replicas merge on the bus).
	KindData Kind = iota + 1
	// KindConfirm is RELCAN's CONFIRM control message.
	KindConfirm
	// KindAccept is TOTCAN's ACCEPT control message.
	KindAccept
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindConfirm:
		return "CONFIRM"
	case KindAccept:
		return "ACCEPT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CAN identifier layout: control messages use a higher-priority block than
// data so that CONFIRM/ACCEPT frames win arbitration against queued data.
const (
	ctrlIDBase = 0x100
	dataIDBase = 0x200
)

// Payload layout: kind(1) origin(1) seq(4) user-payload(0..2).
const headerLen = 6

// maxUserPayload is the user payload capacity left after the header.
const maxUserPayload = frame.MaxDataLen - headerLen

// Message is a decoded protocol message.
type Message struct {
	Kind    Kind
	Key     abcheck.MsgKey
	Payload []byte
}

// encode builds the CAN frame for a protocol message.
func encode(m Message) (*frame.Frame, error) {
	if len(m.Payload) > maxUserPayload {
		return nil, fmt.Errorf("hlp: payload %d bytes exceeds capacity %d", len(m.Payload), maxUserPayload)
	}
	if m.Key.Origin < 0 || m.Key.Origin > 0xFF {
		return nil, fmt.Errorf("hlp: origin %d out of range", m.Key.Origin)
	}
	data := make([]byte, headerLen+len(m.Payload))
	data[0] = byte(m.Kind)
	data[1] = byte(m.Key.Origin)
	binary.BigEndian.PutUint32(data[2:6], m.Key.Seq)
	copy(data[headerLen:], m.Payload)
	id := uint32(dataIDBase)
	if m.Kind != KindData {
		id = ctrlIDBase
	}
	id |= uint32(m.Key.Origin)
	return &frame.Frame{ID: id, Data: data}, nil
}

// decode parses a received frame; ok is false for frames that do not carry
// a protocol message.
func decode(f *frame.Frame) (Message, bool) {
	if f.Remote || len(f.Data) < headerLen {
		return Message{}, false
	}
	k := Kind(f.Data[0])
	if k != KindData && k != KindConfirm && k != KindAccept {
		return Message{}, false
	}
	m := Message{
		Kind: k,
		Key: abcheck.MsgKey{
			Origin: int(f.Data[1]),
			Seq:    binary.BigEndian.Uint32(f.Data[2:6]),
		},
		Payload: append([]byte(nil), f.Data[headerLen:]...),
	}
	return m, true
}
