package sim

import (
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/node"
)

// CrashOnPhase is a bus.Probe that crashes a controller the first time the
// given station is observed in the given protocol phase. It injects the
// "fails before retransmission" faults of the paper's Fig. 1c.
type CrashOnPhase struct {
	// Ctrl is the controller to crash.
	Ctrl *node.Controller
	// Station is the station index whose view is watched.
	Station int
	// Phase triggers the crash.
	Phase bus.Phase

	done bool
}

var _ bus.Probe = (*CrashOnPhase)(nil)

// OnBit implements bus.Probe.
func (c *CrashOnPhase) OnBit(_ uint64, _ bitstream.Level, _, _ []bitstream.Level, views []bus.ViewContext) {
	if c.done || c.Station >= len(views) {
		return
	}
	if views[c.Station].Phase == c.Phase {
		c.Ctrl.Crash()
		c.done = true
	}
}

// CrashAtSlot is a bus.Probe that crashes a controller at a fixed bit
// slot.
type CrashAtSlot struct {
	Ctrl *node.Controller
	Slot uint64

	done bool
}

var _ bus.Probe = (*CrashAtSlot)(nil)

// OnBit implements bus.Probe.
func (c *CrashAtSlot) OnBit(slot uint64, _ bitstream.Level, _, _ []bitstream.Level, _ []bus.ViewContext) {
	if !c.done && slot >= c.Slot {
		c.Ctrl.Crash()
		c.done = true
	}
}
