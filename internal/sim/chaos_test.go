package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// Chaos: very high random flip rates must never panic, deadlock the
// simulator or wedge a controller in a live-lock; fault confinement must
// eventually disconnect hopeless nodes instead.
func TestChaosStorm(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			for _, berStar := range []float64{0.01, 0.05, 0.2} {
				c := sim.MustCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
				c.Net.AddDisturber(errmodel.NewRandom(berStar, int64(berStar*1000)))
				for i := 0; i < 5; i++ {
					if err := c.Nodes[i].Enqueue(&frame.Frame{ID: uint32(i), Data: []byte{byte(i), 0xFF, 0x00}}); err != nil {
						t.Fatal(err)
					}
				}
				// Just run; the only requirements are progress and sanity.
				c.Net.Run(30000)
				for i, n := range c.Nodes {
					tec, rec := n.Counters()
					if tec < 0 || rec < 0 {
						t.Errorf("ber*=%g node %d: negative counters %d/%d", berStar, i, tec, rec)
					}
				}
			}
		})
	}
}

// Chaos with scripted adversarial flip storms concentrated on the EOF
// region, including flips in delimiters and intermissions.
func TestChaosEOFStorm(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		policy := []node.EOFPolicy{core.NewStandard(), core.NewMinorCAN(), core.MustMajorCAN(5)}[trial%3]
		c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: policy})
		rules := make([]*errmodel.Rule, 0, 12)
		for i := 0; i < 12; i++ {
			rules = append(rules, errmodel.AtEOFBit(
				[]int{r.Intn(4)}, 1+r.Intn(25), 1+r.Intn(3)))
		}
		c.Net.AddDisturber(errmodel.NewScript(rules...))
		if err := c.Nodes[0].Enqueue(&frame.Frame{ID: 0x55, Data: []byte{0xA5}}); err != nil {
			t.Fatal(err)
		}
		c.Net.Run(20000)
		// No panic and the bus eventually idles (nothing left to send or a
		// node went off); both are acceptable under a storm beyond any
		// design tolerance.
	}
}

// After an arbitrary storm the bus must be usable again: a clean frame
// sent afterwards reaches all surviving error-active nodes.
func TestBusRecoversAfterStorm(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: policy})
			storm := errmodel.NewRandom(0.05, 9)
			gate := &gatedDisturber{inner: storm, active: true}
			c.Net.AddDisturber(gate)
			if err := c.Nodes[0].Enqueue(&frame.Frame{ID: 1, Data: []byte{1}}); err != nil {
				t.Fatal(err)
			}
			c.Net.Run(15000)
			gate.active = false
			// Clear counters so fault confinement does not linger.
			for _, n := range c.Nodes {
				if n.Mode() != node.BusOff && n.Mode() != node.SwitchedOff {
					n.SetErrorCounters(0, 0)
				}
			}
			// Drain whatever the storm left behind.
			if !c.RunUntilQuiet(30000) {
				t.Fatal("bus did not recover after the storm")
			}
			f := &frame.Frame{ID: 0x99, Data: []byte{0x42}}
			if err := c.Nodes[1].Enqueue(f); err != nil {
				t.Fatal(err)
			}
			if !c.RunUntilQuiet(5000) {
				t.Fatal("no quiescence after the clean frame")
			}
			for i := 0; i < 4; i++ {
				if i == 1 {
					continue
				}
				mode := c.Nodes[i].Mode()
				if mode == node.BusOff || mode == node.SwitchedOff {
					// Fault confinement disconnected this node during the
					// storm; that is correct behaviour, not a failure.
					continue
				}
				if n := c.DeliveryCount(i, f); n != 1 {
					t.Errorf("station %d (%v) delivered %d copies of the post-storm frame, want 1", i, mode, n)
				}
			}
		})
	}
}

// gatedDisturber switches an inner disturber on and off.
type gatedDisturber struct {
	inner  *errmodel.Random
	active bool
}

func (g *gatedDisturber) Disturb(slot uint64, station int, view bus.ViewContext) bool {
	if !g.active {
		return false
	}
	return g.inner.Disturb(slot, station, view)
}
