package sim

import (
	"fmt"
	"sync"
)

// SweepPoint is one Monte Carlo run of a sweep.
type SweepPoint struct {
	// Seed is the RNG seed of this point.
	Seed int64
	// Result is the run's outcome (nil if Err is set).
	Result *MCResult
	// Err reports a configuration failure for this point.
	Err error
}

// SweepSeeds runs the same Monte Carlo configuration across many seeds in
// parallel and returns the points in seed order. Parallelism bounds the
// number of concurrent simulations (values < 1 mean 1). Every simulation
// is fully independent — the simulator shares no mutable state between
// clusters — so the sweep is deterministic regardless of scheduling.
func SweepSeeds(cfg MCConfig, seeds []int64, parallelism int) []SweepPoint {
	if parallelism < 1 {
		parallelism = 1
	}
	points := make([]SweepPoint, len(seeds))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := cfg
			c.Seed = seed
			res, err := MonteCarlo(c)
			points[i] = SweepPoint{Seed: seed, Result: res, Err: err}
		}()
	}
	wg.Wait()
	return points
}

// SweepSummary aggregates a sweep.
type SweepSummary struct {
	Points     int
	Frames     int
	IMOs       int
	Duplicates int
	Errors     int // points that failed to run
}

// IMORate returns IMOs per frame across the sweep.
func (s SweepSummary) IMORate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.IMOs) / float64(s.Frames)
}

// DuplicateRate returns duplicates per frame across the sweep.
func (s SweepSummary) DuplicateRate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Duplicates) / float64(s.Frames)
}

func (s SweepSummary) String() string {
	return fmt.Sprintf("%d points, %d frames: %d IMOs (%.3e/frame), %d duplicates (%.3e/frame)",
		s.Points, s.Frames, s.IMOs, s.IMORate(), s.Duplicates, s.DuplicateRate())
}

// Summarize folds sweep points into totals.
func Summarize(points []SweepPoint) SweepSummary {
	var s SweepSummary
	for _, p := range points {
		s.Points++
		if p.Err != nil || p.Result == nil {
			s.Errors++
			continue
		}
		s.Frames += p.Result.FramesSent
		s.IMOs += p.Result.IMOs
		s.Duplicates += p.Result.Duplicates
	}
	return s
}
