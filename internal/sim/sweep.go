package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/errmodel"
	"repro/internal/obs"
)

// PointTelemetry hands each sweep point its telemetry: an event sink
// (typically a per-point obs.Memory, serialised in seed order after the
// sweep for deterministic merged logs) and a metrics registry (typically
// a Fork of one shared parent, whose totals then stay live-readable for
// progress display). Either return value may be nil.
type PointTelemetry func(index int, seed int64) (obs.Sink, *obs.Metrics)

// SweepPoint is one Monte Carlo run of a sweep.
type SweepPoint struct {
	// Seed is the RNG seed of this point.
	Seed int64
	// Result is the run's outcome (nil if Err is set).
	Result *MCResult
	// Err reports a configuration failure for this point, or the context's
	// error for points skipped after cancellation.
	Err error
}

// SweepSeeds runs the same Monte Carlo configuration across many seeds in
// parallel and returns the points in seed order. Parallelism bounds the
// number of concurrent simulations (values < 1 mean 1). Every simulation
// is fully independent — the simulator shares no mutable state between
// clusters — so the sweep is deterministic regardless of scheduling.
func SweepSeeds(cfg MCConfig, seeds []int64, parallelism int) []SweepPoint {
	return SweepSeedsContext(context.Background(), cfg, seeds, parallelism)
}

// SweepSeedsContext is SweepSeeds with cancellation: points not yet started
// when ctx is cancelled are skipped and carry ctx's error, while running
// points complete normally, so a partial aggregate remains valid.
//
// When cfg.Disturber is nil and cfg.GlobalModel is false, each point gets a
// per-worker fork of one shared errmodel.Random seeded with the point's
// seed — the same stream MonteCarlo would construct itself — so the shared
// parent's Flips() can be read live while the sweep runs.
func SweepSeedsContext(ctx context.Context, cfg MCConfig, seeds []int64, parallelism int) []SweepPoint {
	return SweepSeedsObserved(ctx, cfg, seeds, parallelism, nil)
}

// SweepSeedsObserved is SweepSeedsContext with per-point telemetry: when
// tel is non-nil it is called once per point (before the point starts)
// and the returned sink/registry replace cfg.Events/cfg.Metrics for that
// point's run.
func SweepSeedsObserved(ctx context.Context, cfg MCConfig, seeds []int64, parallelism int, tel PointTelemetry) []SweepPoint {
	if parallelism < 1 {
		parallelism = 1
	}
	var parent *errmodel.Random
	if cfg.Disturber == nil && !cfg.GlobalModel {
		parent = errmodel.NewRandom(cfg.BerStar, cfg.Seed)
	}
	points := make([]SweepPoint, len(seeds))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		if ctx.Err() != nil {
			points[i] = SweepPoint{Seed: seed, Err: ctx.Err()}
			continue
		}
		select {
		case <-ctx.Done():
			points[i] = SweepPoint{Seed: seed, Err: ctx.Err()}
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := cfg
			c.Seed = seed
			if parent != nil {
				c.Disturber = parent.Fork(seed)
			}
			if tel != nil {
				c.Events, c.Metrics = tel(i, seed)
			}
			res, err := MonteCarlo(c)
			points[i] = SweepPoint{Seed: seed, Result: res, Err: err}
		}()
	}
	wg.Wait()
	return points
}

// SweepSummary aggregates a sweep. The JSON field names are part of the
// job-result contract served by the simulation service.
type SweepSummary struct {
	Points     int    `json:"points"`
	Frames     int    `json:"frames"`
	IMOs       int    `json:"imos"`
	Duplicates int    `json:"duplicates"`
	Flips      uint64 `json:"flips"`
	Errors     int    `json:"errors"`    // points that failed to run
	Cancelled  int    `json:"cancelled"` // points skipped because the sweep was cancelled
}

// IMORate returns IMOs per frame across the sweep.
func (s SweepSummary) IMORate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.IMOs) / float64(s.Frames)
}

// DuplicateRate returns duplicates per frame across the sweep.
func (s SweepSummary) DuplicateRate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Duplicates) / float64(s.Frames)
}

func (s SweepSummary) String() string {
	return fmt.Sprintf("%d points, %d frames: %d IMOs (%.3e/frame), %d duplicates (%.3e/frame)",
		s.Points, s.Frames, s.IMOs, s.IMORate(), s.Duplicates, s.DuplicateRate())
}

// Summarize folds sweep points into totals. Cancelled points count towards
// Cancelled, not Errors, so a partial aggregate after an interrupt is
// distinguishable from a broken configuration.
func Summarize(points []SweepPoint) SweepSummary {
	var s SweepSummary
	for _, p := range points {
		s.Points++
		if p.Err != nil || p.Result == nil {
			if errors.Is(p.Err, context.Canceled) || errors.Is(p.Err, context.DeadlineExceeded) {
				s.Cancelled++
			} else {
				s.Errors++
			}
			continue
		}
		s.Frames += p.Result.FramesSent
		s.IMOs += p.Result.IMOs
		s.Duplicates += p.Result.Duplicates
		s.Flips += p.Result.BitFlips
	}
	return s
}
