package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
)

// The paper's best-case overhead claim is exact: an error-free MajorCAN_m
// frame is 2m-7 bits longer than an error-free standard CAN frame.
func TestBestCaseOverheadMatchesPaper(t *testing.T) {
	canBest, err := sim.FrameOccupancy(core.NewStandard(), sim.BestCase)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{3, 4, 5, 6, 8} {
		best, err := sim.FrameOccupancy(core.MustMajorCAN(m), sim.BestCase)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := best-canBest, 2*m-7; got != want {
			t.Errorf("m=%d best-case overhead = %d bits, paper says 2m-7 = %d", m, got, want)
		}
	}
}

// The worst case (error during the last EOF bits). The paper states the
// MajorCAN frame is "extended 2m-2 bits more" for a total overhead of
// 4m-9, but does not spell out its delimiter accounting. Measured
// end-to-end bus occupancy in this implementation is deterministic:
//
//   - standard CAN's worst case costs 15 extra slots (detection bit +
//     6-bit overload flag + 8-bit delimiter);
//   - MajorCAN_m's worst case costs 3m+6 extra slots (episode prolonged
//     from 2m to 3m+5, then the 2m+1-bit delimiter).
//
// We assert those measured invariants and record the comparison with the
// paper's 4m-9 convention in EXPERIMENTS.md.
func TestWorstCaseOverheadMeasured(t *testing.T) {
	canBest, err := sim.FrameOccupancy(core.NewStandard(), sim.BestCase)
	if err != nil {
		t.Fatal(err)
	}
	canWorst, err := sim.FrameOccupancy(core.NewStandard(), sim.WorstCase)
	if err != nil {
		t.Fatal(err)
	}
	if got := canWorst - canBest; got != 15 {
		t.Errorf("CAN worst-case extension = %d slots, want 15", got)
	}
	for _, m := range []int{4, 5, 6} {
		best, err := sim.FrameOccupancy(core.MustMajorCAN(m), sim.BestCase)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := sim.FrameOccupancy(core.MustMajorCAN(m), sim.WorstCase)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := worst-best, 3*m+6; got != want {
			t.Errorf("m=%d worst-case extension = %d slots, want 3m+6 = %d", m, got, want)
		}
		// The paper's qualitative claim holds either way: the worst-case
		// cost stays within a handful of bits of CAN's own worst case and
		// is negligible compared with a whole extra frame (the cost of the
		// FTCS'98 higher-level protocols).
		if worst-canWorst > 2*m+5 {
			t.Errorf("m=%d worst-case cost %d slots over CAN's worst exceeds 2m+5", m, worst-canWorst)
		}
	}
}

func TestMeasureOverheadTable(t *testing.T) {
	rows, canBest, canWorst, err := sim.MeasureOverhead(
		func(m int) node.EOFPolicy { return core.MustMajorCAN(m) },
		core.NewStandard(),
		[]int{3, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if canBest <= 0 || canWorst <= canBest {
		t.Errorf("baseline measurements canBest=%d canWorst=%d", canBest, canWorst)
	}
	for _, r := range rows {
		if r.BestOverhead != r.PaperBest {
			t.Errorf("m=%d measured best overhead %d != paper %d", r.M, r.BestOverhead, r.PaperBest)
		}
		if r.WorstSlots <= r.BestSlots {
			t.Errorf("m=%d worst %d must exceed best %d", r.M, r.WorstSlots, r.BestSlots)
		}
	}
}
