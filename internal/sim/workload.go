package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
)

// WorkloadConfig describes a periodic broadcast workload like the paper's
// reference configuration: N nodes sharing a bus at a target utilisation.
type WorkloadConfig struct {
	// Policy is the protocol variant.
	Policy node.EOFPolicy
	// Nodes is the number of stations; every station periodically
	// broadcasts its own frame.
	Nodes int
	// Slots is the simulation length in bit times.
	Slots int
	// Load is the target bus utilisation in (0,1]; station periods are
	// derived from it (the paper uses 0.9).
	Load float64
	// PayloadBytes is the frame payload size (default 8).
	PayloadBytes int
	// BerStar adds the spatial random error model with this per-node
	// per-bit probability.
	BerStar float64
	// Seed seeds the error model and jitter.
	Seed int64
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool
}

// WorkloadResult summarises a periodic-workload run.
type WorkloadResult struct {
	Config WorkloadConfig
	// Offered is the number of frames enqueued.
	Offered int
	// TxSuccess is the number of frames whose transmitter confirmed
	// success.
	TxSuccess int
	// Delivered is the total number of deliveries across all receivers.
	Delivered int
	// IMOs counts frames delivered by some correct receiver but missed by
	// another at the end of the run.
	IMOs int
	// Duplicates counts (frame, receiver) double receptions.
	Duplicates int
	// BusySlots is the number of slots the bus carried a dominant level
	// (a lower bound proxy for utilisation).
	BusySlots uint64
	// Utilisation is the fraction of slots the bus was not idle.
	Utilisation float64
	// ErrorFrames is the total number of error signals across nodes.
	ErrorFrames uint64
	// MeanLatency is the average delivery latency in bit slots from
	// enqueue to the last receiver's delivery, over fully delivered
	// messages.
	MeanLatency float64
	// MaxLatency is the worst observed delivery latency in bit slots.
	MaxLatency uint64
}

// RunWorkload drives a periodic workload: each station broadcasts a
// sequence-stamped frame every period, where the period realises the
// requested bus load.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("sim: workload needs >= 3 nodes")
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("sim: load %g out of (0,1]", cfg.Load)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sim: Slots must be positive")
	}
	payload := cfg.PayloadBytes
	if payload == 0 {
		payload = 8
	}

	cluster, err := NewCluster(ClusterOptions{
		Nodes:            cfg.Nodes,
		Policy:           cfg.Policy,
		WarningSwitchOff: cfg.WarningSwitchOff,
	})
	if err != nil {
		return nil, err
	}
	if cfg.BerStar > 0 {
		cluster.Net.AddDisturber(errmodel.NewRandom(cfg.BerStar, cfg.Seed))
	}

	// Estimate the frame duration to derive each station's period:
	// period = nodes * frameSlots / load.
	probe := &frame.Frame{ID: 0x200, Data: make([]byte, payload)}
	enc, err := frame.Encode(probe, cfg.Policy.EOFBits())
	if err != nil {
		return nil, err
	}
	frameSlots := enc.Len() + frame.IntermissionBits
	period := int(float64(cfg.Nodes*frameSlots) / cfg.Load)
	if period < frameSlots {
		period = frameSlots
	}

	res := &WorkloadResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	seqs := make([]uint32, cfg.Nodes)
	next := make([]int, cfg.Nodes)
	for i := range next {
		// Staggered start with jitter to avoid permanent phase locking.
		next[i] = (i*period)/cfg.Nodes + rng.Intn(frameSlots)
	}

	type key struct {
		origin int
		seq    uint32
	}
	delivered := make(map[key]map[int]int)
	enqueued := make(map[key]uint64)
	lastDelivery := make(map[key]uint64)

	var busy uint64
	for slot := 0; slot < cfg.Slots; slot++ {
		for i := 0; i < cfg.Nodes; i++ {
			if slot >= next[i] {
				ctrl := cluster.Nodes[i]
				if (ctrl.Mode() == node.ErrorActive || ctrl.Mode() == node.ErrorPassive) && ctrl.QueueLen() < 4 {
					seqs[i]++
					f := &frame.Frame{
						ID:   uint32(0x200 + i),
						Data: Payload(i, seqs[i], payload),
					}
					if err := ctrl.Enqueue(f); err != nil {
						return nil, err
					}
					enqueued[key{origin: i, seq: seqs[i]}] = cluster.Net.Slot()
					res.Offered++
				}
				next[i] += period
			}
		}
		if cluster.Net.Step() == bitstream.Dominant {
			busy++
		}
	}
	// Drain.
	cluster.RunUntilQuiet(20 * frameSlots)

	for i := 0; i < cfg.Nodes; i++ {
		res.TxSuccess += int(cluster.Nodes[i].TxSuccesses())
		for _, d := range cluster.Deliveries[i] {
			k, ok := PayloadKey(d.Frame)
			if !ok {
				continue
			}
			kk := key{origin: k.Origin, seq: k.Seq}
			if delivered[kk] == nil {
				delivered[kk] = make(map[int]int)
			}
			delivered[kk][i]++
			if d.Slot > lastDelivery[kk] {
				lastDelivery[kk] = d.Slot
			}
			res.Delivered++
		}
		for _, kind := range []node.ErrorKind{node.ErrBit, node.ErrStuff, node.ErrCRC, node.ErrForm, node.ErrAck} {
			res.ErrorFrames += cluster.Nodes[i].ErrorCount(kind)
		}
	}
	correct := func(i int) bool {
		m := cluster.Nodes[i].Mode()
		return m == node.ErrorActive || m == node.ErrorPassive
	}
	// Canonical (origin, seq) order for the aggregation passes below, so
	// the result is a pure function of the seed even if the accounting
	// ever grows order-sensitive fields.
	msgKeys := make([]key, 0, len(delivered))
	for kk := range delivered {
		msgKeys = append(msgKeys, kk)
	}
	sort.Slice(msgKeys, func(i, j int) bool {
		if msgKeys[i].origin != msgKeys[j].origin {
			return msgKeys[i].origin < msgKeys[j].origin
		}
		return msgKeys[i].seq < msgKeys[j].seq
	})
	for _, kk := range msgKeys {
		nodes := delivered[kk]
		got, missing := 0, 0
		for i := 0; i < cfg.Nodes; i++ {
			if i == kk.origin || !correct(i) {
				continue
			}
			c := nodes[i]
			if c == 0 {
				missing++
			} else {
				got++
				if c > 1 {
					res.Duplicates++
				}
			}
		}
		if got > 0 && missing > 0 {
			res.IMOs++
		}
	}
	// Delivery latency over messages that reached all correct receivers.
	var latSum, latCount uint64
	for _, kk := range msgKeys {
		nodes := delivered[kk]
		start, ok := enqueued[kk]
		if !ok {
			continue
		}
		full := true
		for i := 0; i < cfg.Nodes; i++ {
			if i == kk.origin || !correct(i) {
				continue
			}
			if nodes[i] == 0 {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		lat := lastDelivery[kk] - start
		latSum += lat
		latCount++
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
	}
	if latCount > 0 {
		res.MeanLatency = float64(latSum) / float64(latCount)
	}
	res.BusySlots = busy
	res.Utilisation = float64(res.TxSuccess*frameSlots) / float64(cfg.Slots)
	return res, nil
}
