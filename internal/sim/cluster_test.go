package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

func policies(t *testing.T) map[string]node.EOFPolicy {
	t.Helper()
	return map[string]node.EOFPolicy{
		"CAN":        core.NewStandard(),
		"MinorCAN":   core.NewMinorCAN(),
		"MajorCAN_5": core.MustMajorCAN(5),
	}
}

func TestErrorFreeBroadcast(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: policy})
			f := &frame.Frame{ID: 0x123, Data: []byte{0xDE, 0xAD}}
			if err := c.Nodes[0].Enqueue(f); err != nil {
				t.Fatal(err)
			}
			if !c.RunUntilQuiet(2000) {
				t.Fatal("bus did not become quiet")
			}
			if got := c.Nodes[0].TxSuccesses(); got != 1 {
				t.Errorf("transmitter successes = %d, want 1", got)
			}
			for i := 1; i < 4; i++ {
				if n := c.DeliveryCount(i, f); n != 1 {
					t.Errorf("node %d delivered %d copies, want 1", i, n)
				}
			}
			if len(c.Deliveries[0]) != 0 {
				t.Errorf("transmitter must not deliver its own frame, got %d", len(c.Deliveries[0]))
			}
		})
	}
}

func TestBackToBackFrames(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: policy})
			frames := []*frame.Frame{
				{ID: 0x10, Data: []byte{1}},
				{ID: 0x20, Data: []byte{2}},
				{ID: 0x30, Data: []byte{3, 3, 3}},
			}
			for _, f := range frames {
				if err := c.Nodes[0].Enqueue(f); err != nil {
					t.Fatal(err)
				}
			}
			if !c.RunUntilQuiet(5000) {
				t.Fatal("bus did not become quiet")
			}
			for i := 1; i < 3; i++ {
				if len(c.Deliveries[i]) != len(frames) {
					t.Fatalf("node %d delivered %d frames, want %d", i, len(c.Deliveries[i]), len(frames))
				}
				for k, f := range frames {
					if !c.Deliveries[i][k].Frame.Equal(f) {
						t.Errorf("node %d delivery %d = %v, want %v", i, k, c.Deliveries[i][k].Frame, f)
					}
				}
			}
		})
	}
}

func TestArbitration(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: policy})
			low := &frame.Frame{ID: 0x700, Data: []byte{7}}  // low priority
			high := &frame.Frame{ID: 0x050, Data: []byte{5}} // high priority
			if err := c.Nodes[0].Enqueue(low); err != nil {
				t.Fatal(err)
			}
			if err := c.Nodes[1].Enqueue(high); err != nil {
				t.Fatal(err)
			}
			if !c.RunUntilQuiet(3000) {
				t.Fatal("bus did not become quiet")
			}
			// Node 2 observes both; the high-priority frame must win the
			// simultaneous arbitration and arrive first.
			if len(c.Deliveries[2]) != 2 {
				t.Fatalf("node 2 delivered %d frames, want 2", len(c.Deliveries[2]))
			}
			if !c.Deliveries[2][0].Frame.Equal(high) {
				t.Errorf("first delivery = %v, want the high-priority frame", c.Deliveries[2][0].Frame)
			}
			if !c.Deliveries[2][1].Frame.Equal(low) {
				t.Errorf("second delivery = %v, want the low-priority frame", c.Deliveries[2][1].Frame)
			}
			// The arbitration losers also receive each other's frames.
			if !c.DeliveredAt(0, high) {
				t.Error("node 0 (loser) must receive the winning frame")
			}
			if !c.DeliveredAt(1, low) {
				t.Error("node 1 must receive the retried low-priority frame")
			}
		})
	}
}

func TestExtendedFrameBroadcast(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: core.NewStandard()})
	f := &frame.Frame{ID: 0x1ABCDEF0, Format: frame.Extended, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(3000) {
		t.Fatal("bus did not become quiet")
	}
	for i := 1; i < 3; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("node %d delivered %d copies, want 1", i, n)
		}
	}
}

func TestRemoteFrameBroadcast(t *testing.T) {
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 3, Policy: core.NewStandard()})
	f := &frame.Frame{ID: 0x42, Remote: true, DLC: 4}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(3000) {
		t.Fatal("bus did not become quiet")
	}
	for i := 1; i < 3; i++ {
		if n := c.DeliveryCount(i, f); n != 1 {
			t.Errorf("node %d delivered %d copies of the remote frame, want 1", i, n)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := sim.NewCluster(sim.ClusterOptions{Nodes: 1, Policy: core.NewStandard()}); err == nil {
		t.Error("single-node cluster must be rejected")
	}
	if _, err := sim.NewCluster(sim.ClusterOptions{Nodes: 3}); err == nil {
		t.Error("nil policy must be rejected")
	}
}
