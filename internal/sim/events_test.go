package sim_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// sweepJSONL runs a telemetry-instrumented sweep and serialises the
// merged event log in seed order, exactly as cmd/mcsim -events does.
func sweepJSONL(t *testing.T, cfg sim.MCConfig, seeds []int64, parallelism int) ([]byte, *obs.Metrics) {
	t.Helper()
	mems := make([]*obs.Memory, len(seeds))
	for i := range mems {
		mems[i] = obs.NewMemory()
	}
	metrics := obs.NewMetrics()
	tel := func(i int, _ int64) (obs.Sink, *obs.Metrics) {
		return mems[i], metrics.Fork()
	}
	points := sim.SweepSeedsObserved(context.Background(), cfg, seeds, parallelism, tel)
	for _, p := range points {
		if p.Err != nil {
			t.Fatalf("seed %d: %v", p.Seed, p.Err)
		}
	}
	var buf bytes.Buffer
	for i, mem := range mems {
		if err := obs.WriteJSONL(&buf, seeds[i], mem.Events()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), metrics
}

// TestEventStreamDeterminism is the PR's determinism contract: the same
// seeds produce a byte-identical merged JSONL event log across repeated
// runs and across worker counts.
func TestEventStreamDeterminism(t *testing.T) {
	cfg := sim.MCConfig{
		Policy:        core.MustMajorCAN(5),
		Nodes:         5,
		Frames:        40,
		BerStar:       0.02,
		ResetCounters: true,
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}

	serial, _ := sweepJSONL(t, cfg, seeds, 1)
	if len(serial) == 0 {
		t.Fatal("no events recorded at ber* = 0.02")
	}
	again, _ := sweepJSONL(t, cfg, seeds, 1)
	if !bytes.Equal(serial, again) {
		t.Error("same seeds, same worker count: JSONL differs between runs")
	}
	for _, workers := range []int{2, 4, 8} {
		par, _ := sweepJSONL(t, cfg, seeds, workers)
		if !bytes.Equal(serial, par) {
			t.Errorf("JSONL with %d workers differs from serial run", workers)
		}
	}
}

// TestEventStreamPolicyContrast pins the acceptance criterion: only the
// MajorCAN policy produces eof-vote-corrected events; standard CAN never
// does.
func TestEventStreamPolicyContrast(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	base := sim.MCConfig{
		Nodes:         5,
		Frames:        50,
		BerStar:       0.02,
		EOFOnly:       true,
		ResetCounters: true,
	}

	major := base
	major.Policy = core.MustMajorCAN(5)
	_, mm := sweepJSONL(t, major, seeds, 4)
	if got := mm.EOFVoteCorrected(); got == 0 {
		t.Error("MajorCAN_5 at ber* = 0.02 produced no eof-vote-corrected events")
	}

	std := base
	std.Policy = core.NewStandard()
	_, sm := sweepJSONL(t, std, seeds, 4)
	if got := sm.EOFVoteCorrected(); got != 0 {
		t.Errorf("standard CAN reported %d eof-vote-corrected events, want 0", got)
	}
}

// TestIMOEventsMatchResult checks that the emitted imo events agree with
// the Monte Carlo loop's own classification.
func TestIMOEventsMatchResult(t *testing.T) {
	mem := obs.NewMemory()
	// Standard CAN at a high EOF-only error rate produces IMOs quickly.
	cfg := sim.MCConfig{
		Policy:        core.NewStandard(),
		Nodes:         5,
		Frames:        400,
		BerStar:       0.05,
		EOFOnly:       true,
		Seed:          3,
		ResetCounters: true,
		Events:        mem,
	}
	res, err := sim.MonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IMOs == 0 {
		t.Skip("seed produced no IMOs; adjust parameters")
	}
	if got := mem.Count(obs.KindIMO); got != res.IMOs {
		t.Errorf("imo events = %d, Result.IMOs = %d", got, res.IMOs)
	}
}
