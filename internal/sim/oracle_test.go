package sim_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestEnginesAgreeAcrossSpecs is the differential oracle (DESIGN.md §15)
// over canonical sweep specs: the same spec runs under the reference
// per-slot loop and the fast engine, and every point outcome and every
// protocol event must be identical. The specs cover each execution
// regime of the fast engine: gated EOF-only models (quiescent
// fast-forward plus packed per-slot stepping), ungated models (packed
// stepping only), the whole-bus global model, and undisturbed runs
// (pure fast-forward).
func TestEnginesAgreeAcrossSpecs(t *testing.T) {
	specs := []sim.SweepSpec{
		{Protocol: "can", Frames: 40, BerStar: 0.01, Seeds: 3, EOFOnly: true, ResetCounters: true},
		{Protocol: "minorcan", Frames: 40, BerStar: 0.01, Seeds: 3, EOFOnly: true, ResetCounters: true},
		{Protocol: "majorcan_5", Frames: 40, BerStar: 0.01, Seeds: 3, EOFOnly: true, ResetCounters: true},
		// Ungated spatial model: a disturbance is possible every slot, so
		// the fast engine must run the packed core without fast-forward.
		{Protocol: "can", Frames: 25, BerStar: 0.002, Seeds: 2},
		// Whole-bus model, gated and ungated.
		{Protocol: "majorcan_5", Frames: 25, BerStar: 0.01, Seeds: 2, EOFOnly: true, GlobalModel: true},
		{Protocol: "can", Frames: 25, BerStar: 0.001, Seeds: 2, GlobalModel: true},
		// Undisturbed: rate zero, every frame body fast-forwards.
		{Protocol: "majorcan_5", Frames: 30, Seeds: 2},
		// Heavier injection with rotation and the switch-off policy, so
		// stations change mode and drop out mid-sweep.
		{Protocol: "can", Frames: 30, BerStar: 0.03, Seeds: 2, EOFOnly: true, RotateOrigins: true, WarningSwitchOff: true},
	}
	for i, spec := range specs {
		spec := spec
		name := fmt.Sprintf("%02d_%s_ber%g_eof%v_glob%v", i, spec.Protocol, spec.BerStar, spec.EOFOnly, spec.GlobalModel)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmp, err := sim.CompareEngines(context.Background(), spec, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !cmp.Identical() {
				t.Fatalf("engines diverge:\n%s", cmp.Divergence)
			}
			if cmp.Events == 0 {
				t.Fatal("oracle compared no events; the sweep did not run")
			}
		})
	}
}

// TestCompareEnginesDetectsDivergence guards the oracle itself: two runs
// of *different* specs must not compare equal, so an oracle bug that
// compares nothing (or everything as equal) cannot hide an engine bug.
func TestCompareEnginesReportsEventCounts(t *testing.T) {
	cmp, err := sim.CompareEngines(context.Background(),
		sim.SweepSpec{Protocol: "can", Frames: 5, Seeds: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Seeds != 2 {
		t.Fatalf("Seeds = %d, want 2", cmp.Seeds)
	}
	// 5 frames x 2 seeds: at the very least one frame-start and one
	// verdict event per frame must have been compared.
	if cmp.Events < 20 {
		t.Fatalf("Events = %d, implausibly few for 10 frames", cmp.Events)
	}
}
