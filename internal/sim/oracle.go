package sim

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// This file is the differential oracle for the fast bit-slot engine
// (internal/bus/fastpath, DESIGN.md §15): the same sweep spec runs under
// the reference per-slot loop and under the fast engine, and every
// observable is compared — point outcomes (slots, flips, IMO/duplicate
// counts, Atomic Broadcast verdicts) and the full protocol event streams.
// "Fast" is only admissible because this comparison is byte-exact.

// EngineDivergence pinpoints the first observable difference between a
// reference and a fast run of the same sweep point.
type EngineDivergence struct {
	// Seed is the diverging point's seed.
	Seed int64
	// Kind is "events" (the streams differ, at Index/Slot) or "outcome"
	// (the streams agree but the aggregated point outcome differs).
	Kind string
	// Slot is the bit slot of the first diverging event (Kind "events").
	Slot uint64
	// Index is the position of the first diverging event in the streams.
	Index int
	// Reference and Fast render each engine's side of the divergence:
	// the event at Index (or "<none>" past a shorter stream), or the
	// whole point outcome.
	Reference string
	Fast      string
}

func (d *EngineDivergence) String() string {
	if d.Kind == "events" {
		return fmt.Sprintf("seed %d: event %d (slot %d) differs\n  reference: %s\n  fast:      %s",
			d.Seed, d.Index, d.Slot, d.Reference, d.Fast)
	}
	return fmt.Sprintf("seed %d: point outcome differs\n  reference: %s\n  fast:      %s",
		d.Seed, d.Reference, d.Fast)
}

// EngineComparison is the oracle's verdict over a whole sweep.
type EngineComparison struct {
	// Seeds is the number of points compared.
	Seeds int
	// Events is the total number of events compared (reference side).
	Events int
	// Divergence is the first difference found, or nil when every point
	// is byte-identical under both engines.
	Divergence *EngineDivergence
}

// Identical reports whether the engines agreed on every observable.
func (c *EngineComparison) Identical() bool { return c.Divergence == nil }

// CompareEngines runs the sweep spec under both engines and returns the
// first divergence between their observable behaviours, if any. Each
// point's full event stream is captured in memory, so use experiment-
// sized (not production-sized) specs.
func CompareEngines(ctx context.Context, spec SweepSpec, parallelism int) (*EngineComparison, error) {
	spec.Normalize()
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	seeds := spec.SeedList()

	run := func(choice EngineChoice) ([]SweepPoint, []*obs.Memory, error) {
		c := cfg
		c.Engine = choice
		mems := make([]*obs.Memory, len(seeds))
		for i := range mems {
			mems[i] = obs.NewMemory()
		}
		tel := func(i int, _ int64) (obs.Sink, *obs.Metrics) { return mems[i], nil }
		pts := SweepSeedsObserved(ctx, c, seeds, parallelism, tel)
		for _, p := range pts {
			if p.Err != nil {
				return nil, nil, fmt.Errorf("sim: engine %q seed %d: %w", choice, p.Seed, p.Err)
			}
		}
		return pts, mems, nil
	}
	refPts, refMems, err := run(EngineReference)
	if err != nil {
		return nil, err
	}
	fastPts, fastMems, err := run(EngineFast)
	if err != nil {
		return nil, err
	}

	cmp := &EngineComparison{Seeds: len(seeds)}
	for i, seed := range seeds {
		re, fe := refMems[i].Events(), fastMems[i].Events()
		cmp.Events += len(re)
		n := len(re)
		if len(fe) < n {
			n = len(fe)
		}
		for k := 0; k < n; k++ {
			if re[k] != fe[k] {
				cmp.Divergence = &EngineDivergence{
					Seed: seed, Kind: "events", Slot: re[k].Slot, Index: k,
					Reference: re[k].String(), Fast: fe[k].String(),
				}
				return cmp, nil
			}
		}
		if len(re) != len(fe) {
			d := &EngineDivergence{Seed: seed, Kind: "events", Index: n, Reference: "<none>", Fast: "<none>"}
			if len(re) > n {
				d.Slot, d.Reference = re[n].Slot, re[n].String()
			} else {
				d.Slot, d.Fast = fe[n].Slot, fe[n].String()
			}
			cmp.Divergence = d
			return cmp, nil
		}
		ro, fo := outcomeOf(refPts[i]), outcomeOf(fastPts[i])
		if ro != fo {
			cmp.Divergence = &EngineDivergence{
				Seed: seed, Kind: "outcome",
				Reference: fmt.Sprintf("%+v", ro), Fast: fmt.Sprintf("%+v", fo),
			}
			return cmp, nil
		}
	}
	return cmp, nil
}
