package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/trace"
)

// OverheadCase selects which frame-duration case to measure.
type OverheadCase uint8

const (
	// BestCase measures an error-free frame.
	BestCase OverheadCase = iota + 1
	// WorstCase measures a frame with an error at the last EOF bit of one
	// receiver (the case that maximally extends the MajorCAN episode).
	WorstCase
)

func (c OverheadCase) String() string {
	if c == WorstCase {
		return "worst"
	}
	return "best"
}

// FrameOccupancy measures how many bit slots one frame transmission keeps
// the bus busy under the given policy: from the SOF until the transmitter
// enters intermission (delimiters included, intermission excluded).
func FrameOccupancy(policy node.EOFPolicy, c OverheadCase) (int, error) {
	cluster, err := NewCluster(ClusterOptions{Nodes: 4, Policy: policy})
	if err != nil {
		return 0, err
	}
	rec := trace.NewRecorder()
	cluster.Net.AddProbe(rec)
	if c == WorstCase {
		cluster.Net.AddDisturber(errmodel.NewScript(
			errmodel.AtEOFBit([]int{1}, policy.EOFBits(), 1),
		))
	}
	f := &frame.Frame{ID: 0x2AA, Data: []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA}}
	if err := cluster.Nodes[0].Enqueue(f); err != nil {
		return 0, err
	}
	if !cluster.RunUntilQuiet(4000) {
		return 0, fmt.Errorf("sim: overhead measurement did not quiesce under %s", policy.Name())
	}
	sof, ok := rec.FirstSlot(0, bus.PhaseFrame)
	if !ok {
		return 0, fmt.Errorf("sim: no frame observed")
	}
	// The frame occupies the bus from the SOF until the transmitter goes
	// idle, minus the trailing intermission (which exists in both cases).
	idle := uint64(0)
	found := false
	for _, r := range rec.Records() {
		if r.Slot > sof && r.Views[0].Phase == bus.PhaseIdle {
			idle, found = r.Slot, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("sim: transmitter never returned to idle under %s", policy.Name())
	}
	if cluster.Nodes[0].TxSuccesses() != 1 {
		return 0, fmt.Errorf("sim: frame not accepted in %s case under %s", c, policy.Name())
	}
	return int(idle-sof) - frame.IntermissionBits, nil
}

// OverheadRow compares a MajorCAN_m variant against standard CAN.
type OverheadRow struct {
	M int
	// BestSlots / WorstSlots are measured bus occupancies of one frame.
	BestSlots, WorstSlots int
	// BestOverhead / WorstOverhead are measured differences to standard
	// CAN's best case.
	BestOverhead, WorstOverhead int
	// PaperBest / PaperWorst are the paper's formulas 2m-7 and 4m-9.
	PaperBest, PaperWorst int
}

// MeasureOverhead produces the overhead table for the given m values,
// including the standard CAN baseline measurements.
func MeasureOverhead(policyFor func(m int) node.EOFPolicy, baseline node.EOFPolicy, ms []int) ([]OverheadRow, int, int, error) {
	canBest, err := FrameOccupancy(baseline, BestCase)
	if err != nil {
		return nil, 0, 0, err
	}
	canWorst, err := FrameOccupancy(baseline, WorstCase)
	if err != nil {
		return nil, 0, 0, err
	}
	rows := make([]OverheadRow, 0, len(ms))
	for _, m := range ms {
		p := policyFor(m)
		best, err := FrameOccupancy(p, BestCase)
		if err != nil {
			return nil, 0, 0, err
		}
		worst, err := FrameOccupancy(p, WorstCase)
		if err != nil {
			return nil, 0, 0, err
		}
		rows = append(rows, OverheadRow{
			M:             m,
			BestSlots:     best,
			WorstSlots:    worst,
			BestOverhead:  best - canBest,
			WorstOverhead: worst - canBest,
			PaperBest:     2*m - 7,
			PaperWorst:    4*m - 9,
		})
	}
	return rows, canBest, canWorst, nil
}
