package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// SweepSpec is the canonical, JSON-serialisable description of a Monte
// Carlo consistency job: the same configuration MCConfig carries, but
// with the protocol by name and the seed range explicit, so the spec can
// travel over the wire, hash to a stable job digest, and rebuild the
// identical run anywhere. It deliberately excludes execution knobs
// (parallelism, telemetry): a sweep's outcome is independent of worker
// count, so those must not perturb the content address.
type SweepSpec struct {
	// Protocol selects the variant, as accepted by core.ParsePolicy.
	Protocol string `json:"protocol"`
	// Nodes is the number of stations (default 5).
	Nodes int `json:"nodes"`
	// Frames is the number of application frames broadcast per seed
	// (default 1000).
	Frames int `json:"frames"`
	// BerStar is the per-node per-bit view-flip probability.
	BerStar float64 `json:"berStar"`
	// Seed is the first RNG seed.
	Seed int64 `json:"seed"`
	// Seeds is the number of consecutive seeds (Seed, Seed+1, ...) the
	// sweep covers (default 1).
	Seeds int `json:"seeds"`
	// EOFOnly restricts disturbances to the end-of-frame region (the
	// paper's importance-sampling device).
	EOFOnly bool `json:"eofOnly"`
	// ResetCounters clears error counters between frames.
	ResetCounters bool `json:"resetCounters"`
	// RotateOrigins sends frame i from station i mod Nodes.
	RotateOrigins bool `json:"rotateOrigins,omitempty"`
	// GlobalModel uses the whole-bus error model instead of ber*.
	GlobalModel bool `json:"globalModel,omitempty"`
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool `json:"warningSwitchOff,omitempty"`
	// PayloadBytes sets the frame payload size (default 8).
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// SlotsPerFrame bounds simulation time per frame (default 4000).
	SlotsPerFrame int `json:"slotsPerFrame,omitempty"`
}

// Normalize fills defaulted fields in place, so that specs differing only
// in spelled-out defaults canonicalise to the same bytes.
func (s *SweepSpec) Normalize() {
	if s.Nodes == 0 {
		s.Nodes = 5
	}
	if s.Frames == 0 {
		s.Frames = 1000
	}
	if s.Seeds == 0 {
		s.Seeds = 1
	}
}

// Validate checks the spec's structural invariants.
func (s SweepSpec) Validate() error {
	if _, err := core.ParsePolicy(s.Protocol); err != nil {
		return fmt.Errorf("sim: sweep spec: %w", err)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("sim: sweep spec needs >= 2 nodes, got %d", s.Nodes)
	}
	if s.Frames < 1 {
		return fmt.Errorf("sim: sweep spec needs >= 1 frame, got %d", s.Frames)
	}
	if s.Seeds < 1 {
		return fmt.Errorf("sim: sweep spec needs >= 1 seed, got %d", s.Seeds)
	}
	if s.BerStar < 0 || s.BerStar > 1 {
		return fmt.Errorf("sim: sweep spec berStar %g outside [0,1]", s.BerStar)
	}
	if s.PayloadBytes < 0 || s.PayloadBytes > 8 {
		return fmt.Errorf("sim: sweep spec payloadBytes %d outside [0,8]", s.PayloadBytes)
	}
	return nil
}

// Config resolves the spec to the MCConfig of its first seed.
func (s SweepSpec) Config() (MCConfig, error) {
	if err := s.Validate(); err != nil {
		return MCConfig{}, err
	}
	policy, err := core.ParsePolicy(s.Protocol)
	if err != nil {
		return MCConfig{}, err
	}
	return MCConfig{
		Policy:           policy,
		Nodes:            s.Nodes,
		Frames:           s.Frames,
		BerStar:          s.BerStar,
		Seed:             s.Seed,
		PayloadBytes:     s.PayloadBytes,
		RotateOrigins:    s.RotateOrigins,
		SlotsPerFrame:    s.SlotsPerFrame,
		WarningSwitchOff: s.WarningSwitchOff,
		EOFOnly:          s.EOFOnly,
		ResetCounters:    s.ResetCounters,
		GlobalModel:      s.GlobalModel,
	}, nil
}

// SeedList expands the seed range.
func (s SweepSpec) SeedList() []int64 {
	seeds := make([]int64, s.Seeds)
	for i := range seeds {
		seeds[i] = s.Seed + int64(i)
	}
	return seeds
}

// PointOutcome is the serialisable result of one sweep point.
type PointOutcome struct {
	Seed            int64  `json:"seed"`
	Slots           uint64 `json:"slots"`
	BitFlips        uint64 `json:"bitFlips"`
	FramesSent      int    `json:"framesSent"`
	IMOs            int    `json:"imos"`
	Duplicates      int    `json:"duplicates"`
	LostEverywhere  int    `json:"lostEverywhere"`
	Incomplete      int    `json:"incomplete"`
	AtomicBroadcast bool   `json:"atomicBroadcast"`
	Cancelled       bool   `json:"cancelled,omitempty"`
}

// SweepOutcome is the serialisable result of a whole sweep job: the
// normalized spec it ran, every point, and the aggregate. Deterministic
// field order and content: byte-identical for any parallelism.
type SweepOutcome struct {
	Spec    SweepSpec      `json:"spec"`
	Points  []PointOutcome `json:"points"`
	Summary SweepSummary   `json:"summary"`
}

// RunSweepSpec executes a sweep spec: the entry point the simulation
// service's scheduler and the mcsim CLI share. Cancelling ctx skips
// unstarted points (they come back flagged Cancelled, tallied in
// Summary.Cancelled) while running points finish, so a partial aggregate
// stays valid — the same code path serves an interactive SIGINT and a
// server drain. Parallelism bounds concurrent simulations; tel may be nil.
func RunSweepSpec(ctx context.Context, spec SweepSpec, parallelism int, tel PointTelemetry) (*SweepOutcome, error) {
	return RunSweepSpecResumable(ctx, spec, parallelism, tel, nil)
}
