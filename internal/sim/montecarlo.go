package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/abcheck"
	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/obs"
)

// MCConfig configures a Monte Carlo consistency run: a stream of frames is
// broadcast under the spatial random error model and every frame's fate at
// every receiver is recorded.
type MCConfig struct {
	// Policy is the protocol variant under test.
	Policy node.EOFPolicy
	// Nodes is the number of stations.
	Nodes int
	// Frames is the number of application frames to broadcast.
	Frames int
	// BerStar is the per-node per-bit view-flip probability (the paper's
	// ber* = ber/N).
	BerStar float64
	// Seed makes the run reproducible.
	Seed int64
	// PayloadBytes sets the frame payload size (default 8, giving frames
	// close to the paper's tau_data = 110 bits).
	PayloadBytes int
	// RotateOrigins sends frame i from station i mod Nodes instead of
	// always from station 0.
	RotateOrigins bool
	// SlotsPerFrame bounds the simulation time spent on one frame
	// including retransmissions (default 4000).
	SlotsPerFrame int
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool
	// EOFOnly restricts disturbances to the end-of-frame region (EOF bits,
	// flags, sampling windows). All the paper's inconsistency scenarios
	// live there; conditioning the error process on that region is an
	// importance-sampling device that makes the rare patterns observable
	// with feasible sample sizes while leaving the protocol logic
	// untouched.
	EOFOnly bool
	// ResetCounters clears every node's error counters between frames so
	// that fault confinement does not disconnect stations during long
	// heavy-injection measurement runs. It matches the paper's assumption
	// that nodes never leave the error-active state within the interval of
	// reference.
	ResetCounters bool
	// GlobalModel replaces the spatial per-node error model with the
	// whole-bus model in which an error corrupts every station's view of
	// the same bit simultaneously (the ablation of the paper's ber*
	// assumption). BerStar is then the per-bit whole-bus error rate.
	GlobalModel bool
	// Disturber, if non-nil, replaces the built-in random error model
	// (BerStar and GlobalModel are then ignored). Parallel sweeps use it to
	// hand each worker a fork of one shared errmodel.Random. BitFlips is
	// reported when the disturber implements errmodel.FlipCounter.
	Disturber bus.Disturber
	// Events, if non-nil, receives the run's protocol event stream,
	// including the harness-level IMO classification events. Emission goes
	// through an internal ring buffer drained between frames, so the sink
	// is called from the run's goroutine only.
	Events obs.Sink
	// Metrics, if non-nil, aggregates the run into a metrics registry
	// (counters from the event stream plus per-frame retransmission and
	// settling-latency histograms). Parallel sweeps pass a fork per worker.
	Metrics *obs.Metrics
	// Engine selects the bit-slot execution engine (an execution knob,
	// never part of a sweep spec; default EngineAuto).
	Engine EngineChoice
}

// MCResult aggregates a Monte Carlo run.
type MCResult struct {
	Config MCConfig
	// Slots is the total number of simulated bit slots.
	Slots uint64
	// BitFlips is the number of injected view flips.
	BitFlips uint64
	// FramesSent is the number of frames actually broadcast (equals
	// Config.Frames unless origins died).
	FramesSent int
	// IMOs counts frames that ended as inconsistent message omissions
	// among correct receivers.
	IMOs int
	// Duplicates counts (frame, receiver) double receptions.
	Duplicates int
	// LostEverywhere counts frames no correct receiver delivered.
	LostEverywhere int
	// Incomplete counts frames whose transmitter was still retrying when
	// the per-frame slot budget expired.
	Incomplete int
	// Report is the Atomic Broadcast check over the whole run.
	Report *abcheck.Report
}

// IMORate returns the fraction of sent frames that ended in an IMO.
func (r *MCResult) IMORate() float64 {
	if r.FramesSent == 0 {
		return 0
	}
	return float64(r.IMOs) / float64(r.FramesSent)
}

// DuplicateRate returns double receptions per sent frame.
func (r *MCResult) DuplicateRate() float64 {
	if r.FramesSent == 0 {
		return 0
	}
	return float64(r.Duplicates) / float64(r.FramesSent)
}

// Payload stamps origin and sequence into a frame payload so that
// deliveries can be attributed to messages (the key PayloadKey recovers).
// Harnesses across the repo — Monte Carlo, workloads, chaos campaigns —
// share this stamping so their traces feed abcheck uniformly.
func Payload(origin int, seq uint32, size int) []byte {
	if size < 5 {
		size = 5
	}
	data := make([]byte, size)
	data[0] = byte(origin)
	binary.BigEndian.PutUint32(data[1:5], seq)
	// Fill the rest with a pattern derived from the sequence so frames are
	// not all-zero (all-zero maximises stuffing, a legal but atypical
	// worst case).
	for i := 5; i < size; i++ {
		data[i] = byte(seq>>uint(8*(i%4))) ^ 0x5A
	}
	return data
}

// PayloadKey recovers the message key stamped by Payload, or ok=false for
// frames that do not carry one.
func PayloadKey(f *frame.Frame) (abcheck.MsgKey, bool) {
	if len(f.Data) < 5 {
		return abcheck.MsgKey{}, false
	}
	return abcheck.MsgKey{
		Origin: int(f.Data[0]),
		Seq:    binary.BigEndian.Uint32(f.Data[1:5]),
	}, true
}

// MonteCarlo runs the experiment.
func MonteCarlo(cfg MCConfig) (*MCResult, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("sim: Monte Carlo needs >= 3 nodes, got %d", cfg.Nodes)
	}
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("sim: Frames must be positive")
	}
	payload := cfg.PayloadBytes
	if payload == 0 {
		payload = 8
	}
	slotsPerFrame := cfg.SlotsPerFrame
	if slotsPerFrame == 0 {
		slotsPerFrame = 4000
	}

	// Telemetry: controllers and the bus emit into a ring buffer drained
	// between frames, so downstream sinks (files, registries) are called
	// from this goroutine only and never sit on the per-bit hot path.
	var (
		ring *obs.Ring
		tel  obs.Sink
	)
	clusterOpts := ClusterOptions{
		Nodes:            cfg.Nodes,
		Policy:           cfg.Policy,
		WarningSwitchOff: cfg.WarningSwitchOff,
		Engine:           cfg.Engine,
	}
	if cfg.Events != nil || cfg.Metrics != nil {
		ring = obs.NewRing(1 << 12)
		tel = obs.Multi(cfg.Events, cfg.Metrics)
		clusterOpts.Events = ring
	}
	cluster, err := NewCluster(clusterOpts)
	if err != nil {
		return nil, err
	}
	// drain forwards buffered events to the sinks and returns how many
	// retransmissions the batch contained.
	drain := func() uint64 {
		if ring == nil {
			return 0
		}
		var retrans uint64
		ring.Drain(obs.SinkFunc(func(e obs.Event) {
			if e.Kind == obs.KindRetransmit {
				retrans++
			}
			// tel can be nil with the ring live: Multi drops typed-nil
			// sinks, so a caller passing e.g. a nil *obs.Memory as Events
			// enables the ring but leaves no sink behind it.
			if tel != nil {
				tel.Emit(e)
			}
		}))
		return retrans
	}
	var inner bus.Disturber
	flips := func() uint64 { return 0 }
	switch {
	case cfg.Disturber != nil:
		inner = cfg.Disturber
		if fc, ok := cfg.Disturber.(errmodel.FlipCounter); ok {
			flips = fc.Flips
		}
	case cfg.GlobalModel:
		g := errmodel.NewGlobalRandom(cfg.BerStar, cfg.Seed)
		inner, flips = g, g.Flips
	default:
		r := errmodel.NewRandom(cfg.BerStar, cfg.Seed)
		inner, flips = r, r.Flips
	}
	if cfg.EOFOnly {
		cluster.Net.AddDisturber(errmodel.EOFOnly{Inner: inner})
	} else {
		cluster.Net.AddDisturber(inner)
	}

	res := &MCResult{Config: cfg}
	tr := abcheck.Trace{Nodes: cfg.Nodes, Faulty: make(map[int]bool)}
	// The trace grows to one broadcast per frame and (at most) one
	// delivery per receiver per frame; reserving that up front keeps the
	// append loops below from regrowing through the whole run.
	tr.Broadcasts = make([]abcheck.Broadcast, 0, cfg.Frames)
	tr.Deliveries = make([]abcheck.Delivery, 0, cfg.Frames*(cfg.Nodes-1))

	// Per-frame scratch, reused across the trial loop.
	before := make([]int, cfg.Nodes)

	for i := 0; i < cfg.Frames; i++ {
		if cfg.ResetCounters {
			for _, n := range cluster.Nodes {
				if !n.Crashed() && n.Mode() != node.BusOff && n.Mode() != node.SwitchedOff {
					n.SetErrorCounters(0, 0)
				}
			}
		}
		origin := 0
		if cfg.RotateOrigins {
			origin = i % cfg.Nodes
		}
		ctrl := cluster.Nodes[origin]
		if ctrl.Mode() != node.ErrorActive && ctrl.Mode() != node.ErrorPassive {
			continue // origin disconnected; skip this frame
		}
		key := abcheck.MsgKey{Origin: origin, Seq: uint32(i + 1)}
		f := &frame.Frame{
			ID:   uint32(0x200 | origin),
			Data: Payload(origin, key.Seq, payload),
		}
		if err := ctrl.Enqueue(f); err != nil {
			return nil, err
		}
		broadcastSlot := cluster.Net.Slot()
		tr.Broadcasts = append(tr.Broadcasts, abcheck.Broadcast{Key: key, Slot: broadcastSlot})
		res.FramesSent++

		// Track deliveries of this frame by counting cluster deliveries.
		for n := 0; n < cfg.Nodes; n++ {
			before[n] = len(cluster.Deliveries[n])
		}
		if !cluster.RunUntilQuiet(slotsPerFrame) {
			res.Incomplete++
		}
		frameRetrans := drain()
		if cfg.Metrics != nil {
			cfg.Metrics.AddFramesSent(1)
			cfg.Metrics.ObserveFrameRetransmits(frameRetrans)
			cfg.Metrics.ObserveSettleLatency(cluster.Net.Slot() - broadcastSlot)
		}

		// Classify the frame's fate per receiver.
		got, missing := 0, 0
		for n := 0; n < cfg.Nodes; n++ {
			if n == origin {
				continue
			}
			mode := cluster.Nodes[n].Mode()
			correct := mode == node.ErrorActive || mode == node.ErrorPassive
			count := 0
			for _, d := range cluster.Deliveries[n][before[n]:] {
				if k, ok := PayloadKey(d.Frame); ok && k == key {
					count++
					tr.Deliveries = append(tr.Deliveries, abcheck.Delivery{Node: n, Key: k, Slot: d.Slot})
				}
			}
			if !correct {
				continue
			}
			switch {
			case count == 0:
				missing++
			case count >= 1:
				got++
				if count > 1 {
					res.Duplicates++
				}
			}
		}
		switch {
		case got > 0 && missing > 0:
			res.IMOs++
			if tel != nil {
				tel.Emit(obs.Event{
					Slot:    broadcastSlot,
					Kind:    obs.KindIMO,
					Station: -1,
					Aux:     key.Seq,
				})
			}
		case got == 0 && missing > 0:
			res.LostEverywhere++
		}
	}
	drain()

	for n := 0; n < cfg.Nodes; n++ {
		mode := cluster.Nodes[n].Mode()
		if mode == node.BusOff || mode == node.SwitchedOff {
			tr.Faulty[n] = true
		}
	}
	res.Slots = cluster.Net.Slot()
	res.BitFlips = flips()
	res.Report = abcheck.Check(tr)
	if cfg.Metrics != nil {
		cfg.Metrics.AddBits(res.Slots)
	}
	return res, nil
}
