package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestMonteCarloErrorFree(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			res, err := sim.MonteCarlo(sim.MCConfig{
				Policy: policy, Nodes: 4, Frames: 30, BerStar: 0, Seed: 1,
				RotateOrigins: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.IMOs != 0 || res.Duplicates != 0 || res.LostEverywhere != 0 || res.Incomplete != 0 {
				t.Errorf("error-free run: %+v", res)
			}
			if !res.Report.AtomicBroadcast() {
				t.Errorf("error-free run must satisfy Atomic Broadcast:\n%s", res.Report.Summary())
			}
			if res.FramesSent != 30 {
				t.Errorf("sent %d frames, want 30", res.FramesSent)
			}
		})
	}
}

// Under EOF-focused random errors, standard CAN shows double receptions
// (and occasionally IMOs), while MajorCAN_5 shows neither. MinorCAN
// eliminates duplicates but still admits IMOs in the new scenarios.
func TestMonteCarloEOFErrorsComparative(t *testing.T) {
	run := func(t *testing.T, policyName string) *sim.MCResult {
		t.Helper()
		res, err := sim.MonteCarlo(sim.MCConfig{
			Policy:        policies(t)[policyName],
			Nodes:         5,
			Frames:        2500,
			BerStar:       0.02,
			Seed:          7,
			EOFOnly:       true,
			ResetCounters: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FramesSent != 2500 {
			t.Fatalf("only %d of 2500 frames sent (origin died?)", res.FramesSent)
		}
		return res
	}

	t.Run("CAN shows inconsistencies", func(t *testing.T) {
		res := run(t, "CAN")
		if res.Duplicates == 0 {
			t.Error("standard CAN must show double receptions under EOF errors")
		}
		if res.IMOs == 0 {
			t.Error("standard CAN must show inconsistent message omissions under EOF errors")
		}
		t.Logf("CAN: IMOs=%d dups=%d lost=%d flips=%d", res.IMOs, res.Duplicates, res.LostEverywhere, res.BitFlips)
	})
	t.Run("MajorCAN_5 stays consistent", func(t *testing.T) {
		res := run(t, "MajorCAN_5")
		if res.IMOs != 0 {
			t.Errorf("MajorCAN_5 produced %d IMOs", res.IMOs)
		}
		if res.Duplicates != 0 {
			t.Errorf("MajorCAN_5 produced %d duplicates", res.Duplicates)
		}
		if !res.Report.AtomicBroadcast() {
			t.Errorf("MajorCAN_5 run must satisfy Atomic Broadcast:\n%s", res.Report.Summary())
		}
		t.Logf("MajorCAN_5: flips=%d frames=%d", res.BitFlips, res.FramesSent)
	})
	t.Run("MinorCAN beats CAN but still fails on multi-error frames", func(t *testing.T) {
		can := run(t, "CAN")
		minor := run(t, "MinorCAN")
		// MinorCAN eliminates every single-error inconsistency (the
		// deterministic Fig. 2 tests); at this error density multi-error
		// frames are common and MinorCAN is — as the paper proves — still
		// vulnerable, but it must do strictly better than standard CAN.
		if minor.Duplicates >= can.Duplicates {
			t.Errorf("MinorCAN duplicates = %d, want < CAN's %d", minor.Duplicates, can.Duplicates)
		}
		t.Logf("CAN: IMOs=%d dups=%d; MinorCAN: IMOs=%d dups=%d",
			can.IMOs, can.Duplicates, minor.IMOs, minor.Duplicates)
	})
}

// Full-random (not EOF-only) mid-frame errors are recovered by plain
// retransmission under every variant: no inconsistencies, only retries.
func TestMonteCarloMidFrameRobustness(t *testing.T) {
	for name, policy := range policies(t) {
		t.Run(name, func(t *testing.T) {
			res, err := sim.MonteCarlo(sim.MCConfig{
				Policy: policy, Nodes: 4, Frames: 150, BerStar: 3e-4, Seed: 42,
				RotateOrigins: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.BitFlips == 0 {
				t.Fatal("expected some injected flips")
			}
			if res.IMOs != 0 {
				t.Errorf("%s: %d IMOs under mid-frame errors (flips=%d)", name, res.IMOs, res.BitFlips)
			}
			if res.Incomplete != 0 {
				t.Errorf("%s: %d incomplete frames", name, res.Incomplete)
			}
		})
	}
}

// The MajorCAN guarantee is parametric: larger m tolerates denser EOF
// errors. At a flip rate where MajorCAN_3's majority vote starts being
// overwhelmed, MajorCAN_8 must still hold. (Both must be consistent at the
// rates of the comparative test above.)
func TestMonteCarloMajorCANmSweep(t *testing.T) {
	for _, m := range []int{3, 5, 8} {
		res, err := sim.MonteCarlo(sim.MCConfig{
			Policy:        core.MustMajorCAN(m),
			Nodes:         5,
			Frames:        400,
			BerStar:       0.02,
			Seed:          11,
			EOFOnly:       true,
			ResetCounters: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.IMOs != 0 || res.Duplicates != 0 {
			t.Errorf("MajorCAN_%d: IMOs=%d dups=%d", m, res.IMOs, res.Duplicates)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := sim.MonteCarlo(sim.MCConfig{Policy: core.NewStandard(), Nodes: 2, Frames: 1}); err == nil {
		t.Error("too few nodes must be rejected")
	}
	if _, err := sim.MonteCarlo(sim.MCConfig{Policy: core.NewStandard(), Nodes: 4, Frames: 0}); err == nil {
		t.Error("zero frames must be rejected")
	}
}
