package sim_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/sim"
)

func sweepConfig() sim.MCConfig {
	return sim.MCConfig{
		Policy:        core.NewStandard(),
		Nodes:         4,
		Frames:        60,
		BerStar:       0.02,
		EOFOnly:       true,
		ResetCounters: true,
	}
}

func TestSweepDeterministicPerSeed(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	a := sim.SweepSeeds(sweepConfig(), seeds, 4)
	b := sim.SweepSeeds(sweepConfig(), seeds, 1)
	if len(a) != len(seeds) || len(b) != len(seeds) {
		t.Fatalf("point counts %d/%d, want %d", len(a), len(b), len(seeds))
	}
	for i := range seeds {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("seed %d errored: %v / %v", seeds[i], a[i].Err, b[i].Err)
		}
		if a[i].Seed != seeds[i] {
			t.Errorf("point %d seed = %d, want %d (order must be preserved)", i, a[i].Seed, seeds[i])
		}
		ra, rb := a[i].Result, b[i].Result
		if ra.IMOs != rb.IMOs || ra.Duplicates != rb.Duplicates || ra.BitFlips != rb.BitFlips {
			t.Errorf("seed %d: parallel (%d,%d,%d) != serial (%d,%d,%d)",
				seeds[i], ra.IMOs, ra.Duplicates, ra.BitFlips, rb.IMOs, rb.Duplicates, rb.BitFlips)
		}
	}
}

func TestSweepSummary(t *testing.T) {
	seeds := []int64{10, 11, 12, 13}
	points := sim.SweepSeeds(sweepConfig(), seeds, 2)
	s := sim.Summarize(points)
	if s.Points != 4 || s.Errors != 0 {
		t.Fatalf("summary %+v", s)
	}
	if s.Frames != 4*60 {
		t.Errorf("frames = %d, want 240", s.Frames)
	}
	if s.Duplicates == 0 {
		t.Error("standard CAN at this rate should show duplicates across 240 frames")
	}
	if s.String() == "" {
		t.Error("summary string must not be empty")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := sweepConfig()
	bad.Nodes = 2 // invalid
	points := sim.SweepSeeds(bad, []int64{1, 2}, 2)
	s := sim.Summarize(points)
	if s.Errors != 2 {
		t.Errorf("errors = %d, want 2", s.Errors)
	}
}

func TestSweepParallelismClamp(t *testing.T) {
	points := sim.SweepSeeds(sweepConfig(), []int64{1}, 0) // clamped to 1
	if len(points) != 1 || points[0].Err != nil {
		t.Fatalf("points %+v", points)
	}
}

func TestSweepCancelledContextSkipsPoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seeds := []int64{1, 2, 3}
	points := sim.SweepSeedsContext(ctx, sweepConfig(), seeds, 2)
	if len(points) != len(seeds) {
		t.Fatalf("got %d points, want %d", len(points), len(seeds))
	}
	s := sim.Summarize(points)
	if s.Cancelled != len(seeds) || s.Errors != 0 {
		t.Errorf("summary %+v, want all %d points cancelled", s, len(seeds))
	}
}

func TestSweepSharedFlipCounter(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	points := sim.SweepSeeds(sweepConfig(), seeds, 2)
	s := sim.Summarize(points)
	if s.Flips == 0 {
		t.Fatal("sweep at ber*=0.02 must record bit flips")
	}
	// The per-point flips come from forks of one shared parent; they must
	// match what a dedicated disturber per point produces.
	for _, p := range points {
		cfg := sweepConfig()
		cfg.Seed = p.Seed
		cfg.Disturber = errmodel.NewRandom(cfg.BerStar, p.Seed)
		solo, err := sim.MonteCarlo(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if solo.BitFlips != p.Result.BitFlips || solo.IMOs != p.Result.IMOs {
			t.Errorf("seed %d: solo (%d flips, %d IMOs) != sweep (%d flips, %d IMOs)",
				p.Seed, solo.BitFlips, solo.IMOs, p.Result.BitFlips, p.Result.IMOs)
		}
	}
}
