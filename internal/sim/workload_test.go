package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestWorkloadErrorFree(t *testing.T) {
	res, err := sim.RunWorkload(sim.WorkloadConfig{
		Policy: core.NewStandard(),
		Nodes:  8,
		Slots:  40000,
		Load:   0.9,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.TxSuccess == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.IMOs != 0 || res.Duplicates != 0 {
		t.Errorf("error-free workload produced IMOs=%d dups=%d", res.IMOs, res.Duplicates)
	}
	// Every successful transmission reaches all 7 receivers.
	if res.Delivered != res.TxSuccess*7 {
		t.Errorf("delivered %d, want %d (7 per success)", res.Delivered, res.TxSuccess*7)
	}
	// The bus must actually be loaded: utilisation within (0.5, 1].
	if res.Utilisation < 0.5 || res.Utilisation > 1.001 {
		t.Errorf("utilisation = %.2f, want ~0.9", res.Utilisation)
	}
}

func TestWorkloadWithErrorsStaysConsistentUnderMajorCAN(t *testing.T) {
	res, err := sim.RunWorkload(sim.WorkloadConfig{
		Policy:  core.MustMajorCAN(5),
		Nodes:   6,
		Slots:   60000,
		Load:    0.8,
		BerStar: 2e-4,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorFrames == 0 {
		t.Error("expected some error signalling under random errors")
	}
	if res.IMOs != 0 || res.Duplicates != 0 {
		t.Errorf("MajorCAN workload produced IMOs=%d dups=%d", res.IMOs, res.Duplicates)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := sim.RunWorkload(sim.WorkloadConfig{Policy: core.NewStandard(), Nodes: 2, Slots: 100, Load: 0.5}); err == nil {
		t.Error("too few nodes must be rejected")
	}
	if _, err := sim.RunWorkload(sim.WorkloadConfig{Policy: core.NewStandard(), Nodes: 4, Slots: 100, Load: 1.5}); err == nil {
		t.Error("overload must be rejected")
	}
	if _, err := sim.RunWorkload(sim.WorkloadConfig{Policy: core.NewStandard(), Nodes: 4, Slots: 0, Load: 0.5}); err == nil {
		t.Error("zero slots must be rejected")
	}
}
