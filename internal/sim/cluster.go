// Package sim provides the experiment harness: clusters of simulated CAN
// controllers on a shared bus, workload generation, Monte Carlo runs and
// consistency statistics.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bus"
	"repro/internal/bus/fastpath"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/obs"
)

// EngineChoice selects the bit-slot execution engine for a cluster: the
// per-slot reference loop or the fast engine (internal/bus/fastpath),
// which produces bit-identical traces. An engine choice is an execution
// knob, never part of an experiment's identity: it must not appear in
// sweep specs or content addresses, exactly like parallelism.
type EngineChoice string

const (
	// EngineAuto defers to the process-wide default (fast, unless a CLI
	// -engine=reference flag rerouted it via SetDefaultEngine).
	EngineAuto EngineChoice = ""
	// EngineFast installs the packed fast bit-slot engine.
	EngineFast EngineChoice = "fast"
	// EngineReference runs the reference per-slot Step loop.
	EngineReference EngineChoice = "reference"
)

// referenceDefault flips the process-wide EngineAuto resolution from
// fast to reference (the CLIs' escape hatch).
var referenceDefault atomic.Bool

// SetDefaultEngine sets how EngineAuto resolves process-wide. EngineAuto
// restores the built-in default (fast). It rejects unknown names so CLI
// flag values can be passed through directly.
func SetDefaultEngine(c EngineChoice) error {
	switch c {
	case EngineAuto, EngineFast:
		referenceDefault.Store(false)
	case EngineReference:
		referenceDefault.Store(true)
	default:
		return fmt.Errorf("sim: unknown engine %q (want %q or %q)", c, EngineFast, EngineReference)
	}
	return nil
}

// DefaultEngine returns the engine EngineAuto currently resolves to.
func DefaultEngine() EngineChoice {
	if referenceDefault.Load() {
		return EngineReference
	}
	return EngineFast
}

// Delivery records one frame handed to a node's upper layer.
type Delivery struct {
	// Slot is the bit slot at which the frame was delivered.
	Slot uint64
	// Frame is the delivered frame.
	Frame *frame.Frame
}

// TxResult records one successful transmission at the sending node.
type TxResult struct {
	Slot  uint64
	Frame *frame.Frame
}

// ClusterOptions configures a Cluster.
type ClusterOptions struct {
	// Nodes is the number of stations (must be >= 2 for acknowledgement).
	Nodes int
	// Policy is the end-of-frame policy shared by all stations.
	Policy node.EOFPolicy
	// WarningSwitchOff enables the paper's switch-off-at-warning-limit
	// policy on every node.
	WarningSwitchOff bool
	// AutoRecover enables bus-off recovery (128 x 11 recessive bits) on
	// every node, so fault-injection schedules can exercise the
	// crash-then-restart path.
	AutoRecover bool
	// NodeHooks, if non-nil, is called for every node so callers can add
	// extra instrumentation; the returned hooks are merged with the
	// cluster's own recording hooks.
	NodeHooks func(station int) node.Hooks
	// Events, if non-nil, receives the protocol event stream: every
	// controller and the bus emit obs events into it. A nil sink costs one
	// nil check per potential event.
	Events obs.Sink
	// Engine selects the bit-slot execution engine (default EngineAuto:
	// the process-wide default, normally the fast engine).
	Engine EngineChoice
}

// Cluster is a set of CAN controllers on one simulated bus with recorded
// deliveries and transmissions.
type Cluster struct {
	Net   *bus.Network
	Nodes []*node.Controller

	// Deliveries[i] are the frames delivered at station i in order.
	Deliveries [][]Delivery
	// TxResults[i] are the successful transmissions of station i in order.
	TxResults [][]TxResult
	// Verdicts[i] are the accept/reject decisions of station i per frame
	// episode, in order.
	Verdicts [][]node.Verdict
}

// NewCluster builds a cluster of identical controllers.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Nodes < 2 {
		return nil, fmt.Errorf("sim: a CAN bus needs at least 2 nodes, got %d", opts.Nodes)
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	c := &Cluster{
		Net:        bus.NewNetwork(),
		Nodes:      make([]*node.Controller, opts.Nodes),
		Deliveries: make([][]Delivery, opts.Nodes),
		TxResults:  make([][]TxResult, opts.Nodes),
		Verdicts:   make([][]node.Verdict, opts.Nodes),
	}
	for i := 0; i < opts.Nodes; i++ {
		i := i
		var extra node.Hooks
		if opts.NodeHooks != nil {
			extra = opts.NodeHooks(i)
		}
		hooks := node.Hooks{
			OnDeliver: func(slot uint64, f *frame.Frame) {
				c.Deliveries[i] = append(c.Deliveries[i], Delivery{Slot: slot, Frame: f})
				if extra.OnDeliver != nil {
					extra.OnDeliver(slot, f)
				}
			},
			OnTxSuccess: func(slot uint64, f *frame.Frame) {
				c.TxResults[i] = append(c.TxResults[i], TxResult{Slot: slot, Frame: f})
				if extra.OnTxSuccess != nil {
					extra.OnTxSuccess(slot, f)
				}
			},
			OnVerdict: func(slot uint64, v node.Verdict, tx bool) {
				c.Verdicts[i] = append(c.Verdicts[i], v)
				if extra.OnVerdict != nil {
					extra.OnVerdict(slot, v, tx)
				}
			},
			OnError:      extra.OnError,
			OnModeChange: extra.OnModeChange,
		}
		ctrl := node.New(fmt.Sprintf("n%d", i), opts.Policy, node.Options{
			WarningSwitchOff: opts.WarningSwitchOff,
			AutoRecover:      opts.AutoRecover,
			Hooks:            hooks,
		})
		c.Nodes[i] = ctrl
		station := c.Net.Attach(ctrl)
		if opts.Events != nil {
			ctrl.Instrument(opts.Events, station)
		}
	}
	if opts.Events != nil {
		c.Net.SetEmitter(opts.Events)
	}
	engine := opts.Engine
	if engine == EngineAuto {
		engine = DefaultEngine()
	}
	switch engine {
	case EngineFast:
		fastpath.Install(c.Net)
	case EngineReference:
		// The network's built-in per-slot Step loop.
	default:
		return nil, fmt.Errorf("sim: unknown engine %q (want %q or %q)", engine, EngineFast, EngineReference)
	}
	return c, nil
}

// MustCluster is NewCluster panicking on error, for tests and examples.
func MustCluster(opts ClusterOptions) *Cluster {
	c, err := NewCluster(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Quiet reports whether every (live) controller is idle with an empty
// transmit queue.
func (c *Cluster) Quiet() bool {
	for _, n := range c.Nodes {
		if n.Mode() == node.BusOff || n.Mode() == node.SwitchedOff {
			continue
		}
		if !n.Idle() {
			return false
		}
	}
	return true
}

// RunUntilQuiet steps the network until the bus is quiet (plus a few idle
// slots to flush intermission) or the slot budget is exhausted; it reports
// whether quiescence was reached.
func (c *Cluster) RunUntilQuiet(maxSlots int) bool {
	done := c.Net.RunUntil(c.Quiet, maxSlots)
	// A few extra slots so trailing idle bits appear in traces.
	c.Net.Run(4)
	return done
}

// DeliveredAt reports whether station i delivered a frame equal to f.
func (c *Cluster) DeliveredAt(i int, f *frame.Frame) bool {
	for _, d := range c.Deliveries[i] {
		if d.Frame.Equal(f) {
			return true
		}
	}
	return false
}

// DeliveryCount returns how many times station i delivered a frame equal
// to f.
func (c *Cluster) DeliveryCount(i int, f *frame.Frame) int {
	n := 0
	for _, d := range c.Deliveries[i] {
		if d.Frame.Equal(f) {
			n++
		}
	}
	return n
}
