package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// End-to-end latency comparison at identical load: MajorCAN_5's error-free
// cost is 3 bits per frame over standard CAN, which must show up as a
// latency difference of a few bit times, not frames.
func TestLatencyOverheadAcrossPolicies(t *testing.T) {
	resCAN, err := sim.RunWorkload(sim.WorkloadConfig{
		Policy: core.NewStandard(), Nodes: 6, Slots: 60000, Load: 0.7, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	resMaj, err := sim.RunWorkload(sim.WorkloadConfig{
		Policy: core.MustMajorCAN(5), Nodes: 6, Slots: 60000, Load: 0.7, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resCAN.MeanLatency <= 0 || resMaj.MeanLatency <= 0 {
		t.Fatalf("latencies not measured: CAN=%.1f Maj=%.1f", resCAN.MeanLatency, resMaj.MeanLatency)
	}
	diff := resMaj.MeanLatency - resCAN.MeanLatency
	// Error-free per-frame overhead of MajorCAN_5 is 3 bits; queueing can
	// amplify it slightly but it must stay within a fraction of one frame
	// time (~115 slots), nowhere near the >= 1 extra frame of the
	// higher-level protocols.
	if diff < 0 || diff > 40 {
		t.Errorf("mean latency difference = %.1f slots (CAN %.1f, MajorCAN %.1f); want a few bits",
			diff, resCAN.MeanLatency, resMaj.MeanLatency)
	}
	t.Logf("mean latency: CAN=%.1f MajorCAN_5=%.1f (+%.1f slots); max: %d vs %d",
		resCAN.MeanLatency, resMaj.MeanLatency, diff, resCAN.MaxLatency, resMaj.MaxLatency)
}
