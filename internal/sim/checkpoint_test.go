package sim

import (
	"context"
	"encoding/json"
	"testing"
)

func ckptSpec() SweepSpec {
	return SweepSpec{
		Protocol:      "majorcan_5",
		Frames:        50,
		BerStar:       0.02,
		Seed:          7,
		Seeds:         12,
		EOFOnly:       true,
		ResetCounters: true,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepResumeByteIdentical is the determinism contract behind crash
// recovery: a sweep interrupted at any checkpoint boundary and resumed
// from the saved prefix must produce the exact bytes an uninterrupted
// run produces.
func TestSweepResumeByteIdentical(t *testing.T) {
	spec := ckptSpec()
	ref, err := RunSweepSpec(context.Background(), spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := mustJSON(t, ref)

	// First run: capture every checkpoint, batch size 4.
	var checkpoints [][]PointOutcome
	_, err = RunSweepSpecResumable(context.Background(), spec, 2, nil, &SweepResume{
		Every: 4,
		Save: func(done []PointOutcome) error {
			checkpoints = append(checkpoints, done)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) != 2 { // 12 points, batch 4: saves after 4 and 8
		t.Fatalf("got %d checkpoints, want 2", len(checkpoints))
	}

	// Resume from each checkpoint; the merged outcome must be identical.
	for i, prior := range checkpoints {
		res, err := RunSweepSpecResumable(context.Background(), spec, 3, nil, &SweepResume{
			Prior: prior,
			Every: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := mustJSON(t, res); string(got) != string(refJSON) {
			t.Fatalf("resume from checkpoint %d (%d points) diverged:\n got %s\nwant %s",
				i, len(prior), got, refJSON)
		}
	}
}

// TestSweepResumeRejectsMismatchedPrior: a checkpoint recorded for a
// different seed list (or holding cancelled placeholders) must be
// discarded, not merged.
func TestSweepResumeRejectsMismatchedPrior(t *testing.T) {
	spec := ckptSpec()
	ref, err := RunSweepSpec(context.Background(), spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	bogus := []PointOutcome{
		{Seed: 999, FramesSent: 1}, // wrong seed: not this spec's stream
	}
	res, err := RunSweepSpecResumable(context.Background(), spec, 2, nil, &SweepResume{Prior: bogus})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res)) != string(mustJSON(t, ref)) {
		t.Fatal("mismatched prior perturbed the outcome")
	}

	cancelled := []PointOutcome{{Seed: spec.Seed, Cancelled: true}}
	res2, err := RunSweepSpecResumable(context.Background(), spec, 2, nil, &SweepResume{Prior: cancelled})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res2)) != string(mustJSON(t, ref)) {
		t.Fatal("cancelled prior entries were treated as completed work")
	}
}

// TestSweepCancelledMidBatchNotSaved: cancellation inside a batch stops
// checkpointing — a checkpoint holds only completed work, so a crash
// during drain can never persist a partial batch.
func TestSweepCancelledMidBatchNotSaved(t *testing.T) {
	spec := ckptSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first batch starts
	saves := 0
	res, err := RunSweepSpecResumable(ctx, spec, 2, nil, &SweepResume{
		Every: 4,
		Save:  func([]PointOutcome) error { saves++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves != 0 {
		t.Fatalf("cancelled run saved %d checkpoints, want 0", saves)
	}
	if res.Summary.Cancelled != spec.Seeds {
		t.Fatalf("cancelled = %d, want %d", res.Summary.Cancelled, spec.Seeds)
	}
}
