package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// SweepResume parameterises a checkpointable sweep execution. The knobs
// are execution-side only — they change when progress is persisted and
// where a run starts, never what the finished outcome contains — so they
// stay invisible to the job's content address. A resumed sweep is
// byte-identical to an uninterrupted one because each point is fully
// determined by its seed and the outcome assembles points in seed order.
type SweepResume struct {
	// Prior is the seed-order prefix of completed point outcomes loaded
	// from a checkpoint. Entries that do not match the spec's seed list
	// (or follow a cancelled placeholder) are discarded defensively.
	Prior []PointOutcome
	// Every is the batch size between checkpoints: the sweep runs Every
	// points, then reports the full completed prefix (default 8).
	Every int
	// Save, if non-nil, is called at every batch boundary with the
	// completed seed-order prefix. Errors are the caller's concern —
	// checkpointing is best-effort and never fails the sweep.
	Save func(done []PointOutcome) error
}

// validPrefix returns the longest prefix of prior that matches the
// spec's seed list and contains only completed (non-cancelled) points.
func validPrefix(prior []PointOutcome, seeds []int64) []PointOutcome {
	n := 0
	for ; n < len(prior) && n < len(seeds); n++ {
		if prior[n].Seed != seeds[n] || prior[n].Cancelled {
			break
		}
	}
	return prior[:n]
}

// outcomeOf converts one completed sweep point.
func outcomeOf(p SweepPoint) PointOutcome {
	r := p.Result
	return PointOutcome{
		Seed:            p.Seed,
		Slots:           r.Slots,
		BitFlips:        r.BitFlips,
		FramesSent:      r.FramesSent,
		IMOs:            r.IMOs,
		Duplicates:      r.Duplicates,
		LostEverywhere:  r.LostEverywhere,
		Incomplete:      r.Incomplete,
		AtomicBroadcast: r.Report.AtomicBroadcast(),
	}
}

// SummarizeOutcomes folds serialised point outcomes into the sweep
// summary — the same totals Summarize derives from live points, so a
// resumed sweep's summary equals the uninterrupted one's.
func SummarizeOutcomes(points []PointOutcome) SweepSummary {
	var s SweepSummary
	for _, p := range points {
		s.Points++
		if p.Cancelled {
			s.Cancelled++
			continue
		}
		s.Frames += p.FramesSent
		s.IMOs += p.IMOs
		s.Duplicates += p.Duplicates
		s.Flips += p.BitFlips
	}
	return s
}

// RunSweepSpecResumable executes a sweep spec in checkpointable batches:
// points run Every at a time (in seed order across batches), and after
// each completed batch rz.Save receives the full completed prefix. A
// later run passing that prefix back as rz.Prior skips the finished
// seeds and produces an outcome byte-identical to an uninterrupted run —
// the recovery path the simulation service uses after a crash. rz nil
// (or a zero SweepResume) degenerates to a single uncheckpointed batch.
func RunSweepSpecResumable(ctx context.Context, spec SweepSpec, parallelism int, tel PointTelemetry, rz *SweepResume) (*SweepOutcome, error) {
	spec.Normalize()
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	seeds := spec.SeedList()
	every := len(seeds)
	var done []PointOutcome
	var save func([]PointOutcome) error
	if rz != nil {
		if rz.Every > 0 {
			every = rz.Every
		} else if rz.Save != nil {
			every = 8
		}
		done = append(done, validPrefix(rz.Prior, seeds)...)
		save = rz.Save
	}
	if every < 1 {
		every = 1
	}

	out := &SweepOutcome{Spec: spec}
	for len(done) < len(seeds) {
		base := len(done)
		end := base + every
		if end > len(seeds) {
			end = len(seeds)
		}
		batchTel := tel
		if tel != nil {
			batchTel = func(i int, seed int64) (obs.Sink, *obs.Metrics) {
				return tel(base+i, seed)
			}
		}
		points := SweepSeedsObserved(ctx, cfg, seeds[base:end], parallelism, batchTel)
		cancelled := false
		for _, p := range points {
			if p.Err != nil {
				if errors.Is(p.Err, context.Canceled) || errors.Is(p.Err, context.DeadlineExceeded) {
					done = append(done, PointOutcome{Seed: p.Seed, Cancelled: true})
					cancelled = true
					continue
				}
				return nil, fmt.Errorf("sim: seed %d: %w", p.Seed, p.Err)
			}
			done = append(done, outcomeOf(p))
		}
		if cancelled {
			// Mark the not-yet-started remainder and stop without saving:
			// a checkpoint must hold only completed work.
			for _, s := range seeds[len(done):] {
				done = append(done, PointOutcome{Seed: s, Cancelled: true})
			}
			break
		}
		if save != nil && len(done) < len(seeds) {
			_ = save(append([]PointOutcome(nil), done...))
		}
	}
	out.Points = done
	out.Summary = SummarizeOutcomes(done)
	return out, nil
}
