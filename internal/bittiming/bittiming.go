// Package bittiming models the CAN bit timing layer: the division of a
// bit time into time quanta (SYNC_SEG, PROP_SEG, PHASE_SEG1, PHASE_SEG2),
// hard synchronisation and resynchronisation, and the oscillator tolerance
// they buy.
//
// The paper's fault model includes clock failures ("its local clock drift
// exceeds the specified bound"); the main simulator abstracts bit timing
// away by running slot-synchronously, which is valid exactly while every
// oscillator stays inside the CAN tolerance. This package substantiates
// that assumption: a receiver-side sampling model driven by a drifting
// oscillator shows that streams sample correctly within the analytic
// tolerance bound and break beyond it.
package bittiming

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
)

// Segments describes a CAN bit time in time quanta. SYNC_SEG is always
// one quantum and is implicit.
type Segments struct {
	// Prop is the propagation segment (>= 1).
	Prop int
	// PS1 is phase segment 1 (>= 1); the sample point lies at its end.
	PS1 int
	// PS2 is phase segment 2 (>= 1).
	PS2 int
	// SJW is the (re)synchronisation jump width (>= 1, <= min(PS1, PS2) by
	// the conformance rules enforced in Validate).
	SJW int
}

// Classic configuration: 16 quanta per bit, sample point at 87.5%.
func Classic() Segments {
	return Segments{Prop: 7, PS1: 6, PS2: 2, SJW: 2}
}

// NBT returns the nominal bit time in quanta (1 + Prop + PS1 + PS2).
func (s Segments) NBT() int { return 1 + s.Prop + s.PS1 + s.PS2 }

// SamplePoint returns the quantum index (0-based from the start of the
// bit) at which the bus is sampled: the end of PHASE_SEG1.
func (s Segments) SamplePoint() int { return 1 + s.Prop + s.PS1 }

// Validate checks the CAN conformance constraints.
func (s Segments) Validate() error {
	switch {
	case s.Prop < 1:
		return fmt.Errorf("bittiming: PROP_SEG %d must be >= 1", s.Prop)
	case s.PS1 < 1:
		return fmt.Errorf("bittiming: PHASE_SEG1 %d must be >= 1", s.PS1)
	case s.PS2 < 1:
		return fmt.Errorf("bittiming: PHASE_SEG2 %d must be >= 1", s.PS2)
	case s.SJW < 1:
		return fmt.Errorf("bittiming: SJW %d must be >= 1", s.SJW)
	case s.SJW > s.PS1 || s.SJW > s.PS2:
		return fmt.Errorf("bittiming: SJW %d must not exceed min(PS1, PS2) = %d",
			s.SJW, min(s.PS1, s.PS2))
	case s.NBT() < 8 || s.NBT() > 25:
		return fmt.Errorf("bittiming: bit time of %d quanta outside the 8..25 range", s.NBT())
	}
	return nil
}

// MaxTolerance returns the maximum oscillator deviation df (as a fraction;
// total mismatch between two nodes is 2*df) under the two classic CAN
// conditions:
//
//  1. Resynchronisation must absorb the drift accumulated over the longest
//     edge-free stretch, 10 bits (bit stuffing guarantees an edge at least
//     every 10 bit times): df <= SJW / (2 * 10 * NBT).
//  2. The sample point must stay valid across the 13-bit error-flag window
//     without resynchronisation: df <= min(PS1, PS2) / (2 * (13*NBT - PS2)).
func (s Segments) MaxTolerance() float64 {
	nbt := float64(s.NBT())
	cond1 := float64(s.SJW) / (2 * 10 * nbt)
	cond2 := float64(min(s.PS1, s.PS2)) / (2 * (13*nbt - float64(s.PS2)))
	return math.Min(cond1, cond2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Sampler models a receiver's clock-domain sampling of a transmitted bit
// stream. The transmitter emits the stream with its own oscillator
// deviation; the receiver, running on a different oscillator, hard-syncs
// on the first edge and resynchronises on every recessive-to-dominant
// edge per the CAN rules, sampling each bit at the end of PHASE_SEG1.
type Sampler struct {
	seg Segments
	// RxDrift and TxDrift are fractional oscillator deviations (e.g.
	// +0.001 = 0.1% fast).
	RxDrift, TxDrift float64
}

// NewSampler builds a sampler with validated segments.
func NewSampler(seg Segments, rxDrift, txDrift float64) (*Sampler, error) {
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	return &Sampler{seg: seg, RxDrift: rxDrift, TxDrift: txDrift}, nil
}

// Sample re-samples the transmitted levels through the receiver's clock
// domain and returns the receiver's view of the stream (same length; the
// stream is assumed to start with the dominant edge of a SOF for the hard
// synchronisation, which is how every CAN frame begins).
func (sp *Sampler) Sample(levels bitstream.Sequence) bitstream.Sequence {
	if len(levels) == 0 {
		return nil
	}
	seg := sp.seg
	nbt := float64(seg.NBT())
	txBit := nbt * (1 + sp.TxDrift) // transmitter's bit duration in nominal quanta
	rxTq := 1 + sp.RxDrift          // receiver's quantum duration in nominal quanta

	// level at absolute (nominal-quanta) time t.
	levelAt := func(t float64) bitstream.Level {
		idx := int(math.Floor(t / txBit))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			return bitstream.Recessive
		}
		return levels[idx]
	}

	out := make(bitstream.Sequence, 0, len(levels))
	// Hard sync: the receiver aligns its bit start with the first edge
	// (the SOF edge at t = 0).
	t := 0.0
	prev := bitstream.Recessive
	// phase counts receiver quanta since the start of the current bit.
	phase := 0
	sampleAt := seg.SamplePoint()
	bitLen := seg.NBT()
	resyncDone := false
	var sampled bitstream.Level = bitstream.Recessive

	for len(out) < len(levels) {
		cur := levelAt(t)
		// Edge detection: recessive -> dominant between consecutive quanta.
		if prev == bitstream.Recessive && cur == bitstream.Dominant && phase != 0 && !resyncDone {
			// Resynchronise: the edge should have fallen in SYNC_SEG
			// (phase 0). A late edge (phase error e > 0, before the sample
			// point) lengthens PS1; an early edge (after the sample point,
			// i.e. in PS2 of the previous bit) shortens PS2.
			e := phase
			if e <= bitLen/2 {
				// Late edge: lengthen the current bit by min(e, SJW).
				adj := e
				if adj > seg.SJW {
					adj = seg.SJW
				}
				phase -= adj
			} else {
				// Early edge (phase error negative): shorten by up to SJW.
				adj := bitLen - e
				if adj > seg.SJW {
					adj = seg.SJW
				}
				phase += adj
				if phase >= bitLen {
					// The bit ends now; deliver the sample taken earlier.
					out = append(out, sampled)
					phase -= bitLen
				}
			}
			resyncDone = true
		}
		if phase == sampleAt {
			sampled = cur
		}
		prev = cur
		t += rxTq
		phase++
		if phase >= bitLen {
			out = append(out, sampled)
			phase = 0
			resyncDone = false
		}
	}
	return out[:len(levels)]
}

// MismatchCount samples the stream and counts positions where the
// receiver's view differs from the transmitted levels.
func (sp *Sampler) MismatchCount(levels bitstream.Sequence) int {
	got := sp.Sample(levels)
	n := 0
	for i := range levels {
		if got[i] != levels[i] {
			n++
		}
	}
	return n
}
