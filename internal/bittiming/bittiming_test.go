package bittiming

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/frame"
)

func TestSegmentsValidation(t *testing.T) {
	tests := []struct {
		name    string
		seg     Segments
		wantErr bool
	}{
		{"classic", Classic(), false},
		{"zero prop", Segments{Prop: 0, PS1: 6, PS2: 2, SJW: 1}, true},
		{"zero ps1", Segments{Prop: 7, PS1: 0, PS2: 2, SJW: 1}, true},
		{"zero ps2", Segments{Prop: 7, PS1: 6, PS2: 0, SJW: 1}, true},
		{"zero sjw", Segments{Prop: 7, PS1: 6, PS2: 2, SJW: 0}, true},
		{"sjw exceeds ps2", Segments{Prop: 7, PS1: 6, PS2: 2, SJW: 3}, true},
		{"too short", Segments{Prop: 1, PS1: 1, PS2: 1, SJW: 1}, true},
		{"minimal legal", Segments{Prop: 3, PS1: 2, PS2: 2, SJW: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.seg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestClassicParameters(t *testing.T) {
	s := Classic()
	if s.NBT() != 16 {
		t.Errorf("NBT = %d, want 16", s.NBT())
	}
	if s.SamplePoint() != 14 { // 87.5% of 16
		t.Errorf("sample point = %d, want 14", s.SamplePoint())
	}
	tol := s.MaxTolerance()
	// Classic 16tq/SJW=2 tolerance: min(2/(2*10*16), 2/(2*(13*16-2)))
	// = min(0.625%, 0.485%) = ~0.485%... per mille region.
	if tol < 0.002 || tol > 0.01 {
		t.Errorf("tolerance = %v, expected a few per mille", tol)
	}
}

// With both oscillators ideal the sampler reproduces the stream exactly.
func TestSamplerIdealClocks(t *testing.T) {
	sp, err := NewSampler(Classic(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &frame.Frame{ID: 0x2AA, Data: []byte{0x55, 0xAA, 0x00, 0xFF}}
	enc, err := frame.Encode(f, frame.StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	if n := sp.MismatchCount(enc.Bits); n != 0 {
		t.Errorf("ideal clocks: %d mismatches, want 0", n)
	}
}

// encodeRandomFrames builds a long stream of real stuffed frame images
// separated by interframe gaps — the realistic on-the-wire bit pattern,
// including worst-case stuffing runs.
func encodeRandomFrames(t *testing.T, r *rand.Rand, frames int) bitstream.Sequence {
	t.Helper()
	var stream bitstream.Sequence
	for i := 0; i < frames; i++ {
		f := &frame.Frame{ID: uint32(r.Intn(frame.MaxStandardID + 1)), Data: make([]byte, 8)}
		if r.Intn(2) == 0 {
			// All-zero payloads maximise stuffing (the longest edge-free runs).
			for j := range f.Data {
				f.Data[j] = 0
			}
		} else {
			r.Read(f.Data)
		}
		enc, err := frame.Encode(f, frame.StandardEOFBits)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, enc.Bits...)
		stream = append(stream, bitstream.Repeat(bitstream.Recessive, 3)...)
	}
	return stream
}

// Within the analytic oscillator tolerance the receiver's resynchronised
// sampling reproduces every bit of realistic frame traffic.
func TestSamplerWithinTolerance(t *testing.T) {
	seg := Classic()
	tol := seg.MaxTolerance()
	r := rand.New(rand.NewSource(17))
	stream := encodeRandomFrames(t, r, 12)
	for _, frac := range []float64{0.25, 0.5, 0.8} {
		for _, sign := range []float64{+1, -1} {
			df := sign * tol * frac
			// Worst case: transmitter and receiver drift in opposite
			// directions (total mismatch 2*df).
			sp, err := NewSampler(seg, df, -df)
			if err != nil {
				t.Fatal(err)
			}
			if n := sp.MismatchCount(stream); n != 0 {
				t.Errorf("drift ±%.4f%% (%.0f%% of tolerance): %d mismatches over %d bits",
					100*df, 100*frac, n, len(stream))
			}
		}
	}
}

// Far beyond the tolerance the sampling breaks: the slot-synchronous
// abstraction of the main simulator would no longer be valid, and a real
// node would raise stuff/CRC/form errors (the paper's clock-failure
// class).
func TestSamplerBeyondTolerance(t *testing.T) {
	seg := Classic()
	tol := seg.MaxTolerance()
	r := rand.New(rand.NewSource(18))
	stream := encodeRandomFrames(t, r, 12)
	df := tol * 4
	sp, err := NewSampler(seg, df, -df)
	if err != nil {
		t.Fatal(err)
	}
	if n := sp.MismatchCount(stream); n == 0 {
		t.Errorf("drift ±%.3f%% (4x tolerance) produced no mismatch over %d bits", 100*df, len(stream))
	}
}

// A drift-corrupted stream fed through the receive pipeline is rejected by
// the CAN error detection (stuff or CRC error), never silently accepted as
// a different frame.
func TestDriftCorruptionIsDetected(t *testing.T) {
	seg := Classic()
	tol := seg.MaxTolerance()
	r := rand.New(rand.NewSource(19))
	detections := 0
	for trial := 0; trial < 60; trial++ {
		f := &frame.Frame{ID: uint32(r.Intn(frame.MaxStandardID + 1)), Data: make([]byte, 8)}
		r.Read(f.Data)
		enc, err := frame.Encode(f, frame.StandardEOFBits)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSampler(seg, 3*tol, -3*tol)
		if err != nil {
			t.Fatal(err)
		}
		view := sp.Sample(enc.Bits)

		var ds bitstream.Destuffer
		var a frame.Assembler
		corrupted := false
		for _, l := range view {
			kind, err := ds.Push(l)
			if err != nil {
				corrupted = true // stuff error
				break
			}
			if kind == bitstream.StuffBit {
				continue
			}
			if _, err := a.Push(l); err != nil {
				corrupted = true // form error
				break
			}
			if a.Done() {
				break
			}
		}
		if !corrupted && a.Done() {
			if !a.CRCOK() {
				corrupted = true
			} else if !a.Frame().Equal(f) {
				t.Fatalf("trial %d: drift forged a different frame", trial)
			}
		}
		if corrupted {
			detections++
		}
	}
	if detections == 0 {
		t.Error("3x-tolerance drift never corrupted a frame; the model seems inert")
	}
}

// The tolerance bound is monotone in SJW (more jump width buys more
// tolerance until the phase segments cap it).
func TestToleranceMonotoneInSJW(t *testing.T) {
	base := Segments{Prop: 7, PS1: 4, PS2: 4, SJW: 1}
	prev := 0.0
	for sjw := 1; sjw <= 4; sjw++ {
		s := base
		s.SJW = sjw
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		tol := s.MaxTolerance()
		if tol < prev {
			t.Errorf("tolerance decreased at SJW=%d: %v < %v", sjw, tol, prev)
		}
		prev = tol
	}
}
