package errmodel

import (
	"math"
	"testing"

	"repro/internal/bus"
)

func TestRandomRate(t *testing.T) {
	r := NewRandom(0.1, 1)
	n := 200000
	flips := 0
	for i := 0; i < n; i++ {
		if r.Disturb(uint64(i), 0, bus.ViewContext{}) {
			flips++
		}
	}
	got := float64(flips) / float64(n)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("flip rate = %.4f, want ~0.1", got)
	}
	if r.Flips() != uint64(flips) {
		t.Errorf("Flips() = %d, want %d", r.Flips(), flips)
	}
}

func TestRandomZeroNeverFires(t *testing.T) {
	r := NewRandom(0, 1)
	for i := 0; i < 1000; i++ {
		if r.Disturb(uint64(i), i%5, bus.ViewContext{}) {
			t.Fatal("ber*=0 must never flip")
		}
	}
}

func TestRandomDeterministicSeed(t *testing.T) {
	a, b := NewRandom(0.5, 42), NewRandom(0.5, 42)
	for i := 0; i < 100; i++ {
		if a.Disturb(uint64(i), 0, bus.ViewContext{}) != b.Disturb(uint64(i), 0, bus.ViewContext{}) {
			t.Fatal("same seed must reproduce the same flips")
		}
	}
}

func TestForkDrawsSameStreamAsNewRandom(t *testing.T) {
	parent := NewRandom(0.5, 1)
	fork := parent.Fork(42)
	fresh := NewRandom(0.5, 42)
	for i := 0; i < 500; i++ {
		if fork.Disturb(uint64(i), 0, bus.ViewContext{}) != fresh.Disturb(uint64(i), 0, bus.ViewContext{}) {
			t.Fatalf("slot %d: Fork(42) must draw the stream of NewRandom(ber*, 42)", i)
		}
	}
}

func TestForkFlipsAggregateIntoParent(t *testing.T) {
	parent := NewRandom(0.5, 1)
	a, b := parent.Fork(2), parent.Fork(3)
	for i := 0; i < 1000; i++ {
		a.Disturb(uint64(i), 0, bus.ViewContext{})
		b.Disturb(uint64(i), 0, bus.ViewContext{})
	}
	if a.Flips() == 0 || b.Flips() == 0 {
		t.Fatal("forks at ber*=0.5 must record flips")
	}
	if got, want := parent.Flips(), a.Flips()+b.Flips(); got != want {
		t.Errorf("parent.Flips() = %d, want sum of fork flips %d", got, want)
	}
}

func TestForkFlipsReadableConcurrently(t *testing.T) {
	parent := NewRandom(0.5, 1)
	const workers = 4
	done := make(chan uint64, workers)
	for w := 0; w < workers; w++ {
		fork := parent.Fork(int64(w + 10))
		go func() {
			for i := 0; i < 5000; i++ {
				fork.Disturb(uint64(i), 0, bus.ViewContext{})
			}
			done <- fork.Flips()
		}()
	}
	// Read the lineage total while workers run; the race detector verifies
	// this is safe, the final check verifies it converges.
	var sum uint64
	for w := 0; w < workers; w++ {
		_ = parent.Flips()
		sum += <-done
	}
	if got := parent.Flips(); got != sum {
		t.Errorf("parent.Flips() = %d, want %d", got, sum)
	}
}

func TestGlobalRandomAffectsAllStations(t *testing.T) {
	g := NewGlobalRandom(0.5, 7)
	for slot := uint64(0); slot < 200; slot++ {
		first := g.Disturb(slot, 0, bus.ViewContext{})
		for s := 1; s < 5; s++ {
			if g.Disturb(slot, s, bus.ViewContext{}) != first {
				t.Fatalf("slot %d: stations disagree under the global model", slot)
			}
		}
	}
	if g.Flips() == 0 {
		t.Error("expected some flips at ber=0.5")
	}
}

func TestRuleStationFilter(t *testing.T) {
	r := &Rule{Stations: []int{2, 4}}
	s := NewScript(r)
	if s.Disturb(0, 1, bus.ViewContext{}) {
		t.Error("station 1 must not match")
	}
	if !s.Disturb(0, 2, bus.ViewContext{}) || !s.Disturb(1, 4, bus.ViewContext{}) {
		t.Error("stations 2 and 4 must match")
	}
}

func TestRuleCountLimitPerStation(t *testing.T) {
	r := &Rule{Count: 2}
	s := NewScript(r)
	for i := 0; i < 2; i++ {
		if !s.Disturb(uint64(i), 0, bus.ViewContext{}) {
			t.Fatalf("fire %d must match", i)
		}
	}
	if s.Disturb(2, 0, bus.ViewContext{}) {
		t.Error("third fire on station 0 must not match")
	}
	if !s.Disturb(3, 1, bus.ViewContext{}) {
		t.Error("the limit is per station; station 1 must still fire")
	}
	if got := len(s.Firings()); got != 3 {
		t.Errorf("firings = %d, want 3", got)
	}
}

func TestAtEOFBitRule(t *testing.T) {
	s := NewScript(AtEOFBit([]int{1}, 6, 1))
	mk := func(rel, attempts int) bus.ViewContext {
		return bus.ViewContext{EOFRel: rel, Attempts: attempts}
	}
	if s.Disturb(0, 1, mk(5, 1)) {
		t.Error("wrong position must not fire")
	}
	if s.Disturb(0, 1, mk(6, 2)) {
		t.Error("wrong attempt must not fire")
	}
	if s.Disturb(0, 0, mk(6, 1)) {
		t.Error("wrong station must not fire")
	}
	if !s.Disturb(0, 1, mk(6, 1)) {
		t.Error("exact match must fire")
	}
	if s.Disturb(1, 1, mk(6, 1)) {
		t.Error("single-shot rule must not fire twice")
	}
}

func TestAtEOFBitsBuildsOneRulePerPosition(t *testing.T) {
	rules := AtEOFBits([]int{0}, []int{3, 4, 5}, 1)
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	s := NewScript(rules...)
	for _, rel := range []int{3, 4, 5} {
		if !s.Disturb(0, 0, bus.ViewContext{EOFRel: rel, Attempts: 1}) {
			t.Errorf("position %d must fire", rel)
		}
	}
}

func TestAtSlotRule(t *testing.T) {
	s := NewScript(AtSlot([]int{0}, 17))
	if s.Disturb(16, 0, bus.ViewContext{}) || !s.Disturb(17, 0, bus.ViewContext{}) {
		t.Error("AtSlot must fire exactly at its slot")
	}
}

func TestAtPhaseRule(t *testing.T) {
	s := NewScript(AtPhase([]int{0}, bus.PhaseSampling, 13))
	if s.Disturb(0, 0, bus.ViewContext{Phase: bus.PhaseEOF, EOFRel: 13}) {
		t.Error("wrong phase must not fire")
	}
	if !s.Disturb(0, 0, bus.ViewContext{Phase: bus.PhaseSampling, EOFRel: 13}) {
		t.Error("matching phase and position must fire")
	}
}
