// Package errmodel implements the disturbance models of the MajorCAN
// paper: the spatially distributed random bit-error model based on
// Charzinski's p_eff (ber* = ber/N) and deterministic scripted disturbances
// used to reproduce the paper's figure scenarios.
//
// A disturbance flips one station's view of one bus bit; it never changes
// the bus itself, matching the paper's per-node error effectivity model.
package errmodel

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/bus"
)

// Random is a bus.Disturber that flips each (slot, station) sample
// independently with probability BerStar, the per-node bit error rate
// ber* = ber/N of the paper (expression 3).
//
// A Random must be driven from a single goroutine (one bus.Network), like
// the network itself; there is no per-sample locking. For parallel sweeps,
// Fork derives an independent per-worker disturber whose flips also
// accumulate into this instance's counter, so Flips on the parent reports
// the lineage-wide total and can be read concurrently while workers run.
type Random struct {
	rng     *rand.Rand
	berStar float64
	flips   atomic.Uint64
	parent  *Random
}

var _ bus.Disturber = (*Random)(nil)

// NewRandom creates a random disturber with the given per-node bit error
// probability and deterministic seed.
func NewRandom(berStar float64, seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), berStar: berStar}
}

// Fork returns an independent disturber with the same error rate and its
// own deterministic stream, for per-worker use in parallel sweeps. A fork
// seeded with s draws the same stream as NewRandom(berStar, s). Flips
// injected by the fork count towards both the fork's and every ancestor's
// counter.
func (r *Random) Fork(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), berStar: r.berStar, parent: r}
}

// Disturb implements bus.Disturber.
func (r *Random) Disturb(_ uint64, _ int, _ bus.ViewContext) bool {
	return r.Sample()
}

// Sample draws the next flip decision from the disturber's stream,
// advancing the RNG and the flip counters exactly as one Disturb call
// would. It is the draw primitive the fast bit-slot engine replicates
// the reference Disturb-call pattern with: one Sample per (slot,
// station) in ascending station order yields a bit-identical stream.
func (r *Random) Sample() bool {
	if r.rng.Float64() < r.berStar {
		for p := r; p != nil; p = p.parent {
			p.flips.Add(1)
		}
		return true
	}
	return false
}

// AlwaysClean reports that the disturber can never fire: its rate is
// zero, so skipping its draws entirely is observationally equivalent
// (nothing reads the RNG stream position, and the flip counter stays
// zero either way). The fast engine uses this as its next-disturbance
// lookahead for rate-zero models: the answer is "never".
func (r *Random) AlwaysClean() bool { return r.berStar <= 0 }

// Flips returns the number of bit flips injected so far by this disturber
// and all disturbers forked from it. It is safe to call concurrently with
// forks running on other goroutines.
func (r *Random) Flips() uint64 {
	return r.flips.Load()
}

// FlipCounter is implemented by disturbers that count injected flips.
type FlipCounter interface {
	Flips() uint64
}

// GlobalRandom models the alternative "global ber" interpretation in which
// an error affects every station's view of the same bit simultaneously
// (the whole-bus corruption model). It exists for the error-model ablation
// bench; the paper argues the spatial model is the right one.
type GlobalRandom struct {
	mu    sync.Mutex
	rng   *rand.Rand
	ber   float64
	slot  uint64
	flip  bool
	flips uint64
}

var _ bus.Disturber = (*GlobalRandom)(nil)

// NewGlobalRandom creates a global disturber flipping all views of a bit
// with probability ber.
func NewGlobalRandom(ber float64, seed int64) *GlobalRandom {
	return &GlobalRandom{rng: rand.New(rand.NewSource(seed)), ber: ber, slot: ^uint64(0)}
}

// Disturb implements bus.Disturber: one draw per slot, applied to every
// station.
func (g *GlobalRandom) Disturb(slot uint64, _ int, _ bus.ViewContext) bool {
	return g.SampleSlot(slot)
}

// SampleSlot draws (or returns the cached) flip decision for the given
// slot, advancing the RNG and flip counter exactly as the first Disturb
// call of that slot would. Repeated calls for the same slot are
// idempotent, matching the per-station Disturb fan-out of the reference
// step loop; the fast engine calls it directly.
func (g *GlobalRandom) SampleSlot(slot uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if slot != g.slot {
		g.slot = slot
		g.flip = g.rng.Float64() < g.ber
		if g.flip {
			g.flips++
		}
	}
	return g.flip
}

// AlwaysClean reports a zero-rate model, as for Random.AlwaysClean.
func (g *GlobalRandom) AlwaysClean() bool { return g.ber <= 0 }

// Flips returns the number of disturbed slots so far.
func (g *GlobalRandom) Flips() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flips
}

// EOFOnly gates a disturber on the end-of-frame region: the inner model
// is consulted — and its RNG stream advanced — only when the station's
// view places it inside an EOF episode (view.EOFRel != 0). This is the
// paper's importance-sampling device (all inconsistency scenarios live
// in the EOF region) and doubles as the fast engine's next-disturbance
// lookahead: while no station is in an EOF episode, a gated model can
// neither fire nor consume randomness, so those slots are provably
// disturbance-free and may be fast-forwarded.
type EOFOnly struct {
	// Inner is the gated disturbance model.
	Inner bus.Disturber
}

var _ bus.Disturber = EOFOnly{}

// Disturb implements bus.Disturber.
func (e EOFOnly) Disturb(slot uint64, station int, view bus.ViewContext) bool {
	if view.EOFRel == 0 {
		return false
	}
	return e.Inner.Disturb(slot, station, view)
}

// Rule is one scripted disturbance: it fires for the stations in Stations
// (nil means every station) whenever When matches, at most Count times per
// station (Count <= 0 means unlimited).
type Rule struct {
	// Stations restricts the rule to the listed station indices; nil means
	// all stations.
	Stations []int
	// When matches the station's protocol position; nil matches always.
	When func(slot uint64, station int, view bus.ViewContext) bool
	// Count limits how many times the rule fires per station (<= 0 for
	// unlimited).
	Count int

	fired map[int]int
}

func (r *Rule) matches(slot uint64, station int, view bus.ViewContext) bool {
	if r.Stations != nil {
		found := false
		for _, s := range r.Stations {
			if s == station {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if r.When != nil && !r.When(slot, station, view) {
		return false
	}
	if r.Count > 0 {
		if r.fired == nil {
			r.fired = make(map[int]int)
		}
		if r.fired[station] >= r.Count {
			return false
		}
		r.fired[station]++
	}
	return true
}

// Script is a deterministic bus.Disturber built from rules. A sample is
// flipped when at least one rule fires.
type Script struct {
	rules []*Rule
	log   []Firing
}

var _ bus.Disturber = (*Script)(nil)

// Firing records one scripted disturbance, for assertions in tests.
type Firing struct {
	Slot    uint64
	Station int
	View    bus.ViewContext
}

// NewScript creates a script from the given rules.
func NewScript(rules ...*Rule) *Script {
	return &Script{rules: rules}
}

// Add appends a rule to the script.
func (s *Script) Add(r *Rule) *Script {
	s.rules = append(s.rules, r)
	return s
}

// Disturb implements bus.Disturber.
func (s *Script) Disturb(slot uint64, station int, view bus.ViewContext) bool {
	fired := false
	for _, r := range s.rules {
		if r.matches(slot, station, view) {
			fired = true
		}
	}
	if fired {
		s.log = append(s.log, Firing{Slot: slot, Station: station, View: view})
	}
	return fired
}

// Firings returns the disturbances injected so far.
func (s *Script) Firings() []Firing {
	return append([]Firing(nil), s.log...)
}

// AtEOFBit builds a rule that flips the view of the given stations at the
// 1-based EOF-relative bit position rel of transmission attempt number
// attempt (1-based; 0 matches any attempt). This is the vocabulary the
// paper's figures use: "a disturbance corrupts the last but one bit of the
// EOF of the nodes belonging to X" becomes AtEOFBit(x, eofBits-1, 1).
func AtEOFBit(stations []int, rel int, attempt int) *Rule {
	return &Rule{
		Stations: stations,
		Count:    1,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if attempt != 0 && v.Attempts != attempt {
				return false
			}
			return v.EOFRel == rel
		},
	}
}

// AtEOFBits builds one single-shot rule per EOF-relative position so a
// station can be disturbed at several positions of the same frame.
func AtEOFBits(stations []int, rels []int, attempt int) []*Rule {
	rules := make([]*Rule, 0, len(rels))
	for _, rel := range rels {
		rules = append(rules, AtEOFBit(stations, rel, attempt))
	}
	return rules
}

// AtSlot builds a rule that flips the view of the given stations at an
// absolute bit slot.
func AtSlot(stations []int, slot uint64) *Rule {
	return &Rule{
		Stations: stations,
		When: func(s uint64, _ int, _ bus.ViewContext) bool {
			return s == slot
		},
	}
}

// AtPhase builds a single-shot rule matching a protocol phase with the
// given 1-based EOF-relative position (0 to ignore the position).
func AtPhase(stations []int, phase bus.Phase, rel int) *Rule {
	return &Rule{
		Stations: stations,
		Count:    1,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if v.Phase != phase {
				return false
			}
			return rel == 0 || v.EOFRel == rel
		},
	}
}
