package chaos

import (
	"fmt"
	"sort"

	"repro/internal/abcheck"
	"repro/internal/node"
)

// Probe checks one invariant class over a finished run. A campaign treats
// a script as a counterexample when any probe reports violations.
type Probe interface {
	// Name identifies the probe in findings.
	Name() string
	// Verify returns human-readable violations (nil when clean).
	Verify(r *Result) []string
}

// AB returns a probe checking the given Atomic Broadcast properties (all
// five when none are listed) over the run's trace.
func AB(props ...abcheck.Property) Probe {
	return abProbe{inner: abcheck.Properties(props...)}
}

type abProbe struct {
	inner abcheck.TraceProbe
}

func (p abProbe) Name() string { return p.inner.Name() }

func (p abProbe) Verify(r *Result) []string {
	var out []string
	for _, v := range p.inner.Verify(r.Trace) {
		out = append(out, v.String())
	}
	return out
}

// Liveness returns a probe requiring the bus to quiesce within the slot
// budget: no disturbance pattern may wedge the protocol.
func Liveness() Probe { return livenessProbe{} }

type livenessProbe struct{}

func (livenessProbe) Name() string { return "liveness" }

func (livenessProbe) Verify(r *Result) []string {
	var out []string
	if !r.Quiet {
		out = append(out, "liveness: bus did not quiesce within the slot budget")
	}
	if r.Incomplete > 0 {
		out = append(out, fmt.Sprintf("liveness: %d frames exhausted their per-frame slot budget", r.Incomplete))
	}
	return out
}

// Confinement returns a probe checking the CAN fault-confinement
// invariants: a node's mode must be consistent with its error counters at
// the end of the run (bus-off at TEC >= 256, error-passive at >= 128, and
// with the switch-off policy no surviving node above the warning limit).
func Confinement() Probe { return confinementProbe{} }

type confinementProbe struct{}

func (confinementProbe) Name() string { return "confinement" }

func (confinementProbe) Verify(r *Result) []string {
	var out []string
	for i, st := range r.NodeStates {
		if st.Crashed || st.Mode == node.SwitchedOff {
			continue
		}
		switch {
		case st.TEC >= node.BusOffLimit && st.Mode != node.BusOff:
			out = append(out, fmt.Sprintf("confinement: node %d has TEC %d >= %d but mode %v",
				i, st.TEC, node.BusOffLimit, st.Mode))
		case st.Mode == node.ErrorActive && (st.TEC >= node.PassiveLimit || st.REC >= node.PassiveLimit):
			out = append(out, fmt.Sprintf("confinement: node %d error-active with counters tec=%d rec=%d",
				i, st.TEC, st.REC))
		case st.Mode == node.ErrorPassive && st.TEC < node.PassiveLimit && st.REC < node.PassiveLimit:
			out = append(out, fmt.Sprintf("confinement: node %d error-passive with counters tec=%d rec=%d below the passive limit",
				i, st.TEC, st.REC))
		}
		if r.Script.WarningSwitchOff && (st.Mode == node.ErrorActive || st.Mode == node.ErrorPassive) &&
			(st.TEC >= node.WarningLimit || st.REC >= node.WarningLimit) {
			out = append(out, fmt.Sprintf("confinement: node %d survived the warning limit under switch-off policy (tec=%d rec=%d)",
				i, st.TEC, st.REC))
		}
	}
	return out
}

// DefaultProbes is the standard probe set: all five AB properties,
// liveness and fault confinement.
func DefaultProbes() []Probe {
	return []Probe{AB(), Liveness(), Confinement()}
}

// Violations runs the probes over a result and returns all findings,
// sorted so verdicts are deterministic (abcheck iterates maps internally).
func Violations(r *Result, probes []Probe) []string {
	var out []string
	for _, p := range probes {
		out = append(out, p.Verify(r)...)
	}
	sort.Strings(out)
	return out
}

// VerdictOf folds a result and its probe findings into the artifact form.
func VerdictOf(r *Result, probes []Probe) Verdict {
	v := Verdict{
		Violations:      Violations(r, probes),
		IMOs:            r.Report.InconsistentOmissions,
		Duplicates:      r.Report.DuplicateDeliveries,
		OrderInversions: r.Report.OrderInversions,
		Quiet:           r.Quiet,
		Slots:           r.Slots,
		Digest:          r.DigestHex,
	}
	if v.Violations == nil {
		v.Violations = []string{}
	}
	return v
}
