package chaos

// Shrink minimises a failing script's fault list with the ddmin
// delta-debugging algorithm (complement removal): it repeatedly deletes
// chunks of faults while the `failing` predicate still holds, converging
// to a 1-minimal script — removing any single remaining fault makes the
// failure disappear. The predicate receives candidate scripts sharing the
// original's cluster configuration.
//
// Shrink assumes failing(s) is true for the input; it returns the input
// unchanged otherwise. Execution is deterministic, so the predicate is a
// pure function of the fault list and ddmin's guarantees apply.
func Shrink(s Script, failing func(Script) bool) Script {
	faults := append([]Fault(nil), s.Faults...)
	if len(faults) <= 1 || !failing(s.WithFaults(faults)) {
		return s.WithFaults(faults)
	}
	n := 2
	for len(faults) >= 2 {
		chunk := len(faults) / n
		if chunk == 0 {
			chunk = 1
		}
		reduced := false
		for start := 0; start < len(faults); start += chunk {
			end := start + chunk
			if end > len(faults) {
				end = len(faults)
			}
			candidate := make([]Fault, 0, len(faults)-(end-start))
			candidate = append(candidate, faults[:start]...)
			candidate = append(candidate, faults[end:]...)
			if len(candidate) == 0 {
				continue
			}
			if failing(s.WithFaults(candidate)) {
				faults = candidate
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(faults) {
				break // 1-minimal: no single removal keeps the failure
			}
			n *= 2
			if n > len(faults) {
				n = len(faults)
			}
		}
	}
	return s.WithFaults(faults)
}
