package chaos

import (
	"context"
	"sort"

	"repro/internal/abcheck"
	"repro/internal/bitstream"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Telemetry is optional observability for a script execution. Any field
// may be nil/zero; a zero Telemetry makes RunObserved identical to Run.
type Telemetry struct {
	// Events receives the protocol event stream, including the
	// harness-level IMO classification events.
	Events obs.Sink
	// Metrics aggregates the run into a metrics registry.
	Metrics *obs.Metrics
	// Recorder, if non-nil, is attached as a bus probe so events can be
	// correlated with the recorded per-bit trace (see trace.Correlate).
	Recorder *trace.Recorder
}

func (t Telemetry) enabled() bool { return t.Events != nil || t.Metrics != nil }

// NodeState is one station's fault-confinement state at the end of a run.
type NodeState struct {
	Mode    node.Mode
	TEC     int
	REC     int
	Crashed bool
	// EverOff reports whether the station was ever bus-off or switched
	// off during the run (it may have recovered since).
	EverOff bool
}

// Result is the outcome of executing a script.
type Result struct {
	Script Script
	// Trace is the broadcast/delivery history for the abcheck properties.
	Trace abcheck.Trace
	// Report is the full Atomic Broadcast check.
	Report *abcheck.Report
	// NodeStates capture per-station confinement state at the end.
	NodeStates []NodeState
	// Quiet reports whether the bus quiesced within the slot budget.
	Quiet bool
	// Slots is the total number of simulated slots.
	Slots uint64
	// Digest is the FNV-1a hash over the complete bus history.
	Digest uint64
	// DigestHex is Digest as 16 hex digits (the artifact form).
	DigestHex string
	// FramesSent counts frames actually broadcast.
	FramesSent int
	// Incomplete counts frames whose per-frame slot budget expired.
	Incomplete int
}

// windowFault drives one station's output to a fixed level inside a slot
// window (stuck-dominant or muted transceiver).
type windowFault struct {
	station  int
	from, to uint64
	level    bitstream.Level
}

func (w windowFault) Apply(slot uint64, station int, level bitstream.Level) bitstream.Level {
	if station == w.station && slot >= w.from && slot < w.to {
		return w.level
	}
	return level
}

// glitchFault makes stations sample one slot late at scripted slots.
type glitchFault struct {
	at map[[2]uint64]bool // {slot, station}
}

func (g glitchFault) Skew(slot uint64, station int) bool {
	return g.at[[2]uint64{slot, uint64(station)}]
}

// Run executes a script deterministically and returns its full outcome.
func Run(s Script) (*Result, error) {
	return RunObserved(s, Telemetry{})
}

// RunObserved is Run with telemetry attached. Event emission goes through
// a ring buffer drained between frames, so the sinks never sit on the
// per-bit hot path and the simulated outcome (digest included) is
// identical with and without telemetry.
func RunObserved(s Script, t Telemetry) (*Result, error) {
	return RunObservedContext(context.Background(), s, t)
}

// RunObservedContext is RunObserved with cancellation: ctx is checked
// between frames and periodically through the post-traffic drain, so a
// scheduler timeout or shutdown interrupts a replay promptly. A
// cancelled run returns ctx's error and no partial result; ctx never
// influences the simulated outcome of a run that completes.
func RunObservedContext(ctx context.Context, s Script, t Telemetry) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	policy, err := ParseProtocol(s.Protocol)
	if err != nil {
		return nil, err
	}
	payload := s.PayloadBytes
	if payload == 0 {
		payload = 8
	}
	slotsPerFrame := s.SlotsPerFrame
	if slotsPerFrame == 0 {
		slotsPerFrame = 4000
	}

	everOff := make([]bool, s.Nodes)
	clusterOpts := sim.ClusterOptions{
		Nodes:            s.Nodes,
		Policy:           policy,
		WarningSwitchOff: s.WarningSwitchOff,
		AutoRecover:      s.AutoRecover,
		NodeHooks: func(station int) node.Hooks {
			return node.Hooks{
				OnModeChange: func(_ uint64, _, to node.Mode) {
					if to == node.BusOff || to == node.SwitchedOff {
						everOff[station] = true
					}
				},
			}
		},
	}
	var (
		ring *obs.Ring
		tel  obs.Sink
	)
	if t.enabled() {
		ring = obs.NewRing(1 << 12)
		tel = obs.Multi(t.Events, t.Metrics)
		clusterOpts.Events = ring
	}
	cluster, err := sim.NewCluster(clusterOpts)
	if err != nil {
		return nil, err
	}
	if t.Recorder != nil {
		cluster.Net.AddProbe(t.Recorder)
	}
	drainEvents := func() uint64 {
		if ring == nil {
			return 0
		}
		var retrans uint64
		ring.Drain(obs.SinkFunc(func(e obs.Event) {
			if e.Kind == obs.KindRetransmit {
				retrans++
			}
			// tel can be nil with the ring live: Multi drops typed-nil
			// sinks, so a caller passing e.g. a nil *obs.Memory as Events
			// enables the ring but leaves no sink behind it.
			if tel != nil {
				tel.Emit(e)
			}
		}))
		return retrans
	}

	// Wire the fault sources. View flips become an errmodel script;
	// windows become output faults; glitches become skews; crash and
	// bus-off events are applied by the step loop below.
	flips := errmodel.NewScript()
	glitches := glitchFault{at: make(map[[2]uint64]bool)}
	type nodeEvent struct {
		slot  uint64
		kind  FaultKind
		fault Fault
	}
	var events []nodeEvent
	var maxFaultSlot uint64
	for _, f := range s.Faults {
		end := f.Slot
		if f.Until > end {
			end = f.Until
		}
		if end > maxFaultSlot {
			maxFaultSlot = end
		}
		switch f.Kind {
		case ViewFlip:
			if f.EOFRel > 0 {
				flips.Add(errmodel.AtEOFBit([]int{f.Station}, f.EOFRel, f.Attempt))
			} else {
				flips.Add(errmodel.AtSlot([]int{f.Station}, f.Slot))
			}
		case StuckDominant:
			cluster.Net.AddOutputFault(windowFault{station: f.Station, from: f.Slot, to: f.Until, level: bitstream.Dominant})
		case Mute:
			cluster.Net.AddOutputFault(windowFault{station: f.Station, from: f.Slot, to: f.Until, level: bitstream.Recessive})
		case ClockGlitch:
			glitches.at[[2]uint64{f.Slot, uint64(f.Station)}] = true
		case Crash, BusOffKind:
			events = append(events, nodeEvent{slot: f.Slot, kind: f.Kind, fault: f})
		}
	}
	cluster.Net.AddDisturber(flips)
	if len(glitches.at) > 0 {
		cluster.Net.AddSkew(glitches)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].slot < events[j].slot })

	digest := trace.NewDigest()
	cluster.Net.AddProbe(digest)

	// step advances one slot, applying due node events first.
	applied := 0
	step := func() {
		now := cluster.Net.Slot()
		for applied < len(events) && events[applied].slot <= now {
			ev := events[applied]
			applied++
			ctrl := cluster.Nodes[ev.fault.Station]
			switch ev.kind {
			case Crash:
				ctrl.Crash()
			case BusOffKind:
				ctrl.ForceBusOff()
			}
		}
		cluster.Net.Step()
	}
	runUntilQuiet := func(budget int) bool {
		for i := 0; i < budget; i++ {
			if cluster.Quiet() {
				return true
			}
			step()
		}
		return cluster.Quiet()
	}

	res := &Result{Script: s}
	tr := abcheck.Trace{Nodes: s.Nodes, Faulty: make(map[int]bool)}

	for i := 0; i < s.Frames; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		origin := 0
		if s.RotateOrigins {
			origin = i % s.Nodes
		}
		ctrl := cluster.Nodes[origin]
		if ctrl.Mode() != node.ErrorActive && ctrl.Mode() != node.ErrorPassive {
			continue // origin disconnected; skip this frame
		}
		key := abcheck.MsgKey{Origin: origin, Seq: uint32(i + 1)}
		f := &frame.Frame{
			ID:   uint32(0x200 | origin),
			Data: sim.Payload(origin, key.Seq, payload),
		}
		if err := ctrl.Enqueue(f); err != nil {
			return nil, err
		}
		broadcastSlot := cluster.Net.Slot()
		tr.Broadcasts = append(tr.Broadcasts, abcheck.Broadcast{Key: key, Slot: broadcastSlot})
		res.FramesSent++
		if !runUntilQuiet(slotsPerFrame) {
			res.Incomplete++
		}
		frameRetrans := drainEvents()
		if t.Metrics != nil {
			t.Metrics.AddFramesSent(1)
			t.Metrics.ObserveFrameRetransmits(frameRetrans)
			t.Metrics.ObserveSettleLatency(cluster.Net.Slot() - broadcastSlot)
		}
	}

	// Drain past the last scheduled fault (windows may outlast the
	// traffic) and, with AutoRecover, give bus-off stations room to rejoin
	// (recovery needs 128 x 11 recessive bits = 1408 idle slots).
	drain := 64
	if s.AutoRecover {
		drain += 1600
	}
	for cluster.Net.Slot() < maxFaultSlot {
		// A fault window can sit arbitrarily far past the traffic; keep
		// the cancellation check off the per-slot hot path.
		if cluster.Net.Slot()%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		step()
	}
	for i := 0; i < drain; i++ {
		step()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Quiet = runUntilQuiet(slotsPerFrame)

	// A station is faulty for the AB properties if it ever left the bus or
	// was the target of a station-level fault injection; view flips and
	// clock glitches model channel noise, not station failure.
	for _, f := range s.Faults {
		switch f.Kind {
		case StuckDominant, Mute, Crash, BusOffKind:
			tr.Faulty[f.Station] = true
		}
	}
	for i, off := range everOff {
		if off {
			tr.Faulty[i] = true
		}
	}
	for n := 0; n < s.Nodes; n++ {
		for _, d := range cluster.Deliveries[n] {
			if k, ok := sim.PayloadKey(d.Frame); ok {
				tr.Deliveries = append(tr.Deliveries, abcheck.Delivery{Node: n, Key: k, Slot: d.Slot})
			}
		}
	}

	drainEvents()
	res.Trace = tr
	res.Report = abcheck.Check(tr)
	res.Slots = cluster.Net.Slot()
	if tel != nil {
		// Harness-level IMO classification per broadcast, mirroring
		// abcheck's agreement analysis: a frame delivered by some correct
		// station and never by another correct receiver.
		deliveredBy := make(map[abcheck.MsgKey]map[int]bool)
		for _, d := range tr.Deliveries {
			if tr.Faulty[d.Node] {
				continue
			}
			set := deliveredBy[d.Key]
			if set == nil {
				set = make(map[int]bool)
				deliveredBy[d.Key] = set
			}
			set[d.Node] = true
		}
		for _, b := range tr.Broadcasts {
			got, missing := 0, 0
			for n := 0; n < s.Nodes; n++ {
				if n == b.Key.Origin || tr.Faulty[n] {
					continue
				}
				if deliveredBy[b.Key][n] {
					got++
				} else {
					missing++
				}
			}
			if got > 0 && missing > 0 {
				tel.Emit(obs.Event{
					Slot:    b.Slot,
					Kind:    obs.KindIMO,
					Station: -1,
					Aux:     b.Key.Seq,
				})
			}
		}
	}
	if t.Metrics != nil {
		t.Metrics.AddBits(res.Slots)
	}
	res.Digest = digest.Sum64()
	res.DigestHex = digest.String()
	res.NodeStates = make([]NodeState, s.Nodes)
	for i, ctrl := range cluster.Nodes {
		tec, rec := ctrl.Counters()
		res.NodeStates[i] = NodeState{
			Mode:    ctrl.Mode(),
			TEC:     tec,
			REC:     rec,
			Crashed: ctrl.Crashed(),
			EverOff: everOff[i],
		}
	}
	return res, nil
}
