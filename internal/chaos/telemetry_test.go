package chaos

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func loadFig3a(t *testing.T) Artifact {
	t.Helper()
	data, err := os.ReadFile("testdata/fig3a_shrunk.json")
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFig3aTelemetry is the PR's acceptance scenario: replaying the
// checked-in two-disturbance counterexample with events and metrics
// attached renders the inconsistency as a readable event sequence —
// the disturbed receiver's error flag, the reactive overload flags, one
// imo event — while reproducing the recorded digest bit for bit.
func TestFig3aTelemetry(t *testing.T) {
	a := loadFig3a(t)
	mem := obs.NewMemory()
	metrics := obs.NewMetrics()
	rec := trace.NewRecorder()
	rr, err := ReplayObserved(a, Telemetry{Events: mem, Metrics: metrics, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Telemetry must not perturb the simulation: the recorded digest and
	// verdict still reproduce exactly.
	if !rr.Matches() {
		t.Fatalf("replay with telemetry diverged: digest=%v verdict=%v", rr.DigestMatch, rr.VerdictMatch)
	}
	if rr.Verdict.Digest != a.Verdict.Digest {
		t.Fatalf("digest = %s, want %s", rr.Verdict.Digest, a.Verdict.Digest)
	}

	if got := mem.Count(obs.KindIMO); got != 1 {
		t.Errorf("imo events = %d, want 1", got)
	}
	flags := 0
	for _, e := range mem.Events() {
		if e.Kind.ErrorFlag() {
			flags++
		}
	}
	if flags < 2 {
		t.Errorf("error-flag events = %d, want >= 2 (primary flag plus reactive flags)", flags)
	}
	// The two-disturbance story: the corrupted receiver rejects with a
	// form-error flag while the transmitter accepts without retransmitting.
	var corruptedFlag, txAccepted bool
	for _, e := range mem.Events() {
		if e.Kind.ErrorFlag() && obs.CauseName(e.Cause) == "form" {
			corruptedFlag = true
		}
		if e.Kind == obs.KindFrameAccepted && e.Transmitter() {
			txAccepted = true
		}
	}
	if !corruptedFlag {
		t.Error("no form-error flag from the corrupted receiver")
	}
	if !txAccepted {
		t.Error("transmitter did not accept (the scenario requires an accepting, non-retransmitting transmitter)")
	}
	if n := mem.Count(obs.KindRetransmit); n != 0 {
		t.Errorf("retransmit events = %d, want 0 (the omission must go unrepaired)", n)
	}

	// Every event slot inside the simulated range correlates to a recorded
	// bus slot.
	cs := rec.Correlate(mem.Events())
	for _, c := range cs {
		if c.Event.Slot < uint64(rec.Len()) && !c.Found {
			t.Errorf("event at slot %d has no bus record", c.Event.Slot)
		}
	}
	text := trace.FormatCorrelated(cs)
	if !strings.Contains(text, "imo") || !strings.Contains(text, "error-flag") {
		t.Errorf("correlated rendering missing expected events:\n%s", text)
	}

	// Metrics side of the acceptance criterion: the inconsistency is
	// visible, and standard CAN reports no vote corrections.
	snap := metrics.Snapshot(time.Second)
	if snap.IMOs != 1 {
		t.Errorf("metrics imos = %d, want 1", snap.IMOs)
	}
	if snap.EOFVoteCorrected != 0 {
		t.Errorf("metrics eof_vote_corrected = %d, want 0 under standard CAN", snap.EOFVoteCorrected)
	}
	if snap.Retransmits != 0 {
		t.Errorf("metrics retransmits = %d, want 0", snap.Retransmits)
	}
	b, err := json.Marshal(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"eof_vote_corrected":0`) {
		t.Errorf("metrics JSON missing eof_vote_corrected: %s", b)
	}
}

// TestCampaignMetrics checks that a campaign aggregates every simulator
// execution — trials, shrink candidates, verification runs — into one
// registry and reports trial progress.
func TestCampaignMetrics(t *testing.T) {
	metrics := obs.NewMetrics()
	var trialsSeen []int
	c := Campaign{
		Name: "telemetry",
		Base: Script{
			Version:  ScriptVersion,
			Protocol: "can",
			Nodes:    4,
			Frames:   1,
		},
		Trials:    12,
		MaxFaults: 2,
		Seed:      11,
		Metrics:   metrics,
		OnTrial:   func(done int) { trialsSeen = append(trialsSeen, done) },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(trialsSeen) != res.Trials {
		t.Errorf("OnTrial called %d times, want %d", len(trialsSeen), res.Trials)
	}
	for i, n := range trialsSeen {
		if n != i+1 {
			t.Fatalf("OnTrial sequence %v not monotonic", trialsSeen)
		}
	}
	snap := metrics.Snapshot(0)
	if snap.FramesSent < uint64(res.Executions) {
		t.Errorf("frames_sent = %d, want >= %d (one frame per execution)", snap.FramesSent, res.Executions)
	}
	if snap.BitsSimulated == 0 {
		t.Error("bits_simulated = 0 after a campaign")
	}
}
