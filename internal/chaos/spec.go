package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/abcheck"
)

// CampaignSpec is the canonical, JSON-serialisable description of a
// fault-injection campaign job: the base cluster configuration plus the
// search parameters, protocols by name and probes by name, so the spec
// travels over the wire and hashes to a stable job digest. Execution
// knobs (telemetry, progress callbacks) are deliberately excluded — they
// do not change the campaign's findings, so they must not perturb the
// content address.
type CampaignSpec struct {
	// Protocol selects the variant, as accepted by ParseProtocol.
	Protocol string `json:"protocol"`
	// Nodes is the number of stations (default 5).
	Nodes int `json:"nodes"`
	// Frames is the number of frames broadcast per trial (default 1).
	Frames int `json:"frames"`
	// Trials is the number of random scripts executed (default 100).
	Trials int `json:"trials"`
	// TrialOffset is the global index of the first trial: the campaign
	// runs trials [TrialOffset, TrialOffset+Trials). Per-trial RNGs are
	// seeded by the global index, so splitting a [0, N) campaign into
	// contiguous offset ranges reproduces exactly the same trials — the
	// fleet coordinator's shard handle. Zero is the whole-campaign default.
	TrialOffset int `json:"trialOffset,omitempty"`
	// MaxFaults bounds the faults per trial (default 4).
	MaxFaults int `json:"maxFaults"`
	// Seed makes the search reproducible.
	Seed int64 `json:"seed"`
	// Kinds restricts the fault classes drawn; empty means all, and
	// Normalize sorts and deduplicates so equivalent lists hash equally.
	Kinds []FaultKind `json:"kinds,omitempty"`
	// Probes names the invariants checked (see ParseProbes); empty means
	// the default probe set.
	Probes []string `json:"probes,omitempty"`
	// StopAtFirst ends the campaign at the first finding.
	StopAtFirst bool `json:"stopAtFirst,omitempty"`
	// RotateOrigins sends frame i from station i mod Nodes.
	RotateOrigins bool `json:"rotateOrigins,omitempty"`
	// AutoRecover enables bus-off recovery on every node.
	AutoRecover bool `json:"autoRecover,omitempty"`
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool `json:"warningSwitchOff,omitempty"`
	// PayloadBytes sets the frame payload size (default 8).
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// SlotsPerFrame bounds simulation time per frame (default 4000).
	SlotsPerFrame int `json:"slotsPerFrame,omitempty"`
}

// Normalize fills defaulted fields and canonicalises list order in place.
func (c *CampaignSpec) Normalize() {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.Frames == 0 {
		c.Frames = 1
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = 4
	}
	c.Kinds = dedupeSorted(c.Kinds)
	c.Probes = dedupeSorted(c.Probes)
}

func dedupeSorted[T ~string](in []T) []T {
	if len(in) == 0 {
		return nil
	}
	out := append([]T(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 1
	for _, v := range out[1:] {
		if v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// Validate checks the spec's structural invariants.
func (c CampaignSpec) Validate() error {
	if _, err := c.Campaign(); err != nil {
		return err
	}
	return nil
}

// Campaign resolves the spec to a runnable Campaign. Note that the
// drawn-fault ordering depends on the (sorted) kind list, so Normalize
// before hashing or comparing campaigns.
func (c CampaignSpec) Campaign() (Campaign, error) {
	if _, err := ParseProtocol(c.Protocol); err != nil {
		return Campaign{}, err
	}
	probes, err := ParseProbes(strings.Join(c.Probes, ","))
	if err != nil {
		return Campaign{}, err
	}
	known := make(map[FaultKind]bool)
	for _, k := range Kinds() {
		known[k] = true
	}
	for _, k := range c.Kinds {
		if !known[k] {
			return Campaign{}, fmt.Errorf("chaos: unknown fault kind %q (known: %v)", k, Kinds())
		}
	}
	if c.Trials < 0 || c.MaxFaults < 0 {
		return Campaign{}, fmt.Errorf("chaos: negative trials or maxFaults")
	}
	if c.TrialOffset < 0 {
		return Campaign{}, fmt.Errorf("chaos: negative trialOffset")
	}
	camp := Campaign{
		Name: "spec",
		Base: Script{
			Version:          ScriptVersion,
			Protocol:         c.Protocol,
			Nodes:            c.Nodes,
			Frames:           c.Frames,
			PayloadBytes:     c.PayloadBytes,
			RotateOrigins:    c.RotateOrigins,
			AutoRecover:      c.AutoRecover,
			WarningSwitchOff: c.WarningSwitchOff,
			SlotsPerFrame:    c.SlotsPerFrame,
		},
		Trials:      c.Trials,
		StartTrial:  c.TrialOffset,
		MaxFaults:   c.MaxFaults,
		FaultKinds:  append([]FaultKind(nil), c.Kinds...),
		Seed:        c.Seed,
		Probes:      probes,
		StopAtFirst: c.StopAtFirst,
	}
	if err := camp.Base.Validate(); err != nil {
		return Campaign{}, err
	}
	return camp, nil
}

// CampaignOutcome is the serialisable result of a campaign job.
type CampaignOutcome struct {
	Spec       CampaignSpec `json:"spec"`
	Trials     int          `json:"trials"`
	Executions int          `json:"executions"`
	Findings   []Artifact   `json:"findings"`
}

// RunCampaignSpec executes a campaign spec with optional telemetry: the
// entry point the simulation service's scheduler and the chaos CLI
// share. Cancelling ctx stops the search between trials and surfaces
// ctx's error.
func RunCampaignSpec(ctx context.Context, spec CampaignSpec, t Telemetry, onTrial func(done int)) (*CampaignOutcome, error) {
	return RunCampaignSpecResumable(ctx, spec, t, onTrial, nil, nil)
}

// RunCampaignSpecResumable is RunCampaignSpec with checkpoint plumbing:
// resume, if non-nil, preloads progress recorded by an earlier run's
// onProgress callback, and onProgress (if non-nil) observes cumulative
// progress at every trial boundary. Per-trial RNGs make the resumed
// outcome identical to an uninterrupted run's — this is the recovery
// path the simulation service uses for crashed campaign jobs.
func RunCampaignSpecResumable(ctx context.Context, spec CampaignSpec, t Telemetry, onTrial func(done int), resume *CampaignProgress, onProgress func(CampaignProgress)) (*CampaignOutcome, error) {
	spec.Normalize()
	camp, err := spec.Campaign()
	if err != nil {
		return nil, err
	}
	camp.Events = t.Events
	camp.Metrics = t.Metrics
	camp.OnTrial = onTrial
	camp.Resume = resume
	camp.OnProgress = onProgress
	res, err := camp.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &CampaignOutcome{
		Spec:       spec,
		Trials:     res.Trials,
		Executions: res.Executions,
		Findings:   make([]Artifact, 0, len(res.Findings)),
	}
	for _, f := range res.Findings {
		out.Findings = append(out.Findings, f.Artifact("spec"))
	}
	return out, nil
}

// ParseProbes maps a comma-separated probe list onto the campaign probe
// set: "all" (or empty) selects the default set; AB properties may be
// selected individually to narrow the search (e.g. "agreement" to hunt
// for the paper's inconsistency scenarios only). This is the single
// probe-name codec shared by the chaos CLI and the job-spec layer.
func ParseProbes(csv string) ([]Probe, error) {
	if csv == "" || csv == "all" {
		return nil, nil
	}
	var probes []Probe
	var props []abcheck.Property
	for _, s := range strings.Split(csv, ",") {
		switch strings.TrimSpace(s) {
		case "ab":
			probes = append(probes, AB())
		case "validity":
			props = append(props, abcheck.Validity)
		case "agreement":
			props = append(props, abcheck.Agreement)
		case "at-most-once":
			props = append(props, abcheck.AtMostOnce)
		case "non-triviality":
			props = append(props, abcheck.NonTriviality)
		case "total-order":
			props = append(props, abcheck.TotalOrder)
		case "liveness":
			probes = append(probes, Liveness())
		case "confinement":
			probes = append(probes, Confinement())
		default:
			return nil, fmt.Errorf("chaos: unknown probe %q (known: ab, validity, agreement, at-most-once, non-triviality, total-order, liveness, confinement)", s)
		}
	}
	if len(props) > 0 {
		probes = append(probes, AB(props...))
	}
	return probes, nil
}

// ParseKinds maps a comma-separated fault-kind list onto FaultKinds;
// "all" (or empty) selects every kind.
func ParseKinds(csv string) ([]FaultKind, error) {
	if csv == "" || csv == "all" {
		return nil, nil
	}
	known := make(map[FaultKind]bool)
	for _, k := range Kinds() {
		known[k] = true
	}
	var out []FaultKind
	for _, s := range strings.Split(csv, ",") {
		k := FaultKind(strings.TrimSpace(s))
		if !known[k] {
			return nil, fmt.Errorf("chaos: unknown fault kind %q (known: %v)", k, Kinds())
		}
		out = append(out, k)
	}
	return out, nil
}
