package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/abcheck"
)

// TestCampaignRediscoversFig3a is the headline robustness result: a random
// fault-injection campaign over standard CAN, restricted to per-station
// view flips, rediscovers the paper's Fig. 3a inconsistency from scratch
// and shrinks it to the minimal two-disturbance pattern — one receiver
// missing the last-but-one EOF bit and the transmitter missing the last.
func TestCampaignRediscoversFig3a(t *testing.T) {
	c := Campaign{
		Name:        "fig3a-rediscovery",
		Base:        Script{Version: ScriptVersion, Protocol: "CAN", Nodes: 5, Frames: 1},
		Trials:      200,
		MaxFaults:   4,
		FaultKinds:  []FaultKind{ViewFlip},
		Seed:        12,
		Probes:      []Probe{AB(abcheck.Agreement)},
		StopAtFirst: true,
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("campaign found no Agreement violation in %d trials", res.Trials)
	}
	f := res.Findings[0]
	if len(f.Shrunk.Faults) > 3 {
		t.Errorf("shrunk to %d faults, want <= 3", len(f.Shrunk.Faults))
	}
	agreement := false
	for _, v := range f.Violations {
		if strings.HasPrefix(v, abcheck.Agreement.String()) {
			agreement = true
		}
	}
	if !agreement {
		t.Errorf("finding violations %v lack Agreement", f.Violations)
	}
	// The minimal pattern is the paper's: a transmitter-side flip of the
	// last EOF bit plus a receiver-side flip of the last-but-one.
	hasTx, hasRx := false, false
	for _, fault := range f.Shrunk.Faults {
		if fault.Kind == ViewFlip && fault.Station == 0 && fault.EOFRel == 7 {
			hasTx = true
		}
		if fault.Kind == ViewFlip && fault.Station != 0 && fault.EOFRel == 6 {
			hasRx = true
		}
	}
	if !hasTx || !hasRx {
		t.Errorf("shrunk faults %v are not the Fig. 3a pattern", f.Shrunk.Faults)
	}

	// The finding must replay bit-for-bit from its artifact.
	rr, err := Replay(f.Artifact(c.Name), c.Probes...)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Matches() {
		t.Errorf("replay mismatch: digest=%v verdict=%v", rr.DigestMatch, rr.VerdictMatch)
	}
}

func TestCampaignCleanOnMajorCAN(t *testing.T) {
	// The same search space on MajorCAN must come up empty: the protocol
	// tolerates any single-frame pattern of up to 2 view flips, and the
	// higher-multiplicity patterns that defeat m=5 need 5 coordinated
	// disturbances, unreachable with MaxFaults=2.
	c := Campaign{
		Base:       Script{Version: ScriptVersion, Protocol: "MajorCAN_5", Nodes: 5, Frames: 1},
		Trials:     60,
		MaxFaults:  2,
		FaultKinds: []FaultKind{ViewFlip},
		Seed:       12,
		Probes:     []Probe{AB(abcheck.Agreement, abcheck.AtMostOnce)},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("MajorCAN campaign found %d violations: %+v", len(res.Findings), res.Findings[0].Violations)
	}
	if res.Executions != res.Trials {
		t.Errorf("executions = %d, want %d (no shrinking on a clean campaign)", res.Executions, res.Trials)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{
		Base:       Script{Version: ScriptVersion, Protocol: "CAN", Nodes: 4, Frames: 2},
		Trials:     40,
		Seed:       7,
		FaultKinds: []FaultKind{ViewFlip, ClockGlitch, Mute},
	}
	a, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Findings) != len(b.Findings) || a.Executions != b.Executions {
		t.Fatalf("campaign not deterministic: %d/%d findings, %d/%d executions",
			len(a.Findings), len(b.Findings), a.Executions, b.Executions)
	}
	for i := range a.Findings {
		if a.Findings[i].Verdict.Digest != b.Findings[i].Verdict.Digest {
			t.Errorf("finding %d digests differ", i)
		}
	}
}

// TestReplayCheckedInArtifact is the regression gate for the shrunk
// counterexample stored in testdata: the artifact must re-execute
// bit-for-bit and reach the recorded Agreement verdict.
func TestReplayCheckedInArtifact(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fig3a_shrunk.json"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Script.Faults) > 3 {
		t.Errorf("checked-in artifact has %d faults, want a shrunk script (<= 3)", len(a.Script.Faults))
	}
	rr, err := Replay(a, AB(abcheck.Agreement))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.DigestMatch {
		t.Errorf("digest %s != recorded %s (slots %d vs %d)",
			rr.Verdict.Digest, a.Verdict.Digest, rr.Verdict.Slots, a.Verdict.Slots)
	}
	if !rr.VerdictMatch {
		t.Errorf("verdict %+v != recorded %+v", rr.Verdict, a.Verdict)
	}
	agreement := false
	for _, v := range rr.Verdict.Violations {
		if strings.HasPrefix(v, abcheck.Agreement.String()) {
			agreement = true
		}
	}
	if !agreement {
		t.Errorf("replayed violations %v lack Agreement", rr.Verdict.Violations)
	}
}

func TestReplayDetectsTamperedVerdict(t *testing.T) {
	r, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact{Script: fig3aScript(), Verdict: VerdictOf(r, DefaultProbes())}
	a.Verdict.Digest = "0000000000000000"
	rr, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	if rr.DigestMatch || rr.Matches() {
		t.Error("tampered digest must not match")
	}
}
