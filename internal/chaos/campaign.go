package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/obs"
)

// Campaign is a randomised search for invariant violations: Trials random
// fault scripts are drawn around a base cluster configuration, executed,
// and probed; every failing script is shrunk to a minimal counterexample.
type Campaign struct {
	// Name labels findings and artifacts.
	Name string
	// Base is the cluster configuration every trial shares; its Faults are
	// ignored (trials draw their own).
	Base Script
	// Trials is the number of random scripts to execute.
	Trials int
	// StartTrial is the global index of the first trial: the campaign
	// runs trials [StartTrial, StartTrial+Trials). Because every trial
	// draws from its own seed-derived RNG, a partition of contiguous
	// trial ranges across workers reproduces exactly the trials a single
	// [0, total) run would draw — the fleet coordinator's shard contract.
	// Finding.Trial records the global index either way.
	StartTrial int
	// MaxFaults bounds the faults per trial (>= 1; default 4).
	MaxFaults int
	// FaultKinds restricts the fault classes drawn (default: all).
	FaultKinds []FaultKind
	// Seed makes the search reproducible.
	Seed int64
	// Probes are the invariants checked (default DefaultProbes).
	Probes []Probe
	// StopAtFirst ends the campaign at the first finding.
	StopAtFirst bool
	// MaxEOFRel bounds view-flip EOF positions (default: the protocol's
	// EOF length plus 6, covering delimiter and intermission bits).
	MaxEOFRel int
	// MaxAttempt bounds view-flip attempt numbers (default 2).
	MaxAttempt int
	// WindowMax bounds stuck/mute window lengths in slots (default 200).
	WindowMax int
	// Horizon bounds absolute fault slots (default 200 per frame).
	Horizon uint64
	// Metrics, if non-nil, aggregates every simulator execution of the
	// campaign — trials, shrink candidates and final verification runs —
	// into one registry (bits simulated, error flags, retransmissions).
	Metrics *obs.Metrics
	// Events, if non-nil, receives the protocol event stream of every
	// simulator execution. The campaign runs trials on one goroutine, so
	// a single-producer sink (e.g. an obs.Ring drained by a live reader)
	// is sufficient.
	Events obs.Sink
	// OnTrial, if non-nil, is called after each trial completes with the
	// number of trials finished so far, for progress display.
	OnTrial func(done int)
	// Resume, if non-nil, restarts the campaign from recorded progress:
	// trials below Resume.Trial are skipped and the recorded findings and
	// execution count are preloaded. Because every trial draws from its
	// own seed-derived RNG, a resumed campaign's result is identical to
	// an uninterrupted one.
	Resume *CampaignProgress
	// OnProgress, if non-nil, is called at every trial boundary with the
	// cumulative progress — the snapshot a checkpointing caller persists
	// so a crashed campaign resumes instead of restarting.
	OnProgress func(p CampaignProgress)
}

// CampaignProgress is a resumable snapshot of a campaign at a trial
// boundary: how many trials are fully processed, how many simulator
// executions they took, and the findings so far. It is the payload the
// simulation service checkpoints beside the result spool.
type CampaignProgress struct {
	// Trial is the number of trials fully processed.
	Trial int `json:"trial"`
	// Executions counts simulator runs including shrinking re-executions.
	Executions int `json:"executions"`
	// Findings are the counterexamples found in trials [0, Trial).
	Findings []Finding `json:"findings,omitempty"`
}

// Finding is one discovered counterexample.
type Finding struct {
	// Trial is the index of the failing trial.
	Trial int
	// Original is the failing script as drawn.
	Original Script
	// Shrunk is the 1-minimal script preserving the violation classes.
	Shrunk Script
	// Verdict is the shrunk script's recorded outcome.
	Verdict Verdict
	// Violations are the shrunk script's probe findings (same as
	// Verdict.Violations, kept for direct access).
	Violations []string
}

// Artifact packages the finding for replay.
func (f Finding) Artifact(campaign string) Artifact {
	return Artifact{
		Campaign:       campaign,
		Trial:          f.Trial,
		OriginalFaults: len(f.Original.Faults),
		Script:         f.Shrunk,
		Verdict:        f.Verdict,
	}
}

// CampaignResult summarises a campaign.
type CampaignResult struct {
	// Name echoes the campaign name.
	Name string
	// Trials is the number of random scripts drawn.
	Trials int
	// Executions counts simulator runs including shrinking re-executions.
	Executions int
	// Findings are the discovered counterexamples in trial order.
	Findings []Finding
}

func (c *Campaign) defaults() (Campaign, error) {
	cc := *c
	if cc.Base.Version == 0 {
		cc.Base.Version = ScriptVersion
	}
	if err := cc.Base.WithFaults(nil).Validate(); err != nil {
		return cc, err
	}
	policy, err := ParseProtocol(cc.Base.Protocol)
	if err != nil {
		return cc, err
	}
	if cc.Trials <= 0 {
		cc.Trials = 100
	}
	if cc.MaxFaults <= 0 {
		cc.MaxFaults = 4
	}
	if len(cc.FaultKinds) == 0 {
		cc.FaultKinds = Kinds()
	}
	if len(cc.Probes) == 0 {
		cc.Probes = DefaultProbes()
	}
	if cc.MaxEOFRel <= 0 {
		cc.MaxEOFRel = policy.EOFBits() + 6
	}
	if cc.MaxAttempt <= 0 {
		cc.MaxAttempt = 2
	}
	if cc.WindowMax <= 0 {
		cc.WindowMax = 200
	}
	if cc.Horizon == 0 {
		cc.Horizon = uint64(cc.Base.Frames) * 200
	}
	return cc, nil
}

// draw generates one random fault for a trial.
func (c *Campaign) draw(rng *rand.Rand) Fault {
	f := Fault{
		Kind:    c.FaultKinds[rng.Intn(len(c.FaultKinds))],
		Station: rng.Intn(c.Base.Nodes),
	}
	switch f.Kind {
	case ViewFlip:
		f.EOFRel = 1 + rng.Intn(c.MaxEOFRel)
		f.Attempt = 1 + rng.Intn(c.MaxAttempt)
	case StuckDominant, Mute:
		f.Slot = uint64(rng.Int63n(int64(c.Horizon)))
		f.Until = f.Slot + 1 + uint64(rng.Intn(c.WindowMax))
	case Crash, BusOffKind, ClockGlitch:
		f.Slot = uint64(rng.Int63n(int64(c.Horizon)))
	}
	return f
}

// violationClasses extracts the distinct failure classes ("AB2-Agreement",
// "liveness", ...) from probe findings; shrinking preserves them so a rich
// counterexample cannot degrade into a different, weaker failure.
func violationClasses(violations []string) map[string]bool {
	classes := make(map[string]bool)
	for _, v := range violations {
		if i := strings.IndexByte(v, ':'); i >= 0 {
			classes[v[:i]] = true
		} else {
			classes[v] = true
		}
	}
	return classes
}

func coversClasses(got []string, want map[string]bool) bool {
	have := violationClasses(got)
	//lint:allow determinism -- order-independent universal quantification over failure classes
	for c := range want {
		if !have[c] {
			return false
		}
	}
	return true
}

// Run executes the campaign.
func (c *Campaign) Run() (*CampaignResult, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign, stopping between trials when ctx is
// cancelled. A cancelled campaign returns its partial result alongside
// ctx's error, so callers can flush what completed — the same contract
// sim.RunSweepSpec gives interrupted sweeps.
func (c *Campaign) RunContext(ctx context.Context) (*CampaignResult, error) {
	cc, err := c.defaults()
	if err != nil {
		return nil, err
	}
	tel := Telemetry{Events: cc.Events, Metrics: cc.Metrics}
	res := &CampaignResult{Name: cc.Name, Trials: cc.Trials}
	start, end := cc.StartTrial, cc.StartTrial+cc.Trials
	if cc.Resume != nil && cc.Resume.Trial >= cc.StartTrial {
		// Resume.Trial is a global watermark ("trials below this are
		// done"); one below StartTrial belongs to a different trial
		// window and is ignored rather than trusted.
		start = cc.Resume.Trial
		if start > end {
			start = end
		}
		res.Executions = cc.Resume.Executions
		res.Findings = append(res.Findings, cc.Resume.Findings...)
		if cc.StopAtFirst && len(res.Findings) > 0 {
			// The interrupted campaign had already stopped at its first
			// finding; resuming must not search further.
			return res, nil
		}
	}
	progress := func(done int) {
		if cc.OnProgress != nil {
			cc.OnProgress(CampaignProgress{
				Trial:      done,
				Executions: res.Executions,
				Findings:   append([]Finding(nil), res.Findings...),
			})
		}
	}
	// Per-trial RNGs keep trial t reproducible regardless of how many
	// faults earlier trials drew.
	const trialStride int64 = 0x5E3779B97F4A7C15 // odd constant decorrelates trials
	for trial := start; trial < end; trial++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(cc.Seed*0x1000193 + int64(trial)*trialStride))
		script := cc.Base.WithFaults(nil)
		nf := 1 + rng.Intn(cc.MaxFaults)
		for i := 0; i < nf; i++ {
			script.Faults = append(script.Faults, cc.draw(rng))
		}
		run, err := RunObserved(script, tel)
		if err != nil {
			return nil, fmt.Errorf("chaos: trial %d: %w", trial, err)
		}
		res.Executions++
		violations := Violations(run, cc.Probes)
		if len(violations) == 0 {
			if cc.OnTrial != nil {
				cc.OnTrial(trial + 1)
			}
			progress(trial + 1)
			continue
		}
		classes := violationClasses(violations)
		shrunk := Shrink(script, func(cand Script) bool {
			r, err := RunObserved(cand, tel)
			if err != nil {
				return false
			}
			res.Executions++
			return coversClasses(Violations(r, cc.Probes), classes)
		})
		final, err := RunObserved(shrunk, tel)
		if err != nil {
			return nil, fmt.Errorf("chaos: trial %d (shrunk): %w", trial, err)
		}
		res.Executions++
		verdict := VerdictOf(final, cc.Probes)
		res.Findings = append(res.Findings, Finding{
			Trial:      trial,
			Original:   script,
			Shrunk:     shrunk,
			Verdict:    verdict,
			Violations: verdict.Violations,
		})
		if cc.OnTrial != nil {
			cc.OnTrial(trial + 1)
		}
		progress(trial + 1)
		if cc.StopAtFirst {
			break
		}
	}
	return res, nil
}

// ReplayResult compares a fresh execution of an artifact's script against
// its recorded verdict.
type ReplayResult struct {
	// Result is the fresh execution.
	Result *Result
	// Verdict is the fresh execution's verdict under the given probes.
	Verdict Verdict
	// DigestMatch reports bit-for-bit bus equality with the recording.
	DigestMatch bool
	// VerdictMatch reports identical violation sets and counts.
	VerdictMatch bool
}

// Matches reports full bit-for-bit and verdict agreement.
func (r *ReplayResult) Matches() bool { return r.DigestMatch && r.VerdictMatch }

// Replay re-executes an artifact's script and checks that it reproduces
// the recorded verdict exactly. Probes default to DefaultProbes, which is
// what campaigns record.
func Replay(a Artifact, probes ...Probe) (*ReplayResult, error) {
	return ReplayObserved(a, Telemetry{}, probes...)
}

// ReplayObserved is Replay with telemetry attached to the re-execution,
// so a checked-in counterexample can be turned into a readable event
// sequence and a metrics snapshot.
func ReplayObserved(a Artifact, t Telemetry, probes ...Probe) (*ReplayResult, error) {
	if len(probes) == 0 {
		probes = DefaultProbes()
	}
	run, err := RunObserved(a.Script, t)
	if err != nil {
		return nil, err
	}
	verdict := VerdictOf(run, probes)
	rr := &ReplayResult{
		Result:      run,
		Verdict:     verdict,
		DigestMatch: verdict.Digest == a.Verdict.Digest && verdict.Slots == a.Verdict.Slots,
	}
	rr.VerdictMatch = equalStrings(verdict.Violations, a.Verdict.Violations) &&
		verdict.IMOs == a.Verdict.IMOs &&
		verdict.Duplicates == a.Verdict.Duplicates &&
		verdict.OrderInversions == a.Verdict.OrderInversions &&
		verdict.Quiet == a.Verdict.Quiet
	return rr, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
