// Package chaos is a declarative fault-injection campaign engine for the
// MajorCAN simulator. A Script composes disturbance sources over one
// cluster run — view flips from the errmodel vocabulary, stuck-at-dominant
// transceivers (babbling idiots), muted output windows, crash and forced
// bus-off schedules, and one-slot clock glitches. Campaigns search random
// scripts for invariant violations (Atomic Broadcast properties, liveness,
// fault confinement), shrink counterexamples delta-debugging-style to a
// minimal disturbance script, and emit deterministic JSON replay artifacts
// that re-execute bit-for-bit.
package chaos

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/node"
)

// FaultKind names one class of injectable fault.
type FaultKind string

const (
	// ViewFlip flips one station's view of one bus bit (the paper's
	// per-node error effectivity model), located either by EOF-relative
	// position and attempt number or by absolute slot.
	ViewFlip FaultKind = "view-flip"
	// StuckDominant forces a station's transceiver output dominant for the
	// slot window [Slot, Until) — the babbling-idiot failure that jams the
	// whole bus.
	StuckDominant FaultKind = "stuck-dominant"
	// Mute forces a station's output recessive for [Slot, Until): the
	// station is temporarily disconnected from driving the bus (it cannot
	// acknowledge or signal errors) while still sampling it.
	Mute FaultKind = "mute"
	// Crash switches the station off permanently at Slot (fail-silent).
	Crash FaultKind = "crash"
	// BusOffKind forces the station's transmit error counter to the
	// bus-off limit at Slot. With Script.AutoRecover this is the
	// crash-then-restart schedule: the node falls off the bus and rejoins
	// after 128 occurrences of 11 consecutive recessive bits.
	BusOffKind FaultKind = "bus-off"
	// ClockGlitch makes the station sample one slot late at Slot: it
	// latches the previous slot's bus level (a one-slot sample-point skew).
	ClockGlitch FaultKind = "clock-glitch"
)

// Kinds lists every fault kind.
func Kinds() []FaultKind {
	return []FaultKind{ViewFlip, StuckDominant, Mute, Crash, BusOffKind, ClockGlitch}
}

// Fault is one scripted disturbance. Which location fields apply depends
// on Kind: ViewFlip uses EOFRel/Attempt (first matching frame) or an
// absolute Slot; StuckDominant and Mute use the window [Slot, Until);
// Crash, BusOffKind and ClockGlitch use Slot.
type Fault struct {
	Kind    FaultKind `json:"kind"`
	Station int       `json:"station"`
	EOFRel  int       `json:"eofRel,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Slot    uint64    `json:"slot,omitempty"`
	Until   uint64    `json:"until,omitempty"`
}

func (f Fault) String() string {
	switch f.Kind {
	case ViewFlip:
		if f.EOFRel > 0 {
			return fmt.Sprintf("%s(n%d, eof[%d], attempt %d)", f.Kind, f.Station, f.EOFRel, f.Attempt)
		}
		return fmt.Sprintf("%s(n%d, slot %d)", f.Kind, f.Station, f.Slot)
	case StuckDominant, Mute:
		return fmt.Sprintf("%s(n%d, slots [%d,%d))", f.Kind, f.Station, f.Slot, f.Until)
	default:
		return fmt.Sprintf("%s(n%d, slot %d)", f.Kind, f.Station, f.Slot)
	}
}

// Script is one deterministic fault-injection run: a cluster configuration
// plus the faults to inject. Scripts serialise to JSON and re-execute
// bit-for-bit.
type Script struct {
	// Version guards the artifact format.
	Version int `json:"version"`
	// Protocol selects the variant: "CAN", "MinorCAN" or "MajorCAN_<m>"
	// (case-insensitive, as accepted by ParseProtocol).
	Protocol string `json:"protocol"`
	// Nodes is the number of stations (>= 3).
	Nodes int `json:"nodes"`
	// Frames is the number of application frames broadcast.
	Frames int `json:"frames"`
	// PayloadBytes sets the frame payload size (default 8).
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// RotateOrigins sends frame i from station i mod Nodes.
	RotateOrigins bool `json:"rotateOrigins,omitempty"`
	// AutoRecover enables bus-off recovery on every node.
	AutoRecover bool `json:"autoRecover,omitempty"`
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool `json:"warningSwitchOff,omitempty"`
	// SlotsPerFrame bounds simulation time per frame (default 4000).
	SlotsPerFrame int `json:"slotsPerFrame,omitempty"`
	// Faults are the injected disturbances.
	Faults []Fault `json:"faults"`
}

// ScriptVersion is the current artifact format version.
const ScriptVersion = 1

// Validate checks the script's structural invariants.
func (s Script) Validate() error {
	if s.Nodes < 3 {
		return fmt.Errorf("chaos: script needs >= 3 nodes, got %d", s.Nodes)
	}
	if s.Frames <= 0 {
		return fmt.Errorf("chaos: script needs >= 1 frame")
	}
	if _, err := ParseProtocol(s.Protocol); err != nil {
		return err
	}
	for i, f := range s.Faults {
		if f.Station < 0 || f.Station >= s.Nodes {
			return fmt.Errorf("chaos: fault %d targets station %d of %d", i, f.Station, s.Nodes)
		}
		switch f.Kind {
		case ViewFlip:
			if f.EOFRel <= 0 && f.Slot == 0 {
				return fmt.Errorf("chaos: fault %d: view-flip needs eofRel or slot", i)
			}
		case StuckDominant, Mute:
			if f.Until <= f.Slot {
				return fmt.Errorf("chaos: fault %d: empty window [%d,%d)", i, f.Slot, f.Until)
			}
		case Crash, BusOffKind, ClockGlitch:
			// Slot 0 is legal.
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// WithFaults returns a copy of the script carrying the given fault list.
func (s Script) WithFaults(faults []Fault) Script {
	out := s
	out.Faults = append([]Fault(nil), faults...)
	return out
}

// ParseProtocol resolves a protocol name ("can", "minorcan",
// "majorcan_<m>", case-insensitive; "majorcan" alone uses the default m)
// to its EOF policy. It accepts exactly the names the policies' Name()
// methods produce, so scripts round-trip. The parsing itself lives in
// core.ParsePolicy, shared with the job-spec codec and the CLIs.
func ParseProtocol(name string) (node.EOFPolicy, error) {
	p, err := core.ParsePolicy(name)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return p, nil
}

// Verdict is the recorded outcome of executing a script: the probe
// violations plus the consistency counts and the bus digest that replays
// must reproduce.
type Verdict struct {
	// Violations are the probe findings, sorted lexicographically.
	Violations []string `json:"violations"`
	// IMOs, Duplicates and OrderInversions are the abcheck counts.
	IMOs            int `json:"imos"`
	Duplicates      int `json:"duplicates"`
	OrderInversions int `json:"orderInversions"`
	// Quiet reports whether the bus quiesced within budget.
	Quiet bool `json:"quiet"`
	// Slots is the total simulated slot count.
	Slots uint64 `json:"slots"`
	// Digest is the FNV-1a hash of the complete bus history (16 hex
	// digits); equal digests mean bit-for-bit identical runs.
	Digest string `json:"digest"`
}

// Artifact is a self-contained, re-executable counterexample: the shrunk
// script together with the verdict its execution produced.
type Artifact struct {
	// Campaign names the campaign that found it.
	Campaign string `json:"campaign,omitempty"`
	// Trial is the campaign trial index that found the original script.
	Trial int `json:"trial"`
	// OriginalFaults is the fault count before shrinking.
	OriginalFaults int `json:"originalFaults"`
	// Script is the shrunk, minimal script.
	Script Script `json:"script"`
	// Verdict is the recorded outcome of the shrunk script.
	Verdict Verdict `json:"verdict"`
}

// Encode renders the artifact as deterministic, indented JSON.
func (a Artifact) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// DecodeArtifact parses an artifact and validates its script.
func DecodeArtifact(data []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("chaos: bad artifact: %w", err)
	}
	if a.Script.Version != ScriptVersion {
		return Artifact{}, fmt.Errorf("chaos: artifact version %d, want %d", a.Script.Version, ScriptVersion)
	}
	if err := a.Script.Validate(); err != nil {
		return Artifact{}, err
	}
	return a, nil
}
