package chaos

import (
	"context"
	"errors"
	"testing"

	"repro/internal/abcheck"
	"repro/internal/node"
)

// fig3aScript is the paper's Fig. 3a pattern as a chaos script: the
// receivers in X (stations 1, 2) miss the last-but-one EOF bit and the
// transmitter misses the last one, producing an inconsistent message
// omission on standard CAN.
func fig3aScript() Script {
	return Script{
		Version:  ScriptVersion,
		Protocol: "CAN",
		Nodes:    5,
		Frames:   1,
		Faults: []Fault{
			{Kind: ViewFlip, Station: 1, EOFRel: 6, Attempt: 1},
			{Kind: ViewFlip, Station: 2, EOFRel: 6, Attempt: 1},
			{Kind: ViewFlip, Station: 0, EOFRel: 7, Attempt: 1},
		},
	}
}

func TestRunFig3aProducesIMO(t *testing.T) {
	r, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.InconsistentOmissions != 1 {
		t.Errorf("IMOs = %d, want 1", r.Report.InconsistentOmissions)
	}
	if r.Report.Satisfies(abcheck.Agreement) {
		t.Error("Fig. 3a script must violate Agreement")
	}
	if !r.Quiet {
		t.Error("bus must quiesce")
	}
	vs := Violations(r, DefaultProbes())
	if len(vs) == 0 {
		t.Error("default probes must report the violation")
	}
}

func TestRunObservedContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunObservedContext(ctx, fig3aScript(), Telemetry{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay err = %v, want context.Canceled", err)
	}
	// A live context must not perturb the simulated outcome.
	a, err := RunObservedContext(context.Background(), fig3aScript(), Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.Slots != b.Slots {
		t.Errorf("context-threaded run digests %s/%d, plain run %s/%d", a.DigestHex, a.Slots, b.DigestHex, b.Slots)
	}
}

func TestRunDeterministicDigest(t *testing.T) {
	a, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.Slots != b.Slots {
		t.Errorf("same script digests %s/%d vs %s/%d", a.DigestHex, a.Slots, b.DigestHex, b.Slots)
	}
	clean, err := Run(fig3aScript().WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest == a.Digest {
		t.Error("faulted and clean runs must digest differently")
	}
	if len(Violations(clean, DefaultProbes())) != 0 {
		t.Error("fault-free run must be clean")
	}
}

func TestRunMajorCANDefeatsFig3a(t *testing.T) {
	s := fig3aScript()
	s.Protocol = "MajorCAN_5"
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Violations(r, DefaultProbes()); len(vs) != 0 {
		t.Errorf("MajorCAN must tolerate the Fig. 3a pattern, got %v", vs)
	}
}

func TestStuckDominantJamRecovers(t *testing.T) {
	s := Script{
		Version:  ScriptVersion,
		Protocol: "CAN",
		Nodes:    5,
		Frames:   2,
		Faults: []Fault{
			{Kind: StuckDominant, Station: 3, Slot: 20, Until: 140},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Quiet {
		t.Fatal("bus must recover after the jam window ends")
	}
	// The jammer is faulty by injection; the remaining stations must still
	// agree on both frames once the babbling stops.
	if !r.Trace.Faulty[3] {
		t.Error("jammed station must be marked faulty")
	}
	if vs := Violations(r, []Probe{AB(abcheck.Agreement, abcheck.Validity)}); len(vs) != 0 {
		t.Errorf("post-jam retransmission must restore agreement, got %v", vs)
	}
}

func TestMuteWindowSuppressesStation(t *testing.T) {
	s := Script{
		Version:  ScriptVersion,
		Protocol: "CAN",
		Nodes:    3,
		Frames:   1,
		Faults: []Fault{
			{Kind: Mute, Station: 1, Slot: 0, Until: 500},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trace.Faulty[1] {
		t.Error("muted station must be marked faulty")
	}
	if !r.Quiet {
		t.Error("two live stations must still complete the frame")
	}
}

func TestBusOffScheduleWithAutoRecoverRejoins(t *testing.T) {
	s := Script{
		Version:     ScriptVersion,
		Protocol:    "CAN",
		Nodes:       4,
		Frames:      2,
		AutoRecover: true,
		Faults: []Fault{
			{Kind: BusOffKind, Station: 2, Slot: 30},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	st := r.NodeStates[2]
	if !st.EverOff {
		t.Error("station 2 must have gone bus-off")
	}
	if st.Mode != node.ErrorActive {
		t.Errorf("station 2 mode = %v, want recovered to error-active", st.Mode)
	}
	if !r.Trace.Faulty[2] {
		t.Error("a station that left the bus is faulty for the AB properties")
	}
	if vs := Violations(r, DefaultProbes()); len(vs) != 0 {
		t.Errorf("probes over the surviving stations must be clean, got %v", vs)
	}
}

func TestCrashScheduleIsTerminal(t *testing.T) {
	s := Script{
		Version:  ScriptVersion,
		Protocol: "CAN",
		Nodes:    4,
		Frames:   2,
		Faults: []Fault{
			{Kind: Crash, Station: 1, Slot: 10},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	st := r.NodeStates[1]
	if !st.Crashed || st.Mode != node.SwitchedOff {
		t.Errorf("station 1 state %+v, want crashed and switched off", st)
	}
	if !r.Trace.Faulty[1] {
		t.Error("crashed station must be faulty")
	}
}

func TestClockGlitchChangesDigestOnly(t *testing.T) {
	base := Script{Version: ScriptVersion, Protocol: "CAN", Nodes: 3, Frames: 1}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// A one-slot skew in the middle of the frame body: the sampled level
	// differs whenever the bus toggled across the boundary.
	glitched, err := Run(base.WithFaults([]Fault{
		{Kind: ClockGlitch, Station: 1, Slot: 15},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest == glitched.Digest {
		t.Error("clock glitch must perturb the recorded history")
	}
	if !glitched.Quiet {
		t.Error("a single glitch must not wedge the bus")
	}
}

func TestShrinkFindsMinimalPair(t *testing.T) {
	// The Fig. 3a pair buried among four irrelevant faults: shrinking with
	// an Agreement predicate must strip the decoys.
	s := fig3aScript()
	s.Faults = append(s.Faults,
		Fault{Kind: ViewFlip, Station: 3, EOFRel: 2, Attempt: 2},
		Fault{Kind: ViewFlip, Station: 4, EOFRel: 9, Attempt: 1},
		Fault{Kind: ClockGlitch, Station: 1, Slot: 180},
	)
	execs := 0
	shrunk := Shrink(s, func(cand Script) bool {
		r, err := Run(cand)
		if err != nil {
			return false
		}
		execs++
		return !r.Report.Satisfies(abcheck.Agreement)
	})
	// One receiver-side rel-6 flip plus the transmitter rel-7 flip suffice;
	// the second receiver flip is redundant, so ddmin must reach 2 faults.
	if len(shrunk.Faults) != 2 {
		t.Fatalf("shrunk to %d faults %v, want 2", len(shrunk.Faults), shrunk.Faults)
	}
	hasTx := false
	hasRx := false
	for _, f := range shrunk.Faults {
		if f.Kind != ViewFlip || f.Attempt != 1 {
			t.Errorf("unexpected shrunk fault %v", f)
		}
		if f.Station == 0 && f.EOFRel == 7 {
			hasTx = true
		}
		if f.Station != 0 && f.EOFRel == 6 {
			hasRx = true
		}
	}
	if !hasTx || !hasRx {
		t.Errorf("shrunk faults %v, want the transmitter rel-7 and one receiver rel-6 flip", shrunk.Faults)
	}
	if execs == 0 {
		t.Error("predicate must have been exercised")
	}
	// 1-minimality: removing either remaining fault kills the failure.
	for i := range shrunk.Faults {
		rest := append(append([]Fault(nil), shrunk.Faults[:i]...), shrunk.Faults[i+1:]...)
		r, err := Run(shrunk.WithFaults(rest))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Report.Satisfies(abcheck.Agreement) {
			t.Errorf("removing fault %d still violates Agreement: not 1-minimal", i)
		}
	}
}

func TestShrinkKeepsNonFailingScript(t *testing.T) {
	s := fig3aScript()
	got := Shrink(s, func(Script) bool { return false })
	if len(got.Faults) != len(s.Faults) {
		t.Errorf("non-failing input must be returned unchanged, got %d faults", len(got.Faults))
	}
}

func TestScriptValidate(t *testing.T) {
	bad := []Script{
		{Version: 1, Protocol: "CAN", Nodes: 2, Frames: 1},
		{Version: 1, Protocol: "CAN", Nodes: 3, Frames: 0},
		{Version: 1, Protocol: "nope", Nodes: 3, Frames: 1},
		{Version: 1, Protocol: "CAN", Nodes: 3, Frames: 1,
			Faults: []Fault{{Kind: ViewFlip, Station: 5}}},
		{Version: 1, Protocol: "CAN", Nodes: 3, Frames: 1,
			Faults: []Fault{{Kind: ViewFlip, Station: 0}}},
		{Version: 1, Protocol: "CAN", Nodes: 3, Frames: 1,
			Faults: []Fault{{Kind: Mute, Station: 0, Slot: 10, Until: 10}}},
		{Version: 1, Protocol: "CAN", Nodes: 3, Frames: 1,
			Faults: []Fault{{Kind: "gremlin", Station: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("script %d must fail validation", i)
		}
	}
	if err := fig3aScript().Validate(); err != nil {
		t.Errorf("fig3a script must validate: %v", err)
	}
}

func TestParseProtocolRoundTrips(t *testing.T) {
	for _, name := range []string{"CAN", "can", "MinorCAN", "majorcan", "MajorCAN_5", "majorcan_7"} {
		p, err := ParseProtocol(name)
		if err != nil {
			t.Errorf("ParseProtocol(%q): %v", name, err)
			continue
		}
		// The canonical name must parse back to the same policy.
		q, err := ParseProtocol(p.Name())
		if err != nil || q.Name() != p.Name() {
			t.Errorf("round trip %q -> %q failed: %v", name, p.Name(), err)
		}
	}
	if _, err := ParseProtocol("majorcan_x"); err == nil {
		t.Error("bad m must be rejected")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	r, err := Run(fig3aScript())
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact{
		Campaign: "t",
		Script:   fig3aScript(),
		Verdict:  VerdictOf(r, DefaultProbes()),
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Verdict.Digest != a.Verdict.Digest || len(back.Script.Faults) != 3 {
		t.Errorf("artifact did not round trip: %+v", back)
	}
	if _, err := DecodeArtifact([]byte("{")); err == nil {
		t.Error("truncated artifact must be rejected")
	}
	if _, err := DecodeArtifact([]byte(`{"script":{"version":9}}`)); err == nil {
		t.Error("wrong version must be rejected")
	}
}
