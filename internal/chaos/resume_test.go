package chaos

import (
	"context"
	"encoding/json"
	"testing"
)

func resumeSpec() CampaignSpec {
	// Seed 18 rediscovers an Agreement violation at trial 26, so resume
	// points both before and after a finding are exercised.
	return CampaignSpec{
		Protocol: "can",
		Frames:   1,
		Trials:   30,
		Seed:     18,
		Kinds:    []FaultKind{ViewFlip},
		Probes:   []string{"agreement"},
	}
}

// TestCampaignResumeByteIdentical: a campaign interrupted at any trial
// boundary and resumed from the recorded progress must produce an
// outcome byte-identical to an uninterrupted run — per-trial RNGs make
// trial t independent of how the run reached it.
func TestCampaignResumeByteIdentical(t *testing.T) {
	spec := resumeSpec()
	ref, err := RunCampaignSpec(context.Background(), spec, Telemetry{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("reference campaign found nothing; resume test needs findings to carry across the boundary")
	}

	// Record progress at every trial boundary.
	var snaps []CampaignProgress
	_, err = RunCampaignSpecResumable(context.Background(), spec, Telemetry{}, nil, nil,
		func(p CampaignProgress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != spec.Trials {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), spec.Trials)
	}

	// Resume from a handful of interruption points, including ones before
	// and after findings were made.
	for _, cut := range []int{1, 10, 27, 29} {
		snap := snaps[cut-1]
		res, err := RunCampaignSpecResumable(context.Background(), spec, Telemetry{}, nil, &snap, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refJSON) {
			t.Fatalf("resume from trial %d diverged:\n got %s\nwant %s", cut, got, refJSON)
		}
	}
}

// TestCampaignResumeStopAtFirstDoesNotSearchFurther: a stop-at-first
// campaign that had already found its counterexample must return it on
// resume without drawing more trials.
func TestCampaignResumeStopAtFirstDoesNotSearchFurther(t *testing.T) {
	spec := resumeSpec()
	spec.StopAtFirst = true
	ref, err := RunCampaignSpec(context.Background(), spec, Telemetry{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Findings) == 0 {
		t.Fatal("reference stop-at-first campaign found nothing")
	}

	var last CampaignProgress
	_, err = RunCampaignSpecResumable(context.Background(), spec, Telemetry{}, nil, nil,
		func(p CampaignProgress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	trials := 0
	res, err := RunCampaignSpecResumable(context.Background(), spec, Telemetry{},
		func(int) { trials++ }, &last, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trials != 0 {
		t.Fatalf("resumed stop-at-first campaign ran %d more trials, want 0", trials)
	}
	if len(res.Findings) != len(ref.Findings) {
		t.Fatalf("findings lost across resume: %d vs %d", len(res.Findings), len(ref.Findings))
	}
}
