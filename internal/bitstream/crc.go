package bitstream

// CRCPoly is the generator polynomial of the CAN frame check sequence:
//
//	x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1
//
// represented with the x^15 term implicit (0x4599 = 100 0101 1001 1001b).
const CRCPoly = 0x4599

// CRCWidth is the width in bits of the CAN CRC sequence.
const CRCWidth = 15

const crcMask = 1<<CRCWidth - 1

// CRC15 is the incremental CAN CRC register. The zero value is the correct
// start-of-frame state (register cleared).
type CRC15 struct {
	reg uint16
}

// Reset clears the CRC register (start-of-frame state).
func (c *CRC15) Reset() { c.reg = 0 }

// Push feeds one destuffed bit (as a bus level) into the CRC register,
// following the algorithm in the CAN 2.0 specification.
func (c *CRC15) Push(l Level) {
	crcnxt := uint16(l.Bit()) ^ (c.reg >> (CRCWidth - 1) & 1)
	c.reg = (c.reg << 1) & crcMask
	if crcnxt != 0 {
		c.reg ^= CRCPoly
	}
}

// Sum returns the current value of the CRC register.
func (c *CRC15) Sum() uint16 { return c.reg & crcMask }

// ComputeCRC returns the CAN CRC-15 of a destuffed bit sequence (start of
// frame through the end of the data field).
func ComputeCRC(seq Sequence) uint16 {
	var c CRC15
	for _, l := range seq {
		c.Push(l)
	}
	return c.Sum()
}

// CRCSequence returns the 15-bit CRC of seq as a bus-level sequence,
// most-significant bit first, ready to be appended to the frame.
func CRCSequence(seq Sequence) Sequence {
	return Sequence{}.AppendUint(uint64(ComputeCRC(seq)), CRCWidth)
}
