package bitstream

import "fmt"

// MaxEqualBits is the number of consecutive equal-valued bits after which
// the CAN transfer layer inserts a stuff bit of the complementary value.
// Six consecutive equal bits in a stuffed field therefore constitute a
// stuff error.
const MaxEqualBits = 5

// Stuff applies CAN bit stuffing to the sequence: whenever five consecutive
// bits of equal value have been transmitted, a bit of the complementary
// value is inserted. Stuffing in CAN covers the bits from start of frame up
// to and including the CRC sequence.
func Stuff(in Sequence) Sequence {
	out := make(Sequence, 0, len(in)+len(in)/MaxEqualBits+1)
	var st Stuffer
	for _, l := range in {
		out = append(out, l)
		if stuffBit, ok := st.Push(l); ok {
			out = append(out, stuffBit)
		}
	}
	return out
}

// Destuff removes CAN stuff bits from the sequence. It returns an error if
// the sequence contains six consecutive equal bits (a stuff error) or if a
// stuff bit does not have the complementary value of the preceding run.
func Destuff(in Sequence) (Sequence, error) {
	out := make(Sequence, 0, len(in))
	var ds Destuffer
	for i, l := range in {
		kind, err := ds.Push(l)
		if err != nil {
			return nil, fmt.Errorf("bitstream: destuff at bit %d: %w", i, err)
		}
		if kind == DataBit {
			out = append(out, l)
		}
	}
	return out, nil
}

// Stuffer is an incremental bit-stuffing state machine for the transmit
// path. The zero value is ready to use (as at start of frame).
type Stuffer struct {
	last  Level
	count int
}

// Reset returns the stuffer to its start-of-frame state.
func (s *Stuffer) Reset() {
	s.last = 0
	s.count = 0
}

// Push records that level l has been transmitted as a data bit. If a stuff
// bit of the complementary value must be transmitted next, Push returns it
// with ok = true; the caller must transmit it and need not (and must not)
// report it back via Push — Push already accounts for it.
func (s *Stuffer) Push(l Level) (stuff Level, ok bool) {
	if l == s.last {
		s.count++
	} else {
		s.last = l
		s.count = 1
	}
	if s.count == MaxEqualBits {
		inv := l.Invert()
		// The stuff bit itself starts a new run of length one.
		s.last = inv
		s.count = 1
		return inv, true
	}
	return 0, false
}

// Pending reports whether the next transmitted bit must be a stuff bit.
// It is equivalent to the ok result of the previous Push.
func (s *Stuffer) Pending() bool {
	// After Push returned a stuff bit the run was reset, so there is never a
	// "pending" state observable between Push calls; this helper exists for
	// transmitters that interleave other logic between bits.
	return false
}

// BitKind classifies a received bit in a stuffed field.
type BitKind uint8

const (
	// DataBit is an ordinary payload bit visible to the upper layers.
	DataBit BitKind = iota + 1
	// StuffBit is an inserted stuff bit that must be discarded.
	StuffBit
)

// ErrStuff is returned by Destuffer.Push when six consecutive bits of equal
// value are observed in a stuffed field.
type ErrStuff struct {
	Level Level // the repeated level
}

func (e *ErrStuff) Error() string {
	return fmt.Sprintf("stuff error: six consecutive %s bits", e.Level)
}

// The two possible stuff errors are preallocated so the per-bit receive
// path stays allocation-free even while a disturbed frame is rejected.
var (
	errStuffDominant  = &ErrStuff{Level: Dominant}
	errStuffRecessive = &ErrStuff{Level: Recessive}
)

func stuffError(l Level) *ErrStuff {
	if l == Dominant {
		return errStuffDominant
	}
	return errStuffRecessive
}

// Destuffer is an incremental destuffing state machine for the receive
// path. The zero value is ready to use (as at start of frame).
type Destuffer struct {
	last      Level
	count     int
	expectInv bool
}

// Reset returns the destuffer to its start-of-frame state.
func (d *Destuffer) Reset() {
	*d = Destuffer{}
}

// Push processes one received bit and classifies it as a data bit or a
// stuff bit. A stuff error (six equal consecutive bits) is reported as an
// *ErrStuff error.
func (d *Destuffer) Push(l Level) (BitKind, error) {
	if d.expectInv {
		d.expectInv = false
		if l == d.last {
			// Six equal bits in a row: the stuff bit is missing.
			d.count++
			return 0, stuffError(l)
		}
		// Valid stuff bit: starts a new run of one.
		d.last = l
		d.count = 1
		return StuffBit, nil
	}
	if l == d.last {
		d.count++
	} else {
		d.last = l
		d.count = 1
	}
	if d.count == MaxEqualBits {
		d.expectInv = true
	}
	return DataBit, nil
}

// NextIsStuff reports whether the next received bit is expected to be a
// stuff bit (i.e. five equal bits have just been seen).
func (d *Destuffer) NextIsStuff() bool {
	return d.expectInv
}

// StuffedLength returns the number of bits the sequence will occupy on the
// bus after stuffing, without materialising the stuffed sequence.
func StuffedLength(in Sequence) int {
	n := len(in)
	var st Stuffer
	for _, l := range in {
		if _, ok := st.Push(l); ok {
			n++
		}
	}
	return n
}
