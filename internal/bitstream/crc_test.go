package bitstream

import (
	"math/rand"
	"testing"
)

// crcReference is an independent straightforward polynomial-division
// implementation used to cross-check the register implementation.
func crcReference(seq Sequence) uint16 {
	// Treat the message as a polynomial, append 15 zero bits, divide by the
	// generator (with implicit x^15 term), remainder is the CRC.
	bits := make([]uint8, 0, len(seq)+CRCWidth)
	for _, l := range seq {
		bits = append(bits, l.Bit())
	}
	bits = append(bits, make([]uint8, CRCWidth)...)
	const gen = 1<<CRCWidth | CRCPoly
	var reg uint32
	for _, b := range bits {
		reg = reg<<1 | uint32(b)
		if reg&(1<<CRCWidth) != 0 {
			reg ^= gen
		}
	}
	return uint16(reg & crcMask)
}

func TestCRCMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		seq := randomSequence(r, 1+r.Intn(120))
		got := ComputeCRC(seq)
		want := crcReference(seq)
		if got != want {
			t.Fatalf("trial %d: ComputeCRC = %#x, reference = %#x, seq = %s",
				trial, got, want, seq.Compact())
		}
	}
}

func TestCRCEmptyIsZero(t *testing.T) {
	if got := ComputeCRC(nil); got != 0 {
		t.Errorf("CRC of empty sequence = %#x, want 0", got)
	}
}

func TestCRCIncrementalMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	seq := randomSequence(r, 200)
	var c CRC15
	for _, l := range seq {
		c.Push(l)
	}
	if c.Sum() != ComputeCRC(seq) {
		t.Error("incremental CRC differs from batch CRC")
	}
	c.Reset()
	if c.Sum() != 0 {
		t.Error("Reset must clear the register")
	}
}

func TestCRCSequenceWidth(t *testing.T) {
	seq := CRCSequence(Sequence{Dominant, Recessive, Dominant})
	if len(seq) != CRCWidth {
		t.Fatalf("CRCSequence length = %d, want %d", len(seq), CRCWidth)
	}
}

// The CAN CRC-15 must detect any single-bit error and any burst error of
// length <= 15 in the covered sequence.
func TestCRCDetectsSingleBitErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		seq := randomSequence(r, 83) // typical SOF..data length for 8 data bytes
		crc := ComputeCRC(seq)
		for pos := range seq {
			corrupted := seq.Clone()
			corrupted[pos] = corrupted[pos].Invert()
			if ComputeCRC(corrupted) == crc {
				t.Fatalf("single-bit flip at %d undetected", pos)
			}
		}
	}
}

func TestCRCDetectsBurstErrors(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		seq := randomSequence(r, 83)
		crc := ComputeCRC(seq)
		burstLen := 2 + r.Intn(CRCWidth-1) // 2..15
		if burstLen > len(seq) {
			burstLen = len(seq)
		}
		start := r.Intn(len(seq) - burstLen + 1)
		corrupted := seq.Clone()
		// A burst flips the first and last bits and randomises the middle;
		// ensure it actually differs from the original.
		corrupted[start] = corrupted[start].Invert()
		corrupted[start+burstLen-1] = corrupted[start+burstLen-1].Invert()
		for i := start + 1; i < start+burstLen-1; i++ {
			if r.Intn(2) == 0 {
				corrupted[i] = corrupted[i].Invert()
			}
		}
		if ComputeCRC(corrupted) == crc {
			t.Fatalf("burst error of length %d at %d undetected", burstLen, start)
		}
	}
}

// The CAN specification claims detection of up to 5 randomly distributed
// bit errors. Verify empirically on random frames.
func TestCRCDetectsFiveRandomErrors(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		seq := randomSequence(r, 83)
		crc := ComputeCRC(seq)
		nErr := 1 + r.Intn(5)
		corrupted := seq.Clone()
		positions := r.Perm(len(seq))[:nErr]
		for _, p := range positions {
			corrupted[p] = corrupted[p].Invert()
		}
		if ComputeCRC(corrupted) == crc {
			t.Fatalf("%d random errors at %v undetected", nErr, positions)
		}
	}
}

func BenchmarkCRC15(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	seq := randomSequence(r, 83)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ComputeCRC(seq)
	}
}

func BenchmarkStuff(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	seq := randomSequence(r, 110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Stuff(seq)
	}
}
