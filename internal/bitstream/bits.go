// Package bitstream provides the bit-level primitives of the CAN physical
// and transfer layers: bus levels, bit stuffing/destuffing and the CAN
// CRC-15 sequence.
//
// The CAN bus is a wired-AND medium. A bit can take one of two values:
// dominant (logical '0') or recessive (logical '1'). If any station drives
// the bus dominant during a bit time, the whole bus reads dominant.
package bitstream

import (
	"fmt"
	"strings"
)

// Level is the value of the CAN bus (or of a single transmitted bit) during
// one bit time.
type Level uint8

const (
	// Dominant is the logical '0' bus level. It wins over recessive on the
	// wired-AND medium.
	Dominant Level = iota + 1
	// Recessive is the logical '1' bus level, the idle state of the bus.
	Recessive
)

// Invert returns the opposite level.
func (l Level) Invert() Level {
	switch l {
	case Dominant:
		return Recessive
	case Recessive:
		return Dominant
	default:
		panic(fmt.Sprintf("bitstream: invalid level %d", l))
	}
}

// Bit reports the logical value of the level: 0 for dominant, 1 for
// recessive.
func (l Level) Bit() uint8 {
	switch l {
	case Dominant:
		return 0
	case Recessive:
		return 1
	default:
		panic(fmt.Sprintf("bitstream: invalid level %d", l))
	}
}

// Valid reports whether l is one of the two defined bus levels.
func (l Level) Valid() bool {
	return l == Dominant || l == Recessive
}

// String returns "d" for dominant and "r" for recessive, the notation used
// in the MajorCAN paper's figures.
func (l Level) String() string {
	switch l {
	case Dominant:
		return "d"
	case Recessive:
		return "r"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// FromBit converts a logical bit value (0 or 1) to a bus level.
func FromBit(b uint8) Level {
	if b == 0 {
		return Dominant
	}
	return Recessive
}

// And returns the wired-AND combination of two levels: dominant if either
// operand is dominant.
func And(a, b Level) Level {
	if a == Dominant || b == Dominant {
		return Dominant
	}
	return Recessive
}

// Wire returns the wired-AND combination of any number of levels. With no
// operands the bus floats recessive.
func Wire(levels ...Level) Level {
	for _, l := range levels {
		if l == Dominant {
			return Dominant
		}
	}
	return Recessive
}

// Sequence is an ordered series of bus levels.
type Sequence []Level

// String renders the sequence using the paper's "d"/"r" notation separated
// by spaces.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, l := range s {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ")
}

// Compact renders the sequence without separators, e.g. "rrdrr".
func (s Sequence) Compact() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, l := range s {
		b.WriteString(l.String())
	}
	return b.String()
}

// Clone returns an independent copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// Repeat returns a sequence of n copies of level l.
func Repeat(l Level, n int) Sequence {
	out := make(Sequence, n)
	for i := range out {
		out[i] = l
	}
	return out
}

// ParseSequence parses a string in the "d"/"r" notation (spaces and commas
// ignored) into a Sequence.
func ParseSequence(s string) (Sequence, error) {
	var out Sequence
	for i, r := range s {
		switch r {
		case 'd', 'D', '0':
			out = append(out, Dominant)
		case 'r', 'R', '1':
			out = append(out, Recessive)
		case ' ', ',', '\t':
			// separators
		default:
			return nil, fmt.Errorf("bitstream: invalid level character %q at position %d", r, i)
		}
	}
	return out, nil
}

// FromBits converts a slice of logical bits (0/1) into a Sequence.
func FromBits(bits []uint8) Sequence {
	out := make(Sequence, len(bits))
	for i, b := range bits {
		out[i] = FromBit(b)
	}
	return out
}

// Bits converts the sequence into logical bits (0 for dominant, 1 for
// recessive).
func (s Sequence) Bits() []uint8 {
	out := make([]uint8, len(s))
	for i, l := range s {
		out[i] = l.Bit()
	}
	return out
}

// CountDominant returns how many levels in the sequence are dominant.
func (s Sequence) CountDominant() int {
	n := 0
	for _, l := range s {
		if l == Dominant {
			n++
		}
	}
	return n
}

// AppendUint appends the width least-significant bits of v to the sequence,
// most-significant bit first, and returns the extended sequence.
func (s Sequence) AppendUint(v uint64, width int) Sequence {
	for i := width - 1; i >= 0; i-- {
		s = append(s, FromBit(uint8((v>>uint(i))&1)))
	}
	return s
}

// Uint interprets the sequence as an unsigned integer, most-significant bit
// first (recessive = 1).
func (s Sequence) Uint() uint64 {
	var v uint64
	for _, l := range s {
		v = v<<1 | uint64(l.Bit())
	}
	return v
}
