package bitstream

import (
	"testing"
	"testing/quick"
)

func TestLevelInvert(t *testing.T) {
	if Dominant.Invert() != Recessive {
		t.Errorf("Dominant.Invert() = %v, want Recessive", Dominant.Invert())
	}
	if Recessive.Invert() != Dominant {
		t.Errorf("Recessive.Invert() = %v, want Dominant", Recessive.Invert())
	}
}

func TestLevelBit(t *testing.T) {
	if got := Dominant.Bit(); got != 0 {
		t.Errorf("Dominant.Bit() = %d, want 0", got)
	}
	if got := Recessive.Bit(); got != 1 {
		t.Errorf("Recessive.Bit() = %d, want 1", got)
	}
}

func TestLevelValid(t *testing.T) {
	if !Dominant.Valid() || !Recessive.Valid() {
		t.Error("defined levels must be valid")
	}
	if Level(0).Valid() || Level(3).Valid() {
		t.Error("undefined levels must be invalid")
	}
}

func TestLevelString(t *testing.T) {
	if Dominant.String() != "d" || Recessive.String() != "r" {
		t.Errorf("String() = %q/%q, want d/r", Dominant, Recessive)
	}
}

func TestFromBit(t *testing.T) {
	if FromBit(0) != Dominant || FromBit(1) != Recessive {
		t.Error("FromBit mapping wrong")
	}
}

func TestWiredAnd(t *testing.T) {
	tests := []struct {
		name string
		in   []Level
		want Level
	}{
		{"empty bus floats recessive", nil, Recessive},
		{"single recessive", []Level{Recessive}, Recessive},
		{"single dominant", []Level{Dominant}, Dominant},
		{"dominant wins", []Level{Recessive, Dominant, Recessive}, Dominant},
		{"all recessive", []Level{Recessive, Recessive}, Recessive},
		{"all dominant", []Level{Dominant, Dominant}, Dominant},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Wire(tt.in...); got != tt.want {
				t.Errorf("Wire(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if And(Recessive, Dominant) != Dominant {
		t.Error("And(r,d) must be dominant")
	}
	if And(Recessive, Recessive) != Recessive {
		t.Error("And(r,r) must be recessive")
	}
}

func TestParseSequence(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    string
		wantErr bool
	}{
		{"paper notation", "r r d", "rrd", false},
		{"compact", "rrdrr", "rrdrr", false},
		{"binary digits", "1101", "rrdr", false},
		{"commas", "d,r,d", "drd", false},
		{"invalid char", "rxd", "", true},
		{"empty", "", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseSequence(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseSequence(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got.Compact() != tt.want {
				t.Errorf("ParseSequence(%q) = %q, want %q", tt.in, got.Compact(), tt.want)
			}
		})
	}
}

func TestSequenceString(t *testing.T) {
	s := Sequence{Recessive, Dominant, Recessive}
	if s.String() != "r d r" {
		t.Errorf("String() = %q, want %q", s.String(), "r d r")
	}
	if s.Compact() != "rdr" {
		t.Errorf("Compact() = %q, want %q", s.Compact(), "rdr")
	}
}

func TestSequenceUintRoundTrip(t *testing.T) {
	f := func(v uint16, width uint8) bool {
		w := int(width%16) + 1
		val := uint64(v) & (1<<uint(w) - 1)
		s := Sequence{}.AppendUint(val, w)
		return len(s) == w && s.Uint() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeat(t *testing.T) {
	s := Repeat(Recessive, 7)
	if len(s) != 7 {
		t.Fatalf("len = %d, want 7", len(s))
	}
	for i, l := range s {
		if l != Recessive {
			t.Errorf("bit %d = %v, want recessive", i, l)
		}
	}
}

func TestCountDominant(t *testing.T) {
	s, err := ParseSequence("rdrddr")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountDominant(); got != 3 {
		t.Errorf("CountDominant = %d, want 3", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := Sequence{Dominant, Recessive}
	c := s.Clone()
	c[0] = Recessive
	if s[0] != Dominant {
		t.Error("Clone must not share backing storage")
	}
}

func TestFromBitsBitsRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]uint8, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		seq := FromBits(bits)
		back := seq.Bits()
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
