package bitstream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Sequence {
	t.Helper()
	seq, err := ParseSequence(s)
	if err != nil {
		t.Fatalf("ParseSequence(%q): %v", s, err)
	}
	return seq
}

func TestStuffKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"no run", "drdrdr", "drdrdr"},
		{"five dominant", "ddddd", "dddddr"},
		{"five recessive", "rrrrr", "rrrrrd"},
		{"run of ten dominant", "dddddddddd", "dddddrddddd" + "r"},
		{"stuff bit participates in next run", "dddddrrrr", "dddddrrrrr" + "d"},
		{"empty", "", ""},
		{"run broken at four", "ddddrdddd", "ddddrdddd"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Stuff(mustParse(t, tt.in))
			if got.Compact() != tt.want {
				t.Errorf("Stuff(%q) = %q, want %q", tt.in, got.Compact(), tt.want)
			}
		})
	}
}

func TestDestuffKnownVectors(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    string
		wantErr bool
	}{
		{"no stuff bits", "drdrdr", "drdrdr", false},
		{"one stuff bit", "dddddr", "ddddd", false},
		{"stuff error six dominant", "dddddd", "", true},
		{"stuff error six recessive", "rrrrrr", "", true},
		{"stuff bit then data", "dddddrdd", "ddddddd", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Destuff(mustParse(t, tt.in))
			if (err != nil) != tt.wantErr {
				t.Fatalf("Destuff(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && got.Compact() != tt.want {
				t.Errorf("Destuff(%q) = %q, want %q", tt.in, got.Compact(), tt.want)
			}
			if tt.wantErr {
				var se *ErrStuff
				if !errors.As(err, &se) {
					t.Errorf("error %v is not *ErrStuff", err)
				}
			}
		})
	}
}

func randomSequence(r *rand.Rand, n int) Sequence {
	s := make(Sequence, n)
	for i := range s {
		if r.Intn(2) == 0 {
			s[i] = Dominant
		} else {
			s[i] = Recessive
		}
	}
	return s
}

// Property: destuff(stuff(x)) == x for any sequence.
func TestStuffDestuffRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		in := randomSequence(r, r.Intn(200))
		stuffed := Stuff(in)
		out, err := Destuff(stuffed)
		if err != nil {
			t.Fatalf("trial %d: Destuff(Stuff(x)) error: %v (x=%s)", trial, err, in.Compact())
		}
		if out.Compact() != in.Compact() {
			t.Fatalf("trial %d: round trip mismatch:\n in  %s\n out %s", trial, in.Compact(), out.Compact())
		}
	}
}

// Property: a stuffed sequence never contains six consecutive equal bits.
func TestStuffedNeverSixEqual(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]uint8, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		stuffed := Stuff(FromBits(bits))
		run, last := 0, Level(0)
		for _, l := range stuffed {
			if l == last {
				run++
			} else {
				last, run = l, 1
			}
			if run >= MaxEqualBits+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: stuffed length matches StuffedLength and never exceeds
// len(in) + len(in)/4 (worst case one stuff bit every four data bits after
// the first run).
func TestStuffedLength(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		in := randomSequence(r, r.Intn(300))
		stuffed := Stuff(in)
		if got := StuffedLength(in); got != len(stuffed) {
			t.Fatalf("StuffedLength = %d, want %d", got, len(stuffed))
		}
		if len(in) > 0 {
			limit := len(in) + 1 + (len(in)-1)/4
			if len(stuffed) > limit {
				t.Fatalf("stuffed length %d exceeds worst case %d for input %s",
					len(stuffed), limit, in.Compact())
			}
		}
	}
}

// Worst case stuffing: alternating runs of four after an initial run of
// five produce the maximum number of stuff bits.
func TestStuffWorstCase(t *testing.T) {
	in := mustParse(t, "rrrrrddddrrrrdddd")
	stuffed := Stuff(in)
	// After "rrrrr" a d-stuff is inserted; that stuff bit extends the
	// following dddd run to five, inserting an r-stuff, and so on.
	want := "rrrrr" + "d" + "dddd" + "r" + "rrrr" + "d" + "dddd" + "r"
	if stuffed.Compact() != want {
		t.Errorf("worst case stuffing = %q, want %q", stuffed.Compact(), want)
	}
}

func TestIncrementalStufferMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		in := randomSequence(r, r.Intn(150))
		var st Stuffer
		var incr Sequence
		for _, l := range in {
			incr = append(incr, l)
			if sb, ok := st.Push(l); ok {
				incr = append(incr, sb)
			}
		}
		if incr.Compact() != Stuff(in).Compact() {
			t.Fatalf("incremental stuffing mismatch for %s", in.Compact())
		}
	}
}

func TestIncrementalDestufferClassification(t *testing.T) {
	in := mustParse(t, "dddddr")
	var ds Destuffer
	kinds := make([]BitKind, 0, len(in))
	for _, l := range in {
		k, err := ds.Push(l)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, k)
	}
	want := []BitKind{DataBit, DataBit, DataBit, DataBit, DataBit, StuffBit}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("bit %d classified %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestDestufferNextIsStuff(t *testing.T) {
	var ds Destuffer
	for i := 0; i < MaxEqualBits; i++ {
		if ds.NextIsStuff() {
			t.Fatalf("NextIsStuff true after %d bits", i)
		}
		if _, err := ds.Push(Dominant); err != nil {
			t.Fatal(err)
		}
	}
	if !ds.NextIsStuff() {
		t.Error("NextIsStuff must be true after five equal bits")
	}
	if _, err := ds.Push(Recessive); err != nil {
		t.Fatal(err)
	}
	if ds.NextIsStuff() {
		t.Error("NextIsStuff must clear after the stuff bit")
	}
}

func TestDestufferReset(t *testing.T) {
	var ds Destuffer
	for i := 0; i < MaxEqualBits; i++ {
		if _, err := ds.Push(Dominant); err != nil {
			t.Fatal(err)
		}
	}
	ds.Reset()
	if ds.NextIsStuff() {
		t.Error("Reset must clear pending stuff expectation")
	}
	// Six dominants after reset should only error at the sixth.
	for i := 0; i < MaxEqualBits; i++ {
		if _, err := ds.Push(Dominant); err != nil {
			t.Fatalf("unexpected error at bit %d after reset: %v", i, err)
		}
	}
	if _, err := ds.Push(Dominant); err == nil {
		t.Error("sixth equal bit after reset must be a stuff error")
	}
}
