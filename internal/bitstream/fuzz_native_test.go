package bitstream_test

import (
	"os"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/chaos"
	"repro/internal/frame"
)

// bytesToLevels expands fuzz bytes into a bit sequence, MSB first.
func bytesToLevels(raw []byte) bitstream.Sequence {
	seq := make(bitstream.Sequence, 0, len(raw)*8)
	for _, b := range raw {
		for bit := 7; bit >= 0; bit-- {
			seq = append(seq, bitstream.FromBit(uint8(b>>uint(bit)&1)))
		}
	}
	return seq
}

func levelsToBytes(seq bitstream.Sequence) []byte {
	out := make([]byte, 0, len(seq)/8+1)
	var cur byte
	for i, l := range seq {
		cur = cur<<1 | l.Bit()
		if i%8 == 7 {
			out = append(out, cur)
			cur = 0
		}
	}
	if len(seq)%8 != 0 {
		out = append(out, cur<<uint(8-len(seq)%8))
	}
	return out
}

// chaosSeeds derives fuzz seeds from the checked-in shrunk chaos
// counterexample: a real frame image with bits flipped at the EOF-relative
// positions the campaign's minimal disturbance script targets. The fuzzer
// thus starts exactly at the bit patterns known to break agreement at the
// protocol layer.
func chaosSeeds(f *testing.F) [][]byte {
	data, err := os.ReadFile("../chaos/testdata/fig3a_shrunk.json")
	if err != nil {
		f.Logf("no chaos artifact seeds: %v", err)
		return nil
	}
	a, err := chaos.DecodeArtifact(data)
	if err != nil {
		f.Fatalf("bad chaos artifact: %v", err)
	}
	fr := &frame.Frame{ID: 0x200, Data: []byte{0, 0, 0, 0, 1}}
	enc, err := frame.Encode(fr, frame.StandardEOFBits)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for _, fault := range a.Script.Faults {
		if fault.EOFRel <= 0 || fault.EOFRel > enc.Len() {
			continue
		}
		flipped := append(bitstream.Sequence(nil), enc.Bits...)
		idx := enc.Len() - fault.EOFRel
		flipped[idx] = flipped[idx].Invert()
		seeds = append(seeds, levelsToBytes(flipped))
	}
	return seeds
}

// FuzzDestuffIncremental cross-checks the incremental receive-path
// destuffer against the batch Destuff on arbitrary bit streams: both must
// agree on whether the stream has a stuff error and, when it is clean, on
// the extracted data bits; NextIsStuff must predict exactly the bits the
// destuffer then classifies as stuff bits.
func FuzzDestuffIncremental(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF})
	f.Add([]byte{0xAA, 0x55})
	f.Add([]byte{0xF8, 0x07, 0xC0}) // five-bit runs around stuff boundaries
	for _, seed := range chaosSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			return
		}
		seq := bytesToLevels(raw)

		var ds bitstream.Destuffer
		var incremental bitstream.Sequence
		var incErr error
		for _, l := range seq {
			predicted := ds.NextIsStuff()
			kind, err := ds.Push(l)
			if err != nil {
				incErr = err
				break
			}
			if predicted != (kind == bitstream.StuffBit) {
				t.Fatalf("NextIsStuff predicted %v but Push classified %v", predicted, kind)
			}
			if kind == bitstream.DataBit {
				incremental = append(incremental, l)
			}
		}

		batch, batchErr := bitstream.Destuff(seq)
		if (incErr == nil) != (batchErr == nil) {
			t.Fatalf("incremental error %v vs batch error %v", incErr, batchErr)
		}
		if incErr == nil {
			if incremental.Compact() != batch.Compact() {
				t.Fatalf("incremental %s != batch %s", incremental.Compact(), batch.Compact())
			}
			// A clean stream must never shrink: stuffing only removes bits.
			if len(batch) > len(seq) {
				t.Fatalf("destuffed %d bits out of %d", len(batch), len(seq))
			}
		}

		// Round trip: the raw bits treated as payload must survive
		// stuff-then-destuff exactly, and a Reset destuffer is reusable.
		ds.Reset()
		stuffed := bitstream.Stuff(seq)
		var rt bitstream.Sequence
		for _, l := range stuffed {
			kind, err := ds.Push(l)
			if err != nil {
				t.Fatalf("own stuffing produces stuff error: %v", err)
			}
			if kind == bitstream.DataBit {
				rt = append(rt, l)
			}
		}
		if rt.Compact() != seq.Compact() {
			t.Fatalf("stuff/destuff round trip: %s != %s", rt.Compact(), seq.Compact())
		}
		if bitstream.StuffedLength(seq) != len(stuffed) {
			t.Fatalf("StuffedLength %d != actual %d", bitstream.StuffedLength(seq), len(stuffed))
		}
	})
}
