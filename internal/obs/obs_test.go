package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindFrameStart:         "frame-start",
		KindArbitrationLoss:    "arbitration-loss",
		KindStuffError:         "stuff-error",
		KindErrorFlagPrimary:   "error-flag-primary",
		KindErrorFlagSecondary: "error-flag-secondary",
		KindEOFVoteCorrected:   "eof-vote-corrected",
		KindRetransmit:         "retransmit",
		KindFrameAccepted:      "frame-accepted",
		KindIMO:                "imo",
		KindBusOff:             "bus-off",
		KindRecover:            "recover",
		KindAttemptRetry:       "attempt-retry",
		KindStorageDegraded:    "storage-degraded",
		KindJournalRecovered:   "journal-recovered",
		KindCheckpointSaved:    "checkpoint-saved",
		KindCheckpointResumed:  "checkpoint-resumed",
		KindEOFVote:            "eof-vote",
		KindRingOverflow:       "ring-overflow",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if !KindErrorFlagPrimary.ErrorFlag() || !KindErrorFlagSecondary.ErrorFlag() {
		t.Error("error-flag kinds must report ErrorFlag()")
	}
	if KindFrameStart.ErrorFlag() {
		t.Error("frame-start must not report ErrorFlag()")
	}
}

func TestRingOrderAndOverflow(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 100; i++ {
		r.Emit(Event{Slot: uint64(i), Kind: KindFrameStart})
	}
	if r.Dropped() != 100-64 {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), 100-64)
	}
	mem := NewMemory()
	n := r.Drain(mem)
	if n != 64 || mem.Len() != 64 {
		t.Fatalf("Drain delivered %d events, want 64", n)
	}
	for i, e := range mem.Events() {
		if e.Slot != uint64(i) {
			t.Fatalf("event %d has slot %d, want %d (FIFO order)", i, e.Slot, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.Len())
	}
}

// TestRingSPSC exercises the ring with a concurrent producer and
// consumer; run under -race this validates the atomic head/tail
// discipline.
func TestRingSPSC(t *testing.T) {
	r := NewRing(256)
	const total = 20000
	var got []Event
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink := SinkFunc(func(e Event) { got = append(got, e) })
		for len(got)+int(r.Dropped()) < total {
			r.Drain(sink)
		}
	}()
	for i := 0; i < total; i++ {
		r.Emit(Event{Slot: uint64(i), Kind: KindRetransmit})
	}
	wg.Wait()
	if len(got)+int(r.Dropped()) != total {
		t.Fatalf("consumed %d + dropped %d != produced %d", len(got), r.Dropped(), total)
	}
	var prev uint64
	for i, e := range got {
		if i > 0 && e.Slot <= prev {
			t.Fatalf("out-of-order delivery at %d: slot %d after %d", i, e.Slot, prev)
		}
		prev = e.Slot
	}
}

func TestMetricsEmitAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.SetLabel("majorcan_5")
	m.Emit(Event{Kind: KindFrameStart})
	m.Emit(Event{Kind: KindArbitrationLoss})
	m.Emit(Event{Kind: KindStuffError, Cause: 2})
	m.Emit(Event{Kind: KindErrorFlagPrimary, Cause: 2})
	m.Emit(Event{Kind: KindErrorFlagPrimary, Cause: 4})
	m.Emit(Event{Kind: KindErrorFlagSecondary, Cause: 1})
	m.Emit(Event{Kind: KindEOFVoteCorrected, Aux: 4})
	m.Emit(Event{Kind: KindRetransmit})
	m.Emit(Event{Kind: KindFrameAccepted})
	m.Emit(Event{Kind: KindIMO})
	m.Emit(Event{Kind: KindBusOff})
	m.Emit(Event{Kind: KindRecover})
	m.AddBits(4000)
	m.AddFramesSent(2)
	m.ObserveFrameRetransmits(1)
	m.ObserveFrameRetransmits(7)
	m.ObserveSettleLatency(130)
	m.ObserveSettleLatency(9000)

	s := m.Snapshot(2 * time.Second)
	if s.Policy != "majorcan_5" {
		t.Errorf("policy = %q", s.Policy)
	}
	if s.FramesStarted != 1 || s.ArbitrationLosses != 1 || s.StuffErrors != 1 {
		t.Errorf("counters wrong: %+v", s)
	}
	if s.ErrorFlagsPrimary != 2 || s.ErrorFlagsSecondary != 1 {
		t.Errorf("flag split wrong: primary=%d secondary=%d", s.ErrorFlagsPrimary, s.ErrorFlagsSecondary)
	}
	if s.ErrorFlagsByCause["stuff"] != 1 || s.ErrorFlagsByCause["form"] != 1 || s.ErrorFlagsByCause["bit"] != 1 {
		t.Errorf("by-cause wrong: %v", s.ErrorFlagsByCause)
	}
	if s.EOFVoteCorrected != 1 || s.Retransmits != 1 || s.FramesAccepted != 1 ||
		s.IMOs != 1 || s.BusOffs != 1 || s.Recoveries != 1 {
		t.Errorf("counters wrong: %+v", s)
	}
	if s.BitsSimulated != 4000 || s.FramesSent != 2 {
		t.Errorf("direct counters wrong: bits=%d frames=%d", s.BitsSimulated, s.FramesSent)
	}
	if s.FramesPerSecond != 1 || s.BitsPerSecond != 2000 {
		t.Errorf("rates wrong: %f f/s %f b/s", s.FramesPerSecond, s.BitsPerSecond)
	}
	if s.RetransmitsPerFrame.Count != 2 || s.RetransmitsPerFrame.Sum != 8 {
		t.Errorf("retransmit hist wrong: %+v", s.RetransmitsPerFrame)
	}
	if s.SettleLatencySlots.Count != 2 || s.SettleLatencySlots.Sum != 9130 {
		t.Errorf("settle hist wrong: %+v", s.SettleLatencySlots)
	}
	last := s.SettleLatencySlots.Buckets[len(s.SettleLatencySlots.Buckets)-1]
	if last.Le != "+inf" || last.Count != 1 {
		t.Errorf("overflow bucket wrong: %+v", last)
	}
}

// TestSnapshotJSONFieldNames pins the snake_case field contract consumed
// by EXPERIMENTS.md recipes — in particular eof_vote_corrected, the
// acceptance-criterion field.
func TestSnapshotJSONFieldNames(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: KindEOFVoteCorrected})
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"eof_vote_corrected", "bits_simulated", "frames_sent",
		"error_flags_by_cause", "retransmits_per_frame", "settle_latency_slots",
		"imos", "retransmits",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("snapshot JSON missing field %q", field)
		}
	}
	if raw["eof_vote_corrected"].(float64) != 1 {
		t.Errorf("eof_vote_corrected = %v, want 1", raw["eof_vote_corrected"])
	}
}

// TestMetricsForkPropagation verifies the errmodel.Random-style parent
// chain: updates on concurrent forks are live-visible on the parent, and
// no final merge is needed.
func TestMetricsForkPropagation(t *testing.T) {
	parent := NewMetrics()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		fork := parent.Fork()
		wg.Add(1)
		go func(m *Metrics) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.AddFramesSent(1)
				m.Emit(Event{Kind: KindRetransmit})
				m.ObserveFrameRetransmits(2)
			}
		}(fork)
	}
	wg.Wait()
	s := parent.Snapshot(0)
	if s.FramesSent != workers*perWorker {
		t.Errorf("frames_sent = %d, want %d", s.FramesSent, workers*perWorker)
	}
	if s.Retransmits != workers*perWorker {
		t.Errorf("retransmits = %d, want %d", s.Retransmits, workers*perWorker)
	}
	if s.RetransmitsPerFrame.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", s.RetransmitsPerFrame.Count, workers*perWorker)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.AddBits(100)
	a.Emit(Event{Kind: KindErrorFlagPrimary, Cause: 3})
	b.AddBits(50)
	b.Emit(Event{Kind: KindErrorFlagPrimary, Cause: 3})
	b.ObserveSettleLatency(200)
	a.Merge(b)
	s := a.Snapshot(0)
	if s.BitsSimulated != 150 {
		t.Errorf("bits = %d, want 150", s.BitsSimulated)
	}
	if s.ErrorFlagsByCause["crc"] != 2 {
		t.Errorf("crc flags = %d, want 2", s.ErrorFlagsByCause["crc"])
	}
	if s.SettleLatencySlots.Count != 1 {
		t.Errorf("settle count = %d, want 1", s.SettleLatencySlots.Count)
	}
}

func TestMultiSink(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil")
	}
	if Multi(nil, (*Metrics)(nil)) != nil {
		t.Error("Multi must drop typed-nil sinks")
	}
	m := NewMemory()
	if Multi(nil, m, nil) != Sink(m) {
		t.Error("Multi with one live sink must return it directly")
	}
	m2 := NewMemory()
	s := Multi(m, m2)
	s.Emit(Event{Kind: KindIMO})
	if m.Len() != 1 || m2.Len() != 1 {
		t.Error("Multi must fan out to all sinks")
	}
}

// TestWriteJSONLDeterminism shuffles one event set into different
// emission orders and checks the canonical serialisation is
// byte-identical — the property the sweep merge relies on.
func TestWriteJSONLDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]Event, 200)
	for i := range events {
		events[i] = Event{
			Slot:    uint64(rng.Intn(50)),
			Kind:    KindRetransmit,
			Station: int16(rng.Intn(5)),
			Attempt: uint16(i),
		}
	}
	var ref bytes.Buffer
	if err := WriteJSONL(&ref, 42, events); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var out bytes.Buffer
		if err := WriteJSONL(&out, 42, shuffled); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), out.Bytes()) {
			t.Fatalf("trial %d: serialisation differs for same event set", trial)
		}
	}
	first := strings.SplitN(ref.String(), "\n", 2)[0]
	var line map[string]any
	if err := json.Unmarshal([]byte(first), &line); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if line["run"].(float64) != 42 {
		t.Errorf("run tag = %v, want 42", line["run"])
	}
	if line["kind"].(string) != "retransmit" {
		t.Errorf("kind = %v", line["kind"])
	}
}

func TestJSONLWriterOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf, 1)
	jw.Emit(Event{Slot: 10, Kind: KindFrameStart, Station: 2})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, absent := range []string{"cause", "transmitter", "passive", "attempt", "aux"} {
		if strings.Contains(s, absent) {
			t.Errorf("zero-valued field %q serialised: %s", absent, s)
		}
	}
}

func TestProgress(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var n atomic.Uint64
	p := StartProgress(lockedW, 100, n.Load, time.Millisecond, "")
	n.Store(40)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "40/100 frames") {
		t.Errorf("progress output missing count: %q", out)
	}
	if !strings.Contains(out, "frames/s") {
		t.Errorf("progress output missing rate: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestEventRejectedFlag(t *testing.T) {
	e := Event{Kind: KindEOFVote, Flags: FlagRejected}
	if !e.Rejected() || e.Transmitter() || e.Passive() {
		t.Errorf("flag decoding wrong: %+v", e)
	}
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf, 0)
	jw.Emit(e)
	jw.Emit(Event{Kind: KindEOFVote})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"rejected":true`) {
		t.Errorf("rejected flag not serialised: %s", lines[0])
	}
	if strings.Contains(lines[1], "rejected") {
		t.Errorf("zero rejected field serialised: %s", lines[1])
	}
}

func TestCapture(t *testing.T) {
	c := NewCapture(3)
	for i := 0; i < 5; i++ {
		c.Emit(Event{Slot: uint64(i), Kind: KindFrameStart})
	}
	if c.Len() != 3 || c.Dropped() != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 3 and 2", c.Len(), c.Dropped())
	}
	for i, e := range c.Events() {
		if e.Slot != uint64(i) {
			t.Fatalf("capture must keep the prefix: event %d has slot %d", i, e.Slot)
		}
	}
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", c.Len(), c.Dropped())
	}
	c.Emit(Event{Slot: 9, Kind: KindIMO})
	if c.Len() != 1 {
		t.Fatal("capture must accept events after Reset")
	}
	if NewCapture(0).max != 1 {
		t.Error("capacity floor must be 1")
	}
}

func TestRingOnFirstDrop(t *testing.T) {
	r := NewRing(64)
	var fired atomic.Uint64
	r.OnFirstDrop(func() { fired.Add(1) })
	for i := 0; i < 64; i++ {
		r.Emit(Event{Kind: KindFrameStart})
	}
	if fired.Load() != 0 {
		t.Fatal("hook fired before any drop")
	}
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindFrameStart})
	}
	if fired.Load() != 1 {
		t.Fatalf("hook fired %d times, want exactly once", fired.Load())
	}
	if r.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", r.Dropped())
	}
	if r.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", r.Cap())
	}
}

func TestPromWriterPassesLint(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("mc_jobs_total", "counter", "Jobs by final state.")
	p.Sample("mc_jobs_total", []Label{{Name: "state", Value: "succeeded"}}, 12)
	p.Sample("mc_jobs_total", []Label{{Name: "state", Value: "failed"}}, 1)
	p.Family("mc_queue_depth", "gauge", "Queued jobs per shard.")
	p.Sample("mc_queue_depth", []Label{{Name: "shard", Value: "0"}}, 3)
	p.Histogram("mc_latency_ms", "Job latency.", h.State())
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintProm(strings.NewReader(out)); err != nil {
		t.Fatalf("writer output failed lint: %v\n%s", err, out)
	}
	// Buckets must be cumulative and the +Inf bucket equal _count.
	if !strings.Contains(out, `mc_latency_ms_bucket{le="10"} 1`) ||
		!strings.Contains(out, `mc_latency_ms_bucket{le="100"} 2`) ||
		!strings.Contains(out, `mc_latency_ms_bucket{le="+Inf"} 3`) ||
		!strings.Contains(out, "mc_latency_ms_count 3") ||
		!strings.Contains(out, "mc_latency_ms_sum 5055") {
		t.Errorf("histogram rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE mc_jobs_total counter") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
}

func TestPromWriterRejectsDuplicateFamily(t *testing.T) {
	p := NewPromWriter(&bytes.Buffer{})
	p.Family("mc_x", "gauge", "x")
	p.Family("mc_x", "gauge", "x")
	if p.Err() == nil {
		t.Fatal("duplicate family must error")
	}
}

func TestPromWriterEscapesLabels(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("mc_x", "gauge", "x")
	p.Sample("mc_x", []Label{{Name: "path", Value: `a"b\c` + "\n"}}, 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := LintProm(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("escaped label failed lint: %v\n%s", err, buf.String())
	}
}

func TestLintPromCatchesFormatErrors(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "mc_x 1\n",
		"bad type":              "# TYPE mc_x histo\nmc_x 1\n",
		"bad value":             "# TYPE mc_x gauge\nmc_x one\n",
		"duplicate series":      "# TYPE mc_x gauge\nmc_x 1\nmc_x 2\n",
		"duplicate TYPE":        "# TYPE mc_x gauge\n# TYPE mc_x gauge\nmc_x 1\n",
		"bad label name":        "# TYPE mc_x gauge\nmc_x{9bad=\"v\"} 1\n",
		"unquoted label value":  "# TYPE mc_x gauge\nmc_x{a=v} 1\n",
		"bucket without le":     "# TYPE mc_h histogram\nmc_h_bucket 1\nmc_h_count 1\n",
		"non-cumulative hist":   "# TYPE mc_h histogram\nmc_h_bucket{le=\"1\"} 5\nmc_h_bucket{le=\"+Inf\"} 3\nmc_h_count 3\n",
		"missing +Inf bucket":   "# TYPE mc_h histogram\nmc_h_bucket{le=\"1\"} 1\nmc_h_count 1\n",
		"count != +Inf bucket":  "# TYPE mc_h histogram\nmc_h_bucket{le=\"+Inf\"} 2\nmc_h_count 3\n",
		"garbage line":          "# TYPE mc_x gauge\n{} mc_x 1\n",
	}
	for name, in := range cases {
		if err := LintProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, in)
		}
	}
	valid := "# HELP mc_x a help line\n# TYPE mc_x gauge\nmc_x{a=\"v\"} 1.5\nmc_x 2\n\n# free comment\nmc_x{a=\"w\"} +Inf\n"
	if err := LintProm(strings.NewReader(valid)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

func TestStatusLine(t *testing.T) {
	var buf bytes.Buffer
	s := NewStatusLine(&buf)
	s.Update("a long first line")
	s.Update("short")
	s.Close("done")
	out := buf.String()
	if !strings.Contains(out, "\rshort") {
		t.Errorf("missing in-place update: %q", out)
	}
	// The shorter line must be padded over the longer one's remains.
	if !strings.Contains(out, "short        ") {
		t.Errorf("missing blanking padding: %q", out)
	}
	if !strings.HasSuffix(out, "done\n") {
		t.Errorf("Close must end with a newline-terminated line: %q", out)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"", "text"} {
		buf.Reset()
		lg, err := NewLogger(&buf, format, 0)
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		lg.Info("hello", "k", "v")
		if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "k=v") {
			t.Errorf("format %q output: %q", format, buf.String())
		}
	}
	buf.Reset()
	lg, err := NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json log line not JSON: %v: %q", err, buf.String())
	}
	if line["msg"] != "hello" || line["k"] != "v" {
		t.Errorf("json log fields wrong: %v", line)
	}
	if _, err := NewLogger(&buf, "yaml", 0); err == nil {
		t.Error("unknown format must error")
	}
}
