package span

import (
	"fmt"

	"repro/internal/obs"
)

// errorFlagBits is the length of an active error flag (mirrors the
// node layer's flag length; the span package cannot import node without
// widening its dependency surface, and the CAN flag length is fixed by
// the specification).
const errorFlagBits = 6

// ProtocolOptions places a protocol timeline inside a trace.
type ProtocolOptions struct {
	// Pid is the track group for the timeline's tracks.
	Pid int64
	// Label names the group; default "protocol".
	Label string
	// SortIndex orders the group among the trace's processes.
	SortIndex int
	// Offset is added to every timestamp (µs) — how a service trace
	// aligns an attempt's protocol timeline under its wall-clock span.
	Offset float64
	// SlotMicros scales bit slots to microseconds; default 1 (the fixed
	// timebase the byte-stable golden export uses).
	SlotMicros float64
}

// AddProtocol synthesises a protocol timeline from a flat event stream:
// a bus track with one span per frame transmission attempt (nested
// arbitration/data/EOF phase spans beneath it), and one track per
// station carrying that station's EOF vote-round spans, error flags,
// arbitration losses, retransmissions and acceptances. The stream is
// canonically sorted first, so any drain order of the same events
// produces the same timeline.
func AddProtocol(t *Trace, events []obs.Event, o ProtocolOptions) {
	if o.SlotMicros <= 0 {
		o.SlotMicros = 1
	}
	if o.Label == "" {
		o.Label = "protocol"
	}
	sorted := append([]obs.Event(nil), events...)
	obs.SortEvents(sorted)

	t.Process(o.Pid, o.Label, o.SortIndex)
	t.Thread(o.Pid, 0, "bus")

	ts := func(slot uint64) float64 { return o.Offset + float64(slot)*o.SlotMicros }
	width := func(slots uint64) float64 { return float64(slots) * o.SlotMicros }

	// Pass 1: per-event spans on the station and bus tracks.
	for _, e := range sorted {
		tid := int64(e.Station) + 1
		if e.Station >= 0 {
			t.Thread(o.Pid, tid, fmt.Sprintf("station %d", e.Station))
		}
		switch e.Kind {
		case obs.KindEOFVote:
			name := "eof-vote accept"
			if e.Rejected() {
				name = "eof-vote reject"
			}
			length := uint64(e.Aux)
			if length == 0 || length > e.Slot {
				length = 1
			}
			args := map[string]any{"slots": e.Aux, "attempt": e.Attempt}
			if c := obs.CauseName(e.Cause); c != "" {
				args["cause"] = c
			}
			t.Add(Span{
				Name: name, Cat: "eof", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot - length + 1), Dur: width(length), Args: args,
			})
		case obs.KindEOFVoteCorrected:
			t.Add(Span{
				Name: "vote-corrected", Cat: "eof", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(1),
				Args: map[string]any{"votes": e.Aux},
			})
		case obs.KindErrorFlagPrimary, obs.KindErrorFlagSecondary:
			args := map[string]any{"passive": e.Passive()}
			if c := obs.CauseName(e.Cause); c != "" {
				args["cause"] = c
			}
			if e.Kind == obs.KindErrorFlagSecondary {
				args["secondary"] = true
			}
			t.Add(Span{
				Name: "error-flag", Cat: "error", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(errorFlagBits), Args: args,
			})
		case obs.KindArbitrationLoss:
			t.Add(Span{
				Name: "arb-loss", Cat: "arbitration", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(1),
				Args: map[string]any{"bit": e.Aux},
			})
		case obs.KindRetransmit:
			args := map[string]any{"attempt": e.Attempt}
			if c := obs.CauseName(e.Cause); c != "" {
				args["cause"] = c
			}
			t.Add(Span{
				Name: "retransmit", Cat: "error", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(1), Args: args,
			})
		case obs.KindFrameAccepted:
			name := "deliver"
			if e.Transmitter() {
				name = "tx-complete"
			}
			t.Add(Span{
				Name: name, Cat: "frame", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(1),
			})
		case obs.KindBusOff, obs.KindRecover:
			name := "bus-off"
			if e.Kind == obs.KindRecover {
				name = "recover"
			}
			t.Add(Span{
				Name: name, Cat: "fault", Pid: o.Pid, Tid: tid,
				Start: ts(e.Slot), Dur: width(1),
				Args: map[string]any{"mode": e.Aux},
			})
		case obs.KindIMO:
			t.Add(Span{
				Name: "imo", Cat: "fault", Pid: o.Pid, Tid: 0,
				Start: ts(e.Slot), Dur: width(1),
				Args: map[string]any{"seq": e.Aux},
			})
		}
	}

	// Pass 2: frame attempt spans on the bus track, with phase children.
	// A frame group runs from one KindFrameStart to the slot before the
	// next (or the stream's last event).
	starts := make([]int, 0, 8)
	for i, e := range sorted {
		if e.Kind == obs.KindFrameStart {
			starts = append(starts, i)
		}
	}
	for gi, si := range starts {
		start := sorted[si]
		end := len(sorted)
		if gi+1 < len(starts) {
			end = starts[gi+1]
		}
		group := sorted[si:end]
		endSlot := start.Slot
		var lastArb uint64
		var eofStart, eofEnd uint64
		hasArb, hasEOF := false, false
		for _, e := range group {
			if e.Slot > endSlot {
				endSlot = e.Slot
			}
			switch e.Kind {
			case obs.KindArbitrationLoss:
				if e.Slot > lastArb {
					lastArb = e.Slot
				}
				hasArb = true
			case obs.KindEOFVote:
				length := uint64(e.Aux)
				if length == 0 || length > e.Slot {
					length = 1
				}
				s := e.Slot - length + 1
				if !hasEOF || s < eofStart {
					eofStart = s
				}
				if e.Slot > eofEnd {
					eofEnd = e.Slot
				}
				hasEOF = true
			}
		}
		t.Add(Span{
			Name: "frame", Cat: "frame", Pid: o.Pid, Tid: 0,
			Start: ts(start.Slot), Dur: width(endSlot - start.Slot + 1),
			Args: map[string]any{
				"attempt":    start.Attempt,
				"contenders": start.Aux,
				"station":    start.Station,
			},
		})
		if hasArb && lastArb >= start.Slot {
			t.Add(Span{
				Name: "arbitration", Cat: "frame", Pid: o.Pid, Tid: 0,
				Start: ts(start.Slot), Dur: width(lastArb - start.Slot + 1),
			})
		}
		if hasEOF && eofStart > start.Slot {
			t.Add(Span{
				Name: "data", Cat: "frame", Pid: o.Pid, Tid: 0,
				Start: ts(start.Slot), Dur: width(eofStart - start.Slot),
			})
			t.Add(Span{
				Name: "eof", Cat: "frame", Pid: o.Pid, Tid: 0,
				Start: ts(eofStart), Dur: width(eofEnd - eofStart + 1),
			})
		}
	}
}

// Extent returns the exclusive slot bound of an event stream (the
// highest slot plus one), the figure a service trace uses to scale an
// attempt's slots into its wall-clock window.
func Extent(events []obs.Event) uint64 {
	var max uint64
	for _, e := range events {
		if e.Slot >= max {
			max = e.Slot + 1
		}
	}
	return max
}
