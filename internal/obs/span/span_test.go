package span_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// fig3aEvents replays the checked-in Fig. 3a counterexample with full
// instrumentation and returns its event stream.
func fig3aEvents(t *testing.T) []obs.Event {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "chaos", "testdata", "fig3a_shrunk.json"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chaos.DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemory()
	rr, err := chaos.ReplayObserved(a, chaos.Telemetry{Events: mem})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Matches() {
		t.Fatal("fig3a replay diverged")
	}
	return mem.Events()
}

// TestWriteDeterministic shuffles one span set into different insertion
// orders and checks the serialisation is byte-identical — the property
// the golden file relies on.
func TestWriteDeterministic(t *testing.T) {
	spans := []span.Span{
		{Name: "root", Pid: 1, Tid: 0, Start: 0, Dur: 100},
		{Name: "a", Pid: 1, Tid: 1, Start: 10, Dur: 20, Args: map[string]any{"k": 1, "b": "x"}},
		{Name: "b", Pid: 1, Tid: 1, Start: 10, Dur: 5},
		{Name: "c", Cat: "x", Pid: 2, Tid: 0, Start: 10, Dur: 5},
	}
	render := func(order []int) string {
		var tr span.Trace
		tr.Process(2, "second", 2)
		tr.Process(1, "first", 1)
		tr.Thread(1, 1, "t")
		tr.Thread(1, 1, "t-duplicate-ignored")
		for _, i := range order {
			tr.Add(spans[i])
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := render([]int{0, 1, 2, 3})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		order := rng.Perm(len(spans))
		if got := render(order); got != ref {
			t.Fatalf("trial %d: serialisation differs for insertion order %v", trial, order)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(ref), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	events := doc["traceEvents"].([]any)
	// Metadata first, then the longest span at the earliest start.
	first := events[0].(map[string]any)
	if first["ph"] != "M" {
		t.Errorf("first entry not metadata: %v", first)
	}
	var firstX map[string]any
	for _, e := range events {
		m := e.(map[string]any)
		if m["ph"] == "X" {
			firstX = m
			break
		}
	}
	if firstX["name"] != "root" {
		t.Errorf("first slice = %v, want the root span", firstX["name"])
	}
	// The duplicate thread declaration must be dropped.
	threads := 0
	for _, e := range events {
		if e.(map[string]any)["name"] == "thread_name" {
			threads++
		}
	}
	if threads != 1 {
		t.Errorf("thread_name entries = %d, want 1", threads)
	}
}

// TestProtocolSynthesis checks the span shapes on a disturbed
// single-frame broadcast: one frame span per transmission attempt on
// the bus track, per-station eof-vote spans with the right verdicts,
// and an error-flag/retransmit cycle between the attempts.
func TestProtocolSynthesis(t *testing.T) {
	mem := obs.NewMemory()
	if _, err := chaos.RunObserved(chaos.Script{
		Version:  chaos.ScriptVersion,
		Protocol: "can",
		Nodes:    3,
		Frames:   1,
		Faults: []chaos.Fault{
			{Kind: chaos.ViewFlip, Station: 1, EOFRel: 1, Attempt: 1},
		},
	}, chaos.Telemetry{Events: mem}); err != nil {
		t.Fatal(err)
	}
	var tr span.Trace
	span.AddProtocol(&tr, mem.Events(), span.ProtocolOptions{Pid: 1})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			counts[e.Name]++
		}
	}
	// The disturbed attempt is rejected everywhere and retransmitted, so
	// two frame spans; 3 stations reject once and accept once each.
	if counts["frame"] != 2 {
		t.Errorf("frame spans = %d, want 2 (disturbed attempt + retransmission)", counts["frame"])
	}
	if counts["eof-vote reject"] != 3 || counts["eof-vote accept"] != 3 {
		t.Errorf("eof-vote spans reject=%d accept=%d, want 3 and 3",
			counts["eof-vote reject"], counts["eof-vote accept"])
	}
	if counts["retransmit"] != 1 {
		t.Errorf("retransmit spans = %d, want 1", counts["retransmit"])
	}
	if counts["error-flag"] == 0 {
		t.Error("no error-flag spans")
	}
	if counts["eof"] != 2 || counts["data"] != 2 {
		t.Errorf("phase spans eof=%d data=%d, want 2 and 2", counts["eof"], counts["data"])
	}
	// Every eof-vote span must nest inside some frame span.
	type iv struct{ s, e float64 }
	var frames []iv
	for _, e := range doc.TraceEvents {
		if e.Name == "frame" {
			frames = append(frames, iv{e.Ts, e.Ts + e.Dur})
		}
	}
	for _, e := range doc.TraceEvents {
		if !strings.HasPrefix(e.Name, "eof-vote") {
			continue
		}
		inside := false
		for _, f := range frames {
			if e.Ts >= f.s && e.Ts+e.Dur <= f.e {
				inside = true
			}
		}
		if !inside {
			t.Errorf("eof-vote span at [%v, %v] outside every frame span %v", e.Ts, e.Ts+e.Dur, frames)
		}
	}
}

// TestFig3aGoldenTrace pins the byte-exact Perfetto export of the
// checked-in Fig. 3a replay: the timeline a trace download renders for
// the paper's canonical inconsistency scenario. Run with -update to
// regenerate after an intentional format change.
func TestFig3aGoldenTrace(t *testing.T) {
	events := fig3aEvents(t)
	var tr span.Trace
	span.AddProtocol(&tr, events, span.ProtocolOptions{Pid: 1})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fig3a_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/obs/span -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace export drifted from golden file (len %d vs %d); "+
			"inspect and regenerate with -update if intentional", buf.Len(), len(want))
	}
	// The golden must stay a loadable trace document with the scenario's
	// signature: an imo on the bus track and at least one reject vote.
	var doc map[string]any
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatalf("golden not valid JSON: %v", err)
	}
	s := string(want)
	for _, needle := range []string{`"imo"`, `"eof-vote reject"`, `"error-flag"`, `"process_name"`} {
		if !strings.Contains(s, needle) {
			t.Errorf("golden trace missing %s", needle)
		}
	}
}
