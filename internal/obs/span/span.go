// Package span turns the simulator's flat obs.Event streams into
// causally-nested span timelines and serialises them in the Chrome
// trace-event JSON format, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans are synthesised at export time: the per-bit
// hot path keeps emitting fixed-size events into rings, and only a
// trace download pays for reconstruction. The package is a leaf next to
// obs — standard library only — so the service layer, the CLIs and
// tests can all build timelines without new dependencies.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one "complete" slice on a timeline track. Tracks are
// addressed the Chrome way: a process id groups related tracks and a
// thread id names one row inside the group. Start and Dur are in
// microseconds (the trace-event base unit).
type Span struct {
	// Name labels the slice. Keep names low-cardinality (put variable
	// detail in Args) so Perfetto's aggregation stays useful.
	Name string
	// Cat is the slice's category, used for filtering in the viewer.
	Cat string
	// Pid and Tid select the track.
	Pid, Tid int64
	// Start and Dur are microseconds.
	Start, Dur float64
	// Args are free-form key/values shown when the slice is selected.
	// encoding/json sorts map keys, so args do not break byte-stable
	// output as long as the values are deterministic.
	Args map[string]any
}

// traceEvent is the wire form of one trace entry. Field order is fixed
// by the struct, so identical traces serialise byte-identically.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates spans and track metadata and serialises them as one
// Chrome trace-event JSON document. The zero value is ready to use.
type Trace struct {
	events   []traceEvent
	declared map[string]bool
}

func (t *Trace) declare(key string) bool {
	if t.declared == nil {
		t.declared = make(map[string]bool)
	}
	if t.declared[key] {
		return false
	}
	t.declared[key] = true
	return true
}

// Process names a track group and fixes its display order. Repeat
// declarations of the same pid are ignored, so independent builders can
// share a group.
func (t *Trace) Process(pid int64, name string, sortIndex int) {
	if !t.declare(fmt.Sprintf("p%d", pid)) {
		return
	}
	t.events = append(t.events,
		traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}},
		traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Args: map[string]any{"sort_index": sortIndex}},
	)
}

// Thread names one track inside a group. Repeat declarations of the
// same (pid, tid) are ignored.
func (t *Trace) Thread(pid, tid int64, name string) {
	if !t.declare(fmt.Sprintf("t%d.%d", pid, tid)) {
		return
	}
	t.events = append(t.events,
		traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}},
		traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"sort_index": tid}},
	)
}

// Add appends one span.
func (t *Trace) Add(s Span) {
	t.events = append(t.events, traceEvent{
		Name: s.Name,
		Cat:  s.Cat,
		Ph:   "X",
		Ts:   s.Start,
		Dur:  s.Dur,
		Pid:  s.Pid,
		Tid:  s.Tid,
		Args: s.Args,
	})
}

// Len returns the number of entries (spans plus metadata).
func (t *Trace) Len() int { return len(t.events) }

// Write serialises the trace: metadata first, then spans in canonical
// order (start, pid, tid, longest-first at equal start so parents
// precede their children, then name), one entry per line. The order is
// total over entry values, so identical traces are byte-identical — the
// property the golden-file test pins.
func (t *Trace) Write(w io.Writer) error {
	sorted := append([]traceEvent(nil), t.events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		switch {
		case (a.Ph == "M") != (b.Ph == "M"):
			return a.Ph == "M"
		case a.Ph == "M":
			// Metadata keeps insertion order (per-track declarations).
			return false
		case a.Ts != b.Ts:
			return a.Ts < b.Ts
		case a.Pid != b.Pid:
			return a.Pid < b.Pid
		case a.Tid != b.Tid:
			return a.Tid < b.Tid
		case a.Dur != b.Dur:
			return a.Dur > b.Dur
		default:
			return a.Name < b.Name
		}
	})
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range sorted {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
