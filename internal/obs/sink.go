package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"reflect"
	"sort"
	"sync"
)

// Memory is a sink that records events in memory, for tests, probes and
// post-run merging. Safe for concurrent use.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

var _ Sink = (*Memory)(nil)

// NewMemory creates an empty in-memory sink.
func NewMemory() *Memory { return &Memory{} }

// Emit implements Sink.
func (m *Memory) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns the number of recorded events.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Count returns how many recorded events have the given kind.
func (m *Memory) Count(k Kind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Reset discards the recorded events.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

// Multi fans one event stream out to several sinks; nil entries are
// skipped. It returns nil when no sink remains, so callers can pass the
// result straight to an optional-telemetry field.
func Multi(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s == nil {
			continue
		}
		// A nil *Metrics (or other pointer sink) arriving through the
		// interface is not == nil; drop it too so optional sinks can be
		// passed without wrapping.
		if v := reflect.ValueOf(s); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		out = append(out, s)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// LockedSink serialises Emit calls with a mutex, adapting a
// single-producer sink (e.g. a Ring) for multiple concurrent producers —
// the shape a parallel sweep needs to feed one live event stream. The
// interleaving across producers is scheduling-dependent, so a locked
// stream is for live observation, not for canonical logs (use per-point
// Memory sinks merged with WriteJSONL for those).
type LockedSink struct {
	mu   sync.Mutex
	sink Sink
}

var _ Sink = (*LockedSink)(nil)

// Locked wraps sink for multi-producer emission; a nil sink yields nil.
func Locked(sink Sink) *LockedSink {
	if sink == nil {
		return nil
	}
	return &LockedSink{sink: sink}
}

// Emit implements Sink.
func (l *LockedSink) Emit(e Event) {
	l.mu.Lock()
	l.sink.Emit(e)
	l.mu.Unlock()
}

// SortEvents sorts events by slot, then station, with the remaining
// fields as tie-breakers so the order is total over event values. Within
// one deterministic run the emission order is already reproducible;
// sorting gives a canonical order for serialised logs so that merged
// multi-worker output is byte-identical regardless of scheduling.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		switch {
		case a.Slot != b.Slot:
			return a.Slot < b.Slot
		case a.Station != b.Station:
			return a.Station < b.Station
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Attempt != b.Attempt:
			return a.Attempt < b.Attempt
		case a.Cause != b.Cause:
			return a.Cause < b.Cause
		case a.Flags != b.Flags:
			return a.Flags < b.Flags
		default:
			return a.Aux < b.Aux
		}
	})
}

// jsonlEvent is the JSONL wire form of an event. Field order is fixed by
// the struct, so identical event streams serialise byte-identically.
type jsonlEvent struct {
	Run      int64  `json:"run"`
	Slot     uint64 `json:"slot"`
	Station  int    `json:"station"`
	Kind     string `json:"kind"`
	Cause    string `json:"cause,omitempty"`
	Tx       bool   `json:"transmitter,omitempty"`
	Passive  bool   `json:"passive,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
	Attempt  uint16 `json:"attempt,omitempty"`
	Aux      uint32 `json:"aux,omitempty"`
}

// JSONLWriter is a streaming sink writing one JSON object per line. Lines
// carry a run tag (the seed of the run that produced them) so merged
// sweep logs remain attributable. Safe for concurrent use; check Err or
// the Flush result for write failures.
type JSONLWriter struct {
	mu     sync.Mutex
	w      *bufio.Writer
	run    int64
	err    error
	onLine func()
}

var _ Sink = (*JSONLWriter)(nil)

// NewJSONLWriter creates a JSONL sink tagging every line with the given
// run id.
func NewJSONLWriter(w io.Writer, run int64) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w), run: run}
}

// NewJSONLStream creates a JSONL sink for live streaming: every line is
// flushed through to w as it is emitted, and onLine (if non-nil) runs
// after each line — the hook an HTTP handler uses to push the chunk to
// the client (http.Flusher). This is the NDJSON adapter behind the
// simulation service's /v1/jobs/{id}/events endpoint.
func NewJSONLStream(w io.Writer, run int64, onLine func()) *JSONLWriter {
	j := NewJSONLWriter(w, run)
	j.onLine = onLine
	return j
}

// SetRun changes the run tag for subsequent lines.
func (j *JSONLWriter) SetRun(run int64) {
	j.mu.Lock()
	j.run = run
	j.mu.Unlock()
}

// Emit implements Sink.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(jsonlEvent{
		Run:      j.run,
		Slot:     e.Slot,
		Station:  int(e.Station),
		Kind:     e.Kind.String(),
		Cause:    CauseName(e.Cause),
		Tx:       e.Transmitter(),
		Passive:  e.Passive(),
		Rejected: e.Rejected(),
		Attempt:  e.Attempt,
		Aux:      e.Aux,
	})
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
	if j.onLine != nil {
		if j.err == nil {
			j.err = j.w.Flush()
		}
		j.onLine()
	}
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush writes buffered lines through and returns the first error seen.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// WriteJSONL canonically sorts a run's events (slot, then station) and
// writes them as run-tagged JSONL. This is the merge primitive for
// sweeps: calling it once per point in seed order yields byte-identical
// output for any worker count.
func WriteJSONL(w io.Writer, run int64, events []Event) error {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)
	jw := NewJSONLWriter(w, run)
	for _, e := range sorted {
		jw.Emit(e)
	}
	return jw.Flush()
}
