package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a live progress line (frames done, frames/sec, ETA) to
// a writer on a fixed interval, reading the current count from a
// callback — typically the live FramesSent total of a parent Metrics
// registry while forked workers run. Lines are terminated with \r so a
// terminal shows a single updating line; Stop prints a final newline-
// terminated summary.
type Progress struct {
	w        io.Writer
	total    uint64
	read     func() uint64
	interval time.Duration
	unit     string

	start time.Time
	stop  chan struct{}
	done  sync.WaitGroup
	once  sync.Once
}

// StartProgress begins rendering progress lines. total is the expected
// final count (0 if unknown: the ETA is then omitted); read returns the
// live count; unit names the counted thing ("frames", "trials"; empty
// defaults to "frames"). Callers must call Stop when the work finishes.
func StartProgress(w io.Writer, total uint64, read func() uint64, interval time.Duration, unit string) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if unit == "" {
		unit = "frames"
	}
	p := &Progress{
		w:        w,
		total:    total,
		read:     read,
		interval: interval,
		unit:     unit,
		//lint:allow determinism -- wall-clock rate display only; never feeds simulation state
		start: time.Now(),
		stop:  make(chan struct{}),
	}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			fmt.Fprintf(p.w, "\r%s   ", p.line())
		}
	}
}

func (p *Progress) line() string {
	n := p.read()
	//lint:allow determinism -- wall-clock rate display only; never feeds simulation state
	elapsed := time.Since(p.start)
	rate := 0.0
	if sec := elapsed.Seconds(); sec > 0 {
		rate = float64(n) / sec
	}
	if p.total == 0 {
		return fmt.Sprintf("%d %s  %.0f %s/s  %s", n, p.unit, rate, p.unit, elapsed.Round(time.Second))
	}
	s := fmt.Sprintf("%d/%d %s  %.0f %s/s", n, p.total, p.unit, rate, p.unit)
	if rate > 0 && n < p.total {
		eta := time.Duration(float64(p.total-n)/rate*float64(time.Second)) + time.Second/2
		s += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
	}
	return s
}

// Stop halts the ticker and prints a final summary line. Safe to call
// more than once.
func (p *Progress) Stop() {
	p.once.Do(func() {
		close(p.stop)
		p.done.Wait()
		fmt.Fprintf(p.w, "\r%s\n", p.line())
	})
}

// StatusLine renders a single in-place updating terminal line, the same
// \r idiom Progress uses but driven by the caller's own cadence instead
// of a ticker — the shape a polling loop (mcctl stats -watch) needs,
// where each refresh already happens on the poll interval. Update
// overwrites the previous line, padding with spaces so a shorter line
// leaves no trailing fragment; Close prints a final newline-terminated
// line.
type StatusLine struct {
	w     io.Writer
	width int
}

// NewStatusLine creates a status line writing to w.
func NewStatusLine(w io.Writer) *StatusLine { return &StatusLine{w: w} }

// Update redraws the line in place.
func (s *StatusLine) Update(line string) {
	pad := s.width - len(line)
	if pad < 0 {
		pad = 0
	}
	s.width = len(line)
	fmt.Fprintf(s.w, "\r%s%*s", line, pad, "")
	if pad > 0 {
		// Re-park the cursor at the line's end so a following Update
		// overwrites from the right place.
		fmt.Fprintf(s.w, "\r%s", line)
	}
}

// Close finishes the in-place line with a final newline-terminated one.
func (s *StatusLine) Close(final string) {
	s.Update(final)
	fmt.Fprintln(s.w)
}
