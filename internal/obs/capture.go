package obs

import "sync"

// Capture is a bounded event recorder for after-the-fact export: it
// keeps the first Max events of a stream (the prefix a trace exporter
// reconstructs spans from) and counts what it had to let go. Unlike the
// Ring, which is a lossy live hand-off between goroutines, a Capture is
// an archive — nothing drains it; the whole run stays addressable until
// the owner drops it. Safe for concurrent producers.
type Capture struct {
	mu      sync.Mutex
	max     int
	events  []Event
	dropped uint64
}

var _ Sink = (*Capture)(nil)

// NewCapture creates a capture keeping at most max events (minimum 1).
// Storage grows on demand, so an idle capture costs a few words.
func NewCapture(max int) *Capture {
	if max < 1 {
		max = 1
	}
	return &Capture{max: max}
}

// Emit implements Sink. Events beyond the capacity are counted, not
// stored: a trace built from a saturated capture is a truthful prefix
// plus an explicit gap, never a silently resampled stream.
func (c *Capture) Emit(e Event) {
	c.mu.Lock()
	if len(c.events) < c.max {
		c.events = append(c.events, e)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Events returns a copy of the captured prefix in emission order.
func (c *Capture) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of captured events.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Dropped returns the number of events that arrived after the capture
// was full.
func (c *Capture) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reset discards the captured events and the drop count, so a retried
// job attempt starts its capture clean.
func (c *Capture) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.dropped = 0
	c.mu.Unlock()
}
