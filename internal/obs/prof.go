package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiling wires the standard Go profilers from CLI flag values:
// cpuProfile/memProfile name output files (empty to skip), pprofAddr
// starts a net/http/pprof listener (empty to skip). It returns a stop
// function that finalises the profiles and shuts the pprof server down;
// callers should defer it and also invoke it explicitly before os.Exit
// paths.
//
// The listener is opened synchronously so an unusable address fails the
// start instead of printing from a goroutine after the caller has moved
// on, and stop closes the server and joins its serve goroutine so no
// socket or goroutine outlives the run.
func StartProfiling(cpuProfile, memProfile, pprofAddr string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuProfile != "" {
		cpuFile, err = os.Create(cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	var (
		srv       *http.Server
		serveDone chan struct{}
	)
	if pprofAddr != "" {
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("pprof listen: %w", err)
		}
		// DefaultServeMux already has the pprof handlers from the blank
		// import. Serve errors after a successful listen are non-fatal to
		// the run.
		srv = &http.Server{Handler: http.DefaultServeMux}
		serveDone = make(chan struct{})
		go func() {
			defer close(serveDone)
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	var stopped bool
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server close: %v\n", err)
			}
			<-serveDone
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// StartContention turns on the runtime's mutex-contention and
// blocking-event samplers and returns a stop function that writes the
// accumulated profiles to the named files (empty name = that profiler
// stays off) and restores the previous sampling rates. Sampling every
// event is deliberate: the flags are opt-in diagnostics for a service
// being profiled on purpose, where completeness beats overhead.
func StartContention(mutexProfile, blockProfile string) (stop func() error) {
	prevMutex := -1
	if mutexProfile != "" {
		prevMutex = runtime.SetMutexProfileFraction(1)
	}
	if blockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	var stopped bool
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if mutexProfile != "" {
			runtime.SetMutexProfileFraction(prevMutex)
		}
		if blockProfile != "" {
			runtime.SetBlockProfileRate(0)
		}
		write := func(name, path string) error {
			p := pprof.Lookup(name)
			if p == nil {
				return fmt.Errorf("%s profile: not registered", name)
			}
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("%s profile: %w", name, err)
			}
			if err := p.WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("%s profile: %w", name, err)
			}
			return f.Close()
		}
		if mutexProfile != "" {
			if err := write("mutex", mutexProfile); err != nil {
				return err
			}
		}
		if blockProfile != "" {
			if err := write("block", blockProfile); err != nil {
				return err
			}
		}
		return nil
	}
}
