package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiling wires the standard Go profilers from CLI flag values:
// cpuProfile/memProfile name output files (empty to skip), pprofAddr
// starts a net/http/pprof listener (empty to skip). It returns a stop
// function that finalises the profiles; callers should defer it and also
// invoke it explicitly before os.Exit paths.
func StartProfiling(cpuProfile, memProfile, pprofAddr string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuProfile != "" {
		cpuFile, err = os.Create(cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if pprofAddr != "" {
		ln := pprofAddr
		go func() {
			// DefaultServeMux already has the pprof handlers from the
			// blank import. Serve errors are non-fatal to the run.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	var stopped bool
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
