package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the process logger behind the -log-format flag the
// CLIs share (mcservd, mcsim, chaos): "text" renders human-readable
// key=value lines, "json" one JSON object per line for log shippers.
// The empty string means "text" so existing invocations keep their
// output shape. Any other value is a flag error, reported here so each
// CLI does not re-implement the validation.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
