package obs

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// histSlots bounds the bucket count of a Histogram; bounds beyond
// histSlots-1 are ignored (the last slot is the overflow bucket).
const histSlots = 12

// Histogram is a fixed-bucket, allocation-free histogram of uint64
// samples. Bucket i counts samples <= bounds[i]; the final bucket counts
// the overflow. All updates are atomic.
type Histogram struct {
	bounds []uint64
	counts [histSlots]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

func newHistogram(bounds []uint64) Histogram {
	if len(bounds) > histSlots-1 {
		bounds = bounds[:histSlots-1]
	}
	return Histogram{bounds: bounds}
}

// NewHistogram creates a standalone histogram with the given inclusive
// bucket upper bounds (at most 11; excess bounds are dropped and the last
// slot always counts the overflow). The simulation service uses one for
// its job-latency distribution.
func NewHistogram(bounds []uint64) *Histogram {
	h := newHistogram(append([]uint64(nil), bounds...))
	return &h
}

// Observe records one sample. Safe for concurrent use.
func (h *Histogram) Observe(v uint64) { h.observe(v) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, returning the inclusive upper bound of the bucket containing
// the quantile — a conservative (over-)estimate. The overflow bucket
// reports the largest finite bound, or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return b
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// State captures the histogram as its serialisable snapshot form.
func (h *Histogram) State() HistogramSnapshot { return h.snapshot() }

func (h *Histogram) bucket(v uint64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

func (h *Histogram) observe(v uint64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *Histogram) merge(o *Histogram) {
	for i := range o.bounds {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.counts[len(h.bounds)].Add(o.counts[len(o.bounds)].Load())
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// HistogramBucket is one bucket of a histogram snapshot. Le is the
// inclusive upper bound rendered as a decimal string, "+inf" for the
// overflow bucket.
type HistogramBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serialisable state of a Histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]HistogramBucket, 0, len(h.bounds)+1),
	}
	for i, b := range h.bounds {
		s.Buckets = append(s.Buckets, HistogramBucket{
			Le:    formatUint(b),
			Count: h.counts[i].Load(),
		})
	}
	s.Buckets = append(s.Buckets, HistogramBucket{
		Le:    "+inf",
		Count: h.counts[len(h.bounds)].Load(),
	})
	return s
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Default histogram bounds: retransmissions per frame (small counts) and
// frame settling latency in bit slots (an error-free 8-byte frame settles
// in ~130 slots; each retransmission round adds roughly a frame time).
var (
	retransmitBounds = []uint64{0, 1, 2, 3, 4, 6, 8, 16, 32, 64}
	settleBounds     = []uint64{128, 160, 192, 256, 384, 512, 1024, 2048, 4096, 8192}
)

// Metrics is the protocol metrics registry: atomic counters plus two
// fixed-bucket histograms. A registry forks per sweep worker like
// errmodel.Random: every update on a fork also propagates to its
// ancestors atomically, so the parent's live totals can be read (for
// progress display) while workers run, and no merge step is needed at
// completion. Merge remains available for combining independent
// registries.
//
// Metrics implements Sink: attached to an event stream it derives the
// event counters (error flags by cause, retransmissions, vote
// corrections, ...); the harness feeds the non-event quantities (bits
// simulated, frames sent, per-frame histograms) directly.
type Metrics struct {
	parent *Metrics
	label  string

	bits           atomic.Uint64
	framesSent     atomic.Uint64
	framesStarted  atomic.Uint64
	framesAccepted atomic.Uint64
	arbLosses      atomic.Uint64
	stuffErrors    atomic.Uint64
	flagsPrimary   atomic.Uint64
	flagsSecondary atomic.Uint64
	errorFlags     [8]atomic.Uint64 // indexed by cause code
	voteCorrected  atomic.Uint64
	retransmits    atomic.Uint64
	imos           atomic.Uint64
	busOffs        atomic.Uint64
	recoveries     atomic.Uint64

	retransHist Histogram // retransmissions per frame
	settleHist  Histogram // frame settling latency in slots
}

var _ Sink = (*Metrics)(nil)

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		retransHist: newHistogram(retransmitBounds),
		settleHist:  newHistogram(settleBounds),
	}
}

// Fork derives a per-worker registry. Updates on the fork propagate to
// this registry (and its ancestors) atomically, mirroring
// errmodel.Random.Fork, so the parent's totals stay live while workers
// run concurrently.
func (m *Metrics) Fork() *Metrics {
	c := NewMetrics()
	c.parent = m
	return c
}

// SetLabel attaches a label (typically the policy name) rendered into
// snapshots.
func (m *Metrics) SetLabel(label string) { m.label = label }

func (m *Metrics) bump(field func(*Metrics) *atomic.Uint64, n uint64) {
	for p := m; p != nil; p = p.parent {
		field(p).Add(n)
	}
}

// AddBits records simulated bit slots.
func (m *Metrics) AddBits(n uint64) {
	m.bump(func(p *Metrics) *atomic.Uint64 { return &p.bits }, n)
}

// AddFramesSent records application frames handed to the bus.
func (m *Metrics) AddFramesSent(n uint64) {
	m.bump(func(p *Metrics) *atomic.Uint64 { return &p.framesSent }, n)
}

// ObserveFrameRetransmits records one frame's retransmission count.
func (m *Metrics) ObserveFrameRetransmits(n uint64) {
	for p := m; p != nil; p = p.parent {
		p.retransHist.observe(n)
	}
}

// ObserveSettleLatency records one frame's settling latency: the bit
// slots from its broadcast until the bus quiesced again.
func (m *Metrics) ObserveSettleLatency(slots uint64) {
	for p := m; p != nil; p = p.parent {
		p.settleHist.observe(slots)
	}
}

// BitsSimulated returns the live total of simulated bit slots, including
// those of running forks.
func (m *Metrics) BitsSimulated() uint64 { return m.bits.Load() }

// FramesSent returns the live total of frames sent, including those of
// running forks.
func (m *Metrics) FramesSent() uint64 { return m.framesSent.Load() }

// EOFVoteCorrected returns the live count of MajorCAN majority-vote
// corrections.
func (m *Metrics) EOFVoteCorrected() uint64 { return m.voteCorrected.Load() }

// Emit implements Sink, deriving event counters from the stream.
func (m *Metrics) Emit(e Event) {
	var field func(*Metrics) *atomic.Uint64
	switch e.Kind {
	case KindFrameStart:
		field = func(p *Metrics) *atomic.Uint64 { return &p.framesStarted }
	case KindArbitrationLoss:
		field = func(p *Metrics) *atomic.Uint64 { return &p.arbLosses }
	case KindStuffError:
		field = func(p *Metrics) *atomic.Uint64 { return &p.stuffErrors }
	case KindErrorFlagPrimary:
		m.bump(func(p *Metrics) *atomic.Uint64 { return &p.flagsPrimary }, 1)
		cause := int(e.Cause) % len(m.errorFlags)
		field = func(p *Metrics) *atomic.Uint64 { return &p.errorFlags[cause] }
	case KindErrorFlagSecondary:
		m.bump(func(p *Metrics) *atomic.Uint64 { return &p.flagsSecondary }, 1)
		cause := int(e.Cause) % len(m.errorFlags)
		field = func(p *Metrics) *atomic.Uint64 { return &p.errorFlags[cause] }
	case KindEOFVoteCorrected:
		field = func(p *Metrics) *atomic.Uint64 { return &p.voteCorrected }
	case KindRetransmit:
		field = func(p *Metrics) *atomic.Uint64 { return &p.retransmits }
	case KindFrameAccepted:
		field = func(p *Metrics) *atomic.Uint64 { return &p.framesAccepted }
	case KindIMO:
		field = func(p *Metrics) *atomic.Uint64 { return &p.imos }
	case KindBusOff:
		field = func(p *Metrics) *atomic.Uint64 { return &p.busOffs }
	case KindRecover:
		field = func(p *Metrics) *atomic.Uint64 { return &p.recoveries }
	default:
		return
	}
	m.bump(field, 1)
}

// Merge adds another registry's totals into this one, for combining
// registries that were not forked from a common parent (e.g. per-policy
// runs aggregated by a CLI).
func (m *Metrics) Merge(o *Metrics) {
	m.bits.Add(o.bits.Load())
	m.framesSent.Add(o.framesSent.Load())
	m.framesStarted.Add(o.framesStarted.Load())
	m.framesAccepted.Add(o.framesAccepted.Load())
	m.arbLosses.Add(o.arbLosses.Load())
	m.stuffErrors.Add(o.stuffErrors.Load())
	m.flagsPrimary.Add(o.flagsPrimary.Load())
	m.flagsSecondary.Add(o.flagsSecondary.Load())
	for i := range m.errorFlags {
		m.errorFlags[i].Add(o.errorFlags[i].Load())
	}
	m.voteCorrected.Add(o.voteCorrected.Load())
	m.retransmits.Add(o.retransmits.Load())
	m.imos.Add(o.imos.Load())
	m.busOffs.Add(o.busOffs.Load())
	m.recoveries.Add(o.recoveries.Load())
	m.retransHist.merge(&o.retransHist)
	m.settleHist.merge(&o.settleHist)
}

// Snapshot is the serialisable state of a registry. The JSON field names
// are a stable contract consumed by EXPERIMENTS.md recipes and CI
// artifact checks.
type Snapshot struct {
	Policy              string            `json:"policy,omitempty"`
	ElapsedSeconds      float64           `json:"elapsed_seconds,omitempty"`
	BitsSimulated       uint64            `json:"bits_simulated"`
	BitsPerSecond       float64           `json:"bits_per_second,omitempty"`
	FramesSent          uint64            `json:"frames_sent"`
	FramesPerSecond     float64           `json:"frames_per_second,omitempty"`
	FramesStarted       uint64            `json:"frames_started"`
	FramesAccepted      uint64            `json:"frames_accepted"`
	ArbitrationLosses   uint64            `json:"arbitration_losses"`
	StuffErrors         uint64            `json:"stuff_errors"`
	ErrorFlagsPrimary   uint64            `json:"error_flags_primary"`
	ErrorFlagsSecondary uint64            `json:"error_flags_secondary"`
	ErrorFlagsByCause   map[string]uint64 `json:"error_flags_by_cause"`
	EOFVoteCorrected    uint64            `json:"eof_vote_corrected"`
	Retransmits         uint64            `json:"retransmits"`
	IMOs                uint64            `json:"imos"`
	BusOffs             uint64            `json:"bus_offs"`
	Recoveries          uint64            `json:"recoveries"`
	RetransmitsPerFrame HistogramSnapshot `json:"retransmits_per_frame"`
	SettleLatencySlots  HistogramSnapshot `json:"settle_latency_slots"`
}

// Snapshot captures the registry. A positive elapsed duration fills the
// rate fields (frames/sec, bits/sec).
func (m *Metrics) Snapshot(elapsed time.Duration) Snapshot {
	s := Snapshot{
		Policy:              m.label,
		BitsSimulated:       m.bits.Load(),
		FramesSent:          m.framesSent.Load(),
		FramesStarted:       m.framesStarted.Load(),
		FramesAccepted:      m.framesAccepted.Load(),
		ArbitrationLosses:   m.arbLosses.Load(),
		StuffErrors:         m.stuffErrors.Load(),
		ErrorFlagsPrimary:   m.flagsPrimary.Load(),
		ErrorFlagsSecondary: m.flagsSecondary.Load(),
		ErrorFlagsByCause:   make(map[string]uint64),
		EOFVoteCorrected:    m.voteCorrected.Load(),
		Retransmits:         m.retransmits.Load(),
		IMOs:                m.imos.Load(),
		BusOffs:             m.busOffs.Load(),
		Recoveries:          m.recoveries.Load(),
		RetransmitsPerFrame: m.retransHist.snapshot(),
		SettleLatencySlots:  m.settleHist.snapshot(),
	}
	for code, name := range causeNames {
		if name == "" {
			continue
		}
		if n := m.errorFlags[code].Load(); n > 0 {
			s.ErrorFlagsByCause[name] = n
		}
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.ElapsedSeconds = sec
		s.FramesPerSecond = float64(s.FramesSent) / sec
		s.BitsPerSecond = float64(s.BitsSimulated) / sec
	}
	return s
}

// MarshalJSON renders the snapshot form, so a *Metrics can be passed to
// json encoders directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot(0))
}
