// Package obs is the protocol telemetry layer: a typed vocabulary of
// protocol events emitted by the bus and the controllers, a lock-free
// single-producer ring buffer that decouples emission from consumption,
// pluggable sinks (in-memory, JSONL, fan-out), and an allocation-free
// metrics registry that forks per sweep worker and merges on completion.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the simulator (bus, node, sim, chaos, the CLIs and the public
// majorcan API) can depend on it without cycles. Event producers hold a
// Sink and guard every emission with a nil check; an uninstrumented run
// pays only that check.
package obs

import "fmt"

// Kind names one protocol event class. The vocabulary follows the
// MajorCAN paper's protocol narrative: frames start, lose arbitration,
// get flagged (primary by the detecting node, secondary from the
// end-of-frame region), are corrected by MajorCAN's EOF majority vote,
// retransmitted, accepted — and, at the harness level, end as
// inconsistent message omissions.
type Kind uint8

const (
	// KindFrameStart is a start-of-frame bit on the wire. Emitted by the
	// bus: Station is the lowest-indexed transmitting contender, Aux the
	// number of simultaneous contenders, Attempt that station's
	// transmission attempt count.
	KindFrameStart Kind = iota + 1
	// KindArbitrationLoss is a transmitter losing arbitration and
	// continuing as a receiver. Aux is the bit index within the frame
	// encoding at which it lost.
	KindArbitrationLoss
	// KindStuffError is a stuff-rule violation (six consecutive equal
	// bits) detected by a station.
	KindStuffError
	// KindErrorFlagPrimary is an error flag triggered by an error the
	// station detected in the frame body itself (bit, stuff, CRC, form or
	// ACK error). Cause carries the error kind code.
	KindErrorFlagPrimary
	// KindErrorFlagSecondary is error signalling decided in the
	// end-of-frame region (a corrupted EOF bit or another node's flag
	// reaching this station's EOF window). Cause carries the error kind
	// code. The slot is the end of the station's EOF episode, where the
	// protocol variant resolves its verdict.
	KindErrorFlagSecondary
	// KindEOFVoteCorrected is MajorCAN's acceptance sampling overturning
	// a signalled error: the station flagged an error in the first EOF
	// sub-field and the majority vote over the sampling window still
	// accepted the frame. Aux is the number of dominant samples.
	KindEOFVoteCorrected
	// KindRetransmit is a transmitter scheduling an automatic
	// retransmission after a rejected frame. Attempt counts the attempts
	// made so far; Cause carries the error kind that caused the reject.
	KindRetransmit
	// KindFrameAccepted is a frame accepted at a station: a receiver
	// delivering it to the upper layer, or (with FlagTransmitter set) the
	// transmitter completing its transmission.
	KindFrameAccepted
	// KindIMO is an inconsistent message omission classified by the
	// harness: some correct receiver delivered the frame and another
	// correct receiver never did. Station is -1 (bus-level), Slot is the
	// frame's broadcast slot, Aux its sequence number.
	KindIMO
	// KindBusOff is a station leaving the bus: Aux carries the mode code
	// (3 = bus-off, 4 = switched-off/crashed).
	KindBusOff
	// KindRecover is a bus-off station rejoining error-active after
	// monitoring 128 occurrences of 11 consecutive recessive bits.
	KindRecover
	// KindAttemptRetry is a harness-level attempt boundary: the previous
	// execution attempt of a job failed transiently and the run is
	// starting over, so events after this marker belong to the new
	// attempt. Station is -1, Slot restarts from the new attempt, Aux
	// carries the number of attempts already completed.
	KindAttemptRetry
	// KindStorageDegraded is a service-level durability fault: a durable
	// store (journal, result spool or checkpoint directory) failed and the
	// layer fell back to memory-only operation instead of crashing.
	// Station is -1, Slot 0, Aux carries the store code (see Store*).
	KindStorageDegraded
	// KindJournalRecovered is a service-level recovery marker: startup
	// replayed unfinished jobs from the write-ahead journal. Station is
	// -1, Slot 0, Aux the number of jobs re-admitted.
	KindJournalRecovered
	// KindCheckpointSaved is a harness-level checkpoint boundary: a
	// long-running job persisted its partial progress (a seed-order sweep
	// prefix or a campaign trial position), so a crash from here loses at
	// most one batch. Station is -1, Aux the units (points or trials)
	// completed so far.
	KindCheckpointSaved
	// KindCheckpointResumed marks a recovered job picking up from a
	// checkpoint instead of restarting. Station is -1, Aux the units
	// already complete when the run resumed.
	KindCheckpointResumed
	// KindEOFVote is the completion of a station's end-of-frame episode —
	// the region where each protocol variant resolves its verdict
	// (standard CAN's EOF field, MajorCAN's majority-vote rounds). Slot is
	// the episode's final bit, Aux its length in slots, Cause the error
	// kind that drove the episode (0 for a clean frame), and FlagRejected
	// marks a reject verdict. Trace exporters turn these into per-station
	// vote-round spans.
	KindEOFVote
	// KindRingOverflow is a service-level telemetry fault: a job's event
	// ring dropped its first event because no consumer drained it fast
	// enough, so the live stream is incomplete from here on. Emitted once
	// per ring; Station is -1, Aux carries the ring capacity.
	KindRingOverflow
)

// Store codes carried in KindStorageDegraded's Aux field.
const (
	// StoreJournal is the write-ahead job journal.
	StoreJournal uint32 = 1
	// StoreSpool is the content-addressed result spool.
	StoreSpool uint32 = 2
	// StoreCheckpoint is the job checkpoint directory.
	StoreCheckpoint uint32 = 3
)

func (k Kind) String() string {
	switch k {
	case KindFrameStart:
		return "frame-start"
	case KindArbitrationLoss:
		return "arbitration-loss"
	case KindStuffError:
		return "stuff-error"
	case KindErrorFlagPrimary:
		return "error-flag-primary"
	case KindErrorFlagSecondary:
		return "error-flag-secondary"
	case KindEOFVoteCorrected:
		return "eof-vote-corrected"
	case KindRetransmit:
		return "retransmit"
	case KindFrameAccepted:
		return "frame-accepted"
	case KindIMO:
		return "imo"
	case KindBusOff:
		return "bus-off"
	case KindRecover:
		return "recover"
	case KindAttemptRetry:
		return "attempt-retry"
	case KindStorageDegraded:
		return "storage-degraded"
	case KindJournalRecovered:
		return "journal-recovered"
	case KindCheckpointSaved:
		return "checkpoint-saved"
	case KindCheckpointResumed:
		return "checkpoint-resumed"
	case KindEOFVote:
		return "eof-vote"
	case KindRingOverflow:
		return "ring-overflow"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrorFlag reports whether the kind is one of the two error-flag
// variants.
func (k Kind) ErrorFlag() bool {
	return k == KindErrorFlagPrimary || k == KindErrorFlagSecondary
}

// Event flag bits.
const (
	// FlagTransmitter marks the station as the transmitter of the current
	// frame at emission time.
	FlagTransmitter uint8 = 1 << iota
	// FlagPassive marks the station as error-passive at emission time
	// (its flags are recessive and cannot influence the bus).
	FlagPassive
	// FlagRejected marks a KindEOFVote episode that ended in a reject
	// verdict (the station discarded the frame; a transmitter will
	// retransmit it).
	FlagRejected
)

// Event is one protocol event. The struct is fixed-size and pointer-free
// so rings and sinks never allocate per event.
type Event struct {
	// Slot is the bit slot the event belongs to.
	Slot uint64
	// Kind classifies the event.
	Kind Kind
	// Station is the emitting station index, or -1 for bus- and
	// harness-level events.
	Station int16
	// Cause is the error kind code for error events (see CauseName).
	Cause uint8
	// Flags carries FlagTransmitter and FlagPassive.
	Flags uint8
	// Attempt is the station's transmission-attempt count at emission.
	Attempt uint16
	// Aux is kind-specific: contenders (FrameStart), bit index
	// (ArbitrationLoss), dominant votes (EOFVoteCorrected), sequence
	// number (IMO), mode code (BusOff).
	Aux uint32
}

// Transmitter reports whether the station was the frame's transmitter.
func (e Event) Transmitter() bool { return e.Flags&FlagTransmitter != 0 }

// Passive reports whether the station was error-passive.
func (e Event) Passive() bool { return e.Flags&FlagPassive != 0 }

// Rejected reports whether a KindEOFVote episode ended in a reject.
func (e Event) Rejected() bool { return e.Flags&FlagRejected != 0 }

func (e Event) String() string {
	s := fmt.Sprintf("[%d] n%d %s", e.Slot, e.Station, e.Kind)
	if name := CauseName(e.Cause); name != "" {
		s += " cause=" + name
	}
	if e.Transmitter() {
		s += " tx"
	}
	return s
}

// causeNames mirrors node.ErrorKind's codes and String values: bit=1,
// stuff=2, crc=3, form=4, ack=5, overload=6. The obs package cannot
// import node (node imports obs), so the mapping is duplicated here and
// pinned by a cross-package test in internal/node.
var causeNames = [...]string{1: "bit", 2: "stuff", 3: "crc", 4: "form", 5: "ack", 6: "overload"}

// CauseName renders an error kind code, or "" for 0/unknown codes.
func CauseName(code uint8) string {
	if int(code) < len(causeNames) {
		return causeNames[code]
	}
	return ""
}

// Sink consumes protocol events. Producers (bus.Network, node.Controller)
// call Emit once per event from the simulation goroutine; sink
// implementations used across goroutines (Memory, JSONLWriter, Metrics)
// are internally synchronised.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }
