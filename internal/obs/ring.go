package obs

import "sync/atomic"

// Ring is a bounded single-producer single-consumer event ring buffer.
// The simulation goroutine emits into it lock-free; a consumer (the same
// goroutine between frames, or a live reader on another goroutine) drains
// it into sinks. When the ring is full, Emit drops the event and counts
// the drop, so a producer can never block the simulation; size the ring
// for the drain cadence (one frame's worth of events is tens, not
// thousands) and assert Dropped() == 0 where completeness matters.
type Ring struct {
	buf  []Event
	mask uint64
	head atomic.Uint64 // next slot the consumer reads
	tail atomic.Uint64 // next slot the producer writes
	drop atomic.Uint64

	// onFirstDrop, if set, runs exactly once: on the Emit that loses the
	// ring's first event. It is invoked from the producer goroutine with
	// the event already dropped, so the hook must not Emit back into this
	// ring; it exists so overflow can be surfaced (a counter bump, a log
	// line, a one-shot service event) instead of staying invisible.
	onFirstDrop func()
}

// NewRing creates a ring with at least the given capacity (rounded up to
// a power of two, minimum 64).
func NewRing(capacity int) *Ring {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n), mask: uint64(n - 1)}
}

var _ Sink = (*Ring)(nil)

// Emit implements Sink. It must be called from a single producer
// goroutine. A full ring drops the event (see Dropped).
func (r *Ring) Emit(e Event) {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		if r.drop.Add(1) == 1 && r.onFirstDrop != nil {
			r.onFirstDrop()
		}
		return
	}
	r.buf[t&r.mask] = e
	r.tail.Store(t + 1)
}

// Drain delivers every buffered event to sink in emission order and
// returns the number delivered. It must be called from a single consumer
// goroutine (which may be the producer goroutine between emissions).
func (r *Ring) Drain(sink Sink) int {
	h, t := r.head.Load(), r.tail.Load()
	n := 0
	for ; h < t; h++ {
		e := r.buf[h&r.mask]
		r.head.Store(h + 1)
		sink.Emit(e)
		n++
	}
	return n
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Dropped returns the number of events lost to a full ring.
func (r *Ring) Dropped() uint64 { return r.drop.Load() }

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.buf) }

// OnFirstDrop registers fn to run once, on the Emit that drops the
// ring's first event. Register before the producer starts; the hook runs
// on the producer goroutine and must not emit into this ring.
func (r *Ring) OnFirstDrop(fn func()) { r.onFirstDrop = fn }
