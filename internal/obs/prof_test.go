package obs

import (
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestStartProfilingBadAddr pins the synchronous-listen contract: an
// unusable pprof address must fail StartProfiling itself, not print
// from a goroutine after the caller has moved on.
func TestStartProfilingBadAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	stop, err := StartProfiling("", "", ln.Addr().String())
	if err == nil {
		stop()
		t.Fatal("StartProfiling on an occupied address: err = nil, want a listen error")
	}
	if !strings.Contains(err.Error(), "pprof listen") {
		t.Fatalf("error = %v, want a pprof listen error", err)
	}
}

// TestStartProfilingStopFreesPort pins the shutdown contract: stop must
// close the pprof server and join its serve goroutine, so the port is
// immediately reusable and nothing outlives the run.
func TestStartProfilingStopFreesPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stop, err := StartProfiling("", "", addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		stop()
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		stop()
		t.Fatalf("pprof index status = %d, want 200", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after stop: %v", err)
	}
	ln.Close()

	// stop is idempotent: a deferred call after an explicit one is a no-op.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestStartProfilingWritesFiles checks the file-backed profiles survive
// a full start/stop cycle.
func TestStartProfilingWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiling(cpu, mem, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartContentionWritesProfiles checks the mutex/block samplers
// write their profiles on stop and that stop is idempotent.
func TestStartContentionWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	mutexPath := filepath.Join(dir, "mutex.pprof")
	blockPath := filepath.Join(dir, "block.pprof")
	stop := StartContention(mutexPath, blockPath)

	// Generate at least one contended acquisition and one blocking
	// channel event so the profiles have something to record.
	var mu sync.Mutex
	ch := make(chan struct{})
	mu.Lock()
	go func() {
		mu.Lock()
		mu.Unlock()
		close(ch)
	}()
	mu.Unlock()
	<-ch

	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mutexPath, blockPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}
