package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) with no dependency beyond the standard library. It is
// the serialisation half of the /metrics endpoint: callers declare a
// family (HELP + TYPE) and then emit its samples; the writer enforces
// the format's ordering rules (a family's metadata precedes its samples,
// each family appears once) so the output always passes LintProm.
type PromWriter struct {
	w        *bufio.Writer
	err      error
	families map[string]bool
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// NewPromWriter creates a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), families: make(map[string]bool)}
}

// Family declares a metric family: one HELP and one TYPE line. typ is
// "counter", "gauge" or "histogram". Declaring the same family twice is
// an error (the exposition format forbids it).
func (p *PromWriter) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	if p.families[name] {
		p.err = fmt.Errorf("prom: family %q declared twice", name)
		return
	}
	p.families[name] = true
	// HELP text must not contain raw newlines; escape per the format.
	help = strings.ReplaceAll(help, "\\", `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one sample line for a declared family. For histogram
// families the caller passes the full sample name (name_bucket,
// name_sum, name_count); Histogram below does this for a snapshot.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	_, p.err = fmt.Fprintf(p.w, "%s %s\n", sb.String(), formatFloat(v))
}

// Histogram declares and emits a full histogram family from a snapshot:
// cumulative _bucket samples (the snapshot's per-bucket counts summed),
// the mandatory le="+Inf" bucket, _sum and _count. extra labels are
// attached to every sample.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, extra ...Label) {
	p.Family(name, "histogram", help)
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		le := b.Le
		if le == "+inf" {
			le = "+Inf"
		}
		labels := append(append([]Label(nil), extra...), Label{Name: "le", Value: le})
		p.Sample(name+"_bucket", labels, float64(cum))
	}
	p.Sample(name+"_sum", extra, float64(s.Sum))
	p.Sample(name+"_count", extra, float64(s.Count))
}

// Err returns the first error seen.
func (p *PromWriter) Err() error { return p.err }

// Flush writes buffered output through and returns the first error.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	p.err = p.w.Flush()
	return p.err
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exposition-format grammar fragments for LintProm.
var (
	promNameRE   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?\s*$`)
)

// LintProm validates a Prometheus text-format exposition: metadata
// syntax, TYPE values, name and label grammar, parseable sample values,
// no duplicate series, every sample's base family declared by a
// preceding TYPE line, and histogram invariants (an le label on every
// _bucket, a final le="+Inf" bucket equal to _count, non-decreasing
// cumulative buckets). It is the check CI runs against a live /metrics
// scrape, so the error messages carry line numbers.
func LintProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)   // family -> type
	seen := make(map[string]bool)      // full series (name + sorted labels)
	lastCum := make(map[string]float64)
	infBucket := make(map[string]float64)
	counts := make(map[string]float64)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !promNameRE.MatchString(name) {
				return fmt.Errorf("prom: line %d: bad metric name %q in %s", line, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prom: line %d: TYPE needs a type", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom: line %d: unknown type %q", line, fields[3])
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %q", line, name)
				}
				types[name] = fields[3]
			}
			continue
		}
		m := promSampleRE.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("prom: line %d: unparseable sample %q", line, text)
		}
		name, rawLabels, rawVal := m[1], m[3], m[4]
		v, err := parsePromValue(rawVal)
		if err != nil {
			return fmt.Errorf("prom: line %d: %v", line, err)
		}
		labels, err := parsePromLabels(rawLabels)
		if err != nil {
			return fmt.Errorf("prom: line %d: %v", line, err)
		}
		base := promBase(name, types)
		if _, ok := types[base]; !ok {
			return fmt.Errorf("prom: line %d: sample %q has no preceding TYPE line", line, name)
		}
		series := name + "|" + canonicalLabels(labels)
		if seen[series] {
			return fmt.Errorf("prom: line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		if types[base] == "histogram" {
			key := base + "|" + canonicalLabels(withoutLe(labels))
			switch {
			case name == base+"_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("prom: line %d: histogram bucket without le label", line)
				}
				if v < lastCum[key] {
					return fmt.Errorf("prom: line %d: histogram %s buckets not cumulative", line, base)
				}
				lastCum[key] = v
				if le == "+Inf" {
					infBucket[key] = v
				}
			case name == base+"_count":
				counts[key] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("prom: read: %w", err)
	}
	//lint:allow determinism -- exposition validation; order only picks which violation is reported first
	for key, inf := range infBucket {
		if c, ok := counts[key]; ok && c != inf {
			return fmt.Errorf("prom: histogram %s: le=\"+Inf\" bucket %g != _count %g", key, inf, c)
		}
	}
	//lint:allow determinism -- exposition validation; order only picks which violation is reported first
	for key := range counts {
		if _, ok := infBucket[key]; !ok {
			return fmt.Errorf("prom: histogram %s: missing le=\"+Inf\" bucket", key)
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

func parsePromLabels(raw string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := strings.TrimSpace(raw)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label syntax %q", raw)
		}
		name := strings.TrimSpace(rest[:eq])
		if !promLabelRE.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
				rest = strings.TrimSpace(rest)
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
	}
	return labels, nil
}

// promBase strips a histogram sample suffix when the remaining name is a
// declared histogram family.
func promBase(name string, types map[string]string) string {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func withoutLe(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	//lint:allow determinism -- builds a map consumed only via sorted canonicalLabels
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte(';')
	}
	return sb.String()
}
