package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// The computed Table 1 must match the paper's published values. The paper
// prints three significant digits, so we allow 1% relative error.
func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != len(PaperTable1) {
		t.Fatalf("got %d rows, want %d", len(rows), len(PaperTable1))
	}
	for i, row := range rows {
		want := PaperTable1[i]
		if row.Ber != want.Ber {
			t.Fatalf("row %d ber = %g, want %g", i, row.Ber, want.Ber)
		}
		if e := relErr(row.NewPerHour, want.NewPerHour); e > 0.01 {
			t.Errorf("ber=%.0e IMOnew/hour = %.4e, paper %.4e (rel err %.2f%%)",
				row.Ber, row.NewPerHour, want.NewPerHour, 100*e)
		}
		if e := relErr(row.OldPerHour, want.OldPerHour); e > 0.01 {
			t.Errorf("ber=%.0e IMO*/hour = %.4e, paper %.4e (rel err %.2f%%)",
				row.Ber, row.OldPerHour, want.OldPerHour, 100*e)
		}
	}
}

// The paper's headline comparison: the new scenarios are orders of
// magnitude more probable than the old ones and all rates at these ber
// values exceed the aerospace safety reference of 1e-9/hour.
func TestNewScenarioDominatesOld(t *testing.T) {
	for _, row := range Table1() {
		if row.NewPerHour <= row.OldPerHour {
			t.Errorf("ber=%.0e: IMOnew/hour %.2e must exceed IMO*/hour %.2e",
				row.Ber, row.NewPerHour, row.OldPerHour)
		}
		// Per the paper's own numbers the ratio is ~2245x at ber=1e-4,
		// ~225x at 1e-5 and ~22.5x at 1e-6 (new ~ ber^2, old ~ ber).
		ratio := row.NewPerHour / row.OldPerHour
		paperRatio := 0.0
		for _, pr := range PaperTable1 {
			if pr.Ber == row.Ber {
				paperRatio = pr.NewPerHour / pr.OldPerHour
			}
		}
		if relErr(ratio, paperRatio) > 0.05 {
			t.Errorf("ber=%.0e: dominance ratio %.1f, paper implies %.1f", row.Ber, ratio, paperRatio)
		}
		if row.NewPerHour < SafetyReference {
			t.Errorf("ber=%.0e: IMOnew/hour %.2e below the 1e-9 safety reference, contradicting the paper",
				row.Ber, row.NewPerHour)
		}
	}
}

// The ber* model reproduces Rufino's IMO/hour within the ~1% the paper
// demonstrates ("the model we have introduced based in ber* permits to
// reproduce the results obtained [by Rufino et al.]").
func TestOldScenarioReproducesRufino(t *testing.T) {
	for _, row := range Table1() {
		if e := relErr(row.OldPerHour, row.RufinoPerHour); e > 0.02 {
			t.Errorf("ber=%.0e: IMO*/hour %.3e vs Rufino %.3e (rel err %.2f%%)",
				row.Ber, row.OldPerHour, row.RufinoPerHour, 100*e)
		}
	}
}

func TestBerStar(t *testing.T) {
	p := Reference(3.2e-4)
	if got, want := p.BerStar(), 1e-5; relErr(got, want) > 1e-12 {
		t.Errorf("BerStar = %g, want %g", got, want)
	}
}

func TestFramesPerHour(t *testing.T) {
	p := Reference(1e-5)
	// 0.9 * 1e6 bit/s * 3600 s / 110 bits = 29_454_545.45... frames/hour
	want := 0.9 * 1e6 * 3600 / 110
	if got := p.FramesPerHour(); relErr(got, want) > 1e-12 {
		t.Errorf("FramesPerHour = %g, want %g", got, want)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"reference ok", func(*Params) {}, false},
		{"negative ber", func(p *Params) { p.Ber = -1 }, true},
		{"ber above one", func(p *Params) { p.Ber = 1.5 }, true},
		{"too few nodes", func(p *Params) { p.Nodes = 2 }, true},
		{"short frame", func(p *Params) { p.FrameBits = 2 }, true},
		{"zero bitrate", func(p *Params) { p.BitRate = 0 }, true},
		{"zero load", func(p *Params) { p.Load = 0 }, true},
		{"overload", func(p *Params) { p.Load = 1.1 }, true},
		{"negative lambda", func(p *Params) { p.Lambda = -1 }, true},
		{"negative deltaT", func(p *Params) { p.DeltaT = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Reference(1e-5)
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBinom(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {31, 1, 31},
		{31, 2, 465}, {10, 3, 120}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		if got := binom(tt.n, tt.k); got != tt.want {
			t.Errorf("binom(%d,%d) = %g, want %g", tt.n, tt.k, got, tt.want)
		}
	}
}

// Property: both scenario probabilities are valid probabilities and
// monotonically increasing in ber over the operational range.
func TestProbabilityProperties(t *testing.T) {
	f := func(seed uint32) bool {
		// ber in [1e-8, 1e-3]
		exp := -8 + 5*float64(seed%1000)/1000
		ber := math.Pow(10, exp)
		p := Reference(ber)
		pn, po := p.PNewScenario(), p.POldScenario()
		if pn < 0 || pn > 1 || po < 0 || po > 1 {
			return false
		}
		p2 := Reference(ber * 2)
		return p2.PNewScenario() >= pn && p2.POldScenario() >= po
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The new scenario needs two coincident errors, so its probability scales
// roughly with ber^2, while the old one scales with ber (times the crash
// probability). Check the scaling exponents.
func TestScalingExponents(t *testing.T) {
	p1, p2 := Reference(1e-5), Reference(1e-6)
	newRatio := p1.PNewScenario() / p2.PNewScenario()
	if newRatio < 90 || newRatio > 110 {
		t.Errorf("new scenario ber-scaling ratio = %.1f, want ~100 (quadratic)", newRatio)
	}
	oldRatio := p1.POldScenario() / p2.POldScenario()
	if oldRatio < 9 || oldRatio > 11 {
		t.Errorf("old scenario ber-scaling ratio = %.1f, want ~10 (linear)", oldRatio)
	}
}

// More nodes spread the same ber thinner (ber* = ber/N): with everything
// else fixed, increasing N must not increase the per-frame probability
// dramatically; in fact the transmitter term shrinks with 1/N.
func TestNodeCountEffect(t *testing.T) {
	small, large := Reference(1e-5), Reference(1e-5)
	small.Nodes, large.Nodes = 8, 128
	if small.PNewScenario() <= large.PNewScenario() {
		t.Errorf("P(new) with N=8 (%.3e) must exceed N=128 (%.3e) at fixed ber",
			small.PNewScenario(), large.PNewScenario())
	}
}

// The paper's CAN6': j' is strictly larger than j because the new
// scenarios add to the inconsistent omission degree.
func TestInconsistentOmissionDegree(t *testing.T) {
	p := Reference(1e-5)
	const trd = 3600.0 // one hour of reference
	d := p.InconsistentOmissionDegree(trd)
	if d.JPrime <= d.J {
		t.Errorf("j' = %g must exceed j = %g (property CAN6')", d.JPrime, d.J)
	}
	if relErr(d.J, p.OldScenarioPerHour()) > 1e-12 {
		t.Errorf("j over one hour = %g, want the hourly rate %g", d.J, p.OldScenarioPerHour())
	}
	if relErr(d.JPrime-d.J, p.NewScenarioPerHour()) > 1e-12 {
		t.Errorf("j'-j = %g, want the new-scenario rate %g", d.JPrime-d.J, p.NewScenarioPerHour())
	}
	// Scaling with the interval length.
	d2 := p.InconsistentOmissionDegree(2 * trd)
	if relErr(d2.JPrime, 2*d.JPrime) > 1e-12 {
		t.Errorf("degree must scale linearly with T_rd")
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(Table1())
	for _, want := range []string{"IMOnew/hour", "IMO*/hour", "1e-04", "8.8"} {
		if !containsFold(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && (stringIndexFold(s, sub) >= 0)
}

func stringIndexFold(s, sub string) int {
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}
