// Package analytic implements the MajorCAN paper's probabilistic model of
// inconsistent message omissions (Section 4): the spatial error model
// ber* = ber/N (expression 3, after Charzinski), the probability of the
// paper's new inconsistency scenario per frame (expression 4), the
// probability of the Fig. 1c scenario per frame (expression 5), and the
// per-hour rates of Table 1.
package analytic

import (
	"fmt"
	"math"
)

// Params are the network parameters of the model. The paper's reference
// configuration (Section 4) is the same as in Rufino et al.: a 1 Mbps bus
// with 32 nodes, 90% load and 110-bit frames.
type Params struct {
	// Ber is the bit error rate: the probability that a bit is erroneous
	// somewhere in the network.
	Ber float64
	// Nodes is the number of stations N.
	Nodes int
	// FrameBits is the frame length tau_data in bits.
	FrameBits int
	// BitRate is the bus speed in bit/s.
	BitRate float64
	// Load is the bus utilisation (0..1].
	Load float64
	// Lambda is the node crash rate in failures/hour (used by the old
	// scenario's transmitter-crash term).
	Lambda float64
	// DeltaT is the recovery interval in seconds during which a transmitter
	// crash prevents the retransmission (5 ms in the paper).
	DeltaT float64
}

// Reference returns the paper's Table 1 configuration with the given bit
// error rate.
func Reference(ber float64) Params {
	return Params{
		Ber:       ber,
		Nodes:     32,
		FrameBits: 110,
		BitRate:   1e6,
		Load:      0.9,
		Lambda:    1e-3,
		DeltaT:    5e-3,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Ber < 0 || p.Ber > 1:
		return fmt.Errorf("analytic: ber %g out of [0,1]", p.Ber)
	case p.Nodes < 3:
		return fmt.Errorf("analytic: the scenarios need N >= 3 nodes, got %d", p.Nodes)
	case p.FrameBits < 3:
		return fmt.Errorf("analytic: frame length %d too short", p.FrameBits)
	case p.BitRate <= 0:
		return fmt.Errorf("analytic: bit rate %g must be positive", p.BitRate)
	case p.Load <= 0 || p.Load > 1:
		return fmt.Errorf("analytic: load %g out of (0,1]", p.Load)
	case p.Lambda < 0:
		return fmt.Errorf("analytic: lambda %g must be non-negative", p.Lambda)
	case p.DeltaT < 0:
		return fmt.Errorf("analytic: delta-t %g must be non-negative", p.DeltaT)
	}
	return nil
}

// BerStar returns the per-node bit error probability ber* = ber/N
// (expression 3): with the error effectivity randomly distributed over the
// nodes, p_eff = 1/N.
func (p Params) BerStar() float64 {
	return p.Ber / float64(p.Nodes)
}

// FramesPerHour returns the number of frames transmitted per hour at the
// configured bit rate, load and frame length.
func (p Params) FramesPerHour() float64 {
	return p.Load * p.BitRate * 3600 / float64(p.FrameBits)
}

// binom returns the binomial coefficient C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n - k + i)
		r /= float64(i)
	}
	return r
}

// PNewScenario returns the probability of the paper's new inconsistency
// scenario (Fig. 3a) per frame — expression (4):
//
//	P = sum_{i=1}^{N-2} C(N-1, i) ((1-b)^{tau-2} b)^i ((1-b)^{tau-1})^{N-1-i}
//	    * (1-b)^{tau-1} b
//
// with b = ber*: at least one receiver (and not all of them) is hit at the
// last but one bit of its EOF while clean elsewhere, the remaining
// receivers are clean for the whole frame, and the transmitter is clean
// except for an error in its last bit that hides the error flag.
func (p Params) PNewScenario() float64 {
	b := p.BerStar()
	tau := float64(p.FrameBits)
	n := p.Nodes
	hit := math.Pow(1-b, tau-2) * b    // a receiver disturbed exactly at the last-but-one bit
	clean := math.Pow(1-b, tau-1)      // a receiver entirely clean
	txTerm := math.Pow(1-b, tau-1) * b // transmitter clean until its last bit, then hit
	sum := 0.0
	for i := 1; i <= n-2; i++ {
		sum += binom(n-1, i) * math.Pow(hit, float64(i)) * math.Pow(clean, float64(n-1-i))
	}
	return sum * txTerm
}

// POldScenario returns the probability of the previously reported scenario
// (Fig. 1c) per frame under the paper's ber* model — expression (5): same
// receiver split as the new scenario, the transmitter clean during the
// frame but crashing (rate lambda) within the recovery interval delta-t so
// the retransmission never happens.
func (p Params) POldScenario() float64 {
	b := p.BerStar()
	tau := float64(p.FrameBits)
	n := p.Nodes
	hit := math.Pow(1-b, tau-2) * b
	clean := math.Pow(1-b, tau-1)
	deltaHours := p.DeltaT / 3600
	crash := 1 - math.Exp(-p.Lambda*deltaHours)
	txTerm := math.Pow(1-b, tau-2) * crash
	sum := 0.0
	for i := 1; i <= n-2; i++ {
		sum += binom(n-1, i) * math.Pow(hit, float64(i)) * math.Pow(clean, float64(n-1-i))
	}
	return sum * txTerm
}

// NewScenarioPerHour returns the expected number of new-scenario
// inconsistencies per hour (Table 1, column IMOnew/hour).
func (p Params) NewScenarioPerHour() float64 {
	return p.PNewScenario() * p.FramesPerHour()
}

// OldScenarioPerHour returns the expected number of Fig. 1c scenario
// inconsistencies per hour under the ber* model (Table 1, column
// IMO*/hour).
func (p Params) OldScenarioPerHour() float64 {
	return p.POldScenario() * p.FramesPerHour()
}

// OmissionDegree quantifies the paper's property CAN6/CAN6': the expected
// number of transmissions suffering inconsistent omission failures within
// an interval of reference T_rd (in seconds). The paper's j counts only
// the previously reported scenarios (Fig. 1c); j' adds the new scenarios
// and is therefore strictly larger.
type OmissionDegree struct {
	// J is the expected count under the old model (CAN6).
	J float64
	// JPrime is the expected count when the new scenarios are included
	// (CAN6').
	JPrime float64
}

// InconsistentOmissionDegree computes j and j' for an interval of
// reference of trdSeconds.
func (p Params) InconsistentOmissionDegree(trdSeconds float64) OmissionDegree {
	hours := trdSeconds / 3600
	old := p.OldScenarioPerHour() * hours
	return OmissionDegree{
		J:      old,
		JPrime: old + p.NewScenarioPerHour()*hours,
	}
}
