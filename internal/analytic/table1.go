package analytic

import (
	"fmt"
	"strings"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	// Ber is the bit error rate of the row.
	Ber float64
	// NewPerHour is the computed IMOnew/hour (Fig. 3a scenario, expr. 4).
	NewPerHour float64
	// RufinoPerHour is the reference IMO/hour value obtained by Rufino et
	// al. with their own model, as quoted in the paper's Table 1.
	RufinoPerHour float64
	// OldPerHour is the computed IMO*/hour (Fig. 1c scenario, expr. 5).
	OldPerHour float64
}

// rufinoReference are the IMO/hour maxima from Rufino et al. (FTCS'98) as
// quoted in the paper's Table 1. They are external reference data: the
// paper's own model reproduces them in the IMO*/hour column.
var rufinoReference = map[float64]float64{
	1e-4: 3.94e-6,
	1e-5: 3.98e-7,
	1e-6: 3.98e-8,
}

// PaperTable1 is the paper's published Table 1, used by tests and the
// EXPERIMENTS record to compare computed against published values.
var PaperTable1 = []Table1Row{
	{Ber: 1e-4, NewPerHour: 8.80e-3, RufinoPerHour: 3.94e-6, OldPerHour: 3.92e-6},
	{Ber: 1e-5, NewPerHour: 8.91e-5, RufinoPerHour: 3.98e-7, OldPerHour: 3.96e-7},
	{Ber: 1e-6, NewPerHour: 8.92e-7, RufinoPerHour: 3.98e-8, OldPerHour: 3.96e-8},
}

// Table1 computes the paper's Table 1 for the reference configuration
// (N=32, 1 Mbps, 90% load, 110-bit frames, lambda=1e-3/h, delta-t=5 ms)
// and the paper's three bit error rates.
func Table1() []Table1Row {
	return Table1For([]float64{1e-4, 1e-5, 1e-6})
}

// Table1For computes Table 1 rows for arbitrary bit error rates.
func Table1For(bers []float64) []Table1Row {
	rows := make([]Table1Row, 0, len(bers))
	for _, ber := range bers {
		p := Reference(ber)
		rows = append(rows, Table1Row{
			Ber:           ber,
			NewPerHour:    p.NewScenarioPerHour(),
			RufinoPerHour: rufinoReference[ber],
			OldPerHour:    p.OldScenarioPerHour(),
		})
	}
	return rows
}

// RenderTable1 formats rows in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-14s  %-14s  %-14s\n", "ber", "IMOnew/hour", "IMO/hour", "IMO*/hour")
	fmt.Fprintf(&b, "%-8s  %-14s  %-14s  %-14s\n", "", "(Fig. 3a)", "(Fig. 1c)", "(Fig. 1c)")
	for _, r := range rows {
		ruf := "-"
		if r.RufinoPerHour != 0 {
			ruf = fmt.Sprintf("%.2e", r.RufinoPerHour)
		}
		fmt.Fprintf(&b, "%-8.0e  %-14.2e  %-14s  %-14.2e\n", r.Ber, r.NewPerHour, ruf, r.OldPerHour)
	}
	return b.String()
}

// SafetyReference is the aerospace safety number the paper compares
// against: 1e-9 incidents per hour.
const SafetyReference = 1e-9
