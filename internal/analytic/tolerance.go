package analytic

import (
	"fmt"
	"math"
)

// The paper proposes m = 5 because the CAN CRC detects up to five randomly
// distributed errors, and remarks that larger ber values call for larger
// m. This file quantifies that remark: the residual probability that a
// frame suffers MORE than m errors inside MajorCAN_m's end-of-frame
// decision region, and the smallest m that pushes the per-hour rate of
// such frames below a target.

// DecisionRegionBits returns the number of view-bits of MajorCAN_m's
// end-of-frame decision region for an N-node bus: every node's view of
// positions 1..3m+5.
func DecisionRegionBits(m, nodes int) int {
	return nodes * (3*m + 5)
}

// binomTail returns P(X > k) for X ~ Binomial(n, p). The upper tail is
// summed directly (in log space for the leading term) so that extremely
// small tails — far below the float64 epsilon of a 1-CDF computation —
// remain accurate: the m-selection analysis routinely deals with
// probabilities around 1e-20.
func binomTail(n int, p float64, k int) float64 {
	if p <= 0 || k >= n {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if k < 0 {
		return 1
	}
	// Leading term at i = k+1, in log space:
	// log C(n,i) + i log p + (n-i) log(1-p).
	i := k + 1
	logTerm := logBinom(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p)
	term := math.Exp(logTerm)
	sum := term
	ratio := p / (1 - p)
	for ; i < n; i++ {
		term *= float64(n-i) / float64(i+1) * ratio
		sum += term
		if term < sum*1e-18 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// logBinom returns log C(n, k) via the log-gamma function.
func logBinom(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// PExceedsTolerance returns the probability that one frame suffers more
// than m view-bit errors inside MajorCAN_m's decision region, under the
// spatial model with per-view-bit probability ber* = ber/N.
func (p Params) PExceedsTolerance(m int) float64 {
	n := DecisionRegionBits(m, p.Nodes)
	return binomTail(n, p.BerStar(), m)
}

// ExceedsTolerancePerHour converts PExceedsTolerance to an hourly rate at
// the configured traffic.
func (p Params) ExceedsTolerancePerHour(m int) float64 {
	return p.PExceedsTolerance(m) * p.FramesPerHour()
}

// RequiredM returns the smallest m >= 3 for which the hourly rate of
// beyond-tolerance frames falls below target (e.g. the 1e-9/hour safety
// reference). The search accounts for the decision region growing with m.
// It returns an error if no m up to maxM suffices.
func (p Params) RequiredM(target float64, maxM int) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("analytic: target %g must be positive", target)
	}
	if maxM < 3 {
		maxM = 64
	}
	for m := 3; m <= maxM; m++ {
		if p.ExceedsTolerancePerHour(m) < target {
			return m, nil
		}
	}
	return 0, fmt.Errorf("analytic: no m <= %d reaches %g/hour at ber %g", maxM, target, p.Ber)
}

// ToleranceRow is one row of the m-selection table.
type ToleranceRow struct {
	Ber       float64
	RequiredM int
	// ResidualPerHour is the beyond-tolerance rate at RequiredM.
	ResidualPerHour float64
	// MajorCAN5PerHour is the beyond-tolerance rate of the paper's m = 5
	// proposal at this ber.
	MajorCAN5PerHour float64
}

// ToleranceTable computes, for each ber, the smallest m meeting the target
// and the residual rate of the paper's m = 5 proposal.
func ToleranceTable(bers []float64, target float64) ([]ToleranceRow, error) {
	rows := make([]ToleranceRow, 0, len(bers))
	for _, ber := range bers {
		p := Reference(ber)
		m, err := p.RequiredM(target, 64)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ToleranceRow{
			Ber:              ber,
			RequiredM:        m,
			ResidualPerHour:  p.ExceedsTolerancePerHour(m),
			MajorCAN5PerHour: p.ExceedsTolerancePerHour(5),
		})
	}
	return rows, nil
}
