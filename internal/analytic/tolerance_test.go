package analytic

import (
	"math"
	"testing"
)

func TestBinomTailAgainstDirectSum(t *testing.T) {
	// Direct computation for small n.
	direct := func(n int, p float64, k int) float64 {
		sum := 0.0
		for i := k + 1; i <= n; i++ {
			sum += binom(n, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
		}
		return sum
	}
	cases := []struct {
		n int
		p float64
		k int
	}{
		{10, 0.1, 0}, {10, 0.1, 2}, {10, 0.1, 9}, {10, 0.1, 10},
		{50, 0.01, 1}, {50, 0.3, 5}, {200, 0.001, 2},
	}
	for _, c := range cases {
		got := binomTail(c.n, c.p, c.k)
		want := direct(c.n, c.p, c.k)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Errorf("binomTail(%d,%g,%d) = %g, want %g", c.n, c.p, c.k, got, want)
		}
	}
}

func TestBinomTailEdgeCases(t *testing.T) {
	if got := binomTail(10, 0, 3); got != 0 {
		t.Errorf("p=0 tail = %g, want 0", got)
	}
	if got := binomTail(10, 1, 3); got != 1 {
		t.Errorf("p=1, k<n tail = %g, want 1", got)
	}
	if got := binomTail(10, 1, 10); got != 0 {
		t.Errorf("p=1, k=n tail = %g, want 0", got)
	}
}

func TestDecisionRegionBits(t *testing.T) {
	// m=5, 32 nodes: 32 * (3*5+5) = 640 view-bits.
	if got := DecisionRegionBits(5, 32); got != 640 {
		t.Errorf("DecisionRegionBits(5,32) = %d, want 640", got)
	}
}

// At the paper's reference ber values, the proposed m = 5 keeps the
// beyond-tolerance rate below the 1e-9/hour safety reference with huge
// margin — the quantitative backing for the paper's choice.
func TestMajorCAN5MeetsSafetyReferenceAtPaperBers(t *testing.T) {
	for _, ber := range []float64{1e-4, 1e-5, 1e-6} {
		p := Reference(ber)
		rate := p.ExceedsTolerancePerHour(5)
		if rate >= SafetyReference {
			t.Errorf("ber=%.0e: beyond-tolerance rate %.3e >= 1e-9/hour", ber, rate)
		}
		m, err := p.RequiredM(SafetyReference, 64)
		if err != nil {
			t.Fatal(err)
		}
		if m > 5 {
			t.Errorf("ber=%.0e: required m = %d, paper's m=5 would not suffice", ber, m)
		}
	}
}

// The paper's remark: larger ber values require larger m. Find the ber
// where m = 5 stops being enough; RequiredM must be monotone in ber.
func TestRequiredMGrowsWithBer(t *testing.T) {
	prev := 0
	for _, ber := range []float64{1e-6, 1e-4, 1e-2, 5e-2} {
		p := Reference(ber)
		m, err := p.RequiredM(SafetyReference, 64)
		if err != nil {
			t.Fatalf("ber=%g: %v", ber, err)
		}
		if m < prev {
			t.Errorf("RequiredM not monotone: ber=%g gives m=%d after m=%d", ber, m, prev)
		}
		prev = m
	}
	// At some aggressive ber the requirement must exceed the paper's 5.
	p := Reference(5e-2)
	m, err := p.RequiredM(SafetyReference, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 5 {
		t.Errorf("at ber=5e-2 required m = %d, expected > 5", m)
	}
}

func TestToleranceTable(t *testing.T) {
	rows, err := ToleranceTable([]float64{1e-5, 1e-3}, SafetyReference)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ResidualPerHour >= SafetyReference {
			t.Errorf("ber=%g: residual %.3e at m=%d not below target", r.Ber, r.ResidualPerHour, r.RequiredM)
		}
	}
}

func TestRequiredMValidation(t *testing.T) {
	p := Reference(1e-5)
	if _, err := p.RequiredM(0, 10); err == nil {
		t.Error("non-positive target must be rejected")
	}
	// An impossible target within a tiny maxM bound must error.
	hot := Reference(0.2)
	if _, err := hot.RequiredM(1e-30, 3); err == nil {
		t.Error("unreachable target must be reported")
	}
}
