package scenario

import (
	"fmt"

	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CAN5Outcome is the result of the total-order example of the paper's
// Section 2.2: "If a frame, labeled A, is scheduled for retransmission
// when some nodes have received it and some others have not, a second
// frame, labeled B, could gain the arbitration to the retransmission. The
// nodes having received A the first time will see the order A, B, A,
// while the others will see B, A."
type CAN5Outcome struct {
	// A and B are the two frames.
	A, B *frame.Frame
	// OrderY is the delivery order at a Y-set receiver (got A first).
	OrderY []string
	// OrderX is the delivery order at an X-set receiver (missed A first).
	OrderX []string
	// TotalOrderViolated reports that X and Y saw A and B in opposite
	// orders.
	TotalOrderViolated bool
	// DoubleReception reports that Y received A twice.
	DoubleReception bool
	// Recorder holds the bit-level history.
	Recorder *trace.Recorder
}

// CAN5 reproduces the example deterministically on the given policy.
// Under standard CAN the outcome violates Total Order (property CAN5);
// under MajorCAN the inconsistent acceptance cannot arise, so the order is
// total.
func CAN5(policy node.EOFPolicy) (*CAN5Outcome, error) {
	cluster, err := sim.NewCluster(sim.ClusterOptions{Nodes: 5, Policy: policy})
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder("T", "X1", "X2", "Y3", "B-src")
	cluster.Net.AddProbe(rec)
	// The Fig. 1b disturbance: the X set (stations 1, 2) rejects A at the
	// last-but-one EOF bit while Y accepts under the last-bit rule and the
	// transmitter schedules the retransmission.
	cluster.Net.AddDisturber(errmodel.NewScript(
		errmodel.AtEOFBit([]int{1, 2}, policy.EOFBits()-1, 1),
	))

	a := &frame.Frame{ID: 0x300, Data: []byte{0xAA}} // A: low priority
	b := &frame.Frame{ID: 0x100, Data: []byte{0xBB}} // B: wins arbitration
	if err := cluster.Nodes[0].Enqueue(a); err != nil {
		return nil, err
	}
	// B becomes pending at station 4 while A's first transmission is on
	// the wire, so it contends against A's retransmission and wins.
	cluster.Net.Run(40)
	if err := cluster.Nodes[4].Enqueue(b); err != nil {
		return nil, err
	}
	if !cluster.RunUntilQuiet(20000) {
		return nil, fmt.Errorf("scenario CAN5: no quiescence")
	}

	order := func(station int) []string {
		var out []string
		for _, d := range cluster.Deliveries[station] {
			switch {
			case d.Frame.Equal(a):
				out = append(out, "A")
			case d.Frame.Equal(b):
				out = append(out, "B")
			}
		}
		return out
	}
	outc := &CAN5Outcome{
		A:        a,
		B:        b,
		OrderY:   order(3),
		OrderX:   order(1),
		Recorder: rec,
	}
	outc.DoubleReception = cluster.DeliveryCount(3, a) > 1
	// Opposite relative orders of A and B?
	first := func(o []string, s string) int {
		for i, v := range o {
			if v == s {
				return i
			}
		}
		return -1
	}
	ax, bx := first(outc.OrderX, "A"), first(outc.OrderX, "B")
	ay, by := first(outc.OrderY, "A"), first(outc.OrderY, "B")
	if ax >= 0 && bx >= 0 && ay >= 0 && by >= 0 {
		outc.TotalOrderViolated = (ax < bx) != (ay < by)
	}
	return outc, nil
}

// Summary renders the outcome.
func (o *CAN5Outcome) Summary() string {
	s := fmt.Sprintf("Y sees %v, X sees %v", o.OrderY, o.OrderX)
	if o.TotalOrderViolated {
		s += " => TOTAL ORDER VIOLATED (the paper's property CAN5)"
	} else {
		s += " => total order preserved"
	}
	if o.DoubleReception {
		s += "; Y received A twice"
	}
	return s
}
