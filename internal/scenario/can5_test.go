package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// The paper's Section 2.2 justification of "CAN5 - Total Order not
// ensured": nodes having received A the first time see A, B, A while the
// others see B, A.
func TestCAN5StandardCAN(t *testing.T) {
	out, err := CAN5(core.NewStandard())
	if err != nil {
		t.Fatal(err)
	}
	if !out.TotalOrderViolated {
		t.Errorf("standard CAN must violate total order: Y=%v X=%v", out.OrderY, out.OrderX)
	}
	if !out.DoubleReception {
		t.Error("Y must receive A twice")
	}
	wantY := []string{"A", "B", "A"}
	if len(out.OrderY) != 3 || out.OrderY[0] != wantY[0] || out.OrderY[1] != wantY[1] || out.OrderY[2] != wantY[2] {
		t.Errorf("Y order = %v, want %v (the paper's example verbatim)", out.OrderY, wantY)
	}
	wantX := []string{"B", "A"}
	if len(out.OrderX) != 2 || out.OrderX[0] != wantX[0] || out.OrderX[1] != wantX[1] {
		t.Errorf("X order = %v, want %v", out.OrderX, wantX)
	}
	if !strings.Contains(out.Summary(), "TOTAL ORDER VIOLATED") {
		t.Errorf("summary %q", out.Summary())
	}
}

// Under MajorCAN the same disturbance cannot split acceptance, so the
// retransmission race never happens and the order is total.
func TestCAN5MajorCAN(t *testing.T) {
	out, err := CAN5(core.MustMajorCAN(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalOrderViolated {
		t.Errorf("MajorCAN must preserve total order: Y=%v X=%v", out.OrderY, out.OrderX)
	}
	if out.DoubleReception {
		t.Error("MajorCAN must avoid the double reception")
	}
	// Both observers deliver both frames exactly once, in the same order.
	if len(out.OrderX) != 2 || len(out.OrderY) != 2 {
		t.Fatalf("orders X=%v Y=%v, want two deliveries each", out.OrderX, out.OrderY)
	}
	for i := range out.OrderX {
		if out.OrderX[i] != out.OrderY[i] {
			t.Errorf("orders differ: X=%v Y=%v", out.OrderX, out.OrderY)
		}
	}
}

// MinorCAN also fixes this particular race: all nodes reject the first
// attempt consistently, so B then A-retry arrive in one total order.
func TestCAN5MinorCAN(t *testing.T) {
	out, err := CAN5(core.NewMinorCAN())
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalOrderViolated {
		t.Errorf("MinorCAN must preserve total order here: Y=%v X=%v", out.OrderY, out.OrderX)
	}
	if out.DoubleReception {
		t.Error("MinorCAN must avoid the double reception")
	}
}
