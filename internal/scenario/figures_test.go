package scenario

import (
	"repro/internal/errmodel"
	"testing"

	"repro/internal/core"
	"repro/internal/node"
)

// Fig. 1a: the last-bit rule saves consistency — everyone accepts, no
// retransmission of a frame the transmitter considered successful.
func TestFig1aStandardCAN(t *testing.T) {
	out, err := Fig1a(core.NewStandard())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if !out.AllExactlyOnce {
		t.Errorf("want exactly-once everywhere, got deliveries %v", out.DeliveredCount)
	}
	if !out.TxSuccess {
		t.Error("transmitter must consider the frame successful")
	}
	if out.Retransmitted {
		t.Error("no retransmission expected in Fig. 1a")
	}
}

// Fig. 1b: double reception at the Y set.
func TestFig1bStandardCAN(t *testing.T) {
	out, err := Fig1b(core.NewStandard())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if !out.Retransmitted {
		t.Error("the transmitter must retransmit in Fig. 1b")
	}
	if !out.DoubleReception {
		t.Errorf("want double reception at the Y set, got deliveries %v", out.DeliveredCount)
	}
	// X (stations 1,2) get the frame exactly once (from the retransmission);
	// Y (stations 3,4) get it twice.
	for _, x := range defaultX {
		if out.DeliveredCount[x] != 1 {
			t.Errorf("station %d (X) delivered %d, want 1", x, out.DeliveredCount[x])
		}
	}
	for _, y := range defaultY {
		if out.DeliveredCount[y] != 2 {
			t.Errorf("station %d (Y) delivered %d, want 2", y, out.DeliveredCount[y])
		}
	}
	if out.IMO {
		t.Error("Fig. 1b is not an omission scenario")
	}
}

// Fig. 1c: with the transmitter crashing before the retransmission, the
// X set never receives the frame: inconsistent message omission.
func TestFig1cStandardCAN(t *testing.T) {
	out, err := Fig1c(core.NewStandard())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if !out.TxCrashed {
		t.Fatal("the transmitter must have crashed")
	}
	if !out.IMO {
		t.Errorf("want an inconsistent message omission, got deliveries %v", out.DeliveredCount)
	}
	for _, x := range defaultX {
		if out.DeliveredCount[x] != 0 {
			t.Errorf("station %d (X) delivered %d, want 0", x, out.DeliveredCount[x])
		}
	}
	for _, y := range defaultY {
		if out.DeliveredCount[y] != 1 {
			t.Errorf("station %d (Y) delivered %d, want 1", y, out.DeliveredCount[y])
		}
	}
}

// Fig. 2: MinorCAN achieves consistency in all three Fig. 1 scenarios.
func TestFig2MinorCAN(t *testing.T) {
	a, b, c, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("1a", func(t *testing.T) {
		if !a.AllExactlyOnce {
			t.Errorf("want exactly-once, got %v", a.DeliveredCount)
		}
		if a.Retransmitted {
			t.Error("MinorCAN must avoid the retransmission in the 1a scenario")
		}
	})
	t.Run("1b", func(t *testing.T) {
		if !b.AllExactlyOnce {
			t.Errorf("want exactly-once (no double reception), got %v", b.DeliveredCount)
		}
		if !b.Retransmitted {
			t.Error("the frame must be retransmitted (all nodes rejected)")
		}
		if b.DoubleReception {
			t.Error("MinorCAN must avoid the double reception of Fig. 1b")
		}
	})
	t.Run("1c", func(t *testing.T) {
		if c.IMO {
			t.Errorf("MinorCAN must avoid the IMO of Fig. 1c, got %v", c.DeliveredCount)
		}
		// With the transmitter crashed before retransmission nobody may
		// deliver: a consistent omission.
		for i, n := range c.DeliveredCount {
			if i == 0 {
				continue
			}
			if n != 0 {
				t.Errorf("station %d delivered %d, want 0 (consistent omission)", i, n)
			}
		}
	})
}

// The paper, Section 3: "if all the nodes detect an error in the last bit
// of EOF, MinorCAN will consider all the errors not primary and the frame
// will be unnecessarily but consistently retransmitted/rejected."
func TestMinorCANAllLastBitUnnecessaryButConsistent(t *testing.T) {
	policy := core.NewMinorCAN()
	cfg := baseConfig("all nodes disturbed at the last EOF bit", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit([]int{0, 1, 2, 3, 4}, policy.EOFBits(), 1),
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Retransmitted {
		t.Error("the frame must be (unnecessarily) retransmitted")
	}
	if !out.AllExactlyOnce {
		t.Errorf("the retransmission must end exactly-once everywhere, got %v", out.DeliveredCount)
	}
	if out.DoubleReception || out.IMO {
		t.Error("the outcome must be consistent")
	}
}

// Fig. 3a: the new scenario defeats standard CAN with a correct
// transmitter: two disturbances produce an IMO.
func TestFig3aStandardCAN(t *testing.T) {
	out, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if out.TxCrashed {
		t.Fatal("the transmitter must remain correct in Fig. 3a")
	}
	if !out.TxSuccess {
		t.Error("the transmitter must consider the frame successful (no retransmission)")
	}
	if out.Retransmitted {
		t.Error("no retransmission may happen in Fig. 3a")
	}
	if !out.IMO {
		t.Errorf("want an inconsistent message omission, got deliveries %v", out.DeliveredCount)
	}
	for _, x := range defaultX {
		if out.DeliveredCount[x] != 0 {
			t.Errorf("station %d (X) delivered %d, want 0", x, out.DeliveredCount[x])
		}
	}
	for _, y := range defaultY {
		if out.DeliveredCount[y] != 1 {
			t.Errorf("station %d (Y) delivered %d, want 1", y, out.DeliveredCount[y])
		}
	}
}

// Fig. 3b: the same scenario defeats MinorCAN: Y decides "primary error"
// and accepts while X rejects.
func TestFig3bMinorCAN(t *testing.T) {
	out, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if !out.IMO {
		t.Errorf("want an inconsistent message omission, got deliveries %v", out.DeliveredCount)
	}
	if out.Retransmitted {
		t.Error("no retransmission may happen in Fig. 3b")
	}
}

// MajorCAN survives the paper's new scenario: the same two disturbances
// must end consistently.
func TestNewScenarioMajorCAN(t *testing.T) {
	for _, m := range []int{3, 5, 8} {
		policy := core.MustMajorCAN(m)
		out, err := NewScenario(policy)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Quiet {
			t.Fatalf("m=%d: scenario did not quiesce", m)
		}
		if out.IMO {
			t.Errorf("m=%d: MajorCAN must avoid the IMO, got deliveries %v", m, out.DeliveredCount)
		}
		if out.DoubleReception {
			t.Errorf("m=%d: MajorCAN must avoid double reception, got %v", m, out.DeliveredCount)
		}
		if !out.AllExactlyOnce {
			t.Errorf("m=%d: want exactly-once everywhere, got %v", m, out.DeliveredCount)
		}
	}
}

// Fig. 5: MajorCAN_5 withstands five errors: X disturbed at EOF bit 3, the
// transmitter blinded twice, and two sampling-window errors; everyone must
// accept without retransmission.
func TestFig5MajorCAN5(t *testing.T) {
	out, err := Fig5(5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quiet {
		t.Fatal("scenario did not quiesce")
	}
	if !out.AllExactlyOnce {
		t.Errorf("want exactly-once everywhere, got deliveries %v", out.DeliveredCount)
	}
	if out.Retransmitted {
		t.Error("the frame must be accepted on the first attempt")
	}
	if !out.TxSuccess {
		t.Error("the transmitter must consider the frame successful")
	}
}

// Fig. 4: the per-position behaviour table of a MajorCAN_5 node.
func TestFig4MajorCAN5(t *testing.T) {
	rows, err := Fig4(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // CRC error + EOF bits 1..10
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if !r.BusConsistent {
			t.Errorf("%s: bus inconsistent", r.Label())
		}
		switch {
		case r.Position == 0: // CRC error: flag, no sampling, reject
			if r.Extended || r.Sampled || r.Verdict != node.VerdictReject {
				t.Errorf("CRC error row = %+v, want 6-bit flag, no sampling, reject", r)
			}
		case r.Position <= 5: // first sub-field: 6-bit flag + sampling
			if r.Extended {
				t.Errorf("%s: must use the 6-bit flag", r.Label())
			}
			if !r.Sampled {
				t.Errorf("%s: must perform the sampling", r.Label())
			}
		default: // second sub-field: extended flag, accept
			if !r.Extended {
				t.Errorf("%s: must use the extended flag", r.Label())
			}
			if r.Verdict != node.VerdictAccept {
				t.Errorf("%s: must accept the frame", r.Label())
			}
		}
	}
	// A single error in the first sub-field at position p<5 leads to a
	// consistent reject (retransmission); at p=5 the others detect it in
	// the second sub-field and everyone accepts.
	for _, r := range rows[1:6] {
		want := node.VerdictReject
		if r.Position == 5 {
			want = node.VerdictAccept
		}
		if r.Verdict != want {
			t.Errorf("%s: verdict = %v, want %v", r.Label(), r.Verdict, want)
		}
	}
}

// Under MajorCAN the double-reception scenario of Fig. 1b must also end
// exactly-once.
func TestFig1bMajorCAN(t *testing.T) {
	out, err := Fig1b(core.MustMajorCAN(5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllExactlyOnce {
		t.Errorf("want exactly-once, got %v", out.DeliveredCount)
	}
	if out.DoubleReception {
		t.Error("MajorCAN must avoid double reception")
	}
}

// Under MajorCAN the crash scenario of Fig. 1c must end consistently
// (either everyone has the frame or nobody does).
func TestFig1cMajorCAN(t *testing.T) {
	out, err := Fig1c(core.MustMajorCAN(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.IMO {
		t.Errorf("MajorCAN must avoid the IMO, got deliveries %v", out.DeliveredCount)
	}
}
