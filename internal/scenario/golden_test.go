package scenario

import (
	"strings"
	"testing"
)

// Golden regression: the exact Fig. 3a timeline. This pins down the whole
// pipeline — frame encoding, the controllers' per-bit behaviour, the
// disturbance scripting and the renderer — in one artefact. If a
// refactoring shifts any bit of the protocol, this test shows exactly
// where.
func TestFig3aGoldenTimeline(t *testing.T) {
	out, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	first, last, ok := out.Recorder.EOFWindow(0, 1)
	if !ok {
		t.Fatal("no EOF window")
	}
	got := out.Recorder.Render(first, last+16)

	// Station rows, EOF start through the flags and delimiters:
	//   - T (transmitter) samples recessive EOF bits, its view of the last
	//     bit is disturbed ('!'), then it treats the flags as an overload
	//     condition and sends its own overload flag.
	//   - X1/X2 see the disturbance ('!') at the last-but-one bit and
	//     drive 6-bit error flags.
	//   - Y3/Y4 see the first flag bit at their last EOF bit and accept,
	//     driving overload flags.
	want := []string{
		"  T: rrrrrr!dDDDDDDrrrrrrrr",
		" X1: rrrrr!DDDDDDddrrrrrrrr",
		" X2: rrrrr!DDDDDDddrrrrrrrr",
		" Y3: rrrrrrdDDDDDDdrrrrrrrr",
		" Y4: rrrrrrdDDDDDDdrrrrrrrr",
	}
	for _, line := range want {
		if !strings.Contains(got, line) {
			t.Errorf("timeline missing golden row %q:\n%s", line, got)
		}
	}
}

// Golden regression for Fig. 5: the MajorCAN_5 consistency timeline. The
// X set flags at bit 3, the blinded transmitter extends from bit 6, and
// the sampling windows absorb the remaining two errors.
func TestFig5GoldenTimeline(t *testing.T) {
	out, err := Fig5(5)
	if err != nil {
		t.Fatal(err)
	}
	first, last, ok := out.Recorder.EOFWindow(0, 1)
	if !ok {
		t.Fatal("no EOF window")
	}
	got := out.Recorder.Render(first, last+4)

	// The transmitter: two disturbed samples ('!!') hide the X flags, the
	// next dominant is in the second sub-field, and the extended flag runs
	// through position 3m+5 = 20.
	if !strings.Contains(got, "T: rrr!!dDDDDDDDDDDDDDD") {
		t.Errorf("transmitter row not golden:\n%s", got)
	}
	// X receivers: disturbance at bit 3, 6-bit flag, one corrupted
	// sampling-window bit ('!'), acceptance.
	if !strings.Contains(got, "X1: rr!DDDDDDddd!ddddddd") {
		t.Errorf("X1 row not golden:\n%s", got)
	}
	// Y receivers: flag one bit later, a different corrupted window bit.
	if !strings.Contains(got, "Y3: rrrdDDDDDDdddd!ddddd") {
		t.Errorf("Y3 row not golden:\n%s", got)
	}
}
