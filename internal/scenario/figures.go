package scenario

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
)

// Default station layout for the figure scenarios: station 0 is the
// transmitter, stations 1-2 form the X set and stations 3-4 the Y set.
var (
	defaultX = []int{1, 2}
	defaultY = []int{3, 4}
)

const defaultNodes = 5

// lastEOF returns the 1-based EOF-relative position of the last EOF bit
// for the given policy.
func lastEOF(p node.EOFPolicy) int { return p.EOFBits() }

func baseConfig(name string, policy node.EOFPolicy) Config {
	return Config{
		Name:   name,
		Policy: policy,
		Nodes:  defaultNodes,
		X:      append([]int(nil), defaultX...),
		Y:      append([]int(nil), defaultY...),
	}
}

// Fig1a reproduces Fig. 1a: the X set sees an incorrect dominant value in
// the last bit of the EOF; the last-bit rule makes every node accept the
// frame consistently.
func Fig1a(policy node.EOFPolicy) (*Outcome, error) {
	cfg := baseConfig("Fig. 1a", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy), 1),
	}
	return Run(cfg)
}

// Fig1b reproduces Fig. 1b: a disturbance corrupts the last but one EOF bit
// of the X set. In standard CAN the X set rejects and the transmitter
// retransmits, but the Y set accepts under the last-bit rule and therefore
// receives the frame twice (double reception).
func Fig1b(policy node.EOFPolicy) (*Outcome, error) {
	cfg := baseConfig("Fig. 1b", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy)-1, 1),
	}
	return Run(cfg)
}

// Fig1c reproduces Fig. 1c: the Fig. 1b scenario, but the transmitter
// fails before the retransmission. In standard CAN the Y set keeps the
// frame while the X set never receives it: an inconsistent message
// omission.
func Fig1c(policy node.EOFPolicy) (*Outcome, error) {
	cfg := baseConfig("Fig. 1c", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy)-1, 1),
	}
	cfg.CrashTxOnErrorFlag = true
	return Run(cfg)
}

// Fig2 reproduces Fig. 2: MinorCAN achieving consistency in the scenarios
// of Fig. 1. It returns the outcomes of the three sub-scenarios run under
// the MinorCAN policy.
func Fig2() (a, b, c *Outcome, err error) {
	p := core.NewMinorCAN()
	if a, err = Fig1a(p); err != nil {
		return nil, nil, nil, err
	}
	a.Name = "Fig. 2 (1a under MinorCAN)"
	if b, err = Fig1b(p); err != nil {
		return nil, nil, nil, err
	}
	b.Name = "Fig. 2 (1b under MinorCAN)"
	if c, err = Fig1c(p); err != nil {
		return nil, nil, nil, err
	}
	c.Name = "Fig. 2 (1c under MinorCAN)"
	return a, b, c, nil
}

// Fig3a reproduces the paper's new inconsistency scenario on standard CAN:
// the X set is disturbed at the last but one EOF bit (it rejects and sends
// an error flag), the Y set sees that flag in its last EOF bit (it accepts
// under the last-bit rule), and an additional disturbance hides the flag
// from the transmitter's view of its last EOF bit — so no retransmission
// happens even though the transmitter stays correct. Two disturbances are
// enough for an inconsistent message omission.
func Fig3a() (*Outcome, error) {
	policy := core.NewStandard()
	cfg := baseConfig("Fig. 3a", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy)-1, 1),
		errmodel.AtEOFBit([]int{0}, lastEOF(policy), 1),
	}
	return Run(cfg)
}

// Fig3b reproduces the same scenario under MinorCAN: the Y set decides it
// detected a primary error (it samples the transmitter's overload flag
// after its own flag) and accepts, while the X set rejects — MinorCAN is
// defeated too.
func Fig3b() (*Outcome, error) {
	policy := core.NewMinorCAN()
	cfg := baseConfig("Fig. 3b", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy)-1, 1),
		errmodel.AtEOFBit([]int{0}, lastEOF(policy), 1),
	}
	return Run(cfg)
}

// Fig5 reproduces Fig. 5: MajorCAN_5 achieving consistency in the presence
// of five errors. The X set detects a dominant bit in the 3rd EOF bit and
// sends a 6-bit error flag; the Y set sees it one bit later; the
// transmitter misses it twice (disturbances in its view of EOF bits 4 and
// 5) and so first detects the error in the 6th bit — the second sub-field —
// accepting and notifying with an extended error flag; two further
// disturbances corrupt single sampling-window bits of X and Y, which the
// majority vote absorbs. Every node accepts.
func Fig5(m int) (*Outcome, error) {
	policy, err := core.NewMajorCAN(m)
	if err != nil {
		return nil, err
	}
	cfg := baseConfig(fmt.Sprintf("Fig. 5 (MajorCAN_%d)", m), policy)
	win := policy.WindowStart() // m+7
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, 3, 1),     // error seen by X at EOF bit 3
		errmodel.AtEOFBit([]int{0}, 4, 1),     // transmitter misses the flag ...
		errmodel.AtEOFBit([]int{0}, 5, 1),     // ... twice
		errmodel.AtEOFBit(defaultX, win+1, 1), // sampling-window error at X
		errmodel.AtEOFBit(defaultY, win+3, 1), // sampling-window error at Y
	}
	return Run(cfg)
}

// NewScenario runs the paper's Fig. 3 disturbance pattern (last-but-one
// bit at X, last bit at the transmitter) under an arbitrary policy. Under
// MajorCAN the same two disturbances must NOT produce an inconsistency.
func NewScenario(policy node.EOFPolicy) (*Outcome, error) {
	cfg := baseConfig("new scenario (Fig. 3 pattern)", policy)
	cfg.Rules = []*errmodel.Rule{
		errmodel.AtEOFBit(defaultX, lastEOF(policy)-1, 1),
		errmodel.AtEOFBit([]int{0}, lastEOF(policy), 1),
	}
	return Run(cfg)
}

// Fig4Row describes the behaviour of a MajorCAN node detecting an error at
// one position, as in the paper's Fig. 4.
type Fig4Row struct {
	// Position is the 1-based EOF bit position of the error; 0 denotes a
	// CRC error (flag from the first EOF bit, no sampling).
	Position int
	// Extended reports whether the node notified acceptance with an
	// extended error flag.
	Extended bool
	// Sampled reports whether the node performed the acceptance sampling.
	Sampled bool
	// Verdict is the node's final decision.
	Verdict node.Verdict
	// BusConsistent reports whether all live stations reached the same
	// verdict for the first transmission attempt.
	BusConsistent bool
}

// Label renders the row's position like the paper ("CRC error",
// "Error in 3rd", ...).
func (r Fig4Row) Label() string {
	if r.Position == 0 {
		return "CRC error"
	}
	return fmt.Sprintf("Error in %s bit of EOF", ordinal(r.Position))
}

func ordinal(n int) string {
	switch n % 10 {
	case 1:
		if n%100 != 11 {
			return fmt.Sprintf("%dst", n)
		}
	case 2:
		if n%100 != 12 {
			return fmt.Sprintf("%dnd", n)
		}
	case 3:
		if n%100 != 13 {
			return fmt.Sprintf("%drd", n)
		}
	}
	return fmt.Sprintf("%dth", n)
}

// Fig4 reproduces the behaviour table of Fig. 4 for MajorCAN_m: for every
// EOF bit position (and for a CRC error) a single receiver is disturbed at
// that position and its flag type, sampling activity and verdict are
// recorded.
func Fig4(m int) ([]Fig4Row, error) {
	policy, err := core.NewMajorCAN(m)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, 0, 2*m+1)

	// CRC error: corrupt one CRC bit in the view of station 1 so its CRC
	// check fails while everyone else's succeeds.
	crcRule := &errmodel.Rule{
		Stations: []int{1},
		Count:    1,
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			return v.Phase == bus.PhaseFrame && v.Field == frame.FieldCRC && v.Index == 7
		},
	}
	row, err := fig4Run(policy, crcRule, 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	for pos := 1; pos <= 2*m; pos++ {
		rule := errmodel.AtEOFBit([]int{1}, pos, 1)
		row, err := fig4Run(policy, rule, pos)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
