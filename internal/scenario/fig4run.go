package scenario

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/node"
)

// fig4Run executes one Fig. 4 probe: a single disturbance rule applied to
// station 1 under the given MajorCAN policy, observing how that station
// handles the error.
func fig4Run(policy node.EOFPolicy, rule *errmodel.Rule, position int) (Fig4Row, error) {
	cfg := baseConfig(fmt.Sprintf("Fig. 4 position %d", position), policy)
	cfg.Rules = []*errmodel.Rule{rule}
	out, err := Run(cfg)
	if err != nil {
		return Fig4Row{}, err
	}
	row := Fig4Row{Position: position}

	// Inspect station 1's phases during the first transmission attempt.
	for _, rec := range out.Recorder.Records() {
		v := rec.Views[1]
		if v.Attempts != 1 {
			continue
		}
		switch v.Phase {
		case bus.PhaseExtFlag:
			row.Extended = true
		case bus.PhaseSampling:
			row.Sampled = true
		}
	}
	if len(out.Cluster.Verdicts[1]) == 0 {
		return Fig4Row{}, fmt.Errorf("fig4 position %d: station 1 recorded no verdict", position)
	}
	row.Verdict = out.Cluster.Verdicts[1][0]

	// Bus consistency of the first attempt: every live station must have
	// reached the same first verdict.
	row.BusConsistent = true
	for i := 0; i < len(out.Cluster.Verdicts); i++ {
		vs := out.Cluster.Verdicts[i]
		if len(vs) == 0 {
			return Fig4Row{}, fmt.Errorf("fig4 position %d: station %d recorded no verdict", position, i)
		}
		if vs[0] != row.Verdict {
			row.BusConsistent = false
		}
	}
	return row, nil
}

// RenderFig4 prints the Fig. 4 table in the paper's style.
func RenderFig4(rows []Fig4Row) string {
	s := ""
	for _, r := range rows {
		flag := "6-bit error flag"
		if r.Extended {
			flag = "extended error flag"
		}
		sampling := "no sampling is performed"
		if r.Sampled {
			sampling = "sampling is performed"
		}
		verdict := "frame is rejected"
		if r.Verdict == node.VerdictAccept {
			verdict = "frame is accepted"
		}
		consistent := "bus consistent"
		if !r.BusConsistent {
			consistent = "BUS INCONSISTENT"
		}
		s += fmt.Sprintf("%-28s %-20s %-26s %-18s %s\n", r.Label(), flag, sampling, verdict, consistent)
	}
	return s
}
