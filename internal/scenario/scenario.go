// Package scenario reproduces the error scenarios of the MajorCAN paper's
// figures as deterministic simulations: the classic last-bit scenarios of
// Rufino et al. (Fig. 1), MinorCAN's behaviour on them (Fig. 2), the
// paper's new inconsistency scenarios (Fig. 3), the per-bit behaviour of a
// MajorCAN_5 node (Fig. 4) and MajorCAN's consistency under five errors
// (Fig. 5).
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestFrame returns the frame used by all figure scenarios.
func TestFrame() *frame.Frame {
	return &frame.Frame{ID: 0x100, Data: []byte{0xA5, 0x5A}}
}

// Config describes one scripted scenario. Station 0 is always the
// transmitter.
type Config struct {
	// Name labels the scenario ("Fig. 1b", ...).
	Name string
	// Policy is the protocol variant under test.
	Policy node.EOFPolicy
	// Nodes is the total number of stations (transmitter included).
	Nodes int
	// X and Y are the receiver sets of the paper's figures (station
	// indices).
	X, Y []int
	// Rules are the scripted disturbances.
	Rules []*errmodel.Rule
	// CrashTxOnErrorFlag crashes the transmitter as soon as it starts
	// signalling an error (the "failure before retransmission" of Fig. 1c).
	CrashTxOnErrorFlag bool
	// MaxSlots bounds the simulation (default 4000).
	MaxSlots int
}

// Outcome is the result of one scenario run.
type Outcome struct {
	Name   string
	Policy string
	// Frame is the frame under test.
	Frame *frame.Frame
	// DeliveredCount[i] is how many copies station i delivered.
	DeliveredCount []int
	// TxSuccess reports whether the transmitter considered the frame
	// successfully sent at least once.
	TxSuccess bool
	// Retransmitted reports whether a second transmission attempt happened.
	Retransmitted bool
	// TxCrashed reports whether the transmitter was crashed by the script.
	TxCrashed bool
	// IMO (inconsistent message omission) reports that among the correct
	// (non-crashed) receivers some delivered the message and some never
	// did — the Agreement violation of the paper.
	IMO bool
	// DoubleReception reports that some receiver delivered the frame more
	// than once (At-most-once violation).
	DoubleReception bool
	// AllExactlyOnce reports that every correct receiver delivered exactly
	// one copy.
	AllExactlyOnce bool
	// Quiet reports that the bus reached quiescence within the slot budget.
	Quiet bool
	// Recorder holds the full bit-level history for rendering.
	Recorder *trace.Recorder
	// Cluster gives access to the simulated nodes.
	Cluster *sim.Cluster
}

// Run executes a scenario.
func Run(cfg Config) (*Outcome, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("scenario %s: need at least 2 nodes", cfg.Name)
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 4000
	}
	cluster, err := sim.NewCluster(sim.ClusterOptions{Nodes: cfg.Nodes, Policy: cfg.Policy})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", cfg.Name, err)
	}
	names := make([]string, cfg.Nodes)
	names[0] = "T"
	for _, x := range cfg.X {
		names[x] = fmt.Sprintf("X%d", x)
	}
	for _, y := range cfg.Y {
		names[y] = fmt.Sprintf("Y%d", y)
	}
	rec := trace.NewRecorder(names...)
	cluster.Net.AddProbe(rec)
	cluster.Net.AddDisturber(errmodel.NewScript(cfg.Rules...))
	if cfg.CrashTxOnErrorFlag {
		cluster.Net.AddProbe(&crashOnErrorFlag{ctrl: cluster.Nodes[0]})
	}

	f := TestFrame()
	if err := cluster.Nodes[0].Enqueue(f); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", cfg.Name, err)
	}
	quiet := cluster.RunUntilQuiet(maxSlots)

	out := &Outcome{
		Name:           cfg.Name,
		Policy:         cfg.Policy.Name(),
		Frame:          f,
		DeliveredCount: make([]int, cfg.Nodes),
		TxSuccess:      cluster.Nodes[0].TxSuccesses() > 0,
		TxCrashed:      cluster.Nodes[0].Crashed(),
		Quiet:          quiet,
		Recorder:       rec,
		Cluster:        cluster,
	}
	for i := 0; i < cfg.Nodes; i++ {
		out.DeliveredCount[i] = cluster.DeliveryCount(i, f)
	}
	// A retransmission happened if any station observed more than one SOF.
	for _, r := range rec.Records() {
		for _, v := range r.Views {
			if v.Attempts > 1 {
				out.Retransmitted = true
			}
		}
	}
	some, none := false, false
	allOnce := true
	for i := 1; i < cfg.Nodes; i++ {
		if cluster.Nodes[i].Crashed() {
			continue
		}
		switch {
		case out.DeliveredCount[i] == 0:
			none = true
			allOnce = false
		case out.DeliveredCount[i] >= 1:
			some = true
			if out.DeliveredCount[i] > 1 {
				out.DoubleReception = true
				allOnce = false
			}
		}
	}
	out.IMO = some && none
	out.AllExactlyOnce = allOnce
	return out, nil
}

// crashOnErrorFlag crashes the controller the first time it is observed in
// an error-flag phase: the transmitter fails right after scheduling the
// retransmission and before performing it (Fig. 1c).
type crashOnErrorFlag struct {
	ctrl *node.Controller
	done bool
}

var _ bus.Probe = (*crashOnErrorFlag)(nil)

func (c *crashOnErrorFlag) OnBit(_ uint64, _ bitstream.Level, _, _ []bitstream.Level, views []bus.ViewContext) {
	if c.done {
		return
	}
	// Station 0 is always the transmitter in scenario configs.
	if views[0].Phase == bus.PhaseErrorFlag {
		c.ctrl.Crash()
		c.done = true
	}
}

// Summary renders a one-paragraph human-readable outcome.
func (o *Outcome) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s under %s: ", o.Name, o.Policy)
	fmt.Fprintf(&b, "deliveries per station %v", o.DeliveredCount)
	if o.TxCrashed {
		b.WriteString(", transmitter crashed")
	} else if o.TxSuccess {
		b.WriteString(", transmitter succeeded")
	} else {
		b.WriteString(", transmitter still retrying")
	}
	if o.Retransmitted {
		b.WriteString(", retransmission occurred")
	}
	switch {
	case o.IMO:
		b.WriteString(" => INCONSISTENT MESSAGE OMISSION (Agreement violated)")
	case o.DoubleReception:
		b.WriteString(" => double reception (At-most-once violated)")
	case o.AllExactlyOnce:
		b.WriteString(" => consistent, exactly-once everywhere")
	default:
		b.WriteString(" => consistent omission (nobody delivered)")
	}
	return b.String()
}
