package scenario

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Name: "bad", Policy: core.NewStandard(), Nodes: 1}); err == nil {
		t.Error("single-node scenario must be rejected")
	}
}

func TestSummaryTexts(t *testing.T) {
	tests := []struct {
		name string
		run  func() (*Outcome, error)
		want []string
	}{
		{
			"exactly once",
			func() (*Outcome, error) { return Fig1a(core.NewStandard()) },
			[]string{"consistent", "exactly-once", "transmitter succeeded"},
		},
		{
			"double reception",
			func() (*Outcome, error) { return Fig1b(core.NewStandard()) },
			[]string{"double reception", "retransmission occurred"},
		},
		{
			"omission",
			Fig3a,
			[]string{"INCONSISTENT MESSAGE OMISSION"},
		},
		{
			"crash",
			func() (*Outcome, error) { return Fig1c(core.NewMinorCAN()) },
			[]string{"transmitter crashed", "consistent omission"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			s := out.Summary()
			for _, want := range tt.want {
				if !strings.Contains(s, want) {
					t.Errorf("summary %q missing %q", s, want)
				}
			}
		})
	}
}

// The recorded timeline around the first EOF must show the scripted
// disturbances as '!' symbols and the error flags as driven dominants.
func TestTimelineShowsDisturbancesAndFlags(t *testing.T) {
	out, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	first, last, ok := out.Recorder.EOFWindow(0, 1)
	if !ok {
		t.Fatal("no EOF window recorded for the transmitter")
	}
	render := out.Recorder.Render(first-2, last+20)
	if !strings.Contains(render, "!") {
		t.Errorf("render must mark disturbed samples:\n%s", render)
	}
	if !strings.Contains(render, "DDDDDD") {
		t.Errorf("render must show a six-bit error flag:\n%s", render)
	}
}

// The EOF windows of the stations in a scenario are aligned (no framing
// desync in the figure scenarios).
func TestEOFWindowsAligned(t *testing.T) {
	out, err := Fig1b(core.NewStandard())
	if err != nil {
		t.Fatal(err)
	}
	firstT, _, ok := out.Recorder.EOFWindow(0, 1)
	if !ok {
		t.Fatal("transmitter has no EOF window")
	}
	for station := 1; station < 5; station++ {
		first, _, ok := out.Recorder.EOFWindow(station, 1)
		if !ok {
			t.Fatalf("station %d has no EOF window", station)
		}
		if first != firstT {
			t.Errorf("station %d EOF starts at %d, transmitter at %d", station, first, firstT)
		}
	}
}

// Fig. 4 rows have readable labels in the paper's style.
func TestFig4Labels(t *testing.T) {
	if got := (Fig4Row{Position: 0}).Label(); got != "CRC error" {
		t.Errorf("label = %q", got)
	}
	for pos, want := range map[int]string{
		1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 10: "10th", 11: "11th", 21: "21st",
	} {
		got := (Fig4Row{Position: pos}).Label()
		if !strings.Contains(got, want) {
			t.Errorf("position %d label = %q, want ordinal %q", pos, got, want)
		}
	}
}

func TestRenderFig4Text(t *testing.T) {
	rows, err := Fig4(5)
	if err != nil {
		t.Fatal(err)
	}
	text := RenderFig4(rows)
	for _, want := range []string{"CRC error", "extended error flag", "sampling is performed", "frame is accepted"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}

// The scenario phases recorded for the transmitter in Fig. 5 include the
// extended flag phase (it detects the error in the second sub-field).
func TestFig5TransmitterExtends(t *testing.T) {
	out, err := Fig5(5)
	if err != nil {
		t.Fatal(err)
	}
	sawExt := false
	for _, span := range out.Recorder.Phases(0) {
		if span.Phase == bus.PhaseExtFlag {
			sawExt = true
		}
	}
	if !sawExt {
		t.Error("the Fig. 5 transmitter must notify acceptance with an extended flag")
	}
}
