package verify

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// crashAtExtFlagPos crashes a station when its extended flag reaches the
// given 1-based EOF-relative position (the bit about to be driven has
// already gone out; the crash silences everything after it).
type crashAtExtFlagPos struct {
	cluster *sim.Cluster
	station int
	pos     int
	done    bool
}

func (p *crashAtExtFlagPos) OnBit(_ uint64, _ bitstream.Level, _, _ []bitstream.Level, views []bus.ViewContext) {
	if p.done {
		return
	}
	if views[p.station].Phase == bus.PhaseExtFlag && views[p.station].EOFRel == p.pos {
		p.cluster.Nodes[p.station].Crash()
		p.done = true
	}
}

// voteSplitRun replays the Fig. 5 pattern with the transmitter crashing
// after its extended flag covered exactly `covered` sampling-window bits,
// and with one corrupted window bit at station 2.
func voteSplitRun(t *testing.T, crashPos int) (*sim.Cluster, *frame.Frame) {
	t.Helper()
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: core.MustMajorCAN(5)})
	c.Net.AddDisturber(errmodel.NewScript(
		errmodel.AtEOFBit([]int{1}, 3, 1),  // receiver 1 sees the first error (flag 4..9)
		errmodel.AtEOFBit([]int{0}, 4, 1),  // the transmitter is blinded ...
		errmodel.AtEOFBit([]int{0}, 5, 1),  // ... until the second sub-field: it extends
		errmodel.AtEOFBit([]int{2}, 12, 1), // receiver 2 loses one window vote
	))
	c.Net.AddProbe(&crashAtExtFlagPos{cluster: c, station: 0, pos: crashPos})
	f := &frame.Frame{ID: 0x123, Data: []byte{0xCA, 0xFE}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(8000) {
		t.Fatal("no quiescence")
	}
	return c, f
}

// TestMajorCANCrashVoteSplitGap characterises the second limitation this
// reproduction found in MajorCAN as specified (see DESIGN.md, "Findings
// beyond the paper"): a transmitter that crashes fail-silently in the
// middle of its extended (acceptance) error flag leaves the samplers a
// truncated notification. If the truncation lands exactly at the majority
// threshold (m dominant window bits on the wire), a single additional
// window-bit error at one sampler splits the vote: that sampler rejects
// while the others accept — an inconsistent message omission from four
// channel errors (within the m = 5 tolerance) plus one fail-silent crash,
// both elements of the paper's stated fault model. The majority vote
// absorbs m-1 corruptions only when the notification itself is complete.
func TestMajorCANCrashVoteSplitGap(t *testing.T) {
	// Crash after window position 16: the wire carries exactly m = 5
	// dominant window bits (12..16). The corrupted sampler counts 4.
	c, f := voteSplitRun(t, 16)
	if got := c.DeliveryCount(1, f); got != 1 {
		t.Errorf("station 1 delivered %d, want 1 (accept)", got)
	}
	if got := c.DeliveryCount(3, f); got != 1 {
		t.Errorf("station 3 delivered %d, want 1 (accept)", got)
	}
	if got := c.DeliveryCount(2, f); got != 0 {
		t.Errorf("station 2 delivered %d, want 0 (the documented vote split)", got)
	}
}

// One bit to either side of the threshold the protocol stays consistent —
// the split exists only at the exact boundary.
func TestMajorCANCrashVoteSplitBoundary(t *testing.T) {
	t.Run("one bit earlier: everyone rejects", func(t *testing.T) {
		c, f := voteSplitRun(t, 15)
		for i := 1; i < 4; i++ {
			// The frame is rejected by all on the first attempt, but the
			// transmitter is crashed, so nobody ever delivers: a consistent
			// omission with a failed transmitter (allowed by AB1/AB2).
			if got := c.DeliveryCount(i, f); got != 0 {
				t.Errorf("station %d delivered %d, want 0", i, got)
			}
		}
	})
	t.Run("one bit later: everyone accepts", func(t *testing.T) {
		c, f := voteSplitRun(t, 17)
		for i := 1; i < 4; i++ {
			if got := c.DeliveryCount(i, f); got != 1 {
				t.Errorf("station %d delivered %d, want 1", i, got)
			}
		}
	})
}
