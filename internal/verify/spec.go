package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Spec is the canonical, JSON-serialisable description of an exhaustive
// verification job: the Config fields with the protocol by name, so the
// spec travels over the wire and hashes to a stable job digest.
// Parallelism is excluded — the enumerated pattern space and the verdict
// are independent of worker count.
type Spec struct {
	// Protocol selects the variant, as accepted by core.ParsePolicy.
	Protocol string `json:"protocol"`
	// Stations is the bus size (station 0 transmits; default 4).
	Stations int `json:"stations"`
	// MaxFlips bounds the pattern size k.
	MaxFlips int `json:"maxFlips"`
	// Positions is the number of EOF-relative positions to disturb
	// (0 = the policy's full decision region).
	Positions int `json:"positions,omitempty"`
	// CrashSweep additionally crashes each station at its first flag.
	CrashSweep bool `json:"crashSweep,omitempty"`
	// SlotsBudget bounds each simulation (default 6000).
	SlotsBudget int `json:"slotsBudget,omitempty"`
	// PatternStart and PatternCount window the pattern enumeration to a
	// contiguous index range (see Config.PatternStart): the fleet
	// coordinator's shard handle. Zero values mean the whole space.
	PatternStart int `json:"patternStart,omitempty"`
	PatternCount int `json:"patternCount,omitempty"`
}

// Normalize fills defaulted fields in place.
func (s *Spec) Normalize() {
	if s.Stations == 0 {
		s.Stations = 4
	}
	if s.MaxFlips == 0 {
		s.MaxFlips = 1
	}
}

// Validate checks the spec's structural invariants.
func (s Spec) Validate() error {
	if _, err := core.ParsePolicy(s.Protocol); err != nil {
		return fmt.Errorf("verify: spec: %w", err)
	}
	if s.Stations != 0 && s.Stations < 3 {
		return fmt.Errorf("verify: spec needs >= 3 stations, got %d", s.Stations)
	}
	if s.MaxFlips < 0 {
		return fmt.Errorf("verify: spec maxFlips %d negative", s.MaxFlips)
	}
	if s.PatternStart < 0 {
		return fmt.Errorf("verify: spec patternStart %d negative", s.PatternStart)
	}
	if s.PatternCount < 0 {
		return fmt.Errorf("verify: spec patternCount %d negative", s.PatternCount)
	}
	return nil
}

// PatternSpace returns the total size of the spec's pattern enumeration,
// ignoring any PatternStart/PatternCount window — what a coordinator
// partitions into shard ranges.
func (s Spec) PatternSpace() (int, error) {
	s.Normalize()
	cfg, err := s.Config(1)
	if err != nil {
		return 0, err
	}
	return cfg.PatternSpace(), nil
}

// Config resolves the spec to a Config with the given parallelism.
func (s Spec) Config(parallelism int) (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	policy, err := core.ParsePolicy(s.Protocol)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Policy:       policy,
		Stations:     s.Stations,
		MaxFlips:     s.MaxFlips,
		Positions:    s.Positions,
		SlotsBudget:  s.SlotsBudget,
		CrashSweep:   s.CrashSweep,
		Parallelism:  parallelism,
		PatternStart: s.PatternStart,
		PatternCount: s.PatternCount,
	}, nil
}

// SpecOutcome is the serialisable result of a verification job.
type SpecOutcome struct {
	Spec       Spec     `json:"spec"`
	Checked    int      `json:"checked"`
	PatternsBy []int    `json:"patternsBy"`
	Consistent bool     `json:"consistent"`
	Violations []string `json:"violations"`
}

// RunSpec executes a verification spec: the entry point the simulation
// service's scheduler and the verify CLI share. Parallelism bounds
// concurrent simulations; cancelling ctx aborts the enumeration.
func RunSpec(ctx context.Context, spec Spec, parallelism int) (*SpecOutcome, error) {
	spec.Normalize()
	cfg, err := spec.Config(parallelism)
	if err != nil {
		return nil, err
	}
	rep, err := ExhaustiveContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &SpecOutcome{
		Spec:       spec,
		Checked:    rep.Checked,
		PatternsBy: rep.PatternsBy,
		Consistent: rep.Consistent(),
		Violations: make([]string, 0, len(rep.Violations)),
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	return out, nil
}
