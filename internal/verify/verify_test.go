package verify

import (
	"testing"

	"repro/internal/core"
)

// Exhaustive single-error verification of MinorCAN: the paper's Section 3
// claim, checked over the COMPLETE one-flip fault space of the decision
// region ("it can be proven, by checking all the possible cases, that
// MinorCAN achieves consistency"). This is that check, mechanised.
func TestMinorCANSingleErrorExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:   core.NewMinorCAN(),
		Stations: 4,
		MaxFlips: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Errorf("MinorCAN must survive every single error:\n%s", rep.Summary())
	}
	if rep.Checked < 30 {
		t.Errorf("only %d patterns checked; fault space seems truncated", rep.Checked)
	}
}

// Standard CAN also survives every single error (the last-bit rule's whole
// purpose) — double receptions and omissions need at least two flips or a
// crash.
func TestStandardCANSingleErrorExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:   core.NewStandard(),
		Stations: 4,
		MaxFlips: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A single flip at the last-but-one EOF bit of one receiver produces
	// the Fig. 1b double reception: standard CAN is NOT single-error
	// consistent.
	if rep.Consistent() {
		t.Error("standard CAN must show single-error double receptions (Fig. 1b)")
	}
	for _, v := range rep.Violations {
		if v.Outcome == Omission {
			t.Errorf("standard CAN must not show single-error omissions, got %s", v)
		}
	}
}

// The exhaustive two-flip fault space of standard CAN contains the paper's
// Fig. 3a omission pattern.
func TestStandardCANTwoErrorOmissionsExist(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:   core.NewStandard(),
		Stations: 4,
		MaxFlips: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundOmission := false
	foundFig3a := false
	for _, v := range rep.Violations {
		if v.Outcome != Omission {
			continue
		}
		foundOmission = true
		if len(v.Pattern) != 2 {
			continue
		}
		// Fig. 3a: a receiver at the last-but-one bit (6) and the
		// transmitter at the last bit (7).
		a, b := v.Pattern[0], v.Pattern[1]
		if (a.Station != 0 && a.Pos == 6 && b.Station == 0 && b.Pos == 7) ||
			(b.Station != 0 && b.Pos == 6 && a.Station == 0 && a.Pos == 7) {
			foundFig3a = true
		}
	}
	if !foundOmission {
		t.Error("two flips must suffice for an omission in standard CAN (the paper's claim)")
	}
	if !foundFig3a {
		t.Error("the exhaustive search must rediscover the paper's Fig. 3a pattern")
	}
	t.Logf("standard CAN, k<=2: %d patterns, %d violations", rep.Checked, len(rep.Violations))
}

// MinorCAN's two-flip fault space contains omissions (Fig. 3b) — the
// paper's reason for abandoning it.
func TestMinorCANTwoErrorOmissionsExist(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:   core.NewMinorCAN(),
		Stations: 4,
		MaxFlips: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	omissions := 0
	for _, v := range rep.Violations {
		if v.Outcome == Omission {
			omissions++
		}
	}
	if omissions == 0 {
		t.Error("MinorCAN must show two-error omissions (Fig. 3b)")
	}
	t.Logf("MinorCAN, k<=2: %d patterns, %d violations (%d omissions)", rep.Checked, len(rep.Violations), omissions)
}

// The centrepiece: MajorCAN_5's COMPLETE two-flip fault space over the
// whole decision region (positions 1..3m+5, all stations) contains no
// inconsistency. Note two flips are exactly what defeats CAN and MinorCAN.
func TestMajorCAN5TwoErrorExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:   core.MustMajorCAN(5),
		Stations: 4,
		MaxFlips: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Errorf("MajorCAN_5 must survive every <=2-flip pattern:\n%s", rep.Summary())
	}
	t.Logf("MajorCAN_5, k<=2: %d patterns, all consistent", rep.Checked)
}

// MajorCAN_3 at its design limit: every <=3-flip pattern over its decision
// region must stay consistent (tolerance m = 3).
func TestMajorCAN3ThreeErrorExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive k=3 space in -short mode")
	}
	rep, err := Exhaustive(Config{
		Policy:   core.MustMajorCAN(3),
		Stations: 3,
		MaxFlips: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Errorf("MajorCAN_3 must survive every <=3-flip pattern:\n%s", rep.Summary())
	}
	t.Logf("MajorCAN_3, k<=3: %d patterns, all consistent", rep.Checked)
}

// The guarantee is not an artefact of the 4-station default: the complete
// <=2-flip space stays consistent across bus sizes.
func TestMajorCAN5TwoErrorExhaustiveAcrossBusSizes(t *testing.T) {
	for _, stations := range []int{3, 5, 6} {
		rep, err := Exhaustive(Config{
			Policy:   core.MustMajorCAN(5),
			Stations: stations,
			MaxFlips: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Consistent() {
			t.Errorf("stations=%d: %s", stations, rep.Summary())
		}
		t.Logf("stations=%d: %d patterns, all consistent", stations, rep.Checked)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Exhaustive(Config{Policy: core.NewStandard(), Stations: 2, MaxFlips: 1}); err == nil {
		t.Error("too few stations must be rejected")
	}
	if _, err := Exhaustive(Config{Policy: core.NewStandard(), Stations: 4, MaxFlips: 0}); err == nil {
		t.Error("zero flips must be rejected")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Consistent: "consistent", Omission: "omission", Duplicate: "duplicate",
		LostAll: "lost-all", Stuck: "stuck",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", o, o.String(), want)
		}
	}
}
