package verify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// crashPlacementRun replays one disturbance pattern with a chosen station
// crashed at an absolute slot, and reports the delivery counts and
// liveness of each station.
func crashPlacementRun(t *testing.T, policy node.EOFPolicy, rules func() []*errmodel.Rule, crashStation int, crashSlot uint64) ([]int, []bool) {
	t.Helper()
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: policy})
	// Rules are stateful (single-shot counters); build them fresh per run.
	c.Net.AddDisturber(errmodel.NewScript(rules()...))
	c.Net.AddProbe(&sim.CrashAtSlot{Ctrl: c.Nodes[crashStation], Slot: crashSlot})
	f := &frame.Frame{ID: 0x123, Data: []byte{0xCA, 0xFE}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilQuiet(8000) {
		t.Fatal("no quiescence")
	}
	counts := make([]int, 4)
	alive := make([]bool, 4)
	for i := range counts {
		counts[i] = c.DeliveryCount(i, f)
		m := c.Nodes[i].Mode()
		alive[i] = m == node.ErrorActive || m == node.ErrorPassive
	}
	return counts, alive
}

// consistentAmongCorrect checks the all-or-nothing agreement among live
// receivers, also requiring agreement with a live transmitter's verdict.
func consistentAmongCorrect(counts []int, alive []bool) bool {
	got, missing, dup := 0, 0, false
	for i := 1; i < len(counts); i++ {
		if !alive[i] {
			continue
		}
		switch {
		case counts[i] == 0:
			missing++
		case counts[i] == 1:
			got++
		default:
			dup = true
		}
	}
	if dup {
		return false
	}
	return got == 0 || missing == 0
}

// sweepCrashPlacements crashes the station at EVERY slot of a window
// covering the whole end-of-frame episode and counts inconsistent
// placements.
func sweepCrashPlacements(t *testing.T, policy node.EOFPolicy, rules func() []*errmodel.Rule, crashStation int) (bad int, total int) {
	t.Helper()
	// One undisturbed probe run to locate the EOF window of attempt 1.
	// A frame body is ~70 slots; the episode fits well within slot 220.
	for slot := uint64(40); slot < 220; slot++ {
		counts, alive := crashPlacementRun(t, policy, rules, crashStation, slot)
		total++
		if !consistentAmongCorrect(counts, alive) {
			bad++
		}
	}
	return bad, total
}

// MinorCAN, Fig. 1b pattern, transmitter crashed at every possible slot:
// the paper's claim that MinorCAN "achieves consistency in the event of a
// permanent failure of any of the nodes after the bit error detection",
// swept over every failure instant.
func TestMinorCANCrashPlacementSweep(t *testing.T) {
	rules := func() []*errmodel.Rule {
		return []*errmodel.Rule{
			errmodel.AtEOFBit([]int{1, 2}, 6, 1), // X set at the last-but-one EOF bit
		}
	}
	for station := 0; station < 4; station++ {
		bad, total := sweepCrashPlacements(t, core.NewMinorCAN(), rules, station)
		if bad != 0 {
			t.Errorf("MinorCAN: crashing station %d: %d/%d placements inconsistent", station, bad, total)
		}
	}
}

// Standard CAN under the same sweep must expose the Fig. 1c omission for
// some transmitter-crash placements.
func TestStandardCANCrashPlacementSweep(t *testing.T) {
	rules := func() []*errmodel.Rule {
		return []*errmodel.Rule{
			errmodel.AtEOFBit([]int{1, 2}, 6, 1),
		}
	}
	bad, total := sweepCrashPlacements(t, core.NewStandard(), rules, 0)
	if bad == 0 {
		t.Errorf("standard CAN: no inconsistent crash placement among %d (Fig. 1c must appear)", total)
	}
	t.Logf("standard CAN: %d/%d transmitter-crash placements inconsistent", bad, total)
}

// MajorCAN_5 under a single-error pattern: every crash placement of every
// station stays consistent (the vote-split gap needs at least two channel
// errors besides the crash).
func TestMajorCAN5CrashPlacementSweepSingleError(t *testing.T) {
	rules := func() []*errmodel.Rule {
		return []*errmodel.Rule{
			errmodel.AtEOFBit([]int{1}, 6, 1), // second sub-field: station 1 extends
		}
	}
	for station := 0; station < 4; station++ {
		bad, total := sweepCrashPlacements(t, core.MustMajorCAN(5), rules, station)
		if bad != 0 {
			t.Errorf("MajorCAN_5: crashing station %d: %d/%d placements inconsistent", station, bad, total)
		}
	}
}

// The Fig. 5 pattern (delayed transmitter extension) with a fourth window
// error: sweeping the transmitter's crash instant must rediscover the
// vote-split placements — and only around the majority threshold.
func TestMajorCAN5CrashPlacementSweepFindsVoteSplit(t *testing.T) {
	rules := func() []*errmodel.Rule {
		return []*errmodel.Rule{
			errmodel.AtEOFBit([]int{1}, 3, 1),
			errmodel.AtEOFBit([]int{0}, 4, 1),
			errmodel.AtEOFBit([]int{0}, 5, 1),
			errmodel.AtEOFBit([]int{2}, 12, 1),
		}
	}
	bad, total := sweepCrashPlacements(t, core.MustMajorCAN(5), rules, 0)
	if bad == 0 {
		t.Fatalf("the vote-split placement must appear in the sweep of %d slots", total)
	}
	if bad > 3 {
		t.Errorf("%d/%d placements inconsistent; expected only the threshold neighbourhood", bad, total)
	}
	t.Logf("MajorCAN_5 vote split: %d/%d transmitter-crash placements inconsistent", bad, total)
}
