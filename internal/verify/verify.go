// Package verify exhaustively checks the consistency of a protocol
// variant against every disturbance pattern with up to k view flips in the
// end-of-frame decision region — a bounded model-checking pass over the
// bit-level simulator.
//
// The paper leaves formal verification of MajorCAN as future work ("We
// plan to do model checking on the VHDL description"); this package is
// that check for the simulated controller: for small k it enumerates the
// complete fault space instead of sampling it.
package verify

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// Flip identifies one disturbed view bit: station's view flipped at the
// 1-based EOF-relative position (first transmission attempt).
type Flip struct {
	Station int
	Pos     int
}

func (f Flip) String() string { return fmt.Sprintf("s%d@%d", f.Station, f.Pos) }

// Pattern is a set of flips applied to one frame transmission.
type Pattern []Flip

func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, f := range p {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// Outcome classifies one pattern's result.
type Outcome uint8

const (
	// Consistent: every receiver delivered exactly once and the
	// transmitter agreed.
	Consistent Outcome = iota + 1
	// Omission: some correct receiver never delivered while another did
	// (or the transmitter believes success while some receiver lacks the
	// frame).
	Omission
	// Duplicate: some receiver delivered more than once.
	Duplicate
	// LostAll: nobody delivered although the transmitter is alive (it
	// should still be retrying — only possible if the run was truncated).
	LostAll
	// Stuck: the bus did not quiesce within the slot budget.
	Stuck
)

func (o Outcome) String() string {
	switch o {
	case Consistent:
		return "consistent"
	case Omission:
		return "omission"
	case Duplicate:
		return "duplicate"
	case LostAll:
		return "lost-all"
	case Stuck:
		return "stuck"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Violation pairs a pattern with its non-consistent outcome.
type Violation struct {
	Pattern Pattern
	Outcome Outcome
	// Deliveries per station (station 0 is the transmitter).
	Deliveries []int
	// Crashed is the station crashed during the run, or -1.
	Crashed int
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s -> %s %v", v.Pattern, v.Outcome, v.Deliveries)
	if v.Crashed >= 0 {
		s += fmt.Sprintf(" (station %d crashed at its flag)", v.Crashed)
	}
	return s
}

// Config parameterises an exhaustive run.
type Config struct {
	// Policy is the protocol variant under verification.
	Policy node.EOFPolicy
	// Stations is the bus size (station 0 transmits). Default 4.
	Stations int
	// MaxFlips bounds the pattern size k. Patterns of every size 1..k are
	// enumerated.
	MaxFlips int
	// Positions is the number of EOF-relative positions to disturb,
	// starting at 1. Zero selects the policy's full decision region
	// (3m+5 for MajorCAN_m, EOF+2 intermission bits otherwise).
	Positions int
	// SlotsBudget bounds each simulation (default 6000).
	SlotsBudget int
	// CrashSweep additionally repeats every pattern once per station,
	// crashing that station the moment it first signals in the
	// end-of-frame region (error flag or MajorCAN extension) — the
	// fail-silent faults of the paper's model combined with the bit
	// errors. Consistency is then judged among the remaining correct
	// nodes.
	CrashSweep bool
	// PatternStart / PatternCount select a contiguous slice of the
	// pattern enumeration: patterns are indexed 0..PatternSpace-1 in the
	// DFS pre-order the walk emits them, and only indices in
	// [PatternStart, PatternStart+PatternCount) are simulated and
	// counted. PatternCount == 0 with PatternStart == 0 means the whole
	// space; PatternCount == 0 with PatternStart > 0 means "from
	// PatternStart to the end". The enumeration order is a pure function
	// of (Stations, Positions, MaxFlips), so a partition of index ranges
	// across workers checks exactly the full space once — the fleet
	// coordinator's shard contract.
	PatternStart int
	PatternCount int
	// Parallelism bounds the number of concurrent simulations. Every
	// pattern runs on its own private cluster, so the search is
	// embarrassingly parallel; values < 1 mean serial execution.
	Parallelism int
}

func (c *Config) positions() int {
	if c.Positions > 0 {
		return c.Positions
	}
	type endPoser interface{ EndPos() int }
	if ep, ok := c.Policy.(endPoser); ok {
		return ep.EndPos()
	}
	return c.Policy.EOFBits() + 2
}

// Report summarises an exhaustive verification.
type Report struct {
	Config     Config
	PatternsBy []int // patterns checked, indexed by flip count
	Checked    int
	Violations []Violation
}

// Consistent reports whether no violating pattern was found.
func (r *Report) Consistent() bool { return len(r.Violations) == 0 }

// Summary renders the report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d patterns checked (k<=%d, %d positions x %d stations): ",
		r.Config.Policy.Name(), r.Checked, r.Config.MaxFlips, r.Config.positions(), r.Config.Stations)
	if r.Consistent() {
		b.WriteString("ALL CONSISTENT")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violations", len(r.Violations))
	max := len(r.Violations)
	if max > 12 {
		max = 12
	}
	for _, v := range r.Violations[:max] {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	if len(r.Violations) > max {
		fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-max)
	}
	return b.String()
}

// Exhaustive enumerates every pattern of 1..MaxFlips flips over the
// decision region and simulates each one.
func Exhaustive(cfg Config) (*Report, error) {
	return ExhaustiveContext(context.Background(), cfg)
}

// PatternSpace returns the size of cfg's pattern enumeration — the
// number of flip combinations of size 1..MaxFlips over the
// Stations×positions fault sites, before any PatternStart/PatternCount
// windowing. The fleet coordinator uses it to partition index ranges.
func (c Config) PatternSpace() int {
	stations := c.Stations
	if stations == 0 {
		stations = 4
	}
	n := stations * c.positions()
	total := 0
	for k := 1; k <= c.MaxFlips && k <= n; k++ {
		// C(n, k) built multiplicatively; the spaces in scope here are
		// small enough that int never overflows (n tens, k single digits).
		comb := 1
		for i := 0; i < k; i++ {
			comb = comb * (n - i) / (i + 1)
		}
		total += comb
	}
	return total
}

// ExhaustiveContext is Exhaustive with cancellation: when ctx is
// cancelled the enumeration stops early and the partial report is
// returned alongside ctx's error, so a server drain or per-job timeout
// ends a long verification promptly.
func ExhaustiveContext(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Stations == 0 {
		cfg.Stations = 4
	}
	if cfg.Stations < 3 {
		return nil, fmt.Errorf("verify: need >= 3 stations, got %d", cfg.Stations)
	}
	if cfg.MaxFlips < 1 {
		return nil, fmt.Errorf("verify: MaxFlips must be >= 1")
	}
	if cfg.SlotsBudget == 0 {
		cfg.SlotsBudget = 6000
	}
	positions := cfg.positions()

	// The atomic fault sites: (station, pos) pairs.
	sites := make([]Flip, 0, cfg.Stations*positions)
	for s := 0; s < cfg.Stations; s++ {
		for p := 1; p <= positions; p++ {
			sites = append(sites, Flip{Station: s, Pos: p})
		}
	}

	rep := &Report{Config: cfg, PatternsBy: make([]int, cfg.MaxFlips+1)}
	crashes := []int{-1}
	if cfg.CrashSweep {
		for s := 0; s < cfg.Stations; s++ {
			crashes = append(crashes, s)
		}
	}

	parallelism := cfg.Parallelism
	if parallelism < 1 {
		parallelism = 1
	}
	type job struct {
		seq     int
		pattern Pattern
		crash   int
	}
	type result struct {
		seq       int
		violation Violation
		bad       bool
		err       error
	}
	jobs := make(chan job, parallelism)
	results := make(chan result, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				v, bad, err := runPattern(cfg, j.pattern, j.crash)
				results <- result{seq: j.seq, violation: v, bad: bad, err: err}
			}
		}()
	}

	// Collector: drains results while the producer enumerates patterns.
	// Violations arrive in worker-completion order; the seq tag recovers
	// the enumeration order afterwards.
	type tagged struct {
		seq int
		v   Violation
	}
	var found []tagged
	var collectErr error
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range results {
			if r.err != nil && collectErr == nil {
				collectErr = r.err
			}
			if r.bad {
				found = append(found, tagged{seq: r.seq, v: r.violation})
			}
		}
	}()

	// The pattern window: indices [windowStart, windowEnd) of the DFS
	// pre-order enumeration are simulated, everything else is walked past.
	// The default window is the whole space.
	windowStart := cfg.PatternStart
	windowEnd := int(^uint(0) >> 1)
	if cfg.PatternCount > 0 {
		windowEnd = windowStart + cfg.PatternCount
	}
	idx := 0 // global pre-order pattern index, windowed or not
	pattern := make(Pattern, 0, cfg.MaxFlips)
	var walk func(start, remaining int)
	walk = func(start, remaining int) {
		if ctx.Err() != nil || idx >= windowEnd {
			return
		}
		if len(pattern) > 0 {
			if idx >= windowStart {
				rep.PatternsBy[len(pattern)]++
				rep.Checked++
				for ci, crash := range crashes {
					jobs <- job{
						seq:     idx*len(crashes) + ci,
						pattern: append(Pattern(nil), pattern...),
						crash:   crash,
					}
				}
			}
			idx++
		}
		if remaining == 0 {
			return
		}
		for i := start; i < len(sites); i++ {
			pattern = append(pattern, sites[i])
			walk(i+1, remaining-1)
			pattern = pattern[:len(pattern)-1]
		}
	}
	walk(0, cfg.MaxFlips)
	close(jobs)
	wg.Wait()
	close(results)
	<-collected
	if collectErr != nil {
		return nil, collectErr
	}
	// Enumeration order is the report's canonical violation order: a pure
	// function of the config, so a run is reproducible across worker
	// counts and a partition of pattern windows merges by concatenation.
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	rep.Violations = make([]Violation, 0, len(found))
	for _, t := range found {
		rep.Violations = append(rep.Violations, t.v)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// runPattern simulates one disturbance pattern, optionally crashing one
// station at its first end-of-frame signalling, and classifies the run.
func runPattern(cfg Config, p Pattern, crash int) (Violation, bool, error) {
	cluster, err := sim.NewCluster(sim.ClusterOptions{Nodes: cfg.Stations, Policy: cfg.Policy})
	if err != nil {
		return Violation{}, false, err
	}
	rules := make([]*errmodel.Rule, len(p))
	for i, f := range p {
		rules[i] = errmodel.AtEOFBit([]int{f.Station}, f.Pos, 1)
	}
	cluster.Net.AddDisturber(errmodel.NewScript(rules...))
	if crash >= 0 {
		cluster.Net.AddProbe(&crashOnSignal{cluster: cluster, station: crash})
	}
	f := &frame.Frame{ID: 0x123, Data: []byte{0xCA, 0xFE}}
	if err := cluster.Nodes[0].Enqueue(f); err != nil {
		return Violation{}, false, err
	}
	quiet := cluster.RunUntilQuiet(cfg.SlotsBudget)

	deliveries := make([]int, cfg.Stations)
	for i := range deliveries {
		deliveries[i] = cluster.DeliveryCount(i, f)
	}
	outcome := classify(cluster, deliveries, quiet)
	if outcome == Consistent {
		return Violation{}, false, nil
	}
	return Violation{
		Pattern:    append(Pattern(nil), p...),
		Outcome:    outcome,
		Deliveries: deliveries,
		Crashed:    crash,
	}, true, nil
}

// crashOnSignal crashes the station the first time it is observed sending
// an error flag, overload flag or MajorCAN extension.
type crashOnSignal struct {
	cluster *sim.Cluster
	station int
	done    bool
}

func (c *crashOnSignal) OnBit(_ uint64, _ bitstream.Level, _, _ []bitstream.Level, views []bus.ViewContext) {
	if c.done {
		return
	}
	switch views[c.station].Phase {
	case bus.PhaseErrorFlag, bus.PhaseOverloadFlag, bus.PhaseExtFlag:
		c.cluster.Nodes[c.station].Crash()
		c.done = true
	}
}

func classify(cluster *sim.Cluster, deliveries []int, quiet bool) Outcome {
	if !quiet {
		return Stuck
	}
	correct := func(i int) bool {
		m := cluster.Nodes[i].Mode()
		return m == node.ErrorActive || m == node.ErrorPassive
	}
	got, missing, dup := 0, 0, false
	for i := 1; i < len(deliveries); i++ {
		if !correct(i) {
			continue
		}
		switch {
		case deliveries[i] == 0:
			missing++
		case deliveries[i] > 1:
			dup = true
			got++
		default:
			got++
		}
	}
	txCorrect := correct(0)
	switch {
	case dup:
		return Duplicate
	case got > 0 && missing > 0:
		return Omission
	case got == 0 && missing > 0 && txCorrect && cluster.Nodes[0].TxSuccesses() > 0:
		// The correct transmitter believes success but no correct receiver
		// has the frame.
		return Omission
	case got == 0 && missing > 0 && txCorrect:
		return LostAll
	default:
		return Consistent
	}
}
