package verify

import (
	"testing"

	"repro/internal/core"
)

// The paper, Section 3: "it can be proven, by checking all the possible
// cases, that MinorCAN achieves consistency in the event of a permanent
// failure of any of the nodes after the bit error detection." Mechanise
// that proof: every single-flip pattern combined with every
// crash-at-first-signal placement.
func TestMinorCANSingleErrorWithCrashesExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:     core.NewMinorCAN(),
		Stations:   4,
		MaxFlips:   1,
		CrashSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Errorf("MinorCAN must survive any single error plus any single node failure:\n%s", rep.Summary())
	}
	t.Logf("MinorCAN, k=1 with crash sweep: %d base patterns", rep.Checked)
}

// Standard CAN with crashes: the exhaustive space must contain the classic
// Fig. 1c omission (single flip at the last-but-one bit + transmitter
// crash).
func TestStandardCANCrashOmissionExists(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:     core.NewStandard(),
		Stations:   4,
		MaxFlips:   1,
		CrashSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Outcome == Omission && v.Crashed == 0 &&
			len(v.Pattern) == 1 && v.Pattern[0].Pos == 6 && v.Pattern[0].Station != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("the Fig. 1c pattern must appear in the crash-sweep space:\n%s", rep.Summary())
	}
}

// MajorCAN_5 under single errors combined with single fail-silent crashes:
// the paper claims Atomic Broadcast "when the nodes present fail-silent
// behaviour". This exhaustive pass checks the claim for one error + one
// crash and documents what it finds (see DESIGN.md if violations appear).
func TestMajorCAN5SingleErrorWithCrashesExhaustive(t *testing.T) {
	rep, err := Exhaustive(Config{
		Policy:     core.MustMajorCAN(5),
		Stations:   4,
		MaxFlips:   1,
		CrashSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Logf("violation: %s", v)
	}
	if !rep.Consistent() {
		t.Errorf("MajorCAN_5 single error + single crash space has %d violations:\n%s",
			len(rep.Violations), rep.Summary())
	}
}
