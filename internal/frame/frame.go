// Package frame models CAN data and remote frames (CAN 2.0A standard and
// 2.0B extended format): field layout, bit-level encoding with stuffing and
// CRC, and an incremental assembler for the receive path.
package frame

import "fmt"

// Format selects between the standard (11-bit identifier) and extended
// (29-bit identifier) frame formats.
type Format uint8

const (
	// Standard is the CAN 2.0A frame format with an 11-bit identifier.
	Standard Format = iota + 1
	// Extended is the CAN 2.0B frame format with a 29-bit identifier.
	Extended
)

func (f Format) String() string {
	switch f {
	case Standard:
		return "standard"
	case Extended:
		return "extended"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// Limits of the CAN frame format.
const (
	// MaxStandardID is the largest 11-bit identifier.
	MaxStandardID = 1<<11 - 1
	// MaxExtendedID is the largest 29-bit identifier.
	MaxExtendedID = 1<<29 - 1
	// MaxDataLen is the maximum number of data bytes in a frame.
	MaxDataLen = 8
	// StandardEOFBits is the length of the end-of-frame field in standard
	// CAN (and MinorCAN).
	StandardEOFBits = 7
	// IntermissionBits is the length of the interframe space intermission
	// field.
	IntermissionBits = 3
)

// Frame is a CAN data or remote frame as seen by the application layer.
type Frame struct {
	// ID is the frame identifier (11 bits for Standard, 29 for Extended).
	// Lower values have higher priority in arbitration.
	ID uint32
	// Format selects standard or extended format. The zero value is
	// treated as Standard.
	Format Format
	// Remote marks a remote transmission request frame (no data field).
	Remote bool
	// Data is the payload, at most 8 bytes. For remote frames Data must be
	// empty; DLC still carries the requested length.
	Data []byte
	// DLC is the data length code. For data frames it is derived from
	// len(Data) when encoding if zero; for remote frames it encodes the
	// requested data length.
	DLC uint8
}

// EffectiveFormat returns the frame's format, defaulting to Standard.
func (f *Frame) EffectiveFormat() Format {
	if f.Format == Extended {
		return Extended
	}
	return Standard
}

// EffectiveDLC returns the data length code that will be encoded.
func (f *Frame) EffectiveDLC() uint8 {
	if !f.Remote && f.DLC == 0 {
		return uint8(len(f.Data))
	}
	return f.DLC
}

// Validate checks the frame against the CAN format limits.
func (f *Frame) Validate() error {
	switch f.EffectiveFormat() {
	case Standard:
		if f.ID > MaxStandardID {
			return fmt.Errorf("frame: standard identifier %#x exceeds 11 bits", f.ID)
		}
	case Extended:
		if f.ID > MaxExtendedID {
			return fmt.Errorf("frame: extended identifier %#x exceeds 29 bits", f.ID)
		}
	}
	if len(f.Data) > MaxDataLen {
		return fmt.Errorf("frame: %d data bytes exceed the %d-byte limit", len(f.Data), MaxDataLen)
	}
	if f.Remote && len(f.Data) > 0 {
		return fmt.Errorf("frame: remote frame must not carry data")
	}
	if f.EffectiveDLC() > 15 {
		return fmt.Errorf("frame: DLC %d exceeds 4 bits", f.EffectiveDLC())
	}
	// The CAN specification admits DLC values 9..15 on the wire, all
	// meaning eight data bytes.
	if !f.Remote {
		dlc := int(f.EffectiveDLC())
		switch {
		case dlc <= MaxDataLen && dlc != len(f.Data):
			return fmt.Errorf("frame: DLC %d does not match %d data bytes", dlc, len(f.Data))
		case dlc > MaxDataLen && len(f.Data) != MaxDataLen:
			return fmt.Errorf("frame: DLC %d (meaning 8) does not match %d data bytes", dlc, len(f.Data))
		}
	}
	return nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Data = append([]byte(nil), f.Data...)
	return &c
}

// Equal reports whether two frames are identical at the application layer.
func (f *Frame) Equal(o *Frame) bool {
	if f == nil || o == nil {
		return f == o
	}
	if f.ID != o.ID || f.EffectiveFormat() != o.EffectiveFormat() ||
		f.Remote != o.Remote || f.EffectiveDLC() != o.EffectiveDLC() ||
		len(f.Data) != len(o.Data) {
		return false
	}
	for i := range f.Data {
		if f.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

func (f *Frame) String() string {
	kind := "data"
	if f.Remote {
		kind = "remote"
	}
	return fmt.Sprintf("%s frame id=%#x fmt=%s dlc=%d data=%x",
		kind, f.ID, f.EffectiveFormat(), f.EffectiveDLC(), f.Data)
}

// Field identifies a position within the bit-level layout of a CAN frame,
// including the fields appended by the protocol variant (EOF) and the
// interframe space.
type Field uint8

const (
	// FieldSOF is the single dominant start-of-frame bit.
	FieldSOF Field = iota + 1
	// FieldID is the (base) identifier: 11 bits in both formats.
	FieldID
	// FieldSRR is the substitute remote request bit (extended format only).
	FieldSRR
	// FieldIDE is the identifier extension bit.
	FieldIDE
	// FieldExtID is the 18-bit identifier extension (extended format only).
	FieldExtID
	// FieldRTR is the remote transmission request bit.
	FieldRTR
	// FieldR1 is the reserved bit r1 (extended format only).
	FieldR1
	// FieldR0 is the reserved bit r0.
	FieldR0
	// FieldDLC is the 4-bit data length code.
	FieldDLC
	// FieldData is the data field (8 bits per byte).
	FieldData
	// FieldCRC is the 15-bit CRC sequence.
	FieldCRC
	// FieldCRCDelim is the recessive CRC delimiter.
	FieldCRCDelim
	// FieldACKSlot is the acknowledge slot (transmitter sends recessive,
	// receivers assert dominant).
	FieldACKSlot
	// FieldACKDelim is the recessive acknowledge delimiter.
	FieldACKDelim
	// FieldEOF is the end-of-frame field: 7 recessive bits in standard CAN,
	// 2m recessive bits in MajorCAN_m.
	FieldEOF
	// FieldIntermission is the 3-bit interframe space intermission.
	FieldIntermission
)

func (f Field) String() string {
	switch f {
	case FieldSOF:
		return "SOF"
	case FieldID:
		return "ID"
	case FieldSRR:
		return "SRR"
	case FieldIDE:
		return "IDE"
	case FieldExtID:
		return "ExtID"
	case FieldRTR:
		return "RTR"
	case FieldR1:
		return "r1"
	case FieldR0:
		return "r0"
	case FieldDLC:
		return "DLC"
	case FieldData:
		return "Data"
	case FieldCRC:
		return "CRC"
	case FieldCRCDelim:
		return "CRCdel"
	case FieldACKSlot:
		return "ACK"
	case FieldACKDelim:
		return "ACKdel"
	case FieldEOF:
		return "EOF"
	case FieldIntermission:
		return "Interm"
	default:
		return fmt.Sprintf("Field(%d)", uint8(f))
	}
}

// Ref locates one on-the-wire bit within the frame layout.
type Ref struct {
	// Field is the frame field this bit belongs to.
	Field Field
	// Stuff marks an inserted stuff bit. Stuff bits carry the Field/Index
	// of the preceding data bit.
	Stuff bool
	// Index is the zero-based position within the field (data bits count
	// across the whole data field; the widest field, eight data bytes,
	// tops out at index 63). An encoding carries one Ref per wire bit, so
	// the compact layout — four bytes instead of a padded 24 — is what
	// keeps per-frame encode allocations small.
	Index int16
}

func (r Ref) String() string {
	s := fmt.Sprintf("%s[%d]", r.Field, r.Index)
	if r.Stuff {
		s += "*"
	}
	return s
}
