package frame

import (
	"errors"
	"fmt"

	"repro/internal/bitstream"
)

// AssemblyState reports the progress of an Assembler.
type AssemblyState uint8

const (
	// AssemblyInProgress means more bits are expected.
	AssemblyInProgress AssemblyState = iota + 1
	// AssemblyDone means the CRC sequence has been fully received.
	AssemblyDone
)

type assemblyStage uint8

const (
	stSOF assemblyStage = iota + 1
	stID
	stRTRorSRR
	stIDE
	stExtID
	stExtRTR
	stR1
	stR0
	stDLC
	stData
	stCRC
	stDone
)

// Assembler incrementally parses the destuffed bits of a CAN frame from
// SOF through the end of the CRC sequence, computing the CRC on the fly.
// The zero value is ready to use.
//
// The caller (the receive path of a CAN controller) is responsible for
// destuffing: only data bits, not stuff bits, are pushed.
type Assembler struct {
	stage    assemblyStage
	count    int
	id       uint32
	extID    uint32
	remote   bool
	srr      bitstream.Level
	extended bool
	dlc      uint8
	dataLen  int
	data     [MaxDataLen]byte // received data bytes; nData are valid
	nData    int
	byteAcc  uint8
	crcRecv  uint16
	crc      bitstream.CRC15
}

// Reset returns the assembler to its start-of-frame state.
func (a *Assembler) Reset() { *a = Assembler{} }

func (a *Assembler) stageOrInit() assemblyStage {
	if a.stage == 0 {
		return stSOF
	}
	return a.stage
}

// ErrFormat reports a fixed-form field violation inside the frame body.
type ErrFormat struct {
	Field Field
	Got   bitstream.Level
}

func (e *ErrFormat) Error() string {
	return fmt.Sprintf("form error: %s must not be %s", e.Field, e.Got)
}

// errFormatSOF is the only form error Push constructs itself (a
// recessive start-of-frame bit); preallocated so the per-bit receive
// path never allocates, even while rejecting.
var errFormatSOF = &ErrFormat{Field: FieldSOF, Got: bitstream.Recessive}

// errPushAfterDone is static for the same reason.
var errPushAfterDone = errors.New("frame: bit pushed after CRC complete")

// Push feeds one destuffed bit into the assembler.
func (a *Assembler) Push(l bitstream.Level) (AssemblyState, error) {
	st := a.stageOrInit()
	if st != stCRC && st != stDone {
		a.crc.Push(l)
	}
	switch st {
	case stSOF:
		if l != bitstream.Dominant {
			return 0, errFormatSOF
		}
		a.stage = stID
	case stID:
		a.id = a.id<<1 | uint32(l.Bit())
		a.count++
		if a.count == 11 {
			a.stage, a.count = stRTRorSRR, 0
		}
	case stRTRorSRR:
		// Whether this bit is RTR (standard) or SRR (extended) is decided
		// by the IDE bit that follows.
		a.srr = l
		a.stage = stIDE
	case stIDE:
		if l == bitstream.Recessive {
			a.extended = true
			a.stage = stExtID
		} else {
			a.extended = false
			a.remote = a.srr == bitstream.Recessive
			a.stage = stR0
		}
	case stExtID:
		a.extID = a.extID<<1 | uint32(l.Bit())
		a.count++
		if a.count == 18 {
			a.stage, a.count = stExtRTR, 0
		}
	case stExtRTR:
		a.remote = l == bitstream.Recessive
		a.stage = stR1
	case stR1:
		a.stage = stR0
	case stR0:
		a.stage = stDLC
	case stDLC:
		a.dlc = a.dlc<<1 | l.Bit()
		a.count++
		if a.count == 4 {
			a.count = 0
			a.dataLen = int(a.dlc)
			if a.dataLen > MaxDataLen {
				a.dataLen = MaxDataLen
			}
			if a.remote || a.dataLen == 0 {
				a.stage = stCRC
			} else {
				a.stage = stData
			}
		}
	case stData:
		a.byteAcc = a.byteAcc<<1 | l.Bit()
		a.count++
		if a.count%8 == 0 {
			a.data[a.nData] = a.byteAcc
			a.nData++
			a.byteAcc = 0
			if a.nData == a.dataLen {
				a.stage, a.count = stCRC, 0
			}
		}
	case stCRC:
		a.crcRecv = a.crcRecv<<1 | uint16(l.Bit())
		a.count++
		if a.count == bitstream.CRCWidth {
			a.stage = stDone
			return AssemblyDone, nil
		}
	case stDone:
		return 0, errPushAfterDone
	}
	return AssemblyInProgress, nil
}

// Done reports whether the full SOF..CRC region has been received.
func (a *Assembler) Done() bool { return a.stage == stDone }

// CRCOK reports whether the received CRC matches the computed one. Only
// meaningful once Done.
func (a *Assembler) CRCOK() bool { return a.crcRecv == a.crc.Sum() }

// ReceivedCRC returns the CRC sequence received on the bus.
func (a *Assembler) ReceivedCRC() uint16 { return a.crcRecv }

// ComputedCRC returns the CRC computed over the received SOF..data bits.
func (a *Assembler) ComputedCRC() uint16 { return a.crc.Sum() }

// Extended reports whether the frame uses the extended format. Only
// meaningful after the IDE bit has been received.
func (a *Assembler) Extended() bool { return a.extended }

// Frame returns the parsed frame. Only meaningful once Done.
func (a *Assembler) Frame() *Frame {
	f := &Frame{Remote: a.remote, DLC: a.dlc, Data: append([]byte(nil), a.data[:a.nData]...)}
	if a.extended {
		f.Format = Extended
		f.ID = a.id<<18 | a.extID
	} else {
		f.Format = Standard
		f.ID = a.id
	}
	return f
}

// Field returns the frame field the next expected bit belongs to.
func (a *Assembler) Field() Field {
	switch a.stageOrInit() {
	case stSOF:
		return FieldSOF
	case stID:
		return FieldID
	case stRTRorSRR:
		// Not yet disambiguated; report RTR (the standard-format reading).
		return FieldRTR
	case stIDE:
		return FieldIDE
	case stExtID:
		return FieldExtID
	case stExtRTR:
		return FieldRTR
	case stR1:
		return FieldR1
	case stR0:
		return FieldR0
	case stDLC:
		return FieldDLC
	case stData:
		return FieldData
	case stCRC:
		return FieldCRC
	default:
		return FieldCRCDelim
	}
}

// FieldIndex returns the zero-based index within the current field of the
// next expected bit.
func (a *Assembler) FieldIndex() int {
	switch a.stageOrInit() {
	case stID, stExtID, stDLC, stCRC:
		return a.count
	case stData:
		return a.count
	default:
		return 0
	}
}

// InArbitration reports whether the next expected bit belongs to the
// arbitration field (identifier and RTR bits, plus SRR/IDE in the extended
// format), during which a transmitter sending recessive and sampling
// dominant loses arbitration rather than detecting a bit error.
func (a *Assembler) InArbitration() bool {
	switch a.stageOrInit() {
	case stID, stRTRorSRR, stIDE, stExtID, stExtRTR:
		return true
	default:
		return false
	}
}
