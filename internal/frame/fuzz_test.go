package frame

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

// Robustness: the assembler must classify or reject ANY bit stream without
// panicking, and a full destuff+assemble pipeline over random noise must
// either finish cleanly or report an error — never loop or crash.
func TestAssemblerNeverPanicsOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 3000; trial++ {
		var a Assembler
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			l := bitstream.Recessive
			if r.Intn(2) == 0 {
				l = bitstream.Dominant
			}
			st, err := a.Push(l)
			if err != nil {
				break
			}
			if st == AssemblyDone {
				// Frame() and CRC accessors must be safe to call.
				_ = a.Frame()
				_ = a.CRCOK()
				_ = a.ComputedCRC()
				_ = a.ReceivedCRC()
				break
			}
		}
		// Field/FieldIndex must be valid at any point.
		_ = a.Field().String()
		if a.FieldIndex() < 0 {
			t.Fatalf("trial %d: negative field index", trial)
		}
	}
}

// The destuffer+assembler pipeline on random stuffed-looking noise.
func TestPipelineOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2028))
	for trial := 0; trial < 2000; trial++ {
		var ds bitstream.Destuffer
		var a Assembler
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			l := bitstream.Recessive
			if r.Intn(3) == 0 { // biased towards recessive like a real bus tail
				l = bitstream.Dominant
			}
			kind, err := ds.Push(l)
			if err != nil {
				break // stuff error: a real controller would flag here
			}
			if kind == bitstream.StuffBit {
				continue
			}
			if _, err := a.Push(l); err != nil {
				break // form error
			}
			if a.Done() {
				break
			}
		}
	}
}

// Every valid frame, after an arbitrary single-bit corruption of its
// stuffed image, is either rejected by the pipeline (stuff/form/CRC error)
// or decodes to the SAME frame — a corrupted image must never decode to a
// different application-level frame. (15-bit CRC: single-bit errors are
// always detected; this asserts the pipeline wires the guarantee through.)
func TestSingleBitCorruptionNeverForgesFrame(t *testing.T) {
	r := rand.New(rand.NewSource(2029))
	for trial := 0; trial < 400; trial++ {
		f := randomFrame(r)
		enc, err := Encode(f, StandardEOFBits)
		if err != nil {
			t.Fatal(err)
		}
		crcDelim := enc.IndexOf(FieldCRCDelim, 0)
		img := enc.Bits[:crcDelim].Clone()
		pos := r.Intn(len(img))
		img[pos] = img[pos].Invert()

		var ds bitstream.Destuffer
		var a Assembler
		rejected := false
		for _, l := range img {
			kind, err := ds.Push(l)
			if err != nil {
				rejected = true
				break
			}
			if kind == bitstream.StuffBit {
				continue
			}
			if _, err := a.Push(l); err != nil {
				rejected = true
				break
			}
			if a.Done() {
				break
			}
		}
		if rejected {
			continue
		}
		if a.Done() && a.CRCOK() {
			got := a.Frame()
			if !got.Equal(f) {
				t.Fatalf("trial %d: flip at %d forged %v from %v", trial, pos, got, f)
			}
			// Same frame and valid CRC: the flip must have hit a stuff bit
			// in a way that left the destuffed image identical — impossible
			// for a single flip, so reaching here with CRCOK means the
			// pipeline is broken.
			t.Fatalf("trial %d: single flip at %d went undetected", trial, pos)
		}
		// Incomplete frame (truncated by desync): the controller would
		// reject it at the tail checks; fine.
	}
}
