package frame

import (
	"fmt"

	"repro/internal/bitstream"
)

// Encoding is the full bit-level image of a frame as transmitted by an
// error-free transmitter, together with per-bit layout annotations.
type Encoding struct {
	// Bits are the on-the-wire levels from SOF through the last EOF bit,
	// with stuff bits inserted (stuffing covers SOF through the CRC
	// sequence).
	Bits bitstream.Sequence
	// Refs annotates every element of Bits with its field position.
	Refs []Ref
	// CRC is the 15-bit CRC computed over the destuffed SOF..data bits.
	CRC uint16
	// EOFBits is the EOF length used (7 for standard CAN, 2m for
	// MajorCAN_m).
	EOFBits int
	// StuffCount is the number of stuff bits inserted.
	StuffCount int
	// AckIndex is the offset within Bits of the ACK slot bit, cached at
	// encode time so per-window code does not rescan Refs. The stretch
	// Bits[pos:AckIndex] for any pos past SOF is the deterministic part
	// of the transmission: every bit up to (excluding) the ACK slot is
	// driven by the transmitter alone.
	AckIndex int
}

// Len returns the total number of bit times of the encoded frame
// (SOF..EOF inclusive, without interframe space).
func (e *Encoding) Len() int { return len(e.Bits) }

// IndexOf returns the offset within Bits of the idx-th bit (zero-based) of
// the given field, skipping stuff bits. It returns -1 if not present.
func (e *Encoding) IndexOf(f Field, idx int) int {
	for i, r := range e.Refs {
		if !r.Stuff && r.Field == f && int(r.Index) == idx {
			return i
		}
	}
	return -1
}

// FieldLen returns the number of non-stuff bits of field f in the encoding.
func (e *Encoding) FieldLen(f Field) int {
	n := 0
	for _, r := range e.Refs {
		if !r.Stuff && r.Field == f {
			n++
		}
	}
	return n
}

// encWriter streams a frame's bits into an Encoding in one pass: every
// stuffed-region bit goes through the bit stuffer (inserting stuff bits
// as they occur) and, before the CRC field, through the running CRC
// register. Encoding runs once per frame body in a sweep, so this writer
// replaces the two-pass build (layout, then restuff into fresh slices)
// that used to dominate the simulator's allocation profile.
type encWriter struct {
	enc *Encoding
	st  bitstream.Stuffer
	crc bitstream.CRC15
}

// stuffed appends one bit of the stuffed region (SOF through the CRC
// sequence), plus the stuff bit the stuffer may insert after it. Stuff
// bits carry the Field/Index of the preceding data bit.
func (w *encWriter) stuffed(field Field, idx int, l bitstream.Level) {
	w.enc.Bits = append(w.enc.Bits, l)
	w.enc.Refs = append(w.enc.Refs, Ref{Field: field, Index: int16(idx)})
	if sb, ok := w.st.Push(l); ok {
		w.enc.Bits = append(w.enc.Bits, sb)
		w.enc.Refs = append(w.enc.Refs, Ref{Field: field, Index: int16(idx), Stuff: true})
		w.enc.StuffCount++
	}
}

// body appends one CRC-covered bit (SOF..data).
func (w *encWriter) body(field Field, idx int, l bitstream.Level) {
	w.crc.Push(l)
	w.stuffed(field, idx, l)
}

// bodyUint appends the width low bits of v MSB-first as CRC-covered bits.
func (w *encWriter) bodyUint(field Field, v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		w.body(field, width-1-i, bitstream.FromBit(uint8(v>>uint(i)&1)))
	}
}

// tail appends one fixed-form bit (CRC delimiter onward): never stuffed,
// never CRC-covered.
func (w *encWriter) tail(field Field, idx int, l bitstream.Level) {
	w.enc.Bits = append(w.enc.Bits, l)
	w.enc.Refs = append(w.enc.Refs, Ref{Field: field, Index: int16(idx)})
}

// Encode produces the on-the-wire image of the frame with the given EOF
// length (use StandardEOFBits for standard CAN and MinorCAN, 2m for
// MajorCAN_m).
func Encode(f *Frame, eofBits int) (*Encoding, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if eofBits < 1 {
		return nil, fmt.Errorf("frame: EOF length %d must be positive", eofBits)
	}
	dataBits := 0
	if !f.Remote {
		dataBits = 8 * len(f.Data)
	}
	// SOF + arbitration/control + data + CRC, worst-case stuffing (one
	// insertion per four bits after the first five; len/4 over-covers
	// it), then the fixed-form tail. Bits and Refs never regrow.
	regionLen := 1 + 11 + 1 + 1 + 1 + 4 + dataBits + bitstream.CRCWidth
	if f.EffectiveFormat() == Extended {
		regionLen += 1 + 18 + 1 // SRR, extended ID, r1
	}
	full := regionLen + regionLen/4 + 3 + eofBits

	enc := &Encoding{EOFBits: eofBits}
	enc.Bits = make(bitstream.Sequence, 0, full)
	enc.Refs = make([]Ref, 0, full)
	w := encWriter{enc: enc}

	rtr := bitstream.Dominant
	if f.Remote {
		rtr = bitstream.Recessive
	}
	w.body(FieldSOF, 0, bitstream.Dominant)
	switch f.EffectiveFormat() {
	case Extended:
		base := f.ID >> 18 & MaxStandardID
		ext := f.ID & (1<<18 - 1)
		w.bodyUint(FieldID, uint64(base), 11)
		w.body(FieldSRR, 0, bitstream.Recessive)
		w.body(FieldIDE, 0, bitstream.Recessive)
		w.bodyUint(FieldExtID, uint64(ext), 18)
		w.body(FieldRTR, 0, rtr)
		w.body(FieldR1, 0, bitstream.Dominant)
		w.body(FieldR0, 0, bitstream.Dominant)
	default:
		w.bodyUint(FieldID, uint64(f.ID), 11)
		w.body(FieldRTR, 0, rtr)
		w.body(FieldIDE, 0, bitstream.Dominant)
		w.body(FieldR0, 0, bitstream.Dominant)
	}
	w.bodyUint(FieldDLC, uint64(f.EffectiveDLC()), 4)
	if !f.Remote {
		// Data-bit indices run across byte boundaries.
		idx := 0
		for _, b := range f.Data {
			for i := 7; i >= 0; i-- {
				w.body(FieldData, idx, bitstream.FromBit(b>>uint(i)&1))
				idx++
			}
		}
	}
	// The CRC field is stuffed but not CRC-covered.
	enc.CRC = w.crc.Sum()
	for i := bitstream.CRCWidth - 1; i >= 0; i-- {
		w.stuffed(FieldCRC, bitstream.CRCWidth-1-i, bitstream.FromBit(uint8(enc.CRC>>uint(i)&1)))
	}

	// tail = CRC delimiter, ACK slot, ACK delimiter, EOF bits.
	enc.AckIndex = len(enc.Bits) + 1
	w.tail(FieldCRCDelim, 0, bitstream.Recessive)
	w.tail(FieldACKSlot, 0, bitstream.Recessive)
	w.tail(FieldACKDelim, 0, bitstream.Recessive)
	for i := 0; i < eofBits; i++ {
		w.tail(FieldEOF, i, bitstream.Recessive)
	}
	return enc, nil
}

// Decode reconstructs a Frame from a destuffed bit sequence spanning SOF
// through the CRC sequence. It verifies the CRC and returns an error on any
// format violation.
func Decode(destuffed bitstream.Sequence) (*Frame, error) {
	var a Assembler
	for i, l := range destuffed {
		st, err := a.Push(l)
		if err != nil {
			return nil, fmt.Errorf("frame: decode bit %d: %w", i, err)
		}
		if st == AssemblyDone && i != len(destuffed)-1 {
			return nil, fmt.Errorf("frame: %d trailing bits after CRC", len(destuffed)-1-i)
		}
	}
	if !a.Done() {
		return nil, fmt.Errorf("frame: truncated sequence (%d bits, in %s)", len(destuffed), a.Field())
	}
	if !a.CRCOK() {
		return nil, fmt.Errorf("frame: CRC mismatch: received %#x, computed %#x", a.ReceivedCRC(), a.ComputedCRC())
	}
	return a.Frame(), nil
}
