package frame

import (
	"fmt"

	"repro/internal/bitstream"
)

// Encoding is the full bit-level image of a frame as transmitted by an
// error-free transmitter, together with per-bit layout annotations.
type Encoding struct {
	// Bits are the on-the-wire levels from SOF through the last EOF bit,
	// with stuff bits inserted (stuffing covers SOF through the CRC
	// sequence).
	Bits bitstream.Sequence
	// Refs annotates every element of Bits with its field position.
	Refs []Ref
	// CRC is the 15-bit CRC computed over the destuffed SOF..data bits.
	CRC uint16
	// EOFBits is the EOF length used (7 for standard CAN, 2m for
	// MajorCAN_m).
	EOFBits int
	// StuffCount is the number of stuff bits inserted.
	StuffCount int
}

// Len returns the total number of bit times of the encoded frame
// (SOF..EOF inclusive, without interframe space).
func (e *Encoding) Len() int { return len(e.Bits) }

// IndexOf returns the offset within Bits of the idx-th bit (zero-based) of
// the given field, skipping stuff bits. It returns -1 if not present.
func (e *Encoding) IndexOf(f Field, idx int) int {
	for i, r := range e.Refs {
		if !r.Stuff && r.Field == f && r.Index == idx {
			return i
		}
	}
	return -1
}

// FieldLen returns the number of non-stuff bits of field f in the encoding.
func (e *Encoding) FieldLen(f Field) int {
	n := 0
	for _, r := range e.Refs {
		if !r.Stuff && r.Field == f {
			n++
		}
	}
	return n
}

// unstuffed returns the frame's bit layout before stuffing, split into the
// stuffed region (SOF..CRC) and the fixed-form tail (CRC delimiter..EOF).
func unstuffed(f *Frame, eofBits int) (stuffRegion, tail bitstream.Sequence, stuffRefs, tailRefs []Ref) {
	push := func(region *bitstream.Sequence, refs *[]Ref, field Field, l bitstream.Level) {
		idx := 0
		for i := len(*refs) - 1; i >= 0; i-- {
			if (*refs)[i].Field == field {
				idx = (*refs)[i].Index + 1
				break
			}
		}
		*region = append(*region, l)
		*refs = append(*refs, Ref{Field: field, Index: idx})
	}
	pushUint := func(region *bitstream.Sequence, refs *[]Ref, field Field, v uint64, width int) {
		for i := width - 1; i >= 0; i-- {
			push(region, refs, field, bitstream.FromBit(uint8(v>>uint(i)&1)))
		}
	}

	rtr := bitstream.Dominant
	if f.Remote {
		rtr = bitstream.Recessive
	}

	push(&stuffRegion, &stuffRefs, FieldSOF, bitstream.Dominant)
	switch f.EffectiveFormat() {
	case Extended:
		base := f.ID >> 18 & MaxStandardID
		ext := f.ID & (1<<18 - 1)
		pushUint(&stuffRegion, &stuffRefs, FieldID, uint64(base), 11)
		push(&stuffRegion, &stuffRefs, FieldSRR, bitstream.Recessive)
		push(&stuffRegion, &stuffRefs, FieldIDE, bitstream.Recessive)
		pushUint(&stuffRegion, &stuffRefs, FieldExtID, uint64(ext), 18)
		push(&stuffRegion, &stuffRefs, FieldRTR, rtr)
		push(&stuffRegion, &stuffRefs, FieldR1, bitstream.Dominant)
		push(&stuffRegion, &stuffRefs, FieldR0, bitstream.Dominant)
	default:
		pushUint(&stuffRegion, &stuffRefs, FieldID, uint64(f.ID), 11)
		push(&stuffRegion, &stuffRefs, FieldRTR, rtr)
		push(&stuffRegion, &stuffRefs, FieldIDE, bitstream.Dominant)
		push(&stuffRegion, &stuffRefs, FieldR0, bitstream.Dominant)
	}
	pushUint(&stuffRegion, &stuffRefs, FieldDLC, uint64(f.EffectiveDLC()), 4)
	if !f.Remote {
		for _, b := range f.Data {
			pushUint(&stuffRegion, &stuffRefs, FieldData, uint64(b), 8)
		}
	}
	crc := bitstream.ComputeCRC(stuffRegion)
	pushUint(&stuffRegion, &stuffRefs, FieldCRC, uint64(crc), bitstream.CRCWidth)

	push(&tail, &tailRefs, FieldCRCDelim, bitstream.Recessive)
	push(&tail, &tailRefs, FieldACKSlot, bitstream.Recessive)
	push(&tail, &tailRefs, FieldACKDelim, bitstream.Recessive)
	for i := 0; i < eofBits; i++ {
		push(&tail, &tailRefs, FieldEOF, bitstream.Recessive)
	}
	return stuffRegion, tail, stuffRefs, tailRefs
}

// Encode produces the on-the-wire image of the frame with the given EOF
// length (use StandardEOFBits for standard CAN and MinorCAN, 2m for
// MajorCAN_m).
func Encode(f *Frame, eofBits int) (*Encoding, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if eofBits < 1 {
		return nil, fmt.Errorf("frame: EOF length %d must be positive", eofBits)
	}
	stuffRegion, tail, stuffRefs, tailRefs := unstuffed(f, eofBits)

	enc := &Encoding{EOFBits: eofBits}
	var st bitstream.Stuffer
	for i, l := range stuffRegion {
		enc.Bits = append(enc.Bits, l)
		enc.Refs = append(enc.Refs, stuffRefs[i])
		if sb, ok := st.Push(l); ok {
			enc.Bits = append(enc.Bits, sb)
			ref := stuffRefs[i]
			ref.Stuff = true
			enc.Refs = append(enc.Refs, ref)
			enc.StuffCount++
		}
	}
	enc.Bits = append(enc.Bits, tail...)
	enc.Refs = append(enc.Refs, tailRefs...)

	crcStart := len(stuffRegion) - bitstream.CRCWidth
	enc.CRC = uint16(stuffRegion[crcStart:].Uint())
	return enc, nil
}

// Decode reconstructs a Frame from a destuffed bit sequence spanning SOF
// through the CRC sequence. It verifies the CRC and returns an error on any
// format violation.
func Decode(destuffed bitstream.Sequence) (*Frame, error) {
	var a Assembler
	for i, l := range destuffed {
		st, err := a.Push(l)
		if err != nil {
			return nil, fmt.Errorf("frame: decode bit %d: %w", i, err)
		}
		if st == AssemblyDone && i != len(destuffed)-1 {
			return nil, fmt.Errorf("frame: %d trailing bits after CRC", len(destuffed)-1-i)
		}
	}
	if !a.Done() {
		return nil, fmt.Errorf("frame: truncated sequence (%d bits, in %s)", len(destuffed), a.Field())
	}
	if !a.CRCOK() {
		return nil, fmt.Errorf("frame: CRC mismatch: received %#x, computed %#x", a.ReceivedCRC(), a.ComputedCRC())
	}
	return a.Frame(), nil
}
