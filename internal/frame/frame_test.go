package frame

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		frame   Frame
		wantErr bool
	}{
		{"valid standard", Frame{ID: 0x123, Data: []byte{1, 2}}, false},
		{"valid extended", Frame{ID: 0x1ABCDEF0, Format: Extended, Data: []byte{1}}, false},
		{"standard id too large", Frame{ID: 0x800}, true},
		{"extended id too large", Frame{ID: 1 << 29, Format: Extended}, true},
		{"too much data", Frame{ID: 1, Data: make([]byte, 9)}, true},
		{"remote with data", Frame{ID: 1, Remote: true, Data: []byte{1}}, true},
		{"remote with dlc", Frame{ID: 1, Remote: true, DLC: 4}, false},
		{"dlc mismatch", Frame{ID: 1, DLC: 3, Data: []byte{1}}, true},
		{"dlc 9..15 means 8 bytes", Frame{ID: 1, DLC: 12, Data: make([]byte, 8)}, false},
		{"dlc 9..15 with short data", Frame{ID: 1, DLC: 12, Data: make([]byte, 3)}, true},
		{"empty data frame", Frame{ID: 0}, false},
		{"max standard id", Frame{ID: MaxStandardID}, false},
		{"max extended id", Frame{ID: MaxExtendedID, Format: Extended}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.frame.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeLayoutStandard(t *testing.T) {
	f := &Frame{ID: 0x555, Data: []byte{0xAA}}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	// SOF must be the first bit and dominant.
	if enc.Bits[0] != bitstream.Dominant || enc.Refs[0].Field != FieldSOF {
		t.Error("first bit must be a dominant SOF")
	}
	// Field lengths.
	wantLens := map[Field]int{
		FieldSOF: 1, FieldID: 11, FieldRTR: 1, FieldIDE: 1, FieldR0: 1,
		FieldDLC: 4, FieldData: 8, FieldCRC: 15, FieldCRCDelim: 1,
		FieldACKSlot: 1, FieldACKDelim: 1, FieldEOF: 7,
	}
	for field, want := range wantLens {
		if got := enc.FieldLen(field); got != want {
			t.Errorf("field %s has %d bits, want %d", field, got, want)
		}
	}
	// ID 0x555 = 101 0101 0101 alternates, so no stuffing inside the ID.
	idStart := enc.IndexOf(FieldID, 0)
	got := enc.Bits[idStart : idStart+11].Uint()
	if got != 0x555 {
		t.Errorf("encoded ID = %#x, want 0x555", got)
	}
	// Tail must be all recessive (CRC delim, ACK slot as sent by TX, ACK
	// delim, EOF).
	tailStart := enc.IndexOf(FieldCRCDelim, 0)
	for i := tailStart; i < len(enc.Bits); i++ {
		if enc.Bits[i] != bitstream.Recessive {
			t.Errorf("tail bit %d (%s) = %v, want recessive", i, enc.Refs[i], enc.Bits[i])
		}
	}
}

func TestEncodeLayoutExtended(t *testing.T) {
	f := &Frame{ID: 0x1ABCDEF0, Format: Extended, Data: []byte{1, 2, 3}}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	wantLens := map[Field]int{
		FieldSOF: 1, FieldID: 11, FieldSRR: 1, FieldIDE: 1, FieldExtID: 18,
		FieldRTR: 1, FieldR1: 1, FieldR0: 1, FieldDLC: 4, FieldData: 24,
		FieldCRC: 15,
	}
	for field, want := range wantLens {
		if got := enc.FieldLen(field); got != want {
			t.Errorf("field %s has %d bits, want %d", field, got, want)
		}
	}
	// SRR and IDE must be recessive in the extended format.
	if enc.Bits[enc.IndexOf(FieldSRR, 0)] != bitstream.Recessive {
		t.Error("SRR must be recessive")
	}
	if enc.Bits[enc.IndexOf(FieldIDE, 0)] != bitstream.Recessive {
		t.Error("IDE must be recessive in extended format")
	}
}

func TestEncodeRemoteFrame(t *testing.T) {
	f := &Frame{ID: 0x10, Remote: true, DLC: 2}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	if enc.FieldLen(FieldData) != 0 {
		t.Error("remote frame must not have a data field")
	}
	if enc.Bits[enc.IndexOf(FieldRTR, 0)] != bitstream.Recessive {
		t.Error("RTR must be recessive in a remote frame")
	}
}

func TestEncodeEOFLength(t *testing.T) {
	f := &Frame{ID: 1}
	for _, eof := range []int{7, 10, 12, 16} {
		enc, err := Encode(f, eof)
		if err != nil {
			t.Fatal(err)
		}
		if got := enc.FieldLen(FieldEOF); got != eof {
			t.Errorf("EOF length = %d, want %d", got, eof)
		}
	}
	if _, err := Encode(f, 0); err == nil {
		t.Error("Encode must reject non-positive EOF length")
	}
}

func TestEncodeInvalidFrame(t *testing.T) {
	if _, err := Encode(&Frame{ID: 0x800}, 7); err == nil {
		t.Error("Encode must reject invalid frames")
	}
}

func TestEncodeStuffedNeverSixEqual(t *testing.T) {
	// The stuffed region must never contain six equal consecutive bits.
	f := &Frame{ID: 0, Data: []byte{0, 0, 0, 0}} // worst case: long dominant runs
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	crcDelim := enc.IndexOf(FieldCRCDelim, 0)
	run, last := 0, bitstream.Level(0)
	for i := 0; i < crcDelim; i++ {
		if enc.Bits[i] == last {
			run++
		} else {
			last, run = enc.Bits[i], 1
		}
		if run > bitstream.MaxEqualBits {
			t.Fatalf("six equal bits ending at stuffed position %d (%s)", i, enc.Refs[i])
		}
	}
	if enc.StuffCount == 0 {
		t.Error("an all-zero frame must require stuff bits")
	}
}

func randomFrame(r *rand.Rand) *Frame {
	f := &Frame{}
	if r.Intn(2) == 0 {
		f.Format = Extended
		f.ID = uint32(r.Intn(MaxExtendedID + 1))
	} else {
		f.Format = Standard
		f.ID = uint32(r.Intn(MaxStandardID + 1))
	}
	if r.Intn(8) == 0 {
		f.Remote = true
		f.DLC = uint8(r.Intn(9))
	} else {
		f.Data = make([]byte, r.Intn(9))
		r.Read(f.Data)
	}
	return f
}

// Property: encode -> destuff -> decode round-trips any valid frame.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1000; trial++ {
		f := randomFrame(r)
		enc, err := Encode(f, StandardEOFBits)
		if err != nil {
			t.Fatalf("trial %d: encode %v: %v", trial, f, err)
		}
		// Extract the stuffed region (SOF..CRC) and destuff it.
		crcDelim := enc.IndexOf(FieldCRCDelim, 0)
		destuffed, err := bitstream.Destuff(enc.Bits[:crcDelim])
		if err != nil {
			t.Fatalf("trial %d: destuff: %v", trial, err)
		}
		got, err := Decode(destuffed)
		if err != nil {
			t.Fatalf("trial %d: decode %v: %v", trial, f, err)
		}
		if !got.Equal(f) {
			t.Fatalf("trial %d: round trip mismatch:\n in  %v\n out %v", trial, f, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	f := &Frame{ID: 0x123, Data: []byte{9}}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	crcDelim := enc.IndexOf(FieldCRCDelim, 0)
	destuffed, err := bitstream.Destuff(enc.Bits[:crcDelim])
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		if _, err := Decode(destuffed[:len(destuffed)-1]); err == nil {
			t.Error("truncated frame must fail to decode")
		}
	})
	t.Run("corrupted data bit fails CRC", func(t *testing.T) {
		bad := destuffed.Clone()
		idx := 20 // somewhere in the identifier/control region
		bad[idx] = bad[idx].Invert()
		_, err := Decode(bad)
		if err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Errorf("corrupted frame error = %v, want CRC mismatch", err)
		}
	})
	t.Run("recessive SOF", func(t *testing.T) {
		bad := destuffed.Clone()
		bad[0] = bitstream.Recessive
		if _, err := Decode(bad); err == nil {
			t.Error("recessive SOF must fail")
		}
	})
	t.Run("trailing bits", func(t *testing.T) {
		bad := append(destuffed.Clone(), bitstream.Recessive)
		if _, err := Decode(bad); err == nil {
			t.Error("trailing bits must fail")
		}
	})
}

func TestAssemblerFieldTracking(t *testing.T) {
	f := &Frame{ID: 0x7FF, Data: []byte{0xFF}}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	crcDelim := enc.IndexOf(FieldCRCDelim, 0)
	destuffed, err := bitstream.Destuff(enc.Bits[:crcDelim])
	if err != nil {
		t.Fatal(err)
	}
	var a Assembler
	if a.Field() != FieldSOF {
		t.Errorf("initial field = %s, want SOF", a.Field())
	}
	seen := map[Field]bool{}
	for _, l := range destuffed {
		seen[a.Field()] = true
		if _, err := a.Push(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []Field{FieldSOF, FieldID, FieldRTR, FieldIDE, FieldR0, FieldDLC, FieldData, FieldCRC} {
		if !seen[want] {
			t.Errorf("assembler never reported field %s", want)
		}
	}
	if !a.Done() || !a.CRCOK() {
		t.Error("assembler must be done with a valid CRC")
	}
}

func TestAssemblerArbitrationWindow(t *testing.T) {
	// For a standard frame the arbitration field spans ID..RTR; the
	// assembler reports IDE as still-in-arbitration (harmless, see doc).
	var a Assembler
	if a.InArbitration() {
		t.Error("SOF is not arbitration")
	}
	if _, err := a.Push(bitstream.Dominant); err != nil { // SOF
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if !a.InArbitration() {
			t.Fatalf("ID bit %d must be arbitration", i)
		}
		if _, err := a.Push(bitstream.Recessive); err != nil {
			t.Fatal(err)
		}
		if i == 3 { // break the run of recessives to avoid stuff conditions in this destuffed feed
			// (destuffed feed has no stuff bits; nothing to do, loop keeps pushing)
			continue
		}
	}
	if !a.InArbitration() {
		t.Error("RTR bit must be arbitration")
	}
	if _, err := a.Push(bitstream.Dominant); err != nil { // RTR dominant: data frame
		t.Fatal(err)
	}
	if _, err := a.Push(bitstream.Dominant); err != nil { // IDE dominant: standard
		t.Fatal(err)
	}
	if a.InArbitration() {
		t.Error("r0 is not arbitration")
	}
}

func TestAssemblerExtendedParsing(t *testing.T) {
	f := &Frame{ID: 0x1FFFFFFF, Format: Extended, Remote: true, DLC: 0}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	crcDelim := enc.IndexOf(FieldCRCDelim, 0)
	destuffed, err := bitstream.Destuff(enc.Bits[:crcDelim])
	if err != nil {
		t.Fatal(err)
	}
	var a Assembler
	for _, l := range destuffed {
		if _, err := a.Push(l); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Extended() {
		t.Error("frame must parse as extended")
	}
	got := a.Frame()
	if !got.Equal(f) {
		t.Errorf("parsed %v, want %v", got, f)
	}
}

func TestFrameCloneEqual(t *testing.T) {
	f := &Frame{ID: 5, Data: []byte{1, 2, 3}}
	c := f.Clone()
	if !f.Equal(c) {
		t.Error("clone must be equal")
	}
	c.Data[0] = 9
	if f.Data[0] == 9 {
		t.Error("clone must not share data")
	}
	if f.Equal(c) {
		t.Error("modified clone must not be equal")
	}
	if f.Equal(&Frame{ID: 5, Remote: true, DLC: 3}) {
		t.Error("remote flag must participate in equality")
	}
}

func TestFrameStringHasKeyInfo(t *testing.T) {
	f := &Frame{ID: 0x123, Data: []byte{0xAB}}
	s := f.String()
	for _, want := range []string{"0x123", "data", "ab"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: the paper's reference frame length. With an 11-bit identifier
// and 8 data bytes, the maximum frame length is 111 stuffed bits + EOF; the
// paper uses tau_data = 110 bits as the typical length.
func TestTypicalFrameLengthNearPaper(t *testing.T) {
	f := &Frame{ID: 0x2AA, Data: []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA}}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	// SOF(1)+ID(11)+RTR+IDE+r0(3)+DLC(4)+data(64)+CRC(15)+CRCdel+ACK(2)+EOF(7)
	// = 108 bits + stuff bits.
	if enc.Len() < 108 || enc.Len() > 133 {
		t.Errorf("8-byte frame length = %d bits, outside CAN bounds", enc.Len())
	}
}

func TestEncodingIndexOfMissing(t *testing.T) {
	f := &Frame{ID: 1}
	enc, err := Encode(f, StandardEOFBits)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.IndexOf(FieldData, 0); got != -1 {
		t.Errorf("IndexOf missing field = %d, want -1", got)
	}
	if got := enc.IndexOf(FieldEOF, 99); got != -1 {
		t.Errorf("IndexOf out-of-range index = %d, want -1", got)
	}
}

func TestEffectiveDLCQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(n uint8) bool {
		size := int(n % 9)
		fr := Frame{ID: 1, Data: make([]byte, size)}
		return int(fr.EffectiveDLC()) == size
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
