package frame

import (
	"testing"

	"repro/internal/bitstream"
)

// FuzzPipeline drives the destuff+assemble receive pipeline with arbitrary
// byte-derived bit streams: it must never panic and must either reject the
// stream or complete a structurally valid frame.
func FuzzPipeline(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55})
	// A real frame image as a seed.
	fr := &Frame{ID: 0x123, Data: []byte{1, 2, 3}}
	if enc, err := Encode(fr, StandardEOFBits); err == nil {
		seed := make([]byte, 0, len(enc.Bits)/8+1)
		var cur byte
		for i, l := range enc.Bits {
			cur = cur<<1 | l.Bit()
			if i%8 == 7 {
				seed = append(seed, cur)
				cur = 0
			}
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var ds bitstream.Destuffer
		var a Assembler
		for _, b := range raw {
			for bit := 7; bit >= 0; bit-- {
				l := bitstream.FromBit(uint8(b >> uint(bit) & 1))
				kind, err := ds.Push(l)
				if err != nil {
					return // stuff error: rejected
				}
				if kind == bitstream.StuffBit {
					continue
				}
				if _, err := a.Push(l); err != nil {
					return // form error: rejected
				}
				if a.Done() {
					got := a.Frame()
					if err := got.Validate(); err != nil {
						t.Fatalf("assembler completed an invalid frame %v: %v", got, err)
					}
					return
				}
			}
		}
	})
}

// FuzzDestuff differentially checks the streaming Destuffer against the
// batch Destuff over arbitrary bit sequences, and pins the
// Stuff/Destuff round trip: whatever the transmit path stuffs, the
// receive path must strip back to the original sequence without error.
func FuzzDestuff(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF})
	f.Add([]byte{0xAA, 0x55, 0x0F, 0xF0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		seq := make(bitstream.Sequence, 0, len(raw)*8)
		for _, b := range raw {
			for bit := 7; bit >= 0; bit-- {
				seq = append(seq, bitstream.FromBit(uint8(b>>uint(bit)&1)))
			}
		}

		// Round trip: stuffing then destuffing is the identity and the
		// stuffed length matches the predicted one.
		stuffed := bitstream.Stuff(seq)
		if got := bitstream.StuffedLength(seq); got != len(stuffed) {
			t.Fatalf("StuffedLength = %d, len(Stuff) = %d", got, len(stuffed))
		}
		back, err := bitstream.Destuff(stuffed)
		if err != nil {
			t.Fatalf("destuffing our own stuffing fails: %v", err)
		}
		if len(back) != len(seq) {
			t.Fatalf("round trip length %d != %d", len(back), len(seq))
		}
		for i := range back {
			if back[i] != seq[i] {
				t.Fatalf("round trip bit %d: %v != %v", i, back[i], seq[i])
			}
		}

		// Differential: the streaming Destuffer must agree with the batch
		// Destuff on the raw (not necessarily valid) sequence — same
		// accepted data bits, same accept/reject verdict at the same bit.
		var ds bitstream.Destuffer
		var stream bitstream.Sequence
		var streamErr error
		for _, l := range seq {
			kind, err := ds.Push(l)
			if err != nil {
				streamErr = err
				break
			}
			if kind == bitstream.DataBit {
				stream = append(stream, l)
			}
		}
		batch, batchErr := bitstream.Destuff(seq)
		if (streamErr == nil) != (batchErr == nil) {
			t.Fatalf("streaming err %v, batch err %v", streamErr, batchErr)
		}
		if streamErr == nil {
			if len(stream) != len(batch) {
				t.Fatalf("streaming kept %d bits, batch %d", len(stream), len(batch))
			}
			for i := range stream {
				if stream[i] != batch[i] {
					t.Fatalf("destuffed bit %d: streaming %v, batch %v", i, stream[i], batch[i])
				}
			}
		}
	})
}

// FuzzEncodeDecode round-trips arbitrary frame parameters through the
// codec: valid inputs must round-trip exactly; invalid ones must be
// rejected at Encode.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint32(0x123), false, false, []byte{1, 2, 3})
	f.Add(uint32(0x1FFFFFFF), true, false, []byte{})
	f.Add(uint32(0x42), false, true, []byte{})
	f.Fuzz(func(t *testing.T, id uint32, extended, remote bool, data []byte) {
		fr := &Frame{ID: id, Remote: remote, Data: data}
		if extended {
			fr.Format = Extended
		}
		if remote {
			fr.Data = nil
			fr.DLC = uint8(len(data) % 9)
		}
		enc, err := Encode(fr, StandardEOFBits)
		if err != nil {
			return // invalid parameters, correctly rejected
		}
		crcDelim := enc.IndexOf(FieldCRCDelim, 0)
		destuffed, err := bitstream.Destuff(enc.Bits[:crcDelim])
		if err != nil {
			t.Fatalf("own encoding fails to destuff: %v", err)
		}
		got, err := Decode(destuffed)
		if err != nil {
			t.Fatalf("own encoding fails to decode: %v", err)
		}
		if !got.Equal(fr) {
			t.Fatalf("round trip mismatch: %v != %v", got, fr)
		}
	})
}
