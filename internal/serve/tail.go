package serve

import (
	"bytes"
	"sync"
)

// tailCapacity bounds a job's rendered-line tail. At ~150 bytes per
// NDJSON line this is on the order of 1 MiB per job, and only jobs whose
// events were actually streamed pay it.
const tailCapacity = 8192

// LineTail is a bounded buffer of rendered NDJSON event lines with
// absolute indexing: line i is the i-th line ever rendered for the job,
// regardless of how many have been dropped since. It is what lets a
// dropped /events client reconnect with ?from=N and resume exactly where
// it stopped, instead of re-reading from an already-drained ring.
type LineTail struct {
	mu    sync.Mutex
	start uint64 // absolute index of lines[0]
	lines [][]byte
	max   int
}

func NewLineTail(max int) *LineTail {
	if max < 1 {
		max = 1
	}
	return &LineTail{max: max}
}

// append records one rendered line, dropping the oldest beyond capacity.
func (t *LineTail) Append(line []byte) {
	cp := append([]byte(nil), line...)
	t.mu.Lock()
	t.lines = append(t.lines, cp)
	for len(t.lines) > t.max {
		t.lines = t.lines[1:]
		t.start++
	}
	t.mu.Unlock()
}

// since returns copies of the buffered lines at absolute index >= from
// and the absolute index of the first returned line (callers detect a
// gap by comparing it against the index they asked for).
func (t *LineTail) Since(from uint64) ([][]byte, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	first := t.start
	if from > first {
		first = from
	}
	end := t.start + uint64(len(t.lines))
	if first >= end {
		return nil, end
	}
	out := make([][]byte, 0, end-first)
	for i := first - t.start; i < uint64(len(t.lines)); i++ {
		out = append(out, t.lines[i])
	}
	return out, first
}

// next returns the absolute index one past the newest buffered line.
func (t *LineTail) Next() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.start + uint64(len(t.lines))
}

// lineSplitter adapts a byte stream into whole lines: it buffers writes
// and hands every complete '\n'-terminated line (without the newline) to
// fn. It is the glue between obs.JSONLWriter's buffered output and the
// line-indexed tail.
type lineSplitter struct {
	buf []byte
	fn  func(line []byte)
}

func (ls *lineSplitter) Write(p []byte) (int, error) {
	ls.buf = append(ls.buf, p...)
	for {
		i := bytes.IndexByte(ls.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		ls.fn(ls.buf[:i])
		ls.buf = ls.buf[i+1:]
	}
}
