package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/fsio"
	"repro/internal/serve/journal"
)

// Scheduler errors surfaced to the API layer.
var (
	// ErrQueueFull reports that the job's shard queue is at capacity
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrDraining reports that the scheduler is shutting down and accepts
	// no new jobs (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Admission classifies what Submit did with a spec.
type Admission int

const (
	// AdmissionNew: the job was enqueued and will run.
	AdmissionNew Admission = iota
	// AdmissionCoalesced: an identical job is already in flight; the
	// caller was attached to it (single-flight).
	AdmissionCoalesced
	// AdmissionCached: the result was already in the content-addressed
	// cache; no simulation will run.
	AdmissionCached
)

// Config parameterises the scheduler.
type Config struct {
	// Shards is the number of worker shards (default 4). Jobs are routed
	// by digest, so identical specs always land on the same shard.
	Shards int
	// QueueDepth bounds each shard's FIFO (default 64); a full queue
	// rejects with ErrQueueFull.
	QueueDepth int
	// JobTimeout bounds one execution attempt (default 10m; <0 disables).
	JobTimeout time.Duration
	// MaxRetries bounds re-runs after a Transient failure (default 1).
	MaxRetries int
	// Parallelism bounds concurrent simulations inside one job
	// (default 1 — cross-job parallelism comes from the shards).
	Parallelism int
	// CacheEntries bounds the in-memory result cache (default 256).
	CacheEntries int
	// SpoolDir, if non-empty, enables the on-disk result spool.
	SpoolDir string
	// JournalPath, if non-empty, enables the write-ahead job journal: an
	// accept record is fsync'd before Submit returns, and on startup every
	// accepted job with no terminal record is replayed.
	JournalPath string
	// CheckpointDir, if non-empty, enables batch-boundary checkpoints for
	// long-running jobs, letting a replayed job resume instead of restart.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in work units — sweep
	// points or campaign trials per save (default 8).
	CheckpointEvery int
	// FS is the filesystem seam under the spool, journal and checkpoint
	// stores (default: the real filesystem). Tests inject faults here.
	FS fsio.FS
	// ServiceEvents, if non-nil, receives service-level durability events:
	// storage degradation and journal recovery. Distinct from per-job
	// protocol event rings.
	ServiceEvents obs.Sink
	// Runner executes jobs (default Execute). Tests substitute stubs.
	Runner Runner
	// Metrics, if non-nil, is the shared simulation-metrics registry;
	// each job runs against a fork of it. Created when nil.
	Metrics *obs.Metrics
	// EventRing sizes each job's live protocol-event ring (default 4096).
	EventRing int
	// CaptureEvents bounds each job's archived event prefix, the stream
	// the trace endpoint synthesises spans from (default 65536; the
	// capture keeps the prefix and counts what it let go).
	CaptureEvents int
	// Logger, if non-nil, receives structured service logs (job
	// lifecycle, storage degradation, telemetry loss). Nil disables
	// logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 256
	}
	if c.Runner == nil {
		c.Runner = Execute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.EventRing < 1 {
		c.EventRing = 4096
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 8
	}
	if c.CaptureEvents < 1 {
		c.CaptureEvents = 65536
	}
	return c
}

// Job is one tracked submission: spec, lifecycle state, result and the
// live telemetry attachments. All mutable fields are guarded by mu; Done
// is closed exactly once when the job leaves the running state.
type Job struct {
	digest    Digest
	spec      *JobSpec
	canonical []byte

	ring    *obs.Ring       // live protocol events (lossy when unread)
	capture *obs.Capture    // archived event prefix for trace export
	events  *obs.LockedSink // producer-side adapter feeding ring + capture
	metrics *obs.Metrics    // fork of the scheduler registry
	done    chan struct{}

	streamMu chan struct{} // capacity-1 try-lock for the events streamer
	tail     *LineTail     // rendered NDJSON lines, for ?from= reconnects

	mu        sync.Mutex
	phases    []jobPhase
	state     State
	shard     int
	attempts  int
	cached    bool
	recovered bool // replayed from the journal after a restart
	coalesced uint64
	result    json.RawMessage
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// jobPhase is one wall-clock service phase of a job's life (a journal
// append, an execution attempt, a checkpoint save, the cache put),
// recorded as it happens and rendered as a service-track span by the
// trace endpoint.
type jobPhase struct {
	name    string
	attempt int // 1-based attempt the phase belongs to; 0 for job-scoped
	start   time.Time
	end     time.Time
}

// addPhase records one completed phase.
func (j *Job) addPhase(name string, attempt int, start, end time.Time) {
	j.mu.Lock()
	j.phases = append(j.phases, jobPhase{name: name, attempt: attempt, start: start, end: end})
	j.mu.Unlock()
}

// Digest returns the job's content address.
func (j *Job) Digest() Digest { return j.digest }

// Spec returns the normalized job spec.
func (j *Job) Spec() *JobSpec { return j.spec }

// Done is closed when the job reaches a terminal state. Cached jobs are
// born terminal.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the serialisable job record served by the API.
type JobStatus struct {
	ID            Digest          `json:"id"`
	Kind          Kind            `json:"kind"`
	State         State           `json:"state"`
	Shard         int             `json:"shard"`
	Attempts      int             `json:"attempts,omitempty"`
	Cached        bool            `json:"cached,omitempty"`
	Recovered     bool            `json:"recovered,omitempty"`
	Coalesced     uint64          `json:"coalesced,omitempty"`
	QueuedMs      int64           `json:"queuedMs,omitempty"`
	RunMs         int64           `json:"runMs,omitempty"`
	EventsDropped uint64          `json:"eventsDropped,omitempty"`
	Error         string          `json:"error,omitempty"`
	Result        json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:        j.digest,
		Kind:      j.spec.Kind,
		State:     j.state,
		Shard:     j.shard,
		Attempts:  j.attempts,
		Cached:    j.cached,
		Recovered: j.recovered,
		Coalesced: j.coalesced,
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.started.IsZero() && !j.submitted.IsZero() {
		s.QueuedMs = j.started.Sub(j.submitted).Milliseconds()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		s.RunMs = j.finished.Sub(j.started).Milliseconds()
	}
	if j.ring != nil {
		s.EventsDropped = j.ring.Dropped()
	}
	return s
}

type shard struct {
	ch       chan *Job
	executed atomic.Uint64
	busyMs   atomic.Uint64
}

// Scheduler owns the worker shards, the in-flight single-flight table
// and the content-addressed result cache.
type Scheduler struct {
	cfg     Config
	cache   *Cache
	ckpt    *CheckpointStore // nil when checkpointing is disabled
	jnl     *journal.Journal // nil when journaling is disabled
	metrics *obs.Metrics
	latency *obs.Histogram // job run latency, milliseconds
	shards  []*shard

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
	jnlClose   sync.Once
	start      time.Time

	// admit serializes admission and the drain transition: Submit holds
	// it across the write-ahead accept append (an fsync) and the shard
	// enqueue, and Drain holds it while flipping draining and closing the
	// shard channels, so no send can race a close. Keeping that span off
	// mu means readers (Job, Stats, the event streams) never wait on a
	// disk flush. Lock order: admit before mu, never the reverse.
	admit sync.Mutex

	mu        sync.Mutex
	draining  bool
	inflight  map[Digest]*Job
	records   map[Digest]*Job
	recordLog []Digest // completion order, for bounded record eviction

	recoveredJobs    atomic.Uint64
	submitted        atomic.Uint64
	coalescedTotal   atomic.Uint64
	executed         atomic.Uint64
	retried          atomic.Uint64
	failed           atomic.Uint64
	rejectedFull     atomic.Uint64
	rejectedDraining atomic.Uint64
	ringOverflows    atomic.Uint64 // job rings that dropped at least one event
	droppedEvents    atomic.Uint64 // events lost to full rings (finished jobs)
}

// logger returns the configured structured logger, or nil.
func (s *Scheduler) logger() *slog.Logger { return s.cfg.Logger }

func (s *Scheduler) logInfo(msg string, args ...any) {
	if lg := s.logger(); lg != nil {
		lg.Info(msg, args...)
	}
}

func (s *Scheduler) logWarn(msg string, args ...any) {
	if lg := s.logger(); lg != nil {
		lg.Warn(msg, args...)
	}
}

// latencyBoundsMs buckets job run latency from sub-millisecond cache
// misses on tiny scripts up to multi-minute verification sweeps.
var latencyBoundsMs = []uint64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000, 120000, 600000}

// NewScheduler creates the scheduler, starts its worker shards, and —
// when a journal is configured — replays every accepted-but-unfinished
// job found at startup through the shards, so a crashed service resumes
// its obligations before taking new ones.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheEntries, cfg.SpoolDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		cache:      cache,
		metrics:    cfg.Metrics,
		latency:    obs.NewHistogram(latencyBoundsMs),
		rootCtx:    ctx,
		rootCancel: cancel,
		inflight:   make(map[Digest]*Job),
		records:    make(map[Digest]*Job),
	}
	cache.OnDegrade(func(error) { s.serviceEvent(obs.KindStorageDegraded, obs.StoreSpool) })
	if cfg.CheckpointDir != "" {
		ckpt, err := NewCheckpointStore(cfg.CheckpointDir, cfg.FS)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serve: checkpoint store: %w", err)
		}
		ckpt.OnDegrade(func(error) { s.serviceEvent(obs.KindStorageDegraded, obs.StoreCheckpoint) })
		s.ckpt = ckpt
	}
	var pendingJobs []journal.Record
	if cfg.JournalPath != "" {
		jnl, info, err := journal.Open(cfg.FS, cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serve: journal: %w", err)
		}
		s.jnl = jnl
		pendingJobs = info.Pending
	}
	//lint:allow determinism -- serving-layer uptime clock; not simulation state
	s.start = time.Now()
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{ch: make(chan *Job, cfg.QueueDepth)}
		s.wg.Add(1)
		go s.worker(i)
	}
	// Replay after the workers are live: recovery enqueues block (never
	// reject) when they outnumber the queue depth, and the running workers
	// drain them.
	for _, rec := range pendingJobs {
		s.recoverJob(rec)
	}
	if n := len(pendingJobs); n > 0 {
		s.serviceEvent(obs.KindJournalRecovered, uint32(n))
	}
	return s, nil
}

// serviceEvent emits one durability event on the service-level sink and
// mirrors it to the structured log. Station -1 marks it as service-
// rather than station-scoped.
func (s *Scheduler) serviceEvent(kind obs.Kind, aux uint32) {
	if s.cfg.ServiceEvents != nil {
		s.cfg.ServiceEvents.Emit(obs.Event{
			Kind:    kind,
			Slot:    0,
			Station: -1,
			Aux:     aux,
		})
	}
	switch kind {
	case obs.KindStorageDegraded:
		s.logWarn("durable store degraded to memory-only", "store", storeName(aux))
	case obs.KindJournalRecovered:
		s.logInfo("journal recovery replayed unfinished jobs", "jobs", aux)
	}
}

// storeName renders a KindStorageDegraded store code for logs.
func storeName(code uint32) string {
	switch code {
	case obs.StoreJournal:
		return "journal"
	case obs.StoreSpool:
		return "spool"
	case obs.StoreCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// journalAppend logs one record, tolerating degradation: the first I/O
// failure emits a storage-degraded event, later appends are dropped
// silently. Durability degrades; serving never stops.
func (s *Scheduler) journalAppend(r journal.Record) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.Append(r); err != nil && !errors.Is(err, journal.ErrDegraded) {
		s.serviceEvent(obs.KindStorageDegraded, obs.StoreJournal)
	}
}

// recoverJob replays one journaled accept record after a restart. A
// record whose spec no longer decodes or hashes to its ID is closed out
// with a fail record (the journal itself was CRC-validated, so this
// means a version skew, not corruption); a record whose result is
// already in the cache is closed out as done; anything else re-enters
// the shards as a recovered job.
func (s *Scheduler) recoverJob(rec journal.Record) {
	spec, err := DecodeSpec(rec.Spec)
	if err != nil {
		s.journalAppend(journal.Record{Op: journal.OpFail, ID: rec.ID})
		return
	}
	spec.Normalize()
	canonical, digest, err := spec.Canonical()
	if err != nil || string(digest) != rec.ID {
		s.journalAppend(journal.Record{Op: journal.OpFail, ID: rec.ID})
		return
	}
	if ent, ok := s.cache.Get(digest); ok {
		// The job finished and its result reached the durable spool before
		// the crash; only the terminal record was lost.
		s.journalAppend(journal.Record{Op: journal.OpDone, ID: rec.ID})
		s.mu.Lock()
		s.remember(s.cachedJob(spec, canonical, digest, ent.Result))
		s.mu.Unlock()
		return
	}
	j := s.newJob(spec, canonical, digest)
	j.recovered = true
	s.mu.Lock()
	sh := s.shardOf(digest)
	j.shard = sh
	s.inflight[digest] = j
	s.remember(j)
	s.mu.Unlock()
	// No admit lock here: recovery runs inside the constructor, before the
	// scheduler escapes, so no Submit or Drain can be concurrent. The send
	// may still block when recovered jobs outnumber the queue — the
	// workers are already running and drain it.
	s.shards[sh].ch <- j
	s.recoveredJobs.Add(1)
}

// Cache exposes the result store (tests and stats).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Metrics exposes the shared simulation-metrics registry.
func (s *Scheduler) Metrics() *obs.Metrics { return s.metrics }

// shardOf routes a digest to a shard: the first 8 hex digits of the
// SHA-256 give a uniform index, and equal specs always map to the same
// shard, so a queued duplicate can never overtake its original.
func (s *Scheduler) shardOf(d Digest) int {
	var v uint64
	for _, c := range []byte(d.Short()) {
		v = v<<4 | uint64(hexVal(c))
	}
	return int(v % uint64(len(s.shards)))
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0
}

// Submit admits one normalized spec: a cache hit returns a terminal job
// record without running anything; an identical in-flight job coalesces;
// otherwise the job is enqueued on its digest shard. ErrQueueFull and
// ErrDraining report backpressure and shutdown respectively.
func (s *Scheduler) Submit(spec *JobSpec) (*Job, Admission, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, AdmissionNew, err
	}
	canonical, digest, err := spec.Canonical()
	if err != nil {
		return nil, AdmissionNew, err
	}

	// Admission is serialized end-to-end by s.admit: the draining check,
	// the single-flight decision, the write-ahead append and the enqueue
	// all happen under it, so two identical specs can never both miss the
	// inflight table, and a send can never race Drain's channel close.
	// s.mu is taken only for the map touches inside that span — readers
	// never block behind the accept fsync.
	s.admit.Lock()
	defer s.admit.Unlock()

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.rejectedDraining.Add(1)
		return nil, AdmissionNew, ErrDraining
	}
	if ent, ok := s.cache.Get(digest); ok {
		j := s.cachedJob(spec, canonical, digest, ent.Result)
		s.mu.Lock()
		s.remember(j)
		s.mu.Unlock()
		s.submitted.Add(1)
		return j, AdmissionCached, nil
	}
	s.mu.Lock()
	if j := s.inflight[digest]; j != nil {
		s.mu.Unlock()
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.submitted.Add(1)
		s.coalescedTotal.Add(1)
		return j, AdmissionCoalesced, nil
	}
	s.mu.Unlock()

	j := s.newJob(spec, canonical, digest)
	sh := s.shardOf(digest)
	j.shard = sh
	// The job enters the single-flight table before it is enqueued: the
	// worker that runs it deletes the entry when it finishes, so inserting
	// after the send would race a fast completion and leak a duplicate
	// admission. The entry is undone below if the queue turns out full.
	s.mu.Lock()
	s.inflight[digest] = j
	s.mu.Unlock()
	// Write-ahead: the accept record must be durable before the job is
	// visible to a worker (and before the API layer's 202), so a crash at
	// any later point replays it. The append happens under s.admit — which
	// orders it before the enqueue and before this job's terminal record —
	// deliberately not under s.mu, so the fsync stalls only concurrent
	// admissions, never the read paths.
	//lint:allow determinism -- journal latency phase timestamps; not simulation state
	jnlStart := time.Now()
	//lint:allow lockorder -- admit exists to hold the accept fsync ordered against enqueue and drain; readers use Scheduler.mu and never wait on it
	s.journalAppend(journal.Record{Op: journal.OpAccept, ID: string(digest), Spec: canonical})
	if s.jnl != nil {
		//lint:allow determinism -- journal latency phase timestamps; not simulation state
		j.addPhase("journal accept", 0, jnlStart, time.Now())
	}
	select {
	case s.shards[sh].ch <- j:
	default:
		s.mu.Lock()
		delete(s.inflight, digest)
		s.mu.Unlock()
		s.rejectedFull.Add(1)
		// Close out the journaled accept so the rejected job is not
		// replayed on restart; the client got a 429, not a 202.
		//lint:allow lockorder -- same admission-ordering rationale as the accept append above
		s.journalAppend(journal.Record{Op: journal.OpFail, ID: string(digest)})
		return nil, AdmissionNew, ErrQueueFull
	}
	s.mu.Lock()
	s.remember(j)
	s.mu.Unlock()
	s.submitted.Add(1)
	return j, AdmissionNew, nil
}

// newJob builds a runnable job record in the queued state.
func (s *Scheduler) newJob(spec *JobSpec, canonical []byte, digest Digest) *Job {
	ring := obs.NewRing(s.cfg.EventRing)
	capture := obs.NewCapture(s.cfg.CaptureEvents)
	j := &Job{
		digest:    digest,
		spec:      spec,
		canonical: canonical,
		ring:      ring,
		capture:   capture,
		events:    obs.Locked(obs.Multi(ring, capture)),
		metrics:   s.metrics.Fork(),
		done:      make(chan struct{}),
		streamMu:  make(chan struct{}, 1),
		tail:      NewLineTail(tailCapacity),
		state:     StateQueued,
	}
	// Surface the first lost live-stream event instead of letting the
	// stream silently thin out: a one-shot service event, a warning log
	// line, and the overflow counters in /v1/stats and /metrics. The
	// hook runs on the producer goroutine and emits into the service
	// sink, never back into the overflowing ring.
	ring.OnFirstDrop(func() {
		s.ringOverflows.Add(1)
		s.serviceEvent(obs.KindRingOverflow, uint32(ring.Cap()))
		s.logWarn("job event ring overflowed; live event stream is incomplete",
			"job", digest.Short(), "capacity", ring.Cap())
	})
	//lint:allow determinism -- serving-layer queue timestamps; not simulation state
	j.submitted = time.Now()
	return j
}

// cachedJob synthesizes a terminal record for a cache hit.
func (s *Scheduler) cachedJob(spec *JobSpec, canonical []byte, digest Digest, res json.RawMessage) *Job {
	j := &Job{
		digest:    digest,
		spec:      spec,
		canonical: canonical,
		done:      make(chan struct{}),
		streamMu:  make(chan struct{}, 1),
		state:     StateDone,
		cached:    true,
		result:    res,
	}
	close(j.done)
	return j
}

// remember tracks a job record for GET /v1/jobs/{id}, bounded so the
// record table cannot grow without limit. Eviction follows insertion
// order, skipping jobs still in flight. The limit covers the worst-case
// in-flight population (every queue full plus one job running per
// shard), and the scan is bounded to one pass over the log: rotating an
// in-flight digest to the back never shrinks the log, so an unbounded
// loop would spin forever under Scheduler.mu if every logged record
// were in flight.
func (s *Scheduler) remember(j *Job) {
	limit := s.cfg.CacheEntries + len(s.shards)*(s.cfg.QueueDepth+1)
	if _, exists := s.records[j.digest]; exists {
		s.records[j.digest] = j // refresh in place; keep the log duplicate-free
		return
	}
	s.records[j.digest] = j
	s.recordLog = append(s.recordLog, j.digest)
	for scan := len(s.recordLog); scan > 0 && len(s.recordLog) > limit; scan-- {
		d := s.recordLog[0]
		s.recordLog = s.recordLog[1:]
		if _, running := s.inflight[d]; running {
			s.recordLog = append(s.recordLog, d)
			continue
		}
		delete(s.records, d)
	}
}

// Job returns the record for a digest. A record evicted from the table
// but still cached is resynthesized from the result store.
func (s *Scheduler) Job(d Digest) (*Job, bool) {
	s.mu.Lock()
	if j, ok := s.records[d]; ok {
		s.mu.Unlock()
		return j, true
	}
	s.mu.Unlock()
	if ent, ok := s.cache.Get(d); ok {
		// The cache stores the canonical spec next to the result, so the
		// resynthesized record keeps its kind and payload.
		spec := &JobSpec{}
		if dec, err := DecodeSpec(ent.Spec); err == nil {
			spec = dec
		}
		j := &Job{
			digest:    d,
			spec:      spec,
			canonical: ent.Spec,
			done:      make(chan struct{}),
			streamMu:  make(chan struct{}, 1),
			state:     StateDone,
			cached:    true,
			result:    ent.Result,
		}
		close(j.done)
		return j, true
	}
	return nil, false
}

func (s *Scheduler) worker(si int) {
	defer s.wg.Done()
	sh := s.shards[si]
	for j := range sh.ch {
		s.runJob(sh, j)
	}
}

func (s *Scheduler) runJob(sh *shard, j *Job) {
	//lint:allow determinism -- serving-layer latency measurement; not simulation state
	start := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()

	var res json.RawMessage
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// A retried attempt replays the whole job, so give it a fresh
			// metrics fork (the job's fork must not double-count work from
			// the abandoned attempt) and mark the boundary in the event
			// ring so a live /events stream can tell the attempts apart.
			fork := s.metrics.Fork()
			j.mu.Lock()
			j.metrics = fork
			j.mu.Unlock()
			j.events.Emit(obs.Event{
				Kind:    obs.KindAttemptRetry,
				Slot:    0,
				Station: -1,
				Aux:     uint32(attempt),
			})
		}
		j.mu.Lock()
		metrics := j.metrics
		j.mu.Unlock()
		ctx := s.rootCtx
		cancel := context.CancelFunc(func() {})
		if s.cfg.JobTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		}
		//lint:allow determinism -- attempt phase timestamps; not simulation state
		attemptStart := time.Now()
		res, err = s.cfg.Runner(ctx, j.spec, ExecOptions{
			Parallelism: s.cfg.Parallelism,
			Events:      j.events,
			Metrics:     metrics,
			Checkpoint:  s.checkpointIO(j),
		})
		cancel()
		//lint:allow determinism -- attempt phase timestamps; not simulation state
		j.addPhase("attempt", attempt+1, attemptStart, time.Now())
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		if err == nil || !IsTransient(err) || attempt >= s.cfg.MaxRetries || s.rootCtx.Err() != nil {
			break
		}
		s.retried.Add(1)
	}

	//lint:allow determinism -- serving-layer latency measurement; not simulation state
	runEnd := time.Now()
	elapsedMs := uint64(runEnd.Sub(start).Milliseconds())
	sh.executed.Add(1)
	sh.busyMs.Add(elapsedMs)
	s.executed.Add(1)
	s.latency.Observe(elapsedMs)

	if err == nil {
		// Order matters: the result must be durable in the spool before the
		// journal's done record — a crash between the two replays the job
		// (harmless, deterministic), never loses an acknowledged result.
		//lint:allow determinism -- cache-put phase timestamps; not simulation state
		putStart := time.Now()
		s.cache.Put(j.digest, Entry{Spec: j.canonical, Result: res})
		//lint:allow determinism -- cache-put phase timestamps; not simulation state
		j.addPhase("cache put", 0, putStart, time.Now())
		if s.ckpt != nil {
			s.ckpt.Drop(j.digest)
		}
		//lint:allow determinism -- journal latency phase timestamps; not simulation state
		doneStart := time.Now()
		s.journalAppend(journal.Record{Op: journal.OpDone, ID: string(j.digest)})
		if s.jnl != nil {
			//lint:allow determinism -- journal latency phase timestamps; not simulation state
			j.addPhase("journal done", 0, doneStart, time.Now())
		}
	} else {
		s.failed.Add(1)
		// A shutdown-cancelled job keeps its pending journal record (and
		// checkpoint) so the next start replays and resumes it; only a real
		// failure is closed out as terminal.
		if s.rootCtx.Err() == nil {
			s.journalAppend(journal.Record{Op: journal.OpFail, ID: string(j.digest)})
		}
	}
	s.droppedEvents.Add(j.ring.Dropped())
	if err == nil {
		s.logInfo("job done", "job", j.digest.Short(), "ms", elapsedMs)
	} else {
		s.logWarn("job failed", "job", j.digest.Short(), "ms", elapsedMs, "error", err.Error())
	}
	j.mu.Lock()
	// finished is stamped after the durability writes above, so the root
	// job span in a trace encloses its cache-put and journal-done child
	// phases even when an fsync runs long; the latency metrics measure
	// only the run itself (runEnd) on purpose.
	//lint:allow determinism -- serving-layer phase timestamp; not simulation state
	j.finished = time.Now()
	if err == nil {
		j.state = StateDone
		j.result = res
	} else {
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.mu.Unlock()

	s.mu.Lock()
	delete(s.inflight, j.digest)
	s.mu.Unlock()
	close(j.done)
}

// checkpointIO wires a job to the checkpoint store: progress payloads
// live at the job's digest, and every load/save is surfaced on the job's
// event ring so a live /events stream shows recovery happening.
func (s *Scheduler) checkpointIO(j *Job) *CheckpointIO {
	if s.ckpt == nil {
		return nil
	}
	d := j.digest
	return &CheckpointIO{
		Every: s.cfg.CheckpointEvery,
		Load: func() (json.RawMessage, bool) {
			raw, ok := s.ckpt.Load(d)
			if ok {
				j.events.Emit(obs.Event{
					Kind:    obs.KindCheckpointResumed,
					Slot:    0,
					Station: -1,
					Aux:     uint32(len(raw)),
				})
			}
			return raw, ok
		},
		Save: func(raw json.RawMessage) error {
			//lint:allow determinism -- checkpoint phase timestamps; not simulation state
			saveStart := time.Now()
			if err := s.ckpt.Save(d, raw); err != nil {
				return err
			}
			//lint:allow determinism -- checkpoint phase timestamps; not simulation state
			j.addPhase("checkpoint save", 0, saveStart, time.Now())
			j.events.Emit(obs.Event{
				Kind:    obs.KindCheckpointSaved,
				Slot:    0,
				Station: -1,
				Aux:     uint32(len(raw)),
			})
			return nil
		},
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the scheduler down: new submissions are
// rejected with ErrDraining, queued and running jobs finish, and Drain
// returns when every shard is idle. If ctx expires first, the remaining
// jobs are cancelled through their run contexts and Drain waits for the
// workers to observe it, returning ctx's error.
func (s *Scheduler) Drain(ctx context.Context) error {
	// admit is held while flipping draining and closing the shard
	// channels: Submit holds it across its enqueue, so once we have it no
	// send can race the close (lock order: admit before mu). An admission
	// mid-fsync delays the transition by one append, which is bounded.
	s.admit.Lock()
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			close(sh.ch)
		}
	}
	s.mu.Unlock()
	s.admit.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	// The workers are the only journal writers left once submissions are
	// rejected, so the journal closes exactly when they go idle.
	closeJournal := func() {
		s.jnlClose.Do(func() {
			if s.jnl != nil {
				_ = s.jnl.Close()
			}
		})
	}
	select {
	case <-idle:
		closeJournal()
		return nil
	case <-ctx.Done():
		s.rootCancel()
		//lint:allow ctxflow -- bounded join: rootCancel has already fired, every worker observes it and exits
		<-idle
		closeJournal()
		return ctx.Err()
	}
}

// Stop shuts down immediately: running jobs are cancelled and Stop
// returns when the workers exit. For tests and benchmarks.
func (s *Scheduler) Stop() {
	s.rootCancel()
	drainCtx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(drainCtx)
}

// ShardStats is one shard's state for /v1/stats.
type ShardStats struct {
	Depth       int     `json:"depth"`
	Capacity    int     `json:"capacity"`
	Executed    uint64  `json:"executed"`
	BusyMs      uint64  `json:"busy_ms"`
	Utilization float64 `json:"utilization"`
}

// LatencyStats summarises job run latency for /v1/stats.
type LatencyStats struct {
	Count     uint64                `json:"count"`
	P50Ms     uint64                `json:"p50_ms"`
	P99Ms     uint64                `json:"p99_ms"`
	Histogram obs.HistogramSnapshot `json:"histogram"`
}

// JobCounters are the scheduler's admission and execution totals.
type JobCounters struct {
	Submitted         uint64 `json:"submitted"`
	Coalesced         uint64 `json:"coalesced"`
	Executed          uint64 `json:"executed"`
	Retried           uint64 `json:"retried"`
	Failed            uint64 `json:"failed"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedDraining  uint64 `json:"rejected_draining"`
}

// DurabilityStats reports the journal and checkpoint state for
// /v1/stats.
type DurabilityStats struct {
	JournalEnabled  bool                   `json:"journal_enabled"`
	JournalAppends  uint64                 `json:"journal_appends,omitempty"`
	JournalDegraded bool                   `json:"journal_degraded,omitempty"`
	FsyncP50Us      uint64                 `json:"fsync_p50_us,omitempty"`
	FsyncP99Us      uint64                 `json:"fsync_p99_us,omitempty"`
	FsyncLatencyUs  *obs.HistogramSnapshot `json:"fsync_latency_us,omitempty"`
	RecoveredJobs   uint64                 `json:"recovered_jobs,omitempty"`
	Checkpoints     *CheckpointStats       `json:"checkpoints,omitempty"`
}

// EventStats reports live-telemetry health for /v1/stats: rings that
// overflowed and the events they lost. Non-zero numbers mean /events
// streams were incomplete; traces still cover the captured prefix.
type EventStats struct {
	RingOverflows uint64 `json:"ring_overflows"`
	DroppedEvents uint64 `json:"dropped_events"`
}

// Stats is the full serialisable scheduler state for /v1/stats. The JSON
// field names are a stable contract consumed by mcctl and CI smoke jobs.
type Stats struct {
	Draining      bool            `json:"draining"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Jobs          JobCounters     `json:"jobs"`
	Cache         CacheStats      `json:"cache"`
	Shards        []ShardStats    `json:"shards"`
	Latency       LatencyStats    `json:"latency"`
	Durability    DurabilityStats `json:"durability"`
	Events        EventStats      `json:"events"`
	Sim           obs.Snapshot    `json:"sim"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	//lint:allow determinism -- serving-layer uptime clock; not simulation state
	uptime := time.Since(s.start)
	st := Stats{
		Draining:      s.Draining(),
		UptimeSeconds: uptime.Seconds(),
		Jobs: JobCounters{
			Submitted:         s.submitted.Load(),
			Coalesced:         s.coalescedTotal.Load(),
			Executed:          s.executed.Load(),
			Retried:           s.retried.Load(),
			Failed:            s.failed.Load(),
			RejectedQueueFull: s.rejectedFull.Load(),
			RejectedDraining:  s.rejectedDraining.Load(),
		},
		Cache: s.cache.Stats(),
		Durability: DurabilityStats{
			JournalEnabled: s.jnl != nil,
			RecoveredJobs:  s.recoveredJobs.Load(),
		},
		Latency: LatencyStats{
			Count:     s.latency.Count(),
			P50Ms:     s.latency.Quantile(0.50),
			P99Ms:     s.latency.Quantile(0.99),
			Histogram: s.latency.State(),
		},
		Events: EventStats{
			RingOverflows: s.ringOverflows.Load(),
			DroppedEvents: s.droppedEvents.Load(),
		},
		Sim: s.metrics.Snapshot(uptime),
	}
	if s.jnl != nil {
		st.Durability.JournalAppends = s.jnl.Appends()
		st.Durability.JournalDegraded = s.jnl.Degraded()
		st.Durability.FsyncP50Us = s.jnl.FsyncQuantile(0.50)
		st.Durability.FsyncP99Us = s.jnl.FsyncQuantile(0.99)
		fl := s.jnl.FsyncLatency()
		st.Durability.FsyncLatencyUs = &fl
	}
	if s.ckpt != nil {
		cs := s.ckpt.Stats()
		st.Durability.Checkpoints = &cs
	}
	st.Shards = make([]ShardStats, len(s.shards))
	busyTotal := uint64(0)
	for i, sh := range s.shards {
		busy := sh.busyMs.Load()
		busyTotal += busy
		st.Shards[i] = ShardStats{
			Depth:    len(sh.ch),
			Capacity: s.cfg.QueueDepth,
			Executed: sh.executed.Load(),
			BusyMs:   busy,
		}
		if ms := uptime.Milliseconds(); ms > 0 {
			st.Shards[i].Utilization = float64(busy) / float64(ms)
		}
	}
	return st
}

// Health snapshots the scheduler's health for GET /v1/healthz: the
// draining/degraded summary, per-store durability state, and build
// identity. Cheap enough for per-second registry heartbeats.
func (s *Scheduler) Health() HealthResponse {
	storeState := func(enabled, degraded bool) string {
		switch {
		case !enabled:
			return "disabled"
		case degraded:
			return "degraded"
		}
		return "ok"
	}
	h := HealthResponse{
		Status:      "ok",
		Version:     BuildVersion(),
		GoVersion:   runtime.Version(),
		Journal:     storeState(s.jnl != nil, s.jnl != nil && s.jnl.Degraded()),
		Spool:       storeState(s.cfg.SpoolDir != "", s.cache.Degraded()),
		Checkpoints: storeState(s.ckpt != nil, s.ckpt != nil && s.ckpt.Degraded()),
	}
	if h.Degraded() {
		h.Status = "degraded"
	}
	if s.Draining() {
		h.Status = "draining"
	}
	return h
}

// BuildVersion is the main module's version as stamped by the Go
// toolchain ("(devel)" for plain builds, a tag or pseudo-version for
// module-aware installs). Exported for the fleet coordinator, whose
// healthz carries the same build identity.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// RetryAfter estimates how long a rejected caller should back off:
// roughly one median job time per queued job ahead of it on the fullest
// shard, clamped to [1s, 30s].
func (s *Scheduler) RetryAfter() time.Duration {
	depth := 0
	for _, sh := range s.shards {
		if d := len(sh.ch); d > depth {
			depth = d
		}
	}
	p50 := s.latency.Quantile(0.50)
	if p50 == 0 {
		p50 = 100 // no history yet: assume a fast job
	}
	est := time.Duration(uint64(depth)*p50) * time.Millisecond
	if est < time.Second {
		est = time.Second
	}
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}

// String renders an admission for logs.
func (a Admission) String() string {
	switch a {
	case AdmissionNew:
		return "enqueued"
	case AdmissionCoalesced:
		return "coalesced"
	case AdmissionCached:
		return "cached"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}
