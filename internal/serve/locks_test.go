package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve/fsio"
)

// gateFS wraps an FS so that, once armed, every file Sync parks until
// the gate channel is closed, signalling entered when it does. It makes
// a slow journal fsync deterministic instead of a sleep-and-hope race.
type gateFS struct {
	fsio.FS
	armed   atomic.Bool
	gate    chan struct{}
	entered chan struct{}
}

func (g *gateFS) OpenFile(path string, flag int, perm os.FileMode) (fsio.File, error) {
	f, err := g.FS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

type gateFile struct {
	fsio.File
	g *gateFS
}

func (f *gateFile) Sync() error {
	if f.g.armed.Load() {
		select {
		case f.g.entered <- struct{}{}:
		default:
		}
		<-f.g.gate
	}
	return f.File.Sync()
}

// TestReadersNotBlockedByAdmissionFsync pins the admission-lock split:
// the write-ahead accept append (an fsync) happens under Scheduler.admit
// and must not hold Scheduler.mu, so Stats and Job lookups stay
// responsive while an admission is stalled on a slow disk. Before the
// split, both probes below deadlocked for the duration of the fsync.
func TestReadersNotBlockedByAdmissionFsync(t *testing.T) {
	dir := t.TempDir()
	g := &gateFS{FS: fsio.OrOS(nil), gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	release := make(chan struct{})
	s, err := NewScheduler(Config{
		Shards:       1,
		QueueDepth:   8,
		CacheEntries: 8,
		SpoolDir:     filepath.Join(dir, "spool"),
		JournalPath:  filepath.Join(dir, "wal"),
		FS:           g,
		Runner: func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
			select {
			case <-release:
				return json.RawMessage(`{"ok":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var openGate sync.Once
	releaseGate := func() {
		g.armed.Store(false)
		openGate.Do(func() { close(g.gate) })
	}
	defer s.Stop()
	defer releaseGate() // runs before Stop, so a failed probe cannot hang the drain

	// Admit one job normally so there is a record to look up.
	j1, _, err := s.Submit(sweepSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Arm the gate: the next admission parks inside its accept fsync with
	// admit held.
	g.armed.Store(true)
	submitted := make(chan error, 1)
	go func() {
		_, _, err := s.Submit(sweepSpec(t, 2))
		submitted <- err
	}()
	<-g.entered

	probe := func(name string, f func()) {
		done := make(chan struct{})
		go func() { f(); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("%s blocked behind the admission fsync\n%s", name, buf[:runtime.Stack(buf, true)])
		}
	}
	probe("Stats", func() { _ = s.Stats() })
	probe("Job", func() { _, _ = s.Job(j1.Digest()) })

	releaseGate()
	if err := <-submitted; err != nil {
		t.Fatalf("submit during fsync: %v", err)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
