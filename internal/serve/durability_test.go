package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/fsio"
)

// degradeEvents filters a memory sink down to storage-degraded events
// for one store code.
func degradeEvents(m *obs.Memory, store uint32) int {
	n := 0
	for _, e := range m.Events() {
		if e.Kind == obs.KindStorageDegraded && e.Aux == store {
			n++
		}
	}
	return n
}

// TestDrainRacingSpoolENOSPC is the graceful-drain-vs-disk-fault race:
// SIGTERM arrives while the spool is returning ENOSPC. The drain must
// still finish every in-flight job (results served from memory), the
// spool must hold no partial entry, the cache must degrade to
// memory-only with a storage-degraded event, and Drain must return nil —
// a full disk is a degradation, not a loss.
func TestDrainRacingSpoolENOSPC(t *testing.T) {
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	ffs := fsio.NewFaulty(nil)
	events := obs.NewMemory()
	release := make(chan struct{})
	s, err := NewScheduler(Config{
		Shards:        1,
		QueueDepth:    8,
		CacheEntries:  8,
		SpoolDir:      spool,
		JournalPath:   filepath.Join(dir, "wal"),
		FS:            ffs,
		ServiceEvents: events,
		Runner: func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
			select {
			case <-release:
				return json.RawMessage(`{"ok":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The disk fills after startup: every spool write from now on fails.
	ffs.Inject(&fsio.Fault{Op: fsio.OpWrite, Path: "spool", Err: syscall.ENOSPC})

	var jobs []*Job
	for seed := int64(1); seed <= 4; seed++ {
		j, _, err := s.Submit(sweepSpec(t, seed))
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		jobs = append(jobs, j)
	}

	drainErr := make(chan error, 1)
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { drainErr <- s.Drain(dctx) }()
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain under ENOSPC reported loss: %v", err)
	}

	for _, j := range jobs {
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("job %s ended %s (%s); in-flight work must finish during drain", st.ID.Short(), st.State, st.Error)
		}
		if len(st.Result) == 0 {
			t.Fatalf("job %s done without result", st.ID.Short())
		}
	}

	// No partial entry may be visible in the spool: the atomic write path
	// must clean up after itself even under ENOSPC.
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("spool holds %s after failed writes; partial entries must never persist", e.Name())
		}
	}

	if !s.Cache().Degraded() {
		t.Error("cache did not degrade to memory-only after persistent ENOSPC")
	}
	if n := degradeEvents(events, obs.StoreSpool); n != 1 {
		t.Errorf("got %d spool storage-degraded events, want exactly 1", n)
	}
	if st := s.Stats(); st.Cache.SpoolFails < spoolDegradeAfter {
		t.Errorf("spool_fails = %d, want >= %d", st.Cache.SpoolFails, spoolDegradeAfter)
	}
}

// TestSpoolCorruptionQuarantinedNeverServed: a spool file that fails its
// CRC is renamed aside and reported as a miss — under no circumstances
// is corrupt JSON served as a cached result.
func TestSpoolCorruptionQuarantinedNeverServed(t *testing.T) {
	spool := t.TempDir()
	spec := sweepSpec(t, 3)
	canonical, digest, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewCache(4, spool, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(digest, Entry{Spec: canonical, Result: json.RawMessage(`{"v":1}`)})

	// Bit rot: damage the persisted result in place.
	path := filepath.Join(spool, string(digest)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := []byte(strings.Replace(string(data), `{"v":1}`, `{"v":2}`, 1))
	if string(corrupted) == string(data) {
		t.Fatal("corruption did not take")
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(4, spool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(digest); ok {
		t.Fatal("corrupt spool entry was served")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt file was not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still at its spool path: %v", err)
	}
	if st := c2.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	// A second read must stay a miss, not resurrect the quarantined file.
	if _, ok := c2.Get(digest); ok {
		t.Fatal("quarantined entry served on re-read")
	}
}

// TestJournalDegradeKeepsServing: a journal whose writes fail flips to
// memory-only with one storage-degraded event; job execution and results
// are unaffected — only durability is lost.
func TestJournalDegradeKeepsServing(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaulty(nil)
	events := obs.NewMemory()
	s, err := NewScheduler(Config{
		Shards:        1,
		QueueDepth:    4,
		CacheEntries:  4,
		JournalPath:   filepath.Join(dir, "journal.wal"),
		FS:            ffs,
		ServiceEvents: events,
		Runner: func(context.Context, *JobSpec, ExecOptions) (json.RawMessage, error) {
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	ffs.Inject(&fsio.Fault{Op: fsio.OpWrite, Path: "journal.wal", Err: syscall.EIO})

	j, _, err := s.Submit(sweepSpec(t, 9))
	if err != nil {
		t.Fatalf("submit with sick journal: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if n := degradeEvents(events, obs.StoreJournal); n != 1 {
		t.Errorf("got %d journal storage-degraded events, want exactly 1", n)
	}
	if st := s.Stats(); !st.Durability.JournalDegraded {
		t.Error("stats do not report the degraded journal")
	}
}

// TestSchedulerRecoversJournaledJobs is the in-process half of the crash
// harness: jobs interrupted by shutdown keep their pending journal
// records, and the next scheduler on the same state replays them to
// completion, marked as recovered.
func TestSchedulerRecoversJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:       2,
		QueueDepth:   8,
		CacheEntries: 8,
		SpoolDir:     filepath.Join(dir, "spool"),
		JournalPath:  filepath.Join(dir, "spool", "journal.wal"),
	}

	blocked := cfg
	blocked.Runner = func(ctx context.Context, _ *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s1, err := NewScheduler(blocked)
	if err != nil {
		t.Fatal(err)
	}
	var ids []Digest
	for seed := int64(1); seed <= 3; seed++ {
		j, _, err := s1.Submit(sweepSpec(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.Digest())
	}
	s1.Stop() // shutdown cancellation: jobs fail locally but stay journaled

	quick := cfg
	quick.Runner = func(context.Context, *JobSpec, ExecOptions) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	}
	s2, err := NewScheduler(quick)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	for _, id := range ids {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id.Short())
		}
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("recovered job %s did not finish", id.Short())
		}
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("recovered job %s ended %s: %s", id.Short(), st.State, st.Error)
		}
		if !st.Recovered {
			t.Errorf("job %s not marked recovered", id.Short())
		}
	}
	if st := s2.Stats(); st.Durability.RecoveredJobs != 3 {
		t.Errorf("recovered_jobs = %d, want 3", st.Durability.RecoveredJobs)
	}

	// Third start: everything completed, so recovery has nothing to do
	// and the compacted journal is empty.
	s3, err := NewScheduler(quick)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Stop()
	if st := s3.Stats(); st.Durability.RecoveredJobs != 0 {
		t.Errorf("clean restart recovered %d jobs, want 0", st.Durability.RecoveredJobs)
	}
}

// TestCheckpointStoreRejectsCorruptAndMisaddressed: checkpoints that
// fail CRC or carry another job's id are quarantined, not resumed from.
func TestCheckpointStoreRejectsCorruptAndMisaddressed(t *testing.T) {
	dir := t.TempDir()
	cs, err := NewCheckpointStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDigest("ckpt-a")
	other := testDigest("ckpt-b")
	if err := cs.Save(d, json.RawMessage(`{"trial":7}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := cs.Load(d); !ok || string(got) != `{"trial":7}` {
		t.Fatalf("round trip failed: %q %v", got, ok)
	}

	// Misaddressed: copy a's checkpoint onto b's path.
	data, err := os.ReadFile(filepath.Join(dir, string(d)+".ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, string(other)+".ckpt.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.Load(other); ok {
		t.Fatal("checkpoint addressed to another job was accepted")
	}

	// Corrupt: damage the payload under the CRC.
	bad := []byte(strings.Replace(string(data), `trial`, `trail`, 1))
	if err := os.WriteFile(filepath.Join(dir, string(d)+".ckpt.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.Load(d); ok {
		t.Fatal("corrupt checkpoint was accepted")
	}
	if st := cs.Stats(); st.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", st.Quarantined)
	}
}
