package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", json.RawMessage(`1`))
	c.Put("b", json.RawMessage(`2`))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", json.RawMessage(`3`))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	for _, d := range []Digest{"a", "c"} {
		if _, ok := c.Get(d); !ok {
			t.Fatalf("%s evicted, want retained", d)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCacheSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", json.RawMessage(`{"x":1}`))
	c.Put("b", json.RawMessage(`{"x":2}`)) // evicts a from memory
	res, ok := c.Get("a")
	if !ok {
		t.Fatal("spool fallback failed after memory eviction")
	}
	if string(res) != `{"x":1}` {
		t.Fatalf("spool returned %s", res)
	}
	if st := c.Stats(); st.SpoolHits != 1 {
		t.Fatalf("spool hits = %d, want 1", st.SpoolHits)
	}

	// A fresh cache over the same spool dir sees the results: the spool
	// is a valid cache for any process because digests are content
	// addresses.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := c2.Get("b"); !ok || string(res) != `{"x":2}` {
		t.Fatalf("cross-process spool read: ok=%v res=%s", ok, res)
	}
}

func TestCacheRejectsCorruptSpoolEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("corrupt spool entry served as a result")
	}
}

func TestCacheSpoolFilesAreAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", json.RawMessage(`[1,2,3]`))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "a.json" {
			t.Fatalf("unexpected spool residue %q (temp file not cleaned up?)", e.Name())
		}
	}
}

func TestCacheHitRatio(t *testing.T) {
	c, err := NewCache(8, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(Digest(fmt.Sprintf("d%d", i)), json.RawMessage(`0`))
	}
	c.Get("d0")
	c.Get("d1")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if want := 2.0 / 3.0; st.HitRatio < want-1e-9 || st.HitRatio > want+1e-9 {
		t.Fatalf("hit ratio = %g, want %g", st.HitRatio, want)
	}
}
