package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testDigest derives a well-formed content address from a label, so
// tests exercise the same digest shape production uses (spool lookups
// reject anything else).
func testDigest(label string) Digest {
	sum := sha256.Sum256([]byte(label))
	return Digest(hex.EncodeToString(sum[:]))
}

// ent wraps a result in a minimal cache entry.
func ent(result string) Entry {
	return Entry{Spec: json.RawMessage(`{}`), Result: json.RawMessage(result)}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b, cc := testDigest("a"), testDigest("b"), testDigest("c")
	c.Put(a, ent(`1`))
	c.Put(b, ent(`2`))
	if _, ok := c.Get(a); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put(cc, ent(`3`))
	if _, ok := c.Get(b); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	for _, d := range []Digest{a, cc} {
		if _, ok := c.Get(d); !ok {
			t.Fatalf("%s evicted, want retained", d.Short())
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCacheSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := testDigest("a"), testDigest("b")
	c.Put(a, ent(`{"x":1}`))
	c.Put(b, ent(`{"x":2}`)) // evicts a from memory
	e, ok := c.Get(a)
	if !ok {
		t.Fatal("spool fallback failed after memory eviction")
	}
	if string(e.Result) != `{"x":1}` {
		t.Fatalf("spool returned %s", e.Result)
	}
	if st := c.Stats(); st.SpoolHits != 1 {
		t.Fatalf("spool hits = %d, want 1", st.SpoolHits)
	}

	// A fresh cache over the same spool dir sees the results: the spool
	// is a valid cache for any process because digests are content
	// addresses.
	c2, err := NewCache(4, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := c2.Get(b); !ok || string(e.Result) != `{"x":2}` {
		t.Fatalf("cross-process spool read: ok=%v res=%s", ok, e.Result)
	}
}

func TestCacheRejectsCorruptSpoolEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{
		"{torn",             // invalid JSON
		`[1,2,3]`,           // valid JSON, wrong shape
		`{"spec":{}}`,       // entry without a result
		`{"result":"{bad}}`, // truncated result string
	} {
		d := testDigest(fmt.Sprintf("corrupt-%d", i))
		if err := os.WriteFile(filepath.Join(dir, string(d)+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(d); ok {
			t.Fatalf("corrupt spool entry %q served as a result", body)
		}
	}
}

func TestCacheSpoolRequiresWellFormedDigest(t *testing.T) {
	// The spool lives in a subdirectory with a valid-JSON loot file next
	// to it; a digest smuggling path separators must not reach it.
	root := t.TempDir()
	spool := filepath.Join(root, "spool")
	c, err := NewCache(1, spool, nil)
	if err != nil {
		t.Fatal(err)
	}
	loot, _ := json.Marshal(ent(`"secret"`))
	if err := os.WriteFile(filepath.Join(root, "loot.json"), loot, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, d := range []Digest{
		"../loot",
		Digest("../" + testDigest("x")),
		"loot",
		Digest(testDigest("x")[:63]),          // too short
		Digest(string(testDigest("x")) + "a"), // too long
		Digest("A" + testDigest("x")[1:]),     // uppercase hex
	} {
		if _, ok := c.Get(d); ok {
			t.Fatalf("malformed digest %q read through the spool", d)
		}
	}
	// Malformed digests are never written to the spool either.
	c.Put("../loot2", ent(`1`))
	if _, err := os.Stat(filepath.Join(root, "loot2.json")); !os.IsNotExist(err) {
		t.Fatal("malformed digest escaped the spool directory on Put")
	}
}

func TestCacheSpoolFilesAreAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := testDigest("a")
	c.Put(a, ent(`[1,2,3]`))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != string(a)+".json" {
			t.Fatalf("unexpected spool residue %q (temp file not cleaned up?)", e.Name())
		}
	}
}

func TestCacheHitRatio(t *testing.T) {
	c, err := NewCache(8, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(testDigest(fmt.Sprintf("d%d", i)), ent(`0`))
	}
	c.Get(testDigest("d0"))
	c.Get(testDigest("d1"))
	c.Get(testDigest("missing"))
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if want := 2.0 / 3.0; st.HitRatio < want-1e-9 || st.HitRatio > want+1e-9 {
		t.Fatalf("hit ratio = %g, want %g", st.HitRatio, want)
	}
}
