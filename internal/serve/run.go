package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/verify"
)

// ExecOptions carries the execution-side knobs a job run gets from the
// scheduler: knobs that change how fast a job runs and what telemetry it
// emits, never what result it produces — they are invisible to the job
// digest.
type ExecOptions struct {
	// Parallelism bounds concurrent simulations inside one job (sweep
	// points, verify patterns).
	Parallelism int
	// Events, if non-nil, receives the live protocol event stream. Sweep
	// jobs emit from several worker goroutines, so the sink must accept
	// concurrent producers (obs.Locked).
	Events obs.Sink
	// Metrics, if non-nil, aggregates the job's simulation totals;
	// the scheduler passes a fork of its shared registry.
	Metrics *obs.Metrics
	// Checkpoint, if non-nil, lets long-running kinds (sweeps, campaigns)
	// persist batch-boundary progress and resume after a crash. Like the
	// other options it never changes what result a job produces — a
	// checkpoint holds only completed work, so a resumed run is
	// byte-identical to an uninterrupted one.
	Checkpoint *CheckpointIO
}

// CheckpointIO is the progress plumbing a job run gets from the
// scheduler: Load returns the previously persisted payload (if any),
// Save replaces it, Every sets the batch cadence in work units (sweep
// points, campaign trials).
type CheckpointIO struct {
	Load  func() (json.RawMessage, bool)
	Save  func(json.RawMessage) error
	Every int
}

// Runner executes one normalized job spec and returns its canonical JSON
// result. The scheduler's default is Execute; tests substitute stubs.
type Runner func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error)

// Transient wraps an error to mark it retryable: the scheduler re-runs
// the job (bounded by its retry budget) instead of failing it.
// Simulation outcomes are deterministic and never transient; the marker
// exists for infrastructure faults around the run.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// sweepResume adapts CheckpointIO to the sweep engine's resume contract:
// the persisted payload is the completed seed-order prefix of point
// outcomes. An undecodable payload is ignored — the sweep validates the
// prefix against its own seed stream anyway, so a bad checkpoint can
// only cost work, never corrupt a result.
func sweepResume(ck *CheckpointIO) *sim.SweepResume {
	if ck == nil {
		return nil
	}
	r := &sim.SweepResume{Every: ck.Every}
	if raw, ok := ck.Load(); ok {
		var prior []sim.PointOutcome
		if json.Unmarshal(raw, &prior) == nil {
			r.Prior = prior
		}
	}
	r.Save = func(done []sim.PointOutcome) error {
		b, err := json.Marshal(done)
		if err != nil {
			return err
		}
		return ck.Save(b)
	}
	return r
}

// ckptGiveUpAfter is how many consecutive Save failures campaignResume
// tolerates before it stops checkpointing for the rest of the job. It
// mirrors the CheckpointStore degrade policy: checkpoints are an
// optimization, so a dead store must cost redundant work on the next
// restart, never fail the job — but hammering a failing disk at every
// trial boundary for the rest of a long campaign helps nobody.
const ckptGiveUpAfter = 3

// campaignResume adapts CheckpointIO to the campaign engine: the payload
// is a CampaignProgress snapshot, persisted every Every trial
// boundaries. Save errors are counted, not discarded: one failure is
// retried at the next boundary (transient ENOSPC heals), a consecutive
// run of them disables checkpointing for the remainder of the job.
func campaignResume(ck *CheckpointIO) (*chaos.CampaignProgress, func(chaos.CampaignProgress)) {
	if ck == nil {
		return nil, nil
	}
	var resume *chaos.CampaignProgress
	if raw, ok := ck.Load(); ok {
		var p chaos.CampaignProgress
		if json.Unmarshal(raw, &p) == nil {
			resume = &p
		}
	}
	every := ck.Every
	if every < 1 {
		every = 1
	}
	boundaries := 0
	failStreak := 0
	onProgress := func(p chaos.CampaignProgress) {
		boundaries++
		if boundaries%every != 0 || failStreak >= ckptGiveUpAfter {
			return
		}
		b, err := json.Marshal(p)
		if err != nil {
			return
		}
		if err := ck.Save(b); err != nil {
			failStreak++
			return
		}
		failStreak = 0
	}
	return resume, onProgress
}

// Execute runs one job spec to completion: the default Runner. A
// cancelled or expired ctx fails the job — partial results are never
// returned, so nothing incomplete can reach the content-addressed cache.
func Execute(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var (
		out any
		err error
	)
	switch spec.Kind {
	case KindSweep:
		var tel sim.PointTelemetry
		if opt.Events != nil || opt.Metrics != nil {
			tel = func(int, int64) (obs.Sink, *obs.Metrics) {
				var m *obs.Metrics
				if opt.Metrics != nil {
					m = opt.Metrics.Fork()
				}
				return opt.Events, m
			}
		}
		out, err = sim.RunSweepSpecResumable(ctx, *spec.Sweep, opt.Parallelism, tel, sweepResume(opt.Checkpoint))
	case KindCampaign:
		resume, onProgress := campaignResume(opt.Checkpoint)
		out, err = chaos.RunCampaignSpecResumable(ctx, *spec.Campaign,
			chaos.Telemetry{Events: opt.Events, Metrics: opt.Metrics}, nil, resume, onProgress)
	case KindVerify:
		out, err = verify.RunSpec(ctx, *spec.Verify, opt.Parallelism)
	case KindScript:
		var r *chaos.Result
		r, err = chaos.RunObservedContext(ctx, *spec.Script, chaos.Telemetry{Events: opt.Events, Metrics: opt.Metrics})
		if err == nil {
			out = &ScriptOutcome{
				Script:     *spec.Script,
				Verdict:    chaos.VerdictOf(r, chaos.DefaultProbes()),
				FramesSent: r.FramesSent,
				Incomplete: r.Incomplete,
			}
		}
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	// A sweep interrupted by ctx returns a partial aggregate instead of
	// an error (the CLI contract); for the cache that partial result is
	// incomplete, so surface the cancellation as a failure here.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("serve: encode job result: %w", err)
	}
	return res, nil
}
