package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Entry is one stored cache value: the canonical job spec that produced
// a result plus the canonical result JSON. Keeping the spec next to the
// result lets a job record evicted from the scheduler's table be
// resynthesized with its full spec — kind included — instead of a bare
// result blob, and makes every spool file self-describing.
type Entry struct {
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// Cache is the content-addressed result store: an in-memory LRU over
// canonical entries, keyed by job digest, with an optional on-disk JSON
// spool behind it. Determinism makes it sound: a digest fully determines
// its result, so an entry can never go stale — eviction is purely a
// capacity concern, and a spool file written by any process is valid for
// every other.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[Digest]*list.Element // digest -> element holding *cacheEntry

	spool string // spool directory, or "" for memory-only

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	spoolHits  atomic.Uint64
	spoolFails atomic.Uint64
}

type cacheEntry struct {
	digest Digest
	entry  Entry
}

// NewCache creates a cache holding at most max in-memory entries
// (minimum 1). A non-empty spoolDir enables the disk spool; the
// directory is created if missing.
func NewCache(max int, spoolDir string) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	if spoolDir != "" {
		if err := os.MkdirAll(spoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache spool: %w", err)
		}
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[Digest]*list.Element),
		spool: spoolDir,
	}, nil
}

func (c *Cache) spoolPath(d Digest) string {
	return filepath.Join(c.spool, string(d)+".json")
}

// Get returns the cached entry for a digest. A memory miss falls back to
// the spool; a spool hit is promoted into memory. Only well-formed
// digests (Digest.Valid) touch the spool: the digest becomes a file
// name, and job ids arrive from the URL path, so an unchecked one could
// address arbitrary *.json files outside the spool directory.
func (c *Cache) Get(d Digest) (Entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry).entry
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true
	}
	c.mu.Unlock()
	if c.spool != "" && d.Valid() {
		if data, err := os.ReadFile(c.spoolPath(d)); err == nil {
			var e Entry
			if json.Unmarshal(data, &e) == nil && len(e.Result) > 0 && json.Valid(e.Result) {
				c.hits.Add(1)
				c.spoolHits.Add(1)
				c.insert(d, e)
				return e, true
			}
		}
	}
	c.misses.Add(1)
	return Entry{}, false
}

// Put stores an entry under its digest, evicting least-recently-used
// entries beyond capacity and writing through to the spool. Spool write
// failures are counted, not fatal: the memory entry stands. Malformed
// digests are never spooled (see Get), so the spool holds only files
// named by true content addresses.
func (c *Cache) Put(d Digest, e Entry) {
	c.insert(d, e)
	if c.spool != "" && d.Valid() {
		data, err := json.Marshal(e)
		if err == nil {
			err = writeFileAtomic(c.spoolPath(d), data)
		}
		if err != nil {
			c.spoolFails.Add(1)
		}
	}
}

func (c *Cache) insert(d Digest, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).entry = e
		return
	}
	c.items[d] = c.ll.PushFront(&cacheEntry{digest: d, entry: e})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).digest)
		c.evictions.Add(1)
	}
}

// writeFileAtomic writes via a temp file and rename, so a crashed or
// concurrent writer can never leave a torn spool entry.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spool-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the serialisable cache state for /v1/stats.
type CacheStats struct {
	Entries    int     `json:"entries"`
	Capacity   int     `json:"capacity"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRatio   float64 `json:"hit_ratio"`
	Evictions  uint64  `json:"evictions"`
	SpoolHits  uint64  `json:"spool_hits,omitempty"`
	SpoolFails uint64  `json:"spool_fails,omitempty"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Entries:    c.Len(),
		Capacity:   c.max,
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		SpoolHits:  c.spoolHits.Load(),
		SpoolFails: c.spoolFails.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
