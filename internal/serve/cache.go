package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/serve/fsio"
)

// Entry is one stored cache value: the canonical job spec that produced
// a result plus the canonical result JSON. Keeping the spec next to the
// result lets a job record evicted from the scheduler's table be
// resynthesized with its full spec — kind included — instead of a bare
// result blob, and makes every spool file self-describing.
type Entry struct {
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// spoolEntry is the on-disk form of an Entry: the entry plus a CRC32
// over its spec and result bytes. The atomic-rename write path should
// make torn files impossible, but the CRC makes corruption detectable
// anyway — storage that lies about fsync, bit rot, or an operator's
// stray edit all fail the checksum, and a failed checksum quarantines
// the file rather than serving it.
type spoolEntry struct {
	CRC    uint32          `json:"crc"`
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// entryCRC checksums an entry's content for the spool frame.
func entryCRC(e Entry) uint32 {
	c := crc32.ChecksumIEEE(e.Spec)
	return crc32.Update(c, crc32.IEEETable, e.Result)
}

// spoolDegradeAfter is the number of consecutive spool write failures
// that flips the cache to memory-only operation.
const spoolDegradeAfter = 3

// Cache is the content-addressed result store: an in-memory LRU over
// canonical entries, keyed by job digest, with an optional on-disk JSON
// spool behind it. Determinism makes it sound: a digest fully determines
// its result, so an entry can never go stale — eviction is purely a
// capacity concern, and a spool file written by any process is valid for
// every other.
//
// The spool is written through the fsio seam with full fsync discipline
// and read back under CRC verification: a file that fails its checksum
// is quarantined (renamed aside) and never served, and persistent write
// failures (disk full, I/O errors) degrade the cache to memory-only
// instead of failing jobs.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[Digest]*list.Element // digest -> element holding *cacheEntry

	fs    fsio.FS
	spool string // spool directory, or "" for memory-only

	spoolFailStreak atomic.Uint32
	degraded        atomic.Bool
	onDegrade       func(err error) // called once, on the flip to degraded

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	spoolHits   atomic.Uint64
	spoolFails  atomic.Uint64
	quarantined atomic.Uint64
}

type cacheEntry struct {
	digest Digest
	entry  Entry
}

// NewCache creates a cache holding at most max in-memory entries
// (minimum 1). A non-empty spoolDir enables the disk spool; the
// directory is created if missing. fs nil means the real filesystem.
func NewCache(max int, spoolDir string, fs fsio.FS) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	fs = fsio.OrOS(fs)
	if spoolDir != "" {
		if err := fs.MkdirAll(spoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache spool: %w", err)
		}
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[Digest]*list.Element),
		fs:    fs,
		spool: spoolDir,
	}, nil
}

// OnDegrade registers a callback invoked once when the spool degrades to
// memory-only. Must be set before the cache is shared.
func (c *Cache) OnDegrade(fn func(err error)) { c.onDegrade = fn }

func (c *Cache) spoolPath(d Digest) string {
	return c.spool + "/" + string(d) + ".json"
}

// spoolActive reports whether spool I/O should be attempted.
func (c *Cache) spoolActive(d Digest) bool {
	return c.spool != "" && !c.degraded.Load() && d.Valid()
}

// Get returns the cached entry for a digest. A memory miss falls back to
// the spool; a spool hit is promoted into memory. Only well-formed
// digests (Digest.Valid) touch the spool: the digest becomes a file
// name, and job ids arrive from the URL path, so an unchecked one could
// address arbitrary *.json files outside the spool directory.
func (c *Cache) Get(d Digest) (Entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry).entry
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true
	}
	c.mu.Unlock()
	if c.spoolActive(d) {
		if data, err := c.fs.ReadFile(c.spoolPath(d)); err == nil {
			if e, ok := c.decodeSpool(d, data); ok {
				c.hits.Add(1)
				c.spoolHits.Add(1)
				c.insert(d, e)
				return e, true
			}
		}
	}
	c.misses.Add(1)
	return Entry{}, false
}

// decodeSpool validates one spool file; a malformed or checksum-failing
// file is quarantined — renamed aside so no later read can serve it and
// an operator can inspect it — and reported as a miss.
func (c *Cache) decodeSpool(d Digest, data []byte) (Entry, bool) {
	var se spoolEntry
	if json.Unmarshal(data, &se) == nil &&
		len(se.Result) > 0 && json.Valid(se.Result) &&
		se.CRC == entryCRC(Entry{Spec: se.Spec, Result: se.Result}) {
		return Entry{Spec: se.Spec, Result: se.Result}, true
	}
	c.quarantined.Add(1)
	//lint:allow errsink -- best-effort quarantine of an already-corrupt spool file; the miss is the real signal
	_ = c.fs.Rename(c.spoolPath(d), c.spoolPath(d)+".corrupt")
	return Entry{}, false
}

// Put stores an entry under its digest, evicting least-recently-used
// entries beyond capacity and writing through to the spool. Spool write
// failures are counted, not fatal — the memory entry stands — and a
// streak of them degrades the cache to memory-only. Malformed digests
// are never spooled (see Get), so the spool holds only files named by
// true content addresses.
func (c *Cache) Put(d Digest, e Entry) {
	// Normalize both raw messages to the exact bytes a spool read-back
	// yields: Marshal compacts and HTML-escapes RawMessage fields when
	// embedding, so a CRC over indented or differently-escaped input
	// would not survive the round trip and the entry would be
	// quarantined as corrupt on its first Get.
	if s, err := json.Marshal(e.Spec); err == nil {
		e.Spec = s
	}
	if r, err := json.Marshal(e.Result); err == nil {
		e.Result = r
	}
	c.insert(d, e)
	if !c.spoolActive(d) {
		return
	}
	data, err := json.Marshal(spoolEntry{CRC: entryCRC(e), Spec: e.Spec, Result: e.Result})
	if err == nil {
		err = fsio.WriteFileAtomic(c.fs, c.spoolPath(d), data)
	}
	if err == nil {
		c.spoolFailStreak.Store(0)
		return
	}
	c.spoolFails.Add(1)
	if c.spoolFailStreak.Add(1) >= spoolDegradeAfter {
		if c.degraded.CompareAndSwap(false, true) && c.onDegrade != nil {
			c.onDegrade(err)
		}
	}
}

// Degraded reports whether the spool has been switched off after
// persistent write failures.
func (c *Cache) Degraded() bool { return c.degraded.Load() }

func (c *Cache) insert(d Digest, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).entry = e
		return
	}
	c.items[d] = c.ll.PushFront(&cacheEntry{digest: d, entry: e})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).digest)
		c.evictions.Add(1)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the serialisable cache state for /v1/stats.
type CacheStats struct {
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRatio      float64 `json:"hit_ratio"`
	Evictions     uint64  `json:"evictions"`
	SpoolHits     uint64  `json:"spool_hits,omitempty"`
	SpoolFails    uint64  `json:"spool_fails,omitempty"`
	Quarantined   uint64  `json:"quarantined,omitempty"`
	SpoolDegraded bool    `json:"spool_degraded,omitempty"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Entries:       c.Len(),
		Capacity:      c.max,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		SpoolHits:     c.spoolHits.Load(),
		SpoolFails:    c.spoolFails.Load(),
		Quarantined:   c.quarantined.Load(),
		SpoolDegraded: c.degraded.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
