package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: an in-memory LRU over
// canonical result JSON, keyed by job digest, with an optional on-disk
// JSON spool behind it. Determinism makes it sound: a digest fully
// determines its result, so an entry can never go stale — eviction is
// purely a capacity concern, and a spool file written by any process is
// valid for every other.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[Digest]*list.Element // digest -> element holding *cacheEntry

	spool string // spool directory, or "" for memory-only

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	spoolHits  atomic.Uint64
	spoolFails atomic.Uint64
}

type cacheEntry struct {
	digest Digest
	result json.RawMessage
}

// NewCache creates a cache holding at most max in-memory entries
// (minimum 1). A non-empty spoolDir enables the disk spool; the
// directory is created if missing.
func NewCache(max int, spoolDir string) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	if spoolDir != "" {
		if err := os.MkdirAll(spoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache spool: %w", err)
		}
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[Digest]*list.Element),
		spool: spoolDir,
	}, nil
}

func (c *Cache) spoolPath(d Digest) string {
	return filepath.Join(c.spool, string(d)+".json")
}

// Get returns the cached result for a digest. A memory miss falls back
// to the spool; a spool hit is promoted into memory.
func (c *Cache) Get(d Digest) (json.RawMessage, bool) {
	c.mu.Lock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(*cacheEntry).result
		c.mu.Unlock()
		c.hits.Add(1)
		return res, true
	}
	c.mu.Unlock()
	if c.spool != "" {
		if data, err := os.ReadFile(c.spoolPath(d)); err == nil && json.Valid(data) {
			c.hits.Add(1)
			c.spoolHits.Add(1)
			c.insert(d, data)
			return data, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a result under its digest, evicting least-recently-used
// entries beyond capacity and writing through to the spool. Spool write
// failures are counted, not fatal: the memory entry stands.
func (c *Cache) Put(d Digest, result json.RawMessage) {
	c.insert(d, result)
	if c.spool != "" {
		if err := writeFileAtomic(c.spoolPath(d), result); err != nil {
			c.spoolFails.Add(1)
		}
	}
}

func (c *Cache) insert(d Digest, result json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[d]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = result
		return
	}
	c.items[d] = c.ll.PushFront(&cacheEntry{digest: d, result: result})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).digest)
		c.evictions.Add(1)
	}
}

// writeFileAtomic writes via a temp file and rename, so a crashed or
// concurrent writer can never leave a torn spool entry.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spool-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the serialisable cache state for /v1/stats.
type CacheStats struct {
	Entries    int     `json:"entries"`
	Capacity   int     `json:"capacity"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRatio   float64 `json:"hit_ratio"`
	Evictions  uint64  `json:"evictions"`
	SpoolHits  uint64  `json:"spool_hits,omitempty"`
	SpoolFails uint64  `json:"spool_fails,omitempty"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Entries:    c.Len(),
		Capacity:   c.max,
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		SpoolHits:  c.spoolHits.Load(),
		SpoolFails: c.spoolFails.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
