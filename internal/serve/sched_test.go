package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func sweepSpec(t *testing.T, seed int64) *JobSpec {
	t.Helper()
	return mustDecode(t, fmt.Sprintf(`{"sweep":{"protocol":"can","frames":10,"berStar":0.01,"seed":%d}}`, seed))
}

// countingRunner records executions and returns a result derived from the
// spec digest, optionally blocking until released.
type countingRunner struct {
	runs    atomic.Int64
	block   chan struct{} // non-nil: runs wait here (or for ctx)
	started chan struct{} // buffered; one send per run start
}

func (c *countingRunner) run(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
	c.runs.Add(1)
	if c.started != nil {
		c.started <- struct{}{}
	}
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, d, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	return json.RawMessage(fmt.Sprintf(`{"digest":%q}`, d)), nil
}

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestSchedulerSingleFlight(t *testing.T) {
	r := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s := newTestScheduler(t, Config{Shards: 4, Runner: r.run})

	spec := sweepSpec(t, 1)
	first, adm, err := s.Submit(spec)
	if err != nil || adm != AdmissionNew {
		t.Fatalf("first submit: adm=%v err=%v", adm, err)
	}
	<-r.started // the job is running, not just queued

	// Identical concurrent submissions coalesce onto the running job.
	const callers = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, adm, err := s.Submit(sweepSpec(t, 1))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if adm != AdmissionCoalesced {
				t.Errorf("submit %d: admission %v, want coalesced", i, adm)
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	close(r.block)
	<-first.Done()

	if got := r.runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical submissions, want exactly 1", got, callers+1)
	}
	want := first.Status().Result
	for i, j := range jobs {
		if j == nil {
			continue
		}
		<-j.Done()
		if got := j.Status().Result; string(got) != string(want) {
			t.Fatalf("caller %d result %s != first %s", i, got, want)
		}
	}
}

func TestSchedulerCacheHitSkipsExecution(t *testing.T) {
	r := &countingRunner{}
	s := newTestScheduler(t, Config{Shards: 1, Runner: r.run})

	j1, _, err := s.Submit(sweepSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if r.runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", r.runs.Load())
	}

	j2, adm, err := s.Submit(sweepSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if adm != AdmissionCached {
		t.Fatalf("resubmit admission %v, want cached", adm)
	}
	<-j2.Done() // cached jobs are born terminal
	st := j2.Status()
	if !st.Cached || st.State != StateDone {
		t.Fatalf("resubmit status %+v, want cached done", st)
	}
	if string(st.Result) != string(j1.Status().Result) {
		t.Fatal("cached result differs from the original")
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("byte-identical resubmit re-ran the simulation (runs = %d)", got)
	}
	if cs := s.Cache().Stats(); cs.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", cs.Hits)
	}
}

func TestSchedulerQueueFullBackpressure(t *testing.T) {
	r := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s := newTestScheduler(t, Config{Shards: 1, QueueDepth: 1, Runner: r.run})
	defer close(r.block)

	// Fill the worker (1 running) and the queue (1 waiting). Distinct
	// seeds so nothing coalesces; one shard so they all collide.
	if _, _, err := s.Submit(sweepSpec(t, 10)); err != nil {
		t.Fatal(err)
	}
	<-r.started
	if _, _, err := s.Submit(sweepSpec(t, 11)); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Submit(sweepSpec(t, 12))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Jobs.RejectedQueueFull; got != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", got)
	}
	if s.RetryAfter() < time.Second {
		t.Fatalf("RetryAfter %s below the 1s floor", s.RetryAfter())
	}
}

func TestSchedulerRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		if calls.Add(1) == 1 {
			return nil, Transient(errors.New("spurious infrastructure fault"))
		}
		return json.RawMessage(`"ok"`), nil
	}
	s := newTestScheduler(t, Config{Shards: 1, MaxRetries: 2, Runner: runner})
	j, _, err := s.Submit(sweepSpec(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	st := j.Status()
	if st.State != StateDone || st.Attempts != 2 {
		t.Fatalf("status %+v, want done after 2 attempts", st)
	}
	if s.Stats().Jobs.Retried != 1 {
		t.Fatalf("retried = %d, want 1", s.Stats().Jobs.Retried)
	}
}

func TestSchedulerRetrySeparatesAttemptTelemetry(t *testing.T) {
	var calls atomic.Int64
	var forks [2]*obs.Metrics
	runner := func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		n := calls.Add(1)
		if n <= 2 {
			forks[n-1] = opt.Metrics
		}
		if n == 1 {
			return nil, Transient(errors.New("spurious infrastructure fault"))
		}
		return json.RawMessage(`"ok"`), nil
	}
	s := newTestScheduler(t, Config{Shards: 1, MaxRetries: 1, Runner: runner})
	j, _, err := s.Submit(sweepSpec(t, 22))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone || st.Attempts != 2 {
		t.Fatalf("status %+v, want done after 2 attempts", st)
	}
	// Each attempt gets its own metrics fork, so the job's registry never
	// double-counts work from the abandoned first attempt.
	if forks[0] == nil || forks[1] == nil || forks[0] == forks[1] {
		t.Fatalf("attempts shared a metrics fork (%p, %p), want fresh fork per attempt", forks[0], forks[1])
	}
	// The event ring carries an attempt-boundary marker between the
	// attempts, so a live stream can tell them apart.
	mem := obs.NewMemory()
	j.ring.Drain(mem)
	var boundaries int
	for _, e := range mem.Events() {
		if e.Kind == obs.KindAttemptRetry {
			boundaries++
			if e.Station != -1 || e.Aux != 1 {
				t.Fatalf("boundary event %+v, want station -1, aux 1", e)
			}
		}
	}
	if boundaries != 1 {
		t.Fatalf("attempt-boundary events = %d, want 1", boundaries)
	}
}

func TestSchedulerDoesNotRetryDeterministicFailures(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("simulation rejects this configuration")
	}
	s := newTestScheduler(t, Config{Shards: 1, MaxRetries: 3, Runner: runner})
	j, _, err := s.Submit(sweepSpec(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if calls.Load() != 1 {
		t.Fatalf("deterministic failure retried (%d calls); identical inputs give identical failures", calls.Load())
	}
	if st := j.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("status %+v, want failed with message", st)
	}
	// Failures must never populate the cache.
	if _, ok := s.Cache().Get(j.Digest()); ok {
		t.Fatal("failed job result found in cache")
	}
}

func TestSchedulerJobTimeout(t *testing.T) {
	runner := func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := newTestScheduler(t, Config{Shards: 1, JobTimeout: 20 * time.Millisecond, Runner: runner})
	j, _, err := s.Submit(sweepSpec(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not time out")
	}
	if st := j.Status(); st.State != StateFailed {
		t.Fatalf("state %q, want failed on timeout", st.State)
	}
}

func TestSchedulerDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	r := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s := newTestScheduler(t, Config{Shards: 2, Runner: r.run})

	j, _, err := s.Submit(sweepSpec(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, s.Draining, "scheduler to enter draining state")

	if _, _, err := s.Submit(sweepSpec(t, 41)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain err = %v, want ErrDraining", err)
	}

	close(r.block) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("in-flight job state %q after drain, want done", st.State)
	}
}

func TestSchedulerDrainDeadlineCancelsStragglers(t *testing.T) {
	runner := func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}
	s := newTestScheduler(t, Config{Shards: 1, Runner: runner})
	j, _, err := s.Submit(sweepSpec(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateFailed {
		t.Fatalf("straggler state %q, want failed", st.State)
	}
}

func TestSchedulerRoutesByDigest(t *testing.T) {
	s := newTestScheduler(t, Config{Shards: 4, Runner: (&countingRunner{}).run})
	for seed := int64(0); seed < 20; seed++ {
		spec := sweepSpec(t, seed)
		_, d, err := spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		a, b := s.shardOf(d), s.shardOf(d)
		if a != b || a < 0 || a >= 4 {
			t.Fatalf("shardOf(%s) unstable or out of range: %d, %d", d.Short(), a, b)
		}
	}
}

func TestRememberBoundedWhenAllRecordsInFlight(t *testing.T) {
	// Regression: when every logged record was in flight and the log
	// exceeded the limit, the eviction loop rotated digests forever while
	// holding Scheduler.mu. It must finish in one pass over the log.
	s := &Scheduler{
		cfg:      Config{CacheEntries: 1, QueueDepth: 1},
		shards:   make([]*shard, 1),
		inflight: make(map[Digest]*Job),
		records:  make(map[Digest]*Job),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ { // limit = 1 + 1*(1+1) = 3, so 8 overflows it
			j := &Job{digest: testDigest(fmt.Sprintf("inflight-%d", i))}
			s.inflight[j.digest] = j
			s.remember(j)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("remember() spun on an all-in-flight record log")
	}
	if len(s.records) != 8 {
		t.Fatalf("in-flight records evicted: %d remain, want 8", len(s.records))
	}
}

func TestJobKindSurvivesRecordEviction(t *testing.T) {
	s := newTestScheduler(t, Config{Shards: 1, Runner: (&countingRunner{}).run})
	j, _, err := s.Submit(sweepSpec(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	d := j.Digest()

	// Evict the record; only the cache entry survives.
	s.mu.Lock()
	delete(s.records, d)
	s.recordLog = nil
	s.mu.Unlock()

	got, ok := s.Job(d)
	if !ok {
		t.Fatal("cached job unreachable after record eviction")
	}
	st := got.Status()
	if st.Kind != KindSweep {
		t.Fatalf("resynthesized record kind %q, want %q (spec lost across eviction)", st.Kind, KindSweep)
	}
	if st.State != StateDone || !st.Cached || len(st.Result) == 0 {
		t.Fatalf("resynthesized record %+v, want cached done with result", st)
	}
	if got.Spec().Sweep == nil || got.Spec().Sweep.Seed != 23 {
		t.Fatal("resynthesized record lost the spec payload")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(time.Millisecond):
		}
	}
}
